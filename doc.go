// Package repro reproduces "The Implementation and Evaluation of
// Fusion and Contraction in Array Languages" (Lewis, Lin & Snyder,
// PLDI 1998): array-level statement fusion and array contraction for a
// ZPL-core array language, with the paper's full evaluation.
//
// Start with README.md for orientation, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-versus-measured results.
// The public surface lives under internal/ (this module is the
// application); the binaries are cmd/zplc, cmd/zplrun, and
// cmd/experiments, and runnable walkthroughs live in examples/.
package repro
