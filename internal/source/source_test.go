package source

import (
	"strings"
	"testing"
)

func TestPosBasics(t *testing.T) {
	var zero Pos
	if zero.IsValid() {
		t.Error("zero Pos is valid")
	}
	p := Pos{Line: 3, Col: 7}
	if !p.IsValid() || p.String() != "3:7" {
		t.Errorf("p = %v", p)
	}
	if zero.String() != "-" {
		t.Errorf("zero String = %q", zero.String())
	}
	if !(Pos{1, 9}).Before(Pos{2, 1}) {
		t.Error("line ordering broken")
	}
	if !(Pos{2, 1}).Before(Pos{2, 5}) {
		t.Error("column ordering broken")
	}
	if (Pos{2, 5}).Before(Pos{2, 5}) {
		t.Error("Before not strict")
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.HasErrors() || l.Err() != nil {
		t.Error("empty list reports errors")
	}
	l.Warnf(Pos{1, 1}, "just a warning")
	if l.HasErrors() {
		t.Error("warning counted as error")
	}
	l.Errorf(Pos{2, 1}, "bad %s", "thing")
	l.Notef(Pos{2, 2}, "context")
	if !l.HasErrors() || l.ErrorCount() != 1 {
		t.Errorf("error accounting broken: %d", l.ErrorCount())
	}
	if l.Err() == nil {
		t.Error("Err() nil despite errors")
	}
	msg := l.Error()
	if !strings.Contains(msg, "bad thing") || !strings.Contains(msg, "warning") {
		t.Errorf("rendered: %q", msg)
	}
}

func TestErrorListSortAndFile(t *testing.T) {
	l := ErrorList{File: "x.za"}
	l.Errorf(Pos{5, 1}, "later")
	l.Errorf(Pos{1, 1}, "earlier")
	l.Sort()
	if l.Diags[0].Message != "earlier" {
		t.Error("Sort did not order by position")
	}
	if !strings.HasPrefix(l.Error(), "x.za:1:1") {
		t.Errorf("file prefix missing: %q", l.Error())
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Note.String() != "note" {
		t.Error("severity names broken")
	}
}
