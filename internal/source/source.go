// Package source provides source positions, spans, and diagnostic
// reporting shared by every phase of the compiler.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos identifies a location in a source file by line and column,
// both 1-based. The zero Pos is "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p denotes a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p appears strictly before q in the file.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

// Span is a contiguous range of source text.
type Span struct {
	Start Pos
	End   Pos
}

func (s Span) String() string { return s.Start.String() }

// Severity classifies a diagnostic.
type Severity int

const (
	// Error diagnostics abort compilation after the current phase.
	Error Severity = iota
	// Warning diagnostics are advisory.
	Warning
	// Note diagnostics attach supplementary information.
	Note
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Note:
		return "note"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diagnostic is a single compiler message anchored at a position.
type Diagnostic struct {
	Severity Severity
	Pos      Pos
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// ErrorList collects diagnostics produced while processing one file.
// The zero value is ready to use.
type ErrorList struct {
	File  string
	Diags []Diagnostic
}

// Errorf records an error diagnostic at pos.
func (l *ErrorList) Errorf(pos Pos, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Error, pos, fmt.Sprintf(format, args...)})
}

// Warnf records a warning diagnostic at pos.
func (l *ErrorList) Warnf(pos Pos, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Warning, pos, fmt.Sprintf(format, args...)})
}

// Notef records a note diagnostic at pos.
func (l *ErrorList) Notef(pos Pos, format string, args ...interface{}) {
	l.Diags = append(l.Diags, Diagnostic{Note, pos, fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any diagnostic has Error severity.
func (l *ErrorList) HasErrors() bool {
	for _, d := range l.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// ErrorCount returns the number of Error-severity diagnostics.
func (l *ErrorList) ErrorCount() int {
	n := 0
	for _, d := range l.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Sort orders diagnostics by position, keeping insertion order for ties.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.Diags, func(i, j int) bool {
		return l.Diags[i].Pos.Before(l.Diags[j].Pos)
	})
}

// Err returns an error summarizing the list, or nil if it holds no errors.
func (l *ErrorList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	return l
}

// Error implements the error interface, rendering every diagnostic
// on its own line, prefixed with the file name when known.
func (l *ErrorList) Error() string {
	var b strings.Builder
	for i, d := range l.Diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		if l.File != "" {
			b.WriteString(l.File)
			b.WriteByte(':')
		}
		b.WriteString(d.String())
	}
	return b.String()
}
