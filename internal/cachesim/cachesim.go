// Package cachesim provides a set-associative, write-allocate,
// LRU-replacement cache simulator. Machine models drive it with the
// VM's element-access trace to expose the memory-system effects that
// statement fusion and array contraction change: intermediate arrays
// pollute the cache, contraction removes their traffic entirely.
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int // ways; 1 = direct-mapped
}

// Validate checks the configuration's internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cachesim: nonpositive geometry %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cachesim: size %d not divisible by line*assoc", c.SizeBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

// Cache simulates one level.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	// tags[set][way]; lru[set][way] is a recency counter (higher =
	// more recent).
	tags  [][]int64
	valid [][]bool
	lru   [][]uint64
	clock uint64

	Accesses int64
	Hits     int64
	Misses   int64
}

// New builds a cache from the configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	lineBits := uint(0)
	for (1 << lineBits) < cfg.LineBytes {
		lineBits++
	}
	c := &Cache{cfg: cfg, sets: sets, lineBits: lineBits}
	c.tags = make([][]int64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, cfg.Assoc)
		c.valid[i] = make([]bool, cfg.Assoc)
		c.lru[i] = make([]uint64, cfg.Assoc)
	}
	return c, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates one access to addr and reports whether it hit.
// Write misses allocate (write-allocate policy).
func (c *Cache) Access(addr int64) bool {
	c.Accesses++
	c.clock++
	line := addr >> c.lineBits
	set := int(line % int64(c.sets))
	ways := c.tags[set]
	valid := c.valid[set]
	lru := c.lru[set]
	for w := range ways {
		if valid[w] && ways[w] == line {
			c.Hits++
			lru[w] = c.clock
			return true
		}
	}
	c.Misses++
	// Replace the least recently used way.
	victim := 0
	for w := 1; w < len(ways); w++ {
		if !valid[w] {
			victim = w
			break
		}
		if lru[w] < lru[victim] && valid[victim] {
			victim = w
		}
	}
	ways[victim] = line
	valid[victim] = true
	lru[victim] = c.clock
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		for w := range c.valid[i] {
			c.valid[i][w] = false
			c.lru[i][w] = 0
		}
	}
	c.clock = 0
	c.Accesses, c.Hits, c.Misses = 0, 0, 0
}

// MissRate returns Misses/Accesses (0 when no accesses).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy is an inclusive multi-level cache: an access missing level
// i proceeds to level i+1.
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from level configs, L1 first.
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		h.Levels = append(h.Levels, c)
	}
	return h, nil
}

// Access simulates one access; it returns the level that hit (0-based)
// or len(Levels) for memory.
func (h *Hierarchy) Access(addr int64) int {
	for i, c := range h.Levels {
		if c.Access(addr) {
			return i
		}
	}
	return len(h.Levels)
}

// Reset clears every level.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
}
