package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectMappedBasics(t *testing.T) {
	// 4 lines of 32 bytes, direct-mapped.
	c := MustNew(Config{Name: "L1", SizeBytes: 128, LineBytes: 32, Assoc: 1})
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	if !c.Access(31) {
		t.Error("same-line access missed")
	}
	if c.Access(32) {
		t.Error("next line hit cold")
	}
	// 0 and 128 conflict in a 128-byte direct-mapped cache.
	c.Access(128)
	if c.Access(0) {
		t.Error("conflicting line not evicted")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	// Two-way: lines 0 and 128 can coexist.
	c := MustNew(Config{Name: "L1", SizeBytes: 256, LineBytes: 32, Assoc: 2})
	c.Access(0)
	c.Access(1024) // maps to same set in a 4-set cache
	if !c.Access(0) {
		t.Error("two-way cache evicted a coresident line")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 1 set: lines A, B, then touch A, insert C -> B evicted.
	c := MustNew(Config{Name: "L1", SizeBytes: 64, LineBytes: 32, Assoc: 2})
	c.Access(0)  // A
	c.Access(32) // B
	c.Access(0)  // A again (MRU)
	c.Access(64) // C evicts LRU = B
	if !c.Access(0) {
		t.Error("A evicted despite being MRU")
	}
	if c.Access(32) {
		t.Error("B survived despite being LRU")
	}
}

func TestStatsConsistency(t *testing.T) {
	c := MustNew(Config{Name: "L1", SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Access(int64(r.Intn(4096)))
	}
	if c.Hits+c.Misses != c.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", c.Hits, c.Misses, c.Accesses)
	}
	if c.MissRate() < 0 || c.MissRate() > 1 {
		t.Errorf("miss rate %f out of range", c.MissRate())
	}
}

// Property: hits+misses==accesses and capacity working sets always hit
// after a warm-up pass.
func TestQuickWorkingSetFits(t *testing.T) {
	f := func(seed int64, nLines uint8) bool {
		lines := int(nLines%8) + 1
		c := MustNew(Config{Name: "q", SizeBytes: 16 * 32, LineBytes: 32, Assoc: 16})
		// A working set of <= 16 lines in a fully associative
		// 16-line cache: second pass must hit every time.
		for pass := 0; pass < 2; pass++ {
			for l := 0; l < lines; l++ {
				hit := c.Access(int64(l * 32))
				if pass == 1 && !hit {
					return false
				}
			}
		}
		return c.Hits+c.Misses == c.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequentialSpatialLocality(t *testing.T) {
	// Sequential 8-byte accesses with 32-byte lines: 1 miss per 4.
	c := MustNew(Config{Name: "L1", SizeBytes: 8192, LineBytes: 32, Assoc: 1})
	for i := 0; i < 1024; i++ {
		c.Access(int64(i * 8))
	}
	if c.Misses != 256 {
		t.Errorf("misses = %d, want 256", c.Misses)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Config{Name: "L1", SizeBytes: 128, LineBytes: 32, Assoc: 1})
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Error("stats survived reset")
	}
	if c.Access(0) {
		t.Error("contents survived reset")
	}
}

func TestHierarchy(t *testing.T) {
	h, err := NewHierarchy(
		Config{Name: "L1", SizeBytes: 64, LineBytes: 32, Assoc: 1},
		Config{Name: "L2", SizeBytes: 256, LineBytes: 32, Assoc: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Access(0); lvl != 2 {
		t.Errorf("cold access served by level %d, want memory (2)", lvl)
	}
	if lvl := h.Access(0); lvl != 0 {
		t.Errorf("hot access served by level %d, want L1 (0)", lvl)
	}
	// Evict from tiny L1 but not from L2.
	h.Access(64)
	h.Access(128)
	if lvl := h.Access(0); lvl != 1 {
		t.Errorf("L1-evicted line served by level %d, want L2 (1)", lvl)
	}
}

func TestInvalidConfigs(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 128, LineBytes: 0, Assoc: 1},
		{SizeBytes: 128, LineBytes: 32, Assoc: 0},
		{SizeBytes: 100, LineBytes: 32, Assoc: 1}, // not divisible
		{SizeBytes: 128, LineBytes: 24, Assoc: 1}, // line not power of 2
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPaperMachineGeometries(t *testing.T) {
	// The three paper cache geometries must construct cleanly.
	geoms := []Config{
		{Name: "T3E-L1", SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 1},
		{Name: "T3E-L2", SizeBytes: 96 * 1024, LineBytes: 64, Assoc: 3},
		{Name: "SP2", SizeBytes: 128 * 1024, LineBytes: 128, Assoc: 4},
		{Name: "Paragon", SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 2},
	}
	for _, g := range geoms {
		if _, err := New(g); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}
