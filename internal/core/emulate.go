package core

import (
	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/liveness"
)

// Emulation configures the engine to behave like one of the compilers
// probed in §5.1. The capabilities are the ones the paper infers from
// studying each compiler's output on the Fig. 5 fragments.
type Emulation struct {
	Name string
	// StatementFusion: fuses loops arising from *different* source
	// statements (PGI and IBM do not: "each array statement compiles
	// to a single loop nest").
	StatementFusion bool
	// FuseForLocality: performs fusion purely to exploit reuse.
	FuseForLocality bool
	// CrossStatementAnti: can fuse across statements when the fused
	// loop would carry an anti dependence (APR and Cray cannot).
	CrossStatementAnti bool
	// WithinStatementAnti: handles the carried anti dependence of a
	// single statement's own temporary (fragment 5) — a local matter
	// of loop direction that most compilers manage.
	WithinStatementAnti bool
	// ContractCompiler: eliminates compiler-introduced temporaries.
	ContractCompiler bool
	// ContractUser: eliminates user temporaries.
	ContractUser bool
	// Realign: weighs the temporary-alignment trade-off of fragment 8
	// (the Cray compiler "contracts the compiler temporary at the
	// expense of contracting the two user temporaries" — it does not).
	Realign bool
}

// Emulations returns the five §5.1 configurations: four commercial
// compilers plus this paper's ZPL engine.
func Emulations() []Emulation {
	return []Emulation{
		{
			Name:                "PGI HPF 2.1",
			WithinStatementAnti: true,
			ContractCompiler:    true,
		},
		{
			Name:                "IBM XLHPF 1.2",
			WithinStatementAnti: true,
			ContractCompiler:    true,
		},
		{
			Name:             "APR XHPF 2.0",
			StatementFusion:  true,
			FuseForLocality:  true,
			ContractCompiler: true,
		},
		{
			Name:                "Cray F90 2.0.1.0",
			StatementFusion:     true,
			FuseForLocality:     true,
			WithinStatementAnti: true,
			ContractCompiler:    true,
			ContractUser:        true,
		},
		{
			Name:                "ZPL 1.13 (this paper)",
			StatementFusion:     true,
			FuseForLocality:     true,
			CrossStatementAnti:  true,
			WithinStatementAnti: true,
			ContractCompiler:    true,
			ContractUser:        true,
			Realign:             true,
		},
	}
}

// ZPLEmulation returns the full-capability configuration.
func ZPLEmulation() Emulation { return Emulations()[len(Emulations())-1] }

// Emulate applies the emulated strategy to the whole program and
// returns its fusion/contraction plan.
func Emulate(prog *air.Program, em Emulation) *Plan {
	cands := liveness.Candidates(prog)
	plan := &Plan{Level: C2F3, Contracted: map[string]bool{}}

	for _, b := range prog.AllBlocks() {
		candidates := cands[b]
		if em.Realign {
			RealignTemps(prog, b, candidates)
		}
		g := asdg.Build(b.Stmts)

		var temps, users []string
		for _, x := range candidates {
			if a := prog.Arrays[x]; a != nil && a.Temp {
				temps = append(temps, x)
			} else {
				users = append(users, x)
			}
		}

		p := Trivial(g)
		p.NoCarriedAnti = !em.CrossStatementAnti
		contracted := map[string]bool{}

		if em.ContractCompiler {
			if em.StatementFusion && em.CrossStatementAnti {
				var c map[string]bool
				p, c = FusionForContraction(g, p, temps)
				for x := range c {
					contracted[x] = true
				}
			} else {
				// Local def–use pair contraction only: the shape a
				// scalarizer of single statements can manage.
				contractPairs(prog, g, p, temps, em.WithinStatementAnti, contracted)
			}
		}
		if em.ContractUser && em.StatementFusion {
			var c map[string]bool
			p, c = FusionForContraction(g, p, users)
			for x := range c {
				contracted[x] = true
			}
		}
		if em.FuseForLocality && em.StatementFusion {
			p = FusionForLocality(g, p, AllArrays(g))
		}

		bp := &BlockPlan{Block: b, Graph: g, Part: p}
		for x := range contracted {
			bp.Contracted = append(bp.Contracted, x)
			plan.Contracted[x] = true
			if a := prog.Arrays[x]; a != nil {
				a.Contracted = true
			}
		}
		sortStrings(bp.Contracted)
		plan.Blocks = append(plan.Blocks, bp)
	}
	return plan
}

// contractPairs fuses only adjacent def–use temporary pairs arising
// from a single source statement, honoring the within-statement anti
// dependence capability.
func contractPairs(prog *air.Program, g *asdg.Graph, p *Partition, temps []string,
	withinAnti bool, contracted map[string]bool) {
	isTemp := map[string]bool{}
	for _, t := range temps {
		isTemp[t] = true
	}
	for v := 0; v+1 < g.N(); v++ {
		def := g.ArrayStmt(v)
		use := g.ArrayStmt(v + 1)
		if def == nil || use == nil || !isTemp[def.LHS] {
			continue
		}
		ref, ok := use.RHS.(*air.RefExpr)
		if !ok || ref.Ref.Array != def.LHS || !ref.Ref.Off.IsZero() {
			continue
		}
		cs := map[int]bool{p.ClusterOf(v): true, p.ClusterOf(v + 1): true}
		if !contractible(p, def.LHS, cs) {
			continue
		}
		// The pair's internal anti dependence (on the array both read
		// and written by the original statement) is local to one
		// source statement; allow it only with the capability.
		save := p.NoCarriedAnti
		p.NoCarriedAnti = !withinAnti
		ok = fusionPartitionOK(p, cs)
		p.NoCarriedAnti = save
		if !ok {
			continue
		}
		p.MergeSet(cs)
		contracted[def.LHS] = true
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
