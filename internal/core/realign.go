package core

import (
	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/sema"
)

// RealignTemps resolves the alignment trade-off exposed by Fig. 5
// fragment (8). Normalization always emits a compiler temporary
// aligned with the written array:
//
//	[R]   _t := A@d + T1@d + T2@d;
//	[R]   A  := _t;
//
// Under this alignment _t is contractible but the flow dependences
// into T1 and T2 have distance −d, so they are not. Shifting the
// temporary to the alignment of the reads,
//
//	[R+d] _t := A + T1 + T2;
//	[R]   A  := _t@d;
//
// makes T1 and T2 contractible at the cost of _t. The paper's engine
// "properly weighs this tradeoff"; we realize that by realigning a
// def–use temporary pair whenever the combined reference weight of the
// candidate arrays it unlocks exceeds the weight of the temporary
// itself. Fragments (4) and (5) — where the uniformly-offset read is
// the written array itself — keep the default alignment, so the
// temporary still contracts there.
func RealignTemps(prog *air.Program, b *air.Block, candidates []string) {
	cand := map[string]bool{}
	for _, c := range candidates {
		cand[c] = true
	}
	g := asdg.Build(b.Stmts)

	for i := 0; i+1 < len(b.Stmts); i++ {
		def, ok := b.Stmts[i].(*air.ArrayStmt)
		if !ok {
			continue
		}
		use, ok := b.Stmts[i+1].(*air.ArrayStmt)
		if !ok {
			continue
		}
		info := prog.Arrays[def.LHS]
		if info == nil || !info.Temp {
			continue
		}
		// The pair must be exactly the normalization shape:
		// use copies the temp at offset zero over the same region.
		ref, ok := use.RHS.(*air.RefExpr)
		if !ok || ref.Ref.Array != def.LHS || !ref.Ref.Off.IsZero() || !use.Region.Equal(def.Region) {
			continue
		}
		reads := def.Reads()
		if len(reads) == 0 {
			continue
		}
		d := reads[0].Off
		if d.IsZero() {
			continue
		}
		uniform := true
		for _, r := range reads {
			if !r.Off.Equal(d) {
				uniform = false
				break
			}
		}
		if !uniform {
			continue
		}
		// Weigh the trade: arrays other than the written one that the
		// shift would align to offset zero, versus the temporary.
		shiftBenefit := 0
		for _, r := range reads {
			if r.Array != use.LHS && r.Array != def.LHS && cand[r.Array] {
				shiftBenefit += Weight(g, r.Array)
			}
		}
		stayBenefit := Weight(g, def.LHS)
		if shiftBenefit <= stayBenefit {
			continue
		}
		// Apply the shift.
		shifted := ShiftRegion(def.Region, d)
		def.Region = shifted
		info.Declared = shifted
		info.Alloc = shifted
		zero := air.Zero(len(d))
		rewriteOffsets(def.RHS, zero)
		ref.Ref.Off = d.Clone()
	}
}

// Translates reports whether two regions are exact translates of each
// other: equal rank and extents, possibly shifted bounds. Statements
// over translated regions may share a fusible cluster; the paper's
// condition (i) is the special case of a null shift.
func Translates(a, b *sema.Region) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := 0; i < a.Rank(); i++ {
		if a.Extent(i) != b.Extent(i) {
			return false
		}
	}
	return true
}

// UnionRegion returns the bounding box of the given regions — the
// iteration space of a fused cluster containing translated members.
func UnionRegion(regions []*sema.Region) *sema.Region {
	if len(regions) == 0 {
		return nil
	}
	lo := append([]int(nil), regions[0].Lo...)
	hi := append([]int(nil), regions[0].Hi...)
	for _, r := range regions[1:] {
		for i := range lo {
			if r.Lo[i] < lo[i] {
				lo[i] = r.Lo[i]
			}
			if r.Hi[i] > hi[i] {
				hi[i] = r.Hi[i]
			}
		}
	}
	return &sema.Region{Lo: lo, Hi: hi}
}

// ShiftRegion returns reg translated by off.
func ShiftRegion(reg *sema.Region, off air.Offset) *sema.Region {
	lo := make([]int, reg.Rank())
	hi := make([]int, reg.Rank())
	for i := range lo {
		lo[i] = reg.Lo[i] + off[i]
		hi[i] = reg.Hi[i] + off[i]
	}
	return &sema.Region{Lo: lo, Hi: hi}
}

// rewriteOffsets sets every array reference's offset in e to off.
func rewriteOffsets(e air.Expr, off air.Offset) {
	air.Walk(e, func(x air.Expr) {
		if r, ok := x.(*air.RefExpr); ok {
			r.Ref.Off = off.Clone()
		}
	})
}
