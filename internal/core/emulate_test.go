package core

import (
	"testing"

	"repro/internal/air"
	"repro/internal/ast"
	"repro/internal/sema"
)

func emProgram(stmts []air.Stmt, temps ...string) *air.Program {
	p := &air.Program{
		Name:    "em",
		Arrays:  map[string]*air.ArrayInfo{},
		Scalars: map[string]*air.ScalarInfo{},
		Procs:   map[string]*air.Proc{},
	}
	reg := reg2(8, 8)
	add := func(name string, temp bool) {
		if _, ok := p.Arrays[name]; !ok {
			p.Arrays[name] = &air.ArrayInfo{
				Name: name, Elem: ast.Double, Declared: reg, Alloc: reg, Temp: temp,
			}
		}
	}
	for _, s := range stmts {
		if as, ok := s.(*air.ArrayStmt); ok {
			add(as.LHS, false)
			for _, r := range as.Reads() {
				add(r.Array, false)
			}
		}
	}
	for _, t := range temps {
		p.Arrays[t].Temp = true
	}
	b := &air.Block{Stmts: stmts}
	p.Procs["main"] = &air.Proc{Name: "main", Body: []air.Node{b}}
	p.Main = p.Procs["main"]
	return p
}

func tempPair(reg *sema.Region, readOff air.Offset) []air.Stmt {
	return []air.Stmt{
		&air.ArrayStmt{Region: reg, LHS: "_t1", RHS: &air.BinExpr{
			Op: air.OpAdd,
			X:  &air.RefExpr{Ref: air.Ref{Array: "A", Off: readOff}},
			Y:  &air.RefExpr{Ref: air.Ref{Array: "A", Off: readOff}},
		}},
		&air.ArrayStmt{Region: reg, LHS: "A",
			RHS: &air.RefExpr{Ref: air.Ref{Array: "_t1", Off: air.Zero(len(readOff))}}},
	}
}

// Fragment (4): null anti dependence — every emulation with compiler
// contraction handles it.
func TestEmulatePairNullAnti(t *testing.T) {
	for _, em := range Emulations() {
		if !em.ContractCompiler {
			continue
		}
		prog := emProgram(tempPair(reg2(8, 8), off(0, 0)), "_t1")
		plan := Emulate(prog, em)
		if !plan.Contracted["_t1"] {
			t.Errorf("%s: fragment-4 temp not contracted", em.Name)
		}
	}
}

// Fragment (5): carried anti dependence — only emulations with the
// within-statement-anti capability handle it.
func TestEmulatePairCarriedAnti(t *testing.T) {
	for _, em := range Emulations() {
		if !em.ContractCompiler {
			continue
		}
		prog := emProgram(tempPair(reg2(8, 8), off(-1, 0)), "_t1")
		plan := Emulate(prog, em)
		if plan.Contracted["_t1"] != em.WithinStatementAnti {
			t.Errorf("%s: fragment-5 contraction = %v, capability = %v",
				em.Name, plan.Contracted["_t1"], em.WithinStatementAnti)
		}
	}
}

// Cross-statement user temp (fragment 6): needs statement fusion and
// user contraction.
func TestEmulateUserTemp(t *testing.T) {
	reg := reg2(8, 8)
	stmts := []air.Stmt{
		&air.ArrayStmt{Region: reg, LHS: "B", RHS: &air.RefExpr{Ref: air.Ref{Array: "A", Off: off(0, 0)}}},
		&air.ArrayStmt{Region: reg, LHS: "C", RHS: &air.RefExpr{Ref: air.Ref{Array: "B", Off: off(0, 0)}}},
	}
	for _, em := range Emulations() {
		prog := emProgram(stmts)
		plan := Emulate(prog, em)
		want := em.StatementFusion && em.ContractUser
		if plan.Contracted["B"] != want {
			t.Errorf("%s: user temp contraction = %v, want %v",
				em.Name, plan.Contracted["B"], want)
		}
	}
}

// The PGI/IBM emulations never fuse distinct statements, even when a
// shared array invites it.
func TestEmulateNoStatementFusion(t *testing.T) {
	reg := reg2(8, 8)
	stmts := []air.Stmt{
		&air.ArrayStmt{Region: reg, LHS: "B", RHS: &air.RefExpr{Ref: air.Ref{Array: "A", Off: off(0, 0)}}},
		&air.ArrayStmt{Region: reg, LHS: "C", RHS: &air.RefExpr{Ref: air.Ref{Array: "A", Off: off(0, 0)}}},
	}
	for _, em := range Emulations()[:2] { // PGI, IBM
		prog := emProgram(stmts)
		plan := Emulate(prog, em)
		part := plan.Blocks[0].Part
		if part.ClusterOf(0) == part.ClusterOf(1) {
			t.Errorf("%s fused distinct statements", em.Name)
		}
	}
}
