// Package core implements the paper's primary contribution: statement
// fusion and array contraction at the array level (§4), including the
// FUSION-FOR-CONTRACTION algorithm (Fig. 3), fusion for locality,
// greedy pairwise fusion, the FIND-LOOP-STRUCTURE algorithm (Fig. 4),
// the contractibility test (Def. 6), and emulations of the commercial
// compiler strategies evaluated in §5.1.
package core

import (
	"repro/internal/air"
	"repro/internal/dep"
)

// FindLoopStructure is the algorithm of Fig. 4. Given the rank n of a
// fusible cluster's region and the unconstrained distance vectors of
// its intra-cluster dependences, it finds a loop structure vector that
// preserves every dependence, or reports failure.
//
// Target loops are considered from outermost to innermost and array
// dimensions from 1 to n, so that — when the dependences allow it —
// inner loops iterate over higher array dimensions, exploiting spatial
// locality under row-major allocation. A dimension can be assigned to
// the current loop when all dependence distances along it share a
// sign; the loop then runs in that direction, the dependences it
// carries are pruned, and the search moves inward.
func FindLoopStructure(rank int, vectors []air.Offset) (dep.LoopStructure, bool) {
	// C is pruned as loops are assigned; copy to keep callers' slices.
	c := make([]air.Offset, len(vectors))
	copy(c, vectors)

	p := make(dep.LoopStructure, rank)
	assigned := make([]bool, rank+1)

	for i := 0; i < rank; i++ { // loop i, outermost first
		found := false
		for j := 1; j <= rank; j++ { // array dimension j
			if assigned[j] {
				continue
			}
			d := direction(c, j)
			if d == 0 {
				continue
			}
			assigned[j] = true
			p[i] = j * d
			c = prune(c, j)
			found = true
			break
		}
		if !found {
			return nil, false // NOSOLUTION
		}
	}
	return p, true
}

// direction returns +1 when every distance along dimension j is
// nonnegative, -1 when every distance is nonpositive and at least one
// is negative, and 0 when the signs are mixed (dimension unusable).
func direction(c []air.Offset, j int) int {
	someNeg := false
	somePos := false
	for _, u := range c {
		v := u[j-1]
		if v < 0 {
			someNeg = true
		}
		if v > 0 {
			somePos = true
		}
	}
	switch {
	case !someNeg:
		return +1
	case !somePos:
		return -1
	}
	return 0
}

// prune removes vectors carried by dimension j (u_j != 0): once a loop
// carries a dependence, it no longer constrains inner loops.
func prune(c []air.Offset, j int) []air.Offset {
	out := c[:0]
	for _, u := range c {
		if u[j-1] == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Identity returns the default loop structure (1, 2, ..., n): the
// outermost loop iterates over dimension 1 increasing, the innermost
// over dimension n — the natural row-major order for unconstrained
// clusters.
func Identity(rank int) dep.LoopStructure {
	p := make(dep.LoopStructure, rank)
	for i := range p {
		p[i] = i + 1
	}
	return p
}
