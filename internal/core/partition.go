package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/dep"
)

// Partition is a fusion partition (Definition 5) of an ASDG: a
// partitioning of the graph's vertices into fusible clusters. Each
// cluster is identified by its representative, the smallest vertex
// index it contains.
type Partition struct {
	G   *asdg.Graph
	rep []int // vertex -> cluster representative

	// NoCarriedAnti forbids clusters whose internal dependences
	// include a non-null anti dependence. The paper infers this
	// restriction in the APR and Cray compilers ("unable to fuse
	// loops that carry anti-dependences"); the emulations set it.
	NoCarriedAnti bool
}

// Trivial returns the partition with one statement per cluster.
func Trivial(g *asdg.Graph) *Partition {
	p := &Partition{G: g, rep: make([]int, g.N())}
	for v := range p.rep {
		p.rep[v] = v
	}
	return p
}

// FromClusters builds a partition from an explicit cluster list: each
// inner slice names the vertices of one cluster; vertices not listed
// become singletons. It validates indices and disjointness only — the
// caller proves Definition 5 legality separately (Validate).
func FromClusters(g *asdg.Graph, clusters [][]int) (*Partition, error) {
	p := Trivial(g)
	seen := make([]bool, g.N())
	for _, members := range clusters {
		min := -1
		for _, v := range members {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("cluster member v%d out of range [0,%d)", v, g.N())
			}
			if seen[v] {
				return nil, fmt.Errorf("vertex v%d appears in two clusters", v)
			}
			seen[v] = true
			if min < 0 || v < min {
				min = v
			}
		}
		for _, v := range members {
			p.rep[v] = min
		}
	}
	return p, nil
}

// Clone returns an independent copy of the partition.
func (p *Partition) Clone() *Partition {
	q := &Partition{G: p.G, rep: make([]int, len(p.rep)), NoCarriedAnti: p.NoCarriedAnti}
	copy(q.rep, p.rep)
	return q
}

// ClusterOf returns the representative of the cluster containing v.
func (p *Partition) ClusterOf(v int) int { return p.rep[v] }

// NumClusters returns the number of clusters.
func (p *Partition) NumClusters() int {
	n := 0
	for v, r := range p.rep {
		if v == r {
			n++
		}
	}
	return n
}

// Members returns the vertices of the cluster with representative c,
// in program order.
func (p *Partition) Members(c int) []int {
	var out []int
	for v, r := range p.rep {
		if r == c {
			out = append(out, v)
		}
	}
	return out
}

// Clusters returns all cluster representatives in ascending order.
func (p *Partition) Clusters() []int {
	var out []int
	for v, r := range p.rep {
		if v == r {
			out = append(out, v)
		}
	}
	return out
}

// MergeSet unions the given clusters (by representative) into one,
// represented by the smallest member, mirroring lines 8–10 of Fig. 3.
func (p *Partition) MergeSet(cs map[int]bool) {
	min := -1
	for c := range cs {
		if min < 0 || c < min {
			min = c
		}
	}
	if min < 0 {
		return
	}
	for v, r := range p.rep {
		if cs[r] {
			p.rep[v] = min
		}
	}
}

// clustersReferencing returns the representatives of clusters that
// contain a reference to array x (line 5 of Fig. 3).
func (p *Partition) clustersReferencing(x string) map[int]bool {
	out := map[int]bool{}
	for v := 0; v < p.G.N(); v++ {
		if p.G.References(v, x) {
			out[p.rep[v]] = true
		}
	}
	return out
}

// ClustersReferencing exposes clustersReferencing for external plan
// generators (the tune search engine and ApplySpec validation).
func (p *Partition) ClustersReferencing(x string) map[int]bool {
	return p.clustersReferencing(x)
}

// clusterSucc builds the cluster-level successor relation.
func (p *Partition) clusterSucc() map[int][]int {
	succ := map[int]map[int]bool{}
	for _, e := range p.G.Edges {
		a, b := p.rep[e.From], p.rep[e.To]
		if a == b {
			continue
		}
		if succ[a] == nil {
			succ[a] = map[int]bool{}
		}
		succ[a][b] = true
	}
	out := map[int][]int{}
	for a, m := range succ {
		for b := range m {
			out[a] = append(out[a], b)
		}
		sort.Ints(out[a])
	}
	return out
}

// Grow implements GROW(c, G): the clusters not in c that are reachable
// from c and that reach c — exactly the clusters that would sit on an
// inter-fusible-cluster dependence cycle if c were fused (line 6 of
// Fig. 3). Runs in O(e).
func (p *Partition) Grow(c map[int]bool) map[int]bool {
	succ := p.clusterSucc()
	pred := map[int][]int{}
	for a, bs := range succ {
		for _, b := range bs {
			pred[b] = append(pred[b], a)
		}
	}
	reach := func(start map[int]bool, adj map[int][]int) map[int]bool {
		seen := map[int]bool{}
		var stack []int
		for s := range start {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return seen
	}
	down := reach(c, succ)
	up := reach(c, pred)
	out := map[int]bool{}
	for v := range down {
		if up[v] && !c[v] {
			out[v] = true
		}
	}
	return out
}

// Acyclic reports whether the cluster-level condensation is a DAG
// (condition (iii) of Definition 5).
func (p *Partition) Acyclic() bool {
	succ := p.clusterSucc()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = gray
		for _, w := range succ[v] {
			switch color[w] {
			case gray:
				return false
			case white:
				if !visit(w) {
					return false
				}
			}
		}
		color[v] = black
		return true
	}
	for _, c := range p.Clusters() {
		if color[c] == white && !visit(c) {
			return false
		}
	}
	return true
}

// IntraVectors returns the unconstrained distance vectors of every
// dependence between vertices that would share a cluster if the
// clusters in cs were fused. ok is false if such a dependence has no
// vector (ordering-only), which forbids fusion outright. When the
// partition forbids carried anti dependences, a non-null anti vector
// also clears ok.
func (p *Partition) IntraVectors(cs map[int]bool) (vectors []air.Offset, flowsNull bool, ok bool) {
	flowsNull = true
	ok = true
	for _, e := range p.G.Edges {
		if !cs[p.rep[e.From]] || !cs[p.rep[e.To]] {
			continue
		}
		for _, it := range e.Items {
			if !it.Vector {
				ok = false
				continue
			}
			vectors = append(vectors, it.U)
			if it.Kind == dep.Flow && !it.U.IsZero() {
				flowsNull = false
			}
			if p.NoCarriedAnti && it.Kind == dep.Anti && !it.U.IsZero() {
				ok = false
			}
		}
	}
	return vectors, flowsNull, ok
}

// clusterVectors returns the vectors of dependences internal to the
// existing cluster c.
func (p *Partition) clusterVectors(c int) []air.Offset {
	cs := map[int]bool{c: true}
	vs, _, _ := p.IntraVectors(cs)
	return vs
}

// LoopStructureFor computes the loop structure vector for an existing
// cluster: the Fig. 4 algorithm over its internal dependences, or the
// identity structure when unconstrained. The bool is false when no
// legal structure exists (which a valid partition never exhibits).
func (p *Partition) LoopStructureFor(c int) (dep.LoopStructure, bool) {
	members := p.Members(c)
	reg := p.G.StmtRegion(members[0])
	if reg == nil {
		return nil, true // unnormalized singleton: no loop nest
	}
	vs := p.clusterVectors(c)
	if len(vs) == 0 {
		return Identity(reg.Rank()), true
	}
	return FindLoopStructure(reg.Rank(), vs)
}

// Validate re-checks every condition of Definition 5 on the current
// partition; it is used by tests and property checks, not by the
// fusion algorithms themselves.
func (p *Partition) Validate() error {
	for _, c := range p.Clusters() {
		members := p.Members(c)
		if len(members) == 1 {
			continue
		}
		var reg = p.G.StmtRegion(members[0])
		for _, v := range members {
			if !p.G.IsFusible(v) {
				return fmt.Errorf("cluster %d contains unfusible statement v%d", c, v)
			}
			r := p.G.StmtRegion(v)
			if reg == nil || r == nil || !Translates(reg, r) {
				return fmt.Errorf("cluster %d mixes non-conformable regions", c)
			}
		}
		cs := map[int]bool{c: true}
		vectors, flowsNull, ok := p.IntraVectors(cs)
		if !ok {
			return fmt.Errorf("cluster %d has an ordering-only internal dependence", c)
		}
		if !flowsNull {
			return fmt.Errorf("cluster %d carries a non-null flow dependence", c)
		}
		if _, found := FindLoopStructure(reg.Rank(), vectors); !found {
			return fmt.Errorf("cluster %d has no legal loop structure", c)
		}
	}
	if !p.Acyclic() {
		return fmt.Errorf("partition has an inter-cluster cycle")
	}
	return nil
}

// TopoClusters returns the cluster representatives in a topological
// order of the cluster condensation, breaking ties by program order.
func (p *Partition) TopoClusters() []int {
	succ := p.clusterSucc()
	indeg := map[int]int{}
	for _, c := range p.Clusters() {
		indeg[c] = 0
	}
	for _, bs := range succ {
		for _, b := range bs {
			indeg[b]++
		}
	}
	// Min-heap by representative keeps the order deterministic and
	// close to program order.
	var ready []int
	for _, c := range p.Clusters() {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	sort.Ints(ready)
	var out []int
	for len(ready) > 0 {
		c := ready[0]
		ready = ready[1:]
		out = append(out, c)
		for _, b := range succ[c] {
			indeg[b]--
			if indeg[b] == 0 {
				ready = insertSorted(ready, b)
			}
		}
	}
	return out
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// String renders the partition as {v0 v2} {v1} ... in topological order.
func (p *Partition) String() string {
	var parts []string
	for _, c := range p.TopoClusters() {
		ms := p.Members(c)
		strs := make([]string, len(ms))
		for i, v := range ms {
			strs[i] = fmt.Sprintf("v%d", v)
		}
		parts = append(parts, "{"+strings.Join(strs, " ")+"}")
	}
	return strings.Join(parts, " ")
}
