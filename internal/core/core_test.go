package core

import (
	"testing"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/dep"
	"repro/internal/sema"
)

func off(vs ...int) air.Offset { return air.Offset(vs) }

func reg2(m, n int) *sema.Region {
	return &sema.Region{Lo: []int{1, 1}, Hi: []int{m, n}}
}

func arrStmt(r *sema.Region, lhs string, reads ...air.Ref) *air.ArrayStmt {
	var rhs air.Expr
	for _, rd := range reads {
		ref := &air.RefExpr{Ref: rd}
		if rhs == nil {
			rhs = ref
		} else {
			rhs = &air.BinExpr{Op: air.OpAdd, X: rhs, Y: ref}
		}
	}
	if rhs == nil {
		rhs = &air.ConstExpr{Val: 1}
	}
	return &air.ArrayStmt{Region: r, LHS: lhs, RHS: rhs}
}

func ref(a string, vs ...int) air.Ref { return air.Ref{Array: a, Off: air.Offset(vs)} }

// ---------------------------------------------------------------------------
// FIND-LOOP-STRUCTURE

func TestFindLoopStructureUnconstrained(t *testing.T) {
	p, ok := FindLoopStructure(2, nil)
	if !ok || p[0] != 1 || p[1] != 2 {
		t.Errorf("unconstrained structure = %v, %v; want (1,2)", p, ok)
	}
}

func TestFindLoopStructureFig2(t *testing.T) {
	// Statements 1 and 3 of Fig. 2: vectors (-1,0) and (1,-1).
	// The paper derives loop structure (-2,-1).
	p, ok := FindLoopStructure(2, []air.Offset{off(-1, 0), off(1, -1)})
	if !ok {
		t.Fatal("no structure found for Fig. 2 example")
	}
	if p[0] != -2 || p[1] != -1 {
		t.Errorf("structure = %v, want (-2,-1)", p)
	}
	if !dep.Preserves(p, []air.Offset{off(-1, 0), off(1, -1)}) {
		t.Error("found structure does not preserve its inputs")
	}
}

func TestFindLoopStructureReversal(t *testing.T) {
	p, ok := FindLoopStructure(2, []air.Offset{off(-1, 0)})
	if !ok || p[0] != -1 || p[1] != 2 {
		t.Errorf("structure = %v (ok=%v), want (-1,2)", p, ok)
	}
}

func TestFindLoopStructureInterchange(t *testing.T) {
	// (0,-1),(1,-1): dimension 1 carries the second vector with
	// direction +1; dimension 2 then needs reversal.
	p, ok := FindLoopStructure(2, []air.Offset{off(0, -1), off(1, -1)})
	if !ok || p[0] != 1 || p[1] != -2 {
		t.Errorf("structure = %v (ok=%v), want (1,-2)", p, ok)
	}
}

func TestFindLoopStructureNoSolution(t *testing.T) {
	if p, ok := FindLoopStructure(2, []air.Offset{off(1, -1), off(-1, 1)}); ok {
		t.Errorf("expected NOSOLUTION, got %v", p)
	}
}

func TestFindLoopStructureSpatialPreference(t *testing.T) {
	// With no constraints in either dimension the inner loop must get
	// the higher dimension (row-major spatial locality).
	p, _ := FindLoopStructure(3, []air.Offset{off(0, 0, 0)})
	if p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Errorf("structure = %v, want (1,2,3)", p)
	}
}

// FindLoopStructure must legalize every vector set it accepts.
func TestFindLoopStructureAlwaysLegal(t *testing.T) {
	sets := [][]air.Offset{
		{off(0, 1)}, {off(2, -3)}, {off(-1, -1)}, {off(0, -2), off(0, -1)},
		{off(1, 1), off(1, -1)}, {off(-2, 0), off(-1, 5)},
	}
	for _, vs := range sets {
		p, ok := FindLoopStructure(2, vs)
		if !ok {
			continue
		}
		if !p.Valid() {
			t.Errorf("invalid structure %v for %v", p, vs)
		}
		if !dep.Preserves(p, vs) {
			t.Errorf("structure %v does not preserve %v", p, vs)
		}
	}
}

// ---------------------------------------------------------------------------
// Fusion for contraction

func plan(t *testing.T, stmts []air.Stmt, candidates []string) (*Partition, map[string]bool) {
	t.Helper()
	g := asdg.Build(stmts)
	p, contracted := FusionForContraction(g, nil, candidates)
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	return p, contracted
}

func TestContractTempPair(t *testing.T) {
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "_t1", ref("B", 0, 0)),
		arrStmt(r, "A", ref("_t1", 0, 0)),
	}
	p, contracted := plan(t, stmts, []string{"_t1"})
	if !contracted["_t1"] {
		t.Error("_t1 not contracted")
	}
	if p.ClusterOf(0) != p.ClusterOf(1) {
		t.Error("def and use not fused")
	}
}

func TestFragment7(t *testing.T) {
	// B = A + A + C(0:n-1,:); C = B — fusing carries an anti
	// dependence on C with u = (-1,0); B contracts.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "B", ref("A", 0, 0), ref("A", 0, 0), ref("C", -1, 0)),
		arrStmt(r, "C", ref("B", 0, 0)),
	}
	p, contracted := plan(t, stmts, []string{"B"})
	if !contracted["B"] {
		t.Error("B not contracted despite anti dependence being legalizable")
	}
	ls, ok := p.LoopStructureFor(p.ClusterOf(0))
	if !ok {
		t.Fatal("no loop structure")
	}
	if ls[0] != -1 {
		t.Errorf("outer loop = %d, want -1 (reversed dim 1)", ls[0])
	}
}

func TestNonNullFlowPreventsContraction(t *testing.T) {
	// B := A; C := B@(-1,0) — flow on B has u = (1,0) != 0, so B is
	// not contractible and the statements must not fuse for it.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "B", ref("A", 0, 0)),
		arrStmt(r, "C", ref("B", -1, 0)),
	}
	_, contracted := plan(t, stmts, []string{"B"})
	if contracted["B"] {
		t.Error("B contracted despite non-null flow dependence")
	}
}

func TestDifferentRegionsPreventFusion(t *testing.T) {
	r1 := reg2(8, 8)
	r2 := reg2(4, 4)
	stmts := []air.Stmt{
		arrStmt(r1, "B", ref("A", 0, 0)),
		arrStmt(r2, "C", ref("B", 0, 0)),
	}
	p, contracted := plan(t, stmts, []string{"B"})
	if contracted["B"] {
		t.Error("B contracted across non-conformable statements")
	}
	if p.ClusterOf(0) == p.ClusterOf(1) {
		t.Error("statements with different regions fused")
	}
}

func TestGrowPullsInMiddleCluster(t *testing.T) {
	// s0 writes T and X; s1 consumes X and produces Y; s2 consumes T
	// and Y. Fusing {s0, s2} for T must pull in s1 (it lies on the
	// would-be cycle), and the three-way fusion is legal, so T
	// contracts.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "Y", ref("T", 0, 0)), // also reads T to create path
		arrStmt(r, "Z", ref("T", 0, 0), ref("Y", 0, 0)),
	}
	p, contracted := plan(t, stmts, []string{"T"})
	if !contracted["T"] {
		t.Error("T not contracted")
	}
	if p.NumClusters() != 1 {
		t.Errorf("expected single cluster, got %s", p)
	}
}

func TestGrowBlockedByUnfusibleMiddle(t *testing.T) {
	// The middle statement on the cycle is a barrier (writeln), so
	// the fusion — and therefore contraction — must fail.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		&air.WritelnStmt{Args: []air.WriteArg{{Str: "x"}}},
		arrStmt(r, "B", ref("T", 0, 0)),
	}
	p, contracted := plan(t, stmts, []string{"T"})
	if contracted["T"] {
		t.Error("T contracted across a barrier")
	}
	if p.NumClusters() != 3 {
		t.Errorf("expected trivial partition, got %s", p)
	}
}

func TestWeightOrdering(t *testing.T) {
	big := reg2(16, 16)
	stmts := []air.Stmt{
		arrStmt(big, "T", ref("A", 0, 0)),
		arrStmt(big, "B", ref("T", 0, 0)),
		arrStmt(big, "U", ref("B", 0, 0)),
	}
	g := asdg.Build(stmts)
	// T: 2 refs × 256; U: 1 ref... B: 2 refs + write... order check.
	names := ByDecreasingWeight(g, []string{"U", "T", "B"})
	if names[0] != "B" {
		t.Errorf("heaviest = %s, want B (3 references)", names[0])
	}
	if Weight(g, "T") != 2*256 {
		t.Errorf("w(T) = %d, want 512", Weight(g, "T"))
	}
}

func TestReduceFusesWithProducer(t *testing.T) {
	// X := A*A; s := +<< X — fusing the reduction lets X contract.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "X", ref("A", 0, 0)),
		&air.ReduceStmt{Target: "s", Op: air.ReduceSum, Region: r,
			Body: &air.RefExpr{Ref: ref("X", 0, 0)}},
	}
	p, contracted := plan(t, stmts, []string{"X"})
	if !contracted["X"] {
		t.Error("X not contracted into the reduction")
	}
	if p.ClusterOf(0) != p.ClusterOf(1) {
		t.Error("producer and reduction not fused")
	}
}

func TestCommPreventsContraction(t *testing.T) {
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "X", ref("A", 0, 0)),
		&air.CommStmt{Array: "X", Off: off(0, 1), Region: r},
		arrStmt(r, "B", ref("X", 0, 1)),
	}
	_, contracted := plan(t, stmts, []string{"X"})
	if contracted["X"] {
		t.Error("communicated array contracted")
	}
}

// ---------------------------------------------------------------------------
// Fusion for locality and greedy pairwise

func TestFusionForLocality(t *testing.T) {
	// Fragment (1): B=A+A; C=A*A — no dependences; locality fusion
	// merges both statements because they share A.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "B", ref("A", 0, 0), ref("A", 0, 0)),
		arrStmt(r, "C", ref("A", 0, 0), ref("A", 0, 0)),
	}
	g := asdg.Build(stmts)
	p := FusionForLocality(g, nil, AllArrays(g))
	if p.ClusterOf(0) != p.ClusterOf(1) {
		t.Error("independent statements sharing A not fused for locality")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGreedyPairwiseFusesIndependents(t *testing.T) {
	// Two statements with no shared arrays: locality fusion has no
	// reason to fuse them, greedy pairwise (f4) fuses anything legal.
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "B", ref("A", 0, 0)),
		arrStmt(r, "D", ref("C", 0, 0)),
	}
	g := asdg.Build(stmts)
	p := FusionForLocality(g, nil, AllArrays(g))
	if p.NumClusters() != 2 {
		t.Fatalf("locality fusion should not fuse disjoint statements: %s", p)
	}
	p = GreedyPairwise(p)
	if p.NumClusters() != 1 {
		t.Errorf("greedy pairwise should fuse disjoint statements: %s", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Realignment (fragment 8)

func TestRealignFragment8(t *testing.T) {
	r := reg2(8, 8)
	prog := &air.Program{Name: "frag8", Arrays: map[string]*air.ArrayInfo{
		"A":   {Name: "A", Declared: r, Alloc: r},
		"B":   {Name: "B", Declared: r, Alloc: r},
		"T1":  {Name: "T1", Declared: r, Alloc: r},
		"T2":  {Name: "T2", Declared: r, Alloc: r},
		"_t1": {Name: "_t1", Declared: r, Alloc: r, Temp: true},
	}, Scalars: map[string]*air.ScalarInfo{}, Procs: map[string]*air.Proc{}}
	stmts := []air.Stmt{
		arrStmt(r, "T1", ref("B", 0, 0)),
		arrStmt(r, "T2", ref("B", 0, 0)),
		arrStmt(r, "_t1", ref("A", 1, 0), ref("T1", 1, 0), ref("T2", 1, 0)),
		arrStmt(r, "A", ref("_t1", 0, 0)),
	}
	b := &air.Block{Stmts: stmts}
	RealignTemps(prog, b, []string{"T1", "T2", "_t1"})

	def := b.Stmts[2].(*air.ArrayStmt)
	if def.Region.Lo[0] != 2 || def.Region.Hi[0] != 9 {
		t.Fatalf("temp not realigned: region %s", def.Region)
	}
	for _, rd := range def.Reads() {
		if !rd.Off.IsZero() {
			t.Errorf("read %s not realigned to zero offset", rd)
		}
	}
	use := b.Stmts[3].(*air.ArrayStmt)
	if u := use.Reads()[0]; !u.Off.Equal(off(1, 0)) {
		t.Errorf("use offset = %v, want (1,0)", u.Off)
	}

	// After realignment, fusion-for-contraction contracts T1 and T2
	// but sacrifices the compiler temporary — the paper's trade-off.
	g := asdg.Build(b.Stmts)
	p, contracted := FusionForContraction(g, nil, []string{"T1", "T2", "_t1"})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !contracted["T1"] || !contracted["T2"] {
		t.Errorf("user temps not contracted: %v", contracted)
	}
	if contracted["_t1"] {
		t.Error("compiler temp contracted despite realignment")
	}
}

func TestRealignKeepsDefaultForFragment5(t *testing.T) {
	// A = A(0:n-1,:)+A(0:n-1,:): the only uniformly-offset read is the
	// written array itself, so the alignment must stay put and the
	// compiler temp remain contractible.
	r := reg2(8, 8)
	prog := &air.Program{Name: "frag5", Arrays: map[string]*air.ArrayInfo{
		"A":   {Name: "A", Declared: r, Alloc: r},
		"_t1": {Name: "_t1", Declared: r, Alloc: r, Temp: true},
	}, Scalars: map[string]*air.ScalarInfo{}, Procs: map[string]*air.Proc{}}
	stmts := []air.Stmt{
		arrStmt(r, "_t1", ref("A", -1, 0), ref("A", -1, 0)),
		arrStmt(r, "A", ref("_t1", 0, 0)),
	}
	b := &air.Block{Stmts: stmts}
	RealignTemps(prog, b, []string{"_t1"})
	def := b.Stmts[0].(*air.ArrayStmt)
	if def.Region.Lo[0] != 1 {
		t.Fatalf("fragment 5 temp was realigned: %s", def.Region)
	}
	g := asdg.Build(b.Stmts)
	p, contracted := FusionForContraction(g, nil, []string{"_t1"})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !contracted["_t1"] {
		t.Error("compiler temp for fragment 5 not contracted")
	}
	// The fused loop must reverse dimension 1 to honor the anti
	// dependence on A.
	ls, ok := p.LoopStructureFor(p.ClusterOf(0))
	if !ok || ls[0] != -1 {
		t.Errorf("loop structure = %v, want (-1,2)", ls)
	}
}

func TestGreedyPairwiseSharedRefusesDisjoint(t *testing.T) {
	r := reg2(8, 8)
	stmts := []air.Stmt{
		arrStmt(r, "B", ref("A", 0, 0)),
		arrStmt(r, "D", ref("C", 0, 0)), // disjoint from the first
		arrStmt(r, "E", ref("A", 0, 0)), // shares A with the first
	}
	g := asdg.Build(stmts)
	p := GreedyPairwiseShared(Trivial(g), 1)
	if p.ClusterOf(0) != p.ClusterOf(2) {
		t.Error("statements sharing A not fused")
	}
	if p.ClusterOf(0) == p.ClusterOf(1) {
		t.Error("disjoint statements fused by the spatial variant")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLevelParsingExtensions(t *testing.T) {
	for _, name := range []string{"c2+f4s", "c2f4s"} {
		lvl, err := ParseLevel(name)
		if err != nil || lvl != C2F4S {
			t.Errorf("ParseLevel(%q) = %v, %v", name, lvl, err)
		}
	}
	if len(AllLevels()) != len(Levels())+1 {
		t.Error("AllLevels must extend Levels by c2+f4s")
	}
	if !C2F4S.ContractsUsers() || !C2F4S.FusesUsers() {
		t.Error("c2+f4s capability flags wrong")
	}
}
