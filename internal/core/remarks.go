package core

import (
	"fmt"
	"sort"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/liveness"
	"repro/internal/remark"
	"repro/internal/source"
)

// explainBlock produces one block's optimization remarks after the
// strategy ladder has run on it:
//
//   - one "fused" remark per multi-statement cluster of the final
//     partition;
//   - exactly one "not-fused" remark per edge-connected pair of
//     distinct final clusters, diagnosing the merge (with its GROW
//     cycle closure) against Definition 5;
//   - one "contracted" or "not-contracted" remark per contraction
//     candidate of the block;
//   - one liveness "not-contracted" remark per compiler temporary
//     whose live range disqualified it from candidacy.
//
// Diagnoses run against the final partition, so every negative remark
// names a test that fails right now — the remarks are auditable
// against the emitted code, not against a transient algorithm state.
func explainBlock(prog *air.Program, level Level, blockIdx int, b *air.Block,
	g *asdg.Graph, p *Partition, contracted map[string]bool,
	candidates []string, live []liveness.Verdict) []remark.Remark {

	var out []remark.Remark

	// Fused clusters.
	for _, c := range p.TopoClusters() {
		members := p.Members(c)
		if len(members) < 2 {
			continue
		}
		detail := ""
		if ls, ok := p.LoopStructureFor(c); ok && ls != nil {
			detail = fmt.Sprintf("loop structure %s over region %s", ls, g.StmtRegion(members[0]))
		}
		out = append(out, remark.Remark{
			Kind: remark.Fused, Pass: "fusion", Block: blockIdx,
			Stmts:  members,
			Pos:    air.PosOf(g.Stmts[members[0]]),
			Detail: detail,
		})
	}

	// Unfused cluster pairs: every ASDG edge crossing two distinct
	// final clusters defines a fusible-candidate pair that was not
	// fused; diagnose each unordered pair once, in edge order.
	seen := map[[2]int]bool{}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		a, c := p.ClusterOf(e.From), p.ClusterOf(e.To)
		if a == c {
			continue
		}
		key := [2]int{a, c}
		if c < a {
			key = [2]int{c, a}
		}
		if seen[key] {
			continue
		}
		seen[key] = true

		cs := map[int]bool{a: true, c: true}
		for d := range p.Grow(cs) {
			cs[d] = true
		}
		d := diagnoseFusion(p, cs)
		r := remark.Remark{
			Kind: remark.NotFused, Pass: "fusion", Block: blockIdx,
			Pair: &[2]int{key[0], key[1]},
			Pos:  air.PosOf(g.Stmts[key[0]]),
		}
		if !d.OK {
			r.Test, r.Reason, r.Detail, r.Edge = d.Test, d.Reason, d.Detail, d.Edge
			if d.Pos.IsValid() {
				r.Pos = d.Pos
			}
		} else {
			r.Test, r.Reason = unselectedFusion(level)
		}
		out = append(out, r)
	}

	// Contraction candidates.
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	for _, x := range sorted {
		pos := firstWritePos(g, x)
		if contracted[x] {
			cls := p.clustersReferencing(x)
			var members []int
			for c := range cls {
				members = append(members, p.Members(c)...)
			}
			sort.Ints(members)
			out = append(out, remark.Remark{
				Kind: remark.Contracted, Pass: "contraction", Block: blockIdx,
				Array: x, Stmts: members, Pos: pos,
				Detail: fmt.Sprintf("every dependence on %s is intra-cluster with a null distance vector", x),
			})
			continue
		}
		out = append(out, explainUncontracted(prog, level, blockIdx, g, p, x, pos))
	}

	// Compiler temporaries excluded by liveness never reach the
	// candidate list; explain them from the liveness verdicts.
	for _, v := range live {
		if v.Candidate || v.Block != b {
			continue
		}
		a := prog.Arrays[v.Array]
		if a == nil || !a.Temp {
			continue
		}
		r := remark.Remark{
			Kind: remark.NotContracted, Pass: "liveness", Block: blockIdx,
			Array: v.Array, Pos: v.Pos,
			Test:   remark.TestLiveRange,
			Reason: livenessReason(v),
			Detail: v.Detail,
		}
		if v.Offending == 1 && v.Reason == liveness.ReasonUncoveredRead {
			r.Fixit = fmt.Sprintf("%s would be a contraction candidate but for the single uncovered read at %s (offset %s); initializing or covering that element range with an earlier write enables contraction",
				v.Array, v.Pos, v.Off)
		}
		out = append(out, r)
	}
	return out
}

// explainUncontracted diagnoses one uncontracted candidate: level
// exclusion first (the level would not contract this array class no
// matter what), then Definition 6, then the fusion the contraction
// would require.
func explainUncontracted(prog *air.Program, level Level, blockIdx int,
	g *asdg.Graph, p *Partition, x string, pos source.Pos) remark.Remark {

	r := remark.Remark{
		Kind: remark.NotContracted, Pass: "contraction", Block: blockIdx,
		Array: x, Pos: pos,
	}
	temp := false
	if a := prog.Arrays[x]; a != nil {
		temp = a.Temp
	}
	if reason, excluded := levelExcludesContraction(level, temp); excluded {
		r.Test, r.Reason = remark.TestLevel, reason
		return r
	}

	cs := p.clustersReferencing(x)
	if len(cs) == 0 {
		r.Test = remark.TestFusible
		r.Reason = "no fusible statement references the array (only unnormalized or communication statements do)"
		return r
	}
	for d := range p.Grow(cs) {
		cs[d] = true
	}
	if cd := diagnoseContraction(p, x, cs); !cd.OK {
		r.Test, r.Reason, r.Detail, r.Edge, r.Fixit = cd.Test, cd.Reason, cd.Detail, cd.Edge, cd.Fixit
		if cd.Pos.IsValid() {
			r.Pos = cd.Pos
		}
		return r
	}
	if fd := diagnoseFusion(p, cs); !fd.OK {
		r.Test = fd.Test
		r.Reason = "the fusion contraction requires is illegal: " + fd.Reason
		r.Detail, r.Edge = fd.Detail, fd.Edge
		if fd.Pos.IsValid() {
			r.Pos = fd.Pos
		}
		return r
	}
	if level == External {
		r.Test = remark.TestPlan
		r.Reason = "contraction is legal on the final partition but the supplied plan does not perform it"
		return r
	}
	r.Test = remark.TestHeuristic
	r.Reason = "contraction is legal on the final partition but the greedy weight-ordered pass did not select it"
	return r
}

// unselectedFusion explains a legal-but-unperformed pair merge in
// terms of the strategy level.
func unselectedFusion(level Level) (test, reason string) {
	switch level {
	case Baseline:
		return remark.TestLevel, "level baseline performs no fusion"
	case F1, C1, F2, C2:
		return remark.TestHeuristic, "fusion at " + level.String() + " serves contraction only; merging this pair enables none"
	case F3, C2F3:
		return remark.TestHeuristic, "locality fusion merges the referencers of one array collectively; no legal collective merge contains this pair"
	case C2F4:
		return remark.TestHeuristic, "greedy pairwise fusion reached its fixed point without this pair becoming legal"
	case C2F4S:
		return remark.TestHeuristic, "spatial pairwise fusion merges only statements sharing an operand array"
	case External:
		return remark.TestPlan, "the supplied plan does not select this fusion"
	}
	return remark.TestHeuristic, "the strategy did not select this fusion"
}

// levelExcludesContraction reports whether the level never contracts
// the array's class, with the explanation.
func levelExcludesContraction(level Level, temp bool) (string, bool) {
	switch {
	case level == External:
		// An external plan may contract any candidate; nothing is
		// excluded by level.
		return "", false
	case level == Baseline:
		return "level baseline performs no contraction", true
	case level == F1:
		return "f1 fuses to enable contraction but does not perform it", true
	case !temp && level == F2:
		return "f2 fuses for user-array contraction but does not perform it", true
	case !temp && !level.ContractsUsers():
		return level.String() + " contracts compiler temporaries only", true
	}
	return "", false
}

// livenessReason renders a liveness verdict reason as a sentence.
func livenessReason(v liveness.Verdict) string {
	switch v.Reason {
	case liveness.ReasonMultiBlock:
		return "the array's live range spans multiple blocks"
	case liveness.ReasonUncoveredRead:
		return "a read is not covered by an earlier write in the block (the value flows in from outside)"
	case liveness.ReasonCommunicated:
		return "the array is communicated (distributed halo state)"
	case liveness.ReasonEscapes:
		return "the array escapes: a runtime handle observes its final value"
	}
	return v.Reason
}

// firstWritePos returns the position of the first statement writing x
// in the block's graph, falling back to the first reference.
func firstWritePos(g *asdg.Graph, x string) (pos source.Pos) {
	for v := 0; v < g.N(); v++ {
		switch s := g.Stmts[v].(type) {
		case *air.ArrayStmt:
			if s.LHS == x {
				return s.Pos
			}
		case *air.PartialReduceStmt:
			if s.LHS == x {
				return s.Pos
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if g.References(v, x) {
			return air.PosOf(g.Stmts[v])
		}
	}
	return pos
}
