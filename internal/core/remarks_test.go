package core

import (
	"testing"

	"repro/internal/liveness"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/remark"
	"repro/internal/sema"
	"repro/internal/source"
)

// lowerBench compiles one built-in benchmark to AIR.
func lowerBench(t *testing.T, name string) *sema.Info {
	t.Helper()
	b, ok := programs.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	var errs source.ErrorList
	prog := parser.Parse(b.Source, &errs)
	if errs.HasErrors() {
		t.Fatal(errs.Err())
	}
	info := sema.Check(prog, nil, &errs)
	if errs.HasErrors() {
		t.Fatal(errs.Err())
	}
	return info
}

// TestRemarksCarryPositions is the regression test for the lowering
// position gaps: every remark of every benchmark at every level must
// anchor to a real source position — a zero Pos means some statement
// was constructed without one.
func TestRemarksCarryPositions(t *testing.T) {
	for _, b := range programs.All() {
		info := lowerBench(t, b.Name)
		for _, lvl := range AllLevels() {
			var errs source.ErrorList
			prog := lower.Lower(info, &errs)
			if errs.HasErrors() {
				t.Fatal(errs.Err())
			}
			plan := Apply(prog, lvl)
			for _, r := range plan.Remarks {
				if !r.Pos.IsValid() {
					t.Errorf("%s at %s: remark without position: %s", b.Name, lvl, r)
				}
				if r.Edge != nil && (!r.Edge.FromPos.IsValid() || !r.Edge.ToPos.IsValid()) {
					t.Errorf("%s at %s: edge witness without positions: %s", b.Name, lvl, r)
				}
			}
		}
	}
}

// TestDiagnosisAgreesWithPredicates pins the single-implementation
// property: the boolean legality predicates are wrappers over the
// diagnosing versions, so a remark can never contradict the decision
// it explains. Checked over the final partitions of every benchmark.
func TestDiagnosisAgreesWithPredicates(t *testing.T) {
	for _, b := range programs.All() {
		info := lowerBench(t, b.Name)
		var errs source.ErrorList
		prog := lower.Lower(info, &errs)
		if errs.HasErrors() {
			t.Fatal(errs.Err())
		}
		plan := Apply(prog, C2F3)
		cands := liveness.Candidates(prog)
		for _, bp := range plan.Blocks {
			p := bp.Part
			for _, c := range p.Clusters() {
				cs := map[int]bool{c: true}
				if got, want := diagnoseFusion(p, cs).OK, fusionPartitionOK(p, cs); got != want {
					t.Errorf("%s: diagnoseFusion=%v but fusionPartitionOK=%v for cluster %d",
						b.Name, got, want, c)
				}
			}
			for _, x := range cands[bp.Block] {
				cs := p.clustersReferencing(x)
				if len(cs) == 0 {
					continue
				}
				for d := range p.Grow(cs) {
					cs[d] = true
				}
				if got, want := diagnoseContraction(p, x, cs).OK, contractible(p, x, cs); got != want {
					t.Errorf("%s: diagnoseContraction=%v but contractible=%v for %s",
						b.Name, got, want, x)
				}
			}
		}
	}
}

// TestRemarkStringRendersEvidence pins the diagnostic line format the
// CLIs print: kind, subject, failed test, and the blocking edge.
func TestRemarkStringRendersEvidence(t *testing.T) {
	r := remark.Remark{
		Kind: remark.NotContracted, Block: 1, Array: "T",
		Pos:  source.Pos{Line: 4, Col: 2},
		Test: remark.TestNullVector, Reason: "non-null vector",
		Edge: &remark.Edge{From: 0, To: 2, Var: "T", Vector: "(0,1)", Dep: "flow"},
	}
	s := r.String()
	for _, want := range []string{"not-contracted T", "[def6-null-vector]", "on T, vector (0,1), flow dep"} {
		if !contains(s, want) {
			t.Errorf("remark string missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
