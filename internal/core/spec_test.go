package core

import (
	"strings"
	"testing"

	"repro/internal/air"
	"repro/internal/liveness"
	"repro/internal/lower"
	"repro/internal/programs"
	"repro/internal/source"
)

// lowerFresh lowers one benchmark to a fresh AIR program. Apply and
// ApplySpec both mutate the program (realignment, contraction flags),
// so every application needs its own copy.
func lowerFresh(t *testing.T, name string) *air.Program {
	t.Helper()
	info := lowerBench(t, name)
	var errs source.ErrorList
	prog := lower.Lower(info, &errs)
	if errs.HasErrors() {
		t.Fatal(errs.Err())
	}
	return prog
}

// TestSpecRoundtrip pins the external-plan contract: extracting the
// ladder's plan and re-applying it through ApplySpec reproduces the
// identical partitions and contraction set, for every benchmark at
// every level. This is what makes the ladder "one plan generator
// among several" — its output survives serialization.
func TestSpecRoundtrip(t *testing.T) {
	for _, b := range programs.All() {
		for _, lvl := range AllLevels() {
			progA := lowerFresh(t, b.Name)
			planA := Apply(progA, lvl)
			spec := Extract(planA)

			progB := lowerFresh(t, b.Name)
			planB, err := ApplySpec(progB, spec, Config{})
			if err != nil {
				t.Fatalf("%s at %s: ApplySpec: %v", b.Name, lvl, err)
			}
			if planB.Level != External {
				t.Errorf("%s at %s: applied level = %s, want external", b.Name, lvl, planB.Level)
			}
			if len(planA.Blocks) != len(planB.Blocks) {
				t.Fatalf("%s at %s: %d blocks vs %d", b.Name, lvl, len(planA.Blocks), len(planB.Blocks))
			}
			for i := range planA.Blocks {
				pa, pb := planA.Blocks[i].Part, planB.Blocks[i].Part
				if pa.String() != pb.String() {
					t.Errorf("%s at %s block %d: partition %s != %s",
						b.Name, lvl, i, pa, pb)
				}
				ca := strings.Join(planA.Blocks[i].Contracted, ",")
				cb := strings.Join(planB.Blocks[i].Contracted, ",")
				if ca != cb {
					t.Errorf("%s at %s block %d: contracted %q != %q",
						b.Name, lvl, i, ca, cb)
				}
			}
			for x := range planA.Contracted {
				if !planB.Contracted[x] {
					t.Errorf("%s at %s: %s contracted by ladder, not by spec", b.Name, lvl, x)
				}
			}
			// Double roundtrip: the re-applied plan extracts to the
			// same canonical spec, hence the same hash.
			if h1, h2 := spec.Hash(), Extract(planB).Hash(); h1 != h2 {
				t.Errorf("%s at %s: spec hash changed across roundtrip: %s vs %s",
					b.Name, lvl, h1[:12], h2[:12])
			}
		}
	}
}

// TestSpecHashCanonical pins the content address: the hash ignores
// provenance notes, member ordering within clusters, and cluster
// ordering within blocks.
func TestSpecHashCanonical(t *testing.T) {
	a := &PlanSpec{Version: 1, Blocks: []BlockSpec{
		{Block: 0, Clusters: [][]int{{0, 1}, {2, 4, 3}}, Contract: []string{"b", "a"}},
	}}
	b := &PlanSpec{Version: 1, Note: "found by beam search", Blocks: []BlockSpec{
		{Block: 0, Clusters: [][]int{{4, 3, 2}, {1, 0}}, Contract: []string{"a", "b"}},
	}}
	if a.Hash() != b.Hash() {
		t.Errorf("hash not canonical: %s vs %s", a.Hash()[:12], b.Hash()[:12])
	}
	c := &PlanSpec{Version: 1, Blocks: []BlockSpec{
		{Block: 0, Clusters: [][]int{{0, 1}}, Contract: []string{"a", "b"}},
	}}
	if a.Hash() == c.Hash() {
		t.Error("different plans share a hash")
	}
}

// TestApplySpecRejects proves a malformed or illegal spec is refused
// with a descriptive error, never silently repaired.
func TestApplySpecRejects(t *testing.T) {
	cases := []struct {
		name string
		spec *PlanSpec
		want string
	}{
		{"out-of-range vertex",
			&PlanSpec{Version: 1, Blocks: []BlockSpec{{Block: 0, Clusters: [][]int{{0, 999}}}}},
			"out of range"},
		{"duplicate vertex",
			&PlanSpec{Version: 1, Blocks: []BlockSpec{{Block: 0, Clusters: [][]int{{0, 1}, {1, 2}}}}},
			"two clusters"},
		{"block out of range",
			&PlanSpec{Version: 1, Blocks: []BlockSpec{{Block: 99, Clusters: [][]int{{0, 1}}}}},
			"out of range"},
		{"duplicate block",
			&PlanSpec{Version: 1, Blocks: []BlockSpec{
				{Block: 0, Contract: []string{"x"}}, {Block: 0, Contract: []string{"y"}}}},
			"twice"},
		{"unknown array",
			&PlanSpec{Version: 1, Blocks: []BlockSpec{{Block: 0, Contract: []string{"no_such"}}}},
			"unknown array"},
		{"nil spec", nil, "nil"},
	}
	for _, tc := range cases {
		prog := lowerFresh(t, "frac")
		_, err := ApplySpec(prog, tc.spec, Config{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestApplySpecRejectsIllegalFusion finds, via the remarks engine, a
// cluster pair whose merge genuinely fails a Definition 5 test, then
// submits a spec performing that merge and asserts rejection.
func TestApplySpecRejectsIllegalFusion(t *testing.T) {
	found := false
	for _, b := range programs.All() {
		prog := lowerFresh(t, b.Name)
		plan := Apply(prog, C2F4)
		for bi, bp := range plan.Blocks {
			for _, r := range plan.Remarks {
				if r.Block != bi || r.Kind != "not-fused" || r.Pair == nil {
					continue
				}
				if r.Test == "heuristic" || r.Test == "level" || r.Test == "plan" || r.Test == "" {
					continue
				}
				// Rebuild the block's cluster list with the pair merged.
				var clusters [][]int
				merged := append(append([]int(nil),
					bp.Part.Members(r.Pair[0])...), bp.Part.Members(r.Pair[1])...)
				clusters = append(clusters, merged)
				for _, c := range bp.Part.Clusters() {
					if c == r.Pair[0] || c == r.Pair[1] {
						continue
					}
					if ms := bp.Part.Members(c); len(ms) >= 2 {
						clusters = append(clusters, ms)
					}
				}
				spec := &PlanSpec{Version: 1, Blocks: []BlockSpec{{Block: bi, Clusters: clusters}}}
				prog2 := lowerFresh(t, b.Name)
				if _, err := ApplySpec(prog2, spec, Config{}); err == nil {
					t.Errorf("%s block %d: merging {v%d,v%d} (fails %s) was accepted",
						b.Name, bi, r.Pair[0], r.Pair[1], r.Test)
				}
				found = true
			}
		}
		if found {
			return
		}
	}
	t.Error("no genuinely illegal pair found in any benchmark — remark engine regression?")
}

// TestApplySpecRejectsUnsafeContraction asks for contraction of an
// array that liveness excludes.
func TestApplySpecRejectsUnsafeContraction(t *testing.T) {
	prog := lowerFresh(t, "frac")
	cands := liveness.Candidates(prog)
	approved := map[string]bool{}
	for _, xs := range cands {
		for _, x := range xs {
			approved[x] = true
		}
	}
	victim := ""
	for name := range prog.Arrays {
		if !approved[name] {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Skip("every array of frac is a candidate")
	}
	spec := &PlanSpec{Version: 1, Blocks: []BlockSpec{{Block: 0, Contract: []string{victim}}}}
	if _, err := ApplySpec(prog, spec, Config{}); err == nil ||
		!strings.Contains(err.Error(), "liveness") {
		t.Errorf("contracting non-candidate %s: err = %v", victim, err)
	}
}

// TestParseSpec pins the decode contract: unknown fields and future
// versions are rejected at the boundary.
func TestParseSpec(t *testing.T) {
	good := []byte(`{"version":1,"blocks":[{"block":0,"clusters":[[0,1]]}]}`)
	s, err := ParseSpec(good)
	if err != nil || len(s.Blocks) != 1 {
		t.Fatalf("ParseSpec(good) = %v, %v", s, err)
	}
	if _, err := ParseSpec([]byte(`{"version":1,"surprise":true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
