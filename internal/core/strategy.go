package core

import (
	"fmt"
	"sort"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/liveness"
	"repro/internal/remark"
)

// Level is one of the incremental optimization strategies of §5.4.
type Level int

// The strategy ladder, in the paper's order.
const (
	// Baseline performs no fusion or contraction.
	Baseline Level = iota
	// F1 fuses to enable contraction of compiler arrays, without
	// performing the contraction.
	F1
	// C1 is F1 plus the contraction of compiler arrays.
	C1
	// F2 is C1 plus fusion to enable contraction of user arrays,
	// without contracting them.
	F2
	// F3 is C1 plus fusion for locality.
	F3
	// C2 is C1 plus fusion and contraction of user arrays.
	C2
	// C2F3 is C2 plus fusion for locality.
	C2F3
	// C2F4 is C2F3 plus all legal fusion by a greedy pairwise pass.
	C2F4
	// C2F4S is C2F3 plus spatial-locality-sensitive pairwise fusion
	// (only statements sharing operands merge) — the extension §5.4
	// leaves to future work.
	C2F4S
)

// External marks a plan that was supplied from outside the strategy
// ladder (ApplySpec): a serialized PlanSpec, e.g. one found by the
// zpltune search engine. It is not a ladder rung and never parses.
const External Level = -1

var levelNames = map[Level]string{
	Baseline: "baseline", F1: "f1", C1: "c1", F2: "f2",
	F3: "f3", C2: "c2", C2F3: "c2+f3", C2F4: "c2+f4", C2F4S: "c2+f4s",
	External: "external",
}

func (l Level) String() string {
	if s, ok := levelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Levels lists the paper's §5.4 ladder in order.
func Levels() []Level {
	return []Level{Baseline, F1, C1, F2, F3, C2, C2F3, C2F4}
}

// AllLevels is Levels plus this implementation's extensions.
func AllLevels() []Level {
	return append(Levels(), C2F4S)
}

// ParseLevel maps a strategy name ("c2", "c2+f3", "c2f3", ...) to its Level.
func ParseLevel(s string) (Level, error) {
	for l, n := range levelNames {
		if s == n && l != External {
			return l, nil
		}
	}
	switch s {
	case "c2f3":
		return C2F3, nil
	case "c2f4":
		return C2F4, nil
	case "c2f4s":
		return C2F4S, nil
	}
	return Baseline, fmt.Errorf("unknown optimization level %q", s)
}

// ContractsTemps reports whether the level performs compiler-array
// contraction.
func (l Level) ContractsTemps() bool { return l >= C1 }

// ContractsUsers reports whether the level performs user-array
// contraction.
func (l Level) ContractsUsers() bool {
	return l == C2 || l == C2F3 || l == C2F4 || l == C2F4S
}

// FusesUsers reports whether the level fuses for user-array
// contraction (even if it does not contract).
func (l Level) FusesUsers() bool { return l == F2 || l.ContractsUsers() }

// BlockPlan is the fusion decision for one block.
type BlockPlan struct {
	Block      *air.Block
	Graph      *asdg.Graph
	Part       *Partition
	Contracted []string // arrays contracted in this block
}

// Plan is the whole-program fusion/contraction decision.
type Plan struct {
	Level      Level
	Blocks     []*BlockPlan
	Contracted map[string]bool
	// Realigned records whether the temporary-realignment pre-pass ran
	// before the ASDG was built. A PlanSpec extracted from this plan
	// must replay the same pre-pass, or its vertex indices would name a
	// differently-shaped graph.
	Realigned bool
	// Remarks explains every decision: one record per fused cluster,
	// per edge-connected unfused cluster pair, per (un)contracted
	// candidate, and per liveness-excluded temporary. Always recorded
	// — remarks are evidence, not an optimization mode, and they are
	// derived from the final plan so they cost one extra diagnosis
	// pass per block.
	Remarks []remark.Remark
}

// BlockPlanFor returns the plan for block b, or nil.
func (p *Plan) BlockPlanFor(b *air.Block) *BlockPlan {
	for _, bp := range p.Blocks {
		if bp.Block == b {
			return bp
		}
	}
	return nil
}

// Config tunes Apply for distributed compilation.
type Config struct {
	// DisableRealign suppresses the temporary-realignment pre-pass
	// (required when arrays are distributed: a realigned temporary
	// would itself need communication).
	DisableRealign bool
	// SegmentFn, when non-nil, labels a block's statements with
	// communication segments; fusion may not cross segment boundaries
	// (the FavorComm strategy of §5.5).
	SegmentFn func(stmts []air.Stmt) []int
	// PhaseStart/PhaseEnd observe the optimizer's internal phases for
	// metrics: "asdg" (dependence-graph construction), "fusion" (the
	// partitioning ladder), and "contraction" (contraction
	// bookkeeping), emitted once per statement block. Either may be
	// nil.
	PhaseStart func(name string)
	PhaseEnd   func(name string)
}

func (c Config) begin(name string) {
	if c.PhaseStart != nil {
		c.PhaseStart(name)
	}
}

func (c Config) done(name string) {
	if c.PhaseEnd != nil {
		c.PhaseEnd(name)
	}
}

// Apply runs the strategy ladder on every block of the program. It
// mutates prog only by marking contracted arrays (and, at user-
// contraction levels, realigning compiler temporaries); scalarization
// consumes the returned plan.
func Apply(prog *air.Program, level Level) *Plan {
	return ApplyEx(prog, level, Config{})
}

// ApplyEx is Apply with distribution-aware configuration.
func ApplyEx(prog *air.Program, level Level, cfg Config) *Plan {
	cands, live := liveness.Explain(prog)
	plan := &Plan{Level: level, Contracted: map[string]bool{}}

	for bi, b := range prog.AllBlocks() {
		candidates := cands[b]
		if level.FusesUsers() && !cfg.DisableRealign {
			RealignTemps(prog, b, candidates)
			plan.Realigned = true
		}
		cfg.begin("asdg")
		g := asdg.Build(b.Stmts)
		if cfg.SegmentFn != nil {
			g.Seg = cfg.SegmentFn(b.Stmts)
		}
		cfg.done("asdg")

		cfg.begin("fusion")
		p, contracted := LadderPartition(prog, g, level, candidates)
		cfg.done("fusion")

		bp := &BlockPlan{Block: b, Graph: g, Part: p}
		cfg.begin("contraction")
		for x := range contracted {
			bp.Contracted = append(bp.Contracted, x)
			plan.Contracted[x] = true
			if a := prog.Arrays[x]; a != nil {
				a.Contracted = true
			}
		}
		sort.Strings(bp.Contracted)
		plan.Remarks = append(plan.Remarks,
			explainBlock(prog, level, bi, b, g, p, contracted, candidates, live)...)
		cfg.done("contraction")
		plan.Blocks = append(plan.Blocks, bp)
	}
	return plan
}

// LadderPartition runs one rung of the §5.4 strategy ladder on a
// single block's graph, returning the fusion partition and the set of
// arrays the rung contracts. candidates is the block's liveness-
// approved contraction candidate list; the rungs below user
// contraction narrow it to compiler temporaries themselves. The
// External level (no ladder rung) degrades to the trivial partition.
//
// This is the ladder as one plan generator among several: ApplyEx
// calls it, and the zpltune search engine calls it to seed and score
// the heuristic plans it competes against.
func LadderPartition(prog *air.Program, g *asdg.Graph, level Level,
	candidates []string) (*Partition, map[string]bool) {

	var temps []string
	for _, x := range candidates {
		if a := prog.Arrays[x]; a != nil && a.Temp {
			temps = append(temps, x)
		}
	}

	var p *Partition
	contracted := map[string]bool{}
	switch level {
	case Baseline:
		p = Trivial(g)
	case F1:
		p, _ = FusionForContraction(g, nil, temps)
	case C1:
		p, contracted = FusionForContraction(g, nil, temps)
	case F2:
		var all map[string]bool
		p, all = FusionForContraction(g, nil, candidates)
		for x := range all {
			if a := prog.Arrays[x]; a != nil && a.Temp {
				contracted[x] = true
			}
		}
	case F3:
		p, contracted = FusionForContraction(g, nil, temps)
		p = FusionForLocality(g, p, AllArrays(g))
	case C2:
		p, contracted = FusionForContraction(g, nil, candidates)
	case C2F3:
		p, contracted = FusionForContraction(g, nil, candidates)
		p = FusionForLocality(g, p, AllArrays(g))
	case C2F4:
		p, contracted = FusionForContraction(g, nil, candidates)
		p = FusionForLocality(g, p, AllArrays(g))
		p = GreedyPairwise(p)
	case C2F4S:
		p, contracted = FusionForContraction(g, nil, candidates)
		p = FusionForLocality(g, p, AllArrays(g))
		p = GreedyPairwiseShared(p, 1)
	default:
		p = Trivial(g)
	}
	return p, contracted
}

// StaticArrayCounts reports, for Fig. 7, the number of static arrays
// before contraction and after, split into compiler/user arrays.
// Arrays that are never referenced by any statement are ignored.
type StaticArrayCounts struct {
	TotalCompiler      int
	TotalUser          int
	ContractedCompiler int
	ContractedUser     int
}

// Before returns the static array count prior to contraction.
func (c StaticArrayCounts) Before() int { return c.TotalCompiler + c.TotalUser }

// After returns the static array count remaining after contraction.
func (c StaticArrayCounts) After() int {
	return c.Before() - c.ContractedCompiler - c.ContractedUser
}

// CountStaticArrays tallies the program's arrays and the plan's
// contraction decisions.
func CountStaticArrays(prog *air.Program, plan *Plan) StaticArrayCounts {
	var counts StaticArrayCounts
	for name, a := range prog.Arrays {
		if a.Temp {
			counts.TotalCompiler++
			if plan.Contracted[name] {
				counts.ContractedCompiler++
			}
		} else {
			counts.TotalUser++
			if plan.Contracted[name] {
				counts.ContractedUser++
			}
		}
	}
	return counts
}
