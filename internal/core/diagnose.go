package core

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/dep"
	"repro/internal/remark"
	"repro/internal/sema"
	"repro/internal/source"
)

// fuseDiag is the verdict of the FUSION-PARTITION? predicate with
// evidence: when !OK, Test names the failed legality test and Edge (or
// Pos) points at the concrete witness.
type fuseDiag struct {
	OK     bool
	Test   string
	Reason string
	Detail string
	Pos    source.Pos
	Edge   *remark.Edge
}

// contractDiag is the verdict of the CONTRACTIBLE? predicate with
// evidence. Offending counts the blocking dependence items; when it is
// exactly 1 and attributable to a single read offset, Fixit carries an
// actionable suggestion.
type contractDiag struct {
	OK        bool
	Test      string
	Reason    string
	Detail    string
	Fixit     string
	Pos       source.Pos
	Edge      *remark.Edge
	Offending int
}

// witnessEdge renders a dependence item as a remark witness.
func witnessEdge(g *asdg.Graph, e *dep.Edge, it dep.Item) *remark.Edge {
	vec := "-"
	if it.Vector {
		vec = it.U.String()
	}
	return &remark.Edge{
		From:    e.From,
		To:      e.To,
		FromPos: air.PosOf(g.Stmts[e.From]),
		ToPos:   air.PosOf(g.Stmts[e.To]),
		Var:     it.Var,
		Vector:  vec,
		Dep:     it.Kind.String(),
	}
}

// setMembers returns, in ascending vertex order, the members of every
// cluster in cs. Vertex order keeps the diagnosis deterministic (map
// iteration over cs is not).
func setMembers(p *Partition, cs map[int]bool) []int {
	var out []int
	for v := 0; v < p.G.N(); v++ {
		if cs[p.rep[v]] {
			out = append(out, v)
		}
	}
	return out
}

// diagnoseFusion is fusionPartitionOK with evidence: it re-checks
// every Definition 5 condition (plus the segment constraint) over the
// would-be merged cluster set and, on failure, reports which test
// failed and the first offending statement or dependence edge in
// program order. The success path performs exactly the checks of
// fusionPartitionOK; witnesses are only materialized on failure.
func diagnoseFusion(p *Partition, cs map[int]bool) fuseDiag {
	if len(cs) < 2 {
		return fuseDiag{OK: true}
	}
	members := setMembers(p, cs)

	// FavorComm segment constraint: fusion may not cross a
	// communication primitive (it would shrink the overlap window).
	if p.G.Seg != nil {
		seg, segV := -1, -1
		for _, v := range members {
			if seg < 0 {
				seg, segV = p.G.Seg[v], v
			} else if p.G.Seg[v] != seg {
				return fuseDiag{
					Test:   remark.TestSegment,
					Reason: "fusion would cross a communication segment boundary",
					Detail: fmt.Sprintf("v%d is in segment %d, v%d in segment %d", segV, seg, v, p.G.Seg[v]),
					Pos:    air.PosOf(p.G.Stmts[v]),
				}
			}
		}
	}

	// Conditions (i) + fusibility: every member statement is fusible
	// and operates under one region (or an exact translate of it).
	var reg *sema.Region
	var regV int
	for _, v := range members {
		if !p.G.IsFusible(v) {
			return fuseDiag{
				Test:   remark.TestFusible,
				Reason: fmt.Sprintf("statement v%d is not a fusible (normalized) statement", v),
				Detail: "cycle closure (GROW) may have pulled the statement into the merge set",
				Pos:    air.PosOf(p.G.Stmts[v]),
			}
		}
		r := p.G.StmtRegion(v)
		if reg == nil {
			reg, regV = r, v
		} else if !Translates(reg, r) {
			return fuseDiag{
				Test:   remark.TestConformable,
				Reason: "member statements iterate over non-conformable regions",
				Detail: fmt.Sprintf("v%d runs over %s, v%d over %s", regV, reg, v, r),
				Pos:    air.PosOf(p.G.Stmts[v]),
			}
		}
	}

	// Conditions (ii) and (iv) over the would-be intra-cluster deps.
	vectors, flowsNull, ok := p.IntraVectors(cs)
	if !ok || !flowsNull {
		// Walk the edges again to attribute the failure to the first
		// offending item in program order.
		for ei := range p.G.Edges {
			e := &p.G.Edges[ei]
			if !cs[p.rep[e.From]] || !cs[p.rep[e.To]] {
				continue
			}
			for _, it := range e.Items {
				switch {
				case !it.Vector:
					return fuseDiag{
						Test:   remark.TestOrderingOnly,
						Reason: "an intra-cluster dependence carries no distance vector",
						Edge:   witnessEdge(p.G, e, it),
						Pos:    air.PosOf(p.G.Stmts[e.From]),
					}
				case it.Kind == dep.Flow && !it.U.IsZero():
					return fuseDiag{
						Test:   remark.TestNullFlow,
						Reason: "fusing would make a non-null flow dependence intra-cluster (contraction-unsafe ordering)",
						Edge:   witnessEdge(p.G, e, it),
						Pos:    air.PosOf(p.G.Stmts[e.From]),
					}
				case p.NoCarriedAnti && it.Kind == dep.Anti && !it.U.IsZero():
					return fuseDiag{
						Test:   remark.TestCarriedAnti,
						Reason: "the fused cluster would carry a non-null anti dependence (emulated compiler restriction)",
						Edge:   witnessEdge(p.G, e, it),
						Pos:    air.PosOf(p.G.Stmts[e.From]),
					}
				}
			}
		}
		// Unreachable: IntraVectors failed, so an offender exists.
		return fuseDiag{Test: remark.TestNullFlow, Reason: "intra-cluster dependence vectors are illegal"}
	}
	if _, found := FindLoopStructure(reg.Rank(), vectors); !found {
		d := fuseDiag{
			Test:   remark.TestLoopStructure,
			Reason: "FIND-LOOP-STRUCTURE: no loop structure vector preserves every intra-cluster dependence",
			Detail: fmt.Sprintf("intra-cluster distance vectors %v", vectors),
		}
		// Witness: the first non-null-vector dependence (an all-null
		// vector set always admits the identity structure).
		for ei := range p.G.Edges {
			e := &p.G.Edges[ei]
			if !cs[p.rep[e.From]] || !cs[p.rep[e.To]] {
				continue
			}
			for _, it := range e.Items {
				if it.Vector && !it.U.IsZero() {
					d.Edge = witnessEdge(p.G, e, it)
					d.Pos = air.PosOf(p.G.Stmts[e.From])
					return d
				}
			}
		}
		return d
	}
	return fuseDiag{OK: true}
}

// diagnoseContraction is contractible (Definition 6) with evidence:
// every dependence due to x must run inside the fused cluster set with
// a null unconstrained distance vector. On failure it reports the
// first offending edge, counts all offenders, and — when a single
// non-null flow dependence is the only blocker — emits a fix-it note
// naming the read offset the user would have to align.
func diagnoseContraction(p *Partition, x string, cs map[int]bool) contractDiag {
	d := contractDiag{OK: true}
	var fixOff air.Offset
	for ei := range p.G.Edges {
		e := &p.G.Edges[ei]
		for _, it := range e.Items {
			if it.Var != x {
				continue
			}
			switch {
			case !cs[p.ClusterOf(e.From)] || !cs[p.ClusterOf(e.To)]:
				d.Offending++
				fixOff = nil
				if d.OK {
					d.OK = false
					d.Test = remark.TestConfined
					d.Reason = fmt.Sprintf("a dependence on %s escapes the fused cluster (Def. 6 condition (i))", x)
					d.Edge = witnessEdge(p.G, e, it)
					d.Pos = air.PosOf(p.G.Stmts[e.To])
				}
			case !it.Vector || !it.U.IsZero():
				d.Offending++
				if d.OK {
					d.OK = false
					d.Test = remark.TestNullVector
					if !it.Vector {
						d.Reason = fmt.Sprintf("a dependence on %s carries no distance vector (Def. 6 condition (ii))", x)
					} else {
						d.Reason = fmt.Sprintf("a dependence on %s has non-null unconstrained distance vector %s (Def. 6 condition (ii))", x, it.U)
					}
					d.Edge = witnessEdge(p.G, e, it)
					d.Pos = air.PosOf(p.G.Stmts[e.To])
					if it.Kind == dep.Flow && it.Vector {
						// u = src_off − dst_off and the producing write
						// is at offset zero, so the offending read sits
						// at −u.
						fixOff = make(air.Offset, len(it.U))
						for i, u := range it.U {
							fixOff[i] = -u
						}
					}
				} else {
					fixOff = nil
				}
			}
		}
	}
	if d.Offending == 1 && fixOff != nil {
		d.Fixit = fmt.Sprintf("%s would contract but for the single read at offset %s (%s); aligning that reference with its producer (offset %s) enables contraction",
			x, fixOff, d.Edge.ToPos, air.Zero(len(fixOff)))
	}
	return d
}
