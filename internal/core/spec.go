package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/liveness"
	"repro/internal/remark"
)

// SpecVersion is the current PlanSpec serialization version.
const SpecVersion = 1

// BlockSpec is one block's share of an externally supplied plan:
// which statements fuse, and which arrays contract. Clusters name
// vertex indices of the block's ASDG (built after the realign
// pre-pass when the spec requests it); only clusters of two or more
// members are listed — unlisted vertices are singletons. Contract
// lists the block's contracted arrays.
type BlockSpec struct {
	Block    int      `json:"block"`
	Clusters [][]int  `json:"clusters,omitempty"`
	Contract []string `json:"contract,omitempty"`
}

// PlanSpec is a serializable whole-program fusion/contraction plan
// that can be applied independently of the strategy ladder: the ladder
// is one plan generator, the zpltune search engine another, and a JSON
// file on disk a third. Vertex indices refer to each block's ASDG as
// built by ApplySpec, so Realign must record whether the temporary-
// realignment pre-pass ran before graph construction.
type PlanSpec struct {
	Version int  `json:"version"`
	Realign bool `json:"realign,omitempty"`
	// Note is free-form provenance ("beam search, width 8, score
	// 12345") surfaced as a plan-kind remark; it does not affect the
	// plan's hash.
	Note   string      `json:"note,omitempty"`
	Blocks []BlockSpec `json:"blocks"`
}

// Extract serializes a plan produced by ApplyEx (or ApplySpec) into
// its canonical PlanSpec.
func Extract(plan *Plan) *PlanSpec {
	spec := &PlanSpec{Version: SpecVersion, Realign: plan.Realigned}
	for bi, bp := range plan.Blocks {
		bs := BlockSpec{Block: bi}
		for _, c := range bp.Part.Clusters() {
			members := bp.Part.Members(c)
			if len(members) >= 2 {
				bs.Clusters = append(bs.Clusters, members)
			}
		}
		bs.Contract = append(bs.Contract, bp.Contracted...)
		spec.Blocks = append(spec.Blocks, bs)
	}
	spec.canonicalize()
	return spec
}

// canonicalize puts the spec in its unique normal form: members
// ascending within a cluster, clusters by first member, contraction
// lists sorted, blocks by index, empty blocks dropped.
func (s *PlanSpec) canonicalize() {
	var blocks []BlockSpec
	for _, b := range s.Blocks {
		for _, c := range b.Clusters {
			sort.Ints(c)
		}
		sort.Slice(b.Clusters, func(i, j int) bool {
			return b.Clusters[i][0] < b.Clusters[j][0]
		})
		sort.Strings(b.Contract)
		if len(b.Clusters) > 0 || len(b.Contract) > 0 {
			blocks = append(blocks, b)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Block < blocks[j].Block })
	s.Blocks = blocks
}

// Marshal renders the spec as canonical indented JSON.
func (s *PlanSpec) Marshal() ([]byte, error) {
	c := *s
	c.Blocks = append([]BlockSpec(nil), s.Blocks...)
	c.canonicalize()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Hash returns the spec's content address: the SHA-256 of its
// canonical JSON with provenance (Note) stripped, so two searches
// that find the same plan share a cache entry.
func (s *PlanSpec) Hash() string {
	c := *s
	c.Blocks = append([]BlockSpec(nil), s.Blocks...)
	c.Note = ""
	c.canonicalize()
	b, err := json.Marshal(&c)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ParseSpec decodes a PlanSpec from JSON, rejecting unknown fields
// and unsupported versions.
func ParseSpec(data []byte) (*PlanSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s PlanSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("plan spec: %v", err)
	}
	if s.Version < 0 || s.Version > SpecVersion {
		return nil, fmt.Errorf("plan spec: unsupported version %d (max %d)", s.Version, SpecVersion)
	}
	return &s, nil
}

// ApplySpec applies an externally supplied plan to the program: the
// same pipeline position as ApplyEx, but the fusion partition and
// contraction set come from the spec instead of the strategy ladder.
// Every Definition 5/6 condition is re-proved on the supplied plan —
// a spec that names an illegal fusion or an unsafe contraction is
// rejected with a descriptive error, never silently repaired. The
// returned plan has Level External and carries the usual remarks
// (negative decisions cite test "plan") plus one plan-kind remark
// with the spec's provenance note.
func ApplySpec(prog *air.Program, spec *PlanSpec, cfg Config) (*Plan, error) {
	if spec == nil {
		return nil, fmt.Errorf("plan spec: nil")
	}
	byBlock := map[int]*BlockSpec{}
	for i := range spec.Blocks {
		b := &spec.Blocks[i]
		if prev := byBlock[b.Block]; prev != nil {
			return nil, fmt.Errorf("plan spec: block %d specified twice", b.Block)
		}
		byBlock[b.Block] = b
	}

	cands, live := liveness.Explain(prog)
	plan := &Plan{Level: External, Contracted: map[string]bool{}}

	blocks := prog.AllBlocks()
	for bi := range byBlock {
		if bi < 0 || bi >= len(blocks) {
			return nil, fmt.Errorf("plan spec: block %d out of range [0,%d)", bi, len(blocks))
		}
	}

	for bi, b := range blocks {
		candidates := cands[b]
		if spec.Realign && !cfg.DisableRealign {
			RealignTemps(prog, b, candidates)
			plan.Realigned = true
		}
		cfg.begin("asdg")
		g := asdg.Build(b.Stmts)
		if cfg.SegmentFn != nil {
			g.Seg = cfg.SegmentFn(b.Stmts)
		}
		cfg.done("asdg")

		bs := byBlock[bi]
		cfg.begin("fusion")
		p, err := specPartition(g, bi, bs)
		cfg.done("fusion")
		if err != nil {
			return nil, err
		}

		bp := &BlockPlan{Block: b, Graph: g, Part: p}
		cfg.begin("contraction")
		contracted, err := specContraction(prog, bi, bs, p, candidates)
		if err != nil {
			cfg.done("contraction")
			return nil, err
		}
		for x := range contracted {
			bp.Contracted = append(bp.Contracted, x)
			plan.Contracted[x] = true
			if a := prog.Arrays[x]; a != nil {
				a.Contracted = true
			}
		}
		sort.Strings(bp.Contracted)
		plan.Remarks = append(plan.Remarks,
			explainBlock(prog, External, bi, b, g, p, contracted, candidates, live)...)
		cfg.done("contraction")
		plan.Blocks = append(plan.Blocks, bp)
	}
	if spec.Note != "" {
		plan.Remarks = append(plan.Remarks, remark.Remark{
			Kind: remark.Plan, Pass: "tune",
			Reason: spec.Note,
			Detail: "plan " + spec.Hash()[:12],
		})
	}
	return plan, nil
}

// specPartition builds and legality-checks one block's partition.
func specPartition(g *asdg.Graph, bi int, bs *BlockSpec) (*Partition, error) {
	if bs == nil {
		return Trivial(g), nil
	}
	p, err := FromClusters(g, bs.Clusters)
	if err != nil {
		return nil, fmt.Errorf("plan spec: block %d: %v", bi, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan spec: block %d: illegal fusion: %v", bi, err)
	}
	// Validate proves Definition 5; the FavorComm segment constraint
	// (fusion may not cross a communication segment) is checked here.
	if g.Seg != nil {
		for _, c := range p.Clusters() {
			members := p.Members(c)
			for _, v := range members[1:] {
				if g.Seg[v] != g.Seg[members[0]] {
					return nil, fmt.Errorf("plan spec: block %d: cluster {v%d…} crosses communication segments (%d vs %d)",
						bi, members[0], g.Seg[members[0]], g.Seg[v])
				}
			}
		}
	}
	return p, nil
}

// specContraction re-proves each requested contraction: the array must
// be a liveness candidate in the block, every referencing statement
// must share one cluster, and every dependence on it must carry a null
// vector (Definition 6).
func specContraction(prog *air.Program, bi int, bs *BlockSpec,
	p *Partition, candidates []string) (map[string]bool, error) {

	contracted := map[string]bool{}
	if bs == nil {
		return contracted, nil
	}
	cand := map[string]bool{}
	for _, x := range candidates {
		cand[x] = true
	}
	for _, x := range bs.Contract {
		if contracted[x] {
			return nil, fmt.Errorf("plan spec: block %d: array %s contracted twice", bi, x)
		}
		if prog.Arrays[x] == nil {
			return nil, fmt.Errorf("plan spec: block %d: unknown array %s", bi, x)
		}
		if !cand[x] {
			return nil, fmt.Errorf("plan spec: block %d: array %s is not a liveness-approved contraction candidate (its value escapes the block)", bi, x)
		}
		cs := p.ClustersReferencing(x)
		if len(cs) == 0 {
			return nil, fmt.Errorf("plan spec: block %d: array %s is referenced by no fusible statement", bi, x)
		}
		if len(cs) > 1 {
			return nil, fmt.Errorf("plan spec: block %d: array %s is referenced by %d distinct clusters; contraction requires all references in one fused cluster", bi, x, len(cs))
		}
		if !ContractionOK(p, x, cs) {
			return nil, fmt.Errorf("plan spec: block %d: array %s fails Definition 6 (a dependence on it escapes the cluster or carries a non-null vector)", bi, x)
		}
		contracted[x] = true
	}
	return contracted, nil
}
