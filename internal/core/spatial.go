package core

import (
	"repro/internal/air"
)

// GreedyPairwiseShared is the spatial-locality-sensitive variant of
// greedy pairwise fusion that §5.4 leaves to future work: SP slowed
// down under plain f4's indiscriminate fusion everywhere except where
// independent statements actually share operands. This variant merges
// a cluster pair only when the two clusters reference at least
// minShared common arrays — fusing exactly the statements whose
// combination yields register/cache reuse, and leaving unrelated
// statements in their own nests where they stream best.
func GreedyPairwiseShared(p *Partition, minShared int) *Partition {
	if minShared < 1 {
		minShared = 1
	}
	refs := func(c int) map[string]bool {
		out := map[string]bool{}
		for _, v := range p.Members(c) {
			switch s := p.G.Stmts[v].(type) {
			case *air.ArrayStmt:
				out[s.LHS] = true
				for _, r := range s.Reads() {
					out[r.Array] = true
				}
			case *air.ReduceStmt:
				for _, r := range air.Refs(s.Body) {
					out[r.Array] = true
				}
			}
		}
		return out
	}
	shared := func(a, b map[string]bool) int {
		n := 0
		for x := range a {
			if b[x] {
				n++
			}
		}
		return n
	}
	for {
		merged := false
		cl := p.Clusters()
		for i := 0; i < len(cl) && !merged; i++ {
			ri := refs(cl[i])
			for j := i + 1; j < len(cl) && !merged; j++ {
				if shared(ri, refs(cl[j])) < minShared {
					continue
				}
				c := map[int]bool{cl[i]: true, cl[j]: true}
				for d := range p.Grow(c) {
					c[d] = true
				}
				if fusionPartitionOK(p, c) {
					p.MergeSet(c)
					merged = true
				}
			}
		}
		if !merged {
			return p
		}
	}
}
