package core

import (
	"sort"

	"repro/internal/air"
	"repro/internal/asdg"
)

// Weight computes the reference weight w(x, G) of §3: the number of
// array element references that contraction of x would eliminate — the
// number of array-level references to x, each weighted by the size of
// the region over which it occurs.
func Weight(g *asdg.Graph, x string) int {
	w := 0
	for v := 0; v < g.N(); v++ {
		switch s := g.Stmts[v].(type) {
		case *air.ArrayStmt:
			if s.LHS == x {
				w += s.Region.Size()
			}
			for _, r := range s.Reads() {
				if r.Array == x {
					w += s.Region.Size()
				}
			}
		case *air.ReduceStmt:
			for _, r := range air.Refs(s.Body) {
				if r.Array == x {
					w += s.Region.Size()
				}
			}
		}
	}
	return w
}

// ByDecreasingWeight sorts array names by decreasing w(x, G), breaking
// ties by name for determinism (line 3 of Fig. 3).
func ByDecreasingWeight(g *asdg.Graph, names []string) []string {
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool {
		wi, wj := Weight(g, out[i]), Weight(g, out[j])
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}

// fusionPartitionOK is the FUSION-PARTITION? predicate: merging the
// clusters in cs must yield a valid fusion partition (Definition 5).
// Inter-cluster cycles need not be checked here — the caller has
// already applied Grow (the paper makes the same observation).
//
// The checks live in diagnoseFusion (diagnose.go), which shares one
// implementation between the hot greedy loops (which only need the
// boolean) and the remarks engine (which needs the witness). We admit
// exact translates of a region as well as equal regions (equal
// extents, shifted bounds): realigned compiler temporaries produce
// such clusters, and scalarization guards the shifted statements
// inside the union loop nest.
func fusionPartitionOK(p *Partition, cs map[int]bool) bool {
	return diagnoseFusion(p, cs).OK
}

// contractible is the CONTRACTIBLE? predicate (Definition 6): after
// fusing the clusters in cs, array x is contractible iff every
// dependence due to x runs between vertices of the fused cluster and
// carries a null unconstrained distance vector. The caller must also
// have established that x's live range permits elimination (package
// liveness).
func contractible(p *Partition, x string, cs map[int]bool) bool {
	return diagnoseContraction(p, x, cs).OK
}

// FusionOK exposes the FUSION-PARTITION? predicate to external plan
// generators: merging the clusters in cs must yield a valid fusion
// partition. As with fusionPartitionOK, the caller is responsible for
// closing cs under Grow first.
func FusionOK(p *Partition, cs map[int]bool) bool {
	return fusionPartitionOK(p, cs)
}

// ContractionOK exposes the CONTRACTIBLE? predicate to external plan
// generators: after fusing the clusters in cs, array x is contractible
// iff every dependence due to x is confined to the fused cluster with
// a null unconstrained distance vector. Liveness candidacy is the
// caller's obligation, exactly as for contractible.
func ContractionOK(p *Partition, x string, cs map[int]bool) bool {
	return contractible(p, x, cs)
}

// FusionForContraction is the algorithm of Fig. 3. candidates is the
// set of arrays whose live ranges allow elimination; the algorithm
// considers them in order of decreasing reference weight and fuses the
// clusters referencing each when that makes the array contractible.
// It returns the partition and the set of arrays for which contraction
// was enabled.
//
// When p is non-nil the algorithm refines the given partition instead
// of starting from the trivial one (used to layer strategies).
func FusionForContraction(g *asdg.Graph, p *Partition, candidates []string) (*Partition, map[string]bool) {
	if p == nil {
		p = Trivial(g)
	}
	contracted := map[string]bool{}
	for _, x := range ByDecreasingWeight(g, candidates) {
		c := p.clustersReferencing(x)
		if len(c) == 0 {
			continue
		}
		for d := range p.Grow(c) {
			c[d] = true
		}
		if contractible(p, x, c) && fusionPartitionOK(p, c) {
			p.MergeSet(c)
			contracted[x] = true
		}
	}
	return p, contracted
}

// FusionForLocality is the variant described at the end of §4.1: the
// same greedy weight-ordered collective fusion, with the CONTRACTIBLE?
// test removed — all statements referencing the array with the largest
// locality benefit are fused when legal.
func FusionForLocality(g *asdg.Graph, p *Partition, arrays []string) *Partition {
	if p == nil {
		p = Trivial(g)
	}
	for _, x := range ByDecreasingWeight(g, arrays) {
		c := p.clustersReferencing(x)
		if len(c) < 2 {
			continue
		}
		for d := range p.Grow(c) {
			c[d] = true
		}
		if fusionPartitionOK(p, c) {
			p.MergeSet(c)
		}
	}
	return p
}

// GreedyPairwise performs all legal fusion by a greedy pairwise
// algorithm (the f4 transformation of §5.4): repeatedly try to merge
// any two clusters (plus the cycle closure Grow demands) until no pair
// can be merged.
func GreedyPairwise(p *Partition) *Partition {
	for {
		merged := false
		cl := p.Clusters()
		for i := 0; i < len(cl) && !merged; i++ {
			for j := i + 1; j < len(cl) && !merged; j++ {
				c := map[int]bool{cl[i]: true, cl[j]: true}
				for d := range p.Grow(c) {
					c[d] = true
				}
				if fusionPartitionOK(p, c) {
					p.MergeSet(c)
					merged = true
				}
			}
		}
		if !merged {
			return p
		}
	}
}

// AllArrays returns the names of arrays referenced by fusible
// statements of the graph, for locality-fusion candidate lists.
func AllArrays(g *asdg.Graph) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for v := 0; v < g.N(); v++ {
		switch s := g.Stmts[v].(type) {
		case *air.ArrayStmt:
			add(s.LHS)
			for _, r := range s.Reads() {
				add(r.Array)
			}
		case *air.ReduceStmt:
			for _, r := range air.Refs(s.Body) {
				add(r.Array)
			}
		}
	}
	sort.Strings(out)
	return out
}
