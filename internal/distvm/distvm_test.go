package distvm_test

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distvm"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/vm"
)

// runBoth compiles src for procs processors, executes sequentially and
// distributed, and compares every non-contracted array element and the
// writeln transcripts.
func runBoth(t *testing.T, src string, lvl core.Level, procs int, cfg map[string]int64) {
	t.Helper()
	// Sequential reference: same optimization level, no communication.
	ref, err := driver.Compile(src, driver.Options{Level: lvl, Configs: cfg})
	if err != nil {
		t.Fatalf("sequential compile: %v", err)
	}
	var refOut bytes.Buffer
	refM, _, err := vm.Run(ref.LIR, vm.Options{Out: &refOut})
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}

	// Distributed: communication inserted, real exchanges performed.
	co := comm.DefaultOptions(procs)
	dc, err := driver.Compile(src, driver.Options{Level: lvl, Configs: cfg, Comm: &co})
	if err != nil {
		t.Fatalf("distributed compile: %v", err)
	}
	var distOut bytes.Buffer
	dm, err := distvm.Run(dc.LIR, distvm.Options{Procs: procs, Out: &distOut})
	if err != nil {
		t.Fatalf("distributed run (p=%d): %v", procs, err)
	}

	if !outputsClose(refOut.String(), distOut.String()) {
		t.Errorf("p=%d transcripts differ:\nseq:  %q\ndist: %q", procs, refOut.String(), distOut.String())
	}
	if err := dm.ScalarsConsistent(); err != nil {
		t.Errorf("p=%d: %v", procs, err)
	}

	// Compare arrays that are allocated in BOTH compilations (the
	// distributed one may contract fewer arrays).
	for name, info := range ref.AIR.Arrays {
		if info.Contracted {
			continue
		}
		dinfo := dc.AIR.Arrays[name]
		if dinfo == nil || dinfo.Contracted {
			continue
		}
		want := refM.ArrayData(name)
		got := dm.Gather(name)
		if len(want) != len(got) {
			t.Errorf("p=%d %s: size %d vs %d", procs, name, len(want), len(got))
			continue
		}
		for i := range want {
			if !closeEnough(want[i], got[i]) {
				t.Errorf("p=%d %s[%d] = %v, want %v", procs, name, i, got[i], want[i])
				break
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func outputsClose(a, b string) bool {
	ta, tb := strings.Fields(a), strings.Fields(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] == tb[i] {
			continue
		}
		fa, errA := strconv.ParseFloat(ta[i], 64)
		fb, errB := strconv.ParseFloat(tb[i], 64)
		if errA != nil || errB != nil || !closeEnough(fa, fb) {
			return false
		}
	}
	return true
}

const stencilSrc = `
program dstencil;
config n : integer = 16;
config iters : integer = 3;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction north = (-1, 0); west = (0, -1);
var X, Y, T : [R] double;
var s : double;
proc main()
begin
  [R] X := index1 * 0.5 + index2 * 0.25;
  [R] Y := 0.0;
  for it := 1 to iters do
    [I] T := (X@north + X@west) * 0.5;
    [I] Y := T + X;
    [I] X := X@north + Y;
    s := +<< [I] Y;
  end;
  writeln("s", s);
end;
`

func TestStencilMatchesSequential(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 9, 16} {
		for _, lvl := range []core.Level{core.Baseline, core.C2F3} {
			runBoth(t, stencilSrc, lvl, procs, nil)
		}
	}
}

func TestDiagonalOffsets(t *testing.T) {
	src := `
program diag;
config n : integer = 12;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
var A, B : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 * 3.0 + index2;
  for it := 1 to 2 do
    [I] B := A@(1,1) + A@(-1,-1) + A@(1,-1) + A@(-1,1);
    [I] A := B * 0.2;
    s := +<< [R] A;
  end;
  writeln(s);
end;
`
	for _, procs := range []int{4, 6, 9} {
		runBoth(t, src, core.C2F3, procs, nil)
	}
}

func TestWideOffsets(t *testing.T) {
	src := `
program wide;
config n : integer = 16;
region R = [1..n];
region I = [3..n-2];
var A, B : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 * 1.0;
  [I] B := A@(2) + A@(-2);
  s := +<< [I] B;
  writeln(s);
end;
`
	for _, procs := range []int{2, 4, 5} {
		runBoth(t, src, core.C2F3, procs, nil)
	}
}

// TestBenchmarksDistributed runs every paper benchmark on the
// distributed interpreter and compares with the sequential VM — the
// end-to-end validation of communication insertion.
func TestBenchmarksDistributed(t *testing.T) {
	for _, b := range programs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			size := int64(16)
			if b.Rank == 1 {
				size = 128
			}
			cfg := map[string]int64{b.SizeConfig: size}
			for _, procs := range []int{4, 9} {
				runBoth(t, b.Source, core.C2F3, procs, cfg)
			}
		})
	}
}

// TestMissingCommDetected: with communication insertion disabled, the
// distributed run must NOT match the sequential one (stale halos), or
// must fail — proving the comparison has teeth.
func TestMissingCommDetected(t *testing.T) {
	// Compile WITHOUT comm but run distributed.
	c, err := driver.Compile(stencilSrc, driver.Options{Level: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var refOut bytes.Buffer
	if _, _, err := vm.Run(c.LIR, vm.Options{Out: &refOut}); err != nil {
		t.Fatal(err)
	}
	var distOut bytes.Buffer
	_, err = distvm.Run(c.LIR, distvm.Options{Procs: 4, Out: &distOut})
	if err == nil && outputsClose(refOut.String(), distOut.String()) {
		t.Error("run without communication still matched — comparison has no teeth")
	}
}

func TestProcZeroOutputOnly(t *testing.T) {
	src := `
program hello;
proc main()
begin
  writeln("once");
end;
`
	c, err := driver.Compile(src, driver.Options{Level: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := distvm.Run(c.LIR, distvm.Options{Procs: 8, Out: &out}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "once") != 1 {
		t.Errorf("writeln executed %d times", strings.Count(out.String(), "once"))
	}
}

func TestWhileAndControlDistributed(t *testing.T) {
	src := `
program ctrl;
config n : integer = 8;
region R = [1..n];
var A : [R] double;
var s, iter : double;
proc main()
begin
  [R] A := index1 * 1.0;
  iter := 0.0;
  s := 0.0;
  while iter < 3.0 do
    [R] A := A@(1) + 1.0;
    s := +<< [R] A;
    iter := iter + 1.0;
  end;
  if s > 0.0 then
    writeln("pos", s);
  else
    writeln("neg", s);
  end;
end;
`
	runBoth(t, src, core.C2F3, 4, nil)
}

func TestStepBudgetDistributed(t *testing.T) {
	c, err := driver.Compile(stencilSrc, driver.Options{Level: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distvm.Run(c.LIR, distvm.Options{Procs: 4, MaxSteps: 10}); err == nil {
		t.Error("budget not enforced")
	}
}

func TestInvalidProcCount(t *testing.T) {
	c, err := driver.Compile(stencilSrc, driver.Options{Level: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distvm.Run(c.LIR, distvm.Options{Procs: 0}); err == nil {
		t.Error("p=0 accepted")
	}
}
