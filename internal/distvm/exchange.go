package distvm

import (
	"fmt"
	"math"

	"repro/internal/air"
	"repro/internal/lir"
	"repro/internal/sema"
)

// exchange performs the real data movement of one ghost-cell exchange
// as message passing between the processor goroutines. The send phase
// captures the owner's current boundary values and posts them (legal
// because insertion guarantees the array is not rewritten between a
// send and its receive, so send-time data equals receive-time data);
// the receive phase installs the matching messages into this
// processor's halo. A whole (unpipelined) primitive does both at once.
func (w *worker) exchange(c *lir.Comm) error {
	locals, ok := w.m.arrays[c.Array]
	if !ok {
		return fmt.Errorf("distvm: exchange of unknown array %s", c.Array)
	}
	switch c.Phase {
	case air.CommSend:
		return w.postHalo(c, locals)
	case air.CommRecv:
		return w.acceptHalo(c, locals)
	default:
		if err := w.postHalo(c, locals); err != nil {
			return err
		}
		return w.acceptHalo(c, locals)
	}
}

// haloPlan computes, for the receiver of one exchange, the halo slab
// indices it must refresh, grouped by owning processor, in row-major
// slab order. The plan is a pure function of the static block
// geometry, so the owner and the requirer derive identical plans
// independently — messages carry only values, no index lists.
func (m *Machine) haloPlan(c *lir.Comm, recv int) map[int][][]int {
	locals := m.arrays[c.Array]
	info := m.prog.Source.Arrays[c.Array]
	d := m.decomps[info.Declared.Rank()]
	rank := info.Declared.Rank()
	la := locals[recv]

	// The halo slab for this direction, relative to the receiver's
	// block, clipped to the receiver's local storage.
	slab := &sema.Region{Lo: make([]int, rank), Hi: make([]int, rank)}
	for k := 0; k < rank; k++ {
		switch {
		case c.Off[k] > 0:
			slab.Lo[k] = la.block.Hi[k] + 1
			slab.Hi[k] = la.block.Hi[k] + c.Off[k]
		case c.Off[k] < 0:
			slab.Lo[k] = la.block.Lo[k] + c.Off[k]
			slab.Hi[k] = la.block.Lo[k] - 1
		default:
			slab.Lo[k] = la.block.Lo[k]
			slab.Hi[k] = la.block.Hi[k]
		}
		if slab.Lo[k] < la.lo[k] {
			slab.Lo[k] = la.lo[k]
		}
		if slab.Hi[k] > la.hi[k] {
			slab.Hi[k] = la.hi[k]
		}
		if slab.Lo[k] > slab.Hi[k] {
			return nil
		}
	}

	plan := map[int][][]int{}
	idx := make([]int, rank)
	var walk func(k int)
	walk = func(k int) {
		if k == rank {
			owner := d.Owner(idx)
			if owner < 0 {
				return // beyond the anchor: stays zero (global halo)
			}
			src := locals[owner]
			if !src.contains(idx) {
				return // owner clipped it away (outside alloc)
			}
			plan[owner] = append(plan[owner], append([]int(nil), idx...))
			return
		}
		for i := slab.Lo[k]; i <= slab.Hi[k]; i++ {
			idx[k] = i
			walk(k + 1)
		}
	}
	walk(0)
	return plan
}

// postHalo sends this processor's contribution to every requirer of
// the exchange: the owned values of each receiver's halo slab.
func (w *worker) postHalo(c *lir.Comm, locals []*localArray) error {
	src := locals[w.id]
	for r := 0; r < w.m.procs; r++ {
		if r == w.id {
			continue
		}
		idxs := w.m.haloPlan(c, r)[w.id]
		if len(idxs) == 0 {
			continue
		}
		vals := make([]float64, len(idxs))
		for i, idx := range idxs {
			vals[i] = src.data[src.at(idx)]
		}
		if err := w.sendHalo(r, haloMsg{from: w.id, array: c.Array, msgID: c.MsgID, vals: vals}); err != nil {
			return err
		}
	}
	return nil
}

// acceptHalo installs every owner's message into this processor's halo.
func (w *worker) acceptHalo(c *lir.Comm, locals []*localArray) error {
	la := locals[w.id]
	plan := w.m.haloPlan(c, w.id)
	for o := 0; o < w.m.procs; o++ {
		idxs := plan[o]
		if len(idxs) == 0 || o == w.id {
			continue // nothing needed, or already our own data
		}
		vals, err := w.recvHaloFrom(o, c.Array, c.MsgID, len(idxs))
		if err != nil {
			return err
		}
		for i, idx := range idxs {
			la.data[la.at(idx)] = vals[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Inspection

// Gather reassembles an array's global contents from the owners'
// blocks, returned row-major over the allocation bounds with
// unowned (halo) elements zero — directly comparable with the
// sequential vm.Machine.ArrayData.
func (m *Machine) Gather(name string) []float64 {
	info := m.prog.Source.Arrays[name]
	if info == nil || info.Contracted {
		return nil
	}
	locals := m.arrays[name]
	d := m.decomps[info.Declared.Rank()]
	rank := info.Declared.Rank()
	size := info.Alloc.Size()
	out := make([]float64, size)

	strides := make([]int, rank)
	s := 1
	for k := rank - 1; k >= 0; k-- {
		strides[k] = s
		s *= info.Alloc.Extent(k)
	}

	idx := make([]int, rank)
	var walk func(k int)
	walk = func(k int) {
		if k == rank {
			owner := d.Owner(idx)
			if owner < 0 {
				return
			}
			la := locals[owner]
			if !la.contains(idx) {
				return
			}
			pos := 0
			for j := 0; j < rank; j++ {
				pos += (idx[j] - info.Alloc.Lo[j]) * strides[j]
			}
			out[pos] = la.data[la.at(idx)]
			return
		}
		for i := info.Alloc.Lo[k]; i <= info.Alloc.Hi[k]; i++ {
			idx[k] = i
			walk(k + 1)
		}
	}
	walk(0)
	return out
}

// Scalar returns processor 0's value of a scalar (or contracted
// register).
func (m *Machine) Scalar(name string) (float64, bool) {
	v, ok := m.scalars[0][name]
	return v, ok
}

// ScalarsConsistent verifies the replicated-scalar invariant: every
// processor holds identical scalar state. A scalar that is missing on
// some processor is just as much a violation as one that differs —
// replication means every processor executed the same assignments.
// Returns the first discrepancy found.
func (m *Machine) ScalarsConsistent() error {
	for name, v0 := range m.scalars[0] {
		// Contracted-array registers are per-iteration scratch and
		// legitimately end with different values on each processor.
		if info := m.prog.Source.Arrays[name]; info != nil && info.Contracted {
			continue
		}
		for p := 1; p < m.procs; p++ {
			v, ok := m.scalars[p][name]
			if !ok {
				return fmt.Errorf("scalar %s missing on proc %d (replicated-scalar violation)", name, p)
			}
			if v == v0 || (math.IsNaN(v) && math.IsNaN(v0)) {
				continue
			}
			return fmt.Errorf("scalar %s differs: proc0=%v proc%d=%v", name, v0, p, v)
		}
	}
	return nil
}
