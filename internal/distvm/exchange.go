package distvm

import (
	"fmt"
	"math"

	"repro/internal/air"
	"repro/internal/lir"
	"repro/internal/sema"
)

// exchange performs the real data movement of one ghost-cell exchange:
// for the direction the primitive names, every processor refreshes the
// halo slab adjacent to its block with the owners' current values. A
// pipelined pair moves the data at receive time (sends carry no halo
// yet: insertion guarantees the array is not rewritten between the
// send and its receive, so receive-time data equals send-time data).
func (m *Machine) exchange(c *lir.Comm) error {
	if c.Phase == air.CommSend { // posting only; data moves at receive
		return nil
	}
	locals, ok := m.arrays[c.Array]
	if !ok {
		return fmt.Errorf("distvm: exchange of unknown array %s", c.Array)
	}
	info := m.prog.Source.Arrays[c.Array]
	d := m.decomps[info.Declared.Rank()]
	rank := info.Declared.Rank()

	for p := 0; p < m.procs; p++ {
		la := locals[p]
		// The halo slab for this direction, relative to p's block,
		// clipped to p's local storage.
		slab := &sema.Region{Lo: make([]int, rank), Hi: make([]int, rank)}
		empty := false
		for k := 0; k < rank; k++ {
			switch {
			case c.Off[k] > 0:
				slab.Lo[k] = la.block.Hi[k] + 1
				slab.Hi[k] = la.block.Hi[k] + c.Off[k]
			case c.Off[k] < 0:
				slab.Lo[k] = la.block.Lo[k] + c.Off[k]
				slab.Hi[k] = la.block.Lo[k] - 1
			default:
				slab.Lo[k] = la.block.Lo[k]
				slab.Hi[k] = la.block.Hi[k]
			}
			if slab.Lo[k] < la.lo[k] {
				slab.Lo[k] = la.lo[k]
			}
			if slab.Hi[k] > la.hi[k] {
				slab.Hi[k] = la.hi[k]
			}
			if slab.Lo[k] > slab.Hi[k] {
				empty = true
			}
		}
		if empty {
			continue
		}
		idx := make([]int, rank)
		if err := m.copySlab(locals, d, la, slab, idx, 0); err != nil {
			return err
		}
	}
	return nil
}

// copySlab copies every element of the slab from its owner into la.
func (m *Machine) copySlab(locals []*localArray, d interface {
	Owner([]int) int
}, la *localArray, slab *sema.Region, idx []int, k int) error {
	if k == slab.Rank() {
		owner := d.Owner(idx)
		if owner < 0 {
			return nil // beyond the anchor: stays zero (global halo)
		}
		src := locals[owner]
		if !src.contains(idx) {
			return nil // owner clipped it away (outside alloc)
		}
		la.data[la.at(idx)] = src.data[src.at(idx)]
		return nil
	}
	for i := slab.Lo[k]; i <= slab.Hi[k]; i++ {
		idx[k] = i
		if err := m.copySlab(locals, d, la, slab, idx, k+1); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Inspection

// Gather reassembles an array's global contents from the owners'
// blocks, returned row-major over the allocation bounds with
// unowned (halo) elements zero — directly comparable with the
// sequential vm.Machine.ArrayData.
func (m *Machine) Gather(name string) []float64 {
	info := m.prog.Source.Arrays[name]
	if info == nil || info.Contracted {
		return nil
	}
	locals := m.arrays[name]
	d := m.decomps[info.Declared.Rank()]
	rank := info.Declared.Rank()
	size := info.Alloc.Size()
	out := make([]float64, size)

	strides := make([]int, rank)
	s := 1
	for k := rank - 1; k >= 0; k-- {
		strides[k] = s
		s *= info.Alloc.Extent(k)
	}

	idx := make([]int, rank)
	var walk func(k int)
	walk = func(k int) {
		if k == rank {
			owner := d.Owner(idx)
			if owner < 0 {
				return
			}
			la := locals[owner]
			if !la.contains(idx) {
				return
			}
			pos := 0
			for j := 0; j < rank; j++ {
				pos += (idx[j] - info.Alloc.Lo[j]) * strides[j]
			}
			out[pos] = la.data[la.at(idx)]
			return
		}
		for i := info.Alloc.Lo[k]; i <= info.Alloc.Hi[k]; i++ {
			idx[k] = i
			walk(k + 1)
		}
	}
	walk(0)
	return out
}

// Scalar returns processor 0's value of a scalar (or contracted
// register).
func (m *Machine) Scalar(name string) (float64, bool) {
	v, ok := m.scalars[0][name]
	return v, ok
}

// ScalarsConsistent verifies the replicated-scalar invariant: every
// processor holds identical scalar state. Returns the first
// discrepancy found.
func (m *Machine) ScalarsConsistent() error {
	for name, v0 := range m.scalars[0] {
		// Contracted-array registers are per-iteration scratch and
		// legitimately end with different values on each processor.
		if info := m.prog.Source.Arrays[name]; info != nil && info.Contracted {
			continue
		}
		for p := 1; p < m.procs; p++ {
			v, ok := m.scalars[p][name]
			if !ok || v == v0 || (math.IsNaN(v) && math.IsNaN(v0)) {
				continue
			}
			return fmt.Errorf("scalar %s differs: proc0=%v proc%d=%v", name, v0, p, v)
		}
	}
	return nil
}
