package distvm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distvm"
	"repro/internal/driver"
)

// cancelSrc iterates the stencil long enough that a cancellation fired
// a few milliseconds in lands mid-run, between ghost-cell exchanges.
const cancelSrc = `
program dcancel;
config n : integer = 32;
config iters : integer = 5000;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction north = (-1, 0); west = (0, -1);
var X, Y, T : [R] double;
proc main()
begin
  [R] X := index1 * 0.5 + index2 * 0.25;
  [R] Y := 0.0;
  for it := 1 to iters do
    [I] T := (X@north + X@west) * 0.5;
    [I] Y := T + X;
    [I] X := X@north + Y;
  end;
end;
`

func compileCancel(t *testing.T, procs int) *driver.Compilation {
	t.Helper()
	co := comm.DefaultOptions(procs)
	c, err := driver.Compile(cancelSrc, driver.Options{Level: core.C2F3, Comm: &co})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// TestCancelMidExchange cancels a long-running distributed execution a
// few milliseconds in — while the processors are deep in the
// iteration's ghost-cell exchanges — and asserts the run aborts
// promptly with the context's error, with every worker goroutine
// released (wg.Wait returning at all proves no send or receive stayed
// blocked). Run under -race this doubles as the shutdown-ordering
// check of the race-smoke CI target.
func TestCancelMidExchange(t *testing.T) {
	c := compileCancel(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := distvm.Run(c.LIR, distvm.Options{Procs: 4, Ctx: ctx, Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error is %v, want context.Canceled", err)
	}
	// Abort must come from the cancellation path, not the watchdog: the
	// blocked channel operations all select on the machine's done
	// channel, so the unwind is immediate.
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancelled run took %v to unwind", d)
	}
}

// TestDeadlineMidExchange is the deadline variant: the error must be
// errors.Is-testable for context.DeadlineExceeded, as the Options.Ctx
// contract promises.
func TestDeadlineMidExchange(t *testing.T) {
	c := compileCancel(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := distvm.Run(c.LIR, distvm.Options{Procs: 4, Ctx: ctx, Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("deadlined run succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("run error is %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelBeforeRun: a context cancelled before the run starts never
// lets a worker past its first synchronization.
func TestCancelBeforeRun(t *testing.T) {
	c := compileCancel(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := distvm.Run(c.LIR, distvm.Options{Procs: 4, Ctx: ctx, Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("pre-cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error is %v, want context.Canceled", err)
	}
}
