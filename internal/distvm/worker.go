package distvm

import (
	"fmt"

	"repro/internal/lir"
)

// worker is one processor: a goroutine walking the LIR over its own
// block. All fields are owned exclusively by the worker's goroutine;
// cross-processor data moves only through the machine's channels.
type worker struct {
	m       *Machine
	id      int
	scalars map[string]float64

	// syncSeq numbers the barrier/reduction operations this processor
	// has entered. Replicated control flow gives every processor the
	// same sequence; a mismatch is a protocol error.
	syncSeq int

	// stash holds halo messages that arrived ahead of the receive
	// operation that consumes them (pipelined sends can overtake).
	stash []haloMsg
}

func newWorker(m *Machine, id int) *worker {
	return &worker{m: m, id: id, scalars: map[string]float64{}}
}

// run initializes the replicated scalar state and executes main.
func (w *worker) run() error {
	for name, s := range w.m.prog.Source.Scalars {
		if s.Config {
			w.scalars[name] = s.Init
		}
	}
	_, err := w.execList(w.m.prog.Main.Body)
	return err
}

// addSteps charges n element-statements against the shared budget and
// polls the abort channel so a failed peer stops this processor even
// outside a communication point.
func (w *worker) addSteps(n int64) error {
	if w.m.steps.Add(n) > w.m.max {
		return fmt.Errorf("distvm: execution budget exceeded (%d steps)", w.m.max)
	}
	select {
	case <-w.m.done:
		return errAborted
	default:
		return nil
	}
}

type signal int

const (
	sigNext signal = iota
	sigReturn
)

func (w *worker) execList(nodes []lir.Node) (signal, error) {
	for _, n := range nodes {
		sig, err := w.execNode(n)
		if err != nil || sig == sigReturn {
			return sig, err
		}
	}
	return sigNext, nil
}

func (w *worker) execNode(n lir.Node) (signal, error) {
	switch x := n.(type) {
	case *lir.Nest:
		return sigNext, w.execNest(x)
	case *lir.ScalarAssign:
		v, err := w.evalScalar(x.RHS)
		if err != nil {
			return sigNext, err
		}
		w.scalars[x.LHS] = v
		return sigNext, nil
	case *lir.Loop:
		lo, err := w.evalScalar(x.Lo)
		if err != nil {
			return sigNext, err
		}
		hi, err := w.evalScalar(x.Hi)
		if err != nil {
			return sigNext, err
		}
		a, b := int64(lo), int64(hi)
		step := int64(1)
		if x.Down {
			step = -1
		}
		for v := a; (step > 0 && v <= b) || (step < 0 && v >= b); v += step {
			w.scalars[x.Var] = float64(v)
			sig, err := w.execList(x.Body)
			if err != nil || sig == sigReturn {
				return sig, err
			}
		}
		return sigNext, nil
	case *lir.While:
		for {
			c, err := w.evalScalar(x.Cond)
			if err != nil {
				return sigNext, err
			}
			if c == 0 {
				return sigNext, nil
			}
			// Every processor executes the (replicated) scalar loop, so
			// each charges its iteration against the shared budget —
			// which also guarantees each one independently trips the
			// budget on a runaway loop with no communication inside.
			if err := w.addSteps(1); err != nil {
				return sigNext, err
			}
			sig, err := w.execList(x.Body)
			if err != nil || sig == sigReturn {
				return sig, err
			}
		}
	case *lir.If:
		c, err := w.evalScalar(x.Cond)
		if err != nil {
			return sigNext, err
		}
		if c != 0 {
			return w.execList(x.Then)
		}
		return w.execList(x.Else)
	case *lir.PartialReduce:
		return sigNext, w.partialReduce(x)
	case *lir.Comm:
		return sigNext, w.exchange(x)
	case *lir.Call:
		return sigNext, w.call(x)
	case *lir.Return:
		if x.Value != nil {
			// The caller reads the result from the $result slot; the
			// enclosing call wired it (see call()).
			return sigReturn, fmt.Errorf("distvm: internal: unbound return")
		}
		return sigReturn, nil
	case *lir.Writeln:
		// Output is processor 0's; evaluation has no side effects, so
		// the other processors skip the node entirely.
		if w.id != 0 || w.m.out == nil {
			return sigNext, nil
		}
		for i, a := range x.Args {
			if i > 0 {
				fmt.Fprint(w.m.out, " ")
			}
			if a.Expr != nil {
				v, err := w.evalScalar(a.Expr)
				if err != nil {
					return sigNext, err
				}
				fmt.Fprintf(w.m.out, "%g", v)
			} else {
				fmt.Fprint(w.m.out, a.Str)
			}
		}
		fmt.Fprintln(w.m.out)
		return sigNext, nil
	}
	return sigNext, fmt.Errorf("distvm: unknown node %T", n)
}

// call executes a procedure body; recursion is rejected at lowering.
func (w *worker) call(x *lir.Call) error {
	pr, ok := w.m.prog.Procs[x.Proc]
	if !ok {
		return fmt.Errorf("distvm: unknown procedure %s", x.Proc)
	}
	for i, param := range pr.Params {
		v, err := w.evalScalar(x.Args[i])
		if err != nil {
			return err
		}
		w.scalars[param] = v
	}
	if _, err := w.execProcBody(pr); err != nil {
		return err
	}
	if x.Target != "" && pr.HasResult {
		w.scalars[x.Target] = w.scalars[pr.Name+".$result"]
	}
	return nil
}

// execProcBody runs a procedure, translating return-with-value into
// the proc's $result slot.
func (w *worker) execProcBody(pr *lir.Proc) (signal, error) {
	var run func(nodes []lir.Node) (signal, error)
	run = func(nodes []lir.Node) (signal, error) {
		for _, n := range nodes {
			if ret, ok := n.(*lir.Return); ok {
				if ret.Value != nil {
					v, err := w.evalScalar(ret.Value)
					if err != nil {
						return sigReturn, err
					}
					w.scalars[pr.Name+".$result"] = v
				}
				return sigReturn, nil
			}
			// Control nodes may contain returns; handle recursively.
			switch x := n.(type) {
			case *lir.If:
				c, err := w.evalScalar(x.Cond)
				if err != nil {
					return sigNext, err
				}
				branch := x.Else
				if c != 0 {
					branch = x.Then
				}
				sig, err := run(branch)
				if err != nil || sig == sigReturn {
					return sig, err
				}
			case *lir.Loop:
				lo, err := w.evalScalar(x.Lo)
				if err != nil {
					return sigNext, err
				}
				hi, err := w.evalScalar(x.Hi)
				if err != nil {
					return sigNext, err
				}
				a, b := int64(lo), int64(hi)
				step := int64(1)
				if x.Down {
					step = -1
				}
				for v := a; (step > 0 && v <= b) || (step < 0 && v >= b); v += step {
					w.scalars[x.Var] = float64(v)
					sig, err := run(x.Body)
					if err != nil || sig == sigReturn {
						return sig, err
					}
				}
			case *lir.While:
				for {
					c, err := w.evalScalar(x.Cond)
					if err != nil {
						return sigNext, err
					}
					if c == 0 {
						break
					}
					sig, err := run(x.Body)
					if err != nil || sig == sigReturn {
						return sig, err
					}
				}
			default:
				sig, err := w.execNode(n)
				if err != nil || sig == sigReturn {
					return sig, err
				}
			}
		}
		return sigNext, nil
	}
	return run(pr.Body)
}
