// Package distvm executes a scalarized program on a simulated
// distributed-memory machine: every array dimension is block
// distributed over a processor grid (package dist), each processor
// stores only its block plus halo, and the compiler-inserted
// communication primitives perform real ghost-cell exchanges.
//
// The interpreter walks the LIR once (scalar state is replicated and
// deterministic, so control flow is identical on every processor) and
// executes each loop nest processor by processor over its owned
// portion. Running a program here and on the sequential VM and
// comparing every array element is the strongest validation of the
// communication-insertion machinery: a missing or misplaced exchange
// leaves stale halo values and the results diverge.
package distvm

import (
	"fmt"
	"io"

	"repro/internal/air"
	"repro/internal/dist"
	"repro/internal/lir"
	"repro/internal/sema"
)

// Options configures a distributed run.
type Options struct {
	Procs    int
	Out      io.Writer // processor 0's writeln output; nil discards
	MaxSteps int64     // element-execution budget; 0 = default 1e9
}

// Machine is the distributed interpreter state.
type Machine struct {
	prog  *lir.Program
	procs int
	out   io.Writer

	// One decomposition per array rank, anchored at the bounding box
	// of every region of that rank.
	decomps map[int]*dist.Decomp

	scalars []map[string]float64 // per-processor scalar state
	arrays  map[string][]*localArray

	steps int64
	max   int64
}

// localArray is one processor's slice of an array: its block expanded
// by the array's halo widths, clipped to the allocation bounds.
type localArray struct {
	lo, hi  []int
	strides []int
	data    []float64
	block   *sema.Region // owned block of the anchor
}

func (a *localArray) contains(idx []int) bool {
	for k := range idx {
		if idx[k] < a.lo[k] || idx[k] > a.hi[k] {
			return false
		}
	}
	return true
}

func (a *localArray) at(idx []int) int {
	p := 0
	for k := range idx {
		p += (idx[k] - a.lo[k]) * a.strides[k]
	}
	return p
}

// Run executes the program on p processors and returns the machine
// for inspection.
func Run(prog *lir.Program, opt Options) (*Machine, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("distvm: need at least one processor")
	}
	m := &Machine{
		prog:    prog,
		procs:   opt.Procs,
		out:     opt.Out,
		decomps: map[int]*dist.Decomp{},
		arrays:  map[string][]*localArray{},
		max:     opt.MaxSteps,
	}
	if m.max == 0 {
		m.max = 1e9
	}
	if err := m.decompose(); err != nil {
		return nil, err
	}
	m.allocate()
	m.scalars = make([]map[string]float64, m.procs)
	for p := 0; p < m.procs; p++ {
		m.scalars[p] = map[string]float64{}
		for name, s := range prog.Source.Scalars {
			if s.Config {
				m.scalars[p][name] = s.Init
			}
		}
	}
	if err := m.execNodes(prog.Main.Body); err != nil {
		return nil, err
	}
	return m, nil
}

// decompose builds one anchor per rank covering every declared region
// and every nest region, so ownership is total over all executed
// indices.
func (m *Machine) decompose() error {
	bbox := map[int]*sema.Region{}
	cover := func(r *sema.Region) {
		if r == nil {
			return
		}
		b, ok := bbox[r.Rank()]
		if !ok {
			b = &sema.Region{Lo: append([]int(nil), r.Lo...), Hi: append([]int(nil), r.Hi...)}
			bbox[r.Rank()] = b
			return
		}
		for k := 0; k < r.Rank(); k++ {
			if r.Lo[k] < b.Lo[k] {
				b.Lo[k] = r.Lo[k]
			}
			if r.Hi[k] > b.Hi[k] {
				b.Hi[k] = r.Hi[k]
			}
		}
	}
	for _, a := range m.prog.Source.Arrays {
		if !a.Contracted {
			cover(a.Declared)
		}
	}
	for _, pr := range m.prog.Procs {
		var walk func(ns []lir.Node)
		walk = func(ns []lir.Node) {
			for _, n := range ns {
				switch x := n.(type) {
				case *lir.Nest:
					cover(x.Region)
				case *lir.PartialReduce:
					cover(x.Region)
					cover(x.Dest)
				case *lir.Loop:
					walk(x.Body)
				case *lir.While:
					walk(x.Body)
				case *lir.If:
					walk(x.Then)
					walk(x.Else)
				}
			}
		}
		walk(pr.Body)
	}
	for rank, b := range bbox {
		d, err := dist.NewDecomp(m.procs, b)
		if err != nil {
			return fmt.Errorf("distvm: rank %d: %w", rank, err)
		}
		m.decomps[rank] = d
	}
	return nil
}

// offsetHalos scans the program for the maximum negative/positive
// offset applied to each array in each dimension: the inter-processor
// halo widths. (The global Alloc-vs-Declared halo only reflects
// offsets that cross the global region bounds; a neighbor offset deep
// in the interior still needs a local ghost row.)
func (m *Machine) offsetHalos() map[string][2][]int {
	out := map[string][2][]int{}
	note := func(name string, off []int) {
		info := m.prog.Source.Arrays[name]
		if info == nil || info.Contracted {
			return
		}
		h, ok := out[name]
		if !ok {
			h = [2][]int{make([]int, len(off)), make([]int, len(off))}
		}
		for k, v := range off {
			if -v > h[0][k] {
				h[0][k] = -v // negative offsets need low-side halo
			}
			if v > h[1][k] {
				h[1][k] = v
			}
		}
		out[name] = h
	}
	var walkExpr func(e air.Expr)
	walkExpr = func(e air.Expr) {
		air.Walk(e, func(x air.Expr) {
			if r, ok := x.(*air.RefExpr); ok {
				note(r.Ref.Array, r.Ref.Off)
			}
		})
	}
	var walk func(ns []lir.Node)
	walk = func(ns []lir.Node) {
		for _, n := range ns {
			switch x := n.(type) {
			case *lir.Nest:
				for _, st := range x.Body {
					walkExpr(st.RHS)
				}
			case *lir.PartialReduce:
				walkExpr(x.Body)
			case *lir.Loop:
				walk(x.Body)
			case *lir.While:
				walk(x.Body)
			case *lir.If:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	for _, pr := range m.prog.Procs {
		walk(pr.Body)
	}
	return out
}

func (m *Machine) allocate() {
	offHalos := m.offsetHalos()
	for name, a := range m.prog.Source.Arrays {
		if a.Contracted {
			continue
		}
		haloLo, haloHi := a.Halo()
		if oh, ok := offHalos[name]; ok {
			for k := range haloLo {
				haloLo[k] = maxInt(haloLo[k], oh[0][k])
				haloHi[k] = maxInt(haloHi[k], oh[1][k])
			}
		}
		d := m.decomps[a.Declared.Rank()]
		locals := make([]*localArray, m.procs)
		for p := 0; p < m.procs; p++ {
			blk := d.Block(p)
			rank := a.Declared.Rank()
			lo := make([]int, rank)
			hi := make([]int, rank)
			for k := 0; k < rank; k++ {
				lo[k] = maxInt(blk.Lo[k]-haloLo[k], a.Alloc.Lo[k])
				hi[k] = minInt(blk.Hi[k]+haloHi[k], a.Alloc.Hi[k])
			}
			la := &localArray{lo: lo, hi: hi, block: blk}
			size := 1
			la.strides = make([]int, rank)
			for k := rank - 1; k >= 0; k-- {
				ext := hi[k] - lo[k] + 1
				if ext < 0 {
					ext = 0
				}
				la.strides[k] = size
				size *= ext
			}
			la.data = make([]float64, size)
			locals[p] = la
		}
		m.arrays[name] = locals
	}
}

// ---------------------------------------------------------------------------
// Execution

type signal int

const (
	sigNext signal = iota
	sigReturn
)

func (m *Machine) execNodes(nodes []lir.Node) error {
	_, err := m.execList(nodes)
	return err
}

func (m *Machine) execList(nodes []lir.Node) (signal, error) {
	for _, n := range nodes {
		sig, err := m.execNode(n)
		if err != nil || sig == sigReturn {
			return sig, err
		}
	}
	return sigNext, nil
}

func (m *Machine) execNode(n lir.Node) (signal, error) {
	switch x := n.(type) {
	case *lir.Nest:
		return sigNext, m.execNest(x)
	case *lir.ScalarAssign:
		for p := 0; p < m.procs; p++ {
			v, err := m.evalScalar(p, x.RHS)
			if err != nil {
				return sigNext, err
			}
			m.scalars[p][x.LHS] = v
		}
		return sigNext, nil
	case *lir.Loop:
		lo, err := m.evalScalar(0, x.Lo)
		if err != nil {
			return sigNext, err
		}
		hi, err := m.evalScalar(0, x.Hi)
		if err != nil {
			return sigNext, err
		}
		a, b := int64(lo), int64(hi)
		step := int64(1)
		if x.Down {
			step = -1
		}
		for v := a; (step > 0 && v <= b) || (step < 0 && v >= b); v += step {
			for p := 0; p < m.procs; p++ {
				m.scalars[p][x.Var] = float64(v)
			}
			sig, err := m.execList(x.Body)
			if err != nil || sig == sigReturn {
				return sig, err
			}
		}
		return sigNext, nil
	case *lir.While:
		for {
			c, err := m.evalScalar(0, x.Cond)
			if err != nil {
				return sigNext, err
			}
			if c == 0 {
				return sigNext, nil
			}
			if err := m.step(1); err != nil {
				return sigNext, err
			}
			sig, err := m.execList(x.Body)
			if err != nil || sig == sigReturn {
				return sig, err
			}
		}
	case *lir.If:
		c, err := m.evalScalar(0, x.Cond)
		if err != nil {
			return sigNext, err
		}
		if c != 0 {
			return m.execList(x.Then)
		}
		return m.execList(x.Else)
	case *lir.PartialReduce:
		return sigNext, m.partialReduce(x)
	case *lir.Comm:
		return sigNext, m.exchange(x)
	case *lir.Call:
		return sigNext, m.call(x)
	case *lir.Return:
		if x.Value != nil {
			// The caller reads the result from the $result slot; the
			// enclosing call wired it (see call()).
			return sigReturn, fmt.Errorf("distvm: internal: unbound return")
		}
		return sigReturn, nil
	case *lir.Writeln:
		if m.out == nil {
			return sigNext, nil
		}
		for i, a := range x.Args {
			if i > 0 {
				fmt.Fprint(m.out, " ")
			}
			if a.Expr != nil {
				v, err := m.evalScalar(0, a.Expr)
				if err != nil {
					return sigNext, err
				}
				fmt.Fprintf(m.out, "%g", v)
			} else {
				fmt.Fprint(m.out, a.Str)
			}
		}
		fmt.Fprintln(m.out)
		return sigNext, nil
	}
	return sigNext, fmt.Errorf("distvm: unknown node %T", n)
}

// call executes a procedure body; recursion is rejected at lowering.
func (m *Machine) call(x *lir.Call) error {
	pr, ok := m.prog.Procs[x.Proc]
	if !ok {
		return fmt.Errorf("distvm: unknown procedure %s", x.Proc)
	}
	for i, param := range pr.Params {
		for p := 0; p < m.procs; p++ {
			v, err := m.evalScalar(p, x.Args[i])
			if err != nil {
				return err
			}
			m.scalars[p][param] = v
		}
	}
	if _, err := m.execProcBody(pr); err != nil {
		return err
	}
	if x.Target != "" && pr.HasResult {
		for p := 0; p < m.procs; p++ {
			m.scalars[p][x.Target] = m.scalars[p][pr.Name+".$result"]
		}
	}
	return nil
}

// execProcBody runs a procedure, translating return-with-value into
// the proc's $result slot.
func (m *Machine) execProcBody(pr *lir.Proc) (signal, error) {
	var run func(nodes []lir.Node) (signal, error)
	run = func(nodes []lir.Node) (signal, error) {
		for _, n := range nodes {
			if ret, ok := n.(*lir.Return); ok {
				if ret.Value != nil {
					for p := 0; p < m.procs; p++ {
						v, err := m.evalScalar(p, ret.Value)
						if err != nil {
							return sigReturn, err
						}
						m.scalars[p][pr.Name+".$result"] = v
					}
				}
				return sigReturn, nil
			}
			// Control nodes may contain returns; handle recursively.
			switch x := n.(type) {
			case *lir.If:
				c, err := m.evalScalar(0, x.Cond)
				if err != nil {
					return sigNext, err
				}
				branch := x.Else
				if c != 0 {
					branch = x.Then
				}
				sig, err := run(branch)
				if err != nil || sig == sigReturn {
					return sig, err
				}
			case *lir.Loop:
				lo, err := m.evalScalar(0, x.Lo)
				if err != nil {
					return sigNext, err
				}
				hi, err := m.evalScalar(0, x.Hi)
				if err != nil {
					return sigNext, err
				}
				a, b := int64(lo), int64(hi)
				step := int64(1)
				if x.Down {
					step = -1
				}
				for v := a; (step > 0 && v <= b) || (step < 0 && v >= b); v += step {
					for p := 0; p < m.procs; p++ {
						m.scalars[p][x.Var] = float64(v)
					}
					sig, err := run(x.Body)
					if err != nil || sig == sigReturn {
						return sig, err
					}
				}
			case *lir.While:
				for {
					c, err := m.evalScalar(0, x.Cond)
					if err != nil {
						return sigNext, err
					}
					if c == 0 {
						break
					}
					sig, err := run(x.Body)
					if err != nil || sig == sigReturn {
						return sig, err
					}
				}
			default:
				sig, err := m.execNode(n)
				if err != nil || sig == sigReturn {
					return sig, err
				}
			}
		}
		return sigNext, nil
	}
	return run(pr.Body)
}

func (m *Machine) step(n int64) error {
	m.steps += n
	if m.steps > m.max {
		return fmt.Errorf("distvm: execution budget exceeded (%d steps)", m.max)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
