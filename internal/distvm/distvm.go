// Package distvm executes a scalarized program on a distributed-memory
// machine: every array dimension is block distributed over a processor
// grid (package dist), each processor stores only its block plus halo,
// and the compiler-inserted communication primitives perform real
// ghost-cell exchanges.
//
// Each of the p processors runs as its own goroutine over its block.
// Scalar state is replicated and deterministic, so control flow is
// identical on every processor; the only cross-processor interactions
// are channel-based messages mirroring the machine's communication
// primitives:
//
//   - ghost-cell exchange: the owner captures its boundary values at
//     the send phase and the requiring processor installs them at the
//     receive phase, matching the lir.Comm send/receive split;
//   - reductions: partials gather at processor 0, combine in processor
//     order (deterministic regardless of goroutine scheduling), and
//     broadcast back;
//   - a barrier at every statement-group boundary (loop nests and
//     dimensional reductions), which keeps the processors in lockstep
//     and surfaces divergent control flow as a protocol error.
//
// A watchdog timeout converts a lost processor or a protocol mismatch
// into a descriptive error instead of a deadlock, and the first
// processor to fail aborts the others promptly.
//
// Running a program here and on the sequential VM and comparing every
// array element is the strongest validation of the communication-
// insertion machinery: a missing or misplaced exchange leaves stale
// halo values and the results diverge. Because every array element is
// computed by exactly one owner from bit-identical inputs, a parallel
// run Gathers bit-identically to the sequential VM whenever reduction
// results do not feed back into array values (see the determinism
// tests).
package distvm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/air"
	"repro/internal/dist"
	"repro/internal/lir"
	"repro/internal/sema"
)

// Options configures a distributed run.
type Options struct {
	Procs    int
	Out      io.Writer     // processor 0's writeln output; nil discards
	MaxSteps int64         // element-execution budget; 0 = default 1e9
	Timeout  time.Duration // watchdog for lost processors; 0 = default 30s
	// Ctx, when non-nil, cancels the run: cancellation aborts every
	// processor the same way a peer failure does (blocked channel
	// operations and the per-statement budget poll both observe the
	// abort). The run reports ctx.Err() (errors.Is-testable for
	// context.DeadlineExceeded).
	Ctx context.Context
}

// Machine is the distributed interpreter state. During a run the only
// mutable shared state is the step counter (atomic) and the channels;
// every processor goroutine owns its scalar map and its local array
// slices exclusively, and halo data moves only by message.
type Machine struct {
	prog  *lir.Program
	procs int
	out   io.Writer

	// One decomposition per array rank, anchored at the bounding box
	// of every region of that rank.
	decomps map[int]*dist.Decomp

	scalars []map[string]float64 // per-processor scalar state
	arrays  map[string][]*localArray

	steps   atomic.Int64
	max     int64
	timeout time.Duration

	// Per-processor mailboxes: halo carries ghost-cell data, ctrl
	// carries barrier arrivals, reduction partials, and releases.
	halo []chan haloMsg
	ctrl []chan ctrlMsg

	// First failure aborts every processor.
	done     chan struct{}
	failOnce sync.Once
	failErr  error
}

// errAborted is returned by a processor unwinding because another
// processor failed first; it never becomes the run's reported error.
var errAborted = errors.New("distvm: aborted by another processor's failure")

// abort records the first real failure and releases every processor
// blocked on a channel operation.
func (m *Machine) abort(err error) {
	if err == nil || errors.Is(err, errAborted) {
		return
	}
	m.failOnce.Do(func() {
		m.failErr = err
		close(m.done)
	})
}

// localArray is one processor's slice of an array: its block expanded
// by the array's halo widths, clipped to the allocation bounds.
type localArray struct {
	lo, hi  []int
	strides []int
	data    []float64
	block   *sema.Region // owned block of the anchor
}

func (a *localArray) contains(idx []int) bool {
	for k := range idx {
		if idx[k] < a.lo[k] || idx[k] > a.hi[k] {
			return false
		}
	}
	return true
}

func (a *localArray) at(idx []int) int {
	p := 0
	for k := range idx {
		p += (idx[k] - a.lo[k]) * a.strides[k]
	}
	return p
}

// Run executes the program on p processors — one goroutine each — and
// returns the machine for inspection.
func Run(prog *lir.Program, opt Options) (*Machine, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("distvm: need at least one processor")
	}
	m := &Machine{
		prog:    prog,
		procs:   opt.Procs,
		out:     opt.Out,
		decomps: map[int]*dist.Decomp{},
		arrays:  map[string][]*localArray{},
		max:     opt.MaxSteps,
		timeout: opt.Timeout,
	}
	if m.max == 0 {
		m.max = 1e9
	}
	if m.timeout == 0 {
		m.timeout = 30 * time.Second
	}
	if err := m.decompose(); err != nil {
		return nil, err
	}
	m.allocate()
	m.openChannels()

	if opt.Ctx != nil {
		// A cancelled context aborts the run exactly like a failing
		// processor: failErr is set once and m.done releases every
		// blocked channel operation. The watcher exits when the run
		// finishes first.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-opt.Ctx.Done():
				m.abort(fmt.Errorf("distvm: execution cancelled: %w", opt.Ctx.Err()))
			case <-finished:
			case <-m.done:
			}
		}()
	}

	m.scalars = make([]map[string]float64, m.procs)
	var wg sync.WaitGroup
	for p := 0; p < m.procs; p++ {
		w := newWorker(m, p)
		m.scalars[p] = w.scalars
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.abort(w.run())
		}()
	}
	wg.Wait()
	if m.failErr != nil {
		return nil, m.failErr
	}
	return m, nil
}

// openChannels sizes the mailboxes so that the regular protocol never
// blocks a sender: ctrl sees at most p-1 in-flight arrivals plus one
// release, halo at most a handful of pipelined slabs per neighbor.
// Should a protocol bug overflow them anyway, the watchdog turns the
// stalled send into an error instead of a deadlock.
func (m *Machine) openChannels() {
	m.done = make(chan struct{})
	m.halo = make([]chan haloMsg, m.procs)
	m.ctrl = make([]chan ctrlMsg, m.procs)
	for p := 0; p < m.procs; p++ {
		m.halo[p] = make(chan haloMsg, 4*m.procs+64)
		m.ctrl[p] = make(chan ctrlMsg, m.procs+1)
	}
}

// decompose builds one anchor per rank covering every declared region
// and every nest region, so ownership is total over all executed
// indices.
func (m *Machine) decompose() error {
	bbox := map[int]*sema.Region{}
	cover := func(r *sema.Region) {
		if r == nil {
			return
		}
		b, ok := bbox[r.Rank()]
		if !ok {
			b = &sema.Region{Lo: append([]int(nil), r.Lo...), Hi: append([]int(nil), r.Hi...)}
			bbox[r.Rank()] = b
			return
		}
		for k := 0; k < r.Rank(); k++ {
			if r.Lo[k] < b.Lo[k] {
				b.Lo[k] = r.Lo[k]
			}
			if r.Hi[k] > b.Hi[k] {
				b.Hi[k] = r.Hi[k]
			}
		}
	}
	for _, a := range m.prog.Source.Arrays {
		if !a.Contracted {
			cover(a.Declared)
		}
	}
	for _, pr := range m.prog.Procs {
		var walk func(ns []lir.Node)
		walk = func(ns []lir.Node) {
			for _, n := range ns {
				switch x := n.(type) {
				case *lir.Nest:
					cover(x.Region)
				case *lir.PartialReduce:
					cover(x.Region)
					cover(x.Dest)
				case *lir.Loop:
					walk(x.Body)
				case *lir.While:
					walk(x.Body)
				case *lir.If:
					walk(x.Then)
					walk(x.Else)
				}
			}
		}
		walk(pr.Body)
	}
	for rank, b := range bbox {
		d, err := dist.NewDecomp(m.procs, b)
		if err != nil {
			return fmt.Errorf("distvm: rank %d: %w", rank, err)
		}
		m.decomps[rank] = d
	}
	return nil
}

// offsetHalos scans the program for the maximum negative/positive
// offset applied to each array in each dimension: the inter-processor
// halo widths. (The global Alloc-vs-Declared halo only reflects
// offsets that cross the global region bounds; a neighbor offset deep
// in the interior still needs a local ghost row.)
func (m *Machine) offsetHalos() map[string][2][]int {
	out := map[string][2][]int{}
	note := func(name string, off []int) {
		info := m.prog.Source.Arrays[name]
		if info == nil || info.Contracted {
			return
		}
		h, ok := out[name]
		if !ok {
			h = [2][]int{make([]int, len(off)), make([]int, len(off))}
		}
		for k, v := range off {
			if -v > h[0][k] {
				h[0][k] = -v // negative offsets need low-side halo
			}
			if v > h[1][k] {
				h[1][k] = v
			}
		}
		out[name] = h
	}
	var walkExpr func(e air.Expr)
	walkExpr = func(e air.Expr) {
		air.Walk(e, func(x air.Expr) {
			if r, ok := x.(*air.RefExpr); ok {
				note(r.Ref.Array, r.Ref.Off)
			}
		})
	}
	var walk func(ns []lir.Node)
	walk = func(ns []lir.Node) {
		for _, n := range ns {
			switch x := n.(type) {
			case *lir.Nest:
				for _, st := range x.Body {
					walkExpr(st.RHS)
				}
			case *lir.PartialReduce:
				walkExpr(x.Body)
			case *lir.Loop:
				walk(x.Body)
			case *lir.While:
				walk(x.Body)
			case *lir.If:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	for _, pr := range m.prog.Procs {
		walk(pr.Body)
	}
	return out
}

func (m *Machine) allocate() {
	offHalos := m.offsetHalos()
	for name, a := range m.prog.Source.Arrays {
		if a.Contracted {
			continue
		}
		haloLo, haloHi := a.Halo()
		if oh, ok := offHalos[name]; ok {
			for k := range haloLo {
				haloLo[k] = maxInt(haloLo[k], oh[0][k])
				haloHi[k] = maxInt(haloHi[k], oh[1][k])
			}
		}
		d := m.decomps[a.Declared.Rank()]
		locals := make([]*localArray, m.procs)
		for p := 0; p < m.procs; p++ {
			blk := d.Block(p)
			rank := a.Declared.Rank()
			lo := make([]int, rank)
			hi := make([]int, rank)
			for k := 0; k < rank; k++ {
				lo[k] = maxInt(blk.Lo[k]-haloLo[k], a.Alloc.Lo[k])
				hi[k] = minInt(blk.Hi[k]+haloHi[k], a.Alloc.Hi[k])
			}
			la := &localArray{lo: lo, hi: hi, block: blk}
			size := 1
			la.strides = make([]int, rank)
			for k := rank - 1; k >= 0; k-- {
				ext := hi[k] - lo[k] + 1
				if ext < 0 {
					ext = 0
				}
				la.strides[k] = size
				size *= ext
			}
			la.data = make([]float64, size)
			locals[p] = la
		}
		m.arrays[name] = locals
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
