package distvm

import (
	"fmt"
	"math"

	"repro/internal/air"
	"repro/internal/dist"
	"repro/internal/lir"
	"repro/internal/sema"
)

// execNest runs one loop nest: each processor iterates its owned
// portion of the nest region in the nest's loop-structure order;
// reductions accumulate locally and then combine across processors in
// processor order (the local-sum/global-combine split of a distributed
// reduction, deterministic regardless of goroutine scheduling). A nest
// with no reductions still ends in a barrier: statement groups are the
// machine's synchronization boundaries, and the barrier also surfaces
// divergent control flow as a protocol error rather than corruption.
func (w *worker) execNest(n *lir.Nest) error {
	rank := n.Region.Rank()
	d, ok := w.m.decomps[rank]
	if !ok {
		return fmt.Errorf("distvm: no decomposition for rank %d", rank)
	}

	var reduceIdx []int
	for si, s := range n.Body {
		if s.IsReduce {
			reduceIdx = append(reduceIdx, si)
		}
	}

	// Local reduction partials, indexed by statement position.
	partials := make([]float64, len(n.Body))
	for _, si := range reduceIdx {
		partials[si] = n.Body[si].Op.Identity()
	}

	portion := dist.Intersect(n.Region, d.Block(w.id))
	if !dist.Empty(portion) {
		if err := w.addSteps(int64(portion.Size()) * int64(len(n.Body))); err != nil {
			return err
		}
		idx := make([]int, rank)
		if err := w.loop(n, portion, idx, 0, partials); err != nil {
			return err
		}
	}

	if len(reduceIdx) == 0 {
		return w.barrier()
	}

	// Gather the partials at processor 0, combine in processor order
	// starting from the identity, broadcast the result back, and store
	// it in every processor's replicated scalar state.
	part := make([]float64, len(reduceIdx))
	for j, si := range reduceIdx {
		part[j] = partials[si]
	}
	combined, err := w.allCombine(part, func(parts [][]float64) []float64 {
		acc := make([]float64, len(reduceIdx))
		for j, si := range reduceIdx {
			acc[j] = n.Body[si].Op.Identity()
		}
		for p := 0; p < w.m.procs; p++ {
			if len(parts[p]) != len(reduceIdx) {
				return nil
			}
			for j, si := range reduceIdx {
				acc[j] = combine(n.Body[si].Op, acc[j], parts[p][j])
			}
		}
		return acc
	})
	if err != nil {
		return err
	}
	if len(combined) != len(reduceIdx) {
		return fmt.Errorf("distvm: processor %d: protocol mismatch: reduction arity differs across processors", w.id)
	}
	for j, si := range reduceIdx {
		w.scalars[n.Body[si].Target] = combined[j]
	}
	return nil
}

// loop recursively iterates loop level `depth` of the nest (outermost
// first) over the processor's portion, honoring the loop structure
// vector's dimension assignment and direction.
func (w *worker) loop(n *lir.Nest, portion *sema.Region, idx []int, depth int, partials []float64) error {
	if depth == portion.Rank() {
		return w.element(n, idx, partials)
	}
	pi := n.Order[depth]
	dim := pi
	if dim < 0 {
		dim = -dim
	}
	k := dim - 1
	lo, hi := portion.Lo[k], portion.Hi[k]
	if pi > 0 {
		for i := lo; i <= hi; i++ {
			idx[k] = i
			if err := w.loop(n, portion, idx, depth+1, partials); err != nil {
				return err
			}
		}
	} else {
		for i := hi; i >= lo; i-- {
			idx[k] = i
			if err := w.loop(n, portion, idx, depth+1, partials); err != nil {
				return err
			}
		}
	}
	return nil
}

// element executes every nest statement for one index on this processor.
func (w *worker) element(n *lir.Nest, idx []int, partials []float64) error {
	for _, pl := range n.Preloads {
		v, err := w.evalElem(&air.RefExpr{Ref: air.Ref{Array: pl.Array, Off: pl.Off}}, idx)
		if err != nil {
			return err
		}
		w.scalars[pl.Var] = v
	}
	for si, s := range n.Body {
		if s.Guard != nil && !inRegion(s.Guard, idx) {
			continue
		}
		v, err := w.evalElem(s.RHS, idx)
		if err != nil {
			return err
		}
		switch {
		case s.IsReduce:
			partials[si] = combine(s.Op, partials[si], v)
		case s.Contracted:
			w.scalars[s.LHS] = v
		default:
			la := w.m.arrays[s.LHS][w.id]
			if la == nil || !la.contains(idx) {
				return fmt.Errorf("distvm: write to %s%v outside local storage of proc %d", s.LHS, idx, w.id)
			}
			la.data[la.at(idx)] = v
		}
	}
	return nil
}

func inRegion(r *sema.Region, idx []int) bool {
	for k := range idx {
		if idx[k] < r.Lo[k] || idx[k] > r.Hi[k] {
			return false
		}
	}
	return true
}

func combine(op air.ReduceOp, a, b float64) float64 {
	switch op {
	case air.ReduceSum:
		return a + b
	case air.ReduceProd:
		return a * b
	case air.ReduceMax:
		return math.Max(a, b)
	case air.ReduceMin:
		return math.Min(a, b)
	}
	return a + b
}

// partialReduce executes a dimensional reduction: each processor
// accumulates partials for its portion of the source region into a
// dense buffer over the destination slab, the buffers combine at
// processor 0 in processor order, and after the broadcast every owner
// stores its own destination elements.
func (w *worker) partialReduce(x *lir.PartialReduce) error {
	rank := x.Region.Rank()
	d, ok := w.m.decomps[rank]
	if !ok {
		return fmt.Errorf("distvm: no decomposition for rank %d", rank)
	}
	collapsed := make([]bool, rank)
	for k := 0; k < rank; k++ {
		collapsed[k] = x.Dest.Extent(k) == 1 && x.Region.Extent(k) != 1
	}
	size := x.Dest.Size()
	strides := make([]int, rank)
	s := 1
	for k := rank - 1; k >= 0; k-- {
		strides[k] = s
		s *= x.Dest.Extent(k)
	}
	flat := func(idx []int) int {
		p := 0
		for k := 0; k < rank; k++ {
			v := idx[k]
			if collapsed[k] {
				v = x.Dest.Lo[k]
			}
			p += (v - x.Dest.Lo[k]) * strides[k]
		}
		return p
	}

	buf := make([]float64, size)
	for i := range buf {
		buf[i] = x.Op.Identity()
	}
	portion := dist.Intersect(x.Region, d.Block(w.id))
	if !dist.Empty(portion) {
		if err := w.addSteps(int64(portion.Size())); err != nil {
			return err
		}
		idx := make([]int, rank)
		var sweep func(k int) error
		sweep = func(k int) error {
			if k == rank {
				v, err := w.evalElem(x.Body, idx)
				if err != nil {
					return err
				}
				pos := flat(idx)
				buf[pos] = combine(x.Op, buf[pos], v)
				return nil
			}
			for i := portion.Lo[k]; i <= portion.Hi[k]; i++ {
				idx[k] = i
				if err := sweep(k + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := sweep(0); err != nil {
			return err
		}
	}

	combined, err := w.allCombine(buf, func(parts [][]float64) []float64 {
		acc := make([]float64, size)
		for i := range acc {
			acc[i] = x.Op.Identity()
		}
		for p := 0; p < w.m.procs; p++ {
			if len(parts[p]) != size {
				return nil
			}
			for i := range acc {
				acc[i] = combine(x.Op, acc[i], parts[p][i])
			}
		}
		return acc
	})
	if err != nil {
		return err
	}
	if len(combined) != size {
		return fmt.Errorf("distvm: processor %d: protocol mismatch: partial-reduce extent differs across processors", w.id)
	}

	// Store this processor's owned destination elements.
	locals := w.m.arrays[x.LHS]
	if locals == nil {
		return fmt.Errorf("distvm: partial reduction into unknown array %s", x.LHS)
	}
	la := locals[w.id]
	idx := make([]int, rank)
	var store func(k int) error
	store = func(k int) error {
		if k == rank {
			if d.Owner(idx) != w.id {
				return nil
			}
			if la.contains(idx) {
				la.data[la.at(idx)] = combined[flat(idx)]
			}
			return nil
		}
		for i := x.Dest.Lo[k]; i <= x.Dest.Hi[k]; i++ {
			idx[k] = i
			if err := store(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return store(0)
}

// ---------------------------------------------------------------------------
// Expression evaluation

// evalElem evaluates an element-wise expression at idx on this
// processor. Reads outside the local storage but inside the array's
// halo return zero, matching the sequential VM's zero-filled halos.
func (w *worker) evalElem(e air.Expr, idx []int) (float64, error) {
	switch x := e.(type) {
	case *air.ConstExpr:
		return x.Val, nil
	case *air.ScalarExpr:
		return w.scalars[x.Name], nil
	case *air.IndexExpr:
		return float64(idx[x.Dim-1]), nil
	case *air.RefExpr:
		if info := w.m.prog.Source.Arrays[x.Ref.Array]; info != nil && info.Contracted {
			return w.scalars[x.Ref.Array], nil
		}
		locals, ok := w.m.arrays[x.Ref.Array]
		if !ok {
			return 0, fmt.Errorf("distvm: unknown array %s", x.Ref.Array)
		}
		la := locals[w.id]
		target := make([]int, len(idx))
		for k := range idx {
			target[k] = idx[k] + x.Ref.Off[k]
		}
		if !la.contains(target) {
			// Outside the allocation: the sequential VM's halo is
			// zero-filled, so reads there are zero. Reads inside the
			// allocation but outside local storage would be a
			// compilation bug (missing halo) — surface them.
			alloc := w.m.prog.Source.Arrays[x.Ref.Array].Alloc
			if inRegion(alloc, target) {
				return 0, fmt.Errorf("distvm: proc %d reads %s%v outside its halo", w.id, x.Ref.Array, target)
			}
			return 0, nil
		}
		return la.data[la.at(target)], nil
	case *air.BinExpr:
		a, err := w.evalElem(x.X, idx)
		if err != nil {
			return 0, err
		}
		b, err := w.evalElem(x.Y, idx)
		if err != nil {
			return 0, err
		}
		return binOp(x.Op, a, b)
	case *air.UnExpr:
		a, err := w.evalElem(x.X, idx)
		if err != nil {
			return 0, err
		}
		if x.Op == air.OpNot {
			return b2f(a == 0), nil
		}
		return -a, nil
	case *air.CallExpr:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := w.evalElem(a, idx)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return builtin(x.Name, args)
	}
	return 0, fmt.Errorf("distvm: unknown expression %T", e)
}

// evalScalar evaluates a scalar expression (no array references other
// than contracted registers).
func (w *worker) evalScalar(e air.Expr) (float64, error) {
	return w.evalElem(e, nil)
}

func binOp(op air.Op, a, b float64) (float64, error) {
	switch op {
	case air.OpAdd:
		return a + b, nil
	case air.OpSub:
		return a - b, nil
	case air.OpMul:
		return a * b, nil
	case air.OpDiv:
		return a / b, nil
	case air.OpRem:
		return math.Mod(a, b), nil
	case air.OpPow:
		return math.Pow(a, b), nil
	case air.OpEq:
		return b2f(a == b), nil
	case air.OpNe:
		return b2f(a != b), nil
	case air.OpLt:
		return b2f(a < b), nil
	case air.OpLe:
		return b2f(a <= b), nil
	case air.OpGt:
		return b2f(a > b), nil
	case air.OpGe:
		return b2f(a >= b), nil
	case air.OpAnd:
		return b2f(a != 0 && b != 0), nil
	case air.OpOr:
		return b2f(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("distvm: unknown operator %v", op)
}

func builtin(name string, args []float64) (float64, error) {
	one := func(f func(float64) float64) (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("distvm: %s arity", name)
		}
		return f(args[0]), nil
	}
	two := func(f func(a, b float64) float64) (float64, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("distvm: %s arity", name)
		}
		return f(args[0], args[1]), nil
	}
	switch name {
	case "sqrt":
		return one(math.Sqrt)
	case "exp":
		return one(math.Exp)
	case "log":
		return one(math.Log)
	case "sin":
		return one(math.Sin)
	case "cos":
		return one(math.Cos)
	case "tan":
		return one(math.Tan)
	case "abs":
		return one(math.Abs)
	case "floor":
		return one(math.Floor)
	case "ceil":
		return one(math.Ceil)
	case "sign":
		return one(func(v float64) float64 {
			switch {
			case v > 0:
				return 1
			case v < 0:
				return -1
			}
			return 0
		})
	case "min":
		return two(math.Min)
	case "max":
		return two(math.Max)
	case "pow":
		return two(math.Pow)
	case "mod":
		return two(math.Mod)
	case "atan2":
		return two(math.Atan2)
	}
	return 0, fmt.Errorf("distvm: unknown builtin %s", name)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
