package distvm

import (
	"fmt"
	"math"

	"repro/internal/air"
	"repro/internal/dist"
	"repro/internal/lir"
	"repro/internal/sema"
)

// execNest runs one loop nest: each processor iterates its owned
// portion of the nest region in the nest's loop-structure order;
// reductions accumulate locally and then combine across processors
// (the local-sum/global-combine split of a distributed reduction).
func (m *Machine) execNest(n *lir.Nest) error {
	rank := n.Region.Rank()
	d, ok := m.decomps[rank]
	if !ok {
		return fmt.Errorf("distvm: no decomposition for rank %d", rank)
	}

	// Local reduction partials, indexed by statement position.
	partials := make([][]float64, len(n.Body))
	for si, s := range n.Body {
		if s.IsReduce {
			partials[si] = make([]float64, m.procs)
			for p := range partials[si] {
				partials[si][p] = s.Op.Identity()
			}
		}
	}

	for p := 0; p < m.procs; p++ {
		portion := dist.Intersect(n.Region, d.Block(p))
		if dist.Empty(portion) {
			continue
		}
		if err := m.step(int64(portion.Size()) * int64(len(n.Body))); err != nil {
			return err
		}
		idx := make([]int, rank)
		if err := m.loop(n, p, portion, idx, 0, partials); err != nil {
			return err
		}
	}

	// Global combine + broadcast for reductions.
	for si, s := range n.Body {
		if !s.IsReduce {
			continue
		}
		acc := s.Op.Identity()
		for p := 0; p < m.procs; p++ {
			acc = combine(s.Op, acc, partials[si][p])
		}
		for p := 0; p < m.procs; p++ {
			m.scalars[p][s.Target] = acc
		}
	}
	return nil
}

// loop recursively iterates loop level `depth` of the nest (outermost
// first) over the processor's portion, honoring the loop structure
// vector's dimension assignment and direction.
func (m *Machine) loop(n *lir.Nest, proc int, portion *sema.Region, idx []int, depth int, partials [][]float64) error {
	if depth == portion.Rank() {
		return m.element(n, proc, idx, partials)
	}
	pi := n.Order[depth]
	dim := pi
	if dim < 0 {
		dim = -dim
	}
	k := dim - 1
	lo, hi := portion.Lo[k], portion.Hi[k]
	if pi > 0 {
		for i := lo; i <= hi; i++ {
			idx[k] = i
			if err := m.loop(n, proc, portion, idx, depth+1, partials); err != nil {
				return err
			}
		}
	} else {
		for i := hi; i >= lo; i-- {
			idx[k] = i
			if err := m.loop(n, proc, portion, idx, depth+1, partials); err != nil {
				return err
			}
		}
	}
	return nil
}

// element executes every nest statement for one index on one processor.
func (m *Machine) element(n *lir.Nest, proc int, idx []int, partials [][]float64) error {
	for _, pl := range n.Preloads {
		v, err := m.evalElem(proc, &air.RefExpr{Ref: air.Ref{Array: pl.Array, Off: pl.Off}}, idx)
		if err != nil {
			return err
		}
		m.scalars[proc][pl.Var] = v
	}
	for si, s := range n.Body {
		if s.Guard != nil && !inRegion(s.Guard, idx) {
			continue
		}
		v, err := m.evalElem(proc, s.RHS, idx)
		if err != nil {
			return err
		}
		switch {
		case s.IsReduce:
			partials[si][proc] = combine(s.Op, partials[si][proc], v)
		case s.Contracted:
			m.scalars[proc][s.LHS] = v
		default:
			la := m.arrays[s.LHS][proc]
			if la == nil || !la.contains(idx) {
				return fmt.Errorf("distvm: write to %s%v outside local storage of proc %d", s.LHS, idx, proc)
			}
			la.data[la.at(idx)] = v
		}
	}
	return nil
}

func inRegion(r *sema.Region, idx []int) bool {
	for k := range idx {
		if idx[k] < r.Lo[k] || idx[k] > r.Hi[k] {
			return false
		}
	}
	return true
}

func combine(op air.ReduceOp, a, b float64) float64 {
	switch op {
	case air.ReduceSum:
		return a + b
	case air.ReduceProd:
		return a * b
	case air.ReduceMax:
		return math.Max(a, b)
	case air.ReduceMin:
		return math.Min(a, b)
	}
	return a + b
}

// partialReduce executes a dimensional reduction: each processor
// accumulates partials for its portion of the source region into a
// dense buffer over the destination slab, the buffers combine across
// processors, and owners store the result.
func (m *Machine) partialReduce(x *lir.PartialReduce) error {
	rank := x.Region.Rank()
	d, ok := m.decomps[rank]
	if !ok {
		return fmt.Errorf("distvm: no decomposition for rank %d", rank)
	}
	collapsed := make([]bool, rank)
	for k := 0; k < rank; k++ {
		collapsed[k] = x.Dest.Extent(k) == 1 && x.Region.Extent(k) != 1
	}
	size := x.Dest.Size()
	strides := make([]int, rank)
	s := 1
	for k := rank - 1; k >= 0; k-- {
		strides[k] = s
		s *= x.Dest.Extent(k)
	}
	flat := func(idx []int) int {
		p := 0
		for k := 0; k < rank; k++ {
			v := idx[k]
			if collapsed[k] {
				v = x.Dest.Lo[k]
			}
			p += (v - x.Dest.Lo[k]) * strides[k]
		}
		return p
	}

	partials := make([][]float64, m.procs)
	for p := 0; p < m.procs; p++ {
		buf := make([]float64, size)
		for i := range buf {
			buf[i] = x.Op.Identity()
		}
		partials[p] = buf
		portion := dist.Intersect(x.Region, d.Block(p))
		if dist.Empty(portion) {
			continue
		}
		if err := m.step(int64(portion.Size())); err != nil {
			return err
		}
		idx := make([]int, rank)
		var sweep func(k int) error
		sweep = func(k int) error {
			if k == rank {
				v, err := m.evalElem(p, x.Body, idx)
				if err != nil {
					return err
				}
				pos := flat(idx)
				buf[pos] = combine(x.Op, buf[pos], v)
				return nil
			}
			for i := portion.Lo[k]; i <= portion.Hi[k]; i++ {
				idx[k] = i
				if err := sweep(k + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := sweep(0); err != nil {
			return err
		}
	}

	// Global combine, then store each destination element at its owner.
	locals := m.arrays[x.LHS]
	if locals == nil {
		return fmt.Errorf("distvm: partial reduction into unknown array %s", x.LHS)
	}
	idx := make([]int, rank)
	var store func(k int) error
	store = func(k int) error {
		if k == rank {
			acc := x.Op.Identity()
			pos := flat(idx)
			for p := 0; p < m.procs; p++ {
				acc = combine(x.Op, acc, partials[p][pos])
			}
			owner := d.Owner(idx)
			if owner < 0 {
				return nil
			}
			la := locals[owner]
			if la.contains(idx) {
				la.data[la.at(idx)] = acc
			}
			return nil
		}
		for i := x.Dest.Lo[k]; i <= x.Dest.Hi[k]; i++ {
			idx[k] = i
			if err := store(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return store(0)
}

// ---------------------------------------------------------------------------
// Expression evaluation

// evalElem evaluates an element-wise expression at idx on processor
// proc. Reads outside the local storage but inside the array's halo
// return zero, matching the sequential VM's zero-filled halos.
func (m *Machine) evalElem(proc int, e air.Expr, idx []int) (float64, error) {
	switch x := e.(type) {
	case *air.ConstExpr:
		return x.Val, nil
	case *air.ScalarExpr:
		return m.scalars[proc][x.Name], nil
	case *air.IndexExpr:
		return float64(idx[x.Dim-1]), nil
	case *air.RefExpr:
		if info := m.prog.Source.Arrays[x.Ref.Array]; info != nil && info.Contracted {
			return m.scalars[proc][x.Ref.Array], nil
		}
		locals, ok := m.arrays[x.Ref.Array]
		if !ok {
			return 0, fmt.Errorf("distvm: unknown array %s", x.Ref.Array)
		}
		la := locals[proc]
		target := make([]int, len(idx))
		for k := range idx {
			target[k] = idx[k] + x.Ref.Off[k]
		}
		if !la.contains(target) {
			// Outside the allocation: the sequential VM's halo is
			// zero-filled, so reads there are zero. Reads inside the
			// allocation but outside local storage would be a
			// compilation bug (missing halo) — surface them.
			alloc := m.prog.Source.Arrays[x.Ref.Array].Alloc
			if inRegion(alloc, target) {
				return 0, fmt.Errorf("distvm: proc %d reads %s%v outside its halo", proc, x.Ref.Array, target)
			}
			return 0, nil
		}
		return la.data[la.at(target)], nil
	case *air.BinExpr:
		a, err := m.evalElem(proc, x.X, idx)
		if err != nil {
			return 0, err
		}
		b, err := m.evalElem(proc, x.Y, idx)
		if err != nil {
			return 0, err
		}
		return binOp(x.Op, a, b)
	case *air.UnExpr:
		a, err := m.evalElem(proc, x.X, idx)
		if err != nil {
			return 0, err
		}
		if x.Op == air.OpNot {
			return b2f(a == 0), nil
		}
		return -a, nil
	case *air.CallExpr:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := m.evalElem(proc, a, idx)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return builtin(x.Name, args)
	}
	return 0, fmt.Errorf("distvm: unknown expression %T", e)
}

// evalScalar evaluates a scalar expression (no array references other
// than contracted registers).
func (m *Machine) evalScalar(proc int, e air.Expr) (float64, error) {
	return m.evalElem(proc, e, nil)
}

func binOp(op air.Op, a, b float64) (float64, error) {
	switch op {
	case air.OpAdd:
		return a + b, nil
	case air.OpSub:
		return a - b, nil
	case air.OpMul:
		return a * b, nil
	case air.OpDiv:
		return a / b, nil
	case air.OpRem:
		return math.Mod(a, b), nil
	case air.OpPow:
		return math.Pow(a, b), nil
	case air.OpEq:
		return b2f(a == b), nil
	case air.OpNe:
		return b2f(a != b), nil
	case air.OpLt:
		return b2f(a < b), nil
	case air.OpLe:
		return b2f(a <= b), nil
	case air.OpGt:
		return b2f(a > b), nil
	case air.OpGe:
		return b2f(a >= b), nil
	case air.OpAnd:
		return b2f(a != 0 && b != 0), nil
	case air.OpOr:
		return b2f(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("distvm: unknown operator %v", op)
}

func builtin(name string, args []float64) (float64, error) {
	one := func(f func(float64) float64) (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("distvm: %s arity", name)
		}
		return f(args[0]), nil
	}
	two := func(f func(a, b float64) float64) (float64, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("distvm: %s arity", name)
		}
		return f(args[0], args[1]), nil
	}
	switch name {
	case "sqrt":
		return one(math.Sqrt)
	case "exp":
		return one(math.Exp)
	case "log":
		return one(math.Log)
	case "sin":
		return one(math.Sin)
	case "cos":
		return one(math.Cos)
	case "tan":
		return one(math.Tan)
	case "abs":
		return one(math.Abs)
	case "floor":
		return one(math.Floor)
	case "ceil":
		return one(math.Ceil)
	case "sign":
		return one(func(v float64) float64 {
			switch {
			case v > 0:
				return 1
			case v < 0:
				return -1
			}
			return 0
		})
	case "min":
		return two(math.Min)
	case "max":
		return two(math.Max)
	case "pow":
		return two(math.Pow)
	case "mod":
		return two(math.Mod)
	case "atan2":
		return two(math.Atan2)
	}
	return 0, fmt.Errorf("distvm: unknown builtin %s", name)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
