package distvm_test

// Cross-interpreter determinism: the parallel engine must Gather
// BIT-identically to the sequential VM. Every array element is
// computed by exactly one owner from the same inputs in the same
// order as the sequential interpreter, so float nonassociativity
// never enters: equality here is exact (Float64bits), not tolerance.
// (Reduction scalars may differ in the last ulp — partials combine in
// processor order, not iteration order — and tomcatv and simple never
// feed reduction results back into array values, which is what makes
// the bit-exact array guarantee possible.)

import (
	"io"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distvm"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/vm"
)

func TestGatherBitIdentical(t *testing.T) {
	for _, name := range []string{"tomcatv", "simple"} {
		b, ok := programs.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		cfg := map[string]int64{b.SizeConfig: 16}
		for _, lvl := range []core.Level{core.Baseline, core.C2F3} {
			ref, err := driver.Compile(b.Source, driver.Options{Level: lvl, Configs: cfg})
			if err != nil {
				t.Fatalf("%s %v: sequential compile: %v", name, lvl, err)
			}
			refM, _, err := vm.Run(ref.LIR, vm.Options{Out: io.Discard})
			if err != nil {
				t.Fatalf("%s %v: sequential run: %v", name, lvl, err)
			}
			for _, procs := range []int{2, 4, 7} {
				co := comm.DefaultOptions(procs)
				dc, err := driver.Compile(b.Source, driver.Options{Level: lvl, Configs: cfg, Comm: &co})
				if err != nil {
					t.Fatalf("%s %v p=%d: distributed compile: %v", name, lvl, procs, err)
				}
				dm, err := distvm.Run(dc.LIR, distvm.Options{Procs: procs})
				if err != nil {
					t.Fatalf("%s %v p=%d: distributed run: %v", name, lvl, procs, err)
				}
				compared := 0
				for arr, info := range ref.AIR.Arrays {
					if info.Contracted {
						continue
					}
					dinfo := dc.AIR.Arrays[arr]
					if dinfo == nil || dinfo.Contracted {
						continue
					}
					want := refM.ArrayData(arr)
					got := dm.Gather(arr)
					if len(want) != len(got) {
						t.Errorf("%s %v p=%d %s: size %d vs %d", name, lvl, procs, arr, len(want), len(got))
						continue
					}
					compared++
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
							t.Errorf("%s %v p=%d %s[%d]: %v (%#x) != sequential %v (%#x)",
								name, lvl, procs, arr, i,
								got[i], math.Float64bits(got[i]),
								want[i], math.Float64bits(want[i]))
							break
						}
					}
				}
				if compared == 0 {
					t.Errorf("%s %v p=%d: no arrays compared — test is vacuous", name, lvl, procs)
				}
			}
		}
	}
}
