package distvm

// White-box tests of the parallel engine: the replicated-scalar
// validator and the watchdog that turns a lost processor into an
// error instead of a deadlock.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/air"
	"repro/internal/lir"
)

func machineWithScalars(scalars []map[string]float64) *Machine {
	return &Machine{
		prog:    &lir.Program{Source: &air.Program{Arrays: map[string]*air.ArrayInfo{}}},
		procs:   len(scalars),
		scalars: scalars,
	}
}

func TestScalarsConsistentDetectsDifference(t *testing.T) {
	m := machineWithScalars([]map[string]float64{
		{"s": 1, "t": 2},
		{"s": 1, "t": 3},
	})
	err := m.ScalarsConsistent()
	if err == nil || !strings.Contains(err.Error(), "differs") {
		t.Fatalf("want differing-scalar error, got %v", err)
	}
}

// Regression test: a scalar that is missing on some processor used to
// be reported as consistent (the !ok lookup was skipped); it is a
// replicated-scalar violation just like a differing value.
func TestScalarsConsistentDetectsMissingScalar(t *testing.T) {
	m := machineWithScalars([]map[string]float64{
		{"s": 1, "t": 2},
		{"s": 1}, // t never assigned on proc 1
	})
	err := m.ScalarsConsistent()
	if err == nil {
		t.Fatal("missing scalar reported as consistent")
	}
	if !strings.Contains(err.Error(), "missing") || !strings.Contains(err.Error(), "replicated-scalar violation") {
		t.Fatalf("want missing-scalar violation, got %v", err)
	}
}

func TestScalarsConsistentAccepts(t *testing.T) {
	m := machineWithScalars([]map[string]float64{
		{"s": 1, "t": 2},
		{"s": 1, "t": 2},
	})
	if err := m.ScalarsConsistent(); err != nil {
		t.Fatalf("consistent state rejected: %v", err)
	}
}

// TestWatchdogTimeout: a processor waiting at a barrier its peer never
// reaches must get a descriptive timeout error, not hang forever.
func TestWatchdogTimeout(t *testing.T) {
	m := &Machine{procs: 2, timeout: 50 * time.Millisecond}
	m.openChannels()
	w := newWorker(m, 1)
	err := w.barrier() // worker 0 never arrives
	if err == nil {
		t.Fatal("lone barrier arrival did not time out")
	}
	if !strings.Contains(err.Error(), "timed out") || !strings.Contains(err.Error(), "lost processor or protocol mismatch") {
		t.Fatalf("want watchdog timeout error, got: %v", err)
	}
}

// TestAbortUnblocksPeers: when one processor fails, a peer blocked in
// a collective must unwind with errAborted well before the watchdog.
func TestAbortUnblocksPeers(t *testing.T) {
	m := &Machine{procs: 2, timeout: 30 * time.Second}
	m.openChannels()
	w := newWorker(m, 1)
	errc := make(chan error, 1)
	go func() { errc <- w.barrier() }()
	m.abort(errTest)
	select {
	case err := <-errc:
		if err != errAborted {
			t.Fatalf("want errAborted, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer stayed blocked after abort")
	}
	if m.failErr != errTest {
		t.Fatalf("recorded failure = %v, want the aborting error", m.failErr)
	}
}

var errTest = &protocolTestError{}

type protocolTestError struct{}

func (*protocolTestError) Error() string { return "simulated processor failure" }
