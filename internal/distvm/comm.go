package distvm

import (
	"fmt"
	"time"
)

// haloMsg carries one slab of ghost-cell values from its owner to a
// requiring processor. The element order is the receiver's row-major
// slab enumeration, which both sides derive independently from the
// static block geometry — messages need no index lists or handshakes.
type haloMsg struct {
	from  int
	array string
	msgID int
	vals  []float64
}

// ctrlKind tags the synchronization messages.
type ctrlKind int

const (
	ctrlArrive  ctrlKind = iota // worker -> processor 0: barrier/reduce entry
	ctrlRelease                 // processor 0 -> worker: combined result
)

func (k ctrlKind) String() string {
	if k == ctrlArrive {
		return "arrive"
	}
	return "release"
}

// ctrlMsg is one barrier or reduction message. vals carries the
// reduction partials on arrival and the combined result on release;
// nil for a pure barrier.
type ctrlMsg struct {
	kind ctrlKind
	from int
	seq  int
	vals []float64
}

// timeoutErr describes a watchdog expiry: some processor stopped
// participating in the protocol (died, diverged, or deadlocked).
func (w *worker) timeoutErr(what string) error {
	return fmt.Errorf("distvm: processor %d timed out after %v waiting for %s (sync #%d) — lost processor or protocol mismatch",
		w.id, w.m.timeout, what, w.syncSeq)
}

// recvCtrl blocks on this worker's control mailbox under the watchdog.
func (w *worker) recvCtrl(what string) (ctrlMsg, error) {
	select {
	case msg := <-w.m.ctrl[w.id]:
		return msg, nil
	case <-w.m.done:
		return ctrlMsg{}, errAborted
	case <-time.After(w.m.timeout):
		return ctrlMsg{}, w.timeoutErr(what)
	}
}

// sendCtrl delivers a control message under the watchdog. The mailbox
// is sized for the regular protocol, so a blocked send already means
// something is wrong; the watchdog reports it instead of deadlocking.
func (w *worker) sendCtrl(to int, msg ctrlMsg) error {
	select {
	case w.m.ctrl[to] <- msg:
		return nil
	case <-w.m.done:
		return errAborted
	case <-time.After(w.m.timeout):
		return w.timeoutErr(fmt.Sprintf("space in processor %d's control mailbox", to))
	}
}

// barrier blocks until every processor reaches the same point.
func (w *worker) barrier() error {
	_, err := w.allCombine(nil, nil)
	return err
}

// allCombine is the machine's gather-combine-broadcast primitive: every
// processor contributes part, processor 0 combines the parts in
// processor order (so the result is deterministic no matter how the
// goroutines are scheduled), and every processor returns the combined
// vector. A nil combine (with nil parts) degenerates to a barrier.
func (w *worker) allCombine(part []float64, combine func(parts [][]float64) []float64) ([]float64, error) {
	w.syncSeq++
	seq := w.syncSeq
	if w.id != 0 {
		if err := w.sendCtrl(0, ctrlMsg{kind: ctrlArrive, from: w.id, seq: seq, vals: part}); err != nil {
			return nil, err
		}
		msg, err := w.recvCtrl("release from processor 0")
		if err != nil {
			return nil, err
		}
		if msg.kind != ctrlRelease || msg.seq != seq {
			return nil, fmt.Errorf("distvm: processor %d: protocol mismatch: got %s #%d, want release #%d",
				w.id, msg.kind, msg.seq, seq)
		}
		return msg.vals, nil
	}

	parts := make([][]float64, w.m.procs)
	parts[0] = part
	seen := make([]bool, w.m.procs)
	for n := 1; n < w.m.procs; n++ {
		msg, err := w.recvCtrl("arrivals from the other processors")
		if err != nil {
			return nil, err
		}
		if msg.kind != ctrlArrive || msg.seq != seq {
			return nil, fmt.Errorf("distvm: processor 0: protocol mismatch: got %s #%d from processor %d, want arrive #%d",
				msg.kind, msg.seq, msg.from, seq)
		}
		if msg.from <= 0 || msg.from >= w.m.procs || seen[msg.from] {
			return nil, fmt.Errorf("distvm: processor 0: protocol mismatch: bad arrival from processor %d", msg.from)
		}
		seen[msg.from] = true
		parts[msg.from] = msg.vals
	}
	var result []float64
	if combine != nil {
		result = combine(parts)
	}
	for q := 1; q < w.m.procs; q++ {
		if err := w.sendCtrl(q, ctrlMsg{kind: ctrlRelease, seq: seq, vals: result}); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// sendHalo posts one ghost-cell message under the watchdog.
func (w *worker) sendHalo(to int, msg haloMsg) error {
	select {
	case w.m.halo[to] <- msg:
		return nil
	case <-w.m.done:
		return errAborted
	case <-time.After(w.m.timeout):
		return w.timeoutErr(fmt.Sprintf("space in processor %d's halo mailbox", to))
	}
}

// maxStash bounds the early-arrival buffer; exceeding it means the
// processors disagree about the communication schedule.
const maxStash = 1024

// recvHaloFrom returns the next halo message from the given owner for
// (array, msgID), in per-sender FIFO order. Messages that belong to a
// later receive (pipelined sends overtaking this one) are stashed.
func (w *worker) recvHaloFrom(from int, array string, msgID int, wantElems int) ([]float64, error) {
	for i, msg := range w.stash {
		if msg.from == from && msg.array == array && msg.msgID == msgID {
			w.stash = append(w.stash[:i], w.stash[i+1:]...)
			return w.checkHalo(msg, wantElems)
		}
	}
	for {
		select {
		case msg := <-w.m.halo[w.id]:
			if msg.from == from && msg.array == array && msg.msgID == msgID {
				return w.checkHalo(msg, wantElems)
			}
			if len(w.stash) >= maxStash {
				return nil, fmt.Errorf("distvm: processor %d: protocol mismatch: %d unexpected halo messages stashed while waiting for %s (msg %d) from processor %d",
					w.id, len(w.stash), array, msgID, from)
			}
			w.stash = append(w.stash, msg)
		case <-w.m.done:
			return nil, errAborted
		case <-time.After(w.m.timeout):
			return nil, w.timeoutErr(fmt.Sprintf("halo of %s (msg %d) from processor %d", array, msgID, from))
		}
	}
}

// checkHalo validates a matched message's payload size.
func (w *worker) checkHalo(msg haloMsg, wantElems int) ([]float64, error) {
	if len(msg.vals) != wantElems {
		return nil, fmt.Errorf("distvm: processor %d: protocol mismatch: halo of %s from processor %d carries %d elements, want %d",
			w.id, msg.array, msg.from, len(msg.vals), wantElems)
	}
	return msg.vals, nil
}
