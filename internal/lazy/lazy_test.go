package lazy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/remark"
	"repro/internal/vm"
)

// diffZA is the reference program for the differential test: stencil
// reads, a user temporary, a copy, max- and sum-reductions, and
// writelns inside an iteration — the shapes the lazy engine must
// reproduce byte-for-byte.
const diffZA = `
program diff;
config n : integer = 12;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction north = (-1, 0); south = (1, 0); west = (0, -1); east = (0, 1);
var A, B : [R] double;
var T : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 + index2 * 0.5;
  [R] B := 0.0;
  for it := 1 to 3 do
    [I] T := (A@north + A@south + A@west + A@east) * 0.25;
    [I] B := T + A * 0.5;
    s := max<< [I] abs(B - A);
    [I] A := B;
    writeln("res", s);
  end;
  s := +<< [R] A;
  writeln("sum", s);
end;
`

// runDiffZA executes the reference program on the VM and returns its
// output.
func runDiffZA(t *testing.T, lvl core.Level) string {
	t.Helper()
	c, err := driver.Compile(diffZA, driver.Options{Level: lvl})
	if err != nil {
		t.Fatalf("compile ZA at %v: %v", lvl, err)
	}
	var out bytes.Buffer
	if _, _, err := c.Run(vm.Options{Out: &out}); err != nil {
		t.Fatalf("run ZA at %v: %v", lvl, err)
	}
	return out.String()
}

// runDiffLazy issues the same computation through the lazy engine,
// evaluating once per iteration like a real caller, and returns the
// writeln output.
func runDiffLazy(t *testing.T, opt Options) string {
	t.Helper()
	var out bytes.Buffer
	opt.Out = &out
	e := NewEngine(opt)
	const n = 12
	R2 := R(1, n, 1, n)
	I := R(2, n-1, 2, n-1)
	A := e.Array("A", R2)
	B := e.Array("B", R2)
	s := e.Scalar("s", 0)
	A.Assign(nil, Add(Index(1), Mul(Index(2), Const(0.5))))
	B.Assign(nil, Const(0))
	for it := 0; it < 3; it++ {
		T := e.Temp("T", R2)
		T.Assign(I, Mul(Add(Add(A.At(-1, 0), A.At(1, 0)), Add(A.At(0, -1), A.At(0, 1))), Const(0.25)))
		B.Assign(I, Add(T, Mul(A, Const(0.5))))
		s.MaxOf(I, Abs(Sub(B, A)))
		A.Assign(I, B)
		e.Writeln("res", s)
		if err := e.Eval(); err != nil {
			t.Fatalf("eval iter %d: %v", it, err)
		}
	}
	s.Sum(R2, A)
	e.Writeln("sum", s)
	if err := e.Eval(); err != nil {
		t.Fatalf("final eval: %v", err)
	}
	return out.String()
}

// TestLazyMatchesZA is the differential acceptance test: the lazy
// engine's output is byte-identical to the equivalent ZA program
// across ladder levels, on the VM and (when a toolchain is present)
// the native backend.
func TestLazyMatchesZA(t *testing.T) {
	want := runDiffZA(t, core.Baseline)
	if !strings.Contains(want, "sum") {
		t.Fatalf("reference output missing sum: %q", want)
	}
	levels := []core.Level{core.Baseline, core.C2, core.C2F4S}
	for _, lvl := range levels {
		if got := runDiffZA(t, lvl); got != want {
			t.Errorf("ZA at %v = %q, want %q", lvl, got, want)
		}
		if got := runDiffLazy(t, Options{Level: lvl}); got != want {
			t.Errorf("lazy VM at %v = %q, want %q", lvl, got, want)
		}
	}
	if !backend.Available() {
		t.Skip("no go toolchain; native arm skipped")
	}
	dir := t.TempDir()
	for _, lvl := range levels {
		got := runDiffLazy(t, Options{Level: lvl, Backend: driver.BackendGo, ArtifactDir: dir})
		if got != want {
			t.Errorf("lazy native at %v = %q, want %q", lvl, got, want)
		}
	}
}

// jacobiStep issues one double-buffered Jacobi sweep and returns the
// swapped handles — the steady-state workload whose fingerprint must
// stay stable across swaps.
func jacobiStep(e *Engine, cur, nxt *Handle, res *ScalarHandle) (*Handle, *Handle) {
	I := R(2, 9, 2, 9)
	nxt.Assign(I, Mul(Const(0.25),
		Add(Add(cur.At(-1, 0), cur.At(1, 0)), Add(cur.At(0, -1), cur.At(0, 1)))))
	res.MaxOf(I, Abs(Sub(nxt, cur)))
	return nxt, cur
}

// TestSteadyStateZeroRecompile is the tentpole's cache property: an
// iterative solver with double-buffer handle swaps compiles exactly
// once; every later Eval is a pure cache hit.
func TestSteadyStateZeroRecompile(t *testing.T) {
	e := NewEngine(Options{Level: core.C2F4S})
	R2 := R(1, 10, 1, 10)
	cur := e.Array("cur", R2)
	nxt := e.Array("nxt", R2)
	res := e.Scalar("res", 0)
	cur.Assign(nil, Index(1))
	if err := e.Eval(); err != nil {
		t.Fatal(err)
	}

	cur, nxt = jacobiStep(e, cur, nxt, res)
	if err := e.Eval(); err != nil {
		t.Fatal(err)
	}
	after1 := e.CacheStats()
	if after1.Misses == 0 {
		t.Fatalf("first sweep compiled nothing: %+v", after1)
	}

	const iters = 6
	for i := 0; i < iters; i++ {
		cur, nxt = jacobiStep(e, cur, nxt, res)
		if err := e.Eval(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
	d := e.CacheStats().Sub(after1)
	if d.Misses != 0 {
		t.Errorf("steady state recompiled: %d misses after warm-up", d.Misses)
	}
	if d.Hits < iters {
		t.Errorf("steady state hits = %d, want >= %d", d.Hits, iters)
	}
	if got := e.Stats().Evals; got != iters+2 {
		t.Errorf("Evals = %d, want %d", got, iters+2)
	}
	if _, err := res.Value(); err != nil {
		t.Fatal(err)
	}
}

// canonText canonicalizes an engine's pending operations (as one
// batch, nothing escaping) and returns the fingerprint text.
func canonText(t *testing.T, e *Engine) string {
	t.Helper()
	if e.err != nil {
		t.Fatalf("deferred error: %v", e.err)
	}
	cb, err := canonicalize(e.pending, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.pending = nil
	return cb.text
}

// TestFingerprintCanonicalization pins the equivalence classes the
// fingerprint must induce: invariance under issue order of independent
// statements, handle naming, and buffer roles; sensitivity to shapes,
// regions, operators, offsets, and temp-ness.
func TestFingerprintCanonicalization(t *testing.T) {
	base := func(e *Engine) {
		r := R(1, 8, 1, 8)
		a := e.Array("a", r)
		b := e.Array("b", r)
		b.Assign(nil, Add(a.At(-1, 0), Const(1)))
	}
	cases := []struct {
		name  string
		build func(e *Engine)
		equal bool
	}{
		{"renamed handles", func(e *Engine) {
			r := R(1, 8, 1, 8)
			x := e.Array("anything", r)
			y := e.Array("else", r)
			y.Assign(nil, Add(x.At(-1, 0), Const(1)))
		}, true},
		{"swapped buffer roles", func(e *Engine) {
			r := R(1, 8, 1, 8)
			b := e.Array("b", r)
			a := e.Array("a", r)
			a.Assign(nil, Add(b.At(-1, 0), Const(1)))
		}, true},
		{"different shape", func(e *Engine) {
			r := R(1, 9, 1, 8)
			a := e.Array("a", r)
			b := e.Array("b", r)
			b.Assign(nil, Add(a.At(-1, 0), Const(1)))
		}, false},
		{"different operator", func(e *Engine) {
			r := R(1, 8, 1, 8)
			a := e.Array("a", r)
			b := e.Array("b", r)
			b.Assign(nil, Sub(a.At(-1, 0), Const(1)))
		}, false},
		{"different offset", func(e *Engine) {
			r := R(1, 8, 1, 8)
			a := e.Array("a", r)
			b := e.Array("b", r)
			b.Assign(nil, Add(a.At(0, -1), Const(1)))
		}, false},
		{"different constant", func(e *Engine) {
			r := R(1, 8, 1, 8)
			a := e.Array("a", r)
			b := e.Array("b", r)
			b.Assign(nil, Add(a.At(-1, 0), Const(2)))
		}, false},
		{"narrower region", func(e *Engine) {
			r := R(1, 8, 1, 8)
			a := e.Array("a", r)
			b := e.Array("b", r)
			b.Assign(R(2, 7, 2, 7), Add(a.At(-1, 0), Const(1)))
		}, false},
		{"temp target", func(e *Engine) {
			r := R(1, 8, 1, 8)
			a := e.Array("a", r)
			b := e.Temp("b", r)
			b.Assign(nil, Add(a.At(-1, 0), Const(1)))
			e.Scalar("s", 0).Sum(r, b)
		}, false},
	}
	eb := NewEngine(Options{})
	base(eb)
	want := canonText(t, eb)
	for _, tc := range cases {
		e := NewEngine(Options{})
		tc.build(e)
		got := canonText(t, e)
		if (got == want) != tc.equal {
			t.Errorf("%s: text equality = %v, want %v\nbase:\n%s\ngot:\n%s",
				tc.name, got == want, tc.equal, want, got)
		}
	}
}

// TestFingerprintIssueOrderInvariance permutes independent statements
// and checks the canonical text never moves. Dependent statements keep
// their dependence order by construction, so any recorded order of
// this program is a legal schedule.
func TestFingerprintIssueOrderInvariance(t *testing.T) {
	r := R(1, 6)
	build := func(perm []int) string {
		e := NewEngine(Options{})
		hs := make([]*Handle, 4)
		for i := range hs {
			hs[i] = e.Array("", r)
		}
		stmts := []func(){
			func() { hs[0].Assign(nil, Const(1)) },
			func() { hs[1].Assign(nil, Const(2)) },
			func() { hs[2].Assign(nil, Add(Index(1), Const(3))) },
			func() { hs[3].Assign(nil, Mul(Index(1), Const(4))) },
		}
		for _, i := range perm {
			stmts[i]()
		}
		return canonText(t, e)
	}
	want := build([]int{0, 1, 2, 3})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(4)
		if got := build(perm); got != want {
			t.Fatalf("perm %v changed canonical text:\nwant:\n%s\ngot:\n%s", perm, want, got)
		}
	}
}

// TestFingerprintDependenceOrder checks that canonicalization respects
// dependences: writing then reading differs from reading then writing
// (a RAW vs WAR program is a different program).
func TestFingerprintDependenceOrder(t *testing.T) {
	r := R(1, 6)
	e1 := NewEngine(Options{})
	a1, b1 := e1.Array("a", r), e1.Array("b", r)
	a1.Assign(nil, Const(1))
	b1.Assign(nil, a1)
	e2 := NewEngine(Options{})
	a2, b2 := e2.Array("a", r), e2.Array("b", r)
	b2.Assign(nil, a2)
	a2.Assign(nil, Const(1))
	if canonText(t, e1) == canonText(t, e2) {
		t.Fatal("RAW and WAR programs canonicalized to the same text")
	}
}

// TestBarrierSplitsBatches checks explicit barriers and MaxBatchOps
// both split an Eval into multiple batches, and that a Temp read
// across the split still carries its value (it escapes its batch).
func TestBarrierSplitsBatches(t *testing.T) {
	var out bytes.Buffer
	e := NewEngine(Options{Level: core.C2, Out: &out})
	r := R(1, 4)
	a := e.Array("a", r)
	s := e.Scalar("s", 0)
	a.Assign(nil, Const(2))
	e.Barrier()
	s.Sum(r, a)
	e.Writeln("s", s)
	if err := e.Eval(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Batches; got != 2 {
		t.Errorf("batches = %d, want 2", got)
	}
	if out.String() != "s 8\n" {
		t.Errorf("output = %q, want %q", out.String(), "s 8\n")
	}

	// Temp spanning a forced split: written in batch 1, read in batch 2.
	e2 := NewEngine(Options{Level: core.C2, MaxBatchOps: 1})
	tmp := e2.Temp("t", r)
	b := e2.Array("b", r)
	tmp.Assign(nil, Const(3))
	b.Assign(nil, Mul(tmp, Const(2)))
	if err := e2.Eval(); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats().Batches; got != 2 {
		t.Errorf("forced split batches = %d, want 2", got)
	}
	v, err := b.Value(1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("b[1] = %g, want 6 (temp value lost across batch split?)", v)
	}
}

// TestTempContracted checks the paper's payoff is visible through the
// library: a Temp confined to one batch is storage-eliminated at a
// contracting level, and the remark stream says so.
func TestTempContracted(t *testing.T) {
	e := NewEngine(Options{Level: core.C2})
	r := R(1, 16, 1, 16)
	a := e.Array("a", r)
	b := e.Array("b", r)
	tmp := e.Temp("t", r)
	a.Assign(nil, Index(1))
	tmp.Assign(nil, Mul(a, Const(2)))
	b.Assign(nil, Add(tmp, Const(1)))
	if err := e.Eval(); err != nil {
		t.Fatal(err)
	}
	contracted := false
	for _, rm := range e.Remarks() {
		if rm.Kind == remark.Contracted {
			contracted = true
		}
	}
	if !contracted {
		t.Errorf("no contracted remark at C2; remarks = %v", e.Remarks())
	}
	v, err := b.Value(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("b[3,5] = %g, want 7", v)
	}
}

// TestTempReadBeforeWrite checks the Temp contract: reading a Temp
// that nothing wrote this Eval is a deferred error, not a silent zero.
func TestTempReadBeforeWrite(t *testing.T) {
	e := NewEngine(Options{})
	r := R(1, 4)
	tmp := e.Temp("t", r)
	a := e.Array("a", r)
	a.Assign(nil, tmp)
	err := e.Eval()
	if err == nil || !strings.Contains(err.Error(), "read before any write") {
		t.Fatalf("err = %v, want temp read-before-write", err)
	}
}

// TestSetValuesRoundTrip checks the host-state sync points: seeded
// values feed the next batch, and results read back.
func TestSetValuesRoundTrip(t *testing.T) {
	e := NewEngine(Options{Level: core.C2F4S})
	r := R(1, 2, 1, 2)
	a := e.Array("a", r)
	s := e.Scalar("s", 0)
	if err := a.SetValues([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(10); err != nil {
		t.Fatal(err)
	}
	a.Assign(nil, Add(a, s))
	s.Sum(r, a)
	got, err := s.Value()
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("sum = %g, want 50", got)
	}
	vals, err := a.Values()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 12, 13, 14}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("a[%d] = %g, want %g", i, vals[i], want[i])
		}
	}
}

// TestErrorPaths sweeps the deferred-error surface: each abuse turns
// into a sticky error surfaced at the next sync point.
func TestErrorPaths(t *testing.T) {
	r := R(1, 4)
	cases := []struct {
		name string
		msg  string
		do   func(e *Engine)
	}{
		{"foreign handle", "different engine", func(e *Engine) {
			other := NewEngine(Options{})
			x := other.Array("x", r)
			e.Array("a", r).Assign(nil, x)
		}},
		{"rank mismatch", "rank", func(e *Engine) {
			a := e.Array("a", R(1, 4, 1, 4))
			b := e.Array("b", r)
			a.Assign(nil, b)
		}},
		{"region outside declared", "outside", func(e *Engine) {
			e.Array("a", r).Assign(R(0, 5), Const(1))
		}},
		{"unknown builtin", "unknown builtin", func(e *Engine) {
			a := e.Array("a", r)
			a.Assign(nil, Call("bogus", a))
		}},
		{"builtin arity", "argument", func(e *Engine) {
			a := e.Array("a", r)
			a.Assign(nil, Call("sqrt", a, a))
		}},
		{"array in writeln", "scalar context", func(e *Engine) {
			a := e.Array("a", r)
			e.Writeln("a =", a)
		}},
		{"writeln bad type", "unsupported type", func(e *Engine) {
			e.Writeln(struct{}{})
		}},
		{"offset arity", "components", func(e *Engine) {
			a := e.Array("a", r)
			a.Assign(nil, a.At(1, 2))
		}},
		{"nil array region", "region of rank", func(e *Engine) {
			e.Array("a", nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(Options{})
			tc.do(e)
			err := e.Eval()
			if err == nil || !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("err = %v, want substring %q", err, tc.msg)
			}
			if e.Err() == nil {
				t.Fatal("error not sticky")
			}
			// Recording after the error is a silent no-op, not a panic.
			e.Scalar("s", 0).Sum(r, Const(1))
			if err2 := e.Eval(); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("second Eval = %v, want the original error back", err2)
			}
		})
	}
}

// TestTempValuesRejected checks the observability contract of Temps.
func TestTempValuesRejected(t *testing.T) {
	e := NewEngine(Options{})
	tmp := e.Temp("t", R(1, 4))
	if _, err := tmp.Values(); err == nil {
		t.Error("Values on a temp succeeded")
	}
	if err := tmp.SetValues(make([]float64, 4)); err == nil {
		t.Error("SetValues on a temp succeeded")
	}
	if _, err := tmp.Value(1); err == nil {
		t.Error("Value on a temp succeeded")
	}
}

// TestRPanics pins R's programming-error contract.
func TestRPanics(t *testing.T) {
	for _, bounds := range [][]int{{}, {1}, {1, 2, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%v) did not panic", bounds)
				}
			}()
			R(bounds...)
		}()
	}
}

// TestWritelnOrderAcrossStatements checks the IO chain survives
// canonicalization: writelns interleaved with computation print in
// issue order.
func TestWritelnOrderAcrossStatements(t *testing.T) {
	var out bytes.Buffer
	e := NewEngine(Options{Level: core.C2F4S, Out: &out})
	r := R(1, 3)
	a := e.Array("a", r)
	s := e.Scalar("s", 0)
	a.Assign(nil, Const(1))
	s.Sum(r, a)
	e.Writeln("first", s)
	a.Assign(nil, Const(2))
	s.Sum(r, a)
	e.Writeln("second", s)
	if err := e.Eval(); err != nil {
		t.Fatal(err)
	}
	want := "first 3\nsecond 6\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}
