package lazy

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/backend"
	"repro/internal/ccache"
	"repro/internal/driver"
	"repro/internal/gogen"
	"repro/internal/lir"
	"repro/internal/sema"
	"repro/internal/vm"
)

// runBatch compiles (or cache-hits) one canonical batch and executes
// it with the engine's handle state bound to the canonical names.
func (e *Engine) runBatch(ctx context.Context, cb *canonBatch) error {
	dopt := e.driverOptions()
	key := ccache.KeyOfKind(cb.text, dopt, ccache.ArtifactLazy)
	native := dopt.Backend.Native()
	if native && e.store == nil {
		st, err := backend.Open(e.opt.ArtifactDir)
		if err != nil {
			return err
		}
		e.store = st
	}

	entry, _, err := e.cache.GetOrCompute(key, func() (*ccache.Entry, error) {
		// Build a fresh program: CompileAIR rewrites it in place, so the
		// instance rendered for the fingerprint is never handed over.
		prog, err := cb.build()
		if err != nil {
			return nil, err
		}
		comp, err := driver.CompileAIR(ctx, prog, dopt)
		if err != nil {
			return nil, err
		}
		ent := &ccache.Entry{Key: key, Kind: ccache.ArtifactLazy, Source: cb.text, Comp: comp}
		if native {
			goSrc, err := gogen.EmitState(comp.LIR, comp.Bounds, stateSpec(comp.LIR))
			if err != nil {
				return nil, err
			}
			art, err := e.store.Build(ctx, goSrc)
			if err != nil {
				return nil, err
			}
			ent.GoSrc, ent.Bin, ent.BinKey = goSrc, art.Bin, art.Key
		}
		return ent, nil
	})
	if err != nil {
		return err
	}
	if entry.Comp.Plan != nil {
		e.remarks = append(e.remarks, entry.Comp.Plan.Remarks...)
	}
	if native {
		return e.runNative(ctx, cb, entry)
	}
	return e.runVM(ctx, cb, entry.Comp)
}

// stateSpec lists every allocated (non-contracted) array and every
// scalar of the compiled batch, in sorted name order — the layout both
// the emitted binary and the engine's state marshaling follow. It is
// recomputed from the cached compilation on hits, deterministically.
func stateSpec(p *lir.Program) *gogen.StateSpec {
	spec := &gogen.StateSpec{}
	for n, a := range p.Source.Arrays {
		if !a.Contracted {
			spec.Arrays = append(spec.Arrays, n)
		}
	}
	sort.Strings(spec.Arrays)
	for n := range p.Source.Scalars {
		spec.Scalars = append(spec.Scalars, n)
	}
	sort.Strings(spec.Scalars)
	return spec
}

// stateOf returns the storage backing a handle for this Eval: the
// persistent host data for arrays, a transient per-Eval buffer for
// Temps that span batches.
func (e *Engine) stateOf(h *Handle) []float64 {
	if !h.temp {
		return h.hostData()
	}
	buf := e.tempState[h]
	if buf == nil {
		buf = make([]float64, h.region.Size())
		e.tempState[h] = buf
	}
	return buf
}

// copyRect copies the declared-region rectangle between a handle's
// host storage (row-major over decl) and an allocation slab (row-major
// over alloc, which contains decl). in=true seeds the slab from host;
// in=false reads the slab back. Halo cells outside decl are left
// untouched in the slab and never reach host storage — they are
// per-execution scratch, zero at entry like any uninitialized storage.
func copyRect(slab []float64, alloc, decl *sema.Region, host []float64, in bool) {
	rank := alloc.Rank()
	strides := make([]int, rank)
	s := 1
	for k := rank - 1; k >= 0; k-- {
		strides[k] = s
		s *= alloc.Extent(k)
	}
	idx := make([]int, rank)
	copy(idx, decl.Lo)
	row := decl.Extent(rank - 1)
	hostPos := 0
	for {
		pos := 0
		for d := 0; d < rank; d++ {
			pos += (idx[d] - alloc.Lo[d]) * strides[d]
		}
		if in {
			copy(slab[pos:pos+row], host[hostPos:hostPos+row])
		} else {
			copy(host[hostPos:hostPos+row], slab[pos:pos+row])
		}
		hostPos += row
		d := rank - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] <= decl.Hi[d] {
				break
			}
			idx[d] = decl.Lo[d]
		}
		if d < 0 {
			break
		}
	}
}

// runVM executes a compiled batch on the bytecode VM, seeding machine
// storage from the handles before Run and reading results back after.
func (e *Engine) runVM(ctx context.Context, cb *canonBatch, comp *driver.Compilation) error {
	m, err := vm.New(comp.LIR, vm.Options{Out: e.out, Ctx: ctx, Bounds: comp.Bounds})
	if err != nil {
		return err
	}
	for _, h := range cb.handles {
		name := cb.aname[h]
		info := comp.LIR.Source.Arrays[name]
		if info == nil || info.Contracted {
			continue
		}
		copyRect(m.ArrayData(name), info.Alloc, h.region, e.stateOf(h), true)
	}
	for _, s := range cb.scalars {
		m.SetScalar(cb.sname[s], s.val)
	}
	if _, err := m.Run(); err != nil {
		return err
	}
	for _, h := range cb.handles {
		name := cb.aname[h]
		info := comp.LIR.Source.Arrays[name]
		if info == nil || info.Contracted {
			continue
		}
		copyRect(m.ArrayData(name), info.Alloc, h.region, e.stateOf(h), false)
	}
	for _, s := range cb.scalars {
		if v, ok := m.Scalar(cb.sname[s]); ok {
			s.val = v
		}
	}
	return nil
}

// runNative executes a compiled batch's native artifact through the
// state-file protocol: marshal handle state in spec order, run the
// binary with StateInEnv/StateOutEnv pointing at per-execution files,
// unmarshal the dumped state back into the handles. The artifact is
// re-resolved through the store (a stat on the content address), so a
// wiped store directory degrades to a rebuild, never a stale binary.
func (e *Engine) runNative(ctx context.Context, cb *canonBatch, entry *ccache.Entry) error {
	comp := entry.Comp
	spec := stateSpec(comp.LIR)
	art, err := e.store.Build(ctx, entry.GoSrc)
	if err != nil {
		return err
	}

	revA := map[string]*Handle{}
	for h, n := range cb.aname {
		revA[n] = h
	}
	revS := map[string]*ScalarHandle{}
	for s, n := range cb.sname {
		revS[n] = s
	}

	total := 0
	for _, n := range spec.Arrays {
		total += comp.LIR.Source.Arrays[n].Alloc.Size()
	}
	total += len(spec.Scalars)
	buf := make([]byte, 8*total)
	off := 0
	for _, n := range spec.Arrays {
		info := comp.LIR.Source.Arrays[n]
		size := info.Alloc.Size()
		if h := revA[n]; h != nil {
			slab := make([]float64, size)
			copyRect(slab, info.Alloc, h.region, e.stateOf(h), true)
			for i, v := range slab {
				binary.LittleEndian.PutUint64(buf[off+8*i:], math.Float64bits(v))
			}
		}
		off += 8 * size
	}
	for _, n := range spec.Scalars {
		if s := revS[n]; s != nil {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s.val))
		}
		off += 8
	}

	dir, err := os.MkdirTemp("", "zpl-lazy-state")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	inPath := filepath.Join(dir, "in.state")
	outPath := filepath.Join(dir, "out.state")
	if err := os.WriteFile(inPath, buf, 0o644); err != nil {
		return err
	}
	if _, err := art.RunEnv(ctx, e.out, []string{
		gogen.StateInEnv + "=" + inPath,
		gogen.StateOutEnv + "=" + outPath,
	}); err != nil {
		return err
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		return fmt.Errorf("lazy: native run produced no state: %w", err)
	}
	if len(data) != 8*total {
		return fmt.Errorf("lazy: state file is %d bytes, want %d", len(data), 8*total)
	}
	off = 0
	for _, n := range spec.Arrays {
		info := comp.LIR.Source.Arrays[n]
		size := info.Alloc.Size()
		if h := revA[n]; h != nil {
			slab := make([]float64, size)
			for i := range slab {
				slab[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
			}
			copyRect(slab, info.Alloc, h.region, e.stateOf(h), false)
		}
		off += 8 * size
	}
	for _, n := range spec.Scalars {
		if s := revS[n]; s != nil {
			s.val = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		}
		off += 8
	}
	return nil
}
