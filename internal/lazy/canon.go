package lazy

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/air"
	"repro/internal/ast"
	"repro/internal/sema"
)

// canonBatch is one batch after canonicalization: a dependence-valid
// statement order with every handle renamed to a canonical name. Two
// batches with the same canonical text are the same program modulo
// handle identity — the property that makes a double-buffer swap
// (new := f(old) this step, old := f(new) the next) hit the same cache
// entry with only the name binding flipped.
type canonBatch struct {
	order   []*op
	aname   map[*Handle]string
	sname   map[*ScalarHandle]string
	handles []*Handle       // in canonical-name order: handles[i] is v<i>
	scalars []*ScalarHandle // scalars[i] is s<i>
	escapes map[*Handle]bool
	text    string
}

// access is one op's read/write footprint.
type access struct {
	areads map[*Handle]bool
	awrite *Handle
	sreads map[*ScalarHandle]bool
	swrite *ScalarHandle
	io     bool
}

func accessOf(o *op) access {
	a := access{areads: map[*Handle]bool{}, sreads: map[*ScalarHandle]bool{}}
	if o.rhs != nil {
		exprReads(o.rhs, a.areads, a.sreads)
	}
	for _, w := range o.wargs {
		if !w.isStr {
			exprReads(w.e, a.areads, a.sreads)
		}
	}
	switch o.kind {
	case opAssign:
		a.awrite = o.target
	case opReduce:
		a.swrite = o.starget
	case opWriteln:
		a.io = true
	}
	return a
}

// conflicts reports whether the earlier op i and the later op j must
// stay ordered: a RAW/WAR/WAW dependence through any array or scalar,
// or both performing I/O (output order is part of the semantics).
func conflicts(i, j access) bool {
	if i.awrite != nil && (j.areads[i.awrite] || j.awrite == i.awrite) {
		return true
	}
	if j.awrite != nil && i.areads[j.awrite] {
		return true
	}
	if i.swrite != nil && (j.sreads[i.swrite] || j.swrite == i.swrite) {
		return true
	}
	if j.swrite != nil && i.sreads[j.swrite] {
		return true
	}
	return i.io && j.io
}

// canonicalize orders a batch's ops topologically over the dependence
// DAG — tie-breaking by a structural key so the order is invariant
// under reissuing independent ops in a different sequence — and
// assigns canonical names by first appearance in the resulting
// statement order (right-hand side in pre-order, then the left-hand
// side). escapes lists the Temp handles later batches of the same Eval
// read; they must survive this batch.
func canonicalize(ops []*op, escapes map[*Handle]bool) (*canonBatch, error) {
	n := len(ops)
	acc := make([]access, n)
	for i, o := range ops {
		acc[i] = accessOf(o)
	}

	// srcA/srcS: the issue-order value source (last preceding writer)
	// of every operand, or -1 for state flowing in from outside the
	// batch. Dependence edges guarantee the source is scheduled before
	// its reader becomes ready, so reader keys can fold in source keys.
	srcA := make([]map[*Handle]int, n)
	srcS := make([]map[*ScalarHandle]int, n)
	lastA := map[*Handle]int{}
	lastS := map[*ScalarHandle]int{}
	for j := range ops {
		srcA[j] = map[*Handle]int{}
		srcS[j] = map[*ScalarHandle]int{}
		for h := range acc[j].areads {
			if w, ok := lastA[h]; ok {
				srcA[j][h] = w
			} else {
				srcA[j][h] = -1
			}
		}
		for s := range acc[j].sreads {
			if w, ok := lastS[s]; ok {
				srcS[j][s] = w
			} else {
				srcS[j][s] = -1
			}
		}
		if acc[j].awrite != nil {
			lastA[acc[j].awrite] = j
		}
		if acc[j].swrite != nil {
			lastS[acc[j].swrite] = j
		}
	}

	// Dependence edges (quadratic; batches are small).
	adj := make([][]int, n)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if conflicts(acc[i], acc[j]) {
				adj[i] = append(adj[i], j)
				indeg[j]++
			}
		}
	}

	// Kahn's algorithm; among ready ops pick the smallest structural
	// key, then the smallest issue index. The key folds in the keys of
	// the op's value sources, so structurally distinct computations
	// order deterministically no matter how they were issued; true
	// structural ties (symmetric ops over external state) fall back to
	// issue order, which still canonicalizes to the same text — only
	// the name binding differs.
	keys := make([]string, n)
	var ready []int
	push := func(j int) {
		keys[j] = opKey(ops[j], srcA[j], srcS[j], keys)
		ready = append(ready, j)
	}
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			push(j)
		}
	}
	cb := &canonBatch{
		aname:   map[*Handle]string{},
		sname:   map[*ScalarHandle]string{},
		escapes: escapes,
	}
	for len(ready) > 0 {
		best := 0
		for k := 1; k < len(ready); k++ {
			a, b := ready[k], ready[best]
			if keys[a] < keys[b] || (keys[a] == keys[b] && ops[a].seq < ops[b].seq) {
				best = k
			}
		}
		j := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		cb.order = append(cb.order, ops[j])
		for _, s := range adj[j] {
			indeg[s]--
			if indeg[s] == 0 {
				push(s)
			}
		}
	}
	if len(cb.order) != n {
		return nil, fmt.Errorf("lazy: internal: dependence graph has a cycle")
	}

	cb.rename()
	prog, err := cb.build()
	if err != nil {
		return nil, err
	}
	cb.text = renderProgram(prog)
	return cb, nil
}

// opKey is the structural hash used for topological tie-breaking:
// everything semantic about the op — kind, region, operator structure,
// constants — with operand references replaced by the key of their
// value source ("ext" for state entering the batch), never by handle
// identity.
func opKey(o *op, srcA map[*Handle]int, srcS map[*ScalarHandle]int, keys []string) string {
	h := sha256.New()
	put := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	refKey := func(x *Handle) string {
		if w := srcA[x]; w >= 0 {
			return keys[w]
		}
		return "ext:" + x.region.String() + ":" + strconv.FormatBool(x.temp)
	}
	srefKey := func(x *ScalarHandle) string {
		if w := srcS[x]; w >= 0 {
			return keys[w]
		}
		return "ext"
	}
	var putExpr func(e Expr)
	putExpr = func(e Expr) {
		switch x := e.(type) {
		case *refExpr:
			put("ref", fmt.Sprint(x.off), refKey(x.h))
		case *Handle:
			put("ref0", refKey(x))
		case *ScalarHandle:
			put("sref", srefKey(x))
		case *constExpr:
			put("const", strconv.FormatFloat(x.val, 'g', -1, 64))
		case *indexExpr:
			put("index", strconv.Itoa(x.dim))
		case *binExpr:
			put("bin", x.op.String())
			putExpr(x.x)
			putExpr(x.y)
		case *unExpr:
			put("un", x.op.String())
			putExpr(x.x)
		case *callExpr:
			put("call", x.name)
			for _, a := range x.args {
				putExpr(a)
			}
		}
	}
	switch o.kind {
	case opAssign:
		put("assign", o.region.String(), "tgt:"+strconv.FormatBool(o.target.temp))
		putExpr(o.rhs)
	case opReduce:
		put("reduce", o.rop.String(), o.region.String())
		putExpr(o.rhs)
	case opWriteln:
		put("writeln")
		for _, w := range o.wargs {
			if w.isStr {
				put("str", w.str)
			} else {
				put("expr")
				putExpr(w.e)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// rename assigns canonical names by first appearance in canonical
// statement order: within each op the right-hand side in pre-order,
// then the left-hand side.
func (cb *canonBatch) rename() {
	seeA := func(h *Handle) {
		if _, ok := cb.aname[h]; !ok {
			cb.aname[h] = "v" + strconv.Itoa(len(cb.handles))
			cb.handles = append(cb.handles, h)
		}
	}
	seeS := func(s *ScalarHandle) {
		if _, ok := cb.sname[s]; !ok {
			cb.sname[s] = "s" + strconv.Itoa(len(cb.scalars))
			cb.scalars = append(cb.scalars, s)
		}
	}
	seeExpr := func(e Expr) {
		walkExpr(e, func(x Expr) {
			switch n := x.(type) {
			case *refExpr:
				seeA(n.h)
			case *Handle:
				seeA(n)
			case *ScalarHandle:
				seeS(n)
			}
		})
	}
	for _, o := range cb.order {
		if o.rhs != nil {
			seeExpr(o.rhs)
		}
		for _, w := range o.wargs {
			if !w.isStr {
				seeExpr(w.e)
			}
		}
		switch o.kind {
		case opAssign:
			seeA(o.target)
		case opReduce:
			seeS(o.starget)
		}
	}
}

// build constructs the canonical AIR program for the batch. Each call
// returns a fresh instance: driver.CompileAIR rewrites the program in
// place, so the cached compilation and the fingerprint text must never
// share nodes.
func (cb *canonBatch) build() (*air.Program, error) {
	arrays := map[string]*air.ArrayInfo{}
	for i, h := range cb.handles {
		arrays["v"+strconv.Itoa(i)] = &air.ArrayInfo{
			Name:     "v" + strconv.Itoa(i),
			Elem:     ast.Double,
			Declared: cloneRegion(h.region),
			Alloc:    cloneRegion(h.region),
			Temp:     h.temp,
			Escapes:  !h.temp || cb.escapes[h],
		}
	}
	scalars := map[string]*air.ScalarInfo{}
	for i := range cb.scalars {
		scalars["s"+strconv.Itoa(i)] = &air.ScalarInfo{
			Name: "s" + strconv.Itoa(i),
			Type: ast.Double,
		}
	}

	aname := func(h *Handle) string { return cb.aname[h] }
	sname := func(s *ScalarHandle) string { return cb.sname[s] }

	var stmts []air.Stmt
	id := 0
	ntemp := 0
	for _, o := range cb.order {
		switch o.kind {
		case opAssign:
			rank := o.region.Rank()
			rhs := airExpr(o.rhs, rank, aname, sname)
			lhs := cb.aname[o.target]
			readsLHS := false
			for _, r := range air.Refs(rhs) {
				if r.Array == lhs {
					readsLHS = true
					break
				}
			}
			if readsLHS {
				// Normalize: no array is both read and written in one
				// statement. The temp carries the parallel-semantics
				// snapshot, exactly as source lowering would insert it.
				tmp := "_t" + strconv.Itoa(ntemp)
				ntemp++
				arrays[tmp] = &air.ArrayInfo{
					Name:     tmp,
					Elem:     ast.Double,
					Declared: cloneRegion(o.region),
					Alloc:    cloneRegion(o.region),
					Temp:     true,
				}
				stmts = append(stmts,
					&air.ArrayStmt{ID: id, Region: cloneRegion(o.region), LHS: tmp, RHS: rhs},
					&air.ArrayStmt{ID: id + 1, Region: cloneRegion(o.region), LHS: lhs,
						RHS: &air.RefExpr{Ref: air.Ref{Array: tmp, Off: air.Zero(rank)}}})
				id += 2
			} else {
				stmts = append(stmts, &air.ArrayStmt{ID: id, Region: cloneRegion(o.region), LHS: lhs, RHS: rhs})
				id++
			}
		case opReduce:
			stmts = append(stmts, &air.ReduceStmt{
				Target: cb.sname[o.starget],
				Op:     o.rop,
				Region: cloneRegion(o.region),
				Body:   airExpr(o.rhs, o.region.Rank(), aname, sname),
			})
		case opWriteln:
			args := make([]air.WriteArg, len(o.wargs))
			for i, w := range o.wargs {
				if w.isStr {
					args[i] = air.WriteArg{Str: w.str}
				} else {
					args[i] = air.WriteArg{Expr: airExpr(w.e, 0, aname, sname)}
				}
			}
			stmts = append(stmts, &air.WritelnStmt{Args: args})
		default:
			return nil, fmt.Errorf("lazy: internal: op kind %d in batch", o.kind)
		}
	}

	// Widen allocations to cover every access: writes at the statement
	// region, reads at the region shifted by their offset (same cover
	// rule as source lowering).
	widen := func(name string, r *sema.Region, off air.Offset) {
		a := arrays[name]
		for d := 0; d < r.Rank(); d++ {
			o := 0
			if off != nil {
				o = off[d]
			}
			if lo := r.Lo[d] + o; lo < a.Alloc.Lo[d] {
				a.Alloc.Lo[d] = lo
			}
			if hi := r.Hi[d] + o; hi > a.Alloc.Hi[d] {
				a.Alloc.Hi[d] = hi
			}
		}
	}
	for _, s := range stmts {
		switch x := s.(type) {
		case *air.ArrayStmt:
			widen(x.LHS, x.Region, nil)
			for _, r := range x.Reads() {
				widen(r.Array, x.Region, r.Off)
			}
		case *air.ReduceStmt:
			for _, r := range air.Refs(x.Body) {
				widen(r.Array, x.Region, r.Off)
			}
		}
	}

	main := &air.Proc{Name: "main", Body: []air.Node{&air.Block{ID: 0, Stmts: stmts}}}
	return &air.Program{
		Name:     "lazy",
		Arrays:   arrays,
		Scalars:  scalars,
		Procs:    map[string]*air.Proc{"main": main},
		Main:     main,
		NumStmts: id,
	}, nil
}

// renderProgram is the canonical text of a batch program: declarations
// in name order, then the statements in canonical order. This string —
// not any handle identity — is what the compilation cache addresses
// (ccache.ArtifactLazy), together with the compilation options.
func renderProgram(p *air.Program) string {
	var b strings.Builder
	b.WriteString("lazy batch v1\n")
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.Arrays[n]
		fmt.Fprintf(&b, "array %s %s temp=%t escapes=%t\n", a.Name, a.Declared, a.Temp, a.Escapes)
	}
	names = names[:0]
	for n := range p.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "scalar %s\n", n)
	}
	b.WriteString("begin\n")
	for _, blk := range p.AllBlocks() {
		for _, s := range blk.Stmts {
			b.WriteString("  ")
			b.WriteString(s.String())
			b.WriteString("\n")
		}
	}
	b.WriteString("end\n")
	return b.String()
}
