package lazy

import (
	"fmt"

	"repro/internal/air"
)

// Expr is a deferred element-wise expression over array handles,
// scalar handles, constants, and index values. Expressions are pure
// descriptions: building one performs no arithmetic and no allocation
// beyond the node itself; the engine compiles them when a sync point
// forces the pending DAG.
//
// *Handle and *ScalarHandle are themselves expressions (an array handle
// reads at offset zero), so most formulas read naturally:
//
//	lazy.Mul(A, lazy.Const(0.5))         // A * 0.5
//	lazy.Add(A.At(-1, 0), A.At(1, 0))    // A@north + A@south
type Expr interface{ lazyExpr() }

// refExpr reads an array handle at a constant offset from the
// statement's current index.
type refExpr struct {
	h   *Handle
	off []int
}

// constExpr is a numeric constant.
type constExpr struct{ val float64 }

// indexExpr evaluates to the current index along dimension dim
// (1-based), like ZPL's Index1..Index4 virtual arrays.
type indexExpr struct{ dim int }

// binExpr applies a binary operator element-wise.
type binExpr struct {
	op   air.Op
	x, y Expr
}

// unExpr applies a unary operator element-wise.
type unExpr struct {
	op air.Op
	x  Expr
}

// callExpr applies a builtin math function element-wise.
type callExpr struct {
	name string
	args []Expr
}

func (*refExpr) lazyExpr()      {}
func (*constExpr) lazyExpr()    {}
func (*indexExpr) lazyExpr()    {}
func (*binExpr) lazyExpr()      {}
func (*unExpr) lazyExpr()       {}
func (*callExpr) lazyExpr()     {}
func (*Handle) lazyExpr()       {}
func (*ScalarHandle) lazyExpr() {}

// Const is a numeric constant expression.
func Const(v float64) Expr { return &constExpr{v} }

// Index is the current iteration index along dimension dim (1-based):
// the value of the dim-th loop variable at each element.
func Index(dim int) Expr { return &indexExpr{dim} }

// Add is x + y.
func Add(x, y Expr) Expr { return &binExpr{air.OpAdd, x, y} }

// Sub is x - y.
func Sub(x, y Expr) Expr { return &binExpr{air.OpSub, x, y} }

// Mul is x * y.
func Mul(x, y Expr) Expr { return &binExpr{air.OpMul, x, y} }

// Div is x / y.
func Div(x, y Expr) Expr { return &binExpr{air.OpDiv, x, y} }

// Pow is x raised to y.
func Pow(x, y Expr) Expr { return &binExpr{air.OpPow, x, y} }

// Neg is -x.
func Neg(x Expr) Expr { return &unExpr{air.OpNeg, x} }

// Call applies a builtin math function element-wise. The names are
// the ZA builtins: sqrt, exp, log, sin, cos, tan, abs, floor, ceil,
// min, max, pow, mod, atan2, sign. Unknown names surface as a deferred
// error when the expression is used in a statement.
func Call(name string, args ...Expr) Expr { return &callExpr{name, args} }

// Sqrt is sqrt(x).
func Sqrt(x Expr) Expr { return Call("sqrt", x) }

// Abs is abs(x).
func Abs(x Expr) Expr { return Call("abs", x) }

// Min is the element-wise minimum of x and y.
func Min(x, y Expr) Expr { return Call("min", x, y) }

// Max is the element-wise maximum of x and y.
func Max(x, y Expr) Expr { return Call("max", x, y) }

// builtins are the callable function names, mirroring what the VM and
// the native emitter implement.
var builtins = map[string]int{
	"sqrt": 1, "exp": 1, "log": 1, "sin": 1, "cos": 1, "tan": 1,
	"abs": 1, "floor": 1, "ceil": 1, "sign": 1,
	"min": 2, "max": 2, "pow": 2, "mod": 2, "atan2": 2,
}

// walkExpr visits e and its subexpressions in pre-order.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *binExpr:
		walkExpr(x.x, fn)
		walkExpr(x.y, fn)
	case *unExpr:
		walkExpr(x.x, fn)
	case *callExpr:
		for _, a := range x.args {
			walkExpr(a, fn)
		}
	}
}

// exprReads collects the array handles and scalar handles e reads.
func exprReads(e Expr, arrays map[*Handle]bool, scalars map[*ScalarHandle]bool) {
	walkExpr(e, func(x Expr) {
		switch n := x.(type) {
		case *refExpr:
			arrays[n.h] = true
		case *Handle:
			arrays[n] = true
		case *ScalarHandle:
			scalars[n] = true
		}
	})
}

// checkExpr validates an expression against the engine and the
// statement's iteration rank: every handle belongs to eng, every array
// reference's offset and array rank match the iteration rank, index
// dimensions are in range, call names and arities are known. rank 0
// means scalar context (no array reads, no index expressions).
func checkExpr(e Expr, eng *Engine, rank int) error {
	var err error
	note := func(format string, args ...interface{}) {
		if err == nil {
			err = fmt.Errorf(format, args...)
		}
	}
	walkExpr(e, func(x Expr) {
		switch n := x.(type) {
		case nil:
			note("lazy: nil expression")
		case *refExpr:
			if n.h == nil || n.h.eng != eng {
				note("lazy: array handle from a different engine (or nil)")
				return
			}
			if rank == 0 {
				note("lazy: array %s read in scalar context", n.h.name)
				return
			}
			if n.h.region.Rank() != rank {
				note("lazy: array %s has rank %d, statement iterates rank %d",
					n.h.name, n.h.region.Rank(), rank)
			}
			if len(n.off) != rank {
				note("lazy: offset %v on %s has %d components, want %d",
					n.off, n.h.name, len(n.off), rank)
			}
		case *Handle:
			if n.eng != eng {
				note("lazy: array handle from a different engine")
				return
			}
			if rank == 0 {
				note("lazy: array %s read in scalar context", n.name)
				return
			}
			if n.region.Rank() != rank {
				note("lazy: array %s has rank %d, statement iterates rank %d",
					n.name, n.region.Rank(), rank)
			}
		case *ScalarHandle:
			if n.eng != eng {
				note("lazy: scalar handle from a different engine")
			}
		case *indexExpr:
			if rank == 0 {
				note("lazy: index%d in scalar context", n.dim)
			} else if n.dim < 1 || n.dim > rank {
				note("lazy: index%d out of range for rank %d", n.dim, rank)
			}
		case *callExpr:
			arity, ok := builtins[n.name]
			if !ok {
				note("lazy: unknown builtin %q", n.name)
			} else if len(n.args) != arity {
				note("lazy: %s takes %d argument(s), got %d", n.name, arity, len(n.args))
			}
		}
	})
	return err
}

// airExpr converts a lazy expression to AIR using the batch's
// canonical names. Offsets are cloned; a bare handle reads at the zero
// offset of the statement's rank.
func airExpr(e Expr, rank int, aname func(*Handle) string, sname func(*ScalarHandle) string) air.Expr {
	switch x := e.(type) {
	case *refExpr:
		off := make(air.Offset, rank)
		copy(off, x.off)
		return &air.RefExpr{Ref: air.Ref{Array: aname(x.h), Off: off}}
	case *Handle:
		return &air.RefExpr{Ref: air.Ref{Array: aname(x), Off: air.Zero(rank)}}
	case *ScalarHandle:
		return &air.ScalarExpr{Name: sname(x)}
	case *constExpr:
		return &air.ConstExpr{Val: x.val}
	case *indexExpr:
		return &air.IndexExpr{Dim: x.dim}
	case *binExpr:
		return &air.BinExpr{Op: x.op,
			X: airExpr(x.x, rank, aname, sname),
			Y: airExpr(x.y, rank, aname, sname)}
	case *unExpr:
		return &air.UnExpr{Op: x.op, X: airExpr(x.x, rank, aname, sname)}
	case *callExpr:
		args := make([]air.Expr, len(x.args))
		for i, a := range x.args {
			args[i] = airExpr(a, rank, aname, sname)
		}
		return &air.CallExpr{Name: x.name, Args: args}
	}
	return &air.ConstExpr{}
}
