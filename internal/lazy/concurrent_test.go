package lazy

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentEval hammers one shared engine from many goroutines:
// each owns its handles and interleaves recording, sync points, and
// read-backs with every other goroutine. The engine-level mutex must
// make each operation atomic — a racing Eval may force another
// goroutine's pending assignments, but never observe half of one — so
// every goroutine's own handles still evolve exactly as if it ran
// alone. Run under -race this is the lazy arm of the race-smoke CI
// target.
func TestConcurrentEval(t *testing.T) {
	const (
		workers = 8
		iters   = 20
		n       = 16
	)
	eng := NewEngine(Options{Level: core.C2F3})

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := eng.Array("", R(1, n))
			s := eng.Scalar("", 0)
			for i := 0; i < iters; i++ {
				a.Assign(nil, Add(a, Const(1)))
				if i%5 == 4 {
					s.Sum(R(1, n), a)
					if err := eng.Eval(); err != nil {
						errs[g] = err
						return
					}
				}
				if i%7 == 3 {
					// Read-backs are sync points of their own.
					if _, err := a.Value(1); err != nil {
						errs[g] = err
						return
					}
				}
				// Lock-only observers race with the evals above.
				_ = eng.Stats()
				_ = eng.CacheStats()
				_ = eng.Err()
			}
			vals, err := a.Values()
			if err != nil {
				errs[g] = err
				return
			}
			for i, v := range vals {
				if v != iters {
					t.Errorf("worker %d: element %d is %g after %d increments", g, i, v, iters)
					return
				}
			}
			sv, err := s.Value()
			if err != nil {
				errs[g] = err
				return
			}
			// The last Sum ran at iteration index 19 (i%5==4), when the
			// array held 20 everywhere.
			if want := float64(n * iters); sv != want {
				t.Errorf("worker %d: sum is %g, want %g", g, sv, want)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", g, err)
		}
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentEvalCtx cancels a context mid-stream while other
// goroutines keep evaluating: cancellation must surface as that
// caller's error without corrupting the engine for anyone else (the
// sticky-error contract is per-engine, so a cancelled Eval poisons it —
// this test therefore uses its own engine per arm and only asserts the
// cancelled arm fails cleanly).
func TestConcurrentEvalCtx(t *testing.T) {
	eng := NewEngine(Options{Level: core.C2F3})
	a := eng.Array("", R(1, 64))
	a.Assign(nil, Const(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.EvalCtx(ctx); err == nil {
		t.Fatal("EvalCtx with a cancelled context succeeded")
	}
	if eng.Err() == nil {
		t.Fatal("cancellation did not stick as the engine error")
	}
}
