// Package lazy is the deferred-evaluation array runtime behind the
// public package zpl: callers allocate array and scalar handles, issue
// element-wise assignments, reductions, and writelns, and nothing
// executes until a sync point (Eval, or reading a value back) forces
// the pending operation DAG.
//
// At a sync point the engine partitions the pending operations into
// batches, canonicalizes each batch — dependence-respecting
// topological order with structural tie-breaking, then renaming of
// handles to v0,v1,... and scalars to s0,s1,... by first appearance —
// and compiles the canonical AIR program through the existing
// pipeline (driver.CompileAIR: fusion, contraction, scalarization,
// bounds proving). The canonical text is the batch's content address
// in the compilation cache (ccache.ArtifactLazy), so a fingerprint
// that has been seen before — the steady state of an iterative solver,
// including double-buffer handle swaps, which rename to the same
// canonical program — reuses the compiled artifact without running a
// single compiler phase. Handle state is bound to canonical names per
// execution: the VM path seeds machine storage directly, the native
// path speaks gogen's state-file protocol.
//
// Arrays observable through a handle are marked air.ArrayInfo.Escapes,
// which keeps the contraction phase from eliminating storage the
// caller can read back; Temp handles make the opposite promise (no
// readback between Evals) and are therefore contraction candidates —
// the whole point of issuing a multi-statement formula lazily.
//
// Engines are safe for concurrent use: every public operation —
// recording, sync points, read-backs — holds an engine-level mutex, so
// concurrent operations are serialized atomically (a read-back observes
// either all or none of another goroutine's pending recordings, and
// exactly one of two racing Evals compiles the pending DAG). The
// *order* in which unsynchronized goroutines record is, as always,
// theirs to define; callers wanting a deterministic program order must
// still coordinate who records first.
package lazy

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/air"
	"repro/internal/backend"
	"repro/internal/ccache"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/remark"
	"repro/internal/sema"
)

// Options configures an Engine.
type Options struct {
	// Level is the fusion/contraction ladder level batches compile at;
	// the zero value is core.Baseline (compile every statement as its
	// own loop nest). Iterative workloads want core.C2F4S.
	Level core.Level
	// Backend selects the execution engine: driver.BackendVM (default)
	// interprets batches, driver.BackendGo builds native binaries in a
	// content-addressed artifact store.
	Backend driver.Backend
	// Out receives writeln output; nil discards it.
	Out io.Writer
	// CacheBytes bounds the compilation cache; <= 0 is unbounded.
	CacheBytes int64
	// ArtifactDir overrides the native artifact store location
	// (BackendGo only); "" uses backend.DefaultDir.
	ArtifactDir string
	// MaxBatchOps splits a sync point's pending operations into
	// batches of at most this many operations; <= 0 batches the whole
	// DAG together (barriers still split).
	MaxBatchOps int
	// Check runs the static AIR/plan verifier on every compiled batch.
	Check bool
	// ScalarReplace enables scalar replacement in generated nests.
	ScalarReplace bool
	// NoProve disables the bounds prover (keeps every runtime check).
	NoProve bool
}

// Stats counts an engine's activity. Compilation-cache behavior is
// reported separately by CacheStats.
type Stats struct {
	Evals   int64 // sync points that found pending work
	Batches int64 // batches executed (>= Evals)
	Ops     int64 // operations recorded
}

// Engine owns handles, the pending operation list, the compilation
// cache, and (for the native backend) the artifact store.
type Engine struct {
	// mu serializes every public operation; see the package comment.
	mu sync.Mutex

	opt   Options
	out   io.Writer
	cache *ccache.Cache
	store *backend.Store

	nextArray  int
	nextScalar int
	seq        int
	pending    []*op
	err        error

	// tempState holds the transient storage of Temp handles that span
	// batches within one Eval; cleared when the Eval finishes.
	tempState map[*Handle][]float64

	remarks []remark.Remark
	stats   Stats
}

// NewEngine creates an engine. A native-backend engine opens its
// artifact store lazily at the first Eval, so constructing one on a
// host without a toolchain is not itself an error.
func NewEngine(opt Options) *Engine {
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	return &Engine{
		opt:       opt,
		out:       out,
		cache:     ccache.New(opt.CacheBytes),
		tempState: map[*Handle][]float64{},
	}
}

// fail records the first deferred error; later recordings are no-ops.
func (e *Engine) fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
		e.pending = nil
	}
}

// Err returns the engine's sticky deferred error, if any. Recording
// after an error is a no-op; Eval and every read-back surface it.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// R builds an inline region literal from lo,hi bound pairs:
// R(1, n) is [1..n], R(1, n, 1, m) is [1..n, 1..m]. It panics on a
// malformed bounds list — a programming error, like a bad slice index.
func R(bounds ...int) *sema.Region {
	if len(bounds) == 0 || len(bounds)%2 != 0 {
		panic(fmt.Sprintf("lazy.R: %d bounds, want lo,hi pairs", len(bounds)))
	}
	rank := len(bounds) / 2
	if rank > sema.MaxRank {
		panic(fmt.Sprintf("lazy.R: rank %d exceeds max %d", rank, sema.MaxRank))
	}
	r := &sema.Region{Lo: make([]int, rank), Hi: make([]int, rank)}
	for i := 0; i < rank; i++ {
		r.Lo[i], r.Hi[i] = bounds[2*i], bounds[2*i+1]
		if r.Lo[i] > r.Hi[i] {
			panic(fmt.Sprintf("lazy.R: empty dimension %d..%d", r.Lo[i], r.Hi[i]))
		}
	}
	return r
}

// cloneRegion copies a region without its name, so canonical programs
// never embed caller-chosen region names.
func cloneRegion(r *sema.Region) *sema.Region {
	c := &sema.Region{Lo: make([]int, r.Rank()), Hi: make([]int, r.Rank())}
	copy(c.Lo, r.Lo)
	copy(c.Hi, r.Hi)
	return c
}

// regionWithin reports whether inner is contained in outer.
func regionWithin(inner, outer *sema.Region) bool {
	if inner.Rank() != outer.Rank() {
		return false
	}
	for i := range inner.Lo {
		if inner.Lo[i] < outer.Lo[i] || inner.Hi[i] > outer.Hi[i] {
			return false
		}
	}
	return true
}

// Handle is a deferred array: a declared region plus (for non-Temp
// handles) host-side storage holding the array's value between Evals,
// row-major over the declared region.
type Handle struct {
	eng    *Engine
	name   string
	region *sema.Region
	temp   bool
	data   []float64
}

// Array allocates an array handle over region r, initially zero. The
// name is for diagnostics only; it never reaches a fingerprint. The
// array's final value is always observable through the handle, so it
// is live at every Eval's exit and never a contraction candidate.
func (e *Engine) Array(name string, r *sema.Region) *Handle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.newHandle(name, r, false)
}

// Temp allocates a discardable intermediate: its value is not
// observable between Evals (Values on it is an error), which is the
// promise that lets the contraction phase eliminate its storage
// entirely. A Temp read before it is written within one Eval is a
// deferred error — there is no prior value to read.
func (e *Engine) Temp(name string, r *sema.Region) *Handle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.newHandle(name, r, true)
}

func (e *Engine) newHandle(name string, r *sema.Region, temp bool) *Handle {
	if e.err != nil {
		return &Handle{eng: e, name: name, region: R(1, 1), temp: temp}
	}
	if r == nil || r.Rank() == 0 || r.Rank() > sema.MaxRank {
		e.fail(fmt.Errorf("lazy: array %q needs a region of rank 1..%d", name, sema.MaxRank))
		return &Handle{eng: e, name: name, region: R(1, 1), temp: temp}
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			e.fail(fmt.Errorf("lazy: array %q has empty dimension %d..%d", name, r.Lo[i], r.Hi[i]))
			return &Handle{eng: e, name: name, region: R(1, 1), temp: temp}
		}
	}
	if name == "" {
		name = fmt.Sprintf("a%d", e.nextArray)
	}
	e.nextArray++
	return &Handle{eng: e, name: name, region: cloneRegion(r), temp: temp}
}

// Name returns the handle's diagnostic name.
func (h *Handle) Name() string { return h.name }

// Region returns a copy of the handle's declared region.
func (h *Handle) Region() *sema.Region { return cloneRegion(h.region) }

// At reads the array at a constant offset from the statement's current
// index — the lazy spelling of ZPL's A@direction.
func (h *Handle) At(off ...int) Expr {
	o := make([]int, len(off))
	copy(o, off)
	return &refExpr{h: h, off: o}
}

// hostData returns (allocating on demand) the handle's between-Evals
// storage. Temp handles have none; callers guard.
func (h *Handle) hostData() []float64 {
	if h.data == nil {
		h.data = make([]float64, h.region.Size())
	}
	return h.data
}

// ScalarHandle is a deferred scalar; its host value persists between
// Evals and seeds every batch that reads it.
type ScalarHandle struct {
	eng  *Engine
	name string
	val  float64
}

// Scalar allocates a scalar handle with an initial value.
func (e *Engine) Scalar(name string, init float64) *ScalarHandle {
	e.mu.Lock()
	defer e.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("x%d", e.nextScalar)
	}
	e.nextScalar++
	return &ScalarHandle{eng: e, name: name, val: init}
}

// Name returns the scalar's diagnostic name.
func (s *ScalarHandle) Name() string { return s.name }

// ---------------------------------------------------------------------------
// Operation recording

type opKind int

const (
	opAssign opKind = iota
	opReduce
	opWriteln
	opBarrier
)

// warg is one writeln argument: a string literal or a scalar expression.
type warg struct {
	str   string
	e     Expr
	isStr bool
}

// op is one recorded deferred operation.
type op struct {
	kind    opKind
	seq     int
	target  *Handle      // opAssign
	region  *sema.Region // opAssign/opReduce iteration region
	rhs     Expr         // opAssign/opReduce
	starget *ScalarHandle
	rop     air.ReduceOp
	wargs   []warg
}

// Assign records [r] h := rhs: every element of r gets the expression
// evaluated at its index, reads seeing the pre-statement values
// (parallel array-statement semantics, exactly ZA's). r == nil assigns
// the handle's whole declared region; otherwise r must lie within it —
// elements outside the declared region are not observable through the
// handle, so writing them would be silent data loss.
func (h *Handle) Assign(r *sema.Region, rhs Expr) {
	e := h.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if r == nil {
		r = h.region
	}
	if !regionWithin(r, h.region) {
		e.fail(fmt.Errorf("lazy: assign region %s outside %s's declared region %s",
			r, h.name, h.region))
		return
	}
	if err := checkExpr(rhs, e, r.Rank()); err != nil {
		e.fail(fmt.Errorf("%w (assigning %s)", err, h.name))
		return
	}
	e.record(&op{kind: opAssign, target: h, region: cloneRegion(r), rhs: rhs})
}

// Reduce records s := op<< [r] body: the reduction of the element-wise
// body over region r into the scalar.
func (s *ScalarHandle) Reduce(rop air.ReduceOp, r *sema.Region, body Expr) {
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if r == nil || r.Rank() == 0 {
		e.fail(fmt.Errorf("lazy: reduction into %s needs a region", s.name))
		return
	}
	if err := checkExpr(body, e, r.Rank()); err != nil {
		e.fail(fmt.Errorf("%w (reducing into %s)", err, s.name))
		return
	}
	e.record(&op{kind: opReduce, starget: s, rop: rop, region: cloneRegion(r), rhs: body})
}

// Sum records s := +<< [r] body.
func (s *ScalarHandle) Sum(r *sema.Region, body Expr) { s.Reduce(air.ReduceSum, r, body) }

// Prod records s := *<< [r] body.
func (s *ScalarHandle) Prod(r *sema.Region, body Expr) { s.Reduce(air.ReduceProd, r, body) }

// MaxOf records s := max<< [r] body.
func (s *ScalarHandle) MaxOf(r *sema.Region, body Expr) { s.Reduce(air.ReduceMax, r, body) }

// MinOf records s := min<< [r] body.
func (s *ScalarHandle) MinOf(r *sema.Region, body Expr) { s.Reduce(air.ReduceMin, r, body) }

// Writeln records a print of string literals and scalar expressions,
// in order, to the engine's Out — space-separated, %g-formatted,
// newline-terminated, byte-identical to ZA's writeln on either
// backend. Accepted arguments: string, *ScalarHandle, Expr without
// array reads, and numeric values (int, float64).
func (e *Engine) Writeln(args ...interface{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	ws := make([]warg, 0, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case string:
			ws = append(ws, warg{str: x, isStr: true})
		case int:
			ws = append(ws, warg{e: Const(float64(x))})
		case float64:
			ws = append(ws, warg{e: Const(x)})
		case Expr:
			if err := checkExpr(x, e, 0); err != nil {
				e.fail(fmt.Errorf("%w (writeln argument %d)", err, i+1))
				return
			}
			ws = append(ws, warg{e: x})
		default:
			e.fail(fmt.Errorf("lazy: writeln argument %d has unsupported type %T", i+1, a))
			return
		}
	}
	e.record(&op{kind: opWriteln, wargs: ws})
}

// Barrier forces a batch boundary at this point in the pending
// operations: operations before and after it never compile into one
// program. Mostly useful for carving measurement windows; fusion
// across the boundary is forgone.
func (e *Engine) Barrier() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	e.record(&op{kind: opBarrier})
}

func (e *Engine) record(o *op) {
	o.seq = e.seq
	e.seq++
	if o.kind != opBarrier {
		e.stats.Ops++
	}
	e.pending = append(e.pending, o)
}

// ---------------------------------------------------------------------------
// Sync points

// Eval forces every pending operation: the sync point at which the
// engine fuses, compiles (or cache-hits), and executes the deferred
// DAG. After a successful Eval all non-Temp handles and all scalars
// hold their updated values.
func (e *Engine) Eval() error { return e.EvalCtx(context.Background()) }

// EvalCtx is Eval with cancellation, consulted between pipeline phases
// and during execution.
func (e *Engine) EvalCtx(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evalLocked(ctx)
}

// evalLocked is the sync-point body; callers hold e.mu. Read-backs
// enter here directly so handle methods force pending work under the
// same critical section that copies the values out.
func (e *Engine) evalLocked(ctx context.Context) error {
	if e.err != nil {
		return e.err
	}
	if len(e.pending) == 0 {
		return nil
	}
	pending := e.pending
	e.pending = nil
	e.remarks = e.remarks[:0]
	defer func() {
		// Temp values never survive a sync point, successful or not.
		e.tempState = map[*Handle][]float64{}
	}()

	if err := validateTempReads(pending); err != nil {
		e.fail(err)
		return e.err
	}
	batches := partition(pending, e.opt.MaxBatchOps)
	e.stats.Evals++
	for i, b := range batches {
		cb, err := canonicalize(b, escapeSet(batches, i))
		if err != nil {
			e.fail(err)
			return e.err
		}
		if err := e.runBatch(ctx, cb); err != nil {
			e.fail(err)
			return e.err
		}
		e.stats.Batches++
	}
	return nil
}

// validateTempReads enforces the Temp contract in issue order: a Temp
// read must be preceded by a write to it within the same Eval, since
// Temps hold no value across sync points.
func validateTempReads(ops []*op) error {
	written := map[*Handle]bool{}
	for _, o := range ops {
		if o.rhs != nil {
			arrays := map[*Handle]bool{}
			exprReads(o.rhs, arrays, map[*ScalarHandle]bool{})
			for h := range arrays {
				if h.temp && !written[h] {
					return fmt.Errorf("lazy: temp %s read before any write in this eval (temps hold no value across sync points)", h.name)
				}
			}
		}
		for _, w := range o.wargs {
			if w.isStr {
				continue
			}
			arrays := map[*Handle]bool{}
			exprReads(w.e, arrays, map[*ScalarHandle]bool{})
			for h := range arrays {
				if h.temp && !written[h] {
					return fmt.Errorf("lazy: temp %s read before any write in this eval", h.name)
				}
			}
		}
		if o.kind == opAssign && o.target.temp {
			written[o.target] = true
		}
	}
	return nil
}

// partition splits the pending list into batches at barriers and, when
// maxOps > 0, after every maxOps operations. Batches preserve issue
// order; canonicalization reorders only within a batch.
func partition(ops []*op, maxOps int) [][]*op {
	var out [][]*op
	var cur []*op
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
	}
	for _, o := range ops {
		if o.kind == opBarrier {
			flush()
			continue
		}
		cur = append(cur, o)
		if maxOps > 0 && len(cur) >= maxOps {
			flush()
		}
	}
	flush()
	return out
}

// escapeSet computes, for batch i, the Temp handles whose value must
// survive the batch because a later batch of the same Eval reads them.
// Non-Temp handles always escape; Temps confined to one batch never
// do — they are the contraction candidates.
func escapeSet(batches [][]*op, i int) map[*Handle]bool {
	esc := map[*Handle]bool{}
	scalars := map[*ScalarHandle]bool{}
	for _, b := range batches[i+1:] {
		for _, o := range b {
			if o.rhs != nil {
				exprReads(o.rhs, esc, scalars)
			}
			for _, w := range o.wargs {
				if !w.isStr {
					exprReads(w.e, esc, scalars)
				}
			}
		}
	}
	return esc
}

// Values syncs and returns a copy of the handle's current contents,
// row-major over its declared region.
func (h *Handle) Values() ([]float64, error) {
	if h.temp {
		return nil, fmt.Errorf("lazy: temp %s holds no value between evals", h.name)
	}
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	if err := h.eng.evalLocked(context.Background()); err != nil {
		return nil, err
	}
	out := make([]float64, h.region.Size())
	copy(out, h.hostData())
	return out, nil
}

// SetValues syncs pending work (which may still read the old value)
// and then overwrites the handle's contents, row-major over its
// declared region.
func (h *Handle) SetValues(v []float64) error {
	if h.temp {
		return fmt.Errorf("lazy: temp %s holds no value between evals", h.name)
	}
	if len(v) != h.region.Size() {
		return fmt.Errorf("lazy: SetValues on %s: %d values, region %s holds %d",
			h.name, len(v), h.region, h.region.Size())
	}
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	if err := h.eng.evalLocked(context.Background()); err != nil {
		return err
	}
	copy(h.hostData(), v)
	return nil
}

// Value syncs and reads one element at a logical index.
func (h *Handle) Value(idx ...int) (float64, error) {
	if h.temp {
		return 0, fmt.Errorf("lazy: temp %s holds no value between evals", h.name)
	}
	if len(idx) != h.region.Rank() {
		return 0, fmt.Errorf("lazy: Value on %s: %d indices, rank %d", h.name, len(idx), h.region.Rank())
	}
	pos := 0
	for d, i := range idx {
		if i < h.region.Lo[d] || i > h.region.Hi[d] {
			return 0, fmt.Errorf("lazy: Value on %s: index %d out of %d..%d",
				h.name, i, h.region.Lo[d], h.region.Hi[d])
		}
		pos = pos*h.region.Extent(d) + (i - h.region.Lo[d])
	}
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	if err := h.eng.evalLocked(context.Background()); err != nil {
		return 0, err
	}
	return h.hostData()[pos], nil
}

// Value syncs and returns the scalar's current value.
func (s *ScalarHandle) Value() (float64, error) {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.evalLocked(context.Background()); err != nil {
		return 0, err
	}
	return s.val, nil
}

// Set syncs pending work (which may still read the old value) and then
// overwrites the scalar.
func (s *ScalarHandle) Set(v float64) error {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.evalLocked(context.Background()); err != nil {
		return err
	}
	s.val = v
	return nil
}

// ---------------------------------------------------------------------------
// Introspection

// CacheStats snapshots the engine's compilation-cache counters; the
// steady-state test asserts a second identical Eval adds hits and no
// misses. ccache.Stats.Sub diffs two snapshots.
func (e *Engine) CacheStats() ccache.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.Stats()
}

// Stats snapshots the engine's activity counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Remarks returns the optimization remarks of the most recent Eval's
// batches (fused/contracted and their negatives), in batch order.
// Positions are the zero Pos — lazy programs have no source text.
func (e *Engine) Remarks() []remark.Remark {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]remark.Remark, len(e.remarks))
	copy(out, e.remarks)
	return out
}

// ClearCache drops every cached compilation (and, for the native
// backend, the store handle — artifacts on disk remain). The
// fresh-compile-per-iteration experiment arm uses this.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = ccache.New(e.opt.CacheBytes)
}

// driverOptions is the compilation-affecting option set, the second
// fingerprint input besides the canonical text.
func (e *Engine) driverOptions() driver.Options {
	return driver.Options{
		Level:         e.opt.Level,
		ScalarReplace: e.opt.ScalarReplace,
		Check:         e.opt.Check,
		NoProve:       e.opt.NoProve,
		Backend:       e.opt.Backend,
	}
}
