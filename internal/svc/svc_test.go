package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tune"
)

func heatSource(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/heat.za")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, req Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestCompileCachesAndRunsBitIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := heatSource(t)

	var first RunResponse
	status, body := post(t, ts.URL+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("first run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	if !strings.Contains(first.Output, "heat =") {
		t.Errorf("run output missing: %q", first.Output)
	}
	if first.Steps == 0 || first.MemoryBytes == 0 {
		t.Errorf("run stats empty: %+v", first)
	}

	var second RunResponse
	status, body = post(t, ts.URL+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("second run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request missed the cache")
	}
	// Bit-identical output between the uncached and cached paths: the
	// artifact is shared, the execution deterministic.
	if first.Output != second.Output {
		t.Errorf("cached output diverged: %q vs %q", first.Output, second.Output)
	}
	if first.Key != second.Key {
		t.Errorf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if st := s.CacheStats(); st.Misses != 1 || st.Hits < 1 {
		t.Errorf("cache stats: %+v", st)
	}

	// emit_go is served from the same cached artifact.
	var cr CompileResponse
	status, body = post(t, ts.URL+"/compile", Request{Source: src, EmitGo: true})
	if status != http.StatusOK {
		t.Fatalf("compile: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Cached || !strings.Contains(cr.GoSource, "package main") {
		t.Errorf("emit_go from cache failed: cached=%t len=%d", cr.Cached, len(cr.GoSource))
	}
	if cr.Plan == "" || cr.NestCount == 0 {
		t.Errorf("plan metadata missing: %+v", cr)
	}
}

// TestStatusMapping drives every distinct error path to its distinct
// status code.
func TestStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 4096})

	check := func(name string, wantStatus int, wantKind string, req Request) {
		t.Helper()
		status, body := post(t, ts.URL+"/run", req)
		if status != wantStatus {
			t.Errorf("%s: HTTP %d, want %d (%s)", name, status, wantStatus, body)
			return
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Errorf("%s: bad error body %q", name, body)
			return
		}
		if er.Kind != wantKind {
			t.Errorf("%s: kind %q, want %q", name, er.Kind, wantKind)
		}
	}

	check("compile error", http.StatusUnprocessableEntity, "compile_error",
		Request{Source: "program junk; not a program"})
	check("runtime error", http.StatusInternalServerError, "runtime_error",
		Request{Bench: "fibro", Configs: map[string]int64{"n": 16}, MaxSteps: 10})
	check("timeout", http.StatusGatewayTimeout, "timeout",
		Request{Source: bigProgram(), TimeoutMS: 1})
	check("no source", http.StatusBadRequest, "bad_request", Request{})
	check("both sources", http.StatusBadRequest, "bad_request",
		Request{Source: "x", Bench: "fibro"})
	check("unknown bench", http.StatusBadRequest, "bad_request", Request{Bench: "bogus"})
	check("bad level", http.StatusBadRequest, "bad_request",
		Request{Bench: "fibro", Level: "O9"})
	check("dist without procs", http.StatusBadRequest, "bad_request",
		Request{Bench: "fibro", Dist: true})

	// Oversized body → 413.
	status, body := post(t, ts.URL+"/compile",
		Request{Source: "program p; " + strings.Repeat("-- pad\n", 4096)})
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d (%s)", status, body)
	}

	// Wrong method → 405; unknown JSON field → 400.
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/compile", "application/json",
		strings.NewReader(`{"sauce":"typo"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d", resp.StatusCode)
	}
}

// bigProgram is a run that cannot finish within a 1ms deadline.
func bigProgram() string {
	return `
program big;
config n : integer = 300;
config steps : integer = 500;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction up = (-1, 0);
var T : [R] double;
var L : [R] double;
var s : double;
proc main()
begin
  [R] T := 1.0;
  for k := 1 to steps do
    [I] L := T@up + T;
    [I] T := T + 0.1 * L;
    s := +<< [I] T;
  end;
  writeln(s);
end;
`
}

// TestTimeoutKeepsServing: a request with an expired deadline must not
// poison the server — the next request succeeds.
func TestTimeoutKeepsServing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/run", Request{Source: bigProgram(), TimeoutMS: 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timeout request: HTTP %d (%s)", status, body)
	}
	status, body = post(t, ts.URL+"/run", Request{Bench: "fibro", Configs: map[string]int64{"n": 16}})
	if status != http.StatusOK {
		t.Fatalf("request after timeout: HTTP %d (%s)", status, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after timeout: HTTP %d", resp.StatusCode)
	}
}

// TestSingleflightDedup: concurrent identical requests on a wide pool
// must collapse to one compile.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 64})
	src := heatSource(t)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := post(t, ts.URL+"/compile", Request{Source: src})
			if status != http.StatusOK {
				t.Errorf("HTTP %d: %s", status, body)
			}
		}()
	}
	wg.Wait()
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.DedupHits != 19 {
		t.Errorf("hits %d + dedup %d != 19", st.Hits, st.DedupHits)
	}
}

// TestQueueSheddingAndDrain: a saturated pool sheds load with 429;
// draining refuses work with 503.
func TestQueueSheddingAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[int]int{}
	record := func(status int) {
		mu.Lock()
		got[status]++
		mu.Unlock()
	}

	// Occupy the single worker with one multi-second run, so the
	// 2-ticket queue stays saturated for the whole burst below —
	// deterministically, whatever the goroutine scheduling.
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _ := post(t, ts.URL+"/run",
			Request{Source: bigProgram(), Configs: map[string]int64{"steps": 300}, TimeoutMS: 30000})
		record(status)
	}()
	// Wait until it is admitted past the queue to the worker.
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(time.Millisecond) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "zpld_inflight 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long run never reached the worker")
		}
	}

	// The burst: one request can take the remaining ticket and wait;
	// the rest find the queue full and must shed.
	for i := 0; i < 11; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := post(t, ts.URL+"/run",
				Request{Source: bigProgram(), Configs: map[string]int64{"steps": 2}, TimeoutMS: 30000})
			record(status)
		}()
	}
	wg.Wait()
	if got[http.StatusOK] == 0 {
		t.Errorf("no request succeeded under load: %v", got)
	}
	if got[http.StatusTooManyRequests] == 0 {
		t.Errorf("no request was shed at queue depth 1: %v", got)
	}
	if extra := len(got) - 2; extra > 0 {
		t.Errorf("unexpected statuses: %v", got)
	}

	s.SetDraining(true)
	status, body := post(t, ts.URL+"/compile", Request{Bench: "fibro"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining compile: HTTP %d (%s)", status, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: HTTP %d", resp.StatusCode)
	}
}

// TestMetricsExposition: counters and per-phase histograms appear in
// the Prometheus text format after traffic.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if status, body := post(t, ts.URL+"/run", Request{Bench: "fibro", Configs: map[string]int64{"n": 16}}); status != http.StatusOK {
			t.Fatalf("run %d: HTTP %d (%s)", i, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`zpld_requests_total{endpoint="/run",code="200"} 3`,
		"zpld_cache_hits_total 2",
		"zpld_cache_misses_total 1",
		`zpld_phase_seconds_count{phase="parse"} 1`,
		`zpld_phase_seconds_count{phase="fusion"}`,
		`zpld_phase_seconds_count{phase="run"} 3`,
		`zpld_request_seconds_count{endpoint="/run"} 3`,
		"zpld_cache_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	if !strings.Contains(text, `zpld_phase_seconds_bucket{phase="run",le="+Inf"} 3`) {
		t.Errorf("run histogram +Inf bucket wrong:\n%s", grepLines(text, `phase="run"`))
	}
}

func grepLines(text, needle string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, needle) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestRequestLog: the structured log emits one JSON line per request.
func TestRequestLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Logs: &buf})
	post(t, ts.URL+"/run", Request{Bench: "fibro", Configs: map[string]int64{"n": 16}})
	post(t, ts.URL+"/compile", Request{Source: "program junk; nope"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2: %q", len(lines), buf.String())
	}
	var entry struct {
		Endpoint string  `json:"endpoint"`
		Status   int     `json:"status"`
		Kind     string  `json:"kind"`
		Cache    string  `json:"cache"`
		MS       float64 `json:"ms"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, lines[0])
	}
	if entry.Endpoint != "/run" || entry.Status != 200 || entry.Cache != "miss" {
		t.Errorf("first log entry wrong: %+v", entry)
	}
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Status != 422 || entry.Kind != "compile_error" {
		t.Errorf("second log entry wrong: %+v", entry)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDistributedRun: /run with dist executes the distributed
// interpreter and matches the sequential transcript.
func TestDistributedRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var seq, dist RunResponse
	status, body := post(t, ts.URL+"/run", Request{Bench: "fibro", Configs: map[string]int64{"n": 16}})
	if status != http.StatusOK {
		t.Fatalf("sequential: HTTP %d (%s)", status, body)
	}
	json.Unmarshal(body, &seq)
	status, body = post(t, ts.URL+"/run",
		Request{Bench: "fibro", Configs: map[string]int64{"n": 16}, Procs: 4, Dist: true})
	if status != http.StatusOK {
		t.Fatalf("distributed: HTTP %d (%s)", status, body)
	}
	json.Unmarshal(body, &dist)
	if dist.Procs != 4 {
		t.Errorf("procs = %d, want 4", dist.Procs)
	}
	if !transcriptsClose(seq.Output, dist.Output) {
		t.Errorf("distributed output %q != sequential %q", dist.Output, seq.Output)
	}

	// The distributed reply carries the happens-before verdict census;
	// the sequential one has no schedule to analyze.
	if seq.Races != nil {
		t.Errorf("sequential reply has a race summary: %+v", seq.Races)
	}
	switch {
	case dist.Races == nil:
		t.Errorf("distributed reply lacks the race summary")
	case dist.Races.Ordered == 0 || dist.Races.Pairs == 0:
		t.Errorf("race summary proved nothing: %+v", dist.Races)
	case dist.Races.Race != 0 || dist.Races.Deadlocks != 0:
		t.Errorf("a racy schedule compiled: %+v", dist.Races)
	}

	// The fresh distributed compile recorded the verdict census metric.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(mb), `zpld_race_pairs_total{verdict="proven-ordered"}`) {
		t.Errorf("metrics lack zpld_race_pairs_total:\n%s", mb)
	}
}

// transcriptsClose mirrors the CLI test helper: token-wise comparison
// with a float tolerance (reductions reorder).
func transcriptsClose(a, b string) bool {
	ta, tb := strings.Fields(a), strings.Fields(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] == tb[i] {
			continue
		}
		var fa, fb float64
		if _, err := fmt.Sscanf(ta[i], "%g", &fa); err != nil {
			return false
		}
		if _, err := fmt.Sscanf(tb[i], "%g", &fb); err != nil {
			return false
		}
		diff := fa - fb
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if fa > scale {
			scale = fa
		}
		if diff > 1e-9*scale {
			return false
		}
	}
	return true
}

// TestServeListenerDrains: ServeListener exits cleanly on context
// cancellation and flips to draining.
func TestServeListenerDrains(t *testing.T) {
	s := New(Config{DrainTimeout: 2 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.ServeListener(ctx, l) }()

	url := "http://" + l.Addr().String()
	if status, _ := post(t, url+"/run", Request{Bench: "fibro", Configs: map[string]int64{"n": 16}}); status != http.StatusOK {
		t.Fatalf("pre-drain request: HTTP %d", status)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListener did not exit after cancel")
	}
}

func TestCompileLintAndRemarks(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := heatSource(t)

	// Plain compile: no lint or remarks payload unless requested.
	status, body := post(t, ts.URL+"/compile", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("compile: status %d: %s", status, body)
	}
	var bare CompileResponse
	if err := json.Unmarshal(body, &bare); err != nil {
		t.Fatal(err)
	}
	if bare.Lint != nil || bare.Remarks != nil {
		t.Errorf("unrequested lint/remarks in response: %+v", bare)
	}

	// Requested: the remarks explain the plan, the lint findings ride
	// along, and both land in /metrics.
	status, body = post(t, ts.URL+"/compile", Request{Source: src, Lint: true, Remarks: true})
	if status != http.StatusOK {
		t.Fatalf("compile with lint: status %d: %s", status, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Remarks) == 0 {
		t.Error("no remarks in response")
	}
	negatives := 0
	for _, r := range resp.Remarks {
		if r.Negative() {
			negatives++
			if r.Test == "" {
				t.Errorf("negative remark for %s names no failed test", r.Subject())
			}
		}
	}
	if negatives == 0 {
		t.Error("heat.za at the default level should have negative remarks")
	}

	metrics := s.Metrics().Render(s.CacheStats(), s.TuneCacheStats())
	if !strings.Contains(metrics, "zpld_remarks_total{kind=") {
		t.Errorf("metrics missing zpld_remarks_total:\n%s", metrics)
	}

	// Lint a program with findings so the lint counter appears too.
	warny := `
program warny;
config n : integer = 8;
region R = [1..n, 1..n];
var A, B, U : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 + index2;
  [R] B := A * 2.0;
  s := +<< [R] B;
  writeln("s =", s);
end;
`
	status, body = post(t, ts.URL+"/compile", Request{Source: warny, Lint: true})
	if status != http.StatusOK {
		t.Fatalf("compile warny: status %d: %s", status, body)
	}
	var wresp CompileResponse
	if err := json.Unmarshal(body, &wresp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range wresp.Lint {
		if f.Rule == "unused-array" {
			found = true
		}
	}
	if !found {
		t.Errorf("lint findings missing unused-array for U: %+v", wresp.Lint)
	}
	metrics = s.Metrics().Render(s.CacheStats(), s.TuneCacheStats())
	if !strings.Contains(metrics, `zpld_lint_findings_total{rule="unused-array"`) {
		t.Errorf("metrics missing zpld_lint_findings_total:\n%s", metrics)
	}
}

func postTune(t *testing.T, url string, req TuneRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestTuneEndpoint: /tune finds a plan no worse than the heuristic,
// caches the result by content address, and separates differently
// bounded searches into distinct entries.
func TestTuneEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := TuneRequest{Bench: "frac", Configs: map[string]int64{"n": 24}}

	status, body := postTune(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("first tune: HTTP %d: %s", status, body)
	}
	var first TuneResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Key == "" {
		t.Errorf("first tune: cached=%t key=%q", first.Cached, first.Key)
	}
	var res tune.Result
	if err := json.Unmarshal(first.Result, &res); err != nil {
		t.Fatalf("result payload not a tune.Result: %v", err)
	}
	if res.Spec == nil || res.TunedScore > res.HeuristicScore {
		t.Errorf("bad tuning result: spec=%v tuned=%.0f heuristic=%.0f",
			res.Spec, res.TunedScore, res.HeuristicScore)
	}

	// The identical request is a cache hit with an identical payload.
	status, body = postTune(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("second tune: HTTP %d: %s", status, body)
	}
	var second TuneResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Key != first.Key {
		t.Errorf("second tune: cached=%t key match=%t", second.Cached, second.Key == first.Key)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Error("cached tune payload diverged")
	}

	// Different search bounds address a different cache entry.
	bounded := req
	bounded.Beam = 2
	status, body = postTune(t, ts.URL, bounded)
	if status != http.StatusOK {
		t.Fatalf("bounded tune: HTTP %d: %s", status, body)
	}
	var third TuneResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.Key == first.Key {
		t.Errorf("bounded tune: cached=%t, key collides=%t", third.Cached, third.Key == first.Key)
	}

	st := s.TuneCacheStats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("tune cache stats: %+v", st)
	}
	// The compilation cache is untouched by /tune.
	if cst := s.CacheStats(); cst.Misses != 0 {
		t.Errorf("tune polluted the compilation cache: %+v", cst)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(mb)
	for _, want := range []string{
		"zpld_tune_requests_total 3",
		"zpld_tune_cache_hits_total 1",
		"zpld_tune_cache_misses_total 2",
		`zpld_phase_seconds_count{phase="tune"} 2`,
		`zpld_request_seconds_count{endpoint="/tune"} 3`,
		`zpld_requests_total{endpoint="/tune",code="200"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTuneStatusMapping drives /tune's error paths to the shared
// status scheme.
func TestTuneStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	check := func(name string, wantStatus int, wantKind string, req TuneRequest) {
		t.Helper()
		status, body := postTune(t, ts.URL, req)
		if status != wantStatus {
			t.Errorf("%s: HTTP %d, want %d (%s)", name, status, wantStatus, body)
			return
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Errorf("%s: bad error body %q", name, body)
			return
		}
		if er.Kind != wantKind {
			t.Errorf("%s: kind %q, want %q", name, er.Kind, wantKind)
		}
	}

	check("compile error", http.StatusUnprocessableEntity, "compile_error",
		TuneRequest{Source: "program junk; not a program"})
	check("no source", http.StatusBadRequest, "bad_request", TuneRequest{})
	check("both sources", http.StatusBadRequest, "bad_request",
		TuneRequest{Source: "x", Bench: "frac"})
	check("unknown bench", http.StatusBadRequest, "bad_request", TuneRequest{Bench: "bogus"})
	check("bad level", http.StatusBadRequest, "bad_request",
		TuneRequest{Bench: "frac", Level: "O9"})
	check("bad machine", http.StatusBadRequest, "bad_request",
		TuneRequest{Bench: "frac", Machine: "cray-3"})
	check("bad model", http.StatusBadRequest, "bad_request",
		TuneRequest{Bench: "frac", Model: "psychic"})
	check("measure distributed", http.StatusBadRequest, "bad_request",
		TuneRequest{Bench: "frac", Procs: 4, Measure: true})
	check("timeout", http.StatusGatewayTimeout, "timeout",
		TuneRequest{Bench: "sp", TimeoutMS: 1})

	// Wrong method → 405.
	resp, err := http.Get(ts.URL + "/tune")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /tune: HTTP %d", resp.StatusCode)
	}
}
