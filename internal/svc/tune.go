package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/ccache"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/programs"
	"repro/internal/tune"
)

// TuneRequest is the JSON body of /tune: the program selection and
// distribution fields of Request plus the search configuration of
// cmd/zpltune.
type TuneRequest struct {
	// Exactly one of Source and Bench selects the program.
	Source string `json:"source,omitempty"`
	Bench  string `json:"bench,omitempty"`

	Level    string           `json:"level,omitempty"` // comparison heuristic; default "c2+f4"
	Configs  map[string]int64 `json:"configs,omitempty"`
	Procs    int              `json:"procs,omitempty"`
	Strategy string           `json:"strategy,omitempty"` // favor-fusion | favor-comm

	Machine string `json:"machine,omitempty"` // t3e | sp2 | paragon | origin; default t3e
	Model   string `json:"model,omitempty"`   // cycle | cache; default cycle

	// Search bounds (0 = tune.SearchOptions defaults).
	Beam               int `json:"beam,omitempty"`
	ExhaustiveVertices int `json:"exhaustive_vertices,omitempty"`
	MaxStates          int `json:"max_states,omitempty"`

	// Measure runs the top-K candidates on the VM and picks the winner
	// by wall clock (sequential programs only).
	Measure bool `json:"measure,omitempty"`
	TopK    int  `json:"topk,omitempty"`

	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TuneResponse is the JSON reply of /tune. Result is the serialized
// tune.Result — spec, scores per ladder rung, per-block search stats,
// and (in measured mode) wall-clock times.
type TuneResponse struct {
	Key    string          `json:"key"`            // content address (hex SHA-256)
	Cached bool            `json:"cached"`         // served from the tuned-plan cache
	Dedup  bool            `json:"dedup"`          // joined an in-flight identical search
	Tier   string          `json:"tier,omitempty"` // serving tier (mem|disk|peer)
	Result json.RawMessage `json:"result"`
}

// resolveTune validates the request and builds the tuning options plus
// the keying inputs: the driver options carrying the cache-relevant
// compilation fields and the extra fingerprint for the search knobs
// the options struct does not carry.
func (s *Server) resolveTune(req *TuneRequest) (src string, topt tune.Options, dopt driver.Options, extra string, err error) {
	switch {
	case req.Source != "" && req.Bench != "":
		return "", topt, dopt, "", fmt.Errorf("pass source or bench, not both")
	case req.Bench != "":
		b, ok := programs.ByName(req.Bench)
		if !ok {
			return "", topt, dopt, "", fmt.Errorf("unknown benchmark %q", req.Bench)
		}
		src = b.Source
	case req.Source != "":
		src = req.Source
	default:
		return "", topt, dopt, "", fmt.Errorf("pass source or bench")
	}

	levelName := req.Level
	if levelName == "" {
		levelName = "c2+f4"
	}
	lvl, err := core.ParseLevel(levelName)
	if err != nil {
		return "", topt, dopt, "", err
	}

	var commOpt *comm.Options
	if req.Procs > 1 {
		co := comm.DefaultOptions(req.Procs)
		switch req.Strategy {
		case "", "favor-fusion":
		case "favor-comm":
			co.Strategy = comm.FavorComm
		default:
			return "", topt, dopt, "", fmt.Errorf("unknown strategy %q (want favor-fusion or favor-comm)", req.Strategy)
		}
		commOpt = &co
	} else if req.Strategy != "" && req.Strategy != "favor-fusion" {
		return "", topt, dopt, "", fmt.Errorf("strategy %q requires procs > 1", req.Strategy)
	}
	if req.Measure && req.Procs > 1 {
		return "", topt, dopt, "", fmt.Errorf("measure requires a sequential program (procs <= 1)")
	}

	machName := req.Machine
	if machName == "" {
		machName = "t3e"
	}
	mach, ok := machine.ByName(machName)
	if !ok {
		return "", topt, dopt, "", fmt.Errorf("unknown machine %q (want t3e, sp2, paragon, or origin)", req.Machine)
	}
	procs := 1
	if req.Procs > 1 {
		procs = req.Procs
	}
	modelName := req.Model
	if modelName == "" {
		modelName = "cycle"
	}
	var model tune.CostModel
	switch modelName {
	case "cycle":
		model = tune.CycleModel{M: mach, Procs: procs}
	case "cache":
		model = tune.CacheModel{M: mach, Procs: procs}
	default:
		return "", topt, dopt, "", fmt.Errorf("unknown cost model %q (want cycle or cache)", req.Model)
	}

	topt = tune.Options{
		Level:   lvl,
		Model:   model,
		Configs: req.Configs,
		Comm:    commOpt,
		Search: tune.SearchOptions{
			Beam:               req.Beam,
			ExhaustiveVertices: req.ExhaustiveVertices,
			MaxStates:          req.MaxStates,
		},
		Measure: req.Measure,
		TopK:    req.TopK,
	}
	dopt = driver.Options{Level: lvl, Configs: req.Configs, Comm: commOpt}
	extra = fmt.Sprintf("tune:machine=%s,model=%s,beam=%d,exh=%d,states=%d,measure=%t,topk=%d",
		machName, modelName, req.Beam, req.ExhaustiveVertices, req.MaxStates, req.Measure, req.TopK)
	return src, topt, dopt, extra, nil
}

// handleTune serves POST /tune: search for a better fusion/contraction
// plan than the requested heuristic, caching the serialized result by
// the content address of (source, compile options, search knobs).
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/tune"
	t0 := time.Now()
	status, kind, outcome := http.StatusOK, "", ""
	defer func() {
		d := time.Since(t0)
		s.metrics.Request(endpoint, status, d)
		s.logRequest(r, endpoint, status, kind, outcome, d)
	}()

	if s.draining.Load() {
		s.metrics.Drained()
		status, kind = http.StatusServiceUnavailable, "draining"
		s.fail(w, status, kind, "server is draining")
		return
	}
	if r.Method != http.MethodPost {
		status, kind = http.StatusMethodNotAllowed, "bad_request"
		s.fail(w, status, kind, "POST a JSON request body")
		return
	}

	var req TuneRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, kind = http.StatusRequestEntityTooLarge, "too_large"
			s.fail(w, status, kind, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		status, kind = http.StatusBadRequest, "bad_request"
		s.fail(w, status, kind, "bad request JSON: "+err.Error())
		return
	}
	s.metrics.TuneRequest()

	src, topt, dopt, extra, err := s.resolveTune(&req)
	if err != nil {
		status, kind = http.StatusBadRequest, "bad_request"
		s.fail(w, status, kind, err.Error())
		return
	}

	// Admission, deadline, and worker slot: identical to /compile and
	// /run — a tuning search is the most expensive request the server
	// takes, so it must not bypass the pool.
	select {
	case s.queue <- struct{}{}:
	default:
		s.metrics.Rejected()
		status, kind = http.StatusTooManyRequests, "overloaded"
		s.fail(w, status, kind, fmt.Sprintf("queue full (%d waiting)", cap(s.queue)))
		return
	}
	defer func() { <-s.queue }()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		status, kind = statusForCtx(ctx.Err())
		s.fail(w, status, kind, "deadline expired while queued")
		return
	}
	defer func() { <-s.sem }()
	s.metrics.IncInflight()
	defer s.metrics.DecInflight()

	key := ccache.KeyOfExtra(src, dopt, extra)
	entry, res, err := s.tcache.GetOrCompute(ctx, key, func() (*ccache.Entry, error) {
		start := time.Now()
		res, terr := tune.Tune(ctx, src, topt)
		s.metrics.Phases.Observe("tune", time.Since(start))
		if terr != nil {
			return nil, terr
		}
		buf, merr := json.Marshal(res)
		if merr != nil {
			return nil, merr
		}
		// The kind routes cluster puts into the tune cache rather than
		// the compilation cache (see Server.New's RegisterLocal calls).
		return &ccache.Entry{Kind: ccache.ArtifactTune, Source: src, Aux: buf}, nil
	})
	lookup := res.Outcome
	if err != nil {
		var ce *tune.CompileError
		switch {
		case ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			status, kind = statusForCtx(err)
			s.fail(w, status, kind, "tune aborted: "+err.Error())
		case errors.As(err, &ce):
			status, kind = http.StatusUnprocessableEntity, "compile_error"
			s.fail(w, status, kind, err.Error())
		default:
			status, kind = http.StatusInternalServerError, "runtime_error"
			s.fail(w, status, kind, err.Error())
		}
		return
	}
	outcome = lookup.String()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(TuneResponse{
		Key:    entry.Key.String(),
		Cached: lookup == ccache.Hit,
		Dedup:  lookup == ccache.Dedup,
		Tier:   res.Tier,
		Result: json.RawMessage(entry.Aux),
	})
}
