package svc

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/backend"
)

// TestNativeBackendRun drives /run with backend "go" end to end: the
// native output must be byte-identical to the VM's, the second request
// must be a cache hit whose binary is served from the artifact store,
// and the backend counters must show up in /metrics.
func TestNativeBackendRun(t *testing.T) {
	if !backend.Available() {
		t.Skip("no go toolchain on PATH")
	}
	s, ts := newTestServer(t, Config{ArtifactDir: t.TempDir()})
	src := heatSource(t)

	var vmResp RunResponse
	status, body := post(t, ts.URL+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("vm run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &vmResp); err != nil {
		t.Fatal(err)
	}

	var native RunResponse
	status, body = post(t, ts.URL+"/run", Request{Source: src, Backend: "go"})
	if status != http.StatusOK {
		t.Fatalf("native run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &native); err != nil {
		t.Fatal(err)
	}
	if native.Output != vmResp.Output {
		t.Errorf("native output diverges from VM\nnative: %q\nvm:     %q", native.Output, vmResp.Output)
	}
	if native.Backend != "go" || native.Artifact == "" {
		t.Errorf("native run metadata missing: %+v", native)
	}
	if native.Cached {
		t.Error("first native request reported cached (the VM entry must not alias it)")
	}
	if vmResp.Key == native.Key {
		t.Error("native and VM requests share a cache key")
	}

	var again RunResponse
	status, body = post(t, ts.URL+"/run", Request{Source: src, Backend: "go"})
	if status != http.StatusOK {
		t.Fatalf("second native run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !again.BuildHit {
		t.Errorf("second native run not served from the caches: cached=%t build_hit=%t", again.Cached, again.BuildHit)
	}
	if again.Output != vmResp.Output {
		t.Errorf("cached native output diverged: %q", again.Output)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"zpld_backend_builds_total", `zpld_backend_runs_total{backend="go",outcome="ok"} 2`} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !s.NativeAvailable() {
		t.Error("NativeAvailable false with an open store")
	}
}

// TestNativeBackendValidation: the interpreter-only knobs are refused
// with 400, mirroring zplrun's usage errors.
func TestNativeBackendValidation(t *testing.T) {
	if !backend.Available() {
		t.Skip("no go toolchain on PATH")
	}
	_, ts := newTestServer(t, Config{ArtifactDir: t.TempDir()})
	src := heatSource(t)
	for name, req := range map[string]Request{
		"dist":      {Source: src, Backend: "go", Dist: true, Procs: 2},
		"procs":     {Source: src, Backend: "go", Procs: 2},
		"max_steps": {Source: src, Backend: "go", MaxSteps: 10},
		"unknown":   {Source: src, Backend: "llvm"},
	} {
		status, body := post(t, ts.URL+"/run", req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400: %s", name, status, body)
		}
	}
}
