// Cluster-mode service tests: multiple svc.Servers wired into one
// consistent-hash ring over real HTTP, exercising the peer and disk
// tiers end to end — responses carry the serving tier, /metrics grows
// the zpld_store_tier_* and zpld_peer_* families, and /cluster reports
// membership and reachability.
package svc

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/ccache"
	"repro/internal/store"
)

// lateHandler lets the httptest listeners exist before the Servers
// that answer on them: a clustered Config needs every member's
// address, which is only known once all listeners are bound.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) Set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newCluster starts n clustered servers sharing one ring, each with
// its own cache directory.
func newCluster(t *testing.T, n int) (srvs []*Server, urls, addrs []string) {
	t.Helper()
	lates := make([]*lateHandler, n)
	for i := range lates {
		lates[i] = &lateHandler{}
		hs := httptest.NewServer(lates[i])
		t.Cleanup(hs.Close)
		urls = append(urls, hs.URL)
		addrs = append(addrs, strings.TrimPrefix(hs.URL, "http://"))
	}
	for i := range lates {
		s := New(Config{Self: addrs[i], Peers: addrs, CacheDir: t.TempDir()})
		if ws := s.Warnings(); len(ws) != 0 {
			t.Fatalf("node %d startup warnings: %v", i, ws)
		}
		lates[i].Set(s.Handler())
		srvs = append(srvs, s)
	}
	return srvs, urls, addrs
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// ownerOf resolves which cluster member the default-options compile
// key of src hashes to — the same routing the servers perform.
func ownerOf(t *testing.T, s *Server, src string, addrs []string) string {
	t.Helper()
	_, opt, err := s.resolve(&Request{Source: src}, false)
	if err != nil {
		t.Fatal(err)
	}
	key := ccache.KeyOfKind(src, opt, ccache.ArtifactIR)
	return store.NewRing(addrs).Owner(key)
}

// TestClusterPeerTierServesCompile warms the key's owner node, then
// asserts the other node serves the identical artifact from the peer
// tier and that both sides' metrics record the exchange.
func TestClusterPeerTierServesCompile(t *testing.T) {
	srvs, urls, addrs := newCluster(t, 2)
	src := heatSource(t)

	owner := ownerOf(t, srvs[0], src, addrs)
	oi := 0
	if addrs[1] == owner {
		oi = 1
	}
	other := 1 - oi

	var first, second RunResponse
	status, body := post(t, urls[oi]+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("owner run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Tier != "" {
		t.Errorf("owner's first compile should be a fresh miss: %+v", first.CompileResponse)
	}

	status, body = post(t, urls[other]+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("peer run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Tier != store.TierPeer {
		t.Errorf("non-owner should serve from the peer tier: cached=%t tier=%q", second.Cached, second.Tier)
	}
	if first.Key != second.Key {
		t.Errorf("keys diverged across nodes: %s vs %s", first.Key, second.Key)
	}
	if first.Output != second.Output || second.Output == "" {
		t.Errorf("peer-served output not bit-identical: %q vs %q", first.Output, second.Output)
	}
	if first.Plan != second.Plan || first.NestCount != second.NestCount {
		t.Errorf("peer-served metadata diverged: %+v vs %+v", first.CompileResponse, second.CompileResponse)
	}
	if st := srvs[other].CacheStats(); st.Misses != 0 || st.Hits != 1 {
		t.Errorf("non-owner compiled locally despite peer hit: %+v", st)
	}

	// The exchange is visible in both exposition endpoints.
	m := get(t, urls[other]+"/metrics")
	for _, want := range []string{
		`zpld_store_tier_hits_total{store="compile",tier="peer"} 1`,
		`zpld_peer_gets_total{peer="` + owner + `",outcome="hit"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("non-owner /metrics missing %q", want)
		}
	}
	om := get(t, urls[oi]+"/metrics")
	if !strings.Contains(om, `zpld_peer_served_gets_total{outcome="hit"} 1`) {
		t.Errorf("owner /metrics missing served-get hit:\n%s", om)
	}
}

// TestClusterComputeAtNonOwnerPublishesToOwner posts to the node that
// does NOT own the key: it must claim at the owner, compile locally,
// and publish the artifact so the owner serves it from memory next.
func TestClusterComputeAtNonOwnerPublishesToOwner(t *testing.T) {
	srvs, urls, addrs := newCluster(t, 2)
	src := heatSource(t)

	owner := ownerOf(t, srvs[0], src, addrs)
	oi := 0
	if addrs[1] == owner {
		oi = 1
	}
	other := 1 - oi

	var first, second CompileResponse
	status, body := post(t, urls[other]+"/compile", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("non-owner compile: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Errorf("non-owner's first compile should miss: %+v", first)
	}

	status, body = post(t, urls[oi]+"/compile", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("owner compile: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Tier != store.TierMem {
		t.Errorf("owner should hold the published artifact in memory: cached=%t tier=%q", second.Cached, second.Tier)
	}
	if st := srvs[oi].CacheStats(); st.Misses != 0 {
		t.Errorf("owner recompiled a published key: %+v", st)
	}

	m := get(t, urls[other]+"/metrics")
	for _, want := range []string{
		`zpld_peer_gets_total{peer="` + owner + `",outcome="miss"} 1`,
		`zpld_peer_puts_total{peer="` + owner + `",outcome="ok"} 1`,
		`zpld_peer_claims_total{peer="` + owner + `"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("non-owner /metrics missing %q", want)
		}
	}
	om := get(t, urls[oi]+"/metrics")
	if !strings.Contains(om, "zpld_peer_served_puts_total 1") {
		t.Errorf("owner /metrics missing served put:\n%s", om)
	}
}

// TestClusterTuneArtifactsTravel exercises the tuned-plan store across
// the ring: the ArtifactTune kind filter must route cluster puts into
// the tune cache, and the second node must serve the identical result
// without searching again.
func TestClusterTuneArtifactsTravel(t *testing.T) {
	srvs, urls, _ := newCluster(t, 2)
	src := heatSource(t)
	req := TuneRequest{Source: src, MaxStates: 64}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	tunePost := func(url string) TuneResponse {
		t.Helper()
		resp, err := http.Post(url+"/tune", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tune: HTTP %d: %s", resp.StatusCode, out)
		}
		var tr TuneResponse
		if err := json.Unmarshal(out, &tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	first := tunePost(urls[0])
	second := tunePost(urls[1])
	if first.Key != second.Key {
		t.Errorf("tune keys diverged: %s vs %s", first.Key, second.Key)
	}
	if !second.Cached {
		t.Errorf("second node re-ran the search: %+v", second)
	}
	if string(first.Result) != string(second.Result) {
		t.Errorf("tune results not identical across nodes")
	}
	searches := srvs[0].TuneCacheStats().Misses + srvs[1].TuneCacheStats().Misses
	if searches != 1 {
		t.Errorf("cluster ran %d searches, want exactly 1", searches)
	}
	// One of the two nodes served or fetched over the wire; the tune
	// tier-hit counter must have moved somewhere in the cluster.
	m := get(t, urls[0]+"/metrics") + get(t, urls[1]+"/metrics")
	if !strings.Contains(m, `zpld_store_tier_hits_total{store="tune",tier="mem"} 1`) &&
		!strings.Contains(m, `zpld_store_tier_hits_total{store="tune",tier="peer"} 1`) {
		t.Errorf("no tune tier hit recorded on either node")
	}
}

// TestClusterEndpoint checks the /cluster document on a clustered
// node: identity, membership, tier residency, and peer reachability.
func TestClusterEndpoint(t *testing.T) {
	_, urls, addrs := newCluster(t, 2)
	src := heatSource(t)
	if status, body := post(t, urls[0]+"/compile", Request{Source: src}); status != http.StatusOK {
		t.Fatalf("compile: HTTP %d: %s", status, body)
	}

	var cr ClusterResponse
	if err := json.Unmarshal([]byte(get(t, urls[0]+"/cluster")), &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Clustered || cr.Self != addrs[0] {
		t.Errorf("identity wrong: clustered=%t self=%q want %q", cr.Clustered, cr.Self, addrs[0])
	}
	if len(cr.Members) != 2 {
		t.Errorf("members = %v, want both nodes", cr.Members)
	}
	if len(cr.Peers) != 2 {
		t.Fatalf("peer rows = %d, want 2", len(cr.Peers))
	}
	for _, p := range cr.Peers {
		if !p.Reachable {
			t.Errorf("peer %s reported unreachable", p.Member)
		}
	}
	// The compile landed in some tier on this node (mem if computed
	// here, disk write-through if fetched) — /cluster must show it.
	mem, disk := cr.Tiers["mem"], cr.Tiers["disk"]
	if mem.Entries+disk.Entries == 0 {
		t.Errorf("no residency reported after a compile: %+v", cr.Tiers)
	}
	if _, ok := cr.Tiers["peer"]; !ok {
		t.Errorf("clustered node missing peer tier row: %+v", cr.Tiers)
	}

	// Unclustered servers still answer, with Clustered=false.
	_, ts := newTestServer(t, Config{})
	var ur ClusterResponse
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/cluster")), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Clustered || len(ur.Members) != 0 || len(ur.Peers) != 0 {
		t.Errorf("unclustered /cluster reports cluster state: %+v", ur)
	}
	resp, err := http.Post(ts.URL+"/cluster", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /cluster = %d, want 405", resp.StatusCode)
	}
}

// TestDiskTierSurvivesRestart rebuilds a server over the same cache
// directory and asserts the artifact is served from the disk tier with
// zero recompiles — the svc-level warm-restart guarantee.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	src := heatSource(t)

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	var first RunResponse
	status, body := post(t, ts1.URL+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if st := s1.CacheStats(); st.Misses != 1 {
		t.Fatalf("first server stats: %+v", st)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	var second RunResponse
	status, body = post(t, ts2.URL+"/run", Request{Source: src})
	if status != http.StatusOK {
		t.Fatalf("restarted run: HTTP %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Tier != store.TierDisk {
		t.Errorf("restart should rehydrate from disk: cached=%t tier=%q", second.Cached, second.Tier)
	}
	if second.Output != first.Output {
		t.Errorf("rehydrated output diverged: %q vs %q", second.Output, first.Output)
	}
	if second.Plan != first.Plan || second.NestCount != first.NestCount || second.Arrays != first.Arrays {
		t.Errorf("rehydrated metadata diverged: %+v vs %+v", second.CompileResponse, first.CompileResponse)
	}
	if st := s2.CacheStats(); st.Misses != 0 {
		t.Errorf("restarted server recompiled: %+v", st)
	}

	m := get(t, ts2.URL+"/metrics")
	for _, want := range []string{
		`zpld_store_tier_hits_total{store="compile",tier="disk"} 1`,
		`zpld_store_tier_entries{store="shared",tier="disk"} `,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(get(t, ts2.URL+"/healthz"), "store mem=") {
		t.Errorf("/healthz missing store line")
	}
}
