package svc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/absint"
	"repro/internal/ccache"
	"repro/internal/lint"
	"repro/internal/mhp"
	"repro/internal/phase"
	"repro/internal/remark"
	"repro/internal/store"
)

// Metrics aggregates the service's counters and latency histograms and
// renders them in the Prometheus text exposition format (no external
// dependency; the format is three line shapes).
//
// Pipeline phases land in Phases via driver hooks ("parse", "sema",
// "lower", "comm", "asdg", "fusion", "contraction", "scalarize",
// "check") plus the service's own "run", "gogen", "backend_build",
// and "tune" phases; whole requests land in per-endpoint histograms.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // "endpoint|status" -> count
	tunes    int64            // /tune requests accepted for processing
	inflight int64
	rejected int64            // queue-depth 429s
	drained  int64            // requests refused because the server is draining
	lints    map[string]int64 // lint findings per severity ("rule|severity")
	remarks  map[string]int64 // optimization remarks per kind
	bounds   map[string]int64 // prover sites per verdict (proven|unknown|unsafe)
	races    map[string]int64 // race-analyzer pairs per verdict
	deadlock int64            // race-analyzer deadlock findings

	backendBuilds map[string]int64 // native artifact builds per outcome (hit|miss|error)
	backendRuns   map[string]int64 // native executions ("backend|outcome")

	Phases  *phase.Collector // per-phase compile/run latencies
	byRoute *phase.Collector // whole-request latencies per endpoint
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:      map[string]int64{},
		lints:         map[string]int64{},
		remarks:       map[string]int64{},
		bounds:        map[string]int64{},
		races:         map[string]int64{},
		backendBuilds: map[string]int64{},
		backendRuns:   map[string]int64{},
		Phases:        phase.NewCollector(),
		byRoute:       phase.NewCollector(),
	}
}

// Request records one finished request.
func (m *Metrics) Request(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", endpoint, status)]++
	m.mu.Unlock()
	m.byRoute.Observe(endpoint, d)
}

// IncInflight/DecInflight track the number of requests between
// admission and response.
func (m *Metrics) IncInflight() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

func (m *Metrics) DecInflight() {
	m.mu.Lock()
	m.inflight--
	m.mu.Unlock()
}

// TuneRequest counts one /tune request admitted past the method and
// body checks (zpld_tune_requests_total).
func (m *Metrics) TuneRequest() {
	m.mu.Lock()
	m.tunes++
	m.mu.Unlock()
}

// Rejected counts a queue-depth rejection (HTTP 429).
func (m *Metrics) Rejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// Lint counts one lint run's findings, labelled by rule and severity.
func (m *Metrics) Lint(findings []lint.Finding) {
	m.mu.Lock()
	for _, f := range findings {
		m.lints[fmt.Sprintf("%s|%s", f.Rule, f.Severity)]++
	}
	m.mu.Unlock()
}

// Bounds counts one fresh compilation's prover sites by verdict —
// zpld_bounds_sites_total. Like Remarks, it is recorded only on cache
// misses so hits do not multiply the census by request rate.
func (m *Metrics) Bounds(r *absint.Result) {
	m.mu.Lock()
	m.bounds["proven"] += int64(r.NumProven)
	m.bounds["unknown"] += int64(r.NumUnknown)
	m.bounds["unsafe"] += int64(r.NumUnsafe)
	m.mu.Unlock()
}

// Races counts one fresh distributed compilation's happens-before
// pairs by verdict — zpld_race_pairs_total{verdict} — plus its
// deadlock findings. Recorded only on cache misses, like Bounds.
func (m *Metrics) Races(r *mhp.Result) {
	m.mu.Lock()
	m.races["proven-ordered"] += int64(r.NumOrdered)
	m.races["race"] += int64(r.NumRace)
	m.races["unknown"] += int64(r.NumUnknown)
	m.deadlock += int64(len(r.Deadlocks))
	m.mu.Unlock()
}

// Remarks counts one fresh compilation's optimization remarks by kind.
func (m *Metrics) Remarks(counts map[remark.Kind]int) {
	m.mu.Lock()
	for k, n := range counts {
		m.remarks[string(k)] += int64(n)
	}
	m.mu.Unlock()
}

// BackendBuild counts one native-artifact build by outcome: "hit"
// (binary already in the store), "miss" (toolchain invoked), or
// "error" (the build failed) — zpld_backend_builds_total.
func (m *Metrics) BackendBuild(outcome string) {
	m.mu.Lock()
	m.backendBuilds[outcome]++
	m.mu.Unlock()
}

// BackendRun counts one native execution by backend and outcome —
// zpld_backend_runs_total.
func (m *Metrics) BackendRun(backend string, ok bool) {
	outcome := "error"
	if ok {
		outcome = "ok"
	}
	m.mu.Lock()
	m.backendRuns[backend+"|"+outcome]++
	m.mu.Unlock()
}

// Drained counts a request refused during shutdown (HTTP 503).
func (m *Metrics) Drained() {
	m.mu.Lock()
	m.drained++
	m.mu.Unlock()
}

// Render emits the registry plus the counters of the compilation
// cache (cs) and the tuned-plan cache (ts).
func (m *Metrics) Render(cs, ts ccache.Stats) string {
	var b strings.Builder

	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("# TYPE zpld_requests_total counter\n")
	for _, k := range keys {
		ep, status, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "zpld_requests_total{endpoint=%q,code=%q} %d\n", ep, status, m.requests[k])
	}
	fmt.Fprintf(&b, "# TYPE zpld_tune_requests_total counter\nzpld_tune_requests_total %d\n", m.tunes)
	fmt.Fprintf(&b, "# TYPE zpld_inflight gauge\nzpld_inflight %d\n", m.inflight)
	fmt.Fprintf(&b, "# TYPE zpld_queue_rejections_total counter\nzpld_queue_rejections_total %d\n", m.rejected)
	fmt.Fprintf(&b, "# TYPE zpld_drain_rejections_total counter\nzpld_drain_rejections_total %d\n", m.drained)
	if len(m.lints) > 0 {
		lk := make([]string, 0, len(m.lints))
		for k := range m.lints {
			lk = append(lk, k)
		}
		sort.Strings(lk)
		b.WriteString("# TYPE zpld_lint_findings_total counter\n")
		for _, k := range lk {
			rule, sev, _ := strings.Cut(k, "|")
			fmt.Fprintf(&b, "zpld_lint_findings_total{rule=%q,severity=%q} %d\n", rule, sev, m.lints[k])
		}
	}
	if len(m.remarks) > 0 {
		rk := make([]string, 0, len(m.remarks))
		for k := range m.remarks {
			rk = append(rk, k)
		}
		sort.Strings(rk)
		b.WriteString("# TYPE zpld_remarks_total counter\n")
		for _, k := range rk {
			fmt.Fprintf(&b, "zpld_remarks_total{kind=%q} %d\n", k, m.remarks[k])
		}
	}
	if len(m.bounds) > 0 {
		bk := make([]string, 0, len(m.bounds))
		for k := range m.bounds {
			bk = append(bk, k)
		}
		sort.Strings(bk)
		b.WriteString("# TYPE zpld_bounds_sites_total counter\n")
		for _, k := range bk {
			fmt.Fprintf(&b, "zpld_bounds_sites_total{verdict=%q} %d\n", k, m.bounds[k])
		}
	}
	if len(m.races) > 0 {
		rk := make([]string, 0, len(m.races))
		for k := range m.races {
			rk = append(rk, k)
		}
		sort.Strings(rk)
		b.WriteString("# TYPE zpld_race_pairs_total counter\n")
		for _, k := range rk {
			fmt.Fprintf(&b, "zpld_race_pairs_total{verdict=%q} %d\n", k, m.races[k])
		}
		fmt.Fprintf(&b, "# TYPE zpld_race_deadlocks_total counter\nzpld_race_deadlocks_total %d\n", m.deadlock)
	}
	if len(m.backendBuilds) > 0 {
		bk := make([]string, 0, len(m.backendBuilds))
		for k := range m.backendBuilds {
			bk = append(bk, k)
		}
		sort.Strings(bk)
		b.WriteString("# TYPE zpld_backend_builds_total counter\n")
		for _, k := range bk {
			fmt.Fprintf(&b, "zpld_backend_builds_total{outcome=%q} %d\n", k, m.backendBuilds[k])
		}
	}
	if len(m.backendRuns) > 0 {
		bk := make([]string, 0, len(m.backendRuns))
		for k := range m.backendRuns {
			bk = append(bk, k)
		}
		sort.Strings(bk)
		b.WriteString("# TYPE zpld_backend_runs_total counter\n")
		for _, k := range bk {
			be, outcome, _ := strings.Cut(k, "|")
			fmt.Fprintf(&b, "zpld_backend_runs_total{backend=%q,outcome=%q} %d\n", be, outcome, m.backendRuns[k])
		}
	}
	m.mu.Unlock()

	fmt.Fprintf(&b, "# TYPE zpld_cache_hits_total counter\nzpld_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(&b, "# TYPE zpld_cache_misses_total counter\nzpld_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(&b, "# TYPE zpld_cache_dedup_hits_total counter\nzpld_cache_dedup_hits_total %d\n", cs.DedupHits)
	fmt.Fprintf(&b, "# TYPE zpld_cache_evictions_total counter\nzpld_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(&b, "# TYPE zpld_cache_too_large_total counter\nzpld_cache_too_large_total %d\n", cs.TooLarge)
	fmt.Fprintf(&b, "# TYPE zpld_cache_bytes gauge\nzpld_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(&b, "# TYPE zpld_cache_entries gauge\nzpld_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(&b, "# TYPE zpld_cache_max_bytes gauge\nzpld_cache_max_bytes %d\n", cs.MaxBytes)

	fmt.Fprintf(&b, "# TYPE zpld_tune_cache_hits_total counter\nzpld_tune_cache_hits_total %d\n", ts.Hits)
	fmt.Fprintf(&b, "# TYPE zpld_tune_cache_misses_total counter\nzpld_tune_cache_misses_total %d\n", ts.Misses)
	fmt.Fprintf(&b, "# TYPE zpld_tune_cache_dedup_hits_total counter\nzpld_tune_cache_dedup_hits_total %d\n", ts.DedupHits)
	fmt.Fprintf(&b, "# TYPE zpld_tune_cache_evictions_total counter\nzpld_tune_cache_evictions_total %d\n", ts.Evictions)
	fmt.Fprintf(&b, "# TYPE zpld_tune_cache_bytes gauge\nzpld_tune_cache_bytes %d\n", ts.Bytes)
	fmt.Fprintf(&b, "# TYPE zpld_tune_cache_entries gauge\nzpld_tune_cache_entries %d\n", ts.Entries)

	renderHistograms(&b, "zpld_phase_seconds", "phase", m.Phases)
	renderHistograms(&b, "zpld_request_seconds", "endpoint", m.byRoute)
	return b.String()
}

// RenderStoreMetrics emits the tiered-store families: per-tier hits
// and residency for the compilation store (cs) and the tuned-plan
// store (ts), plus the peer-protocol counters when clustered. It is
// rendered after Render in /metrics; the classic zpld_cache_* families
// above stay aggregate for dashboard continuity.
func RenderStoreMetrics(cs, ts store.TierStats, node *store.Node) string {
	var b strings.Builder

	b.WriteString("# TYPE zpld_store_tier_hits_total counter\n")
	for _, t := range []struct {
		tier string
		c, t int64
	}{
		{store.TierMem, cs.MemHits, ts.MemHits},
		{store.TierDisk, cs.DiskHits, ts.DiskHits},
		{store.TierPeer, cs.PeerHits, ts.PeerHits},
	} {
		fmt.Fprintf(&b, "zpld_store_tier_hits_total{store=\"compile\",tier=%q} %d\n", t.tier, t.c)
		fmt.Fprintf(&b, "zpld_store_tier_hits_total{store=\"tune\",tier=%q} %d\n", t.tier, t.t)
	}

	// The disk tier is shared between the two stores; report it once
	// under the compile store's snapshot.
	b.WriteString("# TYPE zpld_store_tier_entries gauge\n")
	fmt.Fprintf(&b, "zpld_store_tier_entries{store=\"compile\",tier=\"mem\"} %d\n", cs.Mem.Entries)
	fmt.Fprintf(&b, "zpld_store_tier_entries{store=\"tune\",tier=\"mem\"} %d\n", ts.Mem.Entries)
	fmt.Fprintf(&b, "zpld_store_tier_entries{store=\"shared\",tier=\"disk\"} %d\n", cs.Disk.Entries)
	b.WriteString("# TYPE zpld_store_tier_bytes gauge\n")
	fmt.Fprintf(&b, "zpld_store_tier_bytes{store=\"compile\",tier=\"mem\"} %d\n", cs.Mem.Bytes)
	fmt.Fprintf(&b, "zpld_store_tier_bytes{store=\"tune\",tier=\"mem\"} %d\n", ts.Mem.Bytes)
	fmt.Fprintf(&b, "zpld_store_tier_bytes{store=\"shared\",tier=\"disk\"} %d\n", cs.Disk.Bytes)
	fmt.Fprintf(&b, "# TYPE zpld_store_disk_corrupt_total counter\nzpld_store_disk_corrupt_total %d\n", cs.Disk.Corrupt)
	fmt.Fprintf(&b, "# TYPE zpld_store_disk_errors_total counter\nzpld_store_disk_errors_total %d\n", cs.Disk.Errors)

	if node == nil {
		return b.String()
	}

	// Peer-protocol counters: the client side per peer, then the
	// served (server) side in aggregate.
	peers := node.Clients().Stats()
	names := make([]string, 0, len(peers))
	for n := range peers {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("# TYPE zpld_peer_gets_total counter\n")
		for _, n := range names {
			p := peers[n]
			fmt.Fprintf(&b, "zpld_peer_gets_total{peer=%q,outcome=\"hit\"} %d\n", n, p.GetHits)
			fmt.Fprintf(&b, "zpld_peer_gets_total{peer=%q,outcome=\"miss\"} %d\n", n, p.GetMisses)
			fmt.Fprintf(&b, "zpld_peer_gets_total{peer=%q,outcome=\"timeout\"} %d\n", n, p.GetTimeouts)
			fmt.Fprintf(&b, "zpld_peer_gets_total{peer=%q,outcome=\"error\"} %d\n", n, p.GetErrors)
		}
		b.WriteString("# TYPE zpld_peer_puts_total counter\n")
		for _, n := range names {
			p := peers[n]
			fmt.Fprintf(&b, "zpld_peer_puts_total{peer=%q,outcome=\"ok\"} %d\n", n, p.Puts)
			fmt.Fprintf(&b, "zpld_peer_puts_total{peer=%q,outcome=\"error\"} %d\n", n, p.PutErrors)
		}
		b.WriteString("# TYPE zpld_peer_claims_total counter\n")
		for _, n := range names {
			fmt.Fprintf(&b, "zpld_peer_claims_total{peer=%q} %d\n", n, peers[n].Claims)
		}
		b.WriteString("# TYPE zpld_peer_breaker_trips_total counter\n")
		for _, n := range names {
			fmt.Fprintf(&b, "zpld_peer_breaker_trips_total{peer=%q} %d\n", n, peers[n].Tripped)
		}
	}
	ns := node.Stats()
	fmt.Fprintf(&b, "# TYPE zpld_peer_served_gets_total counter\n")
	fmt.Fprintf(&b, "zpld_peer_served_gets_total{outcome=\"hit\"} %d\n", ns.ServedHits)
	fmt.Fprintf(&b, "zpld_peer_served_gets_total{outcome=\"miss\"} %d\n", ns.ServedMisses)
	fmt.Fprintf(&b, "# TYPE zpld_peer_served_puts_total counter\nzpld_peer_served_puts_total %d\n", ns.ServedPuts)
	fmt.Fprintf(&b, "# TYPE zpld_peer_served_claims_total counter\nzpld_peer_served_claims_total %d\n", ns.ServedClaims)
	return b.String()
}

// renderHistograms emits one Prometheus histogram family per collector
// entry, with cumulative buckets in seconds.
func renderHistograms(b *strings.Builder, family, label string, c *phase.Collector) {
	names := c.Names()
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(b, "# TYPE %s histogram\n", family)
	for _, n := range names {
		s := c.Hist(n).Snapshot()
		var cum int64
		for i := 0; i < phase.NumBuckets; i++ {
			cum += s.Buckets[i]
			le := "+Inf"
			if i < phase.NumBuckets-1 {
				le = fmt.Sprintf("%g", phase.Boundary(i).Seconds())
			}
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", family, label, n, le, cum)
		}
		fmt.Fprintf(b, "%s_sum{%s=%q} %g\n", family, label, n, s.Sum.Seconds())
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", family, label, n, s.Count)
	}
}
