// cluster.go is the GET /cluster endpoint: one JSON document that
// answers "what does this node believe about the cluster" — its
// identity, the ring membership, per-tier entry/byte counts, and the
// reachability + call statistics of every peer. Reachability is an
// active probe (parallel /healthz checks with the peer timeout), so
// the endpoint is the first stop when a cluster misbehaves.
package svc

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"repro/internal/store"
)

// ClusterTier reports one tier's residency.
type ClusterTier struct {
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Hits    int64 `json:"hits"`
}

// ClusterPeer reports one ring member from this node's perspective.
type ClusterPeer struct {
	Member    string `json:"member"`
	Self      bool   `json:"self,omitempty"`
	Reachable bool   `json:"reachable"`
	// Dead reports the client breaker state: true while calls to this
	// peer are being skipped after repeated failures.
	Dead bool `json:"dead,omitempty"`

	GetHits     int64 `json:"get_hits,omitempty"`
	GetMisses   int64 `json:"get_misses,omitempty"`
	GetTimeouts int64 `json:"get_timeouts,omitempty"`
	GetErrors   int64 `json:"get_errors,omitempty"`
	Puts        int64 `json:"puts,omitempty"`
	PutErrors   int64 `json:"put_errors,omitempty"`
	Claims      int64 `json:"claims,omitempty"`
}

// ClusterResponse is the JSON reply of /cluster.
type ClusterResponse struct {
	Self      string   `json:"self,omitempty"`
	Clustered bool     `json:"clustered"`
	Members   []string `json:"members,omitempty"`
	// Tiers maps tier name to residency: "mem" (compilation cache),
	// "mem_tune" (tuned-plan cache), "disk" (shared, when enabled).
	Tiers map[string]ClusterTier `json:"tiers"`
	// Misses/Dedups are the compilation store's compute counters, so
	// hit rates are derivable from the tier hits alone.
	Misses int64 `json:"misses"`
	Dedups int64 `json:"dedups"`
	// PeerServed counts what this node answered for others.
	PeerServedHits int64         `json:"peer_served_hits,omitempty"`
	PeerServedPuts int64         `json:"peer_served_puts,omitempty"`
	Peers          []ClusterPeer `json:"peers,omitempty"`
	Warnings       []string      `json:"warnings,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "bad_request", "GET /cluster")
		return
	}
	cs := s.cache.TierStats()
	ts := s.tcache.TierStats()
	resp := ClusterResponse{
		Clustered: s.node != nil,
		Tiers: map[string]ClusterTier{
			"mem":      {Entries: cs.Mem.Entries, Bytes: cs.Mem.Bytes, Hits: cs.MemHits},
			"mem_tune": {Entries: ts.Mem.Entries, Bytes: ts.Mem.Bytes, Hits: ts.MemHits},
		},
		Misses:   cs.Misses + ts.Misses,
		Dedups:   cs.Dedups + ts.Dedups,
		Warnings: s.warns,
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		resp.Tiers["disk"] = ClusterTier{Entries: ds.Entries, Bytes: ds.Bytes, Hits: cs.DiskHits + ts.DiskHits}
	}
	if s.node != nil {
		resp.Self = s.node.Self()
		resp.Members = s.node.Members()
		resp.Tiers["peer"] = ClusterTier{Hits: cs.PeerHits + ts.PeerHits}
		ns := s.node.Stats()
		resp.PeerServedHits = ns.ServedHits
		resp.PeerServedPuts = ns.ServedPuts
		resp.Peers = s.probePeers(r, cs.Peers)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// probePeers assembles the per-member rows, actively probing each
// non-self member's /healthz in parallel.
func (s *Server) probePeers(r *http.Request, stats map[string]store.PeerStats) []ClusterPeer {
	members := s.node.Members()
	rows := make([]ClusterPeer, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		row := ClusterPeer{Member: m}
		if ps, ok := stats[m]; ok {
			row.Dead = ps.Dead
			row.GetHits, row.GetMisses = ps.GetHits, ps.GetMisses
			row.GetTimeouts, row.GetErrors = ps.GetTimeouts, ps.GetErrors
			row.Puts, row.PutErrors, row.Claims = ps.Puts, ps.PutErrors, ps.Claims
		}
		if s.node.IsSelf(m) {
			row.Self, row.Reachable = true, true
			rows[i] = row
			continue
		}
		rows[i] = row
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			rows[i].Reachable = s.node.Clients().Reachable(r.Context(), m)
		}(i, m)
	}
	wg.Wait()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Member < rows[j].Member })
	return rows
}
