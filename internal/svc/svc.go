// Package svc is the zpld compile-and-run service: a long-running HTTP
// front end over the compilation pipeline with a content-addressed
// compilation cache (internal/ccache), a bounded worker pool, request
// deadlines threaded through the driver and both interpreters, and
// built-in metrics.
//
// Endpoints:
//
//	POST /compile  compile a program, serve the artifact from cache
//	POST /run      compile (cached) and execute on the requested
//	               backend: the bytecode VM (default), the distributed
//	               interpreter (dist), or native code (backend "go":
//	               emitted Go built through the content-addressed
//	               artifact store and executed on the host CPU)
//	POST /tune     search for a better fusion/contraction plan (zpltune
//	               as a service; results cached by content address)
//	GET  /metrics  Prometheus text exposition of counters + histograms
//	GET  /healthz  liveness ("ok"; 503 while draining)
//
// Status mapping (the error paths the CLIs collapse are distinct here):
//
//	400 malformed request (bad JSON, unknown level/strategy/bench,
//	    native backend requested with no go toolchain on the host)
//	404 unknown endpoint
//	405 wrong method
//	413 request body over the configured limit
//	422 compile error (the program is at fault; includes a go build
//	    failure of emitted code under backend "go" — the toolchain
//	    diagnostics ride in the error body)
//	429 queue depth exceeded (back off and retry)
//	500 runtime error (execution fault, budget exhaustion, or a
//	    native-binary runtime trap under backend "go")
//	503 draining (shutdown in progress)
//	504 request deadline expired (compiling, building, or running)
package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/ccache"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distvm"
	"repro/internal/driver"
	"repro/internal/gogen"
	"repro/internal/lint"
	"repro/internal/programs"
	"repro/internal/remark"
	"repro/internal/store"
	"repro/internal/vm"
)

// Config tunes the service; zero values take the documented defaults.
type Config struct {
	Workers        int           // concurrent compiles/runs; default GOMAXPROCS
	QueueDepth     int           // admitted-but-waiting requests; default 4×Workers
	MaxBodyBytes   int64         // request size limit; default 1 MiB
	CacheBytes     int64         // compilation cache budget; default 64 MiB
	TuneCacheBytes int64         // tuned-plan cache budget; default 16 MiB
	DefaultTimeout time.Duration // per-request deadline when the client sends none; default 30s
	MaxTimeout     time.Duration // cap on client-supplied deadlines; default 5m
	MaxSteps       int64         // execution budget per run; 0 = interpreter default
	DrainTimeout   time.Duration // graceful-shutdown grace; default 10s
	Logs           io.Writer     // JSON-lines request log; nil disables
	ArtifactDir    string        // native-artifact store; "" = backend.DefaultDir

	// CacheDir enables the disk tier of the compilation cache: a
	// content-addressed directory of encoded artifacts that survives
	// restarts (internal/store). "" disables the tier.
	CacheDir string
	// Self and Peers enable the cluster (peer) tier: Peers is the
	// static member list (host:port each), Self this node's own entry
	// in it. With a member list, compilation keys are routed by
	// consistent hashing — each key has one owner node that compiles
	// it once for the whole cluster; artifacts travel by content hash
	// over /store/get and /store/put.
	Self  string
	Peers []string
	// PeerTimeout bounds one peer HTTP attempt; ClaimTTL bounds how
	// long a compile claim shields a key; PeerWait bounds blocking on
	// another node's in-flight compile; MaxPeerBytes caps one
	// transferred artifact. Zero values take internal/store defaults.
	PeerTimeout  time.Duration
	ClaimTTL     time.Duration
	PeerWait     time.Duration
	MaxPeerBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
		// A small machine still faces wide client bursts; keep enough
		// waiting room that a default-config server absorbs a burst of
		// a few dozen before shedding load.
		if c.QueueDepth < 32 {
			c.QueueDepth = 32
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.TuneCacheBytes == 0 {
		c.TuneCacheBytes = 16 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Request is the JSON body of /compile and /run.
type Request struct {
	// Exactly one of Source (ZA program text) and Bench (a built-in
	// benchmark name: ep, frac, sp, tomcatv, simple, fibro) selects
	// the program.
	Source string `json:"source,omitempty"`
	Bench  string `json:"bench,omitempty"`

	// Backend selects the execution engine: "vm" (default, the
	// bytecode interpreter) or "go" (native code: emitted Go built
	// through the artifact store and executed on the host CPU). A
	// /compile with backend "go" pre-builds the binary so the first
	// /run is a build hit.
	Backend string `json:"backend,omitempty"`

	Level     string           `json:"level,omitempty"`    // default "c2+f3"
	Configs   map[string]int64 `json:"configs,omitempty"`  // config-constant overrides
	Procs     int              `json:"procs,omitempty"`    // >1 inserts communication
	Strategy  string           `json:"strategy,omitempty"` // favor-fusion | favor-comm
	ScalarRep bool             `json:"scalarrep,omitempty"`
	Check     bool             `json:"check,omitempty"`

	// NoProve skips the bounds prover: every array access keeps its
	// runtime check and the response carries no bounds summary.
	NoProve bool `json:"noprove,omitempty"`

	EmitGo bool `json:"emit_go,omitempty"` // include generated Go in the response

	// Lint runs the source-level lint rules (zpllint's) and includes
	// the findings in the response; Remarks includes the optimizer's
	// structured fusion/contraction remarks.
	Lint    bool `json:"lint,omitempty"`
	Remarks bool `json:"remarks,omitempty"`

	// Run options (ignored by /compile). Dist runs the distributed
	// interpreter (requires procs > 1).
	Dist     bool  `json:"dist,omitempty"`
	MaxSteps int64 `json:"max_steps,omitempty"`

	// TimeoutMS overrides the server's default request deadline,
	// capped at Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CompileResponse is the JSON reply of /compile (and embedded in
// RunResponse).
type CompileResponse struct {
	Key    string `json:"key"`    // content address (hex SHA-256)
	Cached bool   `json:"cached"` // served from the cache
	Dedup  bool   `json:"dedup"`  // joined an in-flight identical compile
	// Tier names the cache tier that served the artifact: "mem",
	// "disk" (rehydrated across a restart), "peer" (fetched from the
	// key's owner node), or "" for a fresh compile.
	Tier       string `json:"tier,omitempty"`
	Plan       string `json:"plan"` // fusion/contraction summary
	NestCount  int    `json:"nest_count"`
	Arrays     int    `json:"arrays"`
	Contracted int    `json:"contracted"`
	GoSource   string `json:"go_source,omitempty"`

	// Artifact is the native store's content address of the built
	// binary (backend "go" only).
	Artifact string `json:"artifact,omitempty"`

	// Lint carries the lint findings when the request set lint; Remarks
	// the optimization remarks when it set remarks.
	Lint    []lint.Finding  `json:"lint,omitempty"`
	Remarks []remark.Remark `json:"remarks,omitempty"`

	// Bounds summarizes the abstract-interpretation bounds prover
	// (absent when the request set noprove).
	Bounds *BoundsSummary `json:"bounds,omitempty"`

	// Races summarizes the happens-before race & deadlock analyzer
	// (distributed compilations only). A successful compilation always
	// has zero races and deadlocks — the analyzer is a compile gate —
	// so the census reports what was proven, not what slipped through.
	Races *RaceSummary `json:"races,omitempty"`
}

// BoundsSummary is the prover's verdict census for one compilation.
type BoundsSummary struct {
	Sites   int `json:"sites"`
	Proven  int `json:"proven"`
	Unknown int `json:"unknown,omitempty"`
	Unsafe  int `json:"unsafe,omitempty"`
}

// RaceSummary is the happens-before analyzer's verdict census for one
// distributed compilation.
type RaceSummary struct {
	Pairs     int `json:"pairs"`   // conflicting cross-processor access pairs
	Ordered   int `json:"ordered"` // proven happens-before ordered
	Race      int `json:"race,omitempty"`
	Unknown   int `json:"unknown,omitempty"`
	Deadlocks int `json:"deadlocks,omitempty"`
}

// RunResponse is the JSON reply of /run.
type RunResponse struct {
	CompileResponse
	Output      string  `json:"output"`
	Steps       int64   `json:"steps,omitempty"` // sequential runs only
	MemoryBytes int64   `json:"memory_bytes,omitempty"`
	Procs       int     `json:"procs,omitempty"` // distributed runs only
	RunMS       float64 `json:"run_ms"`

	// Native-backend runs only.
	Backend   string  `json:"backend,omitempty"`    // "go"
	BuildHit  bool    `json:"build_hit,omitempty"`  // binary served from the store
	BuildMS   float64 `json:"build_ms,omitempty"`   // artifact lookup/build time
	ComputeMS float64 `json:"compute_ms,omitempty"` // binary's self-timed za_main
}

// ErrorResponse is the JSON reply of every non-2xx outcome.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: bad_request, too_large,
	// compile_error, runtime_error, timeout, overloaded, draining.
	Kind string `json:"kind"`
}

// Server is one service instance.
type Server struct {
	cfg      Config
	cache    store.Store    // tiered compilation cache (mem + disk + peers)
	tcache   store.Store    // tiered tuned-plan cache (Entry.Aux payloads)
	node     *store.Node    // cluster membership; nil when unclustered
	disk     *store.Disk    // disk tier; nil when CacheDir is unset
	bstore   *backend.Store // native-artifact store; nil when no toolchain
	metrics  *Metrics
	sem      chan struct{} // worker-pool slots
	queue    chan struct{} // admission tickets (workers + waiting)
	draining atomic.Bool
	logMu    chan struct{} // serializes log lines (n=1 semaphore)
	warns    []string      // startup degradations (for logs and /cluster)
}

// New builds a server from cfg (zero value is fully usable).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		sem:     make(chan struct{}, cfg.Workers),
		queue:   make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		logMu:   make(chan struct{}, 1),
	}
	if backend.Available() {
		// A store that fails to open (read-only cache dir, say) leaves
		// the native backend unavailable rather than killing the whole
		// service; VM and dist runs are unaffected.
		if st, err := backend.Open(cfg.ArtifactDir); err == nil {
			s.bstore = st
		}
	}

	// Assemble the tiered compilation store. Every tier degrades
	// independently: a disk that fails to open or a missing member
	// list just drops that tier, never the service.
	if cfg.CacheDir != "" {
		d, err := store.OpenDisk(cfg.CacheDir)
		if err != nil {
			s.warns = append(s.warns, fmt.Sprintf("disk tier disabled: %v", err))
		} else {
			s.disk = d
		}
	}
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			s.warns = append(s.warns, "peer tier disabled: peers configured without self address")
		} else {
			s.node = store.NewNode(store.NodeConfig{
				Self:     cfg.Self,
				Peers:    cfg.Peers,
				Disk:     s.disk,
				Timeout:  cfg.PeerTimeout,
				ClaimTTL: cfg.ClaimTTL,
				WaitCap:  cfg.PeerWait,
				MaxBytes: cfg.MaxPeerBytes,
			})
		}
	}
	cmem := ccache.New(cfg.CacheBytes)
	tmem := ccache.New(cfg.TuneCacheBytes)
	if s.node != nil {
		// Peers are served out of the hot tiers too; the kind filter
		// routes incoming puts to the right cache.
		s.node.RegisterLocal("compile", cmem, func(k ccache.ArtifactKind) bool { return k != ccache.ArtifactTune })
		s.node.RegisterLocal("tune", tmem, func(k ccache.ArtifactKind) bool { return k == ccache.ArtifactTune })
	}
	s.cache = store.NewTiered(cmem, s.disk, s.node)
	s.tcache = store.NewTiered(tmem, s.disk, s.node)
	return s
}

// NativeAvailable reports whether this server can serve backend "go"
// requests (toolchain present and the artifact store opened).
func (s *Server) NativeAvailable() bool { return s.bstore != nil }

// Clustered reports whether the peer tier is active.
func (s *Server) Clustered() bool { return s.node != nil }

// Warnings lists startup degradations (disabled tiers).
func (s *Server) Warnings() []string { return append([]string(nil), s.warns...) }

// Metrics exposes the registry (for embedding and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats exposes the compilation cache counters, aggregated
// across tiers (Hits = any tier, Misses = compiles run here).
func (s *Server) CacheStats() ccache.Stats { return s.cache.Stats() }

// TuneCacheStats exposes the tuned-plan cache counters.
func (s *Server) TuneCacheStats() ccache.Stats { return s.tcache.Stats() }

// SetDraining flips the drain flag: new work is refused with 503 while
// in-flight requests finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", func(w http.ResponseWriter, r *http.Request) { s.serve(w, r, false) })
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) { s.serve(w, r, true) })
	mux.HandleFunc("/tune", s.handleTune)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/cluster", s.handleCluster)
	if s.node != nil {
		mux.HandleFunc("/store/get", s.node.ServeGet)
		mux.HandleFunc("/store/put", s.node.ServePut)
	}
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, s.metrics.Render(s.cache.Stats(), s.tcache.Stats()))
	io.WriteString(w, RenderStoreMetrics(s.cache.TierStats(), s.tcache.TierStats(), s.node))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
	// One compact cluster line for passive probes; /cluster has the
	// full JSON picture.
	if s.node != nil {
		fmt.Fprintf(w, "cluster self=%s members=%d\n", s.node.Self(), len(s.node.Members()))
	}
	ts := s.cache.TierStats()
	fmt.Fprintf(w, "store mem=%d disk=%d\n", ts.Mem.Entries, ts.Disk.Entries)
}

// fail writes the error reply and records it.
func (s *Server) fail(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Kind: kind})
}

// serve handles /compile (run=false) and /run (run=true).
func (s *Server) serve(w http.ResponseWriter, r *http.Request, run bool) {
	endpoint := "/compile"
	if run {
		endpoint = "/run"
	}
	t0 := time.Now()
	status, kind, outcome := http.StatusOK, "", ""
	defer func() {
		d := time.Since(t0)
		s.metrics.Request(endpoint, status, d)
		s.logRequest(r, endpoint, status, kind, outcome, d)
	}()

	if s.draining.Load() {
		s.metrics.Drained()
		status, kind = http.StatusServiceUnavailable, "draining"
		s.fail(w, status, kind, "server is draining")
		return
	}
	if r.Method != http.MethodPost {
		status, kind = http.StatusMethodNotAllowed, "bad_request"
		s.fail(w, status, kind, "POST a JSON request body")
		return
	}

	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, kind = http.StatusRequestEntityTooLarge, "too_large"
			s.fail(w, status, kind, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		status, kind = http.StatusBadRequest, "bad_request"
		s.fail(w, status, kind, "bad request JSON: "+err.Error())
		return
	}

	src, opt, err := s.resolve(&req, run)
	if err != nil {
		status, kind = http.StatusBadRequest, "bad_request"
		s.fail(w, status, kind, err.Error())
		return
	}

	// Admission: a full queue means the pool plus the waiting room are
	// saturated — shed load instead of stacking goroutines.
	select {
	case s.queue <- struct{}{}:
	default:
		s.metrics.Rejected()
		status, kind = http.StatusTooManyRequests, "overloaded"
		s.fail(w, status, kind, fmt.Sprintf("queue full (%d waiting)", cap(s.queue)))
		return
	}
	defer func() { <-s.queue }()

	// Per-request deadline, threaded through compile and run.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// A worker-pool slot; waiting counts against the deadline.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		status, kind = statusForCtx(ctx.Err())
		s.fail(w, status, kind, "deadline expired while queued")
		return
	}
	defer func() { <-s.sem }()
	s.metrics.IncInflight()
	defer s.metrics.DecInflight()

	akind := ccache.ArtifactIR
	if opt.Backend.Native() {
		akind = ccache.ArtifactNative
	}
	key := ccache.KeyOfKind(src, opt, akind)
	entry, res, err := s.cache.GetOrCompute(ctx, key, func() (*ccache.Entry, error) {
		hooked := opt
		start, end := s.metrics.Phases.StartEnd()
		hooked.Hooks = driver.Hooks{PhaseStart: start, PhaseEnd: end}
		c, err := driver.CompileCtx(ctx, src, hooked)
		if err != nil {
			return nil, err
		}
		e := &ccache.Entry{Kind: akind, Source: src, Comp: c, Plan: planSummary(c), Meta: metaOf(c)}
		// The generated Go rides in the artifact so emit_go requests
		// hit too; gogen cannot emit distributed programs.
		if opt.Comm == nil {
			start("gogen")
			goSrc, err := gogen.EmitBounds(c.LIR, c.Bounds)
			end("gogen")
			if err == nil {
				e.GoSrc = goSrc
			} else if opt.Backend.Native() {
				// On the VM path a failed emission only degrades
				// emit_go; on the native path there is nothing to run.
				return nil, err
			}
		}
		if opt.Backend.Native() {
			start("backend_build")
			art, berr := s.bstore.Build(ctx, e.GoSrc)
			end("backend_build")
			if berr != nil {
				// *backend.BuildError flows to the compile_error reply
				// (422) with the toolchain diagnostics in the body.
				s.metrics.BackendBuild("error")
				return nil, berr
			}
			if art.Hit {
				s.metrics.BackendBuild("hit")
			} else {
				s.metrics.BackendBuild("miss")
			}
			e.Bin, e.BinKey = art.Bin, art.Key
		}
		return e, nil
	})
	lookup := res.Outcome
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status, kind = statusForCtx(err)
			s.fail(w, status, kind, "compile aborted: "+err.Error())
			return
		}
		status, kind = http.StatusUnprocessableEntity, "compile_error"
		s.fail(w, status, kind, err.Error())
		return
	}
	outcome = lookup.String()

	cresp := CompileResponse{
		Key:      entry.Key.String(),
		Cached:   lookup == ccache.Hit,
		Dedup:    lookup == ccache.Dedup,
		Tier:     res.Tier,
		Plan:     entry.Plan,
		Artifact: entry.BinKey,
	}
	// The response metadata comes from the serializable Meta, never
	// from Comp.AIR/Comp.Plan: an entry rehydrated from the disk or
	// peer tier carries only the executable LIR plus Meta.
	if m := entry.Meta; m != nil {
		cresp.NestCount = m.NestCount
		cresp.Arrays = m.Arrays
		cresp.Contracted = m.Contracted
		if b := m.Bounds; b != nil {
			cresp.Bounds = &BoundsSummary{
				Sites: b.Sites, Proven: b.Proven,
				Unknown: b.Unknown, Unsafe: b.Unsafe,
			}
		}
		if rr := m.Races; rr != nil {
			cresp.Races = &RaceSummary{
				Pairs: rr.Pairs, Ordered: rr.Ordered,
				Race: rr.Race, Unknown: rr.Unknown, Deadlocks: rr.Deadlocks,
			}
		}
	}
	if req.EmitGo {
		cresp.GoSource = entry.GoSrc
	}
	if lookup == ccache.Miss && entry.Comp.Plan != nil {
		// Count each plan's remarks once, at compile time; cache hits
		// would multiply them by request rate. A miss always compiled
		// locally, so the full Compilation is present.
		s.metrics.Remarks(remark.CountByKind(entry.Comp.Plan.Remarks))
		if entry.Comp.Bounds != nil {
			s.metrics.Bounds(entry.Comp.Bounds)
		}
		if entry.Comp.Races != nil {
			s.metrics.Races(entry.Comp.Races)
		}
	}
	if req.Remarks && entry.Meta != nil {
		if uerr := json.Unmarshal(entry.Meta.RemarksJSON, &cresp.Remarks); uerr != nil {
			cresp.Remarks = nil
		}
	}
	if req.Lint {
		name := "source"
		if req.Bench != "" {
			name = "bench:" + req.Bench
		}
		res, lerr := lint.Run(src, lint.Options{File: name, Level: opt.Level, Configs: req.Configs})
		if lerr != nil {
			// The main compile succeeded, so a sequential lint compile
			// cannot fail; surface the inconsistency rather than hide it.
			status, kind = http.StatusUnprocessableEntity, "compile_error"
			s.fail(w, status, kind, "lint: "+lerr.Error())
			return
		}
		cresp.Lint = res.Findings
		s.metrics.Lint(res.Findings)
	}

	w.Header().Set("Content-Type", "application/json")
	if !run {
		json.NewEncoder(w).Encode(cresp)
		return
	}

	resp, runStatus, runKind, err := s.execute(ctx, entry, &req)
	if err != nil {
		status, kind = runStatus, runKind
		s.fail(w, status, kind, err.Error())
		return
	}
	resp.CompileResponse = cresp
	json.NewEncoder(w).Encode(resp)
}

// execute runs a cached compilation on the requested backend.
func (s *Server) execute(ctx context.Context, entry *ccache.Entry, req *Request) (*RunResponse, int, string, error) {
	if entry.Kind == ccache.ArtifactNative {
		return s.executeNative(ctx, entry)
	}
	maxSteps := req.MaxSteps
	if maxSteps <= 0 {
		maxSteps = s.cfg.MaxSteps
	}
	var out bytes.Buffer
	t0 := time.Now()
	resp := &RunResponse{}
	var err error
	if req.Dist {
		var dm *distvm.Machine
		dm, err = distvm.Run(entry.Comp.LIR, distvm.Options{
			Procs: req.Procs, Out: &out, MaxSteps: maxSteps, Ctx: ctx,
		})
		if err == nil {
			if scErr := dm.ScalarsConsistent(); scErr != nil {
				err = fmt.Errorf("replicated-scalar invariant violated: %w", scErr)
			}
			resp.Procs = req.Procs
		}
	} else {
		var m *vm.Machine
		var res *vm.Result
		m, res, err = vm.Run(entry.Comp.LIR, vm.Options{Out: &out, MaxSteps: maxSteps, Ctx: ctx})
		if err == nil {
			resp.Steps = res.Steps
			resp.MemoryBytes = m.MemoryFootprint()
		}
	}
	d := time.Since(t0)
	s.metrics.Phases.Observe("run", d)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			st, kind := statusForCtx(err)
			return nil, st, kind, fmt.Errorf("run aborted: %w", err)
		}
		return nil, http.StatusInternalServerError, "runtime_error", err
	}
	resp.Output = out.String()
	resp.RunMS = float64(d) / float64(time.Millisecond)
	return resp, http.StatusOK, "", nil
}

// executeNative runs a native-backend entry: the binary is re-derived
// from the store (content-addressed on the cached Go source, so this
// is normally an instant hit — and a rebuild if the store directory
// was wiped underneath a live ccache entry) and executed. A runtime
// trap in the binary maps to 500 runtime_error; a deadline to 504.
func (s *Server) executeNative(ctx context.Context, entry *ccache.Entry) (*RunResponse, int, string, error) {
	if s.bstore == nil {
		// Unreachable after resolve, but a nil store must not panic.
		return nil, http.StatusBadRequest, "bad_request", fmt.Errorf("native backend unavailable")
	}
	t0 := time.Now()
	art, err := s.bstore.Build(ctx, entry.GoSrc)
	buildD := time.Since(t0)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			st, kind := statusForCtx(err)
			return nil, st, kind, fmt.Errorf("native build aborted: %w", err)
		}
		var berr *backend.BuildError
		if errors.As(err, &berr) {
			return nil, http.StatusUnprocessableEntity, "compile_error", err
		}
		return nil, http.StatusInternalServerError, "runtime_error", err
	}
	var out bytes.Buffer
	t1 := time.Now()
	stats, err := art.Run(ctx, &out)
	d := time.Since(t1)
	s.metrics.Phases.Observe("run", d)
	if err != nil {
		s.metrics.BackendRun("go", false)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			st, kind := statusForCtx(err)
			return nil, st, kind, fmt.Errorf("run aborted: %w", err)
		}
		return nil, http.StatusInternalServerError, "runtime_error", err
	}
	s.metrics.BackendRun("go", true)
	return &RunResponse{
		Output:    out.String(),
		RunMS:     float64(d) / float64(time.Millisecond),
		Backend:   string(driver.BackendGo),
		BuildHit:  art.Hit,
		BuildMS:   float64(buildD) / float64(time.Millisecond),
		ComputeMS: float64(stats.Compute) / float64(time.Millisecond),
	}, http.StatusOK, "", nil
}

// statusForCtx maps a context error to (status, kind): an expired
// deadline is a 504 timeout; a client disconnect is reported as 499
// (nginx's convention; the client is gone either way).
func statusForCtx(err error) (int, string) {
	if errors.Is(err, context.Canceled) {
		return 499, "canceled"
	}
	return http.StatusGatewayTimeout, "timeout"
}

// resolve validates the request and builds the driver options.
func (s *Server) resolve(req *Request, run bool) (string, driver.Options, error) {
	var opt driver.Options
	var src string
	switch {
	case req.Source != "" && req.Bench != "":
		return "", opt, fmt.Errorf("pass source or bench, not both")
	case req.Bench != "":
		b, ok := programs.ByName(req.Bench)
		if !ok {
			return "", opt, fmt.Errorf("unknown benchmark %q", req.Bench)
		}
		src = b.Source
	case req.Source != "":
		src = req.Source
	default:
		return "", opt, fmt.Errorf("pass source or bench")
	}

	levelName := req.Level
	if levelName == "" {
		levelName = "c2+f3"
	}
	lvl, err := core.ParseLevel(levelName)
	if err != nil {
		return "", opt, err
	}
	be, err := driver.ParseBackend(req.Backend)
	if err != nil {
		return "", opt, err
	}
	if be.Native() {
		// Mirror zplrun's rejections: native code is the sequential
		// program, so the interpreter-only knobs are refused rather
		// than silently ignored.
		switch {
		case req.Dist:
			return "", opt, fmt.Errorf("backend %q cannot be combined with dist", req.Backend)
		case req.Procs > 1:
			return "", opt, fmt.Errorf("backend %q cannot be combined with procs > 1", req.Backend)
		case req.MaxSteps > 0:
			return "", opt, fmt.Errorf("backend %q does not support max_steps (step budgets are an interpreter feature)", req.Backend)
		}
		if s.bstore == nil {
			return "", opt, fmt.Errorf("native backend unavailable: no go toolchain on this host")
		}
	}
	opt = driver.Options{Level: lvl, Configs: req.Configs, ScalarReplace: req.ScalarRep, Check: req.Check, Backend: be,
		NoProve: req.NoProve}

	if req.Procs > 1 {
		co := comm.DefaultOptions(req.Procs)
		switch req.Strategy {
		case "", "favor-fusion":
		case "favor-comm":
			co.Strategy = comm.FavorComm
		default:
			return "", opt, fmt.Errorf("unknown strategy %q (want favor-fusion or favor-comm)", req.Strategy)
		}
		opt.Comm = &co
	} else if req.Strategy != "" && req.Strategy != "favor-fusion" {
		return "", opt, fmt.Errorf("strategy %q requires procs > 1", req.Strategy)
	}
	if req.Dist && !run {
		return "", opt, fmt.Errorf("dist applies to /run only")
	}
	if req.Dist && req.Procs < 2 {
		return "", opt, fmt.Errorf("dist requires procs > 1")
	}
	if req.EmitGo && req.Procs > 1 {
		return "", opt, fmt.Errorf("emit_go applies to sequential compilations only")
	}
	return src, opt, nil
}

// metaOf derives the serializable response metadata from a fresh
// compilation — the projection that travels with the entry through
// the disk and peer tiers, where the deep IR structures do not.
func metaOf(c *driver.Compilation) *ccache.Meta {
	counts := core.CountStaticArrays(c.AIR, c.Plan)
	m := &ccache.Meta{
		NestCount:  c.LIR.CountNests(),
		Arrays:     counts.Before(),
		Contracted: counts.ContractedCompiler + counts.ContractedUser,
	}
	if b := c.Bounds; b != nil {
		m.Bounds = &ccache.BoundsMeta{
			Sites: len(b.Sites), Proven: b.NumProven,
			Unknown: b.NumUnknown, Unsafe: b.NumUnsafe,
		}
	}
	if rr := c.Races; rr != nil {
		m.Races = &ccache.RaceMeta{
			Pairs: len(rr.Pairs), Ordered: rr.NumOrdered,
			Race: rr.NumRace, Unknown: rr.NumUnknown, Deadlocks: len(rr.Deadlocks),
		}
	}
	if buf, err := json.Marshal(c.Plan.Remarks); err == nil {
		m.RemarksJSON = buf
	}
	return m
}

// planSummary renders the experiment-ready plan metadata stored with
// the artifact (mirrors zplc -emit plan).
func planSummary(c *driver.Compilation) string {
	var b strings.Builder
	counts := core.CountStaticArrays(c.AIR, c.Plan)
	fmt.Fprintf(&b, "program %s at %s\n", c.AIR.Name, c.Plan.Level)
	fmt.Fprintf(&b, "static arrays: %d (%d compiler, %d user); contracted: %d\n",
		counts.Before(), counts.TotalCompiler, counts.TotalUser,
		counts.ContractedCompiler+counts.ContractedUser)
	fmt.Fprintf(&b, "loop nests after fusion: %d\n", c.LIR.CountNests())
	if c.Comm != nil {
		fmt.Fprintf(&b, "communication: %d inserted, %d eliminated, %d combined, %d pipelined\n",
			c.Comm.Inserted, c.Comm.Eliminated, c.Comm.Combined, c.Comm.Pipelined)
	}
	return b.String()
}

// logRequest appends one JSON line to the request log.
func (s *Server) logRequest(r *http.Request, endpoint string, status int, kind, outcome string, d time.Duration) {
	if s.cfg.Logs == nil {
		return
	}
	line := struct {
		Time     string  `json:"time"`
		Remote   string  `json:"remote"`
		Endpoint string  `json:"endpoint"`
		Status   int     `json:"status"`
		Kind     string  `json:"kind,omitempty"`
		Cache    string  `json:"cache,omitempty"`
		MS       float64 `json:"ms"`
	}{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Remote:   r.RemoteAddr,
		Endpoint: endpoint,
		Status:   status,
		Kind:     kind,
		Cache:    outcome,
		MS:       float64(d) / float64(time.Millisecond),
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.logMu <- struct{}{}
	s.cfg.Logs.Write(buf)
	<-s.logMu
}

// ServeListener runs the HTTP server on l until ctx is cancelled, then
// drains gracefully: the drain flag flips (healthz 503, new compile/run
// requests refused), the listener closes, and in-flight requests get
// DrainTimeout to finish before the server gives up on them.
func (s *Server) ServeListener(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return hs.Shutdown(drainCtx)
}
