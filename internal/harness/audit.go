package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/liveness"
	"repro/internal/programs"
	"repro/internal/remark"
)

// AuditRow is one (benchmark, level) audit of the optimizer's remarks:
// the remarks are re-derived from the final plan and cross-checked
// against it, so the row proves (or refutes, via Problems) that every
// negative decision carries a machine-readable explanation.
type AuditRow struct {
	Benchmark    string
	Level        core.Level
	UnfusedPairs int // edge-connected cluster pairs left unfused
	Uncontracted int // candidates and temporaries left uncontracted
	Remarks      int // total remarks recorded by the plan
	Problems     []string
}

// dependence-test IDs whose remarks must name a witness edge: the
// failure is a property of one concrete ASDG edge, so an explanation
// without the edge (variable, distance vector, dependence type) is
// unauditable.
var edgeTests = map[string]bool{
	remark.TestOrderingOnly:  true,
	remark.TestNullFlow:      true,
	remark.TestCarriedAnti:   true,
	remark.TestLoopStructure: true,
	remark.TestConfined:      true,
	remark.TestNullVector:    true,
}

// AuditRemarks compiles every built-in benchmark (the Fig. 7/8 suite)
// at each level and asserts the remark completeness property:
//
//   - every ASDG edge joining two distinct final clusters identifies a
//     fusible-candidate pair that was not fused; that pair has exactly
//     one not-fused remark, and no remark names a pair without such an
//     edge;
//   - every contraction candidate has exactly one contracted or
//     not-contracted remark, and every referenced compiler temporary
//     that ends up uncontracted has exactly one not-contracted remark
//     (from the contraction pass or the liveness pre-pass);
//   - every remark whose failed test is a dependence test names the
//     blocking edge with its variable, distance vector, and dependence
//     type.
func AuditRemarks(levels []core.Level) ([]AuditRow, error) {
	var rows []AuditRow
	for _, b := range programs.All() {
		for _, lvl := range levels {
			c, err := driver.Compile(b.Source, driver.Options{Level: lvl})
			if err != nil {
				return nil, fmt.Errorf("%s at %s: %w", b.Name, lvl, err)
			}
			rows = append(rows, auditOne(b.Name, lvl, c))
		}
	}
	return rows, nil
}

// AuditProblems counts the property violations across rows.
func AuditProblems(rows []AuditRow) int {
	n := 0
	for _, r := range rows {
		n += len(r.Problems)
	}
	return n
}

func auditOne(name string, lvl core.Level, c *driver.Compilation) AuditRow {
	row := AuditRow{Benchmark: name, Level: lvl, Remarks: len(c.Plan.Remarks)}
	problem := func(format string, args ...any) {
		row.Problems = append(row.Problems, fmt.Sprintf(format, args...))
	}

	// Index the plan's remarks by subject.
	type pairKey struct{ block, a, b int }
	notFused := map[pairKey]int{}
	notContracted := map[string]int{}
	contracted := map[string]int{}
	for _, r := range c.Plan.Remarks {
		switch {
		case r.Kind == remark.NotFused && r.Pair != nil:
			notFused[pairKey{r.Block, r.Pair[0], r.Pair[1]}]++
		case r.Kind == remark.NotContracted:
			notContracted[r.Array]++
		case r.Kind == remark.Contracted:
			contracted[r.Array]++
		}
		if r.Negative() && edgeTests[r.Test] {
			switch {
			case r.Edge == nil:
				problem("%s remark for %s fails %s but names no blocking edge", r.Kind, r.Subject(), r.Test)
			case r.Edge.Var == "" || r.Edge.Vector == "" || r.Edge.Dep == "":
				problem("%s remark for %s has an incomplete edge witness (var=%q vector=%q dep=%q)",
					r.Kind, r.Subject(), r.Edge.Var, r.Edge.Vector, r.Edge.Dep)
			}
		}
	}

	// Re-derive the unfused pairs from the final partitions.
	expected := map[pairKey]bool{}
	for bi, bp := range c.Plan.Blocks {
		g, p := bp.Graph, bp.Part
		for ei := range g.Edges {
			e := &g.Edges[ei]
			a, cc := p.ClusterOf(e.From), p.ClusterOf(e.To)
			if a == cc {
				continue
			}
			if cc < a {
				a, cc = cc, a
			}
			expected[pairKey{bi, a, cc}] = true
		}
	}
	row.UnfusedPairs = len(expected)
	for k := range expected {
		switch n := notFused[k]; {
		case n == 0:
			problem("unfused pair {v%d, v%d} in block %d has no remark", k.a, k.b, k.block)
		case n > 1:
			problem("unfused pair {v%d, v%d} in block %d has %d remarks, want exactly 1", k.a, k.b, k.block, n)
		}
	}
	for k := range notFused {
		if !expected[k] {
			problem("not-fused remark for {v%d, v%d} in block %d matches no partition edge", k.a, k.b, k.block)
		}
	}

	// Re-derive the contraction subjects: every candidate, plus every
	// referenced compiler temporary (candidate or not).
	_, verdicts := liveness.Explain(c.AIR)
	for _, v := range verdicts {
		temp := false
		if a := c.AIR.Arrays[v.Array]; a != nil {
			temp = a.Temp
		}
		switch {
		case c.Plan.Contracted[v.Array]:
			if n := contracted[v.Array]; n != 1 {
				problem("contracted array %s has %d remarks, want exactly 1", v.Array, n)
			}
		case v.Candidate || temp:
			row.Uncontracted++
			if n := notContracted[v.Array]; n != 1 {
				problem("uncontracted %s has %d remarks, want exactly 1", v.Array, n)
			}
		}
	}
	return row
}

// FormatAudit renders the audit table, listing any violations under
// the offending row.
func FormatAudit(rows []AuditRow) string {
	var b strings.Builder
	b.WriteString("Remark audit: every unfused pair and uncontracted array explained\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %13s %13s %8s %9s\n",
		"app", "level", "unfused pairs", "uncontracted", "remarks", "problems")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %13d %13d %8d %9d\n",
			r.Benchmark, r.Level, r.UnfusedPairs, r.Uncontracted, r.Remarks, len(r.Problems))
		for _, p := range r.Problems {
			fmt.Fprintf(&b, "    PROBLEM: %s\n", p)
		}
	}
	if n := AuditProblems(rows); n > 0 {
		fmt.Fprintf(&b, "\nAUDIT FAILED: %d problem(s)\n", n)
	} else {
		b.WriteString("\naudit clean: every negative decision carries a machine-readable explanation\n")
	}
	return b.String()
}
