package harness

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/programs"
	"repro/internal/vm"
)

// LatencyPoint is the favor-comm penalty at one message-startup cost.
type LatencyPoint struct {
	Alpha    float64
	Slowdown float64 // % slowdown of favor-comm versus favor-fusion
}

// RunLatencySensitivity probes the paper's closing conjecture — that
// integration matters even more on machines with cheap synchronization
// (SGI Origin class): as the message startup cost α falls, pipelining
// has less latency to hide, so sacrificing contraction to preserve
// overlap windows buys less and less while still paying the full
// memory-traffic price.
func RunLatencySensitivity(bench string, procs int, alphas []float64) ([]LatencyPoint, error) {
	b, ok := programs.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	cfg := map[string]int64{b.SizeConfig: b.DefaultSize / 2}

	ff := comm.DefaultOptions(procs)
	fc := comm.DefaultOptions(procs)
	fc.Strategy = comm.FavorComm

	cf, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.C2F3, Configs: cfg, Comm: &ff}))
	if err != nil {
		return nil, err
	}
	cc, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.C2F3, Configs: cfg, Comm: &fc}))
	if err != nil {
		return nil, err
	}

	// Each α point replays both compilations on fresh tracers; the
	// points share only the (immutable) compilations, so the sweep
	// runs on the worker pool.
	return parallelMap(alphas, func(_ int, alpha float64) (LatencyPoint, error) {
		model := machine.Origin().WithCommAlpha(alpha)
		fuse := machine.NewCostTracer(model, procs)
		if _, _, err := vm.Run(cf.LIR, vm.Options{Tracer: fuse}); err != nil {
			return LatencyPoint{}, err
		}
		commT := machine.NewCostTracer(model, procs)
		if _, _, err := vm.Run(cc.LIR, vm.Options{Tracer: commT}); err != nil {
			return LatencyPoint{}, err
		}
		return LatencyPoint{
			Alpha:    alpha,
			Slowdown: (commT.Cycles/fuse.Cycles - 1) * 100,
		}, nil
	})
}

// FormatLatency renders the sensitivity sweep.
func FormatLatency(bench string, procs int, pts []LatencyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Latency sensitivity (%s, p=%d, Origin-class model):\n", bench, procs)
	b.WriteString("favor-comm slowdown versus favor-fusion as message startup α falls\n\n")
	fmt.Fprintf(&b, "%12s %14s\n", "alpha", "slowdown")
	for _, p := range pts {
		fmt.Fprintf(&b, "%12.0f %13.1f%%\n", p.Alpha, p.Slowdown)
	}
	b.WriteString("\nThe penalty for sacrificing contraction persists even as the\n")
	b.WriteString("latency pipelining could hide disappears — the paper's conjecture\n")
	b.WriteString("that array-level integration matters more, not less, on\n")
	b.WriteString("low-synchronization-cost machines (§5.5, conclusion).\n")
	return b.String()
}
