package harness

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/programs"
)

// ProcCounts are the processor counts of Figs. 9–11.
var ProcCounts = []int{1, 4, 16, 64}

// PerfPoint is one (benchmark, processors, level) measurement: percent
// improvement over baseline on each machine model.
type PerfPoint struct {
	Benchmark   string
	Procs       int
	Level       core.Level
	Improvement map[string]float64 // machine -> %
	Cycles      map[string]float64
}

// PerfResult holds the whole ladder study.
type PerfResult struct {
	Points []PerfPoint
}

// SizeFactor scales the per-processor problem size for the study; 1.0
// uses each benchmark's default size. The paper scales total problem
// size with p (constant data per processor), which is what a fixed
// per-processor size under our one-representative-processor model
// reproduces.
type StudyOptions struct {
	SizeFactor float64
	// Levels to measure; nil means the full §5.4 ladder.
	Levels []core.Level
	// Procs to measure; nil means ProcCounts.
	Procs []int
	// Benchmarks to measure; nil means all six.
	Benchmarks []string
}

// RunPerfStudy executes the §5.4 transformation ladder for every
// benchmark and processor count, pricing each run on all three machine
// models in a single execution.
func RunPerfStudy(opt StudyOptions) (*PerfResult, error) {
	levels := opt.Levels
	if levels == nil {
		levels = core.Levels()
	}
	procs := opt.Procs
	if procs == nil {
		procs = ProcCounts
	}
	benches := programs.All()
	if opt.Benchmarks != nil {
		benches = benches[:0:0]
		for _, name := range opt.Benchmarks {
			b, ok := programs.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q", name)
			}
			benches = append(benches, b)
		}
	}
	factor := opt.SizeFactor
	if factor == 0 {
		factor = 1
	}

	// Flatten the study into independent (benchmark, procs, level)
	// measurements, run them on the worker pool, then assemble the
	// ladder in the original order — improvements are computed after
	// the fact from each (benchmark, procs) group's baseline point, so
	// the result is identical to the sequential traversal.
	type task struct {
		bench programs.Benchmark
		cfg   map[string]int64
		procs int
		level core.Level
	}
	var tasks []task
	for _, b := range benches {
		size := int64(float64(b.DefaultSize) * factor)
		if size < 8 {
			size = 8
		}
		cfg := map[string]int64{b.SizeConfig: size}
		for _, p := range procs {
			for _, lvl := range levels {
				tasks = append(tasks, task{bench: b, cfg: cfg, procs: p, level: lvl})
			}
		}
	}

	meas, err := parallelMap(tasks, func(_ int, t task) (*Measurement, error) {
		co := comm.DefaultOptions(t.procs)
		m, err := Measure(t.bench.Source, driver.Options{
			Level: t.level, Configs: t.cfg, Comm: &co,
		}, t.procs)
		if err != nil {
			return nil, fmt.Errorf("%s p=%d %v: %w", t.bench.Name, t.procs, t.level, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}

	res := &PerfResult{}
	baselines := map[string]map[string]float64{}
	for i, t := range tasks {
		if t.level == core.Baseline {
			baselines[fmt.Sprintf("%s/%d", t.bench.Name, t.procs)] = meas[i].Cycles
		}
	}
	for i, t := range tasks {
		baseline := baselines[fmt.Sprintf("%s/%d", t.bench.Name, t.procs)]
		pt := PerfPoint{
			Benchmark:   t.bench.Name,
			Procs:       t.procs,
			Level:       t.level,
			Improvement: map[string]float64{},
			Cycles:      meas[i].Cycles,
		}
		for m, c := range meas[i].Cycles {
			pt.Improvement[m] = Improvement(baseline[m], c)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Point returns the measurement for (benchmark, procs, level), or nil.
func (r *PerfResult) Point(bench string, procs int, lvl core.Level) *PerfPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Benchmark == bench && p.Procs == procs && p.Level == lvl {
			return p
		}
	}
	return nil
}

// FormatMachine renders the Figure 9/10/11 table for one machine:
// benchmarks × processor counts, one column per transformation.
func (r *PerfResult) FormatMachine(mach string, figure string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %% improvement over baseline on the %s model\n", figure, mach)
	b.WriteString("(positive = speedup from the transformation; §5.4 ladder)\n\n")

	var benches []string
	seen := map[string]bool{}
	var procs []int
	seenP := map[int]bool{}
	var levels []core.Level
	seenL := map[core.Level]bool{}
	for _, p := range r.Points {
		if !seen[p.Benchmark] {
			seen[p.Benchmark] = true
			benches = append(benches, p.Benchmark)
		}
		if !seenP[p.Procs] {
			seenP[p.Procs] = true
			procs = append(procs, p.Procs)
		}
		if !seenL[p.Level] && p.Level != core.Baseline {
			seenL[p.Level] = true
			levels = append(levels, p.Level)
		}
	}

	for _, bench := range benches {
		fmt.Fprintf(&b, "%s\n", bench)
		fmt.Fprintf(&b, "  %4s", "p")
		for _, lvl := range levels {
			fmt.Fprintf(&b, " %9s", lvl)
		}
		b.WriteString("\n")
		for _, p := range procs {
			fmt.Fprintf(&b, "  %4d", p)
			for _, lvl := range levels {
				pt := r.Point(bench, p, lvl)
				if pt == nil {
					fmt.Fprintf(&b, " %9s", "-")
					continue
				}
				fmt.Fprintf(&b, " %8.1f%%", pt.Improvement[mach])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Headline summarizes the paper's §1 claim over the study: the median
// and maximum c2 improvement across benchmarks, machines, and p.
func (r *PerfResult) Headline() (median, max float64) {
	var vals []float64
	for _, p := range r.Points {
		if p.Level != core.C2 {
			continue
		}
		for _, m := range machine.Models() {
			vals = append(vals, p.Improvement[m.Name])
		}
	}
	if len(vals) == 0 {
		return 0, 0
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2], vals[len(vals)-1]
}
