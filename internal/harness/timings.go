package harness

import (
	"sync/atomic"

	"repro/internal/driver"
	"repro/internal/phase"
)

// timings, when non-nil, aggregates per-phase compile latencies across
// every driver.Compile the harness issues (the same phase.Collector
// mechanism zpld's metrics use). Enabled by SetTimings; the collector
// pointer is swapped atomically because measurements run on a worker
// pool.
var timings atomic.Pointer[phase.Collector]

// SetTimings enables (or disables) pipeline phase-timing collection
// for subsequent harness runs. Enabling resets any prior collection.
func SetTimings(on bool) {
	if on {
		timings.Store(phase.NewCollector())
	} else {
		timings.Store(nil)
	}
}

// TimingsReport formats the phase timings collected since SetTimings;
// it returns "" when collection is disabled or nothing ran.
func TimingsReport() string {
	c := timings.Load()
	if c == nil || len(c.Names()) == 0 {
		return ""
	}
	return "Pipeline phase timings across all measurements:\n" + c.Format()
}

// hooked attaches phase-timing hooks to opt when collection is
// enabled. Each call builds a fresh hook pair, so concurrent
// measurements never share per-compile state.
func hooked(opt driver.Options) driver.Options {
	c := timings.Load()
	if c == nil {
		return opt
	}
	start, end := c.StartEnd()
	opt.Hooks = driver.Hooks{PhaseStart: start, PhaseEnd: end}
	return opt
}
