package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/gogen"
	"repro/internal/programs"
	"repro/internal/vm"
)

// ProveRow is one benchmark × level cell of the bounds-prover study:
// the prover's verdict census, the differential soundness check (the
// unchecked execution must be byte-identical to the checked one on
// both engines), and the wall-clock cost of the eliminated checks.
type ProveRow struct {
	Benchmark string `json:"benchmark"`
	Level     string `json:"level"`

	Sites     int     `json:"sites"`
	Proven    int     `json:"proven"`
	Unknown   int     `json:"unknown"`
	Unsafe    int     `json:"unsafe"`
	ProvenPct float64 `json:"proven_pct"` // 100 when every site is proven (or there are none)

	Match bool `json:"match"` // checked/unchecked outputs byte-identical, VM and native

	VMCheckedMS   float64 `json:"vm_checked_ms"`
	VMUncheckedMS float64 `json:"vm_unchecked_ms"`
	VMSpeedup     float64 `json:"vm_speedup"`

	NativeCheckedMS   float64 `json:"native_checked_ms"`
	NativeUncheckedMS float64 `json:"native_unchecked_ms"`
	NativeSpeedup     float64 `json:"native_speedup"`

	ScaffoldElided bool `json:"scaffold_elided"` // AllProven: no trap scaffold in the emission
}

// proveLevels are the ladder ends the study measures: the unoptimized
// program and the full fusion+contraction pipeline (the acceptance
// condition reads the latter).
func proveLevels() []core.Level { return []core.Level{core.Baseline, core.C2F4} }

// nativeBest builds src and returns the binary's best-of-N self-timed
// compute (minimum over runs — the native compute is microseconds, so
// a single sample is scheduler noise) plus the first run's output.
func nativeBest(store *backend.Store, src string, runs int) (time.Duration, string, error) {
	art, err := store.Build(context.Background(), src)
	if err != nil {
		return 0, "", err
	}
	var out bytes.Buffer
	stats, err := art.Run(context.Background(), &out)
	if err != nil {
		return 0, "", err
	}
	best := stats.Compute
	if best <= 0 {
		best = stats.Wall
	}
	for i := 1; i < runs; i++ {
		stats, err := art.Run(context.Background(), io.Discard)
		if err != nil {
			return 0, "", err
		}
		d := stats.Compute
		if d <= 0 {
			d = stats.Wall
		}
		if d < best {
			best = d
		}
	}
	return best, out.String(), nil
}

// RunProve measures every benchmark at both ladder ends: the prover's
// coverage, the checked-vs-unchecked differential on both engines, and
// the speedup check elimination buys. Any divergence is an error, not
// a row — an unsound proof invalidates the study.
func RunProve(store *backend.Store, sizeFactor float64) ([]ProveRow, error) {
	if sizeFactor == 0 {
		sizeFactor = 1
	}
	const nativeRuns = 5
	type cell struct {
		b   programs.Benchmark
		lvl core.Level
	}
	var cells []cell
	for _, b := range programs.All() {
		for _, lvl := range proveLevels() {
			cells = append(cells, cell{b, lvl})
		}
	}
	return parallelMap(cells, func(_ int, c cell) (ProveRow, error) {
		size := int64(float64(c.b.DefaultSize) * sizeFactor)
		if size < 8 {
			size = 8
		}
		comp, err := driver.Compile(c.b.Source, hooked(driver.Options{
			Level:   c.lvl,
			Configs: map[string]int64{c.b.SizeConfig: size},
		}))
		if err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: %w", c.b.Name, c.lvl, err)
		}
		bounds := comp.Bounds
		if bounds == nil {
			return ProveRow{}, fmt.Errorf("%s at %s: compilation carries no bounds result", c.b.Name, c.lvl)
		}

		// VM, fully checked: the prover's result withheld.
		var vmChk bytes.Buffer
		t0 := time.Now()
		if _, _, err := vm.Run(comp.LIR, vm.Options{Out: &vmChk}); err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: vm checked: %w", c.b.Name, c.lvl, err)
		}
		vmChkD := time.Since(t0)

		// VM, proof-carrying: proven sites dispatch unchecked.
		var vmUnchk bytes.Buffer
		t0 = time.Now()
		if _, _, err := comp.Run(vm.Options{Out: &vmUnchk}); err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: vm unchecked: %w", c.b.Name, c.lvl, err)
		}
		vmUnchkD := time.Since(t0)
		if vmUnchk.String() != vmChk.String() {
			return ProveRow{}, fmt.Errorf("%s at %s: VM unchecked output diverges from checked", c.b.Name, c.lvl)
		}

		// Native, both emissions: every check kept vs proven checks
		// dropped (and the trap scaffold elided when all are proven).
		checkedSrc, err := gogen.EmitBounds(comp.LIR, nil)
		if err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: emit checked: %w", c.b.Name, c.lvl, err)
		}
		uncheckedSrc, err := gogen.EmitBounds(comp.LIR, bounds)
		if err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: emit unchecked: %w", c.b.Name, c.lvl, err)
		}
		natChkD, natChkOut, err := nativeBest(store, checkedSrc, nativeRuns)
		if err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: native checked: %w", c.b.Name, c.lvl, err)
		}
		natUnchkD, natUnchkOut, err := nativeBest(store, uncheckedSrc, nativeRuns)
		if err != nil {
			return ProveRow{}, fmt.Errorf("%s at %s: native unchecked: %w", c.b.Name, c.lvl, err)
		}
		if natChkOut != vmChk.String() {
			return ProveRow{}, fmt.Errorf("%s at %s: native checked output diverges from VM", c.b.Name, c.lvl)
		}
		if natUnchkOut != vmChk.String() {
			return ProveRow{}, fmt.Errorf("%s at %s: native unchecked output diverges from VM", c.b.Name, c.lvl)
		}

		row := ProveRow{
			Benchmark: c.b.Name,
			Level:     c.lvl.String(),
			Sites:     len(bounds.Sites),
			Proven:    bounds.NumProven,
			Unknown:   bounds.NumUnknown,
			Unsafe:    bounds.NumUnsafe,
			ProvenPct: 100,
			Match:     true,

			VMCheckedMS:       float64(vmChkD) / float64(time.Millisecond),
			VMUncheckedMS:     float64(vmUnchkD) / float64(time.Millisecond),
			NativeCheckedMS:   float64(natChkD) / float64(time.Millisecond),
			NativeUncheckedMS: float64(natUnchkD) / float64(time.Millisecond),

			ScaffoldElided: bounds.AllProven(),
		}
		if len(bounds.Sites) > 0 {
			row.ProvenPct = float64(bounds.NumProven) / float64(len(bounds.Sites)) * 100
		}
		if vmUnchkD > 0 {
			row.VMSpeedup = float64(vmChkD) / float64(vmUnchkD)
		}
		if natUnchkD > 0 {
			row.NativeSpeedup = float64(natChkD) / float64(natUnchkD)
		}
		return row, nil
	})
}

// FormatProve renders the coverage and speedup table plus the summary
// line the acceptance check reads.
func FormatProve(rows []ProveRow) string {
	var b strings.Builder
	b.WriteString("Bounds prover: abstract-interpretation coverage and the cost of the\n")
	b.WriteString("eliminated checks (checked vs proof-carrying, both engines; outputs\n")
	b.WriteString("asserted bit-identical cell by cell)\n\n")
	fmt.Fprintf(&b, "%-10s %-10s %6s %7s %8s %11s %11s %8s %11s %11s %8s\n",
		"app", "level", "sites", "proven", "rate", "vm chk ms", "vm unchk", "speedup",
		"nat chk ms", "nat unchk", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s %6d %7d %7.0f%% %11.2f %11.2f %7.2fx %11.4f %11.4f %7.2fx\n",
			r.Benchmark, r.Level, r.Sites, r.Proven, r.ProvenPct,
			r.VMCheckedMS, r.VMUncheckedMS, r.VMSpeedup,
			r.NativeCheckedMS, r.NativeUncheckedMS, r.NativeSpeedup)
	}

	// Aggregates: worst-case coverage and the geometric-mean speedup of
	// elimination (cells with sites only; a fully contracted program
	// has nothing to eliminate).
	minRate := 100.0
	vmGeo, natGeo, n := 0.0, 0.0, 0
	elided := 0
	for _, r := range rows {
		if r.ProvenPct < minRate {
			minRate = r.ProvenPct
		}
		if r.ScaffoldElided {
			elided++
		}
		if r.Sites > 0 && r.VMSpeedup > 0 && r.NativeSpeedup > 0 {
			vmGeo += math.Log(r.VMSpeedup)
			natGeo += math.Log(r.NativeSpeedup)
			n++
		}
	}
	fmt.Fprintf(&b, "\nproven-site coverage: min %.0f%% across %d cells; trap scaffold elided in %d/%d\n",
		minRate, len(rows), elided, len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "check-elimination speedup (geomean over %d cells with sites): VM %.2fx, native %.2fx\n",
			n, math.Exp(vmGeo/float64(n)), math.Exp(natGeo/float64(n)))
	}
	fmt.Fprintf(&b, "every cell bit-identical: %t\n", allProveMatch(rows))
	return b.String()
}

func allProveMatch(rows []ProveRow) bool {
	for _, r := range rows {
		if !r.Match {
			return false
		}
	}
	return true
}

// MinProvenRate returns the worst per-cell proven percentage — the
// acceptance condition requires it ≥ 90 at full optimization.
func MinProvenRate(rows []ProveRow) float64 {
	min := 100.0
	for _, r := range rows {
		if r.ProvenPct < min {
			min = r.ProvenPct
		}
	}
	return min
}

// ProveJSON serializes the rows for results/prove.json.
func ProveJSON(rows []ProveRow) ([]byte, error) {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
