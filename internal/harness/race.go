package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/mhp"
	"repro/internal/programs"
)

// RaceRow is one benchmark × level × processor-count cell of the
// happens-before study: the verdict census over every conflicting
// cross-processor pair, the schedule's communication shape, and the
// seeded-fault differential (every fault the injector can seed into
// the cell's schedule must be rejected by the analyzer).
type RaceRow struct {
	Benchmark string `json:"benchmark"`
	Level     string `json:"level"`
	Procs     int    `json:"procs"`

	Pairs     int `json:"pairs"`
	Ordered   int `json:"ordered"`
	Race      int `json:"race"`
	Unknown   int `json:"unknown"`
	Deadlocks int `json:"deadlocks"`

	Sends    int `json:"sends"`
	Recvs    int `json:"recvs"`
	Barriers int `json:"barriers"`

	FaultsSeeded int `json:"faults_seeded"`
	FaultsCaught int `json:"faults_caught"`
}

// raceProcs are the processor counts the study sweeps; together with
// the 6 benchmarks and 9 ladder levels they span every distributed
// schedule the compiler produces.
func raceProcs() []int { return []int{2, 4, 8} }

// RunRace compiles every benchmark × level × processor-count cell,
// runs the happens-before analyzer over the scalarized schedule, and
// then re-runs it over each seeded-fault mutation of that schedule.
// A cell that is not fully ProvenOrdered, or a seeded fault the
// analyzer misses, is an error, not a row — an unsound analysis
// invalidates the study.
func RunRace(size int64) ([]RaceRow, error) {
	if size < 8 {
		size = 32
	}
	type cell struct {
		b     programs.Benchmark
		lvl   core.Level
		procs int
	}
	var cells []cell
	for _, b := range programs.All() {
		for _, lvl := range core.AllLevels() {
			for _, p := range raceProcs() {
				cells = append(cells, cell{b, lvl, p})
			}
		}
	}
	return parallelMap(cells, func(_ int, c cell) (RaceRow, error) {
		co := comm.DefaultOptions(c.procs)
		comp, err := driver.Compile(c.b.Source, hooked(driver.Options{
			Level:   c.lvl,
			Comm:    &co,
			Configs: map[string]int64{c.b.SizeConfig: size},
		}))
		if err != nil {
			return RaceRow{}, fmt.Errorf("%s at %s p=%d: %w", c.b.Name, c.lvl, c.procs, err)
		}
		res := comp.Races
		if res == nil {
			return RaceRow{}, fmt.Errorf("%s at %s p=%d: compilation carries no race analysis", c.b.Name, c.lvl, c.procs)
		}
		if !res.Clean() {
			return RaceRow{}, fmt.Errorf("%s at %s p=%d: schedule not proven ordered: race=%d unknown=%d deadlocks=%d",
				c.b.Name, c.lvl, c.procs, res.NumRace, res.NumUnknown, len(res.Deadlocks))
		}

		// Seeded-fault differential: every fault kind with a valid
		// injection site in this schedule must be caught. Kinds with no
		// site (e.g. a schedule with no communication) are skipped.
		sched := mhp.BuildSchedule(comp.LIR, c.procs)
		seeded, caught := 0, 0
		for _, kind := range mhp.FaultKinds() {
			bad, err := mhp.Inject(sched, kind)
			if err != nil {
				continue
			}
			seeded++
			if mhp.Analyze(bad).Err() != nil {
				caught++
			} else {
				return RaceRow{}, fmt.Errorf("%s at %s p=%d: seeded fault %v not rejected",
					c.b.Name, c.lvl, c.procs, bad.Faults)
			}
		}

		return RaceRow{
			Benchmark: c.b.Name,
			Level:     c.lvl.String(),
			Procs:     c.procs,

			Pairs:     len(res.Pairs),
			Ordered:   res.NumOrdered,
			Race:      res.NumRace,
			Unknown:   res.NumUnknown,
			Deadlocks: len(res.Deadlocks),

			Sends:    res.Sends,
			Recvs:    res.Recvs,
			Barriers: res.Barriers,

			FaultsSeeded: seeded,
			FaultsCaught: caught,
		}, nil
	})
}

// FormatRace renders the verdict-census table plus the summary lines
// the acceptance check reads.
func FormatRace(rows []RaceRow) string {
	var b strings.Builder
	b.WriteString("Happens-before analysis: verdict census over every conflicting\n")
	b.WriteString("cross-processor pair of every compiler-produced schedule, and the\n")
	b.WriteString("seeded-fault differential (each seeded schedule bug must be rejected)\n\n")
	fmt.Fprintf(&b, "%-10s %-10s %3s %6s %8s %5s %5s %5s %6s %6s %5s %7s\n",
		"app", "level", "p", "pairs", "ordered", "race", "unkn", "dead",
		"sends", "recvs", "barr", "faults")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s %3d %6d %8d %5d %5d %5d %6d %6d %5d %3d/%-3d\n",
			r.Benchmark, r.Level, r.Procs, r.Pairs, r.Ordered, r.Race, r.Unknown,
			r.Deadlocks, r.Sends, r.Recvs, r.Barriers, r.FaultsCaught, r.FaultsSeeded)
	}

	pairs, ordered, seeded, caught := 0, 0, 0, 0
	for _, r := range rows {
		pairs += r.Pairs
		ordered += r.Ordered
		seeded += r.FaultsSeeded
		caught += r.FaultsCaught
	}
	fmt.Fprintf(&b, "\nconflicting pairs: %d across %d cells, %d proven ordered\n",
		pairs, len(rows), ordered)
	fmt.Fprintf(&b, "seeded faults caught: %d/%d\n", caught, seeded)
	fmt.Fprintf(&b, "every cell proven ordered, race- and deadlock-free: %t\n", RaceCleanAll(rows))
	return b.String()
}

// RaceCleanAll is the acceptance condition: every cell fully
// ProvenOrdered (no races, no unknowns, no deadlocks), every seeded
// fault caught, and the sweep non-vacuous (some pair was proven and
// some message was sent somewhere).
func RaceCleanAll(rows []RaceRow) bool {
	ordered, sends := 0, 0
	for _, r := range rows {
		if r.Race != 0 || r.Unknown != 0 || r.Deadlocks != 0 || r.FaultsCaught != r.FaultsSeeded {
			return false
		}
		ordered += r.Ordered
		sends += r.Sends
	}
	return ordered > 0 && sends > 0
}

// RaceJSON serializes the rows for results/race.json.
func RaceJSON(rows []RaceRow) ([]byte, error) {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
