package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/programs"
	"repro/internal/tune"
)

// TuneRow is one benchmark's heuristic-vs-search comparison: how close
// the greedy c2+f4 ladder rung comes to the best plan the search can
// find (and, where exhaustive enumeration completed, to the proven
// optimum under the cost model).
type TuneRow struct {
	Benchmark      string  `json:"benchmark"`
	Model          string  `json:"model"`
	HeuristicScore float64 `json:"heuristic_score"`
	TunedScore     float64 `json:"tuned_score"`
	// GapPct is the heuristic's excess over the tuned plan, in percent
	// of the tuned score; 0 means the greedy ladder found the searched
	// plan exactly.
	GapPct float64 `json:"gap_pct"`
	// Proven is true when every block was enumerated exhaustively, so
	// the tuned score is the true optimum under the model.
	Proven bool   `json:"proven"`
	Method string `json:"method"` // exhaustive | beam | mixed
	States int    `json:"states"` // total search states visited
	Blocks int    `json:"blocks"`
}

// RunTune tunes every benchmark against the strongest ladder rung
// (c2+f4) under the analytic T3E cycle model and reports how close the
// greedy heuristic comes to the searched (and, where proven, optimal)
// plan.
func RunTune() ([]TuneRow, error) {
	return parallelMap(programs.All(), func(_ int, b programs.Benchmark) (TuneRow, error) {
		model := tune.CycleModel{M: machine.T3E(), Procs: 1}
		res, err := tune.Tune(context.Background(), b.Source, tune.Options{
			Level: core.C2F4,
			Model: model,
		})
		if err != nil {
			return TuneRow{}, fmt.Errorf("%s: %w", b.Name, err)
		}
		row := TuneRow{
			Benchmark:      b.Name,
			Model:          res.Model,
			HeuristicScore: res.HeuristicScore,
			TunedScore:     res.TunedScore,
			Proven:         res.Proven,
			Blocks:         len(res.Blocks),
		}
		if res.TunedScore > 0 {
			row.GapPct = (res.HeuristicScore - res.TunedScore) / res.TunedScore * 100
		}
		exhaustive, beam := 0, 0
		for _, bs := range res.Blocks {
			row.States += bs.States
			if bs.Method == "exhaustive" {
				exhaustive++
			} else {
				beam++
			}
		}
		switch {
		case beam == 0:
			row.Method = "exhaustive"
		case exhaustive == 0:
			row.Method = "beam"
		default:
			row.Method = "mixed"
		}
		return row, nil
	})
}

// FormatTune renders the heuristic-vs-optimal table.
func FormatTune(rows []TuneRow) string {
	var b strings.Builder
	b.WriteString("Plan search: greedy ladder (c2+f4) vs searched plan, T3E cycle model\n\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %9s %12s %8s %8s\n",
		"app", "greedy", "searched", "gap", "method", "states", "proven")
	maxGap, provenCount := 0.0, 0
	for _, r := range rows {
		proven := "-"
		if r.Proven {
			proven = "yes"
			provenCount++
			if r.GapPct > maxGap {
				maxGap = r.GapPct
			}
		}
		fmt.Fprintf(&b, "%-10s %14.0f %14.0f %8.1f%% %12s %8d %8s\n",
			r.Benchmark, r.HeuristicScore, r.TunedScore, r.GapPct,
			r.Method, r.States, proven)
	}
	fmt.Fprintf(&b, "\nAcross the %d benchmark(s) where exhaustive enumeration completed,\n"+
		"the greedy heuristic is within %.1f%% of the proven optimum.\n",
		provenCount, maxGap)
	return b.String()
}

// TuneJSON serializes the rows for results/tune.json.
func TuneJSON(rows []TuneRow) ([]byte, error) {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
