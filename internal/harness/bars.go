package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// FormatMachineBars renders one machine's ladder as horizontal bar
// charts, the visual form of the paper's Figures 9–11. Each benchmark
// gets a group of bars (one per transformation) at the given processor
// count; negative bars extend left of the axis, as in the paper
// ("negative bars represent slowdown").
func (r *PerfResult) FormatMachineBars(mach string, procs int, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s, p=%d: %% improvement over baseline\n\n", mach, procs)

	var benches []string
	seen := map[string]bool{}
	var levels []core.Level
	seenL := map[core.Level]bool{}
	for _, p := range r.Points {
		if p.Procs != procs || p.Level == core.Baseline {
			continue
		}
		if !seen[p.Benchmark] {
			seen[p.Benchmark] = true
			benches = append(benches, p.Benchmark)
		}
		if !seenL[p.Level] {
			seenL[p.Level] = true
			levels = append(levels, p.Level)
		}
	}

	for _, bench := range benches {
		// Scale each benchmark's group independently, as the paper's
		// per-benchmark graphs do (their y-axes differ).
		maxAbs := 1.0
		for _, lvl := range levels {
			if pt := r.Point(bench, procs, lvl); pt != nil {
				if v := pt.Improvement[mach]; v > maxAbs {
					maxAbs = v
				} else if -v > maxAbs {
					maxAbs = -v
				}
			}
		}
		scale := float64(width) / maxAbs
		fmt.Fprintf(&b, "%s\n", bench)
		for _, lvl := range levels {
			pt := r.Point(bench, procs, lvl)
			if pt == nil {
				continue
			}
			v := pt.Improvement[mach]
			n := int(v * scale)
			var bar string
			if n >= 0 {
				bar = strings.Repeat(" ", width) + "|" + strings.Repeat("#", n)
			} else {
				bar = strings.Repeat(" ", width+n) + strings.Repeat("#", -n) + "|"
			}
			fmt.Fprintf(&b, "  %-7s %s %+.1f%%\n", lvl, bar, v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
