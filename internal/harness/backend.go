package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/programs"
	"repro/internal/vm"
)

// BackendRow is one benchmark × level cell of the VM-vs-native study:
// the differential check (the native binary's stdout must be
// byte-identical to the VM's) plus the wall-clock comparison. NativeMS
// is the binary's self-timed compute (process startup excluded), so
// the speedup compares the two execution engines, not exec overhead.
type BackendRow struct {
	Benchmark string  `json:"benchmark"`
	Level     string  `json:"level"`
	Match     bool    `json:"match"`     // outputs byte-identical
	VMMS      float64 `json:"vm_ms"`     // interpreter wall clock
	NativeMS  float64 `json:"native_ms"` // native compute wall clock
	BuildMS   float64 `json:"build_ms"`  // toolchain time (0 on a store hit)
	BuildHit  bool    `json:"build_hit"`
	Speedup   float64 `json:"speedup"` // VMMS / NativeMS
	Steps     int64   `json:"steps"`   // VM element statements
}

// RunBackend measures every benchmark at every ladder level on both
// execution engines, asserting bit-identical output cell by cell. A
// mismatch is an error, not a row: a miscompile invalidates the whole
// table. Cells run on the harness worker pool; the shared store
// deduplicates identical emissions across cells.
func RunBackend(store *backend.Store, sizeFactor float64) ([]BackendRow, error) {
	if sizeFactor == 0 {
		sizeFactor = 1
	}
	type cell struct {
		b   programs.Benchmark
		lvl core.Level
	}
	var cells []cell
	for _, b := range programs.All() {
		for _, lvl := range core.AllLevels() {
			cells = append(cells, cell{b, lvl})
		}
	}
	return parallelMap(cells, func(_ int, c cell) (BackendRow, error) {
		size := int64(float64(c.b.DefaultSize) * sizeFactor)
		if size < 8 {
			size = 8
		}
		comp, err := driver.Compile(c.b.Source, hooked(driver.Options{
			Level:   c.lvl,
			Configs: map[string]int64{c.b.SizeConfig: size},
		}))
		if err != nil {
			return BackendRow{}, fmt.Errorf("%s at %s: %w", c.b.Name, c.lvl, err)
		}

		var vmOut bytes.Buffer
		t0 := time.Now()
		_, res, err := vm.Run(comp.LIR, vm.Options{Out: &vmOut})
		vmD := time.Since(t0)
		if err != nil {
			return BackendRow{}, fmt.Errorf("%s at %s: vm: %w", c.b.Name, c.lvl, err)
		}

		art, _, err := store.BuildProgram(context.Background(), comp.LIR)
		if err != nil {
			return BackendRow{}, fmt.Errorf("%s at %s: build: %w", c.b.Name, c.lvl, err)
		}
		var natOut bytes.Buffer
		stats, err := art.Run(context.Background(), &natOut)
		if err != nil {
			return BackendRow{}, fmt.Errorf("%s at %s: native run: %w", c.b.Name, c.lvl, err)
		}
		if natOut.String() != vmOut.String() {
			return BackendRow{}, fmt.Errorf(
				"%s at %s: native output diverges from VM\nnative: %q\nvm:     %q",
				c.b.Name, c.lvl, natOut.String(), vmOut.String())
		}

		native := stats.Compute
		if native <= 0 {
			native = stats.Wall
		}
		row := BackendRow{
			Benchmark: c.b.Name,
			Level:     c.lvl.String(),
			Match:     true,
			VMMS:      float64(vmD) / float64(time.Millisecond),
			NativeMS:  float64(native) / float64(time.Millisecond),
			BuildMS:   float64(art.Build) / float64(time.Millisecond),
			BuildHit:  art.Hit,
			Steps:     res.Steps,
		}
		if native > 0 {
			row.Speedup = float64(vmD) / float64(native)
		}
		return row, nil
	})
}

// FormatBackend renders the speedup table plus the per-benchmark
// summary the acceptance check reads (native must win everywhere).
func FormatBackend(rows []BackendRow) string {
	var b strings.Builder
	b.WriteString("Native backend vs bytecode VM: bit-identical differential run,\n")
	b.WriteString("wall-clock speedup per benchmark x optimization level\n\n")
	fmt.Fprintf(&b, "%-10s %-10s %10s %12s %12s %10s %8s\n",
		"app", "level", "vm ms", "native ms", "build ms", "speedup", "match")
	for _, r := range rows {
		match := "DIVERGED"
		if r.Match {
			match = "ok"
		}
		build := fmt.Sprintf("%.0f", r.BuildMS)
		if r.BuildHit {
			build = "hit"
		}
		fmt.Fprintf(&b, "%-10s %-10s %10.2f %12.4f %12s %9.0fx %8s\n",
			r.Benchmark, r.Level, r.VMMS, r.NativeMS, build, r.Speedup, match)
	}

	// Per-benchmark worst case: the weakest cell still decides whether
	// native "wins the benchmark".
	order := []string{}
	min := map[string]float64{}
	geo := map[string]float64{}
	n := map[string]int{}
	for _, r := range rows {
		if _, ok := min[r.Benchmark]; !ok {
			order = append(order, r.Benchmark)
			min[r.Benchmark] = r.Speedup
		}
		if r.Speedup < min[r.Benchmark] {
			min[r.Benchmark] = r.Speedup
		}
		geo[r.Benchmark] += math.Log(r.Speedup)
		n[r.Benchmark]++
	}
	b.WriteString("\nper-benchmark speedup (native over VM):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %8s\n", "app", "geomean", "min", "wins")
	wins := 0
	for _, name := range order {
		g := math.Exp(geo[name] / float64(n[name]))
		win := "no"
		if min[name] > 1 {
			win = "yes"
			wins++
		}
		fmt.Fprintf(&b, "%-10s %11.0fx %11.0fx %8s\n", name, g, min[name], win)
	}
	fmt.Fprintf(&b, "\nnative wins %d/%d benchmarks (every cell bit-identical: %t)\n",
		wins, len(order), AllMatch(rows))
	return b.String()
}

// AllMatch reports whether every cell passed the differential check.
func AllMatch(rows []BackendRow) bool {
	for _, r := range rows {
		if !r.Match {
			return false
		}
	}
	return true
}

// NativeWinsAll reports whether the native backend beat the VM in
// every cell — the table's acceptance condition.
func NativeWinsAll(rows []BackendRow) bool {
	for _, r := range rows {
		if r.Speedup <= 1 {
			return false
		}
	}
	return true
}

// BackendJSON serializes the rows for results/backend.json.
func BackendJSON(rows []BackendRow) ([]byte, error) {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
