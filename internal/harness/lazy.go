package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lazy"
)

// LazyRow is one backend × level cell of the lazy-runtime study: a
// double-buffered Jacobi solver issued through the deferred-evaluation
// library, measuring what fingerprint caching buys an iterative
// workload. FirstMS includes the one real compile; SteadyMS is the
// per-iteration cost once every sweep is a cache hit (the buffer swap
// renames to the same canonical program); FreshMS re-runs the compiler
// pipeline every iteration (cache cleared), the cost a lazy runtime
// without canonical fingerprints would pay.
type LazyRow struct {
	Backend  string  `json:"backend"`
	Level    string  `json:"level"`
	N        int     `json:"n"`
	Iters    int     `json:"iters"`
	FirstMS  float64 `json:"first_ms"`
	SteadyMS float64 `json:"steady_ms_per_iter"`
	FreshMS  float64 `json:"fresh_ms_per_iter"`
	Speedup  float64 `json:"cached_speedup"` // FreshMS / SteadyMS
	Misses   int64   `json:"misses"`         // compiles in the steady-state arm
	Hits     int64   `json:"hits"`
}

// lazySweep issues one damped double-buffered Jacobi sweep — the
// 5-point average lands in a Temp the contraction phase eliminates,
// the damped update and the residual reduction fuse around it — and
// returns the swapped handles.
func lazySweep(e *lazy.Engine, cur, nxt *lazy.Handle, res *lazy.ScalarHandle, n int) (*lazy.Handle, *lazy.Handle) {
	inner := lazy.R(2, n-1, 2, n-1)
	avg := e.Temp("avg", cur.Region())
	avg.Assign(inner, lazy.Mul(lazy.Const(0.25),
		lazy.Add(lazy.Add(cur.At(-1, 0), cur.At(1, 0)),
			lazy.Add(cur.At(0, -1), cur.At(0, 1)))))
	nxt.Assign(inner, lazy.Add(cur, lazy.Mul(lazy.Const(0.8), lazy.Sub(avg, cur))))
	res.MaxOf(inner, lazy.Abs(lazy.Sub(nxt, cur)))
	return nxt, cur
}

// lazySetup builds an engine with a seeded (non-harmonic, so the
// residual is nonzero) field and both buffers initialized; the setup
// Eval is untimed.
func lazySetup(opt lazy.Options, n int) (*lazy.Engine, *lazy.Handle, *lazy.Handle, *lazy.ScalarHandle, error) {
	e := lazy.NewEngine(opt)
	full := lazy.R(1, n, 1, n)
	cur := e.Array("cur", full)
	nxt := e.Array("nxt", full)
	res := e.Scalar("res", 0)
	seed := lazy.Mul(lazy.Index(1), lazy.Index(1))
	cur.Assign(nil, seed)
	nxt.Assign(nil, seed)
	return e, cur, nxt, res, e.Eval()
}

// runLazyCell measures one backend × level cell and returns the row
// plus the residual history for the cross-backend differential check.
func runLazyCell(lvl core.Level, be driver.Backend, n, iters int) (LazyRow, []float64, error) {
	row := LazyRow{Backend: string(be), Level: lvl.String(), N: n, Iters: iters}
	e, cur, nxt, res, err := lazySetup(lazy.Options{Level: lvl, Backend: be}, n)
	if err != nil {
		return row, nil, err
	}
	before := e.CacheStats()

	var hist []float64
	var steady time.Duration
	for i := 0; i < iters; i++ {
		cur, nxt = lazySweep(e, cur, nxt, res, n)
		t0 := time.Now()
		if err := e.Eval(); err != nil {
			return row, nil, err
		}
		d := time.Since(t0)
		if i == 0 {
			row.FirstMS = float64(d) / float64(time.Millisecond)
		} else {
			steady += d
		}
		r, err := res.Value()
		if err != nil {
			return row, nil, err
		}
		hist = append(hist, r)
	}
	if iters > 1 {
		row.SteadyMS = float64(steady) / float64(iters-1) / float64(time.Millisecond)
	}
	d := e.CacheStats().Sub(before)
	row.Misses, row.Hits = d.Misses, d.Hits

	// Fresh arm: the cost a lazy runtime without fingerprint caching
	// pays per iteration — a brand-new engine (and, for the native
	// backend, a brand-new artifact store, so the toolchain runs too)
	// for every sweep.
	freshIters := 10
	if be.Native() {
		freshIters = 3 // each fresh iteration runs the toolchain twice
	}
	var fresh time.Duration
	for i := 0; i < freshIters; i++ {
		opt := lazy.Options{Level: lvl, Backend: be}
		var dir string
		if be.Native() {
			dir, err = os.MkdirTemp("", "zpl-lazy-fresh")
			if err != nil {
				return row, nil, err
			}
			opt.ArtifactDir = dir
		}
		ef, curF, nxtF, resF, err := lazySetup(opt, n)
		if err == nil {
			ef.ClearCache() // the setup compile must not subsidize the sweep
			curF, nxtF = lazySweep(ef, curF, nxtF, resF, n)
			t0 := time.Now()
			err = ef.Eval()
			fresh += time.Since(t0)
			_ = curF
		}
		if dir != "" {
			os.RemoveAll(dir)
		}
		if err != nil {
			return row, nil, err
		}
	}
	row.FreshMS = float64(fresh) / float64(freshIters) / float64(time.Millisecond)
	if row.SteadyMS > 0 {
		row.Speedup = row.FreshMS / row.SteadyMS
	}
	return row, hist, nil
}

// RunLazy measures the lazy-runtime Jacobi workload at the ladder ends
// on the VM and (when a toolchain is present) the native backend,
// asserting the residual trajectories agree bit for bit across every
// cell — the differential check that deferred evaluation changes
// nothing but when compilation happens.
func RunLazy(sizeFactor float64) ([]LazyRow, error) {
	if sizeFactor == 0 {
		sizeFactor = 1
	}
	n := int(32 * sizeFactor)
	if n < 8 {
		n = 8
	}
	const iters = 20
	levels := []core.Level{core.Baseline, core.C2F4S}
	backends := []driver.Backend{driver.BackendVM}
	if backend.Available() {
		backends = append(backends, driver.BackendGo)
	}

	var rows []LazyRow
	want := map[string][]float64{}
	for _, be := range backends {
		for _, lvl := range levels {
			row, hist, err := runLazyCell(lvl, be, n, iters)
			if err != nil {
				return nil, fmt.Errorf("lazy %s at %s: %w", be, lvl, err)
			}
			if row.Misses != 1 {
				return nil, fmt.Errorf("lazy %s at %s: steady state compiled %d times, want 1",
					be, lvl, row.Misses)
			}
			key := lvl.String()
			if prev, ok := want[key]; ok {
				for i := range prev {
					if prev[i] != hist[i] {
						return nil, fmt.Errorf(
							"lazy %s at %s: residual[%d] = %g diverges from VM's %g",
							be, lvl, i, hist[i], prev[i])
					}
				}
			} else {
				want[key] = hist
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatLazy renders the study table plus the headline the acceptance
// check reads: steady-state iterations must be cheaper than
// compile-every-iteration in every cell.
func FormatLazy(rows []LazyRow) string {
	var b strings.Builder
	b.WriteString("Lazy-fusion runtime: double-buffered Jacobi issued through the zpl\n")
	b.WriteString("library; the buffer swap renames to the same canonical program, so\n")
	b.WriteString("the steady state replays one cached compilation per sweep\n\n")
	fmt.Fprintf(&b, "%-8s %-10s %6s %6s %10s %12s %12s %10s %8s\n",
		"backend", "level", "n", "iters", "first ms", "steady ms/i", "fresh ms/i", "speedup", "misses")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-10s %6d %6d %10.3f %12.4f %12.4f %9.1fx %8d\n",
			r.Backend, r.Level, r.N, r.Iters, r.FirstMS, r.SteadyMS, r.FreshMS, r.Speedup, r.Misses)
	}
	geo, cells := 0.0, 0
	for _, r := range rows {
		if r.Speedup > 0 {
			geo += math.Log(r.Speedup)
			cells++
		}
	}
	if cells > 0 {
		fmt.Fprintf(&b, "\ncached steady state vs compile-every-iteration: geomean %.1fx over %d cells\n",
			math.Exp(geo/float64(cells)), cells)
	}
	fmt.Fprintf(&b, "every cell compiled exactly once and matched the VM residuals: %t\n",
		LazyCachedEverywhere(rows))
	return b.String()
}

// LazyCachedEverywhere reports whether every cell hit the cache on all
// post-compile iterations — the study's acceptance condition (the
// residual differential is enforced inside RunLazy).
func LazyCachedEverywhere(rows []LazyRow) bool {
	for _, r := range rows {
		if r.Misses != 1 || r.Hits < int64(r.Iters-1) {
			return false
		}
	}
	return true
}

// LazyJSON serializes the rows for results/lazy.json.
func LazyJSON(rows []LazyRow) ([]byte, error) {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
