package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/programs"
)

// Fig6Cell is one compiler × fragment observation.
type Fig6Cell struct {
	Proper bool
	Note   string
}

// Fig6Result is the full Fig. 6 table.
type Fig6Result struct {
	Compilers []string
	Fragments []programs.Fragment
	Cells     [][]Fig6Cell // [compiler][fragment]
}

// RunFig6 evaluates every emulated compiler on every Fig. 5 fragment
// and reports whether it produced the proper fused/contracted code.
func RunFig6() (*Fig6Result, error) {
	ems := core.Emulations()
	frags := programs.Fragments()
	res := &Fig6Result{Fragments: frags}
	for _, em := range ems {
		res.Compilers = append(res.Compilers, em.Name)
		var row []Fig6Cell
		for _, fr := range frags {
			cell, err := evalFragment(fr, em)
			if err != nil {
				return nil, fmt.Errorf("fragment %d under %s: %w", fr.Num, em.Name, err)
			}
			row = append(row, cell)
		}
		res.Cells = append(res.Cells, row)
	}
	return res, nil
}

// evalFragment compiles one fragment under one emulation and checks
// the fragment's expectation.
func evalFragment(fr programs.Fragment, em core.Emulation) (Fig6Cell, error) {
	prog, plan, err := CompileEmulated(fr.Source, em, nil)
	if err != nil {
		return Fig6Cell{}, err
	}
	if err := Scalarizable(prog, plan); err != nil {
		return Fig6Cell{}, err
	}
	exp := fr.Expect

	if exp.FusePair[0] != "" {
		for _, bp := range plan.Blocks {
			var va, vb = -1, -1
			for v := 0; v < bp.Graph.N(); v++ {
				if s := bp.Graph.ArrayStmt(v); s != nil {
					if s.LHS == exp.FusePair[0] {
						va = v
					}
					if s.LHS == exp.FusePair[1] {
						vb = v
					}
				}
			}
			if va >= 0 && vb >= 0 {
				if bp.Part.ClusterOf(va) == bp.Part.ClusterOf(vb) {
					return Fig6Cell{Proper: true, Note: "fused"}, nil
				}
				return Fig6Cell{Note: "not fused"}, nil
			}
		}
		return Fig6Cell{}, fmt.Errorf("fragment statements not found")
	}

	if exp.ContractCompilerTemp {
		temps := 0
		for name, a := range prog.Arrays {
			if !a.Temp {
				continue
			}
			temps++
			if !plan.Contracted[name] {
				return Fig6Cell{Note: "temp kept"}, nil
			}
		}
		if temps == 0 {
			return Fig6Cell{}, fmt.Errorf("no compiler temp was generated")
		}
		return Fig6Cell{Proper: true, Note: "temp contracted"}, nil
	}

	for _, u := range exp.ContractUser {
		if !plan.Contracted[u] {
			return Fig6Cell{Note: u + " kept"}, nil
		}
	}
	return Fig6Cell{Proper: true, Note: "contracted"}, nil
}

// Format renders the table in the paper's layout: one row per
// compiler, a check mark per properly handled fragment.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 6: observed behavior of five array language compilers\n")
	b.WriteString("(check = proper fused/contracted code for the Fig. 5 fragment)\n\n")
	fmt.Fprintf(&b, "%-22s", "compiler")
	for _, fr := range r.Fragments {
		fmt.Fprintf(&b, " (%d)", fr.Num)
	}
	b.WriteString("\n")
	for i, name := range r.Compilers {
		fmt.Fprintf(&b, "%-22s", name)
		for j := range r.Fragments {
			mark := " . "
			if r.Cells[i][j].Proper {
				mark = " ✓ "
			}
			fmt.Fprintf(&b, " %s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Marks returns the set of properly handled fragment numbers per
// compiler, for tests.
func (r *Fig6Result) Marks(compiler string) map[int]bool {
	for i, name := range r.Compilers {
		if name == compiler {
			out := map[int]bool{}
			for j, c := range r.Cells[i] {
				if c.Proper {
					out[r.Fragments[j].Num] = true
				}
			}
			return out
		}
	}
	return nil
}
