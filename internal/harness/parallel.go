package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// jobsN is the configured worker-pool width; 0 means runtime.NumCPU().
var jobsN atomic.Int32

// SetJobs sets the number of measurements the harness runs
// concurrently. n < 1 restores the default (the machine's CPU count).
func SetJobs(n int) {
	if n < 1 {
		n = 0
	}
	jobsN.Store(int32(n))
}

// Jobs reports the effective worker-pool width.
func Jobs() int {
	if n := int(jobsN.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// parallelMap applies f to every item on a pool of Jobs() workers and
// returns the results in input order. Each Measure is independent — a
// compilation plus an emulated execution sharing no mutable state —
// which is what makes this safe. All items run to completion even when
// some fail; the error reported is the first failing item's in input
// order, so results and diagnostics are deterministic regardless of
// scheduling.
func parallelMap[T, R any](items []T, f func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	workers := Jobs()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, it := range items {
			out[i], errs[i] = f(i, it)
		}
	} else {
		idxs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxs {
					out[i], errs[i] = f(i, items[i])
				}
			}()
		}
		for i := range items {
			idxs <- i
		}
		close(idxs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
