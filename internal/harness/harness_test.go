package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
)

func driverOptions() driver.Options {
	// Baseline keeps the array in memory, so the trace statistics and
	// footprint are nonzero.
	return driver.Options{Level: core.Baseline}
}

// TestFig6Table checks the reconstructed Fig. 6 behavior matrix: which
// fragments each emulated compiler handles properly.
func TestFig6Table(t *testing.T) {
	res, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		"PGI HPF 2.1":           {4, 5},
		"IBM XLHPF 1.2":         {4, 5},
		"APR XHPF 2.0":          {1, 2, 4},
		"Cray F90 2.0.1.0":      {1, 2, 4, 5, 6},
		"ZPL 1.13 (this paper)": {1, 2, 3, 4, 5, 6, 7, 8},
	}
	for compiler, frags := range want {
		marks := res.Marks(compiler)
		if marks == nil {
			t.Fatalf("compiler %q missing from table", compiler)
		}
		wantSet := map[int]bool{}
		for _, f := range frags {
			wantSet[f] = true
		}
		for f := 1; f <= 8; f++ {
			if marks[f] != wantSet[f] {
				t.Errorf("%s fragment (%d): proper=%v, want %v",
					compiler, f, marks[f], wantSet[f])
			}
		}
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 6") {
		t.Error("format output missing title")
	}
}

// TestFig7Shape checks the contraction-count shape of Fig. 7: every
// compiler temp eliminated, EP fully contracted, more than half of the
// arrays eliminated in every benchmark except SP.
func TestFig7Shape(t *testing.T) {
	rows, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.After >= r.Before {
			t.Errorf("%s: no contraction (%d -> %d)", r.Benchmark, r.Before, r.After)
		}
		switch r.Benchmark {
		case "ep":
			if r.After != 0 {
				t.Errorf("ep: %d arrays survive, want 0", r.After)
			}
		case "frac":
			if r.After > 2 {
				t.Errorf("frac: %d arrays survive, want <=2", r.After)
			}
		default:
			// Every benchmark eliminates a substantial share
			// (Fig. 7: 44.9% to 100%).
			if float64(r.After) > 0.6*float64(r.Before) {
				t.Errorf("%s: only %d of %d contracted", r.Benchmark, r.Before-r.After, r.Before)
			}
		}
	}
	// Fibro keeps the largest fraction of its arrays (paper: -44.9%,
	// the smallest reduction of the six).
	frac := func(r Fig7Row) float64 { return float64(r.After) / float64(r.Before) }
	var fibro Fig7Row
	for _, r := range rows {
		if r.Benchmark == "fibro" {
			fibro = r
		}
	}
	for _, r := range rows {
		if r.Benchmark != "fibro" && frac(r) > frac(fibro)+0.01 {
			t.Errorf("%s keeps a larger fraction (%.2f) than fibro (%.2f)",
				r.Benchmark, frac(r), frac(fibro))
		}
	}
}

// TestFig8Prediction checks that the analytic C value predicts the
// measured volume growth (the paper's validation of §5.3).
func TestFig8Prediction(t *testing.T) {
	rows, err := RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxWith < r.MaxWithout {
			t.Errorf("%s: contraction shrank the maximum problem size (%d -> %d)",
				r.Benchmark, r.MaxWithout, r.MaxWith)
		}
		if r.Benchmark == "ep" {
			// EP contracts everything: its optimized footprint is
			// constant, so the search hits the cap.
			if r.MaxWith < 1<<20 {
				t.Errorf("ep: max problem size %d, want unbounded (cap)", r.MaxWith)
			}
			continue
		}
		// C (a per-dimension prediction for rank-1, volume-ish for
		// rank 2) should roughly track the measured volume change.
		if r.C > 10 && r.VolPct < r.C*0.4 {
			t.Errorf("%s: C=%.1f%% predicts growth, measured volume %+.1f%%",
				r.Benchmark, r.C, r.VolPct)
		}
	}
}

// perfStudy runs a reduced ladder study once for the shape tests.
var perfCache *PerfResult

func perf(t *testing.T) *PerfResult {
	t.Helper()
	if perfCache != nil {
		return perfCache
	}
	res, err := RunPerfStudy(StudyOptions{
		SizeFactor: 0.5,
		Procs:      []int{1, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	perfCache = res
	return res
}

// TestPerfC2Dominates checks the predominant characteristic of
// Figs. 9–11: c2 meets or beats baseline, f1, and c1 everywhere, and
// delivers a substantial improvement on the temp-heavy benchmarks.
func TestPerfC2Dominates(t *testing.T) {
	res := perf(t)
	machines := []string{"Cray T3E", "IBM SP-2", "Intel Paragon"}
	for _, pt := range res.Points {
		if pt.Level != core.C2 {
			continue
		}
		f1 := res.Point(pt.Benchmark, pt.Procs, core.F1)
		c1 := res.Point(pt.Benchmark, pt.Procs, core.C1)
		for _, m := range machines {
			if pt.Improvement[m] < -1 {
				t.Errorf("%s p=%d %s: c2 slower than baseline (%.1f%%)",
					pt.Benchmark, pt.Procs, m, pt.Improvement[m])
			}
			if c1 != nil && pt.Improvement[m] < c1.Improvement[m]-2 {
				t.Errorf("%s p=%d %s: c2 (%.1f%%) below c1 (%.1f%%)",
					pt.Benchmark, pt.Procs, m, pt.Improvement[m], c1.Improvement[m])
			}
			if f1 != nil && pt.Improvement[m] < f1.Improvement[m]-2 {
				t.Errorf("%s p=%d %s: c2 (%.1f%%) below f1 (%.1f%%)",
					pt.Benchmark, pt.Procs, m, pt.Improvement[m], f1.Improvement[m])
			}
		}
	}
	// EP, whose arrays all contract, must see a large c2 win.
	pt := res.Point("ep", 1, core.C2)
	if pt == nil || pt.Improvement["Cray T3E"] < 20 {
		t.Errorf("ep c2 improvement on T3E = %v, want > 20%%", pt)
	}
}

// TestPerfHeadline checks §1's claim: improvements are "typically
// greater than 20%" at c2.
func TestPerfHeadline(t *testing.T) {
	res := perf(t)
	median, max := res.Headline()
	if median < 10 {
		t.Errorf("median c2 improvement %.1f%%, want >= 10%%", median)
	}
	if max < 40 {
		t.Errorf("max c2 improvement %.1f%%, want >= 40%%", max)
	}
	t.Logf("headline: median %.1f%%, max %.1f%%", median, max)
}

// TestSec55FavorFusionWins checks the §5.5 conclusion: favoring
// communication optimization over fusion slows the temp-heavy codes
// and roughly breaks even on Fibro.
func TestSec55FavorFusionWins(t *testing.T) {
	rows, err := RunSec55(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for m, s := range r.Slowdown {
			if s < -10 {
				t.Errorf("%s on %s: favor-comm is %.1f%% FASTER; fusion should win",
					r.Benchmark, m, -s)
			}
		}
		if r.Benchmark == "simple" || r.Benchmark == "tomcatv" {
			if r.LostContr <= 0 {
				t.Errorf("%s: favor-comm lost no contractions", r.Benchmark)
			}
		}
	}
}

// TestLatencySensitivity probes the conclusion's conjecture: the
// favor-comm penalty must not shrink as message startup cost falls
// (cheap synchronization leaves nothing for pipelining to hide, so
// sacrificing contraction buys ever less).
func TestLatencySensitivity(t *testing.T) {
	pts, err := RunLatencySensitivity("tomcatv", 16, []float64{4800, 600, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Slowdown < pts[i-1].Slowdown-1 {
			t.Errorf("penalty shrank as alpha fell: %v", pts)
		}
	}
	if pts[len(pts)-1].Slowdown < 10 {
		t.Errorf("penalty at low alpha only %.1f%%", pts[len(pts)-1].Slowdown)
	}
}

// TestBarsRender sanity-checks the bar-chart rendering of Figs. 9–11.
func TestBarsRender(t *testing.T) {
	res := perf(t)
	out := res.FormatMachineBars("Cray T3E", 16, 30)
	if !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Errorf("no bars rendered:\n%s", out)
	}
	if !strings.Contains(out, "tomcatv") || !strings.Contains(out, "c2+f3") {
		t.Errorf("bars missing groups:\n%s", out)
	}
}

// TestFormatters sanity-checks every table renderer.
func TestFormatters(t *testing.T) {
	rows7, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatFig7(rows7); !strings.Contains(out, "tomcatv") || !strings.Contains(out, "paper") {
		t.Errorf("fig7 format:\n%s", out)
	}
	rows55, err := RunSec55(4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatSec55(rows55, 4); !strings.Contains(out, "favor") {
		t.Errorf("sec55 format:\n%s", out)
	}
	pts, err := RunLatencySensitivity("fibro", 4, []float64{1000, 100})
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatLatency("fibro", 4, pts); !strings.Contains(out, "alpha") {
		t.Errorf("latency format:\n%s", out)
	}
	res := perf(t)
	if out := res.FormatMachine("IBM SP-2", "Figure 10"); !strings.Contains(out, "c2+f3") {
		t.Errorf("fig10 format:\n%s", out)
	}
}

// TestMeasureReportsAllMachines: one Measure call prices all three
// models and reports trace statistics.
func TestMeasureReportsAllMachines(t *testing.T) {
	b := "program m; region R = [1..32]; var A : [R] double; var s : double; proc main() begin [R] A := index1 * 1.0; s := +<< [R] A; writeln(s); end;"
	meas, err := Measure(b, driverOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Cray T3E", "IBM SP-2", "Intel Paragon"} {
		if meas.Cycles[name] <= 0 {
			t.Errorf("%s: no cycles", name)
		}
	}
	if meas.Accesses == 0 || meas.Flops == 0 {
		t.Errorf("trace stats missing: %+v", meas)
	}
	if meas.MemoryBytes != 32*8 {
		t.Errorf("memory = %d, want 256", meas.MemoryBytes)
	}
}

// TestAuditRemarksClean is the acceptance gate for the remarks engine:
// across the full Fig. 7/8 benchmark suite at every strategy level,
// every fusible-candidate pair left unfused and every uncontracted
// candidate or temporary must carry exactly one machine-readable
// explanation, and dependence-test failures must name their blocking
// edge.
func TestAuditRemarksClean(t *testing.T) {
	rows, err := AuditRemarks(core.AllLevels())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, p := range r.Problems {
			t.Errorf("%s at %s: %s", r.Benchmark, r.Level, p)
		}
		if r.Remarks == 0 {
			t.Errorf("%s at %s: no remarks recorded", r.Benchmark, r.Level)
		}
	}
	if n := AuditProblems(rows); n > 0 {
		t.Errorf("audit: %d problem(s)", n)
	}
}
