package harness

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/programs"
)

// Sec55Row is one benchmark's slowdown when communication optimization
// is favored over fusion (§5.5), per machine model.
type Sec55Row struct {
	Benchmark string
	Slowdown  map[string]float64 // machine -> % slowdown of favor-comm vs favor-fusion
	LostContr int                // contraction opportunities lost to favor-comm
}

// Sec55Benchmarks are the four applications §5.5 reports (EP and Frac
// "do not slow down because they are small codes that do not benefit
// from communication optimization").
var Sec55Benchmarks = []string{"simple", "tomcatv", "sp", "fibro"}

// RunSec55 measures the favor-fusion versus favor-comm strategies at
// c2+f3 with the given processor count.
func RunSec55(procs int, sizeFactor float64) ([]Sec55Row, error) {
	if sizeFactor == 0 {
		sizeFactor = 1
	}
	// Each benchmark's pair of strategy measurements is independent;
	// run them on the worker pool.
	rows, err := parallelMap(Sec55Benchmarks, func(_ int, name string) (Sec55Row, error) {
		b, _ := programs.ByName(name)
		cfg := map[string]int64{b.SizeConfig: int64(float64(b.DefaultSize) * sizeFactor)}

		fuse := comm.DefaultOptions(procs)
		fuse.Strategy = comm.FavorFusion
		fm, err := Measure(b.Source, driver.Options{Level: core.C2F3, Configs: cfg, Comm: &fuse}, procs)
		if err != nil {
			return Sec55Row{}, fmt.Errorf("%s favor-fusion: %w", name, err)
		}

		cm := comm.DefaultOptions(procs)
		cm.Strategy = comm.FavorComm
		cc, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.C2F3, Configs: cfg, Comm: &cm}))
		if err != nil {
			return Sec55Row{}, fmt.Errorf("%s favor-comm: %w", name, err)
		}
		cmMeas, err := Measure(b.Source, driver.Options{Level: core.C2F3, Configs: cfg, Comm: &cm}, procs)
		if err != nil {
			return Sec55Row{}, fmt.Errorf("%s favor-comm: %w", name, err)
		}

		// Count the contraction opportunities favor-comm disables.
		ff, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.C2F3, Configs: cfg, Comm: &fuse}))
		if err != nil {
			return Sec55Row{}, err
		}
		lost := len(ff.Plan.Contracted) - len(cc.Plan.Contracted)

		row := Sec55Row{Benchmark: name, Slowdown: map[string]float64{}, LostContr: lost}
		for _, m := range machine.Models() {
			base := fm.Cycles[m.Name]
			if base > 0 {
				row.Slowdown[m.Name] = (cmMeas.Cycles[m.Name]/base - 1) * 100
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatSec55 renders the study.
func FormatSec55(rows []Sec55Row, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.5: slowdown when favoring communication optimization over\n")
	fmt.Fprintf(&b, "fusion for contraction (c2+f3, p=%d)\n\n", procs)
	models := machine.Models()
	fmt.Fprintf(&b, "%-10s", "app")
	for _, m := range models {
		fmt.Fprintf(&b, " %14s", m.Name)
	}
	fmt.Fprintf(&b, " %8s\n", "lost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Benchmark)
		for _, m := range models {
			fmt.Fprintf(&b, " %13.1f%%", r.Slowdown[m.Name])
		}
		fmt.Fprintf(&b, " %8d\n", r.LostContr)
	}
	b.WriteString("\n(positive = favor-comm is slower; 'lost' = contractions disabled)\n")
	return b.String()
}
