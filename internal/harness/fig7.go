package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/programs"
)

// Fig7Row is one benchmark's static array accounting.
type Fig7Row struct {
	Benchmark     string
	Before        int // static arrays without contraction
	BeforeTemp    int // of which compiler temporaries
	BeforeUser    int
	After         int // static arrays with contraction (c2)
	PctChange     float64
	PaperBefore   int // the original codes' counts, for reference
	PaperAfter    int
	PaperScalarEq int // arrays in the hand-written scalar versions
}

// paperFig7 records the published Fig. 7 numbers for side-by-side
// presentation (our benchmarks are scaled re-expressions; ratios are
// the comparison target).
var paperFig7 = map[string][3]int{
	"ep":      {22, 0, 1},
	"frac":    {8, 1, -1}, // scalar column unavailable in the text
	"sp":      {181, 56, 48},
	"tomcatv": {19, 7, 7},
	"simple":  {85, 32, 32},
	"fibro":   {49, 27, -1}, // ZPL-only: no scalar equivalent
}

// RunFig7 compiles every benchmark with and without contraction and
// counts static arrays.
func RunFig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, b := range programs.All() {
		c, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.C2F3}))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		counts := core.CountStaticArrays(c.AIR, c.Plan)
		row := Fig7Row{
			Benchmark:  b.Name,
			Before:     counts.Before(),
			BeforeTemp: counts.TotalCompiler,
			BeforeUser: counts.TotalUser,
			After:      counts.After(),
		}
		if row.Before > 0 {
			row.PctChange = 100 * float64(row.After-row.Before) / float64(row.Before)
		}
		if p, ok := paperFig7[b.Name]; ok {
			row.PaperBefore, row.PaperAfter, row.PaperScalarEq = p[0], p[1], p[2]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig7 renders the table.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: static arrays contracted (compiler/user split)\n\n")
	fmt.Fprintf(&b, "%-10s %18s %8s %9s   %18s\n",
		"app", "w/o contr. (c/u)", "with", "% change", "paper (w/o -> w/)")
	for _, r := range rows {
		paper := "-"
		if r.PaperBefore > 0 {
			paper = fmt.Sprintf("%d -> %d", r.PaperBefore, r.PaperAfter)
		}
		fmt.Fprintf(&b, "%-10s %10d (%d/%d) %8d %8.1f%%   %18s\n",
			r.Benchmark, r.Before, r.BeforeTemp, r.BeforeUser,
			r.After, r.PctChange, paper)
	}
	return b.String()
}
