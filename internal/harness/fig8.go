package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/programs"
)

// Fig8Row reports, for one benchmark, how contraction scales the
// maximum problem size that fits a fixed memory budget (§5.3).
type Fig8Row struct {
	Benchmark string
	LB        int     // simultaneously live arrays before contraction
	LA        int     // after contraction
	C         float64 // predicted % problem-size scaling: 100*(lb-la)/la

	// Measured largest problem sizes (per-dimension) under the budget.
	MaxWithout int
	MaxWith    int
	// Percent change along one dimension and in total volume.
	DimPct float64
	VolPct float64
}

// Fig8Budget is the array-memory budget used for the measured columns.
// (The paper used whole T3E/SP-2 nodes; any fixed budget exhibits the
// same scaling law.)
const Fig8Budget = int64(64 << 20) // 64 MB

// RunFig8 computes predicted and measured problem-size scaling. The
// per-benchmark binary searches are independent and run on the
// harness worker pool.
func RunFig8() ([]Fig8Row, error) {
	return parallelMap(programs.All(), func(_ int, b programs.Benchmark) (Fig8Row, error) {
		row := Fig8Row{Benchmark: b.Name}

		// lb and la: arrays allocated at baseline versus c2, counting
		// only full-size arrays (the paper's model assumes uniform
		// array sizes; our benchmarks follow it except for the 1-D
		// sweep carriers, which we exclude from the count).
		base, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.Baseline}))
		if err != nil {
			return Fig8Row{}, fmt.Errorf("%s: %w", b.Name, err)
		}
		opt, err := driver.Compile(b.Source, hooked(driver.Options{Level: core.C2F3}))
		if err != nil {
			return Fig8Row{}, fmt.Errorf("%s: %w", b.Name, err)
		}
		row.LB = countMainArrays(base, b.Rank)
		row.LA = countMainArrays(opt, b.Rank)
		if row.LA > 0 {
			row.C = 100 * float64(row.LB-row.LA) / float64(row.LA)
		} else {
			// Every array contracted: the scaled problem size is
			// unbounded (EP's "constant amount of memory").
			row.C = math.Inf(1)
		}

		row.MaxWithout, err = maxProblemSize(b, core.Baseline)
		if err != nil {
			return Fig8Row{}, err
		}
		row.MaxWith, err = maxProblemSize(b, core.C2F3)
		if err != nil {
			return Fig8Row{}, err
		}
		if row.MaxWithout > 0 {
			d := float64(row.MaxWith)/float64(row.MaxWithout) - 1
			row.DimPct = 100 * d
			vol := 1.0
			for i := 0; i < b.Rank; i++ {
				vol *= float64(row.MaxWith) / float64(row.MaxWithout)
			}
			row.VolPct = 100 * (vol - 1)
		}
		return row, nil
	})
}

// countMainArrays counts allocated (non-contracted) arrays of the
// benchmark's full rank.
func countMainArrays(c *driver.Compilation, rank int) int {
	n := 0
	for _, a := range c.AIR.Arrays {
		if !a.Contracted && a.Declared.Rank() == rank {
			n++
		}
	}
	return n
}

// maxProblemSize binary-searches the largest per-dimension size whose
// allocated array footprint fits the budget. EP contracts everything;
// its optimized footprint is size-independent, so the search is capped.
func maxProblemSize(b programs.Benchmark, lvl core.Level) (int, error) {
	limit := 1 << 14
	if b.Rank == 1 {
		limit = 1 << 24
	}
	fits := func(n int) (bool, error) {
		c, err := driver.Compile(b.Source, hooked(driver.Options{
			Level:   lvl,
			Configs: map[string]int64{b.SizeConfig: int64(n)},
		}))
		if err != nil {
			return false, fmt.Errorf("%s n=%d: %w", b.Name, n, err)
		}
		return footprint(c) <= Fig8Budget, nil
	}
	lo, hi := 8, limit
	ok, err := fits(lo)
	if err != nil || !ok {
		return 0, err
	}
	if ok, err = fits(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil // unbounded within the cap (fully contracted)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		ok, err := fits(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// footprint sums the allocated array bytes of a compilation.
func footprint(c *driver.Compilation) int64 {
	var total int64
	for _, a := range c.AIR.Arrays {
		if a.Contracted {
			continue
		}
		total += int64(a.Alloc.Size()) * 8
	}
	return total
}

// FormatFig8 renders the table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: effect of contraction on maximum problem size (budget %d MB)\n\n", Fig8Budget>>20)
	fmt.Fprintf(&b, "%-10s %4s %4s %9s   %12s %12s %10s %10s\n",
		"app", "lb", "la", "C", "max w/o", "max w/", "dim", "volume")
	for _, r := range rows {
		c := fmt.Sprintf("%8.1f%%", r.C)
		if math.IsInf(r.C, 1) {
			c = "     inf "
		}
		fmt.Fprintf(&b, "%-10s %4d %4d %s   %12d %12d %9.1f%% %9.1f%%\n",
			r.Benchmark, r.LB, r.LA, c, r.MaxWithout, r.MaxWith, r.DimPct, r.VolPct)
	}
	b.WriteString("\nC = 100*(lb-la)/la predicts the per-dimension growth when all\narrays share the problem size (§5.3).\n")
	return b.String()
}
