// Package harness reproduces every table and figure of the paper's
// evaluation (§5): the commercial-compiler comparison (Fig. 6), static
// array contraction counts (Fig. 7), memory scaling (Fig. 8), runtime
// improvement ladders on the three machine models (Figs. 9–11), and
// the fusion-versus-communication study (§5.5).
package harness

import (
	"fmt"
	"sync"

	"repro/internal/air"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lower"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/scalarize"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/vm"
)

// CompileEmulated runs the front half of the pipeline and applies an
// emulated compiler strategy instead of the standard ladder.
func CompileEmulated(src string, em core.Emulation, configs map[string]int64) (*air.Program, *core.Plan, error) {
	var errs source.ErrorList
	prog := parser.Parse(src, &errs)
	if errs.HasErrors() {
		return nil, nil, errs.Err()
	}
	info := sema.Check(prog, configs, &errs)
	if errs.HasErrors() {
		return nil, nil, errs.Err()
	}
	airProg := lower.Lower(info, &errs)
	if errs.HasErrors() {
		return nil, nil, errs.Err()
	}
	plan := core.Emulate(airProg, em)
	return airProg, plan, nil
}

// Measurement is one benchmark execution under the machine models.
type Measurement struct {
	Cycles      map[string]float64 // machine name -> modeled cycles
	CommCycles  map[string]float64
	Accesses    int64
	Flops       int64
	MemoryBytes int64
}

// multiTracer fans one VM trace out to several machine cost models,
// so a single execution prices all three paper machines. Each model's
// cache simulation runs on its own goroutine (CostTracer is
// single-goroutine state — see the machine package); the VM thread
// only appends events to a batch and hands full batches to every
// model's channel. Batches are written once and then only read, so
// sharing one slice across the replay goroutines is safe.
type multiTracer struct {
	ts    []*machine.CostTracer
	chs   []chan []traceEvent
	wg    sync.WaitGroup
	batch []traceEvent
}

// traceEvent is one recorded Tracer callback. n doubles as the address
// for accesses and the count for flops.
type traceEvent struct {
	kind      uint8
	write     bool
	piggyback bool
	n         int64
	elems     int
	msgID     int
	phase     air.CommPhase
	array     string
	off       air.Offset
}

const (
	evAccess = iota
	evFlops
	evComm
	evReduce
)

// traceBatch is the fan-out granularity: large enough to amortize the
// channel handoff over the per-event simulation cost, small enough to
// keep the replay goroutines busy during the run.
const traceBatch = 4096

func newMultiTracer(ts []*machine.CostTracer) *multiTracer {
	m := &multiTracer{ts: ts, chs: make([]chan []traceEvent, len(ts))}
	for i, t := range ts {
		ch := make(chan []traceEvent, 4)
		m.chs[i] = ch
		m.wg.Add(1)
		go func(t *machine.CostTracer, ch chan []traceEvent) {
			defer m.wg.Done()
			for batch := range ch {
				for _, e := range batch {
					switch e.kind {
					case evAccess:
						t.Access(e.n, e.write)
					case evFlops:
						t.Flops(e.n)
					case evComm:
						t.Comm(e.array, e.off, e.elems, e.phase, e.msgID, e.piggyback)
					case evReduce:
						t.Reduce()
					}
				}
			}
		}(t, ch)
	}
	return m
}

func (m *multiTracer) emit(e traceEvent) {
	m.batch = append(m.batch, e)
	if len(m.batch) >= traceBatch {
		m.flush()
	}
}

func (m *multiTracer) flush() {
	if len(m.batch) == 0 {
		return
	}
	b := m.batch
	m.batch = make([]traceEvent, 0, traceBatch)
	for _, ch := range m.chs {
		ch <- b
	}
}

// drain flushes the tail batch and waits for every model to finish
// replaying. The tracers must not be read before drain returns.
func (m *multiTracer) drain() {
	m.flush()
	for _, ch := range m.chs {
		close(ch)
	}
	m.wg.Wait()
}

func (m *multiTracer) Access(addr int64, write bool) {
	m.emit(traceEvent{kind: evAccess, n: addr, write: write})
}

func (m *multiTracer) Flops(n int64) {
	m.emit(traceEvent{kind: evFlops, n: n})
}

func (m *multiTracer) Comm(array string, off air.Offset, elems int, phase air.CommPhase, msgID int, piggyback bool) {
	m.emit(traceEvent{kind: evComm, array: array, off: off, elems: elems, phase: phase, msgID: msgID, piggyback: piggyback})
}

func (m *multiTracer) Reduce() {
	m.emit(traceEvent{kind: evReduce})
}

// Measure compiles src with the given options and executes it once,
// pricing the run on every machine model with p processors.
func Measure(src string, opt driver.Options, procs int) (*Measurement, error) {
	c, err := driver.Compile(src, hooked(opt))
	if err != nil {
		return nil, err
	}
	models := machine.Models()
	ts := make([]*machine.CostTracer, len(models))
	for i, mdl := range models {
		ts[i] = machine.NewCostTracer(mdl, procs)
	}
	mt := newMultiTracer(ts)
	mach, _, err := vm.Run(c.LIR, vm.Options{Tracer: mt})
	mt.drain()
	if err != nil {
		return nil, err
	}
	meas := &Measurement{
		Cycles:      map[string]float64{},
		CommCycles:  map[string]float64{},
		MemoryBytes: mach.MemoryFootprint(),
	}
	for i, mdl := range models {
		meas.Cycles[mdl.Name] = mt.ts[i].Cycles
		meas.CommCycles[mdl.Name] = mt.ts[i].CommCycles
	}
	if len(mt.ts) > 0 {
		meas.Accesses = mt.ts[0].AccessCount
		meas.Flops = mt.ts[0].FlopCount
	}
	return meas, nil
}

// Improvement converts a (baseline, optimized) cycle pair to the
// paper's percent-improvement metric: how much faster the optimized
// code runs, (t_base/t_opt - 1) × 100. Negative values are slowdowns.
func Improvement(baseline, optimized float64) float64 {
	if optimized <= 0 {
		return 0
	}
	return (baseline/optimized - 1) * 100
}

// Scalarizable confirms a plan scalarizes cleanly (used by checks).
func Scalarizable(prog *air.Program, plan *core.Plan) error {
	_, err := scalarize.Scalarize(prog, plan)
	return err
}

// fmtPct renders a percentage with one decimal.
func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }
