// Package harness reproduces every table and figure of the paper's
// evaluation (§5): the commercial-compiler comparison (Fig. 6), static
// array contraction counts (Fig. 7), memory scaling (Fig. 8), runtime
// improvement ladders on the three machine models (Figs. 9–11), and
// the fusion-versus-communication study (§5.5).
package harness

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lower"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/scalarize"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/vm"
)

// CompileEmulated runs the front half of the pipeline and applies an
// emulated compiler strategy instead of the standard ladder.
func CompileEmulated(src string, em core.Emulation, configs map[string]int64) (*air.Program, *core.Plan, error) {
	var errs source.ErrorList
	prog := parser.Parse(src, &errs)
	if errs.HasErrors() {
		return nil, nil, errs.Err()
	}
	info := sema.Check(prog, configs, &errs)
	if errs.HasErrors() {
		return nil, nil, errs.Err()
	}
	airProg := lower.Lower(info, &errs)
	if errs.HasErrors() {
		return nil, nil, errs.Err()
	}
	plan := core.Emulate(airProg, em)
	return airProg, plan, nil
}

// Measurement is one benchmark execution under the machine models.
type Measurement struct {
	Cycles      map[string]float64 // machine name -> modeled cycles
	CommCycles  map[string]float64
	Accesses    int64
	Flops       int64
	MemoryBytes int64
}

// multiTracer fans one VM trace out to several machine cost models,
// so a single execution prices all three paper machines.
type multiTracer struct {
	ts []*machine.CostTracer
}

func (m *multiTracer) Access(addr int64, write bool) {
	for _, t := range m.ts {
		t.Access(addr, write)
	}
}

func (m *multiTracer) Flops(n int64) {
	for _, t := range m.ts {
		t.Flops(n)
	}
}

func (m *multiTracer) Comm(array string, off air.Offset, elems int, phase air.CommPhase, msgID int, piggyback bool) {
	for _, t := range m.ts {
		t.Comm(array, off, elems, phase, msgID, piggyback)
	}
}

func (m *multiTracer) Reduce() {
	for _, t := range m.ts {
		t.Reduce()
	}
}

// Measure compiles src with the given options and executes it once,
// pricing the run on every machine model with p processors.
func Measure(src string, opt driver.Options, procs int) (*Measurement, error) {
	c, err := driver.Compile(src, opt)
	if err != nil {
		return nil, err
	}
	models := machine.Models()
	mt := &multiTracer{}
	for _, mdl := range models {
		mt.ts = append(mt.ts, machine.NewCostTracer(mdl, procs))
	}
	mach, _, err := vm.Run(c.LIR, vm.Options{Tracer: mt})
	if err != nil {
		return nil, err
	}
	meas := &Measurement{
		Cycles:      map[string]float64{},
		CommCycles:  map[string]float64{},
		MemoryBytes: mach.MemoryFootprint(),
	}
	for i, mdl := range models {
		meas.Cycles[mdl.Name] = mt.ts[i].Cycles
		meas.CommCycles[mdl.Name] = mt.ts[i].CommCycles
	}
	if len(mt.ts) > 0 {
		meas.Accesses = mt.ts[0].AccessCount
		meas.Flops = mt.ts[0].FlopCount
	}
	return meas, nil
}

// Improvement converts a (baseline, optimized) cycle pair to the
// paper's percent-improvement metric: how much faster the optimized
// code runs, (t_base/t_opt - 1) × 100. Negative values are slowdowns.
func Improvement(baseline, optimized float64) float64 {
	if optimized <= 0 {
		return 0
	}
	return (baseline/optimized - 1) * 100
}

// Scalarizable confirms a plan scalarizes cleanly (used by checks).
func Scalarizable(prog *air.Program, plan *core.Plan) error {
	_, err := scalarize.Scalarize(prog, plan)
	return err
}

// fmtPct renders a percentage with one decimal.
func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }
