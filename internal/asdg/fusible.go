package asdg

import (
	"repro/internal/air"
	"repro/internal/sema"
)

// IsFusible reports whether vertex v may join a fusible cluster.
// Normalized array statements are the fusion candidates of the paper;
// we additionally allow full reductions to join clusters as consumers:
// a reduction's local accumulation loop iterates element-wise over its
// region exactly like an array statement, and fusing it is what lets
// benchmarks such as NAS EP eliminate every array. The reduction's
// global combine (communication) stays outside the cluster.
func (g *Graph) IsFusible(v int) bool {
	switch g.Stmts[v].(type) {
	case *air.ArrayStmt, *air.ReduceStmt:
		return true
	}
	return false
}

// StmtRegion returns the iteration region of a fusible vertex, or nil
// for unnormalized statements.
func (g *Graph) StmtRegion(v int) *sema.Region {
	switch s := g.Stmts[v].(type) {
	case *air.ArrayStmt:
		return s.Region
	case *air.ReduceStmt:
		return s.Region
	}
	return nil
}

// References reports whether vertex v references array x (as a read,
// write, reduction input, or communication subject).
func (g *Graph) References(v int, x string) bool {
	switch s := g.Stmts[v].(type) {
	case *air.ArrayStmt:
		if s.LHS == x {
			return true
		}
		for _, r := range s.Reads() {
			if r.Array == x {
				return true
			}
		}
	case *air.ReduceStmt:
		for _, r := range air.Refs(s.Body) {
			if r.Array == x {
				return true
			}
		}
	case *air.CommStmt:
		return s.Array == x
	}
	return false
}
