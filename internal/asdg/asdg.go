// Package asdg builds the Array Statement Dependence Graph of
// Definition 3: a labeled acyclic digraph whose vertices are the
// statements of one straight-line block and whose edges carry
// (variable, unconstrained distance vector, kind) dependence labels.
//
// Because edges always point from an earlier statement to a later one
// in program order, the graph is acyclic by construction, exactly as
// the paper observes for single basic blocks.
package asdg

import (
	"fmt"
	"strings"

	"repro/internal/air"
	"repro/internal/dep"
)

// Graph is an ASDG over the statements of one block.
type Graph struct {
	Stmts []air.Stmt
	Edges []dep.Edge

	// Seg, when non-nil, labels each statement with its communication
	// segment; the FavorComm strategy forbids fusion across segments.
	Seg []int

	succ [][]int
	pred [][]int
	idx  map[[2]int]int // (from,to) -> index into Edges
}

// Build computes dependences among stmts and assembles the graph.
func Build(stmts []air.Stmt) *Graph {
	return BuildWith(stmts, dep.Compute)
}

// BuildWith assembles the graph from a caller-supplied dependence
// computation (used by ablations, e.g. dep.ComputeNaive).
func BuildWith(stmts []air.Stmt, computeDeps func([]air.Stmt) []dep.Edge) *Graph {
	g := &Graph{
		Stmts: stmts,
		Edges: computeDeps(stmts),
		succ:  make([][]int, len(stmts)),
		pred:  make([][]int, len(stmts)),
		idx:   map[[2]int]int{},
	}
	for i, e := range g.Edges {
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
		g.idx[[2]int{e.From, e.To}] = i
	}
	return g
}

// N returns the number of statements (vertices).
func (g *Graph) N() int { return len(g.Stmts) }

// Succ returns the successors of vertex v.
func (g *Graph) Succ(v int) []int { return g.succ[v] }

// Pred returns the predecessors of vertex v.
func (g *Graph) Pred(v int) []int { return g.pred[v] }

// Edge returns the edge from→to, or nil when absent.
func (g *Graph) Edge(from, to int) *dep.Edge {
	if i, ok := g.idx[[2]int{from, to}]; ok {
		return &g.Edges[i]
	}
	return nil
}

// IsNormalized reports whether vertex v is a normalized array
// statement (the only fusion candidates).
func (g *Graph) IsNormalized(v int) bool {
	_, ok := g.Stmts[v].(*air.ArrayStmt)
	return ok
}

// ArrayStmt returns vertex v as an ArrayStmt, or nil.
func (g *Graph) ArrayStmt(v int) *air.ArrayStmt {
	s, _ := g.Stmts[v].(*air.ArrayStmt)
	return s
}

// DependencesOn returns every edge whose label mentions variable x.
func (g *Graph) DependencesOn(x string) []dep.Edge {
	var out []dep.Edge
	for _, e := range g.Edges {
		for _, it := range e.Items {
			if it.Var == x {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Vertices returns the vertex list in program (topological) order.
func (g *Graph) Vertices() []int {
	vs := make([]int, g.N())
	for i := range vs {
		vs[i] = i
	}
	return vs
}

// ReachableFrom returns the set of vertices reachable from any vertex
// in from (excluding unreachable members of from itself).
func (g *Graph) ReachableFrom(from []int) map[int]bool {
	seen := map[int]bool{}
	stack := append([]int(nil), from...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succ[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Reaching returns the set of vertices that can reach any vertex in to.
func (g *Graph) Reaching(to []int) map[int]bool {
	seen := map[int]bool{}
	stack := append([]int(nil), to...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.pred[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// String renders the graph for debugging and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	for v, s := range g.Stmts {
		fmt.Fprintf(&b, "v%d: %s\n", v, s)
	}
	for _, e := range g.Edges {
		items := make([]string, len(e.Items))
		for i, it := range e.Items {
			items[i] = it.String()
		}
		fmt.Fprintf(&b, "v%d -> v%d: %s\n", e.From, e.To, strings.Join(items, " "))
	}
	return b.String()
}
