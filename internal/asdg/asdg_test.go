package asdg

import (
	"strings"
	"testing"

	"repro/internal/air"
	"repro/internal/dep"
	"repro/internal/sema"
)

func reg2(n int) *sema.Region {
	return &sema.Region{Lo: []int{1, 1}, Hi: []int{n, n}}
}

func arrStmt(r *sema.Region, lhs string, reads ...air.Ref) *air.ArrayStmt {
	var rhs air.Expr
	for _, rd := range reads {
		ref := &air.RefExpr{Ref: rd}
		if rhs == nil {
			rhs = ref
		} else {
			rhs = &air.BinExpr{Op: air.OpAdd, X: rhs, Y: ref}
		}
	}
	if rhs == nil {
		rhs = &air.ConstExpr{Val: 1}
	}
	return &air.ArrayStmt{Region: r, LHS: lhs, RHS: rhs}
}

func ref(a string, vs ...int) air.Ref { return air.Ref{Array: a, Off: air.Offset(vs)} }

func fig2Graph() *Graph {
	r := reg2(4)
	return Build([]air.Stmt{
		arrStmt(r, "A", ref("B", -1, 0)),
		arrStmt(r, "C", ref("A", 0, -1)),
		arrStmt(r, "B", ref("A", -1, 1)),
	})
}

func TestGraphStructure(t *testing.T) {
	g := fig2Graph()
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if e := g.Edge(0, 1); e == nil {
		t.Error("missing edge 0->1")
	}
	if e := g.Edge(0, 2); e == nil {
		t.Error("missing edge 0->2")
	}
	if e := g.Edge(1, 2); e != nil {
		t.Errorf("spurious edge 1->2: %v", e)
	}
	if len(g.Succ(0)) != 2 {
		t.Errorf("succ(0) = %v", g.Succ(0))
	}
	if len(g.Pred(2)) != 1 {
		t.Errorf("pred(2) = %v", g.Pred(2))
	}
}

func TestAcyclicByConstruction(t *testing.T) {
	g := fig2Graph()
	for _, e := range g.Edges {
		if e.From >= e.To {
			t.Errorf("edge %d->%d not forward", e.From, e.To)
		}
	}
}

func TestReachability(t *testing.T) {
	g := fig2Graph()
	down := g.ReachableFrom([]int{0})
	if !down[1] || !down[2] {
		t.Errorf("ReachableFrom(0) = %v", down)
	}
	up := g.Reaching([]int{2})
	if !up[0] {
		t.Errorf("Reaching(2) = %v", up)
	}
	if up[1] {
		t.Errorf("1 should not reach 2: %v", up)
	}
}

func TestIsFusible(t *testing.T) {
	r := reg2(4)
	g := Build([]air.Stmt{
		arrStmt(r, "A", ref("B", 0, 0)),
		&air.ReduceStmt{Target: "s", Op: air.ReduceSum, Region: r,
			Body: &air.RefExpr{Ref: ref("A", 0, 0)}},
		&air.ScalarStmt{LHS: "x", RHS: &air.ConstExpr{Val: 1}},
		&air.CommStmt{Array: "A", Off: air.Offset{0, 1}, Region: r},
	})
	want := []bool{true, true, false, false}
	for v, w := range want {
		if g.IsFusible(v) != w {
			t.Errorf("IsFusible(%d) = %v, want %v", v, g.IsFusible(v), w)
		}
	}
	if g.StmtRegion(0) == nil || g.StmtRegion(1) == nil {
		t.Error("fusible statements must have regions")
	}
	if g.StmtRegion(2) != nil {
		t.Error("scalar statement has a region")
	}
}

func TestReferences(t *testing.T) {
	g := fig2Graph()
	if !g.References(0, "A") || !g.References(0, "B") {
		t.Error("statement 0 references A (write) and B (read)")
	}
	if g.References(1, "B") {
		t.Error("statement 1 does not reference B")
	}
}

func TestDependencesOn(t *testing.T) {
	g := fig2Graph()
	edges := g.DependencesOn("A")
	if len(edges) != 2 {
		t.Errorf("deps on A: %d edges, want 2", len(edges))
	}
	edges = g.DependencesOn("B")
	if len(edges) != 1 {
		t.Errorf("deps on B: %d edges, want 1", len(edges))
	}
}

func TestString(t *testing.T) {
	s := fig2Graph().String()
	for _, want := range []string{"v0", "v1", "v2", "flow", "anti"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// TestSelfEdges: a statement reading its own target (A := f(A@d)) is
// unnormalized in ZA, but the graph must still never record an edge
// from a vertex to itself — the items belong to loop-carried analysis,
// not the ASDG.
func TestSelfEdges(t *testing.T) {
	r := reg2(4)
	g := Build([]air.Stmt{
		arrStmt(r, "A", ref("A", -1, 0)),
		arrStmt(r, "B", ref("A", 0, -1)),
	})
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if e := g.Edge(v, v); e != nil {
			t.Errorf("self edge on v%d: %v", v, e)
		}
		for _, s := range g.Succ(v) {
			if s == v {
				t.Errorf("v%d lists itself as successor", v)
			}
		}
	}
	// The genuine cross-statement flow dependence must survive.
	if e := g.Edge(0, 1); e == nil {
		t.Error("flow edge 0->1 missing")
	}
}

// TestParallelFlowAndAnti: when statement j both reads i's target and
// writes an array i reads, the single edge i->j must carry both the
// flow and the anti item.
func TestParallelFlowAndAnti(t *testing.T) {
	r := reg2(4)
	g := Build([]air.Stmt{
		arrStmt(r, "A", ref("B", -1, 0)),
		arrStmt(r, "B", ref("A", 0, -1)),
	})
	e := g.Edge(0, 1)
	if e == nil {
		t.Fatal("edge 0->1 missing")
	}
	var flows, antis int
	for _, it := range e.Items {
		switch {
		case it.Var == "A" && it.Kind == dep.Flow:
			flows++
		case it.Var == "B" && it.Kind == dep.Anti:
			antis++
		}
	}
	if flows != 1 || antis != 1 {
		t.Errorf("edge 0->1 items = %v; want one A flow and one B anti", e.Items)
	}
	if got := len(g.DependencesOn("A")); got != 1 {
		t.Errorf("DependencesOn(A) = %d edges, want 1", got)
	}
	if got := len(g.DependencesOn("B")); got != 1 {
		t.Errorf("DependencesOn(B) = %d edges, want 1", got)
	}
	if got := g.DependencesOn("C"); got != nil {
		t.Errorf("DependencesOn(C) = %v, want nil", got)
	}
}

// TestEmptyGraph: the degenerate block.
func TestEmptyGraph(t *testing.T) {
	g := Build(nil)
	if g.N() != 0 {
		t.Fatalf("N = %d", g.N())
	}
	if e := g.Edge(0, 0); e != nil {
		t.Errorf("Edge on empty graph = %v", e)
	}
	if deps := g.DependencesOn("A"); len(deps) != 0 {
		t.Errorf("DependencesOn on empty graph = %v", deps)
	}
	if vs := g.Vertices(); len(vs) != 0 {
		t.Errorf("Vertices on empty graph = %v", vs)
	}
}
