// Package token defines the lexical tokens of the ZA array language.
package token

import "fmt"

// Kind enumerates the token kinds produced by the lexer.
type Kind int

// The complete token set of the language.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // tomcatv
	INT    // 42
	FLOAT  // 3.14, 1e-6
	STRING // "boundary"

	// Operators and punctuation.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	CARET   // ^   (power)
	ASSIGN  // :=
	EQ      // =
	NEQ     // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	AND     // &
	OR      // |
	NOT     // !
	AT      // @
	LPAREN  // (
	RPAREN  // )
	LBRACK  // [
	RBRACK  // ]
	LBRACE  // {
	RBRACE  // }
	COMMA   // ,
	SEMI    // ;
	COLON   // :
	DOTDOT  // ..
	REDPLUS // +<<
	REDSTAR // *<<
	REDMAX  // max<<
	REDMIN  // min<<

	// Keywords.
	PROGRAM
	CONFIG
	REGION
	DIRECTION
	VAR
	PROC
	BEGIN
	END
	IF
	THEN
	ELSE
	ELSIF
	FOR
	TO
	DOWNTO
	DO
	WHILE
	RETURN
	INTEGER
	DOUBLE
	BOOLEAN
	TRUE
	FALSE
	WRITELN
	OF
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	IDENT:   "IDENT",
	INT:     "INT",
	FLOAT:   "FLOAT",
	STRING:  "STRING",

	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	PERCENT: "%",
	CARET:   "^",
	ASSIGN:  ":=",
	EQ:      "=",
	NEQ:     "!=",
	LT:      "<",
	LE:      "<=",
	GT:      ">",
	GE:      ">=",
	AND:     "&",
	OR:      "|",
	NOT:     "!",
	AT:      "@",
	LPAREN:  "(",
	RPAREN:  ")",
	LBRACK:  "[",
	RBRACK:  "]",
	LBRACE:  "{",
	RBRACE:  "}",
	COMMA:   ",",
	SEMI:    ";",
	COLON:   ":",
	DOTDOT:  "..",
	REDPLUS: "+<<",
	REDSTAR: "*<<",
	REDMAX:  "max<<",
	REDMIN:  "min<<",

	PROGRAM:   "program",
	CONFIG:    "config",
	REGION:    "region",
	DIRECTION: "direction",
	VAR:       "var",
	PROC:      "proc",
	BEGIN:     "begin",
	END:       "end",
	IF:        "if",
	THEN:      "then",
	ELSE:      "else",
	ELSIF:     "elsif",
	FOR:       "for",
	TO:        "to",
	DOWNTO:    "downto",
	DO:        "do",
	WHILE:     "while",
	RETURN:    "return",
	INTEGER:   "integer",
	DOUBLE:    "double",
	BOOLEAN:   "boolean",
	TRUE:      "true",
	FALSE:     "false",
	WRITELN:   "writeln",
	OF:        "of",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"program":   PROGRAM,
	"config":    CONFIG,
	"region":    REGION,
	"direction": DIRECTION,
	"var":       VAR,
	"proc":      PROC,
	"begin":     BEGIN,
	"end":       END,
	"if":        IF,
	"then":      THEN,
	"else":      ELSE,
	"elsif":     ELSIF,
	"for":       FOR,
	"to":        TO,
	"downto":    DOWNTO,
	"do":        DO,
	"while":     WHILE,
	"return":    RETURN,
	"integer":   INTEGER,
	"double":    DOUBLE,
	"boolean":   BOOLEAN,
	"true":      TRUE,
	"false":     FALSE,
	"writeln":   WRITELN,
	"of":        OF,
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k >= PROGRAM && k <= OF }

// IsLiteral reports whether k is a literal or identifier token.
func (k Kind) IsLiteral() bool { return k >= IDENT && k <= STRING }

// IsReduction reports whether k is a reduction operator token.
func (k Kind) IsReduction() bool {
	return k == REDPLUS || k == REDSTAR || k == REDMAX || k == REDMIN
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NEQ, LT, LE, GT, GE:
		return 3
	case PLUS, MINUS:
		return 4
	case STAR, SLASH, PERCENT:
		return 5
	case CARET:
		return 6
	}
	return 0
}
