package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("program") != PROGRAM || Lookup("region") != REGION {
		t.Error("keyword lookup broken")
	}
	if Lookup("frobnicate") != IDENT {
		t.Error("non-keyword not IDENT")
	}
	// Keywords are case-sensitive.
	if Lookup("Program") != IDENT {
		t.Error("keywords should be case-sensitive")
	}
}

func TestClassification(t *testing.T) {
	if !PROGRAM.IsKeyword() || PLUS.IsKeyword() || IDENT.IsKeyword() {
		t.Error("IsKeyword broken")
	}
	if !IDENT.IsLiteral() || !FLOAT.IsLiteral() || PLUS.IsLiteral() {
		t.Error("IsLiteral broken")
	}
	for _, k := range []Kind{REDPLUS, REDSTAR, REDMAX, REDMIN} {
		if !k.IsReduction() {
			t.Errorf("%v not a reduction", k)
		}
	}
	if PLUS.IsReduction() {
		t.Error("PLUS is not a reduction")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// | < & < comparisons < additive < multiplicative < power.
	chain := []Kind{OR, AND, EQ, PLUS, STAR, CARET}
	for i := 1; i < len(chain); i++ {
		if !(chain[i-1].Precedence() < chain[i].Precedence()) {
			t.Errorf("%v should bind looser than %v", chain[i-1], chain[i])
		}
	}
	if LPAREN.Precedence() != 0 || IDENT.Precedence() != 0 {
		t.Error("non-operators must have precedence 0")
	}
	if NEQ.Precedence() != EQ.Precedence() || LT.Precedence() != GE.Precedence() {
		t.Error("comparison operators must share a level")
	}
	if PLUS.Precedence() != MINUS.Precedence() || STAR.Precedence() != SLASH.Precedence() {
		t.Error("additive/multiplicative groups must share levels")
	}
}

func TestStrings(t *testing.T) {
	cases := map[Kind]string{
		ASSIGN: ":=", DOTDOT: "..", REDPLUS: "+<<", REDMAX: "max<<",
		PROGRAM: "program", EOF: "EOF", NEQ: "!=",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind must still render")
	}
}

// Every keyword's String round-trips through Lookup.
func TestKeywordRoundTrip(t *testing.T) {
	for k := PROGRAM; k <= OF; k++ {
		if Lookup(k.String()) != k {
			t.Errorf("Lookup(%q) != %v", k.String(), k)
		}
	}
}
