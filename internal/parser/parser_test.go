package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/source"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	var errs source.ErrorList
	prog := Parse(src, &errs)
	if errs.HasErrors() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	return prog
}

const miniProgram = `
program mini;
config n : integer = 8;
region R = [1..n, 1..n];
direction north = (-1, 0); east = (0, 1);
var A, B : [R] double;
var s : double;
proc main()
begin
  [R] A := 1.0;
  [R] B := A@north + A@east * 2.0;
  s := +<< [R] B;
  writeln("sum", s);
end;
`

func TestParseMiniProgram(t *testing.T) {
	prog := parseOK(t, miniProgram)
	if prog.Name != "mini" {
		t.Errorf("program name = %q, want mini", prog.Name)
	}
	if len(prog.Decls) != 6 {
		t.Errorf("got %d decls, want 6 (config, region, 2 directions, 2 vars)", len(prog.Decls))
	}
	main := prog.Proc("main")
	if main == nil {
		t.Fatal("no main proc")
	}
	if len(main.Body) != 4 {
		t.Fatalf("main has %d stmts, want 4", len(main.Body))
	}
	aa, ok := main.Body[1].(*ast.ArrayAssign)
	if !ok {
		t.Fatalf("stmt 2 is %T, want ArrayAssign", main.Body[1])
	}
	if aa.LHS != "B" || aa.Region.Name != "R" {
		t.Errorf("stmt 2 = %s %s, want [R] B", ast.RegionString(aa.Region), aa.LHS)
	}
}

func TestParseRoundTrip(t *testing.T) {
	prog := parseOK(t, miniProgram)
	formatted := ast.Format(prog)
	prog2 := parseOK(t, formatted)
	formatted2 := ast.Format(prog2)
	if formatted != formatted2 {
		t.Errorf("format not stable:\nfirst:\n%s\nsecond:\n%s", formatted, formatted2)
	}
}

func TestPrecedence(t *testing.T) {
	tests := []struct{ src, want string }{
		{"a + b * c", "a + b * c"},
		{"(a + b) * c", "(a + b) * c"},
		{"a - b - c", "a - b - c"},
		{"a / b / c", "a / b / c"},
		{"-a + b", "-a + b"},
		{"-(a + b)", "-(a + b)"},
		{"a < b & c < d", "a < b & c < d"},
		{"a * b + c * d", "a * b + c * d"},
	}
	for _, tt := range tests {
		var errs source.ErrorList
		e := ParseExpr(tt.src, &errs)
		if errs.HasErrors() {
			t.Fatalf("ParseExpr(%q): %v", tt.src, errs.Error())
		}
		if got := ast.ExprString(e); got != tt.want {
			t.Errorf("ParseExpr(%q) prints %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestLeftAssociativity(t *testing.T) {
	var errs source.ErrorList
	e := ParseExpr("a - b - c", &errs)
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("not binary: %T", e)
	}
	// (a-b)-c: left child is itself a binary expr.
	if _, ok := bin.X.(*ast.BinaryExpr); !ok {
		t.Errorf("a-b-c parsed right-associatively")
	}
}

func TestAtExpr(t *testing.T) {
	var errs source.ErrorList
	e := ParseExpr("A@north + B@(0, -1)", &errs)
	if errs.HasErrors() {
		t.Fatal(errs.Error())
	}
	bin := e.(*ast.BinaryExpr)
	at1 := bin.X.(*ast.AtExpr)
	if at1.Array != "A" || at1.DirName != "north" {
		t.Errorf("lhs = %s@%s", at1.Array, at1.DirName)
	}
	at2 := bin.Y.(*ast.AtExpr)
	if at2.Array != "B" || len(at2.Offsets) != 2 {
		t.Errorf("rhs = %s with %d offsets", at2.Array, len(at2.Offsets))
	}
}

func TestReduceExpr(t *testing.T) {
	var errs source.ErrorList
	e := ParseExpr("+<< [R] A * A", &errs)
	if errs.HasErrors() {
		t.Fatal(errs.Error())
	}
	// The reduction body extends to the end of the expression:
	// +<< [R] (A * A), matching ZPL.
	red, ok := e.(*ast.ReduceExpr)
	if !ok {
		t.Fatalf("top is %T, want ReduceExpr", e)
	}
	if _, ok := red.Body.(*ast.BinaryExpr); !ok {
		t.Fatalf("body is %T, want BinaryExpr", red.Body)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
program cf;
var i, s : integer;
proc main()
begin
  s := 0;
  for i := 1 to 10 do
    s := s + i;
  end;
  while s > 0 do
    s := s - 1;
  end;
  if s = 0 then
    writeln("zero");
  elsif s > 0 then
    writeln("pos");
  else
    writeln("neg");
  end;
end;
`
	prog := parseOK(t, src)
	main := prog.Proc("main")
	if len(main.Body) != 4 {
		t.Fatalf("got %d stmts, want 4", len(main.Body))
	}
	ifs, ok := main.Body[3].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 4 is %T", main.Body[3])
	}
	if ifs.Else == nil {
		t.Fatal("missing elsif arm")
	}
	inner, ok := ifs.Else[0].(*ast.IfStmt)
	if !ok || inner.Else == nil {
		t.Fatal("elsif chain not nested as if/else")
	}
}

func TestInlineRegion(t *testing.T) {
	src := `
program inline;
config n : integer = 4;
var A : [1..n, 1..n] double;
proc main()
begin
  [1..n, 1..n] A := 0.0;
end;
`
	prog := parseOK(t, src)
	vd := prog.Decls[1].(*ast.VarDecl)
	if vd.Region == nil || vd.Region.Lit == nil || len(vd.Region.Lit.Ranges) != 2 {
		t.Errorf("var region literal not parsed: %+v", vd.Region)
	}
	aa := prog.Proc("main").Body[0].(*ast.ArrayAssign)
	if aa.Region.Lit == nil {
		t.Errorf("statement region literal not parsed")
	}
}

func TestProcWithParamsAndResult(t *testing.T) {
	src := `
program procs;
proc f(x : double; y : double) : double
begin
  return x + y;
end;
proc main()
var z : double;
begin
  z := f(1.0, 2.0);
end;
`
	prog := parseOK(t, src)
	f := prog.Proc("f")
	if f == nil || len(f.Params) != 2 || f.Result.Kind != ast.Double {
		t.Fatalf("f not parsed correctly: %+v", f)
	}
	main := prog.Proc("main")
	if len(main.Locals) != 1 {
		t.Fatalf("main locals = %d, want 1", len(main.Locals))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"program p; var : double;",
		"program p; region R = [1..];",
		"program p; proc main() begin [R] := 1.0; end;",
		"program p; proc main() begin x := ; end;",
		"program p; proc main() begin for i := 1 do end; end;",
	}
	for _, src := range bad {
		var errs source.ErrorList
		Parse(src, &errs)
		if !errs.HasErrors() {
			t.Errorf("no error reported for %q", src)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	// One bad statement must not prevent parsing the rest.
	src := `
program rec;
var s : double;
proc main()
begin
  s := $bad$;
  s := 2.0;
end;
`
	var errs source.ErrorList
	prog := Parse(src, &errs)
	if !errs.HasErrors() {
		t.Fatal("expected errors")
	}
	if prog == nil || prog.Proc("main") == nil {
		t.Fatal("recovery failed: no main proc")
	}
}

func TestFormatContainsSource(t *testing.T) {
	prog := parseOK(t, miniProgram)
	out := ast.Format(prog)
	for _, want := range []string{"program mini;", "region R = [1..n, 1..n];", "[R] B := A@north + A@east * 2.0;", "+<< [R] B"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}
