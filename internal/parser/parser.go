// Package parser builds ZA syntax trees from token streams.
//
// The grammar is LL(1) plus one token of lookahead for distinguishing
// `A@dir` from plain identifiers; a recursive-descent parser with
// precedence-climbing expressions covers it comfortably.
package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Parse parses a complete ZA program. Diagnostics accumulate in errs;
// the returned tree is best-effort when errors occur (possibly nil).
func Parse(src string, errs *source.ErrorList) *ast.Program {
	p := &parser{toks: lexer.Tokenize(src, errs), errs: errs}
	return p.parseProgram()
}

// ParseExpr parses a single expression, for tests and tools.
func ParseExpr(src string, errs *source.ErrorList) ast.Expr {
	p := &parser{toks: lexer.Tokenize(src, errs), errs: errs}
	e := p.parseExpr()
	if p.tok().Kind != token.EOF {
		p.errorf("unexpected %s after expression", p.tok())
	}
	return e
}

type parser struct {
	toks []lexer.Token
	i    int
	errs *source.ErrorList
}

func (p *parser) tok() lexer.Token { return p.toks[p.i] }
func (p *parser) peek() lexer.Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.i]
	if t.Kind != token.EOF {
		p.i++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.tok().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %q, found %s", k.String(), p.tok())
	return lexer.Token{Kind: k, Pos: p.tok().Pos}
}

func (p *parser) errorf(format string, args ...interface{}) {
	p.errs.Errorf(p.tok().Pos, format, args...)
}

// sync skips tokens until a likely statement/declaration boundary.
// It always consumes at least one token so error recovery makes
// progress even when the stream is already at a boundary.
func (p *parser) sync() {
	consumed := false
	for !p.at(token.EOF) {
		if p.accept(token.SEMI) {
			return
		}
		switch p.tok().Kind {
		case token.VAR, token.REGION, token.CONFIG, token.DIRECTION,
			token.PROC, token.END, token.BEGIN:
			if consumed {
				return
			}
		}
		p.next()
		consumed = true
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseProgram() *ast.Program {
	start := p.expect(token.PROGRAM)
	name := p.expect(token.IDENT)
	p.expect(token.SEMI)
	prog := &ast.Program{NamePos: start.Pos, Name: name.Lit}
	for !p.at(token.EOF) {
		switch p.tok().Kind {
		case token.CONFIG:
			prog.Decls = append(prog.Decls, p.parseConfig())
		case token.REGION:
			prog.Decls = append(prog.Decls, p.parseRegionDecl())
		case token.DIRECTION:
			prog.Decls = append(prog.Decls, p.parseDirectionDecls()...)
		case token.VAR:
			prog.Decls = append(prog.Decls, p.parseVarDecl())
		case token.PROC:
			prog.Procs = append(prog.Procs, p.parseProc())
		default:
			p.errorf("unexpected %s at top level", p.tok())
			p.sync()
		}
	}
	return prog
}

func (p *parser) parseConfig() ast.Decl {
	start := p.expect(token.CONFIG)
	name := p.expect(token.IDENT)
	p.expect(token.COLON)
	typ := p.parseType()
	p.expect(token.EQ)
	def := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ConfigDecl{DeclPos: start.Pos, Name: name.Lit, Type: typ, Default: def}
}

func (p *parser) parseRegionDecl() ast.Decl {
	start := p.expect(token.REGION)
	name := p.expect(token.IDENT)
	p.expect(token.EQ)
	lit := p.parseRegionLit()
	p.expect(token.SEMI)
	return &ast.RegionDecl{DeclPos: start.Pos, Name: name.Lit, Lit: lit}
}

// parseDirectionDecls handles `direction a = (...); b = (...);` chains:
// after the keyword, additional name=(…) pairs may follow separated by
// semicolons as long as the next token pair is IDENT '='.
func (p *parser) parseDirectionDecls() []ast.Decl {
	start := p.expect(token.DIRECTION)
	var decls []ast.Decl
	for {
		name := p.expect(token.IDENT)
		p.expect(token.EQ)
		p.expect(token.LPAREN)
		var offs []ast.Expr
		offs = append(offs, p.parseExpr())
		for p.accept(token.COMMA) {
			offs = append(offs, p.parseExpr())
		}
		p.expect(token.RPAREN)
		decls = append(decls, &ast.DirectionDecl{DeclPos: start.Pos, Name: name.Lit, Offsets: offs})
		p.expect(token.SEMI)
		if !(p.at(token.IDENT) && p.peek().Kind == token.EQ) {
			return decls
		}
	}
}

func (p *parser) parseVarDecl() *ast.VarDecl {
	start := p.expect(token.VAR)
	d := p.parseVarBody(start.Pos)
	p.expect(token.SEMI)
	return d
}

func (p *parser) parseVarBody(pos source.Pos) *ast.VarDecl {
	var names []string
	names = append(names, p.expect(token.IDENT).Lit)
	for p.accept(token.COMMA) {
		names = append(names, p.expect(token.IDENT).Lit)
	}
	p.expect(token.COLON)
	var region *ast.RegionExpr
	if p.at(token.LBRACK) {
		region = p.parseRegionExpr()
	}
	typ := p.parseType()
	return &ast.VarDecl{DeclPos: pos, Names: names, Region: region, Type: typ}
}

func (p *parser) parseType() ast.TypeExpr {
	t := p.tok()
	switch t.Kind {
	case token.INTEGER:
		p.next()
		return ast.TypeExpr{TypePos: t.Pos, Kind: ast.Integer}
	case token.DOUBLE:
		p.next()
		return ast.TypeExpr{TypePos: t.Pos, Kind: ast.Double}
	case token.BOOLEAN:
		p.next()
		return ast.TypeExpr{TypePos: t.Pos, Kind: ast.Boolean}
	}
	p.errorf("expected type, found %s", t)
	return ast.TypeExpr{TypePos: t.Pos, Kind: ast.InvalidType}
}

func (p *parser) parseProc() *ast.ProcDecl {
	start := p.expect(token.PROC)
	name := p.expect(token.IDENT)
	p.expect(token.LPAREN)
	var params []ast.Param
	if !p.at(token.RPAREN) {
		for {
			pn := p.expect(token.IDENT)
			p.expect(token.COLON)
			pt := p.parseType()
			params = append(params, ast.Param{Name: pn.Lit, Type: pt})
			if !p.accept(token.SEMI) && !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	var result ast.TypeExpr
	if p.accept(token.COLON) {
		result = p.parseType()
	}
	var locals []*ast.VarDecl
	for p.at(token.VAR) {
		locals = append(locals, p.parseVarDecl())
	}
	p.expect(token.BEGIN)
	body := p.parseStmts()
	p.expect(token.END)
	p.expect(token.SEMI)
	return &ast.ProcDecl{
		DeclPos: start.Pos, Name: name.Lit, Params: params,
		Result: result, Locals: locals, Body: body,
	}
}

// ---------------------------------------------------------------------------
// Regions

func (p *parser) parseRegionExpr() *ast.RegionExpr {
	pos := p.tok().Pos
	p.expect(token.LBRACK)
	// Named region: [R]
	if p.at(token.IDENT) && p.peek().Kind == token.RBRACK {
		name := p.next()
		p.expect(token.RBRACK)
		return &ast.RegionExpr{ExprPos: pos, Name: name.Lit}
	}
	lit := p.parseRegionLitBody(pos)
	return &ast.RegionExpr{ExprPos: pos, Lit: lit}
}

func (p *parser) parseRegionLit() *ast.RegionLit {
	pos := p.tok().Pos
	p.expect(token.LBRACK)
	return p.parseRegionLitBody(pos)
}

// parseRegionLitBody parses ranges after '[' has been consumed.
func (p *parser) parseRegionLitBody(pos source.Pos) *ast.RegionLit {
	lit := &ast.RegionLit{LitPos: pos}
	for {
		lo := p.parseExpr()
		p.expect(token.DOTDOT)
		hi := p.parseExpr()
		lit.Ranges = append(lit.Ranges, ast.Range{Lo: lo, Hi: hi})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACK)
	return lit
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStmts() []ast.Stmt {
	var stmts []ast.Stmt
	for {
		switch p.tok().Kind {
		case token.END, token.ELSE, token.ELSIF, token.EOF:
			return stmts
		}
		s := p.parseStmt()
		if s != nil {
			stmts = append(stmts, s)
		}
	}
}

func (p *parser) parseStmt() ast.Stmt {
	t := p.tok()
	switch t.Kind {
	case token.LBRACK:
		return p.parseArrayAssign()
	case token.IDENT:
		return p.parseIdentStmt()
	case token.IF:
		return p.parseIf()
	case token.FOR:
		return p.parseFor()
	case token.WHILE:
		return p.parseWhile()
	case token.RETURN:
		p.next()
		var v ast.Expr
		if !p.at(token.SEMI) {
			v = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{StmtPos: t.Pos, Value: v}
	case token.WRITELN:
		p.next()
		p.expect(token.LPAREN)
		var args []ast.Expr
		if !p.at(token.RPAREN) {
			args = append(args, p.parseExpr())
			for p.accept(token.COMMA) {
				args = append(args, p.parseExpr())
			}
		}
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.WritelnStmt{StmtPos: t.Pos, Args: args}
	}
	p.errorf("unexpected %s at start of statement", t)
	p.sync()
	return nil
}

func (p *parser) parseArrayAssign() ast.Stmt {
	pos := p.tok().Pos
	region := p.parseRegionExpr()
	lhs := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ArrayAssign{StmtPos: pos, Region: region, LHS: lhs.Lit, RHS: rhs}
}

func (p *parser) parseIdentStmt() ast.Stmt {
	t := p.tok()
	if p.peek().Kind == token.LPAREN {
		call := p.parsePrimary().(*ast.CallExpr)
		p.expect(token.SEMI)
		return &ast.CallStmt{StmtPos: t.Pos, Call: call}
	}
	name := p.next()
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ScalarAssign{StmtPos: t.Pos, LHS: name.Lit, RHS: rhs}
}

func (p *parser) parseIf() ast.Stmt {
	start := p.expect(token.IF)
	cond := p.parseExpr()
	p.expect(token.THEN)
	then := p.parseStmts()
	var els []ast.Stmt
	switch {
	case p.at(token.ELSIF):
		// Treat `elsif` as `else if ...` sharing the outer `end`.
		p.toks[p.i].Kind = token.IF // rewrite in place and reparse
		els = []ast.Stmt{p.parseIfNoEnd()}
	case p.accept(token.ELSE):
		els = p.parseStmts()
	}
	p.expect(token.END)
	p.expect(token.SEMI)
	return &ast.IfStmt{StmtPos: start.Pos, Cond: cond, Then: then, Else: els}
}

// parseIfNoEnd parses an if-chain that shares the enclosing `end`.
func (p *parser) parseIfNoEnd() ast.Stmt {
	start := p.expect(token.IF)
	cond := p.parseExpr()
	p.expect(token.THEN)
	then := p.parseStmts()
	var els []ast.Stmt
	switch {
	case p.at(token.ELSIF):
		p.toks[p.i].Kind = token.IF
		els = []ast.Stmt{p.parseIfNoEnd()}
	case p.accept(token.ELSE):
		els = p.parseStmts()
	}
	return &ast.IfStmt{StmtPos: start.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseFor() ast.Stmt {
	start := p.expect(token.FOR)
	v := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	lo := p.parseExpr()
	down := false
	if p.accept(token.DOWNTO) {
		down = true
	} else {
		p.expect(token.TO)
	}
	hi := p.parseExpr()
	p.expect(token.DO)
	body := p.parseStmts()
	p.expect(token.END)
	p.expect(token.SEMI)
	return &ast.ForStmt{StmtPos: start.Pos, Var: v.Lit, Lo: lo, Hi: hi, Down: down, Body: body}
}

func (p *parser) parseWhile() ast.Stmt {
	start := p.expect(token.WHILE)
	cond := p.parseExpr()
	p.expect(token.DO)
	body := p.parseStmts()
	p.expect(token.END)
	p.expect(token.SEMI)
	return &ast.WhileStmt{StmtPos: start.Pos, Cond: cond, Body: body}
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.tok().Kind
		prec := op.Precedence()
		if prec < minPrec || prec == 0 {
			return x
		}
		opPos := p.next().Pos
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{ExprPos: opPos, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	t := p.tok()
	switch t.Kind {
	case token.MINUS, token.NOT:
		p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{ExprPos: t.Pos, Op: t.Kind, X: x}
	case token.REDPLUS, token.REDSTAR, token.REDMAX, token.REDMIN:
		// A reduction's body extends to the end of the expression
		// (ZPL semantics): +<< [R] A * B reduces the product A*B.
		p.next()
		region := p.parseRegionExpr()
		body := p.parseBinary(1)
		return &ast.ReduceExpr{ExprPos: t.Pos, Op: t.Kind, Region: region, Body: body}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok()
	switch t.Kind {
	case token.IDENT:
		p.next()
		switch p.tok().Kind {
		case token.AT:
			p.next()
			if p.at(token.IDENT) {
				d := p.next()
				return &ast.AtExpr{ExprPos: t.Pos, Array: t.Lit, DirName: d.Lit}
			}
			p.expect(token.LPAREN)
			var offs []ast.Expr
			offs = append(offs, p.parseExpr())
			for p.accept(token.COMMA) {
				offs = append(offs, p.parseExpr())
			}
			p.expect(token.RPAREN)
			return &ast.AtExpr{ExprPos: t.Pos, Array: t.Lit, Offsets: offs}
		case token.LPAREN:
			p.next()
			var args []ast.Expr
			if !p.at(token.RPAREN) {
				args = append(args, p.parseExpr())
				for p.accept(token.COMMA) {
					args = append(args, p.parseExpr())
				}
			}
			p.expect(token.RPAREN)
			return &ast.CallExpr{ExprPos: t.Pos, Name: t.Lit, Args: args}
		}
		return &ast.Ident{ExprPos: t.Pos, Name: t.Lit}
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errs.Errorf(t.Pos, "invalid integer literal %q: %v", t.Lit, err)
		}
		return &ast.IntLit{ExprPos: t.Pos, Value: v}
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errs.Errorf(t.Pos, "invalid float literal %q: %v", t.Lit, err)
		}
		return &ast.FloatLit{ExprPos: t.Pos, Value: v, Text: t.Lit}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{ExprPos: t.Pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{ExprPos: t.Pos, Value: false}
	case token.STRING:
		p.next()
		return &ast.StringLit{ExprPos: t.Pos, Value: t.Lit}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf("unexpected %s in expression", t)
	p.next()
	return &ast.IntLit{ExprPos: t.Pos, Value: 0}
}
