package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/source"
)

// The parser must never panic, whatever bytes arrive.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		var errs source.ErrorList
		Parse(input, &errs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Mutations of a valid program must also never panic, and must either
// parse or produce diagnostics — never both fail silently.
func TestQuickMutatedProgram(t *testing.T) {
	base := `
program mut;
config n : integer = 8;
region R = [1..n, 1..n];
var A, B : [R] double;
var s : double;
proc main()
begin
  [R] A := B@(1,0) + 2.0;
  s := +<< [R] A;
  writeln(s);
end;
`
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic (seed %d): %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		b := []byte(base)
		for i := 0; i < 1+r.Intn(5); i++ {
			switch r.Intn(3) {
			case 0: // delete a byte
				p := r.Intn(len(b))
				b = append(b[:p], b[p+1:]...)
			case 1: // duplicate a byte
				p := r.Intn(len(b))
				b = append(b[:p], append([]byte{b[p]}, b[p:]...)...)
			case 2: // replace with random printable
				b[r.Intn(len(b))] = byte(32 + r.Intn(95))
			}
		}
		var errs source.ErrorList
		Parse(string(b), &errs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
