// Package scalarize lowers an AIR program plus a fusion plan into the
// scalar Loop IR (§4.2): one loop nest per fusible cluster, clusters
// and the statements within them ordered by topological sorts of the
// inter- and intra-cluster dependences, loop structure chosen by
// FIND-LOOP-STRUCTURE, and contracted arrays replaced by registers.
package scalarize

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/core"
	"repro/internal/lir"
	"repro/internal/sema"
)

// Scalarize converts prog under the given plan. The plan must have
// been produced from the same program instance (it refers to its
// blocks and arrays).
func Scalarize(prog *air.Program, plan *core.Plan) (*lir.Program, error) {
	sc := &scalarizer{prog: prog, plan: plan}
	out := &lir.Program{Name: prog.Name, Source: prog, Procs: map[string]*lir.Proc{}}
	for name, p := range prog.Procs {
		body, err := sc.nodes(p.Body)
		if err != nil {
			return nil, fmt.Errorf("scalarize %s: %w", name, err)
		}
		out.Procs[name] = &lir.Proc{
			Name: p.Name, Params: p.Params, HasResult: p.HasResult, Body: body,
		}
	}
	out.Main = out.Procs["main"]
	return out, nil
}

type scalarizer struct {
	prog *air.Program
	plan *core.Plan
}

func (sc *scalarizer) nodes(ns []air.Node) ([]lir.Node, error) {
	var out []lir.Node
	for _, n := range ns {
		switch x := n.(type) {
		case *air.Block:
			blk, err := sc.block(x)
			if err != nil {
				return nil, err
			}
			out = append(out, blk...)
		case *air.Loop:
			body, err := sc.nodes(x.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &lir.Loop{Var: x.Var, Lo: x.Lo, Hi: x.Hi, Down: x.Down, Body: body})
		case *air.While:
			body, err := sc.nodes(x.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &lir.While{Cond: x.Cond, Body: body})
		case *air.If:
			then, err := sc.nodes(x.Then)
			if err != nil {
				return nil, err
			}
			els, err := sc.nodes(x.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &lir.If{Cond: x.Cond, Then: then, Else: els})
		}
	}
	return out, nil
}

// block scalarizes one straight-line block under its fusion partition.
func (sc *scalarizer) block(b *air.Block) ([]lir.Node, error) {
	bp := sc.plan.BlockPlanFor(b)
	if bp == nil {
		// No plan (block outside analysis): trivial partition.
		bp = &core.BlockPlan{Block: b}
	}
	part := bp.Part
	if part == nil {
		var out []lir.Node
		for _, s := range b.Stmts {
			node, err := sc.single(s)
			if err != nil {
				return nil, err
			}
			out = append(out, node)
		}
		return out, nil
	}

	var out []lir.Node
	for _, c := range part.TopoClusters() {
		members := part.Members(c) // ascending = program order, a
		// valid topological order of intra-cluster dependences.
		if len(members) == 1 && !part.G.IsFusible(members[0]) {
			node, err := sc.single(part.G.Stmts[members[0]])
			if err != nil {
				return nil, err
			}
			out = append(out, node)
			continue
		}
		nest, err := sc.nest(part, c, members)
		if err != nil {
			return nil, err
		}
		out = append(out, nest)
	}
	return out, nil
}

// single converts one unnormalized statement.
func (sc *scalarizer) single(s air.Stmt) (lir.Node, error) {
	switch x := s.(type) {
	case *air.ScalarStmt:
		return &lir.ScalarAssign{LHS: x.LHS, RHS: x.RHS, Pos: x.Pos}, nil
	case *air.CommStmt:
		return &lir.Comm{Array: x.Array, Off: x.Off, Reg: x.Region, Phase: x.Phase, MsgID: x.MsgID, Piggyback: x.Piggyback, Pos: x.Pos}, nil
	case *air.WritelnStmt:
		return &lir.Writeln{Args: x.Args, Pos: x.Pos}, nil
	case *air.CallStmt:
		return &lir.Call{Target: x.Target, Proc: x.Proc, Args: x.Args, Pos: x.Pos}, nil
	case *air.ReturnStmt:
		return &lir.Return{Value: x.Value, Pos: x.Pos}, nil
	case *air.PartialReduceStmt:
		return &lir.PartialReduce{
			LHS: x.LHS, Dest: x.Dest, Op: x.Op, Region: x.Region, Body: x.Body,
			Pos: x.Pos,
		}, nil
	case *air.ArrayStmt, *air.ReduceStmt:
		return nil, fmt.Errorf("fusible statement reached single(): %s", s)
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

// nest builds the loop nest for one fusible cluster.
func (sc *scalarizer) nest(part *core.Partition, c int, members []int) (*lir.Nest, error) {
	g := part.G
	regions := make([]*sema.Region, 0, len(members))
	for _, v := range members {
		regions = append(regions, g.StmtRegion(v))
	}
	union := core.UnionRegion(regions)

	order, ok := part.LoopStructureFor(c)
	if !ok || order == nil {
		order = core.Identity(union.Rank())
	}

	nest := &lir.Nest{Region: union, Order: order}
	for _, v := range members {
		stmt := g.Stmts[v]
		switch x := stmt.(type) {
		case *air.ArrayStmt:
			ns := &lir.NestStmt{
				LHS:        x.LHS,
				Contracted: sc.plan.Contracted[x.LHS],
				RHS:        x.RHS,
				Pos:        x.Pos,
			}
			if !x.Region.Equal(union) {
				ns.Guard = x.Region
			}
			if err := sc.checkContractedReads(x.RHS); err != nil {
				return nil, err
			}
			nest.Body = append(nest.Body, ns)
		case *air.ReduceStmt:
			ns := &lir.NestStmt{
				IsReduce: true,
				Target:   x.Target,
				Op:       x.Op,
				RHS:      x.Body,
				Pos:      x.Pos,
			}
			if !x.Region.Equal(union) {
				ns.Guard = x.Region
			}
			if err := sc.checkContractedReads(x.Body); err != nil {
				return nil, err
			}
			nest.Body = append(nest.Body, ns)
		default:
			return nil, fmt.Errorf("unfusible statement %T in cluster", stmt)
		}
	}
	return nest, nil
}

// checkContractedReads asserts the contraction invariant: contracted
// arrays are only ever read at offset zero (Definition 6 guarantees
// null distance vectors).
func (sc *scalarizer) checkContractedReads(e air.Expr) error {
	var err error
	air.Walk(e, func(x air.Expr) {
		if r, ok := x.(*air.RefExpr); ok && err == nil {
			if sc.plan.Contracted[r.Ref.Array] && !r.Ref.Off.IsZero() {
				err = fmt.Errorf("contracted array %s read at offset %s", r.Ref.Array, r.Ref.Off)
			}
		}
	})
	return err
}
