package scalarize_test

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lir"
	"repro/internal/programs"
)

func compile(t *testing.T, src string, lvl core.Level) *driver.Compilation {
	t.Helper()
	c, err := driver.Compile(src, driver.Options{Level: lvl})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBaselineOneNestPerStatement(t *testing.T) {
	src := `
program p;
region R = [1..4];
var A, B, C : [R] double;
proc main()
begin
  [R] A := 1.0;
  [R] B := A;
  [R] C := B;
end;
`
	c := compile(t, src, core.Baseline)
	if got := c.LIR.CountNests(); got != 3 {
		t.Errorf("baseline nests = %d, want 3", got)
	}
	c2 := compile(t, src, core.C2)
	if got := c2.LIR.CountNests(); got != 1 {
		t.Errorf("c2 nests = %d, want 1", got)
	}
}

func TestReversedLoopEmission(t *testing.T) {
	// A := A@(-1,0)+A@(-1,0): the fused nest must run dim 1 reversed.
	src := `
program p;
region R = [1..4, 1..4];
var A : [R] double;
proc main()
begin
  [R] A := 1.0;
  [R] A := A@(-1,0) + A@(-1,0);
end;
`
	c := compile(t, src, core.C2)
	out := lir.EmitC(c.LIR)
	if !strings.Contains(out, "i1 = 4; i1 >= 1; i1--") {
		t.Errorf("no reversed dim-1 loop in:\n%s", out)
	}
}

func TestContractedArrayBecomesRegister(t *testing.T) {
	src := `
program p;
region R = [1..4];
var A, T, B : [R] double;
proc main()
begin
  [R] A := 1.0;
  [R] T := A * 2.0;
  [R] B := T + A;
end;
`
	c := compile(t, src, core.C2)
	out := lir.EmitC(c.LIR)
	if !strings.Contains(out, "T contracted to a scalar") {
		t.Errorf("T not contracted in:\n%s", out)
	}
	if !strings.Contains(out, "double_T") {
		t.Errorf("no register assignment for T in:\n%s", out)
	}
	if strings.Contains(out, "T[") {
		t.Errorf("memory reference to contracted T remains:\n%s", out)
	}
}

func TestGuardEmission(t *testing.T) {
	// Two independent statements over translated regions: greedy
	// pairwise fusion (c2+f4) merges them into one nest over the
	// union, and each statement must be guarded to its own region.
	src := `
program p;
config n : integer = 6;
var A, B : [1..n, 1..n] double;
var X : [1..n, 1..n] double;
var Y : [2..n+1, 1..n] double;
proc main()
begin
  [1..n, 1..n] X := A;
  [2..n+1, 1..n] Y := B;
end;
`
	c := compile(t, src, core.C2F4)
	out := lir.EmitC(c.LIR)
	if c.LIR.CountNests() != 1 {
		t.Fatalf("translated statements not fused (%d nests):\n%s", c.LIR.CountNests(), out)
	}
	if !strings.Contains(out, "if (") {
		t.Errorf("no guard emitted for translated cluster:\n%s", out)
	}
}

func TestClusterTopologicalOrder(t *testing.T) {
	// C depends on B depends on A: nests must come out in order even
	// after fusion decisions.
	src := `
program p;
region R = [1..4];
region S = [1..3];
var A, B : [R] double;
var C : [S] double;
proc main()
begin
  [R] A := 1.0;
  [R] B := A * 2.0;
  [S] C := B@(1);
end;
`
	c := compile(t, src, core.C2F4)
	out := lir.EmitC(c.LIR)
	// B is produced in the first nest and consumed (at an offset, so
	// not contractible) in the second: the producer must come first.
	iw := strings.Index(out, "B[i1-1] =")
	ir := strings.Index(out, "= B[i1]")
	if iw < 0 || ir < 0 || iw > ir {
		t.Errorf("cluster order broken (write@%d, read@%d):\n%s", iw, ir, out)
	}
}

func TestLoopStructureSpatialDefault(t *testing.T) {
	// Unconstrained 2-D nest: inner loop over dimension 2 (row-major).
	src := `
program p;
region R = [1..4, 1..8];
var A : [R] double;
proc main()
begin
  [R] A := 1.0;
end;
`
	c := compile(t, src, core.Baseline)
	out := lir.EmitC(c.LIR)
	i1 := strings.Index(out, "for (i1")
	i2 := strings.Index(out, "for (i2")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("loop order not (i1 outer, i2 inner):\n%s", out)
	}
}

// TestLIRPositionsSurvive is the regression test for position
// threading through scalarization: every LIR statement produced from
// the benchmark suite (including communication-inserted compilations
// and scalar-replacement preloads) must carry the source position of
// its originating statement.
func TestLIRPositionsSurvive(t *testing.T) {
	var walk func(t *testing.T, name string, nodes []lir.Node)
	walk = func(t *testing.T, name string, nodes []lir.Node) {
		bad := func(kind string, ok bool) {
			if !ok {
				t.Errorf("%s: %s without source position", name, kind)
			}
		}
		for _, n := range nodes {
			switch x := n.(type) {
			case *lir.Nest:
				for _, s := range x.Body {
					bad("nest statement", s.Pos.IsValid())
				}
				for _, pl := range x.Preloads {
					bad("preload", pl.Pos.IsValid())
				}
			case *lir.ScalarAssign:
				bad("scalar assign", x.Pos.IsValid())
			case *lir.PartialReduce:
				bad("partial reduce", x.Pos.IsValid())
			case *lir.Comm:
				bad("comm", x.Pos.IsValid())
			case *lir.Call:
				bad("call", x.Pos.IsValid())
			case *lir.Return:
				bad("return", x.Pos.IsValid() || x.Value == nil)
			case *lir.Writeln:
				bad("writeln", x.Pos.IsValid())
			case *lir.Loop:
				walk(t, name, x.Body)
			case *lir.While:
				walk(t, name, x.Body)
			case *lir.If:
				walk(t, name, x.Then)
				walk(t, name, x.Else)
			}
		}
	}
	for _, b := range programs.All() {
		co := comm.DefaultOptions(4)
		for _, opt := range []driver.Options{
			{Level: core.C2F3},
			{Level: core.C2F3, ScalarReplace: true},
			{Level: core.C2F3, Comm: &co},
		} {
			c, err := driver.Compile(b.Source, opt)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			for _, p := range c.LIR.Procs {
				walk(t, b.Name, p.Body)
			}
		}
	}
}
