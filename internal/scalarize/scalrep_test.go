package scalarize_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/air"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lir"
	"repro/internal/programs"
	"repro/internal/vm"
)

const repeatedReads = `
program srep;
config n : integer = 16;
region R = [1..n, 1..n];
var A, B, C : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 * 0.5 + index2;
  [R] B := A * A + A;       -- A read three times per iteration
  [R] C := A + B * B;
  s := +<< [R] C;
  writeln(s);
end;
`

func TestScalarReplaceInstallsPreloads(t *testing.T) {
	c, err := driver.Compile(repeatedReads, driver.Options{Level: core.Baseline, ScalarReplace: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pr := range c.LIR.Procs {
		for _, n := range lir.Nests(pr.Body) {
			total += len(n.Preloads)
		}
	}
	if total == 0 {
		t.Fatal("no preloads installed")
	}
	out := lir.EmitC(c.LIR)
	if !strings.Contains(out, "scalar replacement") {
		t.Errorf("pseudo-C missing preload comment:\n%s", out)
	}
}

func TestScalarReplaceSoundness(t *testing.T) {
	want := runSR(t, repeatedReads, false)
	got := runSR(t, repeatedReads, true)
	if want != got {
		t.Errorf("scalar replacement changed results: %q vs %q", got, want)
	}
	for _, b := range programs.All() {
		cfg := map[string]int64{b.SizeConfig: 16}
		if b.Rank == 1 {
			cfg[b.SizeConfig] = 256
		}
		plain, err := driver.Compile(b.Source, driver.Options{Level: core.C2F3, Configs: cfg})
		if err != nil {
			t.Fatal(err)
		}
		srep, err := driver.Compile(b.Source, driver.Options{Level: core.C2F3, Configs: cfg, ScalarReplace: true})
		if err != nil {
			t.Fatal(err)
		}
		var a, bb bytes.Buffer
		if _, _, err := vm.Run(plain.LIR, vm.Options{Out: &a}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := vm.Run(srep.LIR, vm.Options{Out: &bb}); err != nil {
			t.Fatal(err)
		}
		if a.String() != bb.String() {
			t.Errorf("%s: scalar replacement changed results", b.Name)
		}
	}
}

// accTracer tallies memory accesses only.
type accTracer struct{ n int64 }

func (c *accTracer) Access(int64, bool)                                     { c.n++ }
func (c *accTracer) Flops(int64)                                            {}
func (c *accTracer) Comm(string, air.Offset, int, air.CommPhase, int, bool) {}
func (c *accTracer) Reduce()                                                {}

func TestScalarReplaceReducesAccesses(t *testing.T) {
	count := func(sr bool) int64 {
		c, err := driver.Compile(repeatedReads, driver.Options{Level: core.Baseline, ScalarReplace: sr})
		if err != nil {
			t.Fatal(err)
		}
		tr := &accTracer{}
		if _, _, err := vm.Run(c.LIR, vm.Options{Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		return tr.n
	}
	plain := count(false)
	srep := count(true)
	if srep >= plain {
		t.Errorf("scalar replacement did not reduce accesses: %d vs %d", srep, plain)
	}
}

func runSR(t *testing.T, src string, sr bool) string {
	t.Helper()
	c, err := driver.Compile(src, driver.Options{Level: core.Baseline, ScalarReplace: sr})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, _, err := vm.Run(c.LIR, vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestScalarReplaceSkipsWrittenArrays: an array written in the nest
// must never be preloaded.
func TestScalarReplaceSkipsWrittenArrays(t *testing.T) {
	src := `
program wr;
region R = [1..8];
var A, B : [R] double;
proc main()
begin
  [R] A := 1.0;
  [R] B := A + A;   -- fused at c2? A written by first stmt in nest
end;
`
	c, err := driver.Compile(src, driver.Options{Level: core.C2F4, ScalarReplace: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range c.LIR.Procs {
		for _, n := range lir.Nests(pr.Body) {
			written := map[string]bool{}
			for _, s := range n.Body {
				if !s.IsReduce && !s.Contracted {
					written[s.LHS] = true
				}
			}
			for _, pl := range n.Preloads {
				if written[pl.Array] {
					t.Errorf("preload of written array %s", pl.Array)
				}
			}
		}
	}
}
