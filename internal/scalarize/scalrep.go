package scalarize

import (
	"fmt"
	"sort"

	"repro/internal/air"
	"repro/internal/ast"
	"repro/internal/lir"
	"repro/internal/source"
)

// ScalarReplace installs scalar replacement (Carr & Kennedy, discussed
// in the paper's §6): within each loop nest, an array element read
// more than once per iteration — by one statement or by several fused
// statements — is loaded into a register once and the reads are
// redirected there. Arrays written inside the nest are left alone
// (a preloaded value could go stale mid-iteration).
//
// Contraction subsumes this for the arrays it eliminates; scalar
// replacement picks up the repeated reads of arrays that must stay in
// memory. It mutates the program in place and registers the synthetic
// registers in the source program's scalar table.
func ScalarReplace(p *lir.Program) int {
	installed := 0
	next := 0
	for _, pr := range p.Procs {
		for _, nest := range lir.Nests(pr.Body) {
			installed += replaceInNest(p, nest, &next)
		}
	}
	return installed
}

type refKey struct {
	array string
	off   string
}

func replaceInNest(p *lir.Program, n *lir.Nest, next *int) int {
	written := map[string]bool{}
	for _, s := range n.Body {
		if !s.IsReduce && !s.Contracted {
			written[s.LHS] = true
		}
	}
	counts := map[refKey]int{}
	sample := map[refKey]air.Ref{}
	samplePos := map[refKey]source.Pos{}
	for _, s := range n.Body {
		if s.Guard != nil {
			// Guarded statements execute on a sub-region; preloading
			// their reads over the whole nest could touch storage the
			// allocation never covers.
			continue
		}
		air.Walk(s.RHS, func(e air.Expr) {
			r, ok := e.(*air.RefExpr)
			if !ok {
				return
			}
			info := p.Source.Arrays[r.Ref.Array]
			if info == nil || info.Contracted || written[r.Ref.Array] {
				return
			}
			k := refKey{r.Ref.Array, r.Ref.Off.String()}
			counts[k]++
			sample[k] = r.Ref
			if _, ok := samplePos[k]; !ok {
				samplePos[k] = s.Pos
			}
		})
	}

	var keys []refKey
	for k, c := range counts {
		if c >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].array != keys[j].array {
			return keys[i].array < keys[j].array
		}
		return keys[i].off < keys[j].off
	})
	if len(keys) == 0 {
		return 0
	}

	regOf := map[refKey]string{}
	for _, k := range keys {
		*next++
		reg := fmt.Sprintf("_r%d", *next)
		regOf[k] = reg
		p.Source.Scalars[reg] = &air.ScalarInfo{Name: reg, Type: ast.Double}
		ref := sample[k]
		n.Preloads = append(n.Preloads, lir.Preload{Var: reg, Array: ref.Array, Off: ref.Off.Clone(), Pos: samplePos[k]})
	}
	for _, s := range n.Body {
		if s.Guard != nil {
			continue
		}
		s.RHS = rewriteReads(s.RHS, regOf)
	}
	return len(keys)
}

// rewriteReads replaces matching array reads with register reads.
func rewriteReads(e air.Expr, regOf map[refKey]string) air.Expr {
	switch x := e.(type) {
	case *air.RefExpr:
		if reg, ok := regOf[refKey{x.Ref.Array, x.Ref.Off.String()}]; ok {
			return &air.ScalarExpr{Name: reg}
		}
		return x
	case *air.BinExpr:
		return &air.BinExpr{Op: x.Op, X: rewriteReads(x.X, regOf), Y: rewriteReads(x.Y, regOf)}
	case *air.UnExpr:
		return &air.UnExpr{Op: x.Op, X: rewriteReads(x.X, regOf)}
	case *air.CallExpr:
		args := make([]air.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteReads(a, regOf)
		}
		return &air.CallExpr{Name: x.Name, Args: args}
	}
	return e
}
