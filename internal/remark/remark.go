// Package remark defines structured optimization remarks: one record
// per fusion/contraction decision the optimizer makes, carrying enough
// evidence (the blocking ASDG edge, its unconstrained distance vector,
// and the legality test that failed) for a user or a harness to audit
// why a candidate was or was not transformed. The model follows the
// "optimization remarks" practice of production compilers: the
// optimizer never explains itself in prose alone — every negative
// decision names a machine-checkable witness.
package remark

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/source"
)

// Kind is the decision a remark records.
type Kind string

// The five decision kinds.
const (
	Fused         Kind = "fused"
	NotFused      Kind = "not-fused"
	Contracted    Kind = "contracted"
	NotContracted Kind = "not-contracted"
	// Plan records a whole-plan provenance note: how the plan applied
	// to the program was chosen (e.g. by the zpltune search engine)
	// rather than a single fuse/contract decision.
	Plan Kind = "plan"
)

// Test identifiers: the legality test a negative decision failed, or
// the reason a legal transformation was not performed. Positive
// decisions carry an empty Test.
const (
	// TestSegment: fusion would cross a communication segment
	// boundary (the FavorComm constraint of §5.5).
	TestSegment = "segment"
	// TestFusible: a member statement is not fusible (Definition 5
	// condition on statement form).
	TestFusible = "def5-fusible"
	// TestConformable: member regions are not translates of one
	// another (Definition 5 condition (i)).
	TestConformable = "def5-conformable"
	// TestOrderingOnly: an intra-cluster dependence carries no
	// distance vector (scalar/IO/call ordering), Definition 5 (ii).
	TestOrderingOnly = "def5-ordering-only"
	// TestNullFlow: an intra-cluster flow dependence has a non-null
	// unconstrained distance vector (Theorem 2 / Definition 5 (ii)).
	TestNullFlow = "thm2-null-flow"
	// TestCarriedAnti: an emulated compiler restriction — the cluster
	// would carry a non-null anti dependence.
	TestCarriedAnti = "carried-anti"
	// TestLoopStructure: FIND-LOOP-STRUCTURE found no loop structure
	// vector preserving every intra-cluster dependence (Theorem 1 /
	// Definition 5 (iv)).
	TestLoopStructure = "thm1-loop-structure"
	// TestConfined: a dependence on the array escapes the fused
	// cluster (Definition 6 condition (i)).
	TestConfined = "def6-confined"
	// TestNullVector: a dependence on the array has a non-null (or
	// missing) unconstrained distance vector (Definition 6 (ii)).
	TestNullVector = "def6-null-vector"
	// TestLiveRange: the array's live range is not confined to one
	// block, so contraction is unobservable-safety fails (package
	// liveness).
	TestLiveRange = "live-range"
	// TestLevel: the transformation is legal but the strategy level
	// does not perform it (e.g. user arrays below c2, f1/f2 fuse
	// without contracting).
	TestLevel = "level"
	// TestHeuristic: the transformation is legal but the strategy's
	// greedy heuristic never selected it (e.g. no shared array drives
	// locality fusion at c2+f3).
	TestHeuristic = "heuristic"
	// TestPlan: the transformation is legal but the externally
	// supplied plan (core.ApplySpec) does not perform it.
	TestPlan = "plan"
)

// Edge is the witness dependence edge of a negative decision: the
// concrete ASDG edge whose label blocks the transformation.
type Edge struct {
	From    int        `json:"from"` // vertex index within the block
	To      int        `json:"to"`
	FromPos source.Pos `json:"fromPos"`
	ToPos   source.Pos `json:"toPos"`
	Var     string     `json:"var"`    // the dependence's variable
	Vector  string     `json:"vector"` // "(0,1)", or "-" (ordering-only)
	Dep     string     `json:"dep"`    // flow | anti | output
}

func (e *Edge) String() string {
	return fmt.Sprintf("v%d(%s)→v%d(%s) on %s, vector %s, %s dep",
		e.From, e.FromPos, e.To, e.ToPos, e.Var, e.Vector, e.Dep)
}

// Remark is one recorded decision.
type Remark struct {
	Kind  Kind   `json:"kind"`
	Pass  string `json:"pass"`  // fusion | contraction | liveness
	Block int    `json:"block"` // block index in program order
	// Array is the subject of contraction remarks.
	Array string `json:"array,omitempty"`
	// Pair is the cluster-representative pair of fusion remarks.
	Pair *[2]int `json:"pair,omitempty"`
	// Stmts lists the member vertices of a fused cluster.
	Stmts []int      `json:"stmts,omitempty"`
	Pos   source.Pos `json:"pos"`
	// Test names the legality test that failed (negative decisions).
	Test   string `json:"test,omitempty"`
	Reason string `json:"reason,omitempty"`
	Detail string `json:"detail,omitempty"`
	Edge   *Edge  `json:"edge,omitempty"`
	// Fixit, when non-empty, is an actionable suggestion: the decision
	// was blocked by a single offending reference the user can change.
	Fixit string `json:"fixit,omitempty"`
}

// Negative reports whether the remark records a missed transformation.
func (r Remark) Negative() bool { return r.Kind == NotFused || r.Kind == NotContracted }

// Subject renders the remark's subject: the array, or the cluster pair.
func (r Remark) Subject() string {
	if r.Array != "" {
		return r.Array
	}
	if r.Pair != nil {
		return fmt.Sprintf("clusters {v%d, v%d}", r.Pair[0], r.Pair[1])
	}
	if len(r.Stmts) > 0 {
		ss := make([]string, len(r.Stmts))
		for i, v := range r.Stmts {
			ss[i] = fmt.Sprintf("v%d", v)
		}
		return "cluster {" + strings.Join(ss, " ") + "}"
	}
	return "?"
}

// String renders the remark as a single diagnostic line.
func (r Remark) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: remark: block %d: %s %s", r.Pos, r.Block, r.Kind, r.Subject())
	if r.Test != "" {
		fmt.Fprintf(&b, " [%s]", r.Test)
	}
	if r.Reason != "" {
		fmt.Fprintf(&b, ": %s", r.Reason)
	}
	if r.Edge != nil {
		fmt.Fprintf(&b, " (blocking edge %s)", r.Edge)
	}
	if r.Detail != "" {
		fmt.Fprintf(&b, "; %s", r.Detail)
	}
	if r.Fixit != "" {
		fmt.Fprintf(&b, "; fix-it: %s", r.Fixit)
	}
	return b.String()
}

// Sort orders remarks deterministically: by block, then source
// position, then kind, then subject.
func Sort(rs []Remark) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Subject() < b.Subject()
	})
}

// CountByKind tallies remarks per kind (metrics).
func CountByKind(rs []Remark) map[Kind]int {
	out := map[Kind]int{}
	for _, r := range rs {
		out[r.Kind]++
	}
	return out
}
