// peer.go is the peer tier's client side: typed HTTP calls to the
// /store/get and /store/put endpoints another zpld node serves (see
// node.go). Every call carries a per-attempt timeout; transport
// failures get one bounded retry with backoff; and a peer that fails
// repeatedly trips a breaker so the cluster degrades to local
// compiles instead of stalling every request on a dead node's
// connect timeout.
package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/ccache"
)

// Peer-protocol defaults; Config knobs override them.
const (
	// DefaultPeerTimeout bounds one peer HTTP attempt (dial + response).
	DefaultPeerTimeout = 2 * time.Second
	// DefaultClaimTTL bounds how long a compile claim shields a key: a
	// node that dies mid-compile stops blocking the cluster after this.
	DefaultClaimTTL = 30 * time.Second
	// DefaultPeerWait bounds how long a busy-wait get blocks on the
	// owner for an in-flight compile before falling back locally.
	DefaultPeerWait = 10 * time.Second
	// DefaultMaxPeerBytes caps one peer-transferred envelope.
	DefaultMaxPeerBytes = 32 << 20

	// peerAttempts is the total tries per call (1 retry).
	peerAttempts = 2
	// peerBackoff is the delay before the retry.
	peerBackoff = 100 * time.Millisecond

	// breakerThreshold consecutive failures mark a peer dead;
	// breakerCooldown is how long it is skipped before re-probing.
	breakerThreshold = 3
	breakerCooldown  = 5 * time.Second
)

// Claim outcomes of PeerClaim (mirrors node.go's claim responses).
type ClaimState string

const (
	// ClaimGranted: the caller owns the compile; it must Put or the
	// claim expires by TTL.
	ClaimGranted ClaimState = "granted"
	// ClaimPresent: the artifact landed between get and claim; re-get.
	ClaimPresent ClaimState = "present"
	// ClaimBusy: another node holds the claim; wait-get for its result.
	ClaimBusy ClaimState = "busy"
)

// PeerStats counts one peer's client-side call outcomes.
type PeerStats struct {
	GetHits     int64
	GetMisses   int64
	GetTimeouts int64
	GetErrors   int64
	Puts        int64
	PutErrors   int64
	Claims      int64
	// Tripped counts breaker activations; Dead is the current state.
	Tripped int64
	Dead    bool
}

type peerState struct {
	mu        sync.Mutex
	stats     PeerStats
	failures  int       // consecutive transport failures
	deadUntil time.Time // breaker: skip calls before this
}

// Peers is the client pool over the static member list.
type Peers struct {
	timeout  time.Duration
	maxBytes int64
	client   *http.Client

	mu    sync.Mutex
	peers map[string]*peerState

	// now is stubbed in tests to drive the breaker clock.
	now func() time.Time
}

// NewPeers creates a client pool. timeout <= 0 selects
// DefaultPeerTimeout; maxBytes <= 0 selects DefaultMaxPeerBytes.
func NewPeers(timeout time.Duration, maxBytes int64) *Peers {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxPeerBytes
	}
	return &Peers{
		timeout:  timeout,
		maxBytes: maxBytes,
		client:   &http.Client{},
		peers:    map[string]*peerState{},
		now:      time.Now,
	}
}

func (p *Peers) state(peer string) *peerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.peers[peer]
	if !ok {
		st = &peerState{}
		p.peers[peer] = st
	}
	return st
}

// Stats snapshots every peer's counters.
func (p *Peers) Stats() map[string]PeerStats {
	p.mu.Lock()
	names := make([]string, 0, len(p.peers))
	for n := range p.peers {
		names = append(names, n)
	}
	p.mu.Unlock()
	out := make(map[string]PeerStats, len(names))
	for _, n := range names {
		st := p.state(n)
		st.mu.Lock()
		s := st.stats
		s.Dead = p.now().Before(st.deadUntil)
		st.mu.Unlock()
		out[n] = s
	}
	return out
}

// dead reports whether the breaker currently skips this peer.
func (p *Peers) dead(st *peerState) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return p.now().Before(st.deadUntil)
}

// noteFailure records a transport failure, tripping the breaker on
// the threshold; noteOK resets the failure run.
func (p *Peers) noteFailure(st *peerState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failures++
	if st.failures >= breakerThreshold {
		st.deadUntil = p.now().Add(breakerCooldown)
		st.stats.Tripped++
		st.failures = 0
	}
}

func noteOK(st *peerState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failures = 0
}

// do runs one request with retry/backoff on transport errors. HTTP
// responses of any status are returned without retry — the server
// answered; only failing to reach it is retryable.
func (p *Peers) do(ctx context.Context, st *peerState, build func(ctx context.Context) (*http.Request, error), attemptTimeout time.Duration) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < peerAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(peerBackoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		actx, cancel := context.WithTimeout(ctx, attemptTimeout)
		req, err := build(actx)
		if err != nil {
			cancel()
			return nil, err
		}
		resp, err := p.client.Do(req)
		if err == nil {
			noteOK(st)
			// The cancel must survive until the body is consumed; tie it
			// to body close.
			resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}
		cancel()
		lastErr = err
		p.noteFailure(st)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// Get fetches the envelope for k from peer. wait > 0 asks the owner to
// block that long for an in-flight compile of k before answering miss.
// ok is false on miss, breaker-skip, timeout, or any error — the
// caller always degrades to a local path.
func (p *Peers) Get(ctx context.Context, peer string, k ccache.Key, wait time.Duration) (raw []byte, ok bool) {
	st := p.state(peer)
	if p.dead(st) {
		return nil, false
	}
	url := fmt.Sprintf("http://%s/store/get?key=%s", peer, k.String())
	attempt := p.timeout
	if wait > 0 {
		url += "&wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
		// The attempt must outlive the server-side wait.
		attempt = wait + p.timeout
	}
	resp, err := p.do(ctx, st, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	}, attempt)
	if err != nil {
		st.mu.Lock()
		if ctxErr := ctx.Err(); ctxErr != nil || isTimeout(err) {
			st.stats.GetTimeouts++
		} else {
			st.stats.GetErrors++
		}
		st.mu.Unlock()
		return nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBytes+1))
		if err != nil || int64(len(raw)) > p.maxBytes {
			st.mu.Lock()
			st.stats.GetErrors++
			st.mu.Unlock()
			return nil, false
		}
		st.mu.Lock()
		st.stats.GetHits++
		st.mu.Unlock()
		return raw, true
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		st.mu.Lock()
		st.stats.GetMisses++
		st.mu.Unlock()
		return nil, false
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		st.mu.Lock()
		st.stats.GetErrors++
		st.mu.Unlock()
		return nil, false
	}
}

// Put pushes an encoded envelope for k to peer, best-effort.
func (p *Peers) Put(ctx context.Context, peer string, k ccache.Key, raw []byte) bool {
	st := p.state(peer)
	if p.dead(st) {
		return false
	}
	if int64(len(raw)) > p.maxBytes {
		return false
	}
	url := fmt.Sprintf("http://%s/store/put?key=%s", peer, k.String())
	resp, err := p.do(ctx, st, func(actx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	}, p.timeout)
	if err != nil {
		st.mu.Lock()
		st.stats.PutErrors++
		st.mu.Unlock()
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	st.mu.Lock()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent {
		st.stats.Puts++
	} else {
		st.stats.PutErrors++
	}
	st.mu.Unlock()
	return resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent
}

// Claim asks the owner for the compile claim on k: a PUT with no body
// and claim=1. The reply is one of the ClaimState words.
func (p *Peers) Claim(ctx context.Context, peer string, k ccache.Key) (ClaimState, bool) {
	st := p.state(peer)
	if p.dead(st) {
		return "", false
	}
	url := fmt.Sprintf("http://%s/store/put?key=%s&claim=1", peer, k.String())
	resp, err := p.do(ctx, st, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodPost, url, nil)
	}, p.timeout)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64))
	st.mu.Lock()
	st.stats.Claims++
	st.mu.Unlock()
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	switch s := ClaimState(bytes.TrimSpace(body)); s {
	case ClaimGranted, ClaimPresent, ClaimBusy:
		return s, true
	default:
		return "", false
	}
}

// Abandon releases a claim this node was granted but cannot fulfil
// (the compute errored), waking the owner's waiters early instead of
// leaving them to the TTL. Best-effort.
func (p *Peers) Abandon(ctx context.Context, peer string, k ccache.Key) {
	st := p.state(peer)
	if p.dead(st) {
		return
	}
	url := fmt.Sprintf("http://%s/store/put?key=%s&abandon=1", peer, k.String())
	resp, err := p.do(ctx, st, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodPost, url, nil)
	}, p.timeout)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// Reachable probes peer's /healthz with one short attempt (no retry,
// no breaker update) — the /cluster endpoint's active liveness check.
func (p *Peers) Reachable(ctx context.Context, peer string) bool {
	actx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, "http://"+peer+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func isTimeout(err error) bool {
	t, ok := err.(interface{ Timeout() bool })
	return ok && t.Timeout()
}
