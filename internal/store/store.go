// Package store is zpld's tiered content-addressed artifact store:
// the sharding and persistence layer that turns N daemons with
// private in-memory caches into one logical cluster cache.
//
// A lookup falls through three tiers:
//
//	mem   — the process-local byte-bounded LRU (internal/ccache),
//	        unchanged: the hot tier, holding decoded entries.
//	disk  — a content-addressed directory of encoded entries that
//	        survives restarts (disk.go); every artifact this node
//	        sees is written through, so a restarted node rehydrates
//	        without recompiling.
//	peer  — the other members of a static cluster, addressed by
//	        consistent hashing (ring.go): each key has one owner
//	        node, and non-owners fetch from / publish to it over the
//	        /store/get+/store/put protocol (peer.go, node.go).
//
// Singleflight holds across all tiers: in-process callers join one
// flight; across the cluster, a compile claim on the key's owner
// (node.go) makes a thundering herd on one cold key compile exactly
// once — every other node blocks briefly on the owner and receives
// the artifact by content hash.
//
// Failure semantics: the peer tier is an optimization, never a
// dependency. A dead owner, a timeout, a checksum mismatch, an
// oversized artifact — each degrades to the local path (disk, then
// compile). Store lookups return errors only from the compute
// function itself.
package store

import (
	"context"
	"sync"

	"repro/internal/ccache"
)

// Tier names as reported in Result and metrics.
const (
	TierMem  = "mem"
	TierDisk = "disk"
	TierPeer = "peer"
)

// Result says how a lookup was served: the classic cache outcome plus
// which tier produced the entry ("" for a miss that ran the compute).
type Result struct {
	Outcome ccache.Outcome
	Tier    string
}

// Store is the lookup interface the service compiles through. The
// contract matches ccache.Cache.GetOrCompute with a context threaded
// in (peer fetches must respect the request deadline) and the serving
// tier reported alongside the outcome.
type Store interface {
	GetOrCompute(ctx context.Context, k ccache.Key, compute func() (*ccache.Entry, error)) (*ccache.Entry, Result, error)
	// Stats aggregates across tiers into the classic counter shape:
	// Hits counts lookups served from any tier, Misses counts lookups
	// that ran the compute, DedupHits counts lookups that joined
	// another caller's work (in-process flights and cluster claims).
	Stats() ccache.Stats
	TierStats() TierStats
}

// TierStats breaks a store's activity down by tier.
type TierStats struct {
	MemHits  int64
	DiskHits int64
	PeerHits int64
	Misses   int64 // lookups that ran the compute
	Dedups   int64 // in-process flight joins + cluster claim waits

	Mem   ccache.Stats
	Disk  DiskStats            // zero when no disk tier is configured
	Peers map[string]PeerStats // nil when unclustered
}

type tflight struct {
	done chan struct{}
	e    *ccache.Entry
	res  Result
	err  error
}

// Tiered is the Store implementation. disk and node are optional: a
// nil disk drops the persistence tier, a nil node drops the peer tier
// (and with both nil, Tiered is the memory LRU plus singleflight —
// the pre-cluster behavior, re-expressed).
type Tiered struct {
	mem  *ccache.Cache
	disk *Disk
	node *Node

	mu       sync.Mutex
	inflight map[ccache.Key]*tflight

	memHits, diskHits, peerHits, misses, dedups int64
}

// NewTiered assembles a store from its tiers.
func NewTiered(mem *ccache.Cache, disk *Disk, node *Node) *Tiered {
	return &Tiered{mem: mem, disk: disk, node: node, inflight: map[ccache.Key]*tflight{}}
}

// Mem exposes the memory tier (the service registers it with the
// cluster node so peers can be served out of hot entries).
func (t *Tiered) Mem() *ccache.Cache { return t.mem }

// GetOrCompute implements Store.
func (t *Tiered) GetOrCompute(ctx context.Context, k ccache.Key, compute func() (*ccache.Entry, error)) (*ccache.Entry, Result, error) {
	// Hot tier first: no flight, no lock ordering, just the LRU.
	if e, ok := t.mem.Get(k); ok {
		t.mu.Lock()
		t.memHits++
		t.mu.Unlock()
		return e, Result{ccache.Hit, TierMem}, nil
	}

	// In-process singleflight across ALL lower tiers: one goroutine
	// probes disk/peers/compute per key; the rest join its result.
	t.mu.Lock()
	if fl, ok := t.inflight[k]; ok {
		t.dedups++
		t.mu.Unlock()
		select {
		case <-fl.done:
			res := fl.res
			res.Outcome = ccache.Dedup
			return fl.e, res, fl.err
		case <-ctx.Done():
			return nil, Result{}, ctx.Err()
		}
	}
	fl := &tflight{done: make(chan struct{})}
	t.inflight[k] = fl
	t.mu.Unlock()

	fl.e, fl.res, fl.err = t.fill(ctx, k, compute)
	if fl.err == nil && fl.e != nil {
		// Promote into the hot tier before releasing joiners, so a
		// joiner's next same-key request is a mem hit.
		t.mem.Put(k, fl.e)
	}

	t.mu.Lock()
	delete(t.inflight, k)
	switch {
	case fl.err != nil:
		t.misses++
	case fl.res.Tier == TierDisk:
		t.diskHits++
	case fl.res.Tier == TierPeer && fl.res.Outcome == ccache.Dedup:
		t.dedups++
	case fl.res.Tier == TierPeer:
		t.peerHits++
	default:
		t.misses++
	}
	t.mu.Unlock()
	close(fl.done)
	return fl.e, fl.res, fl.err
}

// fill serves a mem-missed key from the lower tiers, computing as the
// last resort. It reports the serving tier; the caller does counters
// and mem promotion.
func (t *Tiered) fill(ctx context.Context, k ccache.Key, compute func() (*ccache.Entry, error)) (*ccache.Entry, Result, error) {
	// Disk tier: this node has seen the key in a previous life.
	if t.disk != nil {
		if e, ok := t.disk.Get(k); ok {
			return e, Result{ccache.Hit, TierDisk}, nil
		}
	}

	owner := ""
	if t.node != nil {
		owner = t.node.Owner(k)
	}
	if owner != "" && !t.node.IsSelf(owner) {
		return t.fillRemote(ctx, k, owner, compute)
	}
	return t.fillLocal(ctx, k, compute)
}

// fillRemote handles a key owned by another node: fetch from the
// owner; on a cold key, claim the compile there so the whole cluster
// runs it once; always degrade to a local compile when the owner is
// unreachable or slow.
func (t *Tiered) fillRemote(ctx context.Context, k ccache.Key, owner string, compute func() (*ccache.Entry, error)) (*ccache.Entry, Result, error) {
	peers := t.node.Clients()
	if raw, ok := peers.Get(ctx, owner, k, 0); ok {
		if e, err := Decode(raw); err == nil {
			t.writeDisk(k, raw) // replicate for this node's restarts
			return e, Result{ccache.Hit, TierPeer}, nil
		}
	}

	granted := false
	if state, ok := peers.Claim(ctx, owner, k); ok {
		switch state {
		case ClaimPresent:
			// The artifact landed between get and claim.
			if raw, ok := peers.Get(ctx, owner, k, 0); ok {
				if e, err := Decode(raw); err == nil {
					t.writeDisk(k, raw)
					return e, Result{ccache.Hit, TierPeer}, nil
				}
			}
		case ClaimBusy:
			// Another node is compiling this key right now; wait for
			// its result on the owner instead of duplicating the work.
			if raw, ok := peers.Get(ctx, owner, k, t.node.WaitCap()); ok {
				if e, err := Decode(raw); err == nil {
					t.writeDisk(k, raw)
					return e, Result{ccache.Dedup, TierPeer}, nil
				}
			}
		case ClaimGranted:
			granted = true
		}
	}

	// Local compile: we hold the cluster claim, or the owner is
	// degraded and we eat the duplicate work rather than fail.
	e, err := compute()
	if err != nil {
		if granted {
			peers.Abandon(ctx, owner, k)
		}
		return nil, Result{ccache.Miss, ""}, err
	}
	e.Key = k
	if raw, encErr := Encode(e); encErr == nil {
		t.writeDisk(k, raw)
		// Publish to the owner (resolving our claim there); best
		// effort — a failed put costs the cluster a recompile later,
		// never this request.
		if !peers.Put(ctx, owner, k, raw) && granted {
			peers.Abandon(ctx, owner, k)
		}
	} else if granted {
		peers.Abandon(ctx, owner, k)
	}
	return e, Result{ccache.Miss, ""}, nil
}

// fillLocal handles a key this node owns (or an unclustered store):
// take the node-level claim so remote waiters block on us, compute,
// and write disk before resolving so woken waiters find the artifact.
func (t *Tiered) fillLocal(ctx context.Context, k ccache.Key, compute func() (*ccache.Entry, error)) (*ccache.Entry, Result, error) {
	claimed := false
	if t.node != nil {
		state, done := t.node.tryClaim(k)
		if state == ClaimBusy {
			// A remote node holds the compile claim on our key. Wait
			// like any other cluster member, then re-check the tiers.
			wait := t.node.WaitCap()
			select {
			case <-done:
			case <-clockAfter(wait):
			case <-ctx.Done():
				return nil, Result{}, ctx.Err()
			}
			if e, ok := t.mem.Peek(k); ok {
				return e, Result{ccache.Dedup, TierMem}, nil
			}
			if t.disk != nil {
				if e, ok := t.disk.Get(k); ok {
					return e, Result{ccache.Dedup, TierDisk}, nil
				}
			}
			// Claimant died or failed: fall through and compute
			// without a claim — correctness over exactly-once.
		} else {
			claimed = true
		}
	}

	e, err := compute()
	if err != nil {
		if claimed {
			t.node.abandonClaim(k)
		}
		return nil, Result{ccache.Miss, ""}, err
	}
	e.Key = k
	if raw, encErr := Encode(e); encErr == nil {
		t.writeDisk(k, raw)
	}
	if claimed {
		// Waiters woken here re-read mem/disk; the disk write above
		// (and the caller's mem promotion for in-process joiners)
		// already happened.
		t.node.resolveClaim(k)
	}
	return e, Result{ccache.Miss, ""}, nil
}

func (t *Tiered) writeDisk(k ccache.Key, raw []byte) {
	if t.disk != nil {
		t.disk.PutRaw(k, raw)
	}
}

// Stats implements Store: gauges from the memory tier, flow counters
// from the store's own cross-tier accounting.
func (t *Tiered) Stats() ccache.Stats {
	ms := t.mem.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	return ccache.Stats{
		Hits:      t.memHits + t.diskHits + t.peerHits,
		Misses:    t.misses,
		DedupHits: t.dedups,
		Evictions: ms.Evictions,
		TooLarge:  ms.TooLarge,
		Bytes:     ms.Bytes,
		Entries:   ms.Entries,
		MaxBytes:  ms.MaxBytes,
	}
}

// TierStats implements Store.
func (t *Tiered) TierStats() TierStats {
	ts := TierStats{Mem: t.mem.Stats()}
	if t.disk != nil {
		ts.Disk = t.disk.Stats()
	}
	if t.node != nil {
		ts.Peers = t.node.Clients().Stats()
	}
	t.mu.Lock()
	ts.MemHits, ts.DiskHits, ts.PeerHits = t.memHits, t.diskHits, t.peerHits
	ts.Misses, ts.Dedups = t.misses, t.dedups
	t.mu.Unlock()
	return ts
}
