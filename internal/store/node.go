// node.go is the peer tier's server side: the /store/get and
// /store/put handlers one zpld node mounts, plus the claim table that
// makes a cluster-wide thundering herd on one key compile exactly
// once.
//
// Protocol (all bodies are either raw envelopes or small text):
//
//	GET  /store/get?key=<hex>[&wait_ms=N]
//	     200 application/octet-stream — the encoded envelope, with
//	         X-Zpl-Store-Tier naming the serving tier (mem|disk);
//	     404 — not present. With wait_ms, a key under an active
//	         compile claim blocks up to min(wait_ms, waitCap) for the
//	         claimant's put before re-checking.
//
//	POST /store/put?key=<hex>            body = envelope
//	     204 — stored (disk + matching memory tiers) and any claim on
//	         the key resolved; 400 — undecodable or key mismatch.
//	POST /store/put?key=<hex>&claim=1    no body
//	     200 with one of "granted" | "present" | "busy".
//	POST /store/put?key=<hex>&abandon=1  no body
//	     204 — claim cleared, waiters woken.
//
// Claims expire after a TTL so a claimant that dies mid-compile stops
// shielding the key; waiters additionally bound their own blocking,
// so the worst case of every failure mode is a duplicate compile —
// never a stuck request.
package store

import (
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/ccache"
)

// clockAfter is time.After, stubbed in tests that drive claim waits.
var clockAfter = time.After

type claim struct {
	done    chan struct{}
	expires time.Time
}

// localTier is one registered in-process cache a node can serve peers
// from; accepts filters by artifact kind so the compile cache and the
// tune cache each see only their entries.
type localTier struct {
	name    string
	cache   *ccache.Cache
	accepts func(ccache.ArtifactKind) bool
}

// NodeStats counts the server side of the peer protocol.
type NodeStats struct {
	ServedHits   int64 // /store/get answered with an envelope
	ServedMisses int64 // /store/get answered 404
	ServedPuts   int64 // /store/put bodies accepted
	ServedClaims int64 // claim requests answered (any state)
	BadRequests  int64 // malformed keys, undecodable bodies, mismatches
}

// Node is this process's membership in the cluster: its identity, the
// hash ring, the claim table, and the handlers peers call.
type Node struct {
	self     string
	ring     *Ring
	disk     *Disk // may be nil: peers are then served from mem only
	peers    *Peers
	claimTTL time.Duration
	waitCap  time.Duration
	maxBytes int64

	mu     sync.Mutex
	claims map[ccache.Key]*claim
	locals []localTier
	stats  NodeStats

	now func() time.Time
}

// NodeConfig assembles a Node.
type NodeConfig struct {
	Self     string        // this node's host:port as it appears in Peers
	Peers    []string      // static member list (may or may not include Self)
	Disk     *Disk         // shared with the Tiered stores; may be nil
	Timeout  time.Duration // per-attempt peer timeout (0 → DefaultPeerTimeout)
	ClaimTTL time.Duration // compile-claim lifetime (0 → DefaultClaimTTL)
	WaitCap  time.Duration // max blocking on a claim (0 → DefaultPeerWait)
	MaxBytes int64         // max peer-transferred envelope (0 → DefaultMaxPeerBytes)
}

// NewNode builds the node. The ring always contains Self, so a member
// list that omits it still routes a share of keys here.
func NewNode(cfg NodeConfig) *Node {
	members := append([]string{cfg.Self}, cfg.Peers...)
	n := &Node{
		self:     cfg.Self,
		ring:     NewRing(members),
		disk:     cfg.Disk,
		peers:    NewPeers(cfg.Timeout, cfg.MaxBytes),
		claimTTL: cfg.ClaimTTL,
		waitCap:  cfg.WaitCap,
		maxBytes: cfg.MaxBytes,
		claims:   map[ccache.Key]*claim{},
		now:      time.Now,
	}
	if n.claimTTL <= 0 {
		n.claimTTL = DefaultClaimTTL
	}
	if n.waitCap <= 0 {
		n.waitCap = DefaultPeerWait
	}
	if n.maxBytes <= 0 {
		n.maxBytes = DefaultMaxPeerBytes
	}
	return n
}

// Self returns this node's cluster identity.
func (n *Node) Self() string { return n.self }

// Members returns the ring's member list (Self included, sorted).
func (n *Node) Members() []string { return n.ring.Members() }

// Owner returns the member owning k.
func (n *Node) Owner(k ccache.Key) string { return n.ring.Owner(k) }

// IsSelf reports whether member is this node.
func (n *Node) IsSelf(member string) bool { return member == n.self }

// Clients returns the peer client pool.
func (n *Node) Clients() *Peers { return n.peers }

// WaitCap returns the claim-wait bound.
func (n *Node) WaitCap() time.Duration { return n.waitCap }

// Stats snapshots the served-request counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// RegisterLocal attaches an in-process cache as a peer-servable tier.
// accepts filters which artifact kinds route into it on puts.
func (n *Node) RegisterLocal(name string, c *ccache.Cache, accepts func(ccache.ArtifactKind) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.locals = append(n.locals, localTier{name: name, cache: c, accepts: accepts})
}

// lookupLocal finds k in the registered memory tiers or on disk,
// returning the encoded envelope and the tier name. Memory hits are
// read with Peek: serving a peer must not distort this node's own
// LRU recency or hit counters.
func (n *Node) lookupLocal(k ccache.Key) (raw []byte, tier string, ok bool) {
	n.mu.Lock()
	locals := n.locals
	n.mu.Unlock()
	for _, lt := range locals {
		if e, ok := lt.cache.Peek(k); ok {
			if raw, err := Encode(e); err == nil {
				return raw, TierMem, true
			}
		}
	}
	if n.disk != nil {
		if raw, ok := n.disk.GetRawVerified(k); ok {
			return raw, TierDisk, true
		}
	}
	return nil, "", false
}

// tryClaim takes the compile claim on k, granting it if no live claim
// exists (expired claims are swept and their waiters woken).
func (n *Node) tryClaim(k ccache.Key) (ClaimState, <-chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.claims[k]; ok {
		if n.now().Before(c.expires) {
			return ClaimBusy, c.done
		}
		close(c.done)
		delete(n.claims, k)
	}
	c := &claim{done: make(chan struct{}), expires: n.now().Add(n.claimTTL)}
	n.claims[k] = c
	return ClaimGranted, c.done
}

// resolveClaim clears the claim on k and wakes its waiters (the
// artifact is in place). Idempotent.
func (n *Node) resolveClaim(k ccache.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.claims[k]; ok {
		close(c.done)
		delete(n.claims, k)
	}
}

// abandonClaim is resolveClaim for the failure path; waiters wake and
// fall back to their own compiles.
func (n *Node) abandonClaim(k ccache.Key) { n.resolveClaim(k) }

// claimWaiter returns the done channel of a live claim on k, if any.
func (n *Node) claimWaiter(k ccache.Key) (<-chan struct{}, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.claims[k]
	if !ok || !n.now().Before(c.expires) {
		return nil, false
	}
	return c.done, true
}

func parseKey(s string) (ccache.Key, error) {
	var k ccache.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// ServeGet handles GET /store/get.
func (n *Node) ServeGet(w http.ResponseWriter, r *http.Request) {
	k, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		n.count(func(s *NodeStats) { s.BadRequests++ })
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw, tier, ok := n.lookupLocal(k)
	if !ok {
		// A live claim means the artifact is seconds away; hold the
		// request (bounded) instead of making the caller recompile.
		if ms, _ := strconv.Atoi(r.URL.Query().Get("wait_ms")); ms > 0 {
			if done, live := n.claimWaiter(k); live {
				wait := time.Duration(ms) * time.Millisecond
				if wait > n.waitCap {
					wait = n.waitCap
				}
				select {
				case <-done:
				case <-clockAfter(wait):
				case <-r.Context().Done():
				}
				raw, tier, ok = n.lookupLocal(k)
			}
		}
	}
	if !ok || int64(len(raw)) > n.maxBytes {
		n.count(func(s *NodeStats) { s.ServedMisses++ })
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	n.count(func(s *NodeStats) { s.ServedHits++ })
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Zpl-Store-Tier", tier)
	w.Write(raw)
}

// ServePut handles POST /store/put (stores, claims, abandons).
func (n *Node) ServePut(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k, err := parseKey(q.Get("key"))
	if err != nil {
		n.count(func(s *NodeStats) { s.BadRequests++ })
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	switch {
	case q.Get("claim") == "1":
		n.count(func(s *NodeStats) { s.ServedClaims++ })
		if _, _, ok := n.lookupLocal(k); ok {
			fmt.Fprint(w, ClaimPresent)
			return
		}
		state, _ := n.tryClaim(k)
		fmt.Fprint(w, state)
		return

	case q.Get("abandon") == "1":
		n.resolveClaim(k)
		w.WriteHeader(http.StatusNoContent)
		return
	}

	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.maxBytes))
	if err != nil {
		n.count(func(s *NodeStats) { s.BadRequests++ })
		http.Error(w, "body too large or unreadable", http.StatusBadRequest)
		return
	}
	e, err := Decode(raw)
	if err != nil {
		n.count(func(s *NodeStats) { s.BadRequests++ })
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if e.Key != k {
		// The envelope binds content to its key; a mismatch is a
		// routing bug on the sender, not something to store.
		n.count(func(s *NodeStats) { s.BadRequests++ })
		http.Error(w, "key mismatch", http.StatusBadRequest)
		return
	}

	if n.disk != nil {
		n.disk.PutRaw(k, raw)
	}
	n.mu.Lock()
	locals := n.locals
	n.mu.Unlock()
	for _, lt := range locals {
		if lt.accepts == nil || lt.accepts(e.Kind) {
			lt.cache.Put(k, e)
		}
	}
	n.resolveClaim(k)
	n.count(func(s *NodeStats) { s.ServedPuts++ })
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) count(f func(*NodeStats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}
