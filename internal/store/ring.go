// ring.go places keys on cluster members by consistent hashing. Each
// member contributes a fixed number of virtual points on a ring of
// uint64 positions; a key is owned by the member whose point is the
// first at or clockwise after the key's position. Virtual points keep
// the key space spread roughly evenly across a small static member
// list, and adding or removing one member moves only the keys in the
// arcs it owned — other members' artifacts stay put.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ccache"
)

// vnodesPerMember is the number of ring points each member gets. 128
// keeps the worst member's share within a few percent of uniform for
// the small (3–16 node) static clusters this store targets.
const vnodesPerMember = 128

type ringPoint struct {
	pos    uint64
	member string
}

// Ring is an immutable consistent-hash ring over a static member list.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring from the member list (duplicates are dropped,
// order is irrelevant). An empty list yields a ring whose Owner is
// always "", meaning "no owner: handle everything locally".
func NewRing(members []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < vnodesPerMember; i++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", m, i)))
			r.points = append(r.points, ringPoint{
				pos:    binary.BigEndian.Uint64(sum[:8]),
				member: m,
			})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Tie-break on member name so ring order is deterministic
		// across nodes even in the astronomically unlikely collision.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member list.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key k, or "" for an empty ring.
func (r *Ring) Owner(k ccache.Key) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := binary.BigEndian.Uint64(k[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].member
}
