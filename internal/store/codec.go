// codec.go encodes cache entries into the portable envelope that
// travels through the disk and peer tiers: a magic header, a SHA-256
// payload checksum, and a gob-encoded body carrying the entry's
// serializable artifact — the canonical source, the executable LIR
// (the VM's program form), the generated Go source, the plan summary,
// and the response metadata (ccache.Meta).
//
// What deliberately does NOT travel:
//
//   - Comp.AIR / Comp.Plan / Comp.Info — the deep planning structures
//     a response never needs once Meta is precomputed;
//   - Entry.Bin — the native binary's path is local to one machine's
//     artifact store; the Go *source* travels, and each node rebuilds
//     through its own content-addressed backend store (normally a
//     build-cache hit after the first run).
//
// The gob encoding flattens pointers, so shared *sema.Region values
// decode as copies. That is sound here because the executors compare
// regions by value and never mutate a compiled program (the invariant
// ccache already relies on to share entries by reference); the codec
// differential test re-proves it by running an encode/decode round
// trip against the original on the VM and requiring byte-identical
// output.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"

	"repro/internal/air"
	"repro/internal/ccache"
	"repro/internal/driver"
	"repro/internal/lir"
)

// envelope layout: magic | 32-byte SHA-256(payload) | payload.
const envMagic = "ZPLSTORE1\n"

// portable is the gob body of an envelope.
type portable struct {
	// Key is the entry's content address, carried so a receiving node
	// can check that the sender routed the artifact to the key it
	// claims (a sender-side routing bug, not a tamper defense — the
	// cluster trusts its static members).
	Key    ccache.Key
	Kind   string
	Source string
	Plan   string
	GoSrc  string
	BinKey string
	Aux    []byte
	Meta   *ccache.Meta
	// LIR is the executable program; nil for payload-only entries
	// (ArtifactTune results live entirely in Aux).
	LIR *lir.Program
}

func init() {
	// Every concrete type reachable through an interface field of the
	// LIR graph must be registered for gob: lir.Node, air.Node,
	// air.Stmt, and air.Expr implementations.
	gob.Register(&lir.Nest{})
	gob.Register(&lir.ScalarAssign{})
	gob.Register(&lir.PartialReduce{})
	gob.Register(&lir.Loop{})
	gob.Register(&lir.While{})
	gob.Register(&lir.If{})
	gob.Register(&lir.Comm{})
	gob.Register(&lir.Call{})
	gob.Register(&lir.Return{})
	gob.Register(&lir.Writeln{})

	gob.Register(&air.Block{})
	gob.Register(&air.Loop{})
	gob.Register(&air.While{})
	gob.Register(&air.If{})

	gob.Register(&air.ArrayStmt{})
	gob.Register(&air.ScalarStmt{})
	gob.Register(&air.ReduceStmt{})
	gob.Register(&air.PartialReduceStmt{})
	gob.Register(&air.CommStmt{})
	gob.Register(&air.WritelnStmt{})
	gob.Register(&air.CallStmt{})
	gob.Register(&air.ReturnStmt{})

	gob.Register(&air.RefExpr{})
	gob.Register(&air.ScalarExpr{})
	gob.Register(&air.IndexExpr{})
	gob.Register(&air.ConstExpr{})
	gob.Register(&air.BinExpr{})
	gob.Register(&air.UnExpr{})
	gob.Register(&air.CallExpr{})
}

// Encode renders an entry as a self-checking envelope.
func Encode(e *ccache.Entry) ([]byte, error) {
	p := portable{
		Key:    e.Key,
		Kind:   string(e.Kind),
		Source: e.Source,
		Plan:   e.Plan,
		GoSrc:  e.GoSrc,
		BinKey: e.BinKey,
		Aux:    e.Aux,
		Meta:   e.Meta,
	}
	if e.Comp != nil {
		p.LIR = e.Comp.LIR
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&p); err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	sum := sha256.Sum256(body.Bytes())
	out := make([]byte, 0, len(envMagic)+len(sum)+body.Len())
	out = append(out, envMagic...)
	out = append(out, sum[:]...)
	out = append(out, body.Bytes()...)
	return out, nil
}

// Verify checks an envelope's framing and payload checksum without
// decoding the body — the cheap integrity gate used before relaying
// disk bytes to a peer.
func Verify(raw []byte) error {
	if len(raw) < len(envMagic)+sha256.Size {
		return fmt.Errorf("store: envelope truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(envMagic)]) != envMagic {
		return fmt.Errorf("store: bad envelope magic")
	}
	sum := raw[len(envMagic) : len(envMagic)+sha256.Size]
	if got := sha256.Sum256(raw[len(envMagic)+sha256.Size:]); !bytes.Equal(got[:], sum) {
		return fmt.Errorf("store: envelope checksum mismatch")
	}
	return nil
}

// Decode parses an envelope back into an entry. Any corruption — a
// truncated file, a bad checksum, an undecodable body — returns an
// error; tiers treat that as a miss (and the disk tier deletes the
// offender so the next compute repairs it).
func Decode(raw []byte) (*ccache.Entry, error) {
	if err := Verify(raw); err != nil {
		return nil, err
	}
	body := raw[len(envMagic)+sha256.Size:]
	var p portable
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	e := &ccache.Entry{
		Key:    p.Key,
		Kind:   ccache.ArtifactKind(p.Kind),
		Source: p.Source,
		Plan:   p.Plan,
		GoSrc:  p.GoSrc,
		BinKey: p.BinKey,
		Aux:    p.Aux,
		Meta:   p.Meta,
	}
	if p.LIR != nil {
		e.Comp = &driver.Compilation{LIR: p.LIR}
	}
	return e, nil
}
