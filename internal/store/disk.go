// disk.go is the disk tier: a content-addressed directory of encoded
// entries that survives restarts. It follows the discipline proven in
// internal/backend's artifact store — atomic temp-file + rename
// writes keyed by content hash, so several processes can share one
// directory without locks: a reader either sees a complete envelope
// or no file at all, and two writers racing on one key write the same
// bytes.
//
// Corruption (a truncated or bit-flipped file, detected by the
// envelope checksum) is treated as a miss: the offending file is
// deleted so the next successful compute repairs the slot.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ccache"
)

// DirEnv overrides the default cache-store location for zpld.
const DirEnv = "ZPL_CACHE_DIR"

// diskExt is the entry-file suffix; anything else in the directory is
// ignored (temp files in flight, stray editor droppings).
const diskExt = ".zpe"

// DiskStats counts the disk tier's activity.
type DiskStats struct {
	Hits    int64 // reads that decoded a valid envelope
	Misses  int64 // reads with no file present
	Corrupt int64 // reads that found and deleted an invalid file
	Puts    int64 // successful writes
	Errors  int64 // read or write I/O failures
	Entries int64 // resident entry files
	Bytes   int64 // resident entry bytes
}

// Disk is a disk-backed content-addressed entry store rooted at one
// directory. All methods are safe for concurrent use; multiple
// processes may share a directory.
type Disk struct {
	dir string

	mu    sync.Mutex
	stats DiskStats
}

// OpenDisk creates (if needed) and opens a disk store, scanning the
// directory once to seed the entry/byte gauges.
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: disk: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk: %w", err)
	}
	d := &Disk{dir: dir}
	// Seed the gauges from what a previous process left behind. The
	// walk tolerates concurrent writers: gauges are advisory.
	filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, diskExt) {
			return nil
		}
		if fi, err := de.Info(); err == nil {
			d.stats.Entries++
			d.stats.Bytes += fi.Size()
		}
		return nil
	})
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Stats snapshots the counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// path shards entries by the first hash byte so no single directory
// grows unboundedly.
func (d *Disk) path(k ccache.Key) string {
	hex := k.String()
	return filepath.Join(d.dir, hex[:2], hex+diskExt)
}

// GetRaw reads the encoded envelope for k without decoding — the read
// used to serve a peer /store/get, which relays bytes verbatim. The
// checksum is NOT verified here; the receiving end decodes (and
// verifies) anyway, so verifying twice buys nothing.
func (d *Disk) GetRaw(k ccache.Key) ([]byte, bool) {
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		d.mu.Lock()
		if os.IsNotExist(err) {
			d.stats.Misses++
		} else {
			d.stats.Errors++
		}
		d.mu.Unlock()
		return nil, false
	}
	return raw, true
}

// GetRawVerified reads the envelope for k and checks its checksum
// without a full decode — the read used to serve a peer from disk,
// where corrupt bytes must not be relayed. A failing file is deleted
// (miss + repaired), exactly as in Get.
func (d *Disk) GetRawVerified(k ccache.Key) ([]byte, bool) {
	raw, ok := d.GetRaw(k)
	if !ok {
		return nil, false
	}
	if err := Verify(raw); err != nil {
		d.mu.Lock()
		d.stats.Corrupt++
		d.stats.Entries--
		d.stats.Bytes -= int64(len(raw))
		d.mu.Unlock()
		os.Remove(d.path(k))
		return nil, false
	}
	d.mu.Lock()
	d.stats.Hits++
	d.mu.Unlock()
	return raw, true
}

// Get reads and decodes the entry for k. A present-but-invalid file is
// deleted and reported as a miss.
func (d *Disk) Get(k ccache.Key) (*ccache.Entry, bool) {
	raw, ok := d.GetRaw(k)
	if !ok {
		return nil, false
	}
	e, err := Decode(raw)
	if err != nil {
		d.mu.Lock()
		d.stats.Corrupt++
		d.stats.Entries--
		d.stats.Bytes -= int64(len(raw))
		d.mu.Unlock()
		os.Remove(d.path(k))
		return nil, false
	}
	d.mu.Lock()
	d.stats.Hits++
	d.mu.Unlock()
	return e, true
}

// PutRaw writes an already-encoded envelope under k, atomically. An
// existing file is left alone — entries are content-addressed, so a
// resident file is already the right bytes and rewriting it only
// churns the disk.
func (d *Disk) PutRaw(k ccache.Key, raw []byte) error {
	path := d.path(k)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		d.mu.Lock()
		d.stats.Errors++
		d.mu.Unlock()
		return fmt.Errorf("store: disk: %w", err)
	}
	tmp := path + ".tmp" + strconv.Itoa(os.Getpid())
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		d.mu.Lock()
		d.stats.Errors++
		d.mu.Unlock()
		return fmt.Errorf("store: disk: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		d.mu.Lock()
		d.stats.Errors++
		d.mu.Unlock()
		return fmt.Errorf("store: disk: %w", err)
	}
	d.mu.Lock()
	d.stats.Puts++
	d.stats.Entries++
	d.stats.Bytes += int64(len(raw))
	d.mu.Unlock()
	return nil
}

// Put encodes and writes the entry under k.
func (d *Disk) Put(k ccache.Key, e *ccache.Entry) error {
	raw, err := Encode(e)
	if err != nil {
		return err
	}
	return d.PutRaw(k, raw)
}
