package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ccache"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/vm"
)

func heatSource(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/heat.za")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// compileEntry builds a real cache entry the way the service does:
// compile, then keep the LIR plus serializable metadata.
func compileEntry(t *testing.T, src string, opt driver.Options, kind ccache.ArtifactKind) *ccache.Entry {
	t.Helper()
	comp, err := driver.Compile(src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &ccache.Entry{
		Kind:   kind,
		Source: src,
		Comp:   comp,
		Meta: &ccache.Meta{
			NestCount:   len(comp.LIR.Main.Body),
			RemarksJSON: []byte(`[{"kind":"test"}]`),
		},
		Plan: "plan summary",
	}
}

func runVM(t *testing.T, e *ccache.Entry) string {
	t.Helper()
	var out bytes.Buffer
	if _, _, err := vm.Run(e.Comp.LIR, vm.Options{Out: &out}); err != nil {
		t.Fatalf("vm run: %v", err)
	}
	return out.String()
}

// TestCodecRoundTripDifferential proves the envelope preserves
// executability: the decoded LIR must produce byte-identical VM
// output, and the serializable fields must survive untouched.
func TestCodecRoundTripDifferential(t *testing.T) {
	src := heatSource(t)
	opt := driver.Options{Level: core.C2F3}
	e := compileEntry(t, src, opt, ccache.ArtifactIR)
	e.Key = ccache.KeyOf(src, opt)
	e.GoSrc = "package main"
	e.BinKey = "abc123"
	e.Aux = []byte("aux-bytes")
	want := runVM(t, e)

	raw, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != e.Key || got.Kind != e.Kind || got.Source != src ||
		got.Plan != e.Plan || got.GoSrc != e.GoSrc || got.BinKey != e.BinKey ||
		string(got.Aux) != "aux-bytes" {
		t.Errorf("fields did not survive round trip: %+v", got)
	}
	if got.Meta == nil || got.Meta.NestCount != e.Meta.NestCount ||
		string(got.Meta.RemarksJSON) != string(e.Meta.RemarksJSON) {
		t.Errorf("meta did not survive round trip: %+v", got.Meta)
	}
	if out := runVM(t, got); out != want {
		t.Errorf("decoded program output differs:\nwant %q\ngot  %q", want, out)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	e := compileEntry(t, heatSource(t), driver.Options{}, ccache.ArtifactIR)
	raw, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":    raw[:len(raw)/2],
		"empty":        {},
		"bad magic":    append([]byte("NOTMAGIC"), raw[8:]...),
		"flipped body": flipByte(raw, len(raw)-1),
		"flipped sum":  flipByte(raw, len(envMagic)+3),
	}
	for name, bad := range cases {
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: Decode accepted corrupt envelope", name)
		}
		if err := Verify(bad); err == nil {
			t.Errorf("%s: Verify accepted corrupt envelope", name)
		}
	}
}

func flipByte(raw []byte, i int) []byte {
	out := append([]byte(nil), raw...)
	out[i] ^= 0xff
	return out
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	r1 := NewRing(members)
	r2 := NewRing([]string{"c:3", "a:1", "b:2", "b:2"}) // shuffled + dup

	counts := map[string]int{}
	const n = 4096
	for i := 0; i < n; i++ {
		k := ccache.Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
		o := r1.Owner(k)
		if o2 := r2.Owner(k); o2 != o {
			t.Fatalf("owner differs across equivalent rings: %s vs %s", o, o2)
		}
		counts[o]++
	}
	for _, m := range members {
		if frac := float64(counts[m]) / n; frac < 0.15 {
			t.Errorf("member %s owns only %.1f%% of keys: %v", m, frac*100, counts)
		}
	}
	if len(counts) != 3 {
		t.Errorf("expected 3 owners, got %v", counts)
	}

	if o := NewRing(nil).Owner(ccache.Key{}); o != "" {
		t.Errorf("empty ring owner = %q, want \"\"", o)
	}
}

func TestDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	src := heatSource(t)
	opt := driver.Options{Level: core.C1}
	k := ccache.KeyOf(src, opt)
	e := compileEntry(t, src, opt, ccache.ArtifactIR)
	e.Key = k
	want := runVM(t, e)

	d1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(k, e); err != nil {
		t.Fatal(err)
	}

	// A new process opens the same directory: the entry must be there,
	// fully executable, and the gauges must reflect it.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get(k)
	if !ok {
		t.Fatal("entry lost across restart")
	}
	if out := runVM(t, got); out != want {
		t.Errorf("restart-rehydrated output differs:\nwant %q\ngot  %q", want, out)
	}
	st := d2.Stats()
	if st.Entries != 1 || st.Bytes == 0 || st.Hits != 1 {
		t.Errorf("restart stats off: %+v", st)
	}
}

func TestDiskCorruptionIsMissAndRepaired(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := heatSource(t)
	opt := driver.Options{}
	k := ccache.KeyOf(src, opt)
	e := compileEntry(t, src, opt, ccache.ArtifactIR)
	if err := d.Put(k, e); err != nil {
		t.Fatal(err)
	}

	// Bit-flip the file on disk.
	path := filepath.Join(dir, k.String()[:2], k.String()+diskExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file not deleted")
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}

	// The next put repairs the slot.
	if err := d.Put(k, e); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k); !ok {
		t.Error("repaired entry not served")
	}
}

// failCompute is a compute fn that must not run.
func failCompute(t *testing.T) func() (*ccache.Entry, error) {
	return func() (*ccache.Entry, error) {
		t.Error("compute ran; expected a tier hit")
		return nil, fmt.Errorf("unexpected compute")
	}
}

func TestTierPromotionOnDiskHit(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := heatSource(t)
	opt := driver.Options{}
	k := ccache.KeyOf(src, opt)
	e := compileEntry(t, src, opt, ccache.ArtifactIR)
	if err := d.Put(k, e); err != nil {
		t.Fatal(err)
	}

	ts := NewTiered(ccache.New(0), d, nil)
	ctx := context.Background()

	got, res, err := ts.GetOrCompute(ctx, k, failCompute(t))
	if err != nil || got == nil {
		t.Fatalf("disk-tier lookup failed: %v", err)
	}
	if res.Outcome != ccache.Hit || res.Tier != TierDisk {
		t.Errorf("first lookup = %v/%s, want hit/disk", res.Outcome, res.Tier)
	}

	// The hit must have promoted into the memory tier.
	_, res, err = ts.GetOrCompute(ctx, k, failCompute(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ccache.Hit || res.Tier != TierMem {
		t.Errorf("second lookup = %v/%s, want hit/mem", res.Outcome, res.Tier)
	}

	tier := ts.TierStats()
	if tier.DiskHits != 1 || tier.MemHits != 1 || tier.Misses != 0 {
		t.Errorf("tier stats off: %+v", tier)
	}
	if st := ts.Stats(); st.Hits != 2 || st.Misses != 0 {
		t.Errorf("aggregate stats off: %+v", st)
	}
}

func TestLRUEvictionNeverTouchesDiskTier(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := heatSource(t)
	// A memory tier too small for two entries forces eviction.
	e0 := compileEntry(t, src, driver.Options{}, ccache.ArtifactIR)
	mem := ccache.New(ccache.SizeOf(e0) + 1024)
	ts := NewTiered(mem, d, nil)
	ctx := context.Background()

	opts := []driver.Options{{Level: core.Baseline}, {Level: core.C2F3}}
	keys := make([]ccache.Key, len(opts))
	for i, opt := range opts {
		opt := opt
		keys[i] = ccache.KeyOf(src, opt)
		_, res, err := ts.GetOrCompute(ctx, keys[i], func() (*ccache.Entry, error) {
			return compileEntry(t, src, opt, ccache.ArtifactIR), nil
		})
		if err != nil || res.Outcome != ccache.Miss {
			t.Fatalf("seed %d: %v %v", i, res, err)
		}
	}

	if mem.Stats().Evictions == 0 {
		t.Fatal("memory tier did not evict; shrink the budget")
	}
	// Both entries must still be on disk — eviction is a memory-tier
	// affair — so re-requesting the evicted key is a disk hit, not a
	// recompile.
	if st := d.Stats(); st.Entries != 2 {
		t.Fatalf("disk entries = %d, want 2", st.Entries)
	}
	for i, k := range keys {
		_, res, err := ts.GetOrCompute(ctx, k, failCompute(t))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != ccache.Hit {
			t.Errorf("key %d after eviction: outcome %v, want hit", i, res.Outcome)
		}
	}
}

func TestKeySensitivityAcrossArtifactKinds(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTiered(ccache.New(0), d, nil)
	ctx := context.Background()
	src := heatSource(t)
	opt := driver.Options{}

	kinds := []ccache.ArtifactKind{
		ccache.ArtifactIR, ccache.ArtifactNative, ccache.ArtifactTune, ccache.ArtifactLazy,
	}
	seen := map[ccache.Key]ccache.ArtifactKind{}
	for _, kind := range kinds {
		kind := kind
		k := ccache.KeyOfKind(src, opt, kind)
		if prev, dup := seen[k]; dup {
			t.Fatalf("kinds %s and %s share a key", prev, kind)
		}
		seen[k] = kind
		var e *ccache.Entry
		if kind == ccache.ArtifactTune {
			e = &ccache.Entry{Kind: kind, Source: src, Aux: []byte("tune-payload")}
		} else {
			e = compileEntry(t, src, opt, kind)
		}
		_, res, err := ts.GetOrCompute(ctx, k, func() (*ccache.Entry, error) { return e, nil })
		if err != nil || res.Outcome != ccache.Miss {
			t.Fatalf("%s: %v %v", kind, res, err)
		}
	}
	// Each kind resolves to its own artifact, from disk after a
	// restart-like fresh store over the same directory.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := NewTiered(ccache.New(0), d2, nil)
	for _, kind := range kinds {
		k := ccache.KeyOfKind(src, opt, kind)
		e, res, err := ts2.GetOrCompute(ctx, k, failCompute(t))
		if err != nil || res.Tier != TierDisk {
			t.Fatalf("%s: %v %v", kind, res, err)
		}
		if e.Kind != kind {
			t.Errorf("key for %s returned entry of kind %s", kind, e.Kind)
		}
		if kind == ccache.ArtifactTune && string(e.Aux) != "tune-payload" {
			t.Errorf("tune payload lost: %q", e.Aux)
		}
	}
}

func TestSingleflightAcrossTiers(t *testing.T) {
	ts := NewTiered(ccache.New(0), nil, nil)
	src := heatSource(t)
	k := ccache.KeyOf(src, driver.Options{})
	var computes atomic.Int64
	release := make(chan struct{})

	const callers = 20
	var wg sync.WaitGroup
	outcomes := make([]ccache.Outcome, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, res, err := ts.GetOrCompute(context.Background(), k, func() (*ccache.Entry, error) {
				computes.Add(1)
				<-release // hold the flight open until all callers queue
				return compileEntry(t, src, driver.Options{}, ccache.ArtifactIR), nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = res.Outcome
		}()
	}
	// Wait for every caller to either own or join the flight, then
	// release the compute.
	deadline := time.After(5 * time.Second)
	for {
		ts.mu.Lock()
		fl, ok := ts.inflight[k]
		joined := int64(0)
		if ok {
			joined = ts.dedups
		}
		ts.mu.Unlock()
		if ok && joined == callers-1 {
			_ = fl
			break
		}
		select {
		case <-deadline:
			t.Fatal("callers did not converge on one flight")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1", n)
	}
	var miss, dedup int
	for _, o := range outcomes {
		switch o {
		case ccache.Miss:
			miss++
		case ccache.Dedup:
			dedup++
		}
	}
	if miss != 1 || dedup != callers-1 {
		t.Errorf("outcomes: %d miss, %d dedup; want 1/%d", miss, dedup, callers-1)
	}
	st := ts.Stats()
	if st.Misses != 1 || st.DedupHits != callers-1 {
		t.Errorf("stats: %+v", st)
	}
}

// testCluster wires n in-process nodes with real HTTP between them.
type testCluster struct {
	addrs  []string
	nodes  []*Node
	stores []*Tiered
}

func newTestCluster(t *testing.T, n int, waitCap time.Duration) *testCluster {
	t.Helper()
	c := &testCluster{}
	// Late-bound handlers: the servers must exist (to learn addresses)
	// before the nodes (which need the address list).
	handlers := make([]*http.ServeMux, n)
	for i := 0; i < n; i++ {
		mux := http.NewServeMux()
		handlers[i] = mux
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		c.addrs = append(c.addrs, strings.TrimPrefix(srv.URL, "http://"))
	}
	for i := 0; i < n; i++ {
		disk, err := OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		node := NewNode(NodeConfig{
			Self:    c.addrs[i],
			Peers:   c.addrs,
			Disk:    disk,
			Timeout: 2 * time.Second,
			WaitCap: waitCap,
		})
		mem := ccache.New(0)
		node.RegisterLocal("compile", mem, nil)
		st := NewTiered(mem, disk, node)
		handlers[i].HandleFunc("/store/get", node.ServeGet)
		handlers[i].HandleFunc("/store/put", node.ServePut)
		handlers[i].HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		c.nodes = append(c.nodes, node)
		c.stores = append(c.stores, st)
	}
	return c
}

// TestClusterSingleflightExactlyOnce is the cross-node thundering
// herd: every node asks for the same cold key at once; the claim
// protocol must make the whole cluster compile it exactly once, and
// every node must end up with an executable, identical artifact.
func TestClusterSingleflightExactlyOnce(t *testing.T) {
	c := newTestCluster(t, 3, 10*time.Second)
	src := heatSource(t)
	opt := driver.Options{Level: core.C2}
	k := ccache.KeyOf(src, opt)

	var computes atomic.Int64
	outputs := make([]string, len(c.stores))
	var wg sync.WaitGroup
	for i, st := range c.stores {
		i, st := i, st
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _, err := st.GetOrCompute(context.Background(), k, func() (*ccache.Entry, error) {
				computes.Add(1)
				time.Sleep(100 * time.Millisecond) // widen the herd window
				return compileEntry(t, src, opt, ccache.ArtifactIR), nil
			})
			if err != nil {
				t.Errorf("node %d: %v", i, err)
				return
			}
			outputs[i] = runVM(t, e)
		}()
	}
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("cluster computes = %d, want exactly 1", n)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("node %d output differs from node 0", i)
		}
	}
}

// TestClusterPeerHitAndWriteThrough: a key computed on its owner is a
// peer-tier hit from any other node, and the fetching node replicates
// it to its own disk for restart rehydration.
func TestClusterPeerHitAndWriteThrough(t *testing.T) {
	c := newTestCluster(t, 3, time.Second)
	src := heatSource(t)
	opt := driver.Options{Level: core.F1}
	k := ccache.KeyOf(src, opt)

	owner := c.nodes[0].Owner(k)
	ownerIdx, otherIdx := -1, -1
	for i, a := range c.addrs {
		if a == owner {
			ownerIdx = i
		} else if otherIdx < 0 {
			otherIdx = i
		}
	}
	if ownerIdx < 0 || otherIdx < 0 {
		t.Fatalf("degenerate ring: owner %q addrs %v", owner, c.addrs)
	}

	ctx := context.Background()
	if _, res, err := c.stores[ownerIdx].GetOrCompute(ctx, k, func() (*ccache.Entry, error) {
		return compileEntry(t, src, opt, ccache.ArtifactIR), nil
	}); err != nil || res.Outcome != ccache.Miss {
		t.Fatalf("owner seed: %v %v", res, err)
	}

	e, res, err := c.stores[otherIdx].GetOrCompute(ctx, k, failCompute(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ccache.Hit || res.Tier != TierPeer {
		t.Errorf("non-owner lookup = %v/%s, want hit/peer", res.Outcome, res.Tier)
	}
	if e.Comp == nil || e.Comp.LIR == nil {
		t.Fatal("peer-fetched entry not executable")
	}
	// Write-through: the non-owner's own disk now holds the entry.
	if _, ok := c.stores[otherIdx].disk.Get(k); !ok {
		t.Error("peer fetch did not write through to local disk")
	}
	ps := c.nodes[otherIdx].Clients().Stats()
	if ps[owner].GetHits == 0 {
		t.Errorf("peer client stats recorded no hit: %+v", ps)
	}
	if ns := c.nodes[ownerIdx].Stats(); ns.ServedHits == 0 {
		t.Errorf("owner served no hits: %+v", ns)
	}
}

// TestDeadPeerDegradesToLocalCompile: a key owned by an unreachable
// member must still be served — by compiling locally — and must not
// error or hang.
func TestDeadPeerDegradesToLocalCompile(t *testing.T) {
	// A listener opened and closed yields an address that refuses
	// connections.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	disk, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(NodeConfig{
		Self:    "127.0.0.1:1", // never dialed: only remote owners are
		Peers:   []string{deadAddr},
		Disk:    disk,
		Timeout: 200 * time.Millisecond,
		WaitCap: 200 * time.Millisecond,
	})
	mem := ccache.New(0)
	node.RegisterLocal("compile", mem, nil)
	ts := NewTiered(mem, disk, node)

	// Find a source variant whose key the dead peer owns.
	src := heatSource(t)
	opt := driver.Options{}
	var k ccache.Key
	owned := ""
	for i := 0; i < 64; i++ {
		variant := src + strings.Repeat("\n", i+1)
		k = ccache.KeyOf(variant, opt)
		if node.Owner(k) == deadAddr {
			owned = variant
			break
		}
	}
	if owned == "" {
		t.Fatal("no key routed to the dead peer in 64 tries")
	}

	start := time.Now()
	e, res, err := ts.GetOrCompute(context.Background(), k, func() (*ccache.Entry, error) {
		return compileEntry(t, owned, opt, ccache.ArtifactIR), nil
	})
	if err != nil || e == nil {
		t.Fatalf("dead peer produced a request error: %v", err)
	}
	if res.Outcome != ccache.Miss {
		t.Errorf("outcome = %v, want miss (local compile)", res.Outcome)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("degradation took %v; timeouts not bounding", elapsed)
	}
	ps := node.Clients().Stats()[deadAddr]
	if ps.GetErrors+ps.GetTimeouts == 0 && ps.PutErrors == 0 {
		t.Errorf("no failures recorded against dead peer: %+v", ps)
	}

	// Repeated failures trip the breaker; later calls skip the peer
	// and degrade immediately.
	for i := 0; i < breakerThreshold; i++ {
		node.Clients().Get(context.Background(), deadAddr, k, 0)
	}
	st := node.Clients().Stats()[deadAddr]
	if st.Tripped == 0 {
		t.Errorf("breaker never tripped: %+v", st)
	}
}

func TestClaimExpiry(t *testing.T) {
	node := NewNode(NodeConfig{Self: "a:1", ClaimTTL: time.Minute})
	now := time.Now()
	node.now = func() time.Time { return now }

	k := ccache.Key(sha256.Sum256([]byte("x")))
	if state, _ := node.tryClaim(k); state != ClaimGranted {
		t.Fatalf("first claim: %s", state)
	}
	if state, _ := node.tryClaim(k); state != ClaimBusy {
		t.Fatalf("second claim while live: %s", state)
	}
	// After the TTL, the dead claimant stops shielding the key.
	now = now.Add(2 * time.Minute)
	state, done := node.tryClaim(k)
	if state != ClaimGranted {
		t.Fatalf("claim after expiry: %s", state)
	}
	node.resolveClaim(k)
	select {
	case <-done:
	default:
		t.Error("resolve did not wake waiters")
	}
}
