package vm_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/air"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/lir"
	"repro/internal/vm"
)

// compile builds LIR for a source at the given level.
func compile(t *testing.T, src string, lvl core.Level) *lir.Program {
	t.Helper()
	c, err := driver.Compile(src, driver.Options{Level: lvl})
	if err != nil {
		t.Fatal(err)
	}
	return c.LIR
}

// TestArithmeticOracle cross-checks the VM against a straight-Go
// computation of the same recurrence.
func TestArithmeticOracle(t *testing.T) {
	src := `
program oracle;
region R = [1..10];
var A, B : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 * 1.5;
  [R] B := sqrt(A) + A * A - A / 2.0;
  s := +<< [R] B;
  writeln(s);
end;
`
	m, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 1; i <= 10; i++ {
		a := float64(i) * 1.5
		want += math.Sqrt(a) + a*a - a/2
	}
	got, _ := m.Scalar("s")
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("s = %v, want %v", got, want)
	}
}

func TestOffsetsAndHalo(t *testing.T) {
	src := `
program halo;
region R = [1..4, 1..4];
var A, B : [R] double;
proc main()
begin
  [R] A := index1 * 10.0 + index2;
  [R] B := A@(-1, 1);
end;
`
	m, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// B[2][2] = A[1][3] = 13.
	if v, _ := m.At("B", 2, 2); v != 13 {
		t.Errorf("B[2,2] = %v, want 13", v)
	}
	// B[1][1] = A[0][2], which is halo (zero).
	if v, _ := m.At("B", 1, 1); v != 0 {
		t.Errorf("B[1,1] = %v, want 0 (halo)", v)
	}
}

func TestBuiltinSemantics(t *testing.T) {
	src := `
program builtins;
var a, b, c, d, e, f : double;
proc main()
begin
  a := min(3.0, -2.0);
  b := max(3.0, -2.0);
  c := abs(-7.5);
  d := pow(2.0, 10.0);
  e := floor(3.7);
  f := sign(-42.0);
  writeln(a, b, c, d, e, f);
end;
`
	var out bytes.Buffer
	if _, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	want := "-2 3 7.5 1024 3 -1"
	if strings.TrimSpace(out.String()) != want {
		t.Errorf("output %q, want %q", out.String(), want)
	}
}

func TestBooleanOperators(t *testing.T) {
	src := `
program booleans;
var t, f, r1, r2, r3 : boolean;
proc main()
begin
  t := true;
  f := false;
  r1 := t & !f;
  r2 := f | t;
  r3 := (1 < 2) & (2.0 >= 2.0) & (3 != 4);
  if r1 & r2 & r3 then
    writeln("all-true");
  end;
end;
`
	var out bytes.Buffer
	if _, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "all-true") {
		t.Errorf("output %q", out.String())
	}
}

func TestDownLoop(t *testing.T) {
	src := `
program countdown;
var s : integer;
proc main()
begin
  s := 0;
  for i := 5 downto 2 do
    s := s * 10 + i;
  end;
  writeln(s);
end;
`
	var out bytes.Buffer
	if _, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "5432" {
		t.Errorf("output %q, want 5432", out.String())
	}
}

func TestStepBudget(t *testing.T) {
	src := `
program infinite;
var x : double;
proc main()
begin
  x := 1.0;
  while x > 0.0 do
    x := x + 1.0;
  end;
end;
`
	_, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("runaway loop not caught: %v", err)
	}
}

func TestReductionIdentities(t *testing.T) {
	// Reductions over a region always reinitialize their target.
	src := `
program redid;
region R = [1..3];
var A : [R] double;
var s, p, mx, mn : double;
proc main()
begin
  [R] A := index1 * 1.0;
  for it := 1 to 2 do
    s := +<< [R] A;
    p := *<< [R] A;
    mx := max<< [R] A;
    mn := min<< [R] A;
  end;
  writeln(s, p, mx, mn);
end;
`
	var out bytes.Buffer
	if _, _, err := vm.Run(compile(t, src, core.C2), vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "6 6 3 1" {
		t.Errorf("output %q, want 6 6 3 1", out.String())
	}
}

// traceRecorder counts tracer callbacks.
type traceRecorder struct {
	reads, writes, flops int64
	comms, reduces       int
}

func (r *traceRecorder) Access(addr int64, write bool) {
	if write {
		r.writes++
	} else {
		r.reads++
	}
}
func (r *traceRecorder) Flops(n int64) { r.flops += n }
func (r *traceRecorder) Comm(string, air.Offset, int, air.CommPhase, int, bool) {
	r.comms++
}
func (r *traceRecorder) Reduce() { r.reduces++ }

func TestTraceCounts(t *testing.T) {
	src := `
program traced;
region R = [1..8, 1..8];
var A, B : [R] double;
var s : double;
proc main()
begin
  [R] A := 1.0;
  [R] B := A + A;
  s := +<< [R] B;
end;
`
	rec := &traceRecorder{}
	if _, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	// Writes: A (64) + B (64). Reads: A twice (128) + B in reduce (64).
	if rec.writes != 128 {
		t.Errorf("writes = %d, want 128", rec.writes)
	}
	if rec.reads != 192 {
		t.Errorf("reads = %d, want 192", rec.reads)
	}
	if rec.reduces != 1 {
		t.Errorf("reduces = %d, want 1", rec.reduces)
	}
	if rec.flops == 0 {
		t.Error("no flops reported")
	}
}

// TestContractionRemovesTraffic verifies the central memory-behavior
// claim: contracted arrays generate no trace events at all.
func TestContractionRemovesTraffic(t *testing.T) {
	src := `
program traffic;
region R = [1..16, 1..16];
var A, B, C : [R] double;
var s : double;
proc main()
begin
  [R] A := 1.0;
  for it := 1 to 1 do
    [R] B := A * 2.0;
    [R] C := B + A;
    s := +<< [R] C;
  end;
end;
`
	base := &traceRecorder{}
	if _, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{Tracer: base}); err != nil {
		t.Fatal(err)
	}
	opt := &traceRecorder{}
	if _, _, err := vm.Run(compile(t, src, core.C2), vm.Options{Tracer: opt}); err != nil {
		t.Fatal(err)
	}
	// B and C contract: 256 writes + 256+256 reads disappear... at
	// minimum the optimized version must touch far less memory.
	if opt.reads+opt.writes >= base.reads+base.writes {
		t.Errorf("contraction did not reduce traffic: %d vs %d",
			opt.reads+opt.writes, base.reads+base.writes)
	}
	if base.flops != opt.flops {
		t.Errorf("flops changed: %d vs %d", base.flops, opt.flops)
	}
}

func TestMemoryFootprintAndAt(t *testing.T) {
	src := `
program foot;
region R = [1..10];
var A : [R] double;
proc main()
begin
  [R] A := 2.0;
end;
`
	m, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.MemoryFootprint() != 80 {
		t.Errorf("footprint = %d, want 80", m.MemoryFootprint())
	}
	if _, ok := m.At("A", 11); ok {
		t.Error("out-of-range At succeeded")
	}
	if _, ok := m.At("nope", 1); ok {
		t.Error("unknown array At succeeded")
	}
}

func TestGuardedNestSemantics(t *testing.T) {
	// Fragment-8 style: fused cluster over translated regions with
	// guards; the numeric results must match the unfused baseline.
	src := `
program guards;
config n : integer = 6;
region R = [1..n, 1..n];
var A, B : [R] double;
var T1 : [2..n+1, 1..n] double;
var chk : double;
proc main()
begin
  [R] A := index1 * 1.0;
  [R] B := A * 0.5;
  for p := 1 to 1 do
    [2..n+1, 1..n] T1 := B;
    [R] A := A@(1,0) + T1@(1,0);
  end;
  chk := +<< [R] A + B;
  writeln(chk);
end;
`
	var base, opt bytes.Buffer
	if _, _, err := vm.Run(compile(t, src, core.Baseline), vm.Options{Out: &base}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := vm.Run(compile(t, src, core.C2F3), vm.Options{Out: &opt}); err != nil {
		t.Fatal(err)
	}
	if base.String() != opt.String() {
		t.Errorf("guarded fusion changed results: %q vs %q", base.String(), opt.String())
	}
}

// TestSeedBeforeRun: copying into ArrayData and calling SetScalar
// before Run must make the program observe the seeded state — the lazy
// runtime's VM execution path.
func TestSeedBeforeRun(t *testing.T) {
	src := `
program seed;
region R = [1..4];
var A : [R] double;
var s, out : double;
proc main()
begin
  [R] A := A + s;
  out := +<< [R] A;
  writeln(out);
end;
`
	var buf bytes.Buffer
	m, err := vm.New(compile(t, src, core.C2F3), vm.Options{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	copy(m.ArrayData("A"), []float64{1, 2, 3, 4})
	if !m.SetScalar("s", 10) {
		t.Fatal("SetScalar missed scalar s")
	}
	if m.SetScalar("nope", 1) {
		t.Error("SetScalar accepted an unknown scalar")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "50\n" {
		t.Errorf("output %q, want \"50\\n\" (seeded state ignored)", got)
	}
	if v, _ := m.Scalar("out"); v != 50 {
		t.Errorf("out = %g, want 50", v)
	}
}
