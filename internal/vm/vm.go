// Package vm executes scalarized (LIR) programs on real data. It
// compiles expressions and statements to closures once, then runs
// them; every array element access can be streamed to a Tracer, which
// is how the machine models observe the memory behavior that fusion
// and contraction change.
//
// All values are float64 (integers are exact up to 2^53; booleans are
// 0/1), matching the ZA surface language's numeric model.
package vm

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/absint"
	"repro/internal/air"
	"repro/internal/lir"
)

// Tracer observes the execution's memory and communication behavior.
// Addr is a byte address in the simulated address space.
type Tracer interface {
	// Access reports one array element access (8 bytes at addr).
	Access(addr int64, write bool)
	// Flops reports n floating-point operations.
	Flops(n int64)
	// Comm reports a communication primitive (ghost exchange of the
	// halo slab for array/off over region elems elements). msgID pairs
	// pipelined send/recv halves; piggyback marks a combined message
	// that pays no startup cost.
	Comm(array string, off air.Offset, elems int, phase air.CommPhase, msgID int, piggyback bool)
	// Reduce reports the global combine of one full reduction.
	Reduce()
}

// Options configures a run.
type Options struct {
	Out      io.Writer // writeln destination; nil discards
	Tracer   Tracer    // nil disables tracing
	MaxSteps int64     // statement-execution budget; 0 means default (1e10)
	// Ctx, when non-nil, cancels the execution: every statement charge
	// (single statements and whole loop nests alike) decrements a poll
	// countdown, so a cancelled or expired context stops even a
	// runaway interpreter loop with a resolution of one loop nest or
	// ctxPollInterval scalar statements. The run reports ctx.Err()
	// (errors.Is-testable for context.DeadlineExceeded).
	Ctx context.Context
	// Bounds carries the abstract-interpretation prover's per-site
	// verdicts (internal/absint) for this exact LIR instance. Accesses
	// at ProvenSafe sites compile to unchecked dispatch — a raw pointer
	// load/store with no slice bounds check — which is sound precisely
	// because the prover's interval evidence covers every index the
	// site can produce. Nil keeps every access on the checked path.
	// Traced runs (Tracer != nil) also stay checked: they measure the
	// memory model, not raw speed. A Faulted site (the -provefault
	// self-test) has its unchecked access displaced by FaultShift
	// elements, so the seeded wrong evidence becomes an observable
	// wrong answer for the differential harness to catch.
	Bounds *absint.Result
}

// ctxPollInterval is the number of charged statements between context
// polls: cheap enough to leave on, fine-grained enough that a 1ms
// deadline stops a long run promptly.
const ctxPollInterval = 1024

// Result summarizes an execution.
type Result struct {
	Steps int64 // executed element-statements + scalar statements
}

// Machine holds the compiled program and its storage, so callers can
// run once and then inspect final values.
type Machine struct {
	prog    *lir.Program
	slots   []float64
	slotIdx map[string]int
	arrays  map[string]*arrayStore
	procs   map[string]*compiledProc
	bounds  *absint.Result

	out     io.Writer
	tracer  Tracer
	steps   int64
	max     int64
	ctx     context.Context // nil when cancellation is not requested
	ctxLeft int64           // statements until the next context poll
	fault   error           // set when a sigFault is raised (budget exhaustion or cancellation)

	// idx holds the current loop-nest indices (absolute region
	// coordinates) while a Nest executes.
	idx [4]int

	// curResult is the result slot of the procedure currently being
	// compiled (-1 when none); used by return-with-value.
	curResult int
}

type arrayStore struct {
	name    string
	data    []float64
	lo      []int
	strides []int
	base    int64 // byte base address in the simulated address space
}

type compiledProc struct {
	params []int // slot indices
	result int   // $result slot, or -1
	body   []execFn
}

// control signals returned by statement execution.
type signal int

const (
	sigNext signal = iota
	sigReturn
	// sigFault aborts execution; the fault cause is in Machine.fault.
	// Budget exhaustion uses this explicit path rather than panic so
	// that execution can safely span goroutines (a panic in a worker
	// goroutine would kill the whole process).
	sigFault
)

type execFn func(m *Machine) signal

type evalFn func(m *Machine) float64

// New compiles the program. The returned machine is single-use: call
// Run once; storage persists for inspection afterwards.
func New(p *lir.Program, opt Options) (*Machine, error) {
	m := &Machine{
		prog:    p,
		slotIdx: map[string]int{},
		arrays:  map[string]*arrayStore{},
		procs:   map[string]*compiledProc{},
		out:     opt.Out,
		tracer:  opt.Tracer,
		max:     opt.MaxSteps,
		ctx:     opt.Ctx,
		bounds:  opt.Bounds,
	}
	if m.max == 0 {
		m.max = 1e10
	}

	// Scalar slots: declared scalars, then contracted arrays.
	names := make([]string, 0, len(p.Source.Scalars))
	for n := range p.Source.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m.slotIdx[n] = len(m.slotIdx)
	}
	arrNames := make([]string, 0, len(p.Source.Arrays))
	for n := range p.Source.Arrays {
		arrNames = append(arrNames, n)
	}
	sort.Strings(arrNames)
	for _, n := range arrNames {
		if p.Source.Arrays[n].Contracted {
			m.slotIdx[n] = len(m.slotIdx)
		}
	}
	m.slots = make([]float64, len(m.slotIdx))
	for _, n := range names {
		if s := p.Source.Scalars[n]; s.Config {
			m.slots[m.slotIdx[n]] = s.Init
		}
	}

	// Array storage over allocation bounds, row-major, with bases laid
	// out sequentially in a simulated byte address space.
	var nextBase int64
	for _, n := range arrNames {
		a := p.Source.Arrays[n]
		if a.Contracted {
			continue
		}
		rank := a.Alloc.Rank()
		strides := make([]int, rank)
		size := 1
		for d := rank - 1; d >= 0; d-- {
			strides[d] = size
			size *= a.Alloc.Extent(d)
		}
		m.arrays[n] = &arrayStore{
			name:    n,
			data:    make([]float64, size),
			lo:      append([]int(nil), a.Alloc.Lo...),
			strides: strides,
			base:    nextBase,
		}
		nextBase += int64(size) * 8
	}

	// Compile procedures.
	for name, pr := range p.Procs {
		cp := &compiledProc{result: -1}
		for _, pa := range pr.Params {
			slot, ok := m.slotIdx[pa]
			if !ok {
				return nil, fmt.Errorf("vm: unknown parameter slot %s", pa)
			}
			cp.params = append(cp.params, slot)
		}
		if pr.HasResult {
			slot, ok := m.slotIdx[pr.Name+".$result"]
			if !ok {
				return nil, fmt.Errorf("vm: missing result slot for %s", pr.Name)
			}
			cp.result = slot
		}
		m.procs[name] = cp
	}
	for name, pr := range p.Procs {
		m.curResult = m.procs[name].result
		body, err := m.compileNodes(pr.Body)
		if err != nil {
			return nil, fmt.Errorf("vm: compile %s: %w", name, err)
		}
		m.procs[name].body = body
	}
	m.curResult = -1
	if m.procs["main"] == nil {
		return nil, fmt.Errorf("vm: program has no main")
	}
	return m, nil
}

// Run executes main. It is not reentrant.
func Run(p *lir.Program, opt Options) (*Machine, *Result, error) {
	m, err := New(p, opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run()
	return m, res, err
}

// Run executes the compiled main procedure. Budget exhaustion is
// reported as an ordinary error; the recover only guards against
// genuine runtime faults in compiled closures.
func (m *Machine) Run() (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("vm: runtime fault: %v", r)
		}
	}()
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return nil, fmt.Errorf("vm: cancelled before execution: %w", err)
		}
	}
	for _, fn := range m.procs["main"].body {
		if fn(m) != sigNext {
			break
		}
	}
	if m.fault != nil {
		return nil, m.fault
	}
	return &Result{Steps: m.steps}, nil
}

// Scalar returns the final value of a scalar (or contracted array
// register) by mangled name.
func (m *Machine) Scalar(name string) (float64, bool) {
	if i, ok := m.slotIdx[name]; ok {
		return m.slots[i], true
	}
	return 0, false
}

// SetScalar overwrites a scalar's slot before Run — the lazy runtime's
// seeding path (it also overwrites config scalars, whose Init value
// New already installed). Reports whether the scalar exists.
func (m *Machine) SetScalar(name string, v float64) bool {
	if i, ok := m.slotIdx[name]; ok {
		m.slots[i] = v
		return true
	}
	return false
}

// ArrayData exposes an array's backing storage for tests: data in
// row-major order over the allocation bounds.
func (m *Machine) ArrayData(name string) []float64 {
	if a := m.arrays[name]; a != nil {
		return a.data
	}
	return nil
}

// At reads one logical element of an array.
func (m *Machine) At(name string, idx ...int) (float64, bool) {
	a := m.arrays[name]
	if a == nil || len(idx) != len(a.lo) {
		return 0, false
	}
	pos := 0
	for d, i := range idx {
		pos += (i - a.lo[d]) * a.strides[d]
	}
	if pos < 0 || pos >= len(a.data) {
		return 0, false
	}
	return a.data[pos], true
}

// MemoryFootprint returns the total bytes of allocated array storage —
// the quantity contraction reduces (Fig. 8).
func (m *Machine) MemoryFootprint() int64 {
	var n int64
	for _, a := range m.arrays {
		n += int64(len(a.data)) * 8
	}
	return n
}

// step charges one statement execution; false means the budget is
// exhausted (or the context was cancelled) and the caller must unwind
// with sigFault.
func (m *Machine) step() bool { return m.charge(1) }

// charge accounts n statement executions at once (whole loop nests
// charge in bulk) and polls the context on a statement-count
// countdown; false means the caller must unwind with sigFault.
func (m *Machine) charge(n int64) bool {
	m.steps += n
	if m.steps > m.max {
		m.budgetFault()
		return false
	}
	if m.ctx != nil {
		m.ctxLeft -= n
		if m.ctxLeft <= 0 {
			m.ctxLeft = ctxPollInterval
			select {
			case <-m.ctx.Done():
				if m.fault == nil {
					m.fault = fmt.Errorf("vm: execution cancelled after %d steps: %w", m.steps, m.ctx.Err())
				}
				return false
			default:
			}
		}
	}
	return true
}

// budgetFault records budget exhaustion and returns sigFault.
func (m *Machine) budgetFault() signal {
	if m.fault == nil {
		m.fault = fmt.Errorf("vm: execution budget exceeded (%d steps)", m.max)
	}
	return sigFault
}

func truthy(v float64) bool { return v != 0 }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
