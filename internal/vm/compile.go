package vm

import (
	"fmt"
	"math"
	"unsafe"

	"repro/internal/absint"
	"repro/internal/air"
	"repro/internal/lir"
	"repro/internal/sema"
)

// ---------------------------------------------------------------------------
// Statement compilation

func (m *Machine) compileNodes(nodes []lir.Node) ([]execFn, error) {
	var out []execFn
	for _, n := range nodes {
		fn, err := m.compileNode(n)
		if err != nil {
			return nil, err
		}
		out = append(out, fn)
	}
	return out, nil
}

func (m *Machine) compileNode(n lir.Node) (execFn, error) {
	switch x := n.(type) {
	case *lir.Nest:
		return m.compileNest(x)
	case *lir.ScalarAssign:
		slot, ok := m.slotIdx[x.LHS]
		if !ok {
			return nil, fmt.Errorf("unknown scalar %s", x.LHS)
		}
		rhs, flops, err := m.compileExpr(x.RHS)
		if err != nil {
			return nil, err
		}
		return func(m *Machine) signal {
			if !m.step() {
				return sigFault
			}
			if m.tracer != nil && flops > 0 {
				m.tracer.Flops(flops)
			}
			m.slots[slot] = rhs(m)
			return sigNext
		}, nil
	case *lir.Loop:
		return m.compileLoop(x)
	case *lir.While:
		cond, _, err := m.compileExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		body, err := m.compileNodes(x.Body)
		if err != nil {
			return nil, err
		}
		return func(m *Machine) signal {
			for truthy(cond(m)) {
				if !m.step() {
					return sigFault
				}
				for _, fn := range body {
					if s := fn(m); s != sigNext {
						return s
					}
				}
			}
			return sigNext
		}, nil
	case *lir.If:
		cond, _, err := m.compileExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := m.compileNodes(x.Then)
		if err != nil {
			return nil, err
		}
		els, err := m.compileNodes(x.Else)
		if err != nil {
			return nil, err
		}
		return func(m *Machine) signal {
			if !m.step() {
				return sigFault
			}
			branch := els
			if truthy(cond(m)) {
				branch = then
			}
			for _, fn := range branch {
				if s := fn(m); s != sigNext {
					return s
				}
			}
			return sigNext
		}, nil
	case *lir.PartialReduce:
		return m.compilePartialReduce(x)
	case *lir.Comm:
		return m.compileComm(x)
	case *lir.Call:
		return m.compileCall(x)
	case *lir.Return:
		if x.Value == nil {
			return func(m *Machine) signal {
				if !m.step() {
					return sigFault
				}
				return sigReturn
			}, nil
		}
		val, _, err := m.compileExpr(x.Value)
		if err != nil {
			return nil, err
		}
		if m.curResult < 0 {
			return nil, fmt.Errorf("return with value in a procedure without result")
		}
		slot := m.curResult
		return func(m *Machine) signal {
			if !m.step() {
				return sigFault
			}
			m.slots[slot] = val(m)
			return sigReturn
		}, nil
	case *lir.Writeln:
		return m.compileWriteln(x)
	}
	return nil, fmt.Errorf("unknown node %T", n)
}

func (m *Machine) compileLoop(x *lir.Loop) (execFn, error) {
	slot, ok := m.slotIdx[x.Var]
	if !ok {
		return nil, fmt.Errorf("unknown loop variable %s", x.Var)
	}
	lo, _, err := m.compileExpr(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, _, err := m.compileExpr(x.Hi)
	if err != nil {
		return nil, err
	}
	body, err := m.compileNodes(x.Body)
	if err != nil {
		return nil, err
	}
	down := x.Down
	return func(m *Machine) signal {
		a := int64(lo(m))
		b := int64(hi(m))
		if down {
			for v := a; v >= b; v-- {
				if !m.step() {
					return sigFault
				}
				m.slots[slot] = float64(v)
				for _, fn := range body {
					if s := fn(m); s != sigNext {
						return s
					}
				}
			}
		} else {
			for v := a; v <= b; v++ {
				if !m.step() {
					return sigFault
				}
				m.slots[slot] = float64(v)
				for _, fn := range body {
					if s := fn(m); s != sigNext {
						return s
					}
				}
			}
		}
		return sigNext
	}, nil
}

func (m *Machine) compileCall(x *lir.Call) (execFn, error) {
	cp, ok := m.procs[x.Proc]
	if !ok {
		return nil, fmt.Errorf("unknown procedure %s", x.Proc)
	}
	if len(x.Args) != len(cp.params) {
		return nil, fmt.Errorf("%s: %d args for %d params", x.Proc, len(x.Args), len(cp.params))
	}
	var args []evalFn
	for _, a := range x.Args {
		fn, _, err := m.compileExpr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, fn)
	}
	target := -1
	if x.Target != "" {
		slot, ok := m.slotIdx[x.Target]
		if !ok {
			return nil, fmt.Errorf("unknown call target %s", x.Target)
		}
		target = slot
	}
	params := cp.params
	return func(m *Machine) signal {
		if !m.step() {
			return sigFault
		}
		// Evaluate args before binding (no aliasing of param slots by
		// the caller since recursion is rejected at lowering).
		vals := make([]float64, len(args))
		for i, fn := range args {
			vals[i] = fn(m)
		}
		for i, slot := range params {
			m.slots[slot] = vals[i]
		}
		for _, fn := range cp.body {
			s := fn(m)
			if s == sigFault {
				return sigFault
			}
			if s == sigReturn {
				break
			}
		}
		if target >= 0 && cp.result >= 0 {
			m.slots[target] = m.slots[cp.result]
		}
		return sigNext
	}, nil
}

func (m *Machine) compileWriteln(x *lir.Writeln) (execFn, error) {
	type part struct {
		str  string
		eval evalFn
	}
	var parts []part
	for _, a := range x.Args {
		if a.Expr != nil {
			fn, _, err := m.compileExpr(a.Expr)
			if err != nil {
				return nil, err
			}
			parts = append(parts, part{eval: fn})
		} else {
			parts = append(parts, part{str: a.Str})
		}
	}
	return func(m *Machine) signal {
		if !m.step() {
			return sigFault
		}
		if m.out == nil {
			return sigNext
		}
		for i, p := range parts {
			if i > 0 {
				fmt.Fprint(m.out, " ")
			}
			if p.eval != nil {
				fmt.Fprintf(m.out, "%g", p.eval(m))
			} else {
				fmt.Fprint(m.out, p.str)
			}
		}
		fmt.Fprintln(m.out)
		return sigNext
	}, nil
}

func (m *Machine) compileComm(x *lir.Comm) (execFn, error) {
	// On the sequential VM arrays are whole, so the halo values are
	// already in place; the primitive only reports its traffic to the
	// tracer (the machine model charges it).
	elems := haloElems(x.Reg, x.Off)
	arr, off, phase := x.Array, x.Off.Clone(), x.Phase
	msgID, piggy := x.MsgID, x.Piggyback
	return func(m *Machine) signal {
		if !m.step() {
			return sigFault
		}
		if m.tracer != nil {
			m.tracer.Comm(arr, off, elems, phase, msgID, piggy)
		}
		return sigNext
	}, nil
}

// haloElems is the number of elements a ghost exchange for the given
// offset moves: the slab of the region surface with thickness |off_d|
// in each displaced dimension.
func haloElems(reg interface {
	Rank() int
	Extent(int) int
}, off air.Offset) int {
	n := 1
	for d := 0; d < reg.Rank(); d++ {
		if off[d] != 0 {
			w := off[d]
			if w < 0 {
				w = -w
			}
			n *= w
		} else {
			n *= reg.Extent(d)
		}
	}
	return n
}

// compilePartialReduce lowers a dimensional reduction: initialize the
// destination slab to the identity, then sweep the source region
// accumulating each element into its projection (collapsed dimensions
// pin to the destination's bound).
func (m *Machine) compilePartialReduce(x *lir.PartialReduce) (execFn, error) {
	rank := x.Region.Rank()
	body, flops, err := m.compileExpr(x.Body)
	if err != nil {
		return nil, err
	}
	var loadSite, storeSite *absint.Site
	if m.bounds != nil {
		loadSite, storeSite = m.bounds.ReduceLoad(x), m.bounds.ReduceStore(x)
	}
	load, err := m.compileLoad(x.LHS, air.Zero(rank), loadSite)
	if err != nil {
		return nil, err
	}
	store, err := m.compileStore(x.LHS, air.Zero(rank), storeSite)
	if err != nil {
		return nil, err
	}
	combine := reduceCombine(x.Op)
	id := x.Op.Identity()
	collapsed := make([]bool, rank)
	for k := 0; k < rank; k++ {
		collapsed[k] = x.Dest.Extent(k) == 1 && x.Region.Extent(k) != 1
	}
	dest, region := x.Dest, x.Region

	elems := int64(region.Size())
	return func(m *Machine) signal {
		if !m.charge(elems) {
			return sigFault
		}
		// Initialize the destination slab.
		var init func(k int)
		init = func(k int) {
			if k == rank {
				store(m, id)
				return
			}
			for i := dest.Lo[k]; i <= dest.Hi[k]; i++ {
				m.idx[k] = i
				init(k + 1)
			}
		}
		init(0)
		// Accumulate.
		var sweep func(k int)
		sweep = func(k int) {
			if k == rank {
				v := body(m)
				if m.tracer != nil {
					m.tracer.Flops(flops + 1)
				}
				save := m.idx
				for d := 0; d < rank; d++ {
					if collapsed[d] {
						m.idx[d] = dest.Lo[d]
					}
				}
				store(m, combine(load(m), v))
				m.idx = save
				return
			}
			for i := region.Lo[k]; i <= region.Hi[k]; i++ {
				m.idx[k] = i
				sweep(k + 1)
			}
		}
		sweep(0)
		if m.tracer != nil {
			m.tracer.Reduce()
		}
		return sigNext
	}, nil
}

// ---------------------------------------------------------------------------
// Nest compilation

func (m *Machine) compileNest(x *lir.Nest) (execFn, error) {
	rank := x.Region.Rank()
	type stmtC struct {
		exec execFn // one element execution (uses m.idx)
		init execFn // reduction target initialization, or nil
	}
	var stmts []stmtC

	// Scalar-replacement preloads run first in every iteration.
	for i, pl := range x.Preloads {
		slot, ok := m.slotIdx[pl.Var]
		if !ok {
			return nil, fmt.Errorf("unknown preload register %s", pl.Var)
		}
		var site *absint.Site
		if m.bounds != nil {
			site = m.bounds.PreloadSite(x, i)
		}
		load, err := m.compileLoad(pl.Array, pl.Off, site)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmtC{
			exec: func(m *Machine) signal {
				m.slots[slot] = load(m)
				return sigNext
			},
		})
	}

	for _, s := range x.Body {
		guard := compileGuard(s.Guard, x.Region)
		rhs, flops, err := m.compileExpr(s.RHS)
		if err != nil {
			return nil, err
		}
		switch {
		case s.IsReduce:
			slot, ok := m.slotIdx[s.Target]
			if !ok {
				return nil, fmt.Errorf("unknown reduction target %s", s.Target)
			}
			combine := reduceCombine(s.Op)
			id := s.Op.Identity()
			stmts = append(stmts, stmtC{
				init: func(m *Machine) signal { m.slots[slot] = id; return sigNext },
				exec: func(m *Machine) signal {
					if guard != nil && !guard(m) {
						return sigNext
					}
					if m.tracer != nil {
						m.tracer.Flops(flops + 1)
					}
					m.slots[slot] = combine(m.slots[slot], rhs(m))
					return sigNext
				},
			})
		case s.Contracted:
			slot, ok := m.slotIdx[s.LHS]
			if !ok {
				return nil, fmt.Errorf("unknown contracted register %s", s.LHS)
			}
			stmts = append(stmts, stmtC{
				exec: func(m *Machine) signal {
					if guard != nil && !guard(m) {
						return sigNext
					}
					if m.tracer != nil && flops > 0 {
						m.tracer.Flops(flops)
					}
					m.slots[slot] = rhs(m)
					return sigNext
				},
			})
		default:
			var site *absint.Site
			if m.bounds != nil {
				site = m.bounds.Store(s)
			}
			store, err := m.compileStore(s.LHS, air.Zero(rank), site)
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, stmtC{
				exec: func(m *Machine) signal {
					if guard != nil && !guard(m) {
						return sigNext
					}
					if m.tracer != nil && flops > 0 {
						m.tracer.Flops(flops)
					}
					store(m, rhs(m))
					return sigNext
				},
			})
		}
	}

	body := func(m *Machine) {
		for i := range stmts {
			stmts[i].exec(m)
		}
	}

	// Build the loop nest per the structure vector, outermost first.
	run := body
	for k := rank - 1; k >= 0; k-- {
		pi := x.Order[k]
		dim := pi
		if dim < 0 {
			dim = -dim
		}
		d := dim - 1
		lo, hi := x.Region.Lo[d], x.Region.Hi[d]
		inner := run
		if pi > 0 {
			run = func(m *Machine) {
				for i := lo; i <= hi; i++ {
					m.idx[d] = i
					inner(m)
				}
			}
		} else {
			run = func(m *Machine) {
				for i := hi; i >= lo; i-- {
					m.idx[d] = i
					inner(m)
				}
			}
		}
	}

	nReduce := 0
	for _, s := range x.Body {
		if s.IsReduce {
			nReduce++
		}
	}
	elemSteps := int64(x.Region.Size()) * int64(len(stmts))
	return func(m *Machine) signal {
		if !m.charge(elemSteps) {
			return sigFault
		}
		for i := range stmts {
			if stmts[i].init != nil {
				stmts[i].init(m)
			}
		}
		run(m)
		if m.tracer != nil {
			for i := 0; i < nReduce; i++ {
				m.tracer.Reduce()
			}
		}
		return sigNext
	}, nil
}

// compileGuard returns a predicate over m.idx, or nil when the guard
// region equals the nest region (no check needed). Only dimensions
// where the statement's region differs from the nest region are
// checked.
func compileGuard(guard, nest *sema.Region) func(*Machine) bool {
	if guard == nil {
		return nil
	}
	type check struct{ d, lo, hi int }
	var checks []check
	for d := 0; d < nest.Rank(); d++ {
		if guard.Lo[d] != nest.Lo[d] || guard.Hi[d] != nest.Hi[d] {
			checks = append(checks, check{d, guard.Lo[d], guard.Hi[d]})
		}
	}
	if len(checks) == 0 {
		return nil
	}
	return func(m *Machine) bool {
		for _, c := range checks {
			if m.idx[c.d] < c.lo || m.idx[c.d] > c.hi {
				return false
			}
		}
		return true
	}
}

func reduceCombine(op air.ReduceOp) func(a, b float64) float64 {
	switch op {
	case air.ReduceSum:
		return func(a, b float64) float64 { return a + b }
	case air.ReduceProd:
		return func(a, b float64) float64 { return a * b }
	case air.ReduceMax:
		return math.Max
	case air.ReduceMin:
		return math.Min
	}
	return func(a, b float64) float64 { return a + b }
}

// ---------------------------------------------------------------------------
// Expression compilation

// compileStore returns a function writing one element of an array at
// the given offset from the current indices. A ProvenSafe site (and
// no tracer) takes the unchecked path: a raw pointer store with no
// slice bounds check, licensed by the prover's interval evidence.
func (m *Machine) compileStore(name string, off air.Offset, site *absint.Site) (func(*Machine, float64), error) {
	a, ok := m.arrays[name]
	if !ok {
		return nil, fmt.Errorf("unknown array %s", name)
	}
	pos, addr := accessFns(a, off)
	if m.tracer != nil {
		return func(m *Machine, v float64) {
			p := pos(m)
			m.tracer.Access(addr(p), true)
			a.data[p] = v
		}, nil
	}
	if unchecked(site, a) {
		base, n := unsafe.Pointer(&a.data[0]), len(a.data)
		if shift := site.FaultShift; shift != 0 {
			return func(m *Machine, v float64) {
				*(*float64)(unsafe.Add(base, uintptr(faultPos(pos(m), shift, n))*8)) = v
			}, nil
		}
		return func(m *Machine, v float64) {
			*(*float64)(unsafe.Add(base, uintptr(pos(m))*8)) = v
		}, nil
	}
	return func(m *Machine, v float64) { a.data[pos(m)] = v }, nil
}

// compileLoad returns a function reading one element of an array (or
// the register of a contracted array) at the given offset from the
// current indices, taking the unchecked path when the prover's site
// verdict licenses it.
func (m *Machine) compileLoad(name string, off air.Offset, site *absint.Site) (evalFn, error) {
	if info := m.prog.Source.Arrays[name]; info != nil && info.Contracted {
		slot, ok := m.slotIdx[name]
		if !ok {
			return nil, fmt.Errorf("no register for contracted %s", name)
		}
		return func(m *Machine) float64 { return m.slots[slot] }, nil
	}
	a, ok := m.arrays[name]
	if !ok {
		return nil, fmt.Errorf("unknown array %s", name)
	}
	pos, addr := accessFns(a, off)
	if m.tracer != nil {
		return func(m *Machine) float64 {
			p := pos(m)
			m.tracer.Access(addr(p), false)
			return a.data[p]
		}, nil
	}
	if unchecked(site, a) {
		base, n := unsafe.Pointer(&a.data[0]), len(a.data)
		if shift := site.FaultShift; shift != 0 {
			return func(m *Machine) float64 {
				return *(*float64)(unsafe.Add(base, uintptr(faultPos(pos(m), shift, n))*8))
			}, nil
		}
		return func(m *Machine) float64 {
			return *(*float64)(unsafe.Add(base, uintptr(pos(m))*8))
		}, nil
	}
	return func(m *Machine) float64 { return a.data[pos(m)] }, nil
}

// unchecked reports whether an access site may skip the bounds check.
func unchecked(site *absint.Site, a *arrayStore) bool {
	return site != nil && site.Verdict == absint.ProvenSafe && len(a.data) > 0
}

// faultPos displaces a seeded-fault access by the injected evidence
// shift, wrapped into the storage so the deliberate miscompile reads a
// deterministic wrong element rather than unowned memory.
func faultPos(p, shift, n int) int {
	p += shift
	if p < 0 {
		p += n
	} else if p >= n {
		p -= n
	}
	return p
}

func accessFns(a *arrayStore, off air.Offset) (func(*Machine) int, func(int) int64) {
	lo := a.lo
	st := a.strides
	o := off.Clone()
	rank := len(lo)
	pos := func(m *Machine) int {
		p := 0
		for d := 0; d < rank; d++ {
			p += (m.idx[d] + o[d] - lo[d]) * st[d]
		}
		return p
	}
	base := a.base
	addr := func(p int) int64 { return base + int64(p)*8 }
	return pos, addr
}

// compileExpr compiles an expression; flops is the static operation
// count charged per evaluation.
func (m *Machine) compileExpr(e air.Expr) (evalFn, int64, error) {
	switch x := e.(type) {
	case *air.ConstExpr:
		v := x.Val
		return func(*Machine) float64 { return v }, 0, nil
	case *air.ScalarExpr:
		slot, ok := m.slotIdx[x.Name]
		if !ok {
			return nil, 0, fmt.Errorf("unknown scalar %s", x.Name)
		}
		return func(m *Machine) float64 { return m.slots[slot] }, 0, nil
	case *air.RefExpr:
		var site *absint.Site
		if m.bounds != nil {
			site = m.bounds.Read(x)
		}
		fn, err := m.compileLoad(x.Ref.Array, x.Ref.Off, site)
		return fn, 0, err
	case *air.IndexExpr:
		d := x.Dim - 1
		return func(m *Machine) float64 { return float64(m.idx[d]) }, 0, nil
	case *air.BinExpr:
		xf, fx, err := m.compileExpr(x.X)
		if err != nil {
			return nil, 0, err
		}
		yf, fy, err := m.compileExpr(x.Y)
		if err != nil {
			return nil, 0, err
		}
		flops := fx + fy + 1
		fn, err := binFn(x.Op, xf, yf)
		return fn, flops, err
	case *air.UnExpr:
		xf, fx, err := m.compileExpr(x.X)
		if err != nil {
			return nil, 0, err
		}
		if x.Op == air.OpNot {
			return func(m *Machine) float64 { return b2f(!truthy(xf(m))) }, fx + 1, nil
		}
		return func(m *Machine) float64 { return -xf(m) }, fx + 1, nil
	case *air.CallExpr:
		var args []evalFn
		var flops int64 = 4 // transcendental calls cost more than one op
		for _, a := range x.Args {
			fn, fa, err := m.compileExpr(a)
			if err != nil {
				return nil, 0, err
			}
			args = append(args, fn)
			flops += fa
		}
		fn, err := builtinFn(x.Name, args)
		return fn, flops, err
	}
	return nil, 0, fmt.Errorf("unknown expression %T", e)
}

func binFn(op air.Op, x, y evalFn) (evalFn, error) {
	switch op {
	case air.OpAdd:
		return func(m *Machine) float64 { return x(m) + y(m) }, nil
	case air.OpSub:
		return func(m *Machine) float64 { return x(m) - y(m) }, nil
	case air.OpMul:
		return func(m *Machine) float64 { return x(m) * y(m) }, nil
	case air.OpDiv:
		return func(m *Machine) float64 { return x(m) / y(m) }, nil
	case air.OpRem:
		return func(m *Machine) float64 { return math.Mod(x(m), y(m)) }, nil
	case air.OpPow:
		return func(m *Machine) float64 { return math.Pow(x(m), y(m)) }, nil
	case air.OpEq:
		return func(m *Machine) float64 { return b2f(x(m) == y(m)) }, nil
	case air.OpNe:
		return func(m *Machine) float64 { return b2f(x(m) != y(m)) }, nil
	case air.OpLt:
		return func(m *Machine) float64 { return b2f(x(m) < y(m)) }, nil
	case air.OpLe:
		return func(m *Machine) float64 { return b2f(x(m) <= y(m)) }, nil
	case air.OpGt:
		return func(m *Machine) float64 { return b2f(x(m) > y(m)) }, nil
	case air.OpGe:
		return func(m *Machine) float64 { return b2f(x(m) >= y(m)) }, nil
	case air.OpAnd:
		return func(m *Machine) float64 { return b2f(truthy(x(m)) && truthy(y(m))) }, nil
	case air.OpOr:
		return func(m *Machine) float64 { return b2f(truthy(x(m)) || truthy(y(m))) }, nil
	}
	return nil, fmt.Errorf("unknown operator %v", op)
}

func builtinFn(name string, args []evalFn) (evalFn, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d args, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "sqrt", "exp", "log", "sin", "cos", "tan", "abs", "floor", "ceil", "sign":
		if err := need(1); err != nil {
			return nil, err
		}
		a := args[0]
		var f func(float64) float64
		switch name {
		case "sqrt":
			f = math.Sqrt
		case "exp":
			f = math.Exp
		case "log":
			f = math.Log
		case "sin":
			f = math.Sin
		case "cos":
			f = math.Cos
		case "tan":
			f = math.Tan
		case "abs":
			f = math.Abs
		case "floor":
			f = math.Floor
		case "ceil":
			f = math.Ceil
		case "sign":
			f = func(v float64) float64 {
				switch {
				case v > 0:
					return 1
				case v < 0:
					return -1
				}
				return 0
			}
		}
		return func(m *Machine) float64 { return f(a(m)) }, nil
	case "min", "max", "pow", "mod", "atan2":
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := args[0], args[1]
		var f func(x, y float64) float64
		switch name {
		case "min":
			f = math.Min
		case "max":
			f = math.Max
		case "pow":
			f = math.Pow
		case "mod":
			f = math.Mod
		case "atan2":
			f = math.Atan2
		}
		return func(m *Machine) float64 { return f(a(m), b(m)) }, nil
	}
	return nil, fmt.Errorf("unknown builtin %s", name)
}
