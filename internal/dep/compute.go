package dep

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/sema"
)

// Edge is a dependence between two statements of a block, identified
// by their indices within the block. From precedes To in program
// order, and To depends on From.
type Edge struct {
	From, To int
	Items    []Item
}

// rect is the rectangle of array elements touched by one access:
// the statement region shifted by the access offset.
type rect struct {
	lo, hi []int
}

func makeRect(reg *sema.Region, off air.Offset) rect {
	r := rect{lo: make([]int, reg.Rank()), hi: make([]int, reg.Rank())}
	for i := 0; i < reg.Rank(); i++ {
		d := 0
		if off != nil {
			d = off[i]
		}
		r.lo[i] = reg.Lo[i] + d
		r.hi[i] = reg.Hi[i] + d
	}
	return r
}

func (r rect) overlaps(o rect) bool {
	// Rank mismatch only arises against the "everything" rectangle of
	// a summarized call; compare the common prefix (permissive).
	n := len(r.lo)
	if len(o.lo) < n {
		n = len(o.lo)
	}
	for i := 0; i < n; i++ {
		if r.hi[i] < o.lo[i] || o.hi[i] < r.lo[i] {
			return false
		}
	}
	return true
}

func (r rect) contains(o rect) bool {
	if len(r.lo) != len(o.lo) {
		return false
	}
	for i := range r.lo {
		if r.lo[i] > o.lo[i] || r.hi[i] < o.hi[i] {
			return false
		}
	}
	return true
}

// access records one array access by a statement.
type access struct {
	stmt int
	off  air.Offset
	rc   rect
}

// arrayAccess describes the array reads and writes of a statement.
// When slab is non-nil it overrides the touched rectangle (used by
// communication primitives, which write only the halo slab outside
// the region, not the whole shifted region).
type arrayAccess struct {
	array string
	off   air.Offset
	reg   *sema.Region
	slab  *sema.Region
}

// rectOf computes the element rectangle an access touches.
func rectOf(a arrayAccess) rect {
	if a.slab != nil {
		return makeRect(a.slab, nil)
	}
	return makeRect(a.reg, a.off)
}

// HaloRect returns the rectangle a ghost exchange writes: the slab
// outside the region in every displaced dimension (strips for cardinal
// directions, corners for diagonal ones). Slabs of distinct neighbor
// directions are disjoint, which is what keeps exchanges from carrying
// spurious dependences against each other; package comm decomposes
// multi-direction offsets into such per-direction exchanges.
func HaloRect(reg *sema.Region, off air.Offset) *sema.Region {
	lo := make([]int, reg.Rank())
	hi := make([]int, reg.Rank())
	for k := 0; k < reg.Rank(); k++ {
		switch {
		case off[k] > 0:
			lo[k] = reg.Hi[k] + 1
			hi[k] = reg.Hi[k] + off[k]
		case off[k] < 0:
			lo[k] = reg.Lo[k] + off[k]
			hi[k] = reg.Lo[k] - 1
		default:
			lo[k] = reg.Lo[k]
			hi[k] = reg.Hi[k]
		}
	}
	return &sema.Region{Lo: lo, Hi: hi}
}

// stmtEffects summarizes what a statement touches.
type stmtEffects struct {
	arrayReads  []arrayAccess
	arrayWrites []arrayAccess
	scalarReads []string
	scalarWrite string
	barrier     bool // I/O, returns, unsummarized calls: full barrier
	// summary, when non-nil, adds the callee's global effects as
	// ordering-only (vectorless) array dependences plus scalar deps.
	summary *air.ProcEffects
}

func effects(s air.Stmt) stmtEffects {
	var e stmtEffects
	switch x := s.(type) {
	case *air.ArrayStmt:
		e.arrayWrites = []arrayAccess{{x.LHS, air.Zero(x.Region.Rank()), x.Region, nil}}
		for _, r := range x.Reads() {
			e.arrayReads = append(e.arrayReads, arrayAccess{r.Array, r.Off, x.Region, nil})
		}
		e.scalarReads = air.ScalarReads(x.RHS)
	case *air.ScalarStmt:
		e.scalarReads = air.ScalarReads(x.RHS)
		e.scalarWrite = x.LHS
	case *air.ReduceStmt:
		for _, r := range air.Refs(x.Body) {
			e.arrayReads = append(e.arrayReads, arrayAccess{r.Array, r.Off, x.Region, nil})
		}
		e.scalarReads = air.ScalarReads(x.Body)
		e.scalarWrite = x.Target
	case *air.PartialReduceStmt:
		e.arrayWrites = []arrayAccess{{x.LHS, air.Zero(x.Dest.Rank()), x.Dest, nil}}
		for _, r := range air.Refs(x.Body) {
			e.arrayReads = append(e.arrayReads, arrayAccess{r.Array, r.Off, x.Region, nil})
		}
		e.scalarReads = air.ScalarReads(x.Body)
	case *air.CommStmt:
		// A ghost exchange reads interior elements and writes only
		// the halo slabs outside the region. A pipelined pair is
		// ordered through a pseudo-scalar keyed by the message id.
		read := arrayAccess{x.Array, air.Zero(x.Region.Rank()), x.Region, nil}
		writes := []arrayAccess{{x.Array, x.Off, x.Region, HaloRect(x.Region, x.Off)}}
		switch x.Phase {
		case air.CommSend:
			e.arrayReads = []arrayAccess{read}
			e.scalarWrite = fmt.Sprintf("$msg%d", x.MsgID)
		case air.CommRecv:
			e.arrayWrites = writes
			e.scalarReads = []string{fmt.Sprintf("$msg%d", x.MsgID)}
		default:
			e.arrayReads = []arrayAccess{read}
			e.arrayWrites = writes
		}
	case *air.WritelnStmt:
		for _, a := range x.Args {
			if a.Expr != nil {
				e.scalarReads = append(e.scalarReads, air.ScalarReads(a.Expr)...)
			}
		}
		e.barrier = true
	case *air.CallStmt:
		for _, a := range x.Args {
			e.scalarReads = append(e.scalarReads, air.ScalarReads(a)...)
		}
		if x.Target != "" {
			e.scalarWrite = x.Target
		}
		if x.Effects == nil || x.Effects.IO {
			// Unknown callee or callee I/O: full ordering barrier.
			e.barrier = true
			break
		}
		// Summarized call: touches exactly the callee's globals.
		// Array accesses have no offset information, so they enter as
		// whole-array ordering accesses (nil region handled by the
		// caller via summary rectangles below).
		e.summary = x.Effects
	case *air.ReturnStmt:
		if x.Value != nil {
			e.scalarReads = air.ScalarReads(x.Value)
		}
		e.barrier = true
	}
	return e
}

// Compute builds the dependence edges among the statements of a block.
// Array dependences carry unconstrained distance vectors; scalar and
// barrier dependences are ordering-only items.
//
// The computation is kill-aware: a write whose touched rectangle
// contains an earlier access's rectangle retires that access, so
// dependences are not reported across redefinitions. (Distinct live
// ranges of an array therefore optimize separately, the refinement
// noted in the paper's §4.1 footnote.)
func Compute(stmts []air.Stmt) []Edge {
	return compute(stmts, true)
}

// ComputeNaive is Compute without kill-awareness: accesses are never
// retired by covering writes, so dependences are reported across
// redefinitions. It exists for the DESIGN.md ablation quantifying the
// paper's live-range footnote (§4.1) — the precision kill-awareness
// buys shows up as contraction opportunities lost without it.
func ComputeNaive(stmts []air.Stmt) []Edge {
	return compute(stmts, false)
}

func compute(stmts []air.Stmt, killAware bool) []Edge {
	type key struct{ from, to int }
	edges := map[key]*Edge{}
	var order []key

	addItem := func(from, to int, it Item) {
		if from == to {
			return
		}
		k := key{from, to}
		e, ok := edges[k]
		if !ok {
			e = &Edge{From: from, To: to}
			edges[k] = e
			order = append(order, k)
		}
		for _, have := range e.Items {
			if have.Var == it.Var && have.Kind == it.Kind && have.Vector == it.Vector &&
				(!it.Vector || have.U.Equal(it.U)) {
				return
			}
		}
		e.Items = append(e.Items, it)
	}

	writes := map[string][]access{} // active writes per array
	reads := map[string][]access{}  // active reads per array
	lastScalarWrite := map[string]int{}
	scalarReadsSince := map[string][]int{}
	lastBarrier := -1

	for j, s := range stmts {
		eff := effects(s)

		if lastBarrier >= 0 {
			addItem(lastBarrier, j, Item{Var: "$order", Kind: Flow})
		}

		// Array reads: flow dependences from active writes.
		for _, ar := range eff.arrayReads {
			rc := rectOf(ar)
			for _, w := range writes[ar.array] {
				if !w.rc.overlaps(rc) {
					continue
				}
				if w.off == nil {
					// Writer was a summarized call: ordering only.
					addItem(w.stmt, j, Item{Var: ar.array, Kind: Flow})
					continue
				}
				addItem(w.stmt, j, Item{
					Var: ar.array, Kind: Flow, Vector: true,
					U: Unconstrained(w.off, ar.off),
				})
			}
		}
		// Array writes: anti dependences from active reads, output
		// dependences from active writes.
		for _, aw := range eff.arrayWrites {
			rc := rectOf(aw)
			for _, r := range reads[aw.array] {
				if !r.rc.overlaps(rc) {
					continue
				}
				if r.off == nil {
					addItem(r.stmt, j, Item{Var: aw.array, Kind: Anti})
					continue
				}
				addItem(r.stmt, j, Item{
					Var: aw.array, Kind: Anti, Vector: true,
					U: Unconstrained(r.off, aw.off),
				})
			}
			for _, w := range writes[aw.array] {
				if !w.rc.overlaps(rc) {
					continue
				}
				if w.off == nil {
					addItem(w.stmt, j, Item{Var: aw.array, Kind: Output})
					continue
				}
				addItem(w.stmt, j, Item{
					Var: aw.array, Kind: Output, Vector: true,
					U: Unconstrained(w.off, aw.off),
				})
			}
		}

		// Scalar dependences.
		for _, name := range eff.scalarReads {
			if w, ok := lastScalarWrite[name]; ok {
				addItem(w, j, Item{Var: name, Kind: Flow})
			}
		}
		if eff.scalarWrite != "" {
			name := eff.scalarWrite
			for _, r := range scalarReadsSince[name] {
				addItem(r, j, Item{Var: name, Kind: Anti})
			}
			if w, ok := lastScalarWrite[name]; ok {
				addItem(w, j, Item{Var: name, Kind: Output})
			}
		}

		if eff.summary != nil {
			// Callee-touched arrays: ordering-only dependences against
			// every active access of those arrays, and registration of
			// an "everywhere" access so later statements order too.
			for _, name := range eff.summary.ArraysRead {
				for _, w := range writes[name] {
					addItem(w.stmt, j, Item{Var: name, Kind: Flow})
				}
			}
			for _, name := range eff.summary.ArraysWritten {
				for _, r := range reads[name] {
					addItem(r.stmt, j, Item{Var: name, Kind: Anti})
				}
				for _, w := range writes[name] {
					addItem(w.stmt, j, Item{Var: name, Kind: Output})
				}
			}
			for _, name := range eff.summary.ScalarsRead {
				if w, ok := lastScalarWrite[name]; ok {
					addItem(w, j, Item{Var: name, Kind: Flow})
				}
			}
			for _, name := range eff.summary.ScalarsWritten {
				for _, r := range scalarReadsSince[name] {
					addItem(r, j, Item{Var: name, Kind: Anti})
				}
				if w, ok := lastScalarWrite[name]; ok {
					addItem(w, j, Item{Var: name, Kind: Output})
				}
			}
		}

		if eff.barrier {
			for i := 0; i < j; i++ {
				addItem(i, j, Item{Var: "$order", Kind: Flow})
			}
			lastBarrier = j
		}

		// Update state: kills, then registrations.
		if killAware {
			for _, aw := range eff.arrayWrites {
				rc := rectOf(aw)
				writes[aw.array] = retire(writes[aw.array], rc)
				reads[aw.array] = retire(reads[aw.array], rc)
			}
		}
		for _, aw := range eff.arrayWrites {
			writes[aw.array] = append(writes[aw.array],
				access{stmt: j, off: aw.off.Clone(), rc: rectOf(aw)})
		}
		for _, ar := range eff.arrayReads {
			reads[ar.array] = append(reads[ar.array],
				access{stmt: j, off: ar.off.Clone(), rc: rectOf(ar)})
		}
		for _, name := range eff.scalarReads {
			scalarReadsSince[name] = append(scalarReadsSince[name], j)
		}
		if eff.scalarWrite != "" {
			lastScalarWrite[eff.scalarWrite] = j
			scalarReadsSince[eff.scalarWrite] = nil
		}
		if eff.summary != nil {
			// Register whole-array accesses (huge rectangles) so later
			// statements see the call's effects; offsets are unknown,
			// so the rect spans everything the call might touch.
			for _, name := range eff.summary.ArraysRead {
				reads[name] = append(reads[name], access{stmt: j, off: nil, rc: everything()})
			}
			for _, name := range eff.summary.ArraysWritten {
				writes[name] = append(writes[name], access{stmt: j, off: nil, rc: everything()})
			}
			for _, name := range eff.summary.ScalarsRead {
				scalarReadsSince[name] = append(scalarReadsSince[name], j)
			}
			for _, name := range eff.summary.ScalarsWritten {
				lastScalarWrite[name] = j
				scalarReadsSince[name] = nil
			}
		}
	}

	out := make([]Edge, 0, len(order))
	for _, k := range order {
		out = append(out, *edges[k])
	}
	return out
}

// everything returns a rectangle covering any index (rank is
// irrelevant: overlaps() is permissive on rank mismatch for these).
func everything() rect {
	const big = 1 << 30
	return rect{lo: []int{-big, -big, -big, -big}, hi: []int{big, big, big, big}}
}

// retire removes accesses fully covered by the killing rectangle.
func retire(as []access, kill rect) []access {
	keep := as[:0]
	for _, a := range as {
		if !kill.contains(a.rc) {
			keep = append(keep, a)
		}
	}
	return keep
}
