// Package dep implements the array-level data-dependence machinery of
// §2.2: unconstrained distance vectors, their constraining by loop
// structure vectors, and the computation of dependences between the
// statements of a straight-line block.
package dep

import (
	"fmt"

	"repro/internal/air"
)

// Kind classifies a data dependence.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // write before read (true dependence)
	Anti               // read before write
	Output             // write before write
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Item is one labeled dependence: (variable, unconstrained distance
// vector, kind). Vector is false for ordering-only dependences (scalar
// variables, I/O, procedure calls), which carry no distance vector and
// simply forbid reordering.
type Item struct {
	Var    string
	U      air.Offset // nil when !Vector
	Kind   Kind
	Vector bool
}

func (it Item) String() string {
	if !it.Vector {
		return fmt.Sprintf("(%s, -, %s)", it.Var, it.Kind)
	}
	return fmt.Sprintf("(%s, %s, %s)", it.Var, it.U, it.Kind)
}

// Unconstrained computes the unconstrained distance vector of a
// dependence whose source accesses the array at offset src and whose
// target accesses it at offset dst (Definition 2): u = src − dst.
//
// Example (Fig. 2): statement 1 writes A at offset (0,0); statement 2
// reads A@(0,-1); the flow dependence has u = (0,0)−(0,−1) = (0,1).
func Unconstrained(src, dst air.Offset) air.Offset {
	u := make(air.Offset, len(src))
	for i := range src {
		u[i] = src[i] - dst[i]
	}
	return u
}

// LoopStructure is a loop structure vector (Definition 4): a
// permutation of (±1, ±2, ..., ±n). Entry i describes loop i (1 is the
// outermost): it iterates over array dimension |p[i]| in increasing
// order when p[i] > 0 and decreasing order when p[i] < 0.
type LoopStructure []int

// Valid reports whether p is a permutation of (±1 ... ±n).
func (p LoopStructure) Valid() bool {
	seen := make([]bool, len(p)+1)
	for _, v := range p {
		d := v
		if d < 0 {
			d = -d
		}
		if d < 1 || d > len(p) || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

func (p LoopStructure) String() string {
	s := "("
	for i, v := range p {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + ")"
}

// Constrain builds a conventional (constrained) distance vector from
// an unconstrained vector u under loop structure p:
//
//	d_i = sign(p_i) · u_{|p_i|}
//
// Example (Fig. 2): u = (−1,0) under p = (−2,−1) constrains to (0,1).
func Constrain(u air.Offset, p LoopStructure) air.Offset {
	d := make(air.Offset, len(p))
	for i, pi := range p {
		dim := pi
		sign := 1
		if dim < 0 {
			dim = -dim
			sign = -1
		}
		d[i] = sign * u[dim-1]
	}
	return d
}

// LexNonNegative reports whether d is lexicographically nonnegative:
// the null vector, or its leftmost nonzero element positive. Only
// lexicographically nonnegative constrained vectors are legal — the
// dependence source must precede its target in the carrying loop.
func LexNonNegative(d air.Offset) bool {
	for _, v := range d {
		if v > 0 {
			return true
		}
		if v < 0 {
			return false
		}
	}
	return true
}

// Preserves reports whether loop structure p preserves every
// dependence in us, i.e. every constrained vector is lexicographically
// nonnegative.
func Preserves(p LoopStructure, us []air.Offset) bool {
	for _, u := range us {
		if !LexNonNegative(Constrain(u, p)) {
			return false
		}
	}
	return true
}
