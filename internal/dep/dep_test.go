package dep

import (
	"testing"

	"repro/internal/air"
	"repro/internal/sema"
)

func off(vs ...int) air.Offset { return air.Offset(vs) }

func TestUnconstrained(t *testing.T) {
	// The three dependences of Figure 2(b).
	tests := []struct {
		src, dst, want air.Offset
	}{
		{off(0, 0), off(0, -1), off(0, 1)},  // flow on A, stmt 1 -> 2
		{off(0, 0), off(-1, 1), off(1, -1)}, // flow on A, stmt 1 -> 3
		{off(-1, 0), off(0, 0), off(-1, 0)}, // anti on B, stmt 1 -> 3
	}
	for _, tt := range tests {
		if got := Unconstrained(tt.src, tt.dst); !got.Equal(tt.want) {
			t.Errorf("Unconstrained(%v, %v) = %v, want %v", tt.src, tt.dst, got, tt.want)
		}
	}
}

func TestConstrain(t *testing.T) {
	// §2.2: constraining (-1,0) and (1,-1) by p = (-2,-1) yields
	// (0,1) and (1,-1).
	p := LoopStructure{-2, -1}
	if got := Constrain(off(-1, 0), p); !got.Equal(off(0, 1)) {
		t.Errorf("Constrain((-1,0), (-2,-1)) = %v, want (0,1)", got)
	}
	if got := Constrain(off(1, -1), p); !got.Equal(off(1, -1)) {
		t.Errorf("Constrain((1,-1), (-2,-1)) = %v, want (1,-1)", got)
	}
	// Identity structure returns u itself.
	id := LoopStructure{1, 2}
	if got := Constrain(off(3, -2), id); !got.Equal(off(3, -2)) {
		t.Errorf("Constrain under identity = %v", got)
	}
}

func TestLexNonNegative(t *testing.T) {
	tests := []struct {
		d    air.Offset
		want bool
	}{
		{off(0, 0), true},
		{off(1, -5), true},
		{off(0, 1), true},
		{off(-1, 9), false},
		{off(0, -1), false},
	}
	for _, tt := range tests {
		if got := LexNonNegative(tt.d); got != tt.want {
			t.Errorf("LexNonNegative(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestLoopStructureValid(t *testing.T) {
	valid := []LoopStructure{{1}, {-1}, {2, 1}, {-2, -1}, {1, -2, 3}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []LoopStructure{{0}, {1, 1}, {-1, 1}, {3, 1}, {2}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestPreserves(t *testing.T) {
	// From Fig. 2: p = (-2,-1) preserves {(-1,0), (1,-1)}.
	us := []air.Offset{off(-1, 0), off(1, -1)}
	if !Preserves(LoopStructure{-2, -1}, us) {
		t.Error("(-2,-1) should preserve the Fig. 2 dependences")
	}
	// The identity structure does not: (-1,0) constrains to itself.
	if Preserves(LoopStructure{1, 2}, us) {
		t.Error("(1,2) should not preserve (-1,0)")
	}
}

// ---------------------------------------------------------------------------
// Block dependence computation

func reg2(m, n int) *sema.Region {
	return &sema.Region{Lo: []int{1, 1}, Hi: []int{m, n}}
}

func arrStmt(id int, r *sema.Region, lhs string, reads ...air.Ref) *air.ArrayStmt {
	var rhs air.Expr
	for _, rd := range reads {
		ref := &air.RefExpr{Ref: rd}
		if rhs == nil {
			rhs = ref
		} else {
			rhs = &air.BinExpr{Op: air.OpAdd, X: rhs, Y: ref}
		}
	}
	if rhs == nil {
		rhs = &air.ConstExpr{Val: 1}
	}
	return &air.ArrayStmt{ID: id, Region: r, LHS: lhs, RHS: rhs}
}

func findItem(es []Edge, from, to int, v string, k Kind) *Item {
	for _, e := range es {
		if e.From != from || e.To != to {
			continue
		}
		for i, it := range e.Items {
			if it.Var == v && it.Kind == k {
				return &e.Items[i]
			}
		}
	}
	return nil
}

// TestFigure2Dependences reproduces the ASDG of Fig. 2(d).
func TestFigure2Dependences(t *testing.T) {
	r := reg2(4, 4)
	stmts := []air.Stmt{
		arrStmt(0, r, "A", air.Ref{Array: "B", Off: off(-1, 0)}),
		arrStmt(1, r, "C", air.Ref{Array: "A", Off: off(0, -1)}),
		arrStmt(2, r, "B", air.Ref{Array: "A", Off: off(-1, 1)}),
	}
	es := Compute(stmts)

	if it := findItem(es, 0, 1, "A", Flow); it == nil || !it.U.Equal(off(0, 1)) {
		t.Errorf("flow A 0->1: got %v, want u=(0,1)", it)
	}
	if it := findItem(es, 0, 2, "A", Flow); it == nil || !it.U.Equal(off(1, -1)) {
		t.Errorf("flow A 0->2: got %v, want u=(1,-1)", it)
	}
	if it := findItem(es, 0, 2, "B", Anti); it == nil || !it.U.Equal(off(-1, 0)) {
		t.Errorf("anti B 0->2: got %v, want u=(-1,0)", it)
	}
	// No dependence between statements 1 and 2.
	if it := findItem(es, 1, 2, "A", Flow); it != nil {
		t.Errorf("unexpected dependence 1->2: %v", it)
	}
}

func TestKillAwareness(t *testing.T) {
	r := reg2(4, 4)
	// A := B; A := C; D := A  — the redefinition of A kills the first
	// write, so the only flow on A is 1 -> 2.
	stmts := []air.Stmt{
		arrStmt(0, r, "A", air.Ref{Array: "B", Off: off(0, 0)}),
		arrStmt(1, r, "A", air.Ref{Array: "C", Off: off(0, 0)}),
		arrStmt(2, r, "D", air.Ref{Array: "A", Off: off(0, 0)}),
	}
	es := Compute(stmts)
	if it := findItem(es, 0, 2, "A", Flow); it != nil {
		t.Errorf("killed flow dependence 0->2 reported: %v", it)
	}
	if it := findItem(es, 1, 2, "A", Flow); it == nil || !it.U.IsZero() {
		t.Errorf("flow A 1->2 missing or wrong: %v", it)
	}
	if it := findItem(es, 0, 1, "A", Output); it == nil || !it.U.IsZero() {
		t.Errorf("output A 0->1 missing: %v", it)
	}
}

func TestPartialWriteDoesNotKill(t *testing.T) {
	full := reg2(4, 4)
	part := &sema.Region{Lo: []int{2, 2}, Hi: []int{3, 3}}
	// A := B over full; A := C over interior; D := A over full.
	// The partial redefinition must NOT kill the first write.
	stmts := []air.Stmt{
		arrStmt(0, full, "A", air.Ref{Array: "B", Off: off(0, 0)}),
		arrStmt(1, part, "A", air.Ref{Array: "C", Off: off(0, 0)}),
		arrStmt(2, full, "D", air.Ref{Array: "A", Off: off(0, 0)}),
	}
	es := Compute(stmts)
	if it := findItem(es, 0, 2, "A", Flow); it == nil {
		t.Error("flow 0->2 incorrectly killed by partial write")
	}
	if it := findItem(es, 1, 2, "A", Flow); it == nil {
		t.Error("flow 1->2 missing")
	}
}

func TestDisjointRegionsNoDependence(t *testing.T) {
	top := &sema.Region{Lo: []int{1, 1}, Hi: []int{2, 4}}
	bot := &sema.Region{Lo: []int{3, 1}, Hi: []int{4, 4}}
	stmts := []air.Stmt{
		arrStmt(0, top, "A", air.Ref{Array: "B", Off: off(0, 0)}),
		arrStmt(1, bot, "A", air.Ref{Array: "C", Off: off(0, 0)}),
	}
	es := Compute(stmts)
	if it := findItem(es, 0, 1, "A", Output); it != nil {
		t.Errorf("disjoint writes should not depend: %v", it)
	}
}

func TestScalarDependences(t *testing.T) {
	r := reg2(4, 4)
	// s := 1; [R] A := s; s := 2
	stmts := []air.Stmt{
		&air.ScalarStmt{LHS: "s", RHS: &air.ConstExpr{Val: 1}},
		&air.ArrayStmt{ID: 0, Region: r, LHS: "A", RHS: &air.ScalarExpr{Name: "s"}},
		&air.ScalarStmt{LHS: "s", RHS: &air.ConstExpr{Val: 2}},
	}
	es := Compute(stmts)
	if it := findItem(es, 0, 1, "s", Flow); it == nil || it.Vector {
		t.Errorf("scalar flow 0->1 missing or vectored: %v", it)
	}
	if it := findItem(es, 1, 2, "s", Anti); it == nil {
		t.Errorf("scalar anti 1->2 missing")
	}
	if it := findItem(es, 0, 2, "s", Output); it == nil {
		t.Errorf("scalar output 0->2 missing")
	}
}

func TestBarrierOrdering(t *testing.T) {
	r := reg2(4, 4)
	stmts := []air.Stmt{
		arrStmt(0, r, "A", air.Ref{Array: "B", Off: off(0, 0)}),
		&air.WritelnStmt{Args: []air.WriteArg{{Str: "hi"}}},
		arrStmt(1, r, "C", air.Ref{Array: "D", Off: off(0, 0)}),
	}
	es := Compute(stmts)
	if findItem(es, 0, 1, "$order", Flow) == nil {
		t.Error("barrier must depend on prior statements")
	}
	if findItem(es, 1, 2, "$order", Flow) == nil {
		t.Error("statements after a barrier must depend on it")
	}
}

func TestCommDependences(t *testing.T) {
	r := reg2(4, 4)
	east := off(0, 1)
	// A := B;  comm A@east;  C := A@east
	stmts := []air.Stmt{
		arrStmt(0, r, "A", air.Ref{Array: "B", Off: off(0, 0)}),
		&air.CommStmt{Array: "A", Off: east, Region: r},
		arrStmt(1, r, "C", air.Ref{Array: "A", Off: east}),
	}
	es := Compute(stmts)
	// comm reads A after its producer: flow 0->1.
	if it := findItem(es, 0, 1, "A", Flow); it == nil {
		t.Error("flow producer->comm missing")
	}
	// consumer reads halo written by comm: flow 1->2 with u = 0.
	if it := findItem(es, 1, 2, "A", Flow); it == nil || !it.U.IsZero() {
		t.Errorf("flow comm->consumer: %v, want null vector", it)
	}
}

func TestReduceDependences(t *testing.T) {
	r := reg2(4, 4)
	stmts := []air.Stmt{
		arrStmt(0, r, "A", air.Ref{Array: "B", Off: off(0, 0)}),
		&air.ReduceStmt{Target: "s", Op: air.ReduceSum, Region: r,
			Body: &air.RefExpr{Ref: air.Ref{Array: "A", Off: off(0, 0)}}},
		&air.ScalarStmt{LHS: "t", RHS: &air.ScalarExpr{Name: "s"}},
	}
	es := Compute(stmts)
	if it := findItem(es, 0, 1, "A", Flow); it == nil {
		t.Error("flow into reduction missing")
	}
	if it := findItem(es, 1, 2, "s", Flow); it == nil {
		t.Error("scalar flow out of reduction missing")
	}
}
