package air

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/sema"
)

func TestOffsetOps(t *testing.T) {
	z := Zero(3)
	if !z.IsZero() || len(z) != 3 {
		t.Errorf("Zero(3) = %v", z)
	}
	o := Offset{1, -2}
	if o.IsZero() {
		t.Error("nonzero offset reported zero")
	}
	c := o.Clone()
	c[0] = 9
	if o[0] != 1 {
		t.Error("Clone aliases its source")
	}
	if !o.Equal(Offset{1, -2}) || o.Equal(Offset{1, 2}) || o.Equal(Offset{1}) {
		t.Error("Equal broken")
	}
	if o.String() != "(1,-2)" {
		t.Errorf("String = %q", o.String())
	}
}

func TestExprWalkAndRefs(t *testing.T) {
	e := &BinExpr{
		Op: OpAdd,
		X:  &RefExpr{Ref: Ref{Array: "A", Off: Offset{0, 1}}},
		Y: &CallExpr{Name: "max", Args: []Expr{
			&RefExpr{Ref: Ref{Array: "B", Off: Offset{0, 0}}},
			&ScalarExpr{Name: "s"},
		}},
	}
	refs := Refs(e)
	if len(refs) != 2 || refs[0].Array != "A" || refs[1].Array != "B" {
		t.Errorf("Refs = %v", refs)
	}
	if sr := ScalarReads(e); len(sr) != 1 || sr[0] != "s" {
		t.Errorf("ScalarReads = %v", sr)
	}
	if !strings.Contains(e.String(), "A@(0,1)") {
		t.Errorf("String = %q", e.String())
	}
}

func TestReduceIdentities(t *testing.T) {
	if ReduceSum.Identity() != 0 || ReduceProd.Identity() != 1 {
		t.Error("sum/prod identities wrong")
	}
	if !math.IsInf(ReduceMax.Identity(), -1) || !math.IsInf(ReduceMin.Identity(), 1) {
		t.Error("max/min identities wrong")
	}
}

func TestArrayInfoHalo(t *testing.T) {
	decl := &sema.Region{Lo: []int{1, 1}, Hi: []int{8, 8}}
	alloc := &sema.Region{Lo: []int{0, 1}, Hi: []int{8, 10}}
	a := &ArrayInfo{Name: "A", Elem: ast.Double, Declared: decl, Alloc: alloc}
	lo, hi := a.Halo()
	if lo[0] != 1 || lo[1] != 0 || hi[0] != 0 || hi[1] != 2 {
		t.Errorf("halo = %v / %v", lo, hi)
	}
}

func TestBlocksTraversal(t *testing.T) {
	b1 := &Block{ID: 1}
	b2 := &Block{ID: 2}
	b3 := &Block{ID: 3}
	nodes := []Node{
		b1,
		&Loop{Var: "i", Body: []Node{b2}},
		&If{Then: []Node{b3}, Else: nil},
	}
	bs := Blocks(nodes)
	if len(bs) != 3 || bs[0].ID != 1 || bs[1].ID != 2 || bs[2].ID != 3 {
		t.Errorf("Blocks = %v", bs)
	}
}

func TestStatementStrings(t *testing.T) {
	r := &sema.Region{Lo: []int{1}, Hi: []int{4}}
	stmts := []Stmt{
		&ArrayStmt{Region: r, LHS: "A", RHS: &ConstExpr{Val: 1}},
		&ScalarStmt{LHS: "s", RHS: &ConstExpr{Val: 2}},
		&ReduceStmt{Target: "s", Op: ReduceSum, Region: r, Body: &ScalarExpr{Name: "x"}},
		&CommStmt{Array: "A", Off: Offset{1}, Region: r, Phase: CommSend},
		&WritelnStmt{Args: []WriteArg{{Str: "hi"}}},
		&CallStmt{Proc: "f"},
		&ReturnStmt{},
	}
	for _, s := range stmts {
		if s.String() == "" {
			t.Errorf("%T has empty String()", s)
		}
	}
}
