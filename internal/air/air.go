// Package air defines the Array IR: the normalized array-statement
// representation of §2.1 of Lewis, Lin & Snyder (PLDI 1998).
//
// A normalized array statement has the form
//
//	[R] A := f(A1@d1, A2@d2, ..., As@ds)
//
// where R is a concrete region, the left-hand side is written at offset
// zero, every array reference is a constant offset from R, all arrays
// share the region's rank, and no array is both read and written.
// Lowering (package lower) establishes these properties, inserting
// compiler temporaries where the source violates them.
//
// Besides normalized statements, blocks may contain unnormalized
// statements — scalar assignments, reductions, communication
// primitives, I/O — which participate in dependence ordering but are
// never fused or contracted ("unnormalized statements do not prevent
// independent normalized statements from being optimized").
package air

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/source"
)

// Offset is a constant offset vector: the d of A@d.
type Offset []int

// IsZero reports whether every component is zero.
func (o Offset) IsZero() bool {
	for _, v := range o {
		if v != 0 {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (o Offset) Equal(p Offset) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of o.
func (o Offset) Clone() Offset {
	c := make(Offset, len(o))
	copy(c, o)
	return c
}

func (o Offset) String() string {
	parts := make([]string, len(o))
	for i, v := range o {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Zero returns the null offset vector of the given rank.
func Zero(rank int) Offset { return make(Offset, rank) }

// Ref is a single array reference at a constant offset.
type Ref struct {
	Array string
	Off   Offset
}

func (r Ref) String() string {
	if r.Off.IsZero() {
		return r.Array
	}
	return r.Array + "@" + r.Off.String()
}

// ---------------------------------------------------------------------------
// Element-wise expressions

// Op enumerates the element-wise and scalar operators.
type Op int

// Operator kinds.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpPow
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNeg
	OpNot
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%", OpPow: "^",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&", OpOr: "|", OpNeg: "-", OpNot: "!",
}

func (o Op) String() string { return opNames[o] }

// Expr is an element-wise (or, without RefExprs, scalar) expression.
type Expr interface {
	exprNode()
	String() string
}

// RefExpr reads an array element at a constant offset from the
// statement's current index.
type RefExpr struct {
	Ref Ref
}

// ScalarExpr reads a scalar variable (broadcast in array context).
type ScalarExpr struct {
	Name string
}

// IndexExpr evaluates to the current iteration index along dimension
// Dim (1-based) — ZPL's Index1..Index4 virtual arrays. It consumes no
// memory and induces no dependences.
type IndexExpr struct {
	Dim int
}

// ConstExpr is a numeric or boolean constant (booleans are 0/1).
type ConstExpr struct {
	Val float64
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   Op
	X, Y Expr
}

// UnExpr applies a unary operator.
type UnExpr struct {
	Op Op
	X  Expr
}

// CallExpr applies a builtin math function element-wise.
type CallExpr struct {
	Name string
	Args []Expr
}

func (*RefExpr) exprNode()    {}
func (*ScalarExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*ConstExpr) exprNode()  {}
func (*BinExpr) exprNode()    {}
func (*UnExpr) exprNode()     {}
func (*CallExpr) exprNode()   {}

func (e *RefExpr) String() string    { return e.Ref.String() }
func (e *ScalarExpr) String() string { return e.Name }
func (e *IndexExpr) String() string  { return fmt.Sprintf("index%d", e.Dim) }
func (e *ConstExpr) String() string {
	if e.Val == float64(int64(e.Val)) && e.Val < 1e15 && e.Val > -1e15 {
		return fmt.Sprintf("%.1f", e.Val)
	}
	return fmt.Sprintf("%g", e.Val)
}
func (e *BinExpr) String() string {
	return "(" + e.X.String() + " " + e.Op.String() + " " + e.Y.String() + ")"
}
func (e *UnExpr) String() string { return e.Op.String() + e.X.String() }
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// Walk visits e and its subexpressions in pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnExpr:
		Walk(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}

// Refs returns every array reference in e, in visit order.
func Refs(e Expr) []Ref {
	var refs []Ref
	Walk(e, func(x Expr) {
		if r, ok := x.(*RefExpr); ok {
			refs = append(refs, r.Ref)
		}
	})
	return refs
}

// ScalarReads returns the names of scalar variables read by e.
func ScalarReads(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	Walk(e, func(x Expr) {
		if s, ok := x.(*ScalarExpr); ok && !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	})
	return names
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement within a straight-line block.
type Stmt interface {
	stmtNode()
	String() string
}

// ArrayStmt is a normalized array statement: [R] LHS := RHS.
type ArrayStmt struct {
	ID     int // unique within the program, assigned by lowering
	Region *sema.Region
	LHS    string
	RHS    Expr
	Pos    source.Pos // source position of the originating statement
}

// Reads returns the array references on the right-hand side.
func (s *ArrayStmt) Reads() []Ref { return Refs(s.RHS) }

func (s *ArrayStmt) String() string {
	return fmt.Sprintf("%s %s := %s;", s.Region, s.LHS, s.RHS)
}

// ScalarStmt assigns a scalar expression (no RefExprs) to a scalar.
type ScalarStmt struct {
	LHS string
	RHS Expr
	Pos source.Pos
}

func (s *ScalarStmt) String() string { return s.LHS + " := " + s.RHS.String() + ";" }

// ReduceOp enumerates reduction operators.
type ReduceOp int

// Reduction operator kinds.
const (
	ReduceSum ReduceOp = iota
	ReduceProd
	ReduceMax
	ReduceMin
)

func (r ReduceOp) String() string {
	switch r {
	case ReduceSum:
		return "+<<"
	case ReduceProd:
		return "*<<"
	case ReduceMax:
		return "max<<"
	case ReduceMin:
		return "min<<"
	}
	return "?<<"
}

// Identity returns the reduction's identity element.
func (r ReduceOp) Identity() float64 {
	switch r {
	case ReduceSum:
		return 0
	case ReduceProd:
		return 1
	case ReduceMax:
		return math.Inf(-1)
	case ReduceMin:
		return math.Inf(1)
	}
	return 0
}

// ReduceStmt reduces an element-wise expression over a region into a
// scalar. Reductions are unnormalized: they order but never fuse.
type ReduceStmt struct {
	Target string
	Op     ReduceOp
	Region *sema.Region
	Body   Expr
	Pos    source.Pos
}

func (s *ReduceStmt) String() string {
	return fmt.Sprintf("%s := %s %s %s;", s.Target, s.Op, s.Region, s.Body)
}

// PartialReduceStmt reduces an element-wise expression along the
// dimensions that the destination region collapses (extent 1),
// producing an array — ZPL's partial reduction. Like full reductions
// and communication, it is unnormalized: it participates in ordering
// but never joins a fusible cluster.
type PartialReduceStmt struct {
	LHS    string
	Dest   *sema.Region // destination region; collapsed dims have extent 1
	Op     ReduceOp
	Region *sema.Region // source iteration region
	Body   Expr
	Pos    source.Pos
}

func (s *PartialReduceStmt) String() string {
	return fmt.Sprintf("%s %s := %s %s %s;", s.Dest, s.LHS, s.Op, s.Region, s.Body)
}

// CommStmt is a compiler-generated communication primitive: it makes
// the halo elements of Array needed by a read at Offset available
// (ghost-cell exchange with the neighbor in that direction). Comm
// statements are unnormalized and are never fusion or contraction
// candidates (§2.1).
type CommStmt struct {
	Array  string
	Off    Offset
	Region *sema.Region // region of the consuming statement
	// Phase distinguishes the two halves created by pipelining.
	Phase CommPhase
	// MsgID pairs a pipelined send with its receive.
	MsgID int
	// Piggyback marks a message combined onto its predecessor: it
	// pays bandwidth but not startup cost.
	Piggyback bool
	// Pos is the source position of the consuming statement.
	Pos source.Pos
}

// CommPhase identifies whole or split (pipelined) communications.
type CommPhase int

// Communication phases.
const (
	CommWhole CommPhase = iota // send+recv as one primitive
	CommSend                   // pipelined send half
	CommRecv                   // pipelined receive half
)

func (p CommPhase) String() string {
	switch p {
	case CommSend:
		return "send"
	case CommRecv:
		return "recv"
	}
	return "comm"
}

func (s *CommStmt) String() string {
	return fmt.Sprintf("%s %s@%s over %s;", s.Phase, s.Array, s.Off, s.Region)
}

// WritelnStmt prints scalar values and string literals.
type WritelnStmt struct {
	Args []WriteArg
	Pos  source.Pos
}

// WriteArg is one writeln argument: a literal string or a scalar expr.
type WriteArg struct {
	Str  string
	Expr Expr // nil when Str is used
}

func (s *WritelnStmt) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		if a.Expr != nil {
			parts[i] = a.Expr.String()
		} else {
			parts[i] = fmt.Sprintf("%q", a.Str)
		}
	}
	return "writeln(" + strings.Join(parts, ", ") + ");"
}

// ProcEffects summarizes a procedure's transitive side effects on
// global state, computed by lowering over the (acyclic) call graph.
// With a summary attached, dependence analysis treats a call as
// touching exactly these names instead of as a full ordering barrier.
type ProcEffects struct {
	ArraysRead     []string
	ArraysWritten  []string
	ScalarsRead    []string
	ScalarsWritten []string
	IO             bool // callee performs writeln (stays a barrier)
}

// CallStmt invokes a procedure for effect; the optional Target
// receives the scalar result (function call in scalar assignment).
type CallStmt struct {
	Target string // "" when no result is stored
	Proc   string
	Args   []Expr // scalar expressions
	// Effects is the callee's transitive side-effect summary; nil
	// means unknown (the call acts as a full barrier).
	Effects *ProcEffects
	Pos     source.Pos
}

func (s *CallStmt) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	call := s.Proc + "(" + strings.Join(args, ", ") + ");"
	if s.Target != "" {
		return s.Target + " := " + call
	}
	return call
}

// ReturnStmt returns from the enclosing procedure.
type ReturnStmt struct {
	Value Expr // nil for plain return
	Pos   source.Pos
}

func (s *ReturnStmt) String() string {
	if s.Value == nil {
		return "return;"
	}
	return "return " + s.Value.String() + ";"
}

func (*ArrayStmt) stmtNode()         {}
func (*ScalarStmt) stmtNode()        {}
func (*ReduceStmt) stmtNode()        {}
func (*PartialReduceStmt) stmtNode() {}
func (*CommStmt) stmtNode()          {}
func (*WritelnStmt) stmtNode()       {}
func (*CallStmt) stmtNode()          {}
func (*ReturnStmt) stmtNode()        {}

// PosOf returns the source position recorded on a statement by
// lowering, or the zero Pos for statements that never had one.
func PosOf(s Stmt) source.Pos {
	switch x := s.(type) {
	case *ArrayStmt:
		return x.Pos
	case *ScalarStmt:
		return x.Pos
	case *ReduceStmt:
		return x.Pos
	case *PartialReduceStmt:
		return x.Pos
	case *CommStmt:
		return x.Pos
	case *WritelnStmt:
		return x.Pos
	case *CallStmt:
		return x.Pos
	case *ReturnStmt:
		return x.Pos
	}
	return source.Pos{}
}

// ---------------------------------------------------------------------------
// Control structure

// Node is either a straight-line Block or a control construct.
type Node interface {
	nodeKind()
}

// Block is a maximal straight-line sequence of statements — the unit
// over which the ASDG is built and fusion runs.
type Block struct {
	ID    int
	Stmts []Stmt
}

// Loop is a scalar counted loop.
type Loop struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Down bool
	Body []Node
}

// While is a scalar while loop.
type While struct {
	Cond Expr
	Body []Node
}

// If is scalar control flow.
type If struct {
	Cond Expr
	Then []Node
	Else []Node
}

func (*Block) nodeKind() {}
func (*Loop) nodeKind()  {}
func (*While) nodeKind() {}
func (*If) nodeKind()    {}

// ---------------------------------------------------------------------------
// Program

// ArrayInfo describes one array variable after lowering.
type ArrayInfo struct {
	Name     string // mangled: globals bare, locals "proc.name", temps "_tN"
	Elem     ast.TypeKind
	Declared *sema.Region // declared (logical) region
	Alloc    *sema.Region // allocation bounds including halo
	Temp     bool         // compiler-introduced temporary
	// Escapes marks an array whose final value is observable after the
	// program ends — a programmatic caller (the lazy runtime) holds a
	// handle to it and will read the storage back. Liveness must treat
	// such an array as live at exit, so it is never a contraction
	// candidate regardless of how its in-program references look.
	// Source-text programs never set it.
	Escapes bool
	// Contracted is set by the fusion phase when the array was
	// eliminated; scalarization then never allocates it.
	Contracted bool
}

// Halo returns the per-dimension lo/hi halo widths implied by the
// difference between Alloc and Declared.
func (a *ArrayInfo) Halo() (lo, hi []int) {
	lo = make([]int, a.Declared.Rank())
	hi = make([]int, a.Declared.Rank())
	for i := range lo {
		lo[i] = a.Declared.Lo[i] - a.Alloc.Lo[i]
		hi[i] = a.Alloc.Hi[i] - a.Declared.Hi[i]
	}
	return lo, hi
}

// ScalarInfo describes one scalar variable after lowering.
type ScalarInfo struct {
	Name   string
	Type   ast.TypeKind
	Config bool
	Init   float64 // config value when Config
}

// Proc is a lowered procedure.
type Proc struct {
	Name      string
	Params    []string // mangled scalar names in order
	HasResult bool
	Body      []Node
}

// Program is a fully lowered ZA program.
type Program struct {
	Name    string
	Arrays  map[string]*ArrayInfo
	Scalars map[string]*ScalarInfo
	Procs   map[string]*Proc
	Main    *Proc

	// NumStmts is the number of ArrayStmt IDs handed out; IDs are
	// dense in [0, NumStmts).
	NumStmts int
}

// Array returns the ArrayInfo for name, or nil.
func (p *Program) Array(name string) *ArrayInfo { return p.Arrays[name] }

// Blocks returns every Block in the procedure body tree, in program order.
func Blocks(nodes []Node) []*Block {
	var out []*Block
	var walk func(ns []Node)
	walk = func(ns []Node) {
		for _, n := range ns {
			switch x := n.(type) {
			case *Block:
				out = append(out, x)
			case *Loop:
				walk(x.Body)
			case *While:
				walk(x.Body)
			case *If:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(nodes)
	return out
}

// AllBlocks returns every block in every procedure of the program.
func (p *Program) AllBlocks() []*Block {
	var out []*Block
	for _, pr := range sortedProcs(p) {
		out = append(out, Blocks(pr.Body)...)
	}
	return out
}

func sortedProcs(p *Program) []*Proc {
	// main first, then others by name for determinism.
	var out []*Proc
	if p.Main != nil {
		out = append(out, p.Main)
	}
	names := make([]string, 0, len(p.Procs))
	for n := range p.Procs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		if pr := p.Procs[n]; pr != p.Main {
			out = append(out, pr)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
