package air

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the lowered program as readable text: declarations,
// then each procedure's body with blocks labeled. The format is stable
// and used by golden tests and `zplc -emit=air`.
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)

	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.Arrays[n]
		tag := ""
		if a.Temp {
			tag = " (compiler temp)"
		}
		if a.Contracted {
			tag += " (contracted)"
		}
		fmt.Fprintf(&b, "array %s : %s %s alloc %s%s\n", a.Name, a.Declared, a.Elem, a.Alloc, tag)
	}
	names = names[:0]
	for n := range p.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := p.Scalars[n]
		if s.Config {
			fmt.Fprintf(&b, "config %s : %s = %g\n", s.Name, s.Type, s.Init)
		} else {
			fmt.Fprintf(&b, "scalar %s : %s\n", s.Name, s.Type)
		}
	}

	for _, pr := range sortedProcs(p) {
		fmt.Fprintf(&b, "proc %s(%s)\n", pr.Name, strings.Join(pr.Params, ", "))
		printNodes(&b, pr.Body, 1)
	}
	return b.String()
}

func printNodes(b *strings.Builder, nodes []Node, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, n := range nodes {
		switch x := n.(type) {
		case *Block:
			fmt.Fprintf(b, "%sblock %d {\n", ind, x.ID)
			for _, s := range x.Stmts {
				if as, ok := s.(*ArrayStmt); ok {
					fmt.Fprintf(b, "%s  S%d: %s\n", ind, as.ID, as)
				} else {
					fmt.Fprintf(b, "%s  %s\n", ind, s)
				}
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *Loop:
			dir := "to"
			if x.Down {
				dir = "downto"
			}
			fmt.Fprintf(b, "%sfor %s := %s %s %s {\n", ind, x.Var, x.Lo, dir, x.Hi)
			printNodes(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile %s {\n", ind, x.Cond)
			printNodes(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *If:
			fmt.Fprintf(b, "%sif %s {\n", ind, x.Cond)
			printNodes(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printNodes(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		}
	}
}
