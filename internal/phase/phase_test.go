package phase

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0 (<= 1µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (<= 4µs)
	h.Observe(time.Hour)             // overflow bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[2] != 1 || s.Buckets[NumBuckets-1] != 1 {
		t.Errorf("bucket spread wrong: %v", s.Buckets)
	}
	if s.Max != time.Hour {
		t.Errorf("max = %v", s.Max)
	}
	if q := s.Quantile(0.5); q > 4*time.Microsecond {
		t.Errorf("p50 = %v, want <= 4µs", q)
	}
	if q := s.Quantile(1.0); q != time.Hour {
		t.Errorf("p100 = %v, want max", q)
	}
}

func TestStartEndPairs(t *testing.T) {
	c := NewCollector()
	start, end := c.StartEnd()
	start("parse")
	end("parse")
	end("never-started") // must be a no-op, not a corrupt observation
	s := c.Hist("parse").Snapshot()
	if s.Count != 1 {
		t.Fatalf("parse count = %d, want 1", s.Count)
	}
	if c.Hist("never-started").Snapshot().Count != 0 {
		t.Error("unmatched end recorded an observation")
	}
}

// TestCollectorConcurrent exercises many compilations' worth of hook
// pairs feeding one collector; run with -race.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start, end := c.StartEnd()
			for j := 0; j < 100; j++ {
				start("sema")
				end("sema")
			}
		}()
	}
	wg.Wait()
	if n := c.Hist("sema").Snapshot().Count; n != 3200 {
		t.Errorf("count = %d, want 3200", n)
	}
	if names := c.Names(); len(names) != 1 || names[0] != "sema" {
		t.Errorf("names = %v", names)
	}
}
