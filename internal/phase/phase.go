// Package phase accumulates per-phase latency distributions for the
// compilation pipeline. It is the shared observability substrate of
// the zpld service metrics and the experiment harness: both hand a
// pair of (PhaseStart, PhaseEnd) callbacks to driver.Options.Hooks and
// read the aggregated histograms back out.
//
// A Collector is safe for concurrent use; the callback pair returned
// by StartEnd is not (each concurrent compilation gets its own pair,
// which is how the driver's per-request hooks work).
package phase

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// NumBuckets is the number of exponential histogram buckets. Bucket i
// counts observations d with d <= Boundary(i); the last bucket is the
// overflow (+Inf) bucket.
const NumBuckets = 26

// Boundary returns the inclusive upper bound of bucket i: 1µs, 2µs,
// 4µs, ... doubling up to ~33s. Boundary(NumBuckets-1) is the +Inf
// overflow bucket.
func Boundary(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(1<<62 - 1)
	}
	return time.Microsecond << uint(i)
}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [NumBuckets]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < NumBuckets-1 && d > Boundary(i) {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[i]++
	h.mu.Unlock()
}

// Snapshot is a consistent copy of a histogram's state.
type Snapshot struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	Buckets [NumBuckets]int64 // per-bucket counts (not cumulative)
}

// Snapshot copies the histogram under its lock.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{Count: h.count, Sum: h.sum, Max: h.max, Buckets: h.buckets}
}

// Mean returns the average observed duration.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1)
// derived from the bucket boundaries.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	want := int64(q * float64(s.Count))
	if want < 1 {
		want = 1
	}
	var seen int64
	for i := 0; i < NumBuckets; i++ {
		seen += s.Buckets[i]
		if seen >= want {
			if i == NumBuckets-1 {
				return s.Max
			}
			return Boundary(i)
		}
	}
	return s.Max
}

// Collector aggregates named histograms; names are created on demand.
type Collector struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{hists: map[string]*Histogram{}}
}

// Hist returns the histogram for name, creating it if needed.
func (c *Collector) Hist(name string) *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hists[name]
	if !ok {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// Observe records one duration under name.
func (c *Collector) Observe(name string, d time.Duration) {
	c.Hist(name).Observe(d)
}

// Names returns the recorded phase names, sorted.
func (c *Collector) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.hists))
	for n := range c.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StartEnd returns a (PhaseStart, PhaseEnd) callback pair that times
// phases into the collector. The pair carries the open-phase state of
// one sequential compilation, so each concurrent compilation must call
// StartEnd for its own pair; the collector they feed is shared and
// concurrency-safe.
func (c *Collector) StartEnd() (start, end func(name string)) {
	open := map[string]time.Time{}
	start = func(name string) { open[name] = time.Now() }
	end = func(name string) {
		if t0, ok := open[name]; ok {
			delete(open, name)
			c.Observe(name, time.Since(t0))
		}
	}
	return start, end
}

// Format renders the collector as an aligned table, one row per phase.
func (c *Collector) Format() string {
	names := c.Names()
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
	for _, n := range names {
		s := c.Hist(n).Snapshot()
		fmt.Fprintf(&b, "%-14s %10d %12s %12s %12s\n",
			n, s.Count, round(s.Sum), round(s.Mean()), round(s.Max))
	}
	return b.String()
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
