// Package liveness determines which arrays are contraction candidates:
// arrays whose entire live range is confined to a single straight-line
// block, so that replacing them with a per-iteration scalar cannot be
// observed anywhere else (§3, Definition 6's implicit liveness
// requirement, and the §4.1 footnote about live ranges).
package liveness

import (
	"repro/internal/air"
)

// blockRef counts how a block touches an array.
type blockRef struct {
	block  *air.Block
	reads  int
	writes int
}

// Candidates returns, for each block, the arrays eligible for
// contraction in that block. An array qualifies when
//
//  1. every reference to it in the whole program occurs in that block,
//  2. its first access in the block is a write, and
//  3. every read in the block is covered by an earlier write in the
//     same block (the value never flows in from a previous execution
//     of the block, e.g. a prior loop iteration).
//
// Communication statements count as references, so distributed arrays
// with ghost regions are automatically excluded.
func Candidates(prog *air.Program) map[*air.Block][]string {
	refs := map[string][]blockRef{}
	note := func(b *air.Block, name string, isWrite bool) {
		lst := refs[name]
		if len(lst) == 0 || lst[len(lst)-1].block != b {
			lst = append(lst, blockRef{block: b})
		}
		if isWrite {
			lst[len(lst)-1].writes++
		} else {
			lst[len(lst)-1].reads++
		}
		refs[name] = lst
	}

	blocks := prog.AllBlocks()
	for _, b := range blocks {
		for _, s := range b.Stmts {
			switch x := s.(type) {
			case *air.ArrayStmt:
				note(b, x.LHS, true)
				for _, r := range x.Reads() {
					note(b, r.Array, false)
				}
			case *air.ReduceStmt:
				for _, r := range air.Refs(x.Body) {
					note(b, r.Array, false)
				}
			case *air.PartialReduceStmt:
				note(b, x.LHS, true)
				for _, r := range air.Refs(x.Body) {
					note(b, r.Array, false)
				}
			case *air.CommStmt:
				note(b, x.Array, false)
				note(b, x.Array, true)
			}
		}
	}

	out := map[*air.Block][]string{}
	for name, lst := range refs {
		if len(lst) != 1 {
			continue // referenced in several blocks (or none)
		}
		b := lst[0].block
		if confined(b, name) {
			out[b] = append(out[b], name)
		}
	}
	for _, names := range out {
		sortStrings(names)
	}
	return out
}

// confined checks conditions 2 and 3 within the block: first access is
// a write and every read is covered by an earlier write.
func confined(b *air.Block, name string) bool {
	type wrect struct{ lo, hi []int }
	var writes []wrect

	covered := func(lo, hi []int) bool {
	next:
		for _, w := range writes {
			if len(w.lo) != len(lo) {
				continue
			}
			for i := range lo {
				if w.lo[i] > lo[i] || w.hi[i] < hi[i] {
					continue next
				}
			}
			return true
		}
		return false
	}

	shifted := func(lo, hi []int, off air.Offset) ([]int, []int) {
		l := make([]int, len(lo))
		h := make([]int, len(hi))
		for i := range lo {
			d := 0
			if off != nil {
				d = off[i]
			}
			l[i] = lo[i] + d
			h[i] = hi[i] + d
		}
		return l, h
	}

	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *air.ArrayStmt:
			for _, r := range x.Reads() {
				if r.Array != name {
					continue
				}
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, r.Off)
				if !covered(lo, hi) {
					return false
				}
			}
			if x.LHS == name {
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, nil)
				writes = append(writes, wrect{lo, hi})
			}
		case *air.ReduceStmt:
			for _, r := range air.Refs(x.Body) {
				if r.Array != name {
					continue
				}
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, r.Off)
				if !covered(lo, hi) {
					return false
				}
			}
		case *air.PartialReduceStmt:
			// The partial reduction's own writes and reads are never
			// contraction-relevant (it is unnormalized and cannot join
			// a cluster), but its reads still require coverage.
			for _, r := range air.Refs(x.Body) {
				if r.Array != name {
					continue
				}
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, r.Off)
				if !covered(lo, hi) {
					return false
				}
			}
			if x.LHS == name {
				lo, hi := shifted(x.Dest.Lo, x.Dest.Hi, nil)
				writes = append(writes, wrect{lo, hi})
			}
		case *air.CommStmt:
			if x.Array == name {
				// Communication implies distribution halos; such an
				// array is never contraction-eligible.
				return false
			}
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
