// Package liveness determines which arrays are contraction candidates:
// arrays whose entire live range is confined to a single straight-line
// block, so that replacing them with a per-iteration scalar cannot be
// observed anywhere else (§3, Definition 6's implicit liveness
// requirement, and the §4.1 footnote about live ranges).
package liveness

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/source"
)

// Verdict reasons for arrays whose live range forbids contraction.
const (
	// ReasonMultiBlock: the array is referenced in more than one
	// straight-line block, so its value is live across block
	// boundaries.
	ReasonMultiBlock = "multi-block"
	// ReasonUncoveredRead: a read is not covered by an earlier write
	// in the same block — the value flows in from outside (a prior
	// execution of the block, or the array's initial contents).
	ReasonUncoveredRead = "uncovered-read"
	// ReasonCommunicated: the array is the subject of a communication
	// statement; distributed halo state forbids contraction.
	ReasonCommunicated = "communicated"
	// ReasonEscapes: the array is marked as escaping (a programmatic
	// caller holds a handle and reads the storage after the program
	// ends), so it is live at exit no matter how it is referenced.
	ReasonEscapes = "escapes"
)

// Verdict explains one array's candidacy decision.
type Verdict struct {
	Array string
	// Block is the hosting block; for ReasonMultiBlock it is the first
	// referencing block (so per-block reporting still has exactly one
	// home for the verdict).
	Block     *air.Block
	Candidate bool
	Reason    string     // empty when Candidate
	Pos       source.Pos // witness: the offending read/comm statement
	Off       air.Offset // the offending read's offset, when relevant
	Detail    string
	// Offending counts the uncovered reads; when it is exactly 1 the
	// array would contract but for that single reference (fix-it).
	Offending int
}

// blockRef counts how a block touches an array.
type blockRef struct {
	block    *air.Block
	reads    int
	writes   int
	firstPos source.Pos
}

// Candidates returns, for each block, the arrays eligible for
// contraction in that block. An array qualifies when
//
//  1. every reference to it in the whole program occurs in that block,
//  2. its first access in the block is a write, and
//  3. every read in the block is covered by an earlier write in the
//     same block (the value never flows in from a previous execution
//     of the block, e.g. a prior loop iteration).
//
// Communication statements count as references, so distributed arrays
// with ghost regions are automatically excluded.
func Candidates(prog *air.Program) map[*air.Block][]string {
	cands, _ := Explain(prog)
	return cands
}

// Explain computes Candidates and additionally returns a verdict for
// every referenced array, including the ineligible ones, so callers
// can report why an array is not a contraction candidate.
func Explain(prog *air.Program) (map[*air.Block][]string, []Verdict) {
	refs := map[string][]blockRef{}
	var order []string
	note := func(b *air.Block, name string, isWrite bool, pos source.Pos) {
		lst := refs[name]
		if lst == nil {
			order = append(order, name)
		}
		if len(lst) == 0 || lst[len(lst)-1].block != b {
			lst = append(lst, blockRef{block: b, firstPos: pos})
		}
		if isWrite {
			lst[len(lst)-1].writes++
		} else {
			lst[len(lst)-1].reads++
		}
		refs[name] = lst
	}

	blocks := prog.AllBlocks()
	for _, b := range blocks {
		for _, s := range b.Stmts {
			pos := air.PosOf(s)
			switch x := s.(type) {
			case *air.ArrayStmt:
				note(b, x.LHS, true, pos)
				for _, r := range x.Reads() {
					note(b, r.Array, false, pos)
				}
			case *air.ReduceStmt:
				for _, r := range air.Refs(x.Body) {
					note(b, r.Array, false, pos)
				}
			case *air.PartialReduceStmt:
				note(b, x.LHS, true, pos)
				for _, r := range air.Refs(x.Body) {
					note(b, r.Array, false, pos)
				}
			case *air.CommStmt:
				note(b, x.Array, false, pos)
				note(b, x.Array, true, pos)
			}
		}
	}

	out := map[*air.Block][]string{}
	var verdicts []Verdict
	for _, name := range order {
		lst := refs[name]
		if a := prog.Arrays[name]; a != nil && a.Escapes {
			verdicts = append(verdicts, Verdict{Array: name, Reason: ReasonEscapes,
				Block:  lst[0].block,
				Pos:    lst[0].firstPos,
				Detail: "final value observable through a runtime handle"})
			continue
		}
		if len(lst) != 1 {
			// Referenced in several blocks: live across boundaries.
			v := Verdict{Array: name, Reason: ReasonMultiBlock,
				Block:  lst[0].block,
				Pos:    lst[0].firstPos,
				Detail: fmt.Sprintf("referenced in %d blocks", len(lst))}
			if len(lst) > 1 {
				v.Detail += fmt.Sprintf("; also at %s", lst[1].firstPos)
			}
			verdicts = append(verdicts, v)
			continue
		}
		b := lst[0].block
		v := confined(b, name)
		v.Array = name
		v.Block = b
		if v.Candidate {
			out[b] = append(out[b], name)
		}
		verdicts = append(verdicts, v)
	}
	for _, names := range out {
		sortStrings(names)
	}
	return out, verdicts
}

// confined checks conditions 2 and 3 within the block — first access
// is a write and every read is covered by an earlier write — and
// reports the evidence: the first offending reference and how many
// reads fail coverage in total.
func confined(b *air.Block, name string) Verdict {
	type wrect struct{ lo, hi []int }
	var writes []wrect
	v := Verdict{Candidate: true}

	covered := func(lo, hi []int) bool {
	next:
		for _, w := range writes {
			if len(w.lo) != len(lo) {
				continue
			}
			for i := range lo {
				if w.lo[i] > lo[i] || w.hi[i] < hi[i] {
					continue next
				}
			}
			return true
		}
		return false
	}

	shifted := func(lo, hi []int, off air.Offset) ([]int, []int) {
		l := make([]int, len(lo))
		h := make([]int, len(hi))
		for i := range lo {
			d := 0
			if off != nil {
				d = off[i]
			}
			l[i] = lo[i] + d
			h[i] = hi[i] + d
		}
		return l, h
	}

	// fail records one uncovered read; the first one becomes the
	// verdict's witness.
	fail := func(pos source.Pos, off air.Offset, lo, hi []int) {
		v.Offending++
		if v.Candidate {
			v.Candidate = false
			v.Reason = ReasonUncoveredRead
			v.Pos = pos
			v.Off = off.Clone()
			v.Detail = fmt.Sprintf("read of %s over %v..%v not covered by an earlier write", name, lo, hi)
		}
	}

	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *air.ArrayStmt:
			for _, r := range x.Reads() {
				if r.Array != name {
					continue
				}
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, r.Off)
				if !covered(lo, hi) {
					fail(x.Pos, r.Off, lo, hi)
				}
			}
			if x.LHS == name {
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, nil)
				writes = append(writes, wrect{lo, hi})
			}
		case *air.ReduceStmt:
			for _, r := range air.Refs(x.Body) {
				if r.Array != name {
					continue
				}
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, r.Off)
				if !covered(lo, hi) {
					fail(x.Pos, r.Off, lo, hi)
				}
			}
		case *air.PartialReduceStmt:
			// The partial reduction's own writes and reads are never
			// contraction-relevant (it is unnormalized and cannot join
			// a cluster), but its reads still require coverage.
			for _, r := range air.Refs(x.Body) {
				if r.Array != name {
					continue
				}
				lo, hi := shifted(x.Region.Lo, x.Region.Hi, r.Off)
				if !covered(lo, hi) {
					fail(x.Pos, r.Off, lo, hi)
				}
			}
			if x.LHS == name {
				lo, hi := shifted(x.Dest.Lo, x.Dest.Hi, nil)
				writes = append(writes, wrect{lo, hi})
			}
		case *air.CommStmt:
			if x.Array == name {
				// Communication implies distribution halos; such an
				// array is never contraction-eligible. This outranks
				// any read-coverage evidence.
				return Verdict{Reason: ReasonCommunicated, Pos: x.Pos,
					Detail: "array is the subject of a communication statement"}
			}
		}
	}
	return v
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
