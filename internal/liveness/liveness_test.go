package liveness

import (
	"testing"

	"repro/internal/air"
	"repro/internal/sema"
)

func reg2(n int) *sema.Region {
	return &sema.Region{Lo: []int{1, 1}, Hi: []int{n, n}}
}

func sub2(lo, hi int) *sema.Region {
	return &sema.Region{Lo: []int{lo, lo}, Hi: []int{hi, hi}}
}

func arrStmt(r *sema.Region, lhs string, reads ...air.Ref) *air.ArrayStmt {
	var rhs air.Expr
	for _, rd := range reads {
		ref := &air.RefExpr{Ref: rd}
		if rhs == nil {
			rhs = ref
		} else {
			rhs = &air.BinExpr{Op: air.OpAdd, X: rhs, Y: ref}
		}
	}
	if rhs == nil {
		rhs = &air.ConstExpr{Val: 1}
	}
	return &air.ArrayStmt{Region: r, LHS: lhs, RHS: rhs}
}

func ref(a string, vs ...int) air.Ref { return air.Ref{Array: a, Off: air.Offset(vs)} }

func progOf(blocks ...*air.Block) *air.Program {
	var nodes []air.Node
	for _, b := range blocks {
		nodes = append(nodes, b)
	}
	p := &air.Program{
		Name:    "t",
		Arrays:  map[string]*air.ArrayInfo{},
		Scalars: map[string]*air.ScalarInfo{},
		Procs:   map[string]*air.Proc{},
	}
	p.Procs["main"] = &air.Proc{Name: "main", Body: nodes}
	p.Main = p.Procs["main"]
	return p
}

func has(c map[*air.Block][]string, b *air.Block, name string) bool {
	for _, n := range c[b] {
		if n == name {
			return true
		}
	}
	return false
}

func TestConfinedTempIsCandidate(t *testing.T) {
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "B", ref("T", 0, 0)),
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("confined temporary not a candidate")
	}
	if has(c, b, "A") {
		t.Error("never-written input array is a candidate")
	}
}

func TestCrossBlockArrayExcluded(t *testing.T) {
	r := reg2(8)
	b1 := &air.Block{ID: 0, Stmts: []air.Stmt{arrStmt(r, "X", ref("A", 0, 0))}}
	b2 := &air.Block{ID: 1, Stmts: []air.Stmt{arrStmt(r, "B", ref("X", 0, 0))}}
	c := Candidates(progOf(b1, b2))
	if has(c, b1, "X") || has(c, b2, "X") {
		t.Error("cross-block array is a candidate")
	}
}

func TestReadBeforeWriteExcluded(t *testing.T) {
	// Loop-carried pattern: X read first, written later in the block.
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "Y", ref("X", 0, 0)),
		arrStmt(r, "X", ref("Y", 0, 0)),
	}}
	c := Candidates(progOf(b))
	if has(c, b, "X") {
		t.Error("read-before-write array is a candidate")
	}
	if !has(c, b, "Y") {
		t.Error("write-then-read array Y should be a candidate")
	}
}

func TestUncoveredOffsetReadExcluded(t *testing.T) {
	// T written over [2..7] but read shifted beyond the write.
	inner := sub2(2, 7)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(inner, "T", ref("A", 0, 0)),
		arrStmt(inner, "B", ref("T", 1, 0)), // touches row 8: uncovered
	}}
	c := Candidates(progOf(b))
	if has(c, b, "T") {
		t.Error("array with uncovered offset read is a candidate")
	}
}

func TestCoveredOffsetReadAllowed(t *testing.T) {
	// T written over the full region, read at an offset that stays
	// within the written rectangle.
	full := reg2(8)
	inner := sub2(2, 7)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(full, "T", ref("A", 0, 0)),
		arrStmt(inner, "B", ref("T", 1, 0)),
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("fully covered array should be a candidate")
	}
}

func TestCommExcludesArray(t *testing.T) {
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "X", ref("A", 0, 0)),
		&air.CommStmt{Array: "X", Off: air.Offset{0, 1}, Region: r},
		arrStmt(r, "B", ref("X", 0, 1)),
	}}
	c := Candidates(progOf(b))
	if has(c, b, "X") {
		t.Error("communicated array is a candidate")
	}
}

func TestReduceReadCounts(t *testing.T) {
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		&air.ReduceStmt{Target: "s", Op: air.ReduceSum, Region: r,
			Body: &air.RefExpr{Ref: ref("T", 0, 0)}},
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("array consumed by an intra-block reduction should be a candidate")
	}
}

func TestLoopBodyBlockIsOwnScope(t *testing.T) {
	// The same block appearing inside a loop: candidates are computed
	// per block, and write-before-read arrays remain candidates even
	// though the block re-executes.
	r := reg2(8)
	body := &air.Block{ID: 1, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "B", ref("T", 0, 0)),
	}}
	p := &air.Program{
		Name:    "t",
		Arrays:  map[string]*air.ArrayInfo{},
		Scalars: map[string]*air.ScalarInfo{},
		Procs:   map[string]*air.Proc{},
	}
	loop := &air.Loop{Var: "i", Lo: &air.ConstExpr{Val: 1}, Hi: &air.ConstExpr{Val: 3},
		Body: []air.Node{body}}
	p.Procs["main"] = &air.Proc{Name: "main", Body: []air.Node{loop}}
	p.Main = p.Procs["main"]
	c := Candidates(p)
	if !has(c, body, "T") {
		t.Error("loop-body temporary not a candidate")
	}
}

func TestWriteOnlyTempIsCandidate(t *testing.T) {
	// A write-only array trivially satisfies confinement: the first
	// access is a write and there are no reads to cover.
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("write-only array should be a candidate")
	}
}

func TestLastStatementWriteIsCandidate(t *testing.T) {
	// Liveness is per-block, not per-statement: an array whose only
	// write is the block's last statement is still a candidate — no
	// later read exists inside or outside the block.
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "B", ref("A", 0, 0)),
		arrStmt(r, "T", ref("B", 0, 0)),
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("last-statement write-only array should be a candidate")
	}
	if !has(c, b, "B") {
		t.Error("write-then-read array B should be a candidate")
	}
}

func TestMixedOffsetReadsCountOffenders(t *testing.T) {
	// T is read at a covered offset and at two uncovered ones; the
	// verdict must count exactly the uncovered reads and witness the
	// first of them.
	inner := sub2(2, 7)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(inner, "T", ref("A", 0, 0)),
		arrStmt(inner, "B", ref("T", 0, 0)),  // covered
		arrStmt(inner, "C", ref("T", 1, 0)),  // row 8: uncovered
		arrStmt(inner, "D", ref("T", -1, 0)), // row 1: uncovered
	}}
	_, verdicts := Explain(progOf(b))
	var v *Verdict
	for i := range verdicts {
		if verdicts[i].Array == "T" {
			v = &verdicts[i]
		}
	}
	if v == nil {
		t.Fatal("no verdict for T")
	}
	if v.Candidate {
		t.Fatal("T with uncovered reads is a candidate")
	}
	if v.Reason != ReasonUncoveredRead {
		t.Fatalf("reason = %q, want %q", v.Reason, ReasonUncoveredRead)
	}
	if v.Offending != 2 {
		t.Errorf("Offending = %d, want 2", v.Offending)
	}
	if got := v.Off; len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("witness offset = %v, want (1,0) (the first uncovered read)", got)
	}
}

func TestSingleOffenderIsFixitGrade(t *testing.T) {
	// Exactly one uncovered read: Offending == 1 marks the array as
	// would-contract-but-for-one-reference (the linter's fix-it case).
	inner := sub2(2, 7)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(inner, "T", ref("A", 0, 0)),
		arrStmt(inner, "B", ref("T", 1, 0)),
	}}
	_, verdicts := Explain(progOf(b))
	for _, v := range verdicts {
		if v.Array == "T" {
			if v.Offending != 1 {
				t.Errorf("Offending = %d, want 1", v.Offending)
			}
			return
		}
	}
	t.Fatal("no verdict for T")
}

func TestMultiBlockVerdictNamesFirstBlock(t *testing.T) {
	// A cross-block array's verdict carries the first referencing
	// block, so per-block reporting has exactly one home for it.
	r := reg2(8)
	b1 := &air.Block{ID: 0, Stmts: []air.Stmt{arrStmt(r, "X", ref("A", 0, 0))}}
	b2 := &air.Block{ID: 1, Stmts: []air.Stmt{arrStmt(r, "B", ref("X", 0, 0))}}
	_, verdicts := Explain(progOf(b1, b2))
	for _, v := range verdicts {
		if v.Array == "X" {
			if v.Reason != ReasonMultiBlock {
				t.Fatalf("reason = %q, want %q", v.Reason, ReasonMultiBlock)
			}
			if v.Block != b1 {
				t.Errorf("verdict block = %v, want the first referencing block", v.Block)
			}
			return
		}
	}
	t.Fatal("no verdict for X")
}

func TestEscapingArrayNeverCandidate(t *testing.T) {
	// A perfectly confined array — first access a write, every read
	// covered — is still excluded when Escapes is set: a runtime
	// handle observes its final value, so it is live at program exit.
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "B", ref("T", 0, 0)),
	}}
	p := progOf(b)
	p.Arrays["T"] = &air.ArrayInfo{Name: "T", Declared: r, Alloc: r}

	cands, _ := Explain(p)
	if !has(cands, b, "T") {
		t.Fatal("confined non-escaping T should be a candidate (test setup)")
	}

	p2 := progOf(&air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "B", ref("T", 0, 0)),
	}})
	p2.Arrays["T"] = &air.ArrayInfo{Name: "T", Declared: r, Alloc: r, Escapes: true}
	cands2, verdicts := Explain(p2)
	if has(cands2, p2.Main.Body[0].(*air.Block), "T") {
		t.Fatal("escaping T must not be a contraction candidate")
	}
	for _, v := range verdicts {
		if v.Array == "T" {
			if v.Reason != ReasonEscapes {
				t.Fatalf("reason = %q, want %q", v.Reason, ReasonEscapes)
			}
			return
		}
	}
	t.Fatal("no verdict for T")
}
