package liveness

import (
	"testing"

	"repro/internal/air"
	"repro/internal/sema"
)

func reg2(n int) *sema.Region {
	return &sema.Region{Lo: []int{1, 1}, Hi: []int{n, n}}
}

func sub2(lo, hi int) *sema.Region {
	return &sema.Region{Lo: []int{lo, lo}, Hi: []int{hi, hi}}
}

func arrStmt(r *sema.Region, lhs string, reads ...air.Ref) *air.ArrayStmt {
	var rhs air.Expr
	for _, rd := range reads {
		ref := &air.RefExpr{Ref: rd}
		if rhs == nil {
			rhs = ref
		} else {
			rhs = &air.BinExpr{Op: air.OpAdd, X: rhs, Y: ref}
		}
	}
	if rhs == nil {
		rhs = &air.ConstExpr{Val: 1}
	}
	return &air.ArrayStmt{Region: r, LHS: lhs, RHS: rhs}
}

func ref(a string, vs ...int) air.Ref { return air.Ref{Array: a, Off: air.Offset(vs)} }

func progOf(blocks ...*air.Block) *air.Program {
	var nodes []air.Node
	for _, b := range blocks {
		nodes = append(nodes, b)
	}
	p := &air.Program{
		Name:    "t",
		Arrays:  map[string]*air.ArrayInfo{},
		Scalars: map[string]*air.ScalarInfo{},
		Procs:   map[string]*air.Proc{},
	}
	p.Procs["main"] = &air.Proc{Name: "main", Body: nodes}
	p.Main = p.Procs["main"]
	return p
}

func has(c map[*air.Block][]string, b *air.Block, name string) bool {
	for _, n := range c[b] {
		if n == name {
			return true
		}
	}
	return false
}

func TestConfinedTempIsCandidate(t *testing.T) {
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "B", ref("T", 0, 0)),
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("confined temporary not a candidate")
	}
	if has(c, b, "A") {
		t.Error("never-written input array is a candidate")
	}
}

func TestCrossBlockArrayExcluded(t *testing.T) {
	r := reg2(8)
	b1 := &air.Block{ID: 0, Stmts: []air.Stmt{arrStmt(r, "X", ref("A", 0, 0))}}
	b2 := &air.Block{ID: 1, Stmts: []air.Stmt{arrStmt(r, "B", ref("X", 0, 0))}}
	c := Candidates(progOf(b1, b2))
	if has(c, b1, "X") || has(c, b2, "X") {
		t.Error("cross-block array is a candidate")
	}
}

func TestReadBeforeWriteExcluded(t *testing.T) {
	// Loop-carried pattern: X read first, written later in the block.
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "Y", ref("X", 0, 0)),
		arrStmt(r, "X", ref("Y", 0, 0)),
	}}
	c := Candidates(progOf(b))
	if has(c, b, "X") {
		t.Error("read-before-write array is a candidate")
	}
	if !has(c, b, "Y") {
		t.Error("write-then-read array Y should be a candidate")
	}
}

func TestUncoveredOffsetReadExcluded(t *testing.T) {
	// T written over [2..7] but read shifted beyond the write.
	inner := sub2(2, 7)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(inner, "T", ref("A", 0, 0)),
		arrStmt(inner, "B", ref("T", 1, 0)), // touches row 8: uncovered
	}}
	c := Candidates(progOf(b))
	if has(c, b, "T") {
		t.Error("array with uncovered offset read is a candidate")
	}
}

func TestCoveredOffsetReadAllowed(t *testing.T) {
	// T written over the full region, read at an offset that stays
	// within the written rectangle.
	full := reg2(8)
	inner := sub2(2, 7)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(full, "T", ref("A", 0, 0)),
		arrStmt(inner, "B", ref("T", 1, 0)),
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("fully covered array should be a candidate")
	}
}

func TestCommExcludesArray(t *testing.T) {
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "X", ref("A", 0, 0)),
		&air.CommStmt{Array: "X", Off: air.Offset{0, 1}, Region: r},
		arrStmt(r, "B", ref("X", 0, 1)),
	}}
	c := Candidates(progOf(b))
	if has(c, b, "X") {
		t.Error("communicated array is a candidate")
	}
}

func TestReduceReadCounts(t *testing.T) {
	r := reg2(8)
	b := &air.Block{ID: 0, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		&air.ReduceStmt{Target: "s", Op: air.ReduceSum, Region: r,
			Body: &air.RefExpr{Ref: ref("T", 0, 0)}},
	}}
	c := Candidates(progOf(b))
	if !has(c, b, "T") {
		t.Error("array consumed by an intra-block reduction should be a candidate")
	}
}

func TestLoopBodyBlockIsOwnScope(t *testing.T) {
	// The same block appearing inside a loop: candidates are computed
	// per block, and write-before-read arrays remain candidates even
	// though the block re-executes.
	r := reg2(8)
	body := &air.Block{ID: 1, Stmts: []air.Stmt{
		arrStmt(r, "T", ref("A", 0, 0)),
		arrStmt(r, "B", ref("T", 0, 0)),
	}}
	p := &air.Program{
		Name:    "t",
		Arrays:  map[string]*air.ArrayInfo{},
		Scalars: map[string]*air.ScalarInfo{},
		Procs:   map[string]*air.Proc{},
	}
	loop := &air.Loop{Var: "i", Lo: &air.ConstExpr{Val: 1}, Hi: &air.ConstExpr{Val: 3},
		Body: []air.Node{body}}
	p.Procs["main"] = &air.Proc{Name: "main", Body: []air.Node{loop}}
	p.Main = p.Procs["main"]
	c := Candidates(p)
	if !has(c, body, "T") {
		t.Error("loop-body temporary not a candidate")
	}
}
