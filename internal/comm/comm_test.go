package comm

import (
	"testing"

	"repro/internal/air"
	"repro/internal/sema"
)

func reg2(n int) *sema.Region {
	return &sema.Region{Lo: []int{1, 1}, Hi: []int{n, n}}
}

func arrStmt(r *sema.Region, lhs string, reads ...air.Ref) *air.ArrayStmt {
	var rhs air.Expr
	for _, rd := range reads {
		ref := &air.RefExpr{Ref: rd}
		if rhs == nil {
			rhs = ref
		} else {
			rhs = &air.BinExpr{Op: air.OpAdd, X: rhs, Y: ref}
		}
	}
	if rhs == nil {
		rhs = &air.ConstExpr{Val: 1}
	}
	return &air.ArrayStmt{Region: r, LHS: lhs, RHS: rhs}
}

func ref(a string, vs ...int) air.Ref { return air.Ref{Array: a, Off: air.Offset(vs)} }

func progWith(stmts []air.Stmt) (*air.Program, *air.Block) {
	b := &air.Block{Stmts: stmts}
	p := &air.Program{
		Name:    "t",
		Arrays:  map[string]*air.ArrayInfo{},
		Scalars: map[string]*air.ScalarInfo{},
		Procs:   map[string]*air.Proc{},
	}
	p.Procs["main"] = &air.Proc{Name: "main", Body: []air.Node{b}}
	p.Main = p.Procs["main"]
	return p, b
}

func countComm(b *air.Block) (whole, send, recv int) {
	for _, s := range b.Stmts {
		if c, ok := s.(*air.CommStmt); ok {
			switch c.Phase {
			case air.CommSend:
				send++
			case air.CommRecv:
				recv++
			default:
				whole++
			}
		}
	}
	return
}

func TestInsertBasic(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{
		arrStmt(r, "A", ref("B", 0, 0)),
		arrStmt(r, "C", ref("A", 0, 1)),
	})
	res := Insert(prog, Options{Procs: 4})
	if res.Inserted != 1 {
		t.Errorf("inserted %d, want 1", res.Inserted)
	}
	whole, _, _ := countComm(b)
	if whole != 1 {
		t.Errorf("whole comms %d, want 1", whole)
	}
	// The comm must precede the consumer.
	var commIdx, consIdx int
	for i, s := range b.Stmts {
		switch x := s.(type) {
		case *air.CommStmt:
			commIdx = i
		case *air.ArrayStmt:
			if x.LHS == "C" {
				consIdx = i
			}
		}
	}
	if commIdx > consIdx {
		t.Error("comm inserted after its consumer")
	}
}

func TestInsertSkipsUniprocessor(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{arrStmt(r, "C", ref("A", 0, 1))})
	res := Insert(prog, Options{Procs: 1})
	if res.Inserted != 0 || len(b.Stmts) != 1 {
		t.Error("comm inserted for p=1")
	}
}

func TestInsertSkipsZeroOffsets(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{arrStmt(r, "C", ref("A", 0, 0))})
	Insert(prog, Options{Procs: 4})
	if w, s, rv := countComm(b); w+s+rv != 0 {
		t.Error("comm inserted for an aligned reference")
	}
}

func TestRedundancyElimination(t *testing.T) {
	r := reg2(8)
	east := []int{0, 1}
	prog, b := progWith([]air.Stmt{
		arrStmt(r, "C", ref("A", east...)),
		arrStmt(r, "D", ref("A", east...)), // same halo, still valid
	})
	res := Insert(prog, Options{Procs: 4, RedundancyElim: true})
	if res.Inserted != 1 || res.Eliminated != 1 {
		t.Errorf("inserted %d eliminated %d, want 1/1", res.Inserted, res.Eliminated)
	}
	if w, _, _ := countComm(b); w != 1 {
		t.Errorf("whole comms %d, want 1", w)
	}
}

func TestWriteInvalidatesHalo(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{
		arrStmt(r, "C", ref("A", 0, 1)),
		arrStmt(r, "A", ref("B", 0, 0)), // rewrite A
		arrStmt(r, "D", ref("A", 0, 1)), // needs a fresh exchange
	})
	res := Insert(prog, Options{Procs: 4, RedundancyElim: true})
	if res.Inserted != 2 {
		t.Errorf("inserted %d, want 2", res.Inserted)
	}
	_ = b
}

func TestPipelineSplitsAndPlacesSend(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{
		arrStmt(r, "A", ref("B", 0, 0)), // producer
		arrStmt(r, "X", ref("Y", 0, 0)), // unrelated (overlap window)
		arrStmt(r, "C", ref("A", 0, 1)), // consumer
	})
	res := Insert(prog, Options{Procs: 4, Pipeline: true})
	if res.Pipelined != 1 {
		t.Fatalf("pipelined %d, want 1", res.Pipelined)
	}
	_, send, recv := countComm(b)
	if send != 1 || recv != 1 {
		t.Fatalf("send/recv = %d/%d", send, recv)
	}
	// Send goes right after the producer; recv right before consumer;
	// the unrelated statement sits between them.
	var sendIdx, recvIdx, midIdx int
	for i, s := range b.Stmts {
		switch x := s.(type) {
		case *air.CommStmt:
			if x.Phase == air.CommSend {
				sendIdx = i
			} else {
				recvIdx = i
			}
		case *air.ArrayStmt:
			if x.LHS == "X" {
				midIdx = i
			}
		}
	}
	if !(sendIdx < midIdx && midIdx < recvIdx) {
		t.Errorf("send@%d mid@%d recv@%d: overlap window empty", sendIdx, midIdx, recvIdx)
	}
}

func TestCombineMarksPiggyback(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{
		arrStmt(r, "C", ref("A", 0, 1), ref("B", 0, 1)),
	})
	res := Insert(prog, Options{Procs: 4, Combine: true})
	if res.Inserted != 2 || res.Combined != 1 {
		t.Errorf("inserted %d combined %d, want 2/1", res.Inserted, res.Combined)
	}
	pig := 0
	for _, s := range b.Stmts {
		if c, ok := s.(*air.CommStmt); ok && c.Piggyback {
			pig++
		}
	}
	if pig != 1 {
		t.Errorf("piggybacked %d, want 1", pig)
	}
}

func TestSegments(t *testing.T) {
	r := reg2(8)
	stmts := []air.Stmt{
		arrStmt(r, "A", ref("B", 0, 0)),
		&air.CommStmt{Array: "A", Off: air.Offset{0, 1}, Region: r},
		arrStmt(r, "C", ref("A", 0, 1)),
		arrStmt(r, "D", ref("C", 0, 0)),
	}
	seg := Segments(stmts)
	if seg[0] != 0 || seg[1] != 1 || seg[2] != 1 || seg[3] != 1 {
		t.Errorf("segments = %v", seg)
	}
}

func TestReduceReadsGetComm(t *testing.T) {
	r := reg2(8)
	prog, b := progWith([]air.Stmt{
		&air.ReduceStmt{Target: "s", Op: air.ReduceSum, Region: r,
			Body: &air.RefExpr{Ref: ref("A", 1, 0)}},
	})
	res := Insert(prog, Options{Procs: 4})
	if res.Inserted != 1 {
		t.Errorf("inserted %d, want 1", res.Inserted)
	}
	_ = b
}
