// Package comm inserts and optimizes the compiler-generated
// communication primitives of a distributed execution (§5.5). Every
// array dimension is block-distributed (the paper's assumption), so an
// @-reference with a nonzero offset needs a ghost-cell exchange with
// the neighbor in that direction before its consuming statement runs.
//
// The optimizations match the ones the paper discusses:
//
//   - message vectorization is inherent: a primitive moves the whole
//     halo slab of an array statement, never per-element messages;
//   - redundancy elimination skips an exchange whose halo is still
//     valid (same array and offset, no intervening write);
//   - message combining piggybacks consecutive exchanges headed to the
//     same neighbor onto one message (startup paid once);
//   - pipelining splits an exchange into a send posted right after the
//     producing statement and a receive right before the consumer, so
//     intervening computation hides the latency.
//
// Communication statements are unnormalized: they are never fusion or
// contraction candidates, and any array they touch keeps its halo and
// stays in memory.
package comm

import (
	"repro/internal/air"
	"repro/internal/sema"
)

// Strategy resolves the fusion-versus-communication conflict of §5.5.
type Strategy int

// Strategies.
const (
	// FavorFusion never lets communication optimization prevent
	// fusion (the paper's recommendation).
	FavorFusion Strategy = iota
	// FavorComm forbids fusion that would shrink a pipelined
	// message's overlap window: statements may only fuse within the
	// same communication-free segment of their block.
	FavorComm
)

func (s Strategy) String() string {
	if s == FavorComm {
		return "favor-comm"
	}
	return "favor-fusion"
}

// Options configures insertion and optimization.
type Options struct {
	Procs          int // processor count; <=1 disables communication
	Strategy       Strategy
	RedundancyElim bool
	Combine        bool
	Pipeline       bool
}

// DefaultOptions enables every optimization with the favor-fusion
// strategy, matching the configuration of the paper's main experiments.
func DefaultOptions(procs int) Options {
	return Options{
		Procs:          procs,
		Strategy:       FavorFusion,
		RedundancyElim: true,
		Combine:        true,
		Pipeline:       true,
	}
}

// Result reports what insertion did.
type Result struct {
	Inserted   int // primitives inserted (pipelined pairs count once)
	Eliminated int // exchanges avoided by redundancy elimination
	Combined   int // messages piggybacked onto a predecessor
	Pipelined  int // exchanges split into send/recv halves
}

// Insert rewrites every block of the program, inserting communication
// primitives before consumers of remote data. It must run before the
// fusion phase so that the primitives participate in dependence
// analysis (the paper's argument for array-level integration).
func Insert(prog *air.Program, opt Options) *Result {
	res := &Result{}
	if opt.Procs <= 1 {
		return res
	}
	msgID := 0
	for _, b := range prog.AllBlocks() {
		msgID = insertBlock(b, opt, res, msgID)
	}
	return res
}

type haloKey struct {
	array string
	off   string
}

func insertBlock(b *air.Block, opt Options, res *Result, msgID int) int {
	valid := map[haloKey]bool{}
	lastWrite := map[string]int{} // array -> original index of last write
	lastBarrier := -1             // index of the last unsummarized call
	// before[j] collects primitives to splice in before original
	// statement j; len(b.Stmts)+1 slots so sends can land anywhere.
	before := make([][]air.Stmt, len(b.Stmts)+1)

	for j, s := range b.Stmts {
		var reads []air.Ref
		reg := regionOf(s)
		switch x := s.(type) {
		case *air.ArrayStmt:
			reads = x.Reads()
		case *air.ReduceStmt:
			reads = air.Refs(x.Body)
		case *air.PartialReduceStmt:
			reads = air.Refs(x.Body)
			reg = x.Region
		}
		for _, r := range reads {
			if r.Off.IsZero() {
				continue
			}
			// Decompose the offset into per-neighbor exchanges
			// (cardinal strips plus diagonal corners), mirroring the
			// ZPL runtime: a read at (1,1) needs the north and east
			// strips and the north-east corner, each a disjoint slab.
			for _, dir := range NeighborDirections(r.Off) {
				key := haloKey{r.Array, dir.String()}
				if opt.RedundancyElim && valid[key] {
					res.Eliminated++
					continue
				}
				valid[key] = true
				res.Inserted++
				pos := air.PosOf(s)
				if opt.Pipeline {
					msgID++
					res.Pipelined++
					sendPos := lastBarrier + 1
					if w, ok := lastWrite[r.Array]; ok && w+1 > sendPos {
						sendPos = w + 1
					}
					before[sendPos] = append(before[sendPos], &air.CommStmt{
						Array: r.Array, Off: dir, Region: reg,
						Phase: air.CommSend, MsgID: msgID, Pos: pos,
					})
					before[j] = append(before[j], &air.CommStmt{
						Array: r.Array, Off: dir, Region: reg,
						Phase: air.CommRecv, MsgID: msgID, Pos: pos,
					})
				} else {
					before[j] = append(before[j], &air.CommStmt{
						Array: r.Array, Off: dir, Region: reg, Pos: pos,
					})
				}
			}
		}
		// Writes invalidate the array's halos.
		var written string
		switch x := s.(type) {
		case *air.ArrayStmt:
			written = x.LHS
		case *air.PartialReduceStmt:
			written = x.LHS
		}
		if written != "" {
			for k := range valid {
				if k.array == written {
					delete(valid, k)
				}
			}
			lastWrite[written] = j
		}
		// Calls may rewrite global arrays, leaving halos stale: a
		// summarized callee invalidates exactly the arrays it writes,
		// an unknown (or I/O) callee invalidates everything and pins
		// later sends below itself.
		if c, ok := s.(*air.CallStmt); ok {
			if c.Effects == nil || c.Effects.IO {
				valid = map[haloKey]bool{}
				lastBarrier = j
			} else {
				for _, name := range c.Effects.ArraysWritten {
					for k := range valid {
						if k.array == name {
							delete(valid, k)
						}
					}
					lastWrite[name] = j
				}
			}
		}
	}

	var out []air.Stmt
	for j := range b.Stmts {
		out = append(out, before[j]...)
		out = append(out, b.Stmts[j])
	}
	out = append(out, before[len(b.Stmts)]...)

	if opt.Combine {
		combine(out, res)
	}
	b.Stmts = out
	return msgID
}

// regionOf returns the iteration region of a fusible statement.
func regionOf(s air.Stmt) *sema.Region {
	switch x := s.(type) {
	case *air.ArrayStmt:
		return x.Region
	case *air.ReduceStmt:
		return x.Region
	case *air.PartialReduceStmt:
		return x.Region
	}
	return nil
}

// combine piggybacks consecutive whole exchanges to the same neighbor:
// every primitive after the first in such a run pays only bandwidth.
func combine(stmts []air.Stmt, res *Result) {
	var prev *air.CommStmt
	for _, s := range stmts {
		c, ok := s.(*air.CommStmt)
		if !ok || c.Phase != air.CommWhole {
			prev = nil
			continue
		}
		if prev != nil && prev.Off.Equal(c.Off) {
			c.Piggyback = true
			res.Combined++
		}
		prev = c
	}
}

// NeighborDirections decomposes a read offset into the neighbor
// exchanges required to make its halo valid: every nonzero sign
// sub-pattern of the offset, carrying the offset's widths in its
// active dimensions. A cardinal offset yields itself; a rank-2
// diagonal yields two strips and a corner.
func NeighborDirections(off air.Offset) []air.Offset {
	var active []int
	for k, v := range off {
		if v != 0 {
			active = append(active, k)
		}
	}
	var out []air.Offset
	for mask := 1; mask < 1<<len(active); mask++ {
		d := air.Zero(len(off))
		for i, k := range active {
			if mask&(1<<i) != 0 {
				d[k] = off[k]
			}
		}
		out = append(out, d)
	}
	return out
}

// Segments labels each statement of a block with its communication
// segment: the index increments at every communication primitive.
// Under the FavorComm strategy fusion may not cross segments, keeping
// the statements between a send and its receive available to hide the
// message latency.
func Segments(stmts []air.Stmt) []int {
	seg := make([]int, len(stmts))
	cur := 0
	for i, s := range stmts {
		if _, ok := s.(*air.CommStmt); ok {
			cur++
		}
		seg[i] = cur
	}
	return seg
}
