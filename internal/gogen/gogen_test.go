package gogen_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/gogen"
	"repro/internal/programs"
	"repro/internal/vm"
)

// runNative emits Go for the compilation, builds it with the host
// toolchain, runs it, and returns stdout.
func runNative(t *testing.T, c *driver.Compilation) string {
	t.Helper()
	src, err := gogen.Emit(c.LIR)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run: %v\nstderr:\n%s\nsource:\n%s", err, errb.String(), src)
	}
	return out.String()
}

func runVM(t *testing.T, c *driver.Compilation) string {
	t.Helper()
	var out bytes.Buffer
	if _, _, err := vm.Run(c.LIR, vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestNativeMatchesVM: generated Go output must equal the VM's exactly.
func TestNativeMatchesVM(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	src := `
program native;
config n : integer = 12;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction north = (-1, 0); east = (0, 1);
var A, B, T : [R] double;
var s, acc : double;
proc scale(x : double) : double
begin
  return x * 0.125;
end;
proc main()
begin
  [R] A := index1 * 0.5 + index2;
  acc := 0.0;
  for it := 1 to 3 do
    [I] T := (A@north + A@east) * 0.5;
    [I] B := T + A;
    [I] A := A@north + B;
    s := +<< [I] B;
    acc := acc + scale(s);
  end;
  if acc > 0.0 then
    writeln("acc", acc);
  else
    writeln("neg", acc);
  end;
  s := max<< [R] A;
  writeln("max", s);
end;
`
	for _, lvl := range []core.Level{core.Baseline, core.C2F3} {
		c, err := driver.Compile(src, driver.Options{Level: lvl})
		if err != nil {
			t.Fatal(err)
		}
		want := runVM(t, c)
		got := runNative(t, c)
		if got != want {
			t.Errorf("level %v: native output %q, want %q", lvl, got, want)
		}
	}
}

// TestNativeBenchmark: one full paper benchmark through the native
// back end.
func TestNativeBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	b, _ := programs.ByName("fibro")
	c, err := driver.Compile(b.Source, driver.Options{
		Level: core.C2F3, Configs: map[string]int64{"n": 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := runVM(t, c)
	got := runNative(t, c)
	if got != want {
		t.Errorf("native %q, want %q", got, want)
	}
}

// TestEmitAllBenchmarks: every benchmark at every level emits valid,
// gofmt-parseable Go (vetted by the toolchain in the two run tests;
// here we just require emission to succeed).
func TestEmitAllBenchmarks(t *testing.T) {
	for _, b := range programs.All() {
		for _, lvl := range core.AllLevels() {
			c, err := driver.Compile(b.Source, driver.Options{Level: lvl})
			if err != nil {
				t.Fatalf("%s at %v: %v", b.Name, lvl, err)
			}
			if _, err := gogen.Emit(c.LIR); err != nil {
				t.Errorf("%s at %v: %v", b.Name, lvl, err)
			}
		}
	}
}

// TestImportsMatchUsage: the emitter imports exactly what the program
// uses — no blank-identifier hack keeping a spurious import alive, and
// no math import unless the program actually calls into math.
func TestImportsMatchUsage(t *testing.T) {
	noMath := `
program nomath;
config n : integer = 8;
region R = [1..n];
var A : [R] double;
var s : double;
proc main()
begin
  [R] A := index1 * 2.0;
  s := +<< [R] A;
  writeln("s", s);
end;
`
	c, err := driver.Compile(noMath, driver.Options{Level: core.C2F3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := gogen.Emit(c.LIR)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "var _ =") {
		t.Errorf("emitted source carries a blank-identifier import hack:\n%s", src)
	}
	if strings.Contains(src, `"math"`) {
		t.Errorf("math imported by a program that never uses it:\n%s", src)
	}

	// A max-reduction needs math (the -Inf identity and math.Max).
	withMath := strings.Replace(noMath, "+<<", "max<<", 1)
	c, err = driver.Compile(withMath, driver.Options{Level: core.C2F3})
	if err != nil {
		t.Fatal(err)
	}
	src, err = gogen.Emit(c.LIR)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, `"math"`) {
		t.Errorf("max-reduction program missing its math import:\n%s", src)
	}
	if strings.Contains(src, "var _ =") {
		t.Errorf("emitted source carries a blank-identifier import hack:\n%s", src)
	}
}

// TestEmittedSourceVetClean: go vet accepts the emitted source for
// every benchmark — in particular it finds no unused identifiers or
// suspect format strings in generated code.
func TestEmittedSourceVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("no go toolchain on PATH")
	}
	for _, b := range programs.All() {
		c, err := driver.Compile(b.Source, driver.Options{Level: core.C2F4S})
		if err != nil {
			t.Fatal(err)
		}
		src, err := gogen.Emit(c.LIR)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "vet", "main.go")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("%s: go vet rejects emitted source: %v\n%s", b.Name, err, out)
		}
	}
}

// TestNativePartialReduction: dimensional reductions through the
// native back end match the VM exactly.
func TestNativePartialReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	src := `
program pnative;
config n : integer = 8;
region R = [1..n, 1..n];
region Rows = [1..n, 1..1];
var A : [R] double;
var RS : [Rows] double;
var s : double;
proc main()
begin
  [R] A := index1 * 2.0 + index2 * 0.5;
  [Rows] RS := max<< [R] A;
  s := +<< [Rows] RS;
  writeln("s", s);
end;
`
	c, err := driver.Compile(src, driver.Options{Level: core.C2F3})
	if err != nil {
		t.Fatal(err)
	}
	want := runVM(t, c)
	got := runNative(t, c)
	if got != want {
		t.Errorf("native %q, want %q", got, want)
	}
}

// TestEmitStateNilSpecIdentical: a nil StateSpec must emit exactly the
// historical output — the state protocol may not perturb the content
// addresses of existing native artifacts.
func TestEmitStateNilSpecIdentical(t *testing.T) {
	src, err := os.ReadFile("../../testdata/quickstart.za")
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []core.Level{core.Baseline, core.C2F4S} {
		c, err := driver.Compile(string(src), driver.Options{Level: lvl})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := gogen.EmitBounds(c.LIR, c.Bounds)
		if err != nil {
			t.Fatal(err)
		}
		stated, err := gogen.EmitState(c.LIR, c.Bounds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plain != stated {
			t.Errorf("%s: EmitState(nil spec) diverged from EmitBounds", lvl)
		}
		if strings.Contains(plain, "za_load_state") {
			t.Errorf("%s: spec-less emission contains state machinery", lvl)
		}
	}
}

// TestEmitStateSpecValidation: unknown or contracted names in the spec
// must be emission errors, and a valid spec must produce the load/dump
// pair wired into the scaffold.
func TestEmitStateSpecValidation(t *testing.T) {
	src, err := os.ReadFile("../../testdata/quickstart.za")
	if err != nil {
		t.Fatal(err)
	}
	c, err := driver.Compile(string(src), driver.Options{Level: core.C2F4S})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gogen.EmitState(c.LIR, c.Bounds, &gogen.StateSpec{Arrays: []string{"nope"}}); err == nil {
		t.Error("unknown array accepted")
	}
	if _, err := gogen.EmitState(c.LIR, c.Bounds, &gogen.StateSpec{Scalars: []string{"nope"}}); err == nil {
		t.Error("unknown scalar accepted")
	}
	var contracted string
	var live []string
	for n, a := range c.LIR.Source.Arrays {
		if a.Contracted {
			contracted = n
		} else {
			live = append(live, n)
		}
	}
	if contracted != "" {
		if _, err := gogen.EmitState(c.LIR, c.Bounds, &gogen.StateSpec{Arrays: []string{contracted}}); err == nil {
			t.Error("contracted array accepted")
		}
	}
	if len(live) == 0 {
		t.Fatal("no live array to spec")
	}
	out, err := gogen.EmitState(c.LIR, c.Bounds, &gogen.StateSpec{Arrays: live[:1]})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"za_load_state", "za_dump_state", gogen.StateInEnv, gogen.StateOutEnv, "encoding/binary"} {
		if !strings.Contains(out, want) {
			t.Errorf("stateful emission missing %q", want)
		}
	}
}
