// Package gogen is the native back end: it emits a scalarized program
// as a standalone Go source file whose output matches the VM's
// bit-for-bit. This is what a production array compiler would ship —
// the VM exists for tracing and machine modeling, gogen for speed —
// and running both closes the loop on code-generation correctness
// with the host toolchain as the final referee.
//
// Emitted programs are self-contained (standard library only) and make
// three guarantees the differential harness (internal/backend,
// experiments -run backend) relies on:
//
//   - stdout is bit-identical to the VM's: writeln arguments print
//     with %g separated by single spaces, exactly like internal/vm;
//   - runtime faults are propagated, not swallowed: a trap in the
//     generated code (index out of range, stack overflow, ...) is
//     recovered, reported on stderr as "za runtime error: ...", and
//     the process exits with the distinct code ExitTrap so callers can
//     tell a miscompiled program from a toolchain or harness failure;
//   - setting the environment variable TimeEnv makes the binary report
//     its compute-only wall clock ("za_elapsed_ns <n>") on stderr,
//     so measurements exclude process startup.
//
// Imports are emitted only when the program actually uses them (math
// is conditional; fmt/os/time are always used by the main scaffold),
// so generated code compiles and vets clean with no blank-identifier
// hacks.
//
// Communication primitives are dropped: generated code is the
// sequential (single-processor) program, whose semantics the
// distributed interpreter already cross-validates.
package gogen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/absint"
	"repro/internal/air"
	"repro/internal/lir"
)

// ExitTrap is the process exit code of a generated binary whose
// execution hit a runtime fault. It is deliberately distinct from 0
// (success), 1 (generic tool failure), and 2 (Go's own exit code for
// an unrecovered panic), so the backend harness can classify a trap in
// generated code without parsing stderr.
const ExitTrap = 3

// TimeEnv is the environment variable that, when set to any non-empty
// value, makes a generated binary print "za_elapsed_ns <n>" on stderr:
// the wall-clock nanoseconds spent inside the program proper, process
// startup and teardown excluded.
const TimeEnv = "ZPL_TIME_NS"

// ElapsedPrefix starts the stderr timing line a binary emits under
// TimeEnv.
const ElapsedPrefix = "za_elapsed_ns "

// StateInEnv and StateOutEnv name the binary state files a generated
// program reads its initial array/scalar state from and dumps its
// final state to. They only exist in binaries emitted with a non-nil
// StateSpec (the lazy runtime's artifacts); either variable may be
// empty or unset, in which case the corresponding half is skipped —
// arrays start zeroed, nothing is written back. Keeping the state in
// environment-named files rather than embedded constants is what makes
// a lazy batch's generated source — and therefore its content-addressed
// artifact — identical across timesteps of an iterative solver.
const (
	StateInEnv  = "ZPL_STATE_IN"
	StateOutEnv = "ZPL_STATE_OUT"
)

// StateSpec declares, in order, which arrays and scalars participate in
// the state files. Each array contributes Alloc.Size() float64s (the
// full allocated slab including halo, row-major) and each scalar one
// float64, all raw little-endian, concatenated with no header: the file
// length is exactly 8*(sum of array sizes + len(Scalars)) bytes, and a
// mismatch is a state error (exit code ExitTrap). The caller owns the
// ordering; the emitter follows it verbatim, so the reader and writer
// of the files agree by construction.
type StateSpec struct {
	Arrays  []string
	Scalars []string
}

// Emit renders the program as a compilable Go main package with every
// array access bounds-checked (Go's implicit slice check plus the
// recover scaffold).
func Emit(p *lir.Program) (string, error) { return EmitBounds(p, nil) }

// EmitBounds renders the program using the abstract-interpretation
// prover's verdicts: accesses at ProvenSafe sites compile to raw
// pointer arithmetic (unsafe.Add) with no slice bounds check, and when
// every site in the program is proven the recover scaffold is dropped
// entirely — the generated binary carries no trap machinery at all,
// which is the proof-carrying payoff. The prover's fingerprint is
// stamped into the file header, so cached native artifacts built with
// different verdicts never alias. A Faulted site (the -provefault
// self-test) emits its access displaced by the injected evidence
// shift, wrapped into the storage, making the seeded wrong interval an
// observable wrong answer. bounds == nil emits fully checked code.
func EmitBounds(p *lir.Program, bounds *absint.Result) (string, error) {
	return EmitState(p, bounds, nil)
}

// EmitState renders the program like EmitBounds and, when spec is
// non-nil, additionally wires in the state protocol: the binary loads
// its initial array/scalar state from the file named by StateInEnv
// before the timed region and dumps its final state to the file named
// by StateOutEnv after it (both steps outside the TimeEnv-reported
// window, so timings stay compute-only). spec == nil emits
// byte-identical output to EmitBounds, so existing content-addressed
// artifacts keep their keys.
func EmitState(p *lir.Program, bounds *absint.Result, spec *StateSpec) (string, error) {
	g := &gen{p: p, bounds: bounds, spec: spec}
	var body strings.Builder
	g.b = &body

	procNames := make([]string, 0, len(p.Procs))
	for n := range p.Procs {
		procNames = append(procNames, n)
	}
	sort.Strings(procNames)
	for _, n := range procNames {
		if err := g.proc(p.Procs[n]); err != nil {
			return "", err
		}
	}
	if g.err != nil {
		return "", g.err
	}

	// State functions render before the import block is fixed (they
	// need math and encoding/binary), like declarations below.
	stateFns, err := g.stateFuncs()
	if err != nil {
		return "", err
	}

	// Declarations may themselves need math (an Inf/NaN initializer),
	// so they render to a side buffer before the import block is fixed.
	var decls strings.Builder
	g.declarations(&decls)

	var out strings.Builder
	out.WriteString("// Code generated by gogen from program " + p.Name + ". DO NOT EDIT.\n")
	allProven := false
	if bounds != nil {
		fmt.Fprintf(&out, "// bounds prover: %d/%d sites proven safe, fingerprint %s.\n",
			bounds.NumProven, len(bounds.Sites), bounds.Fingerprint())
		allProven = bounds.AllProven()
		if allProven {
			out.WriteString("// all accesses proven: unchecked dispatch, no trap scaffold.\n")
		}
	}
	if g.spec != nil {
		fmt.Fprintf(&out, "// state protocol: %s/%s name raw little-endian float64 state files.\n",
			StateInEnv, StateOutEnv)
	}
	out.WriteString("package main\n\nimport (\n")
	if g.useBinary {
		out.WriteString("\t\"encoding/binary\"\n")
	}
	out.WriteString("\t\"fmt\"\n")
	if g.useMath {
		out.WriteString("\t\"math\"\n")
	}
	out.WriteString("\t\"os\"\n\t\"time\"\n")
	if g.useUnsafe {
		out.WriteString("\t\"unsafe\"\n")
	}
	out.WriteString(")\n\n")
	out.WriteString(decls.String())
	if g.useSign {
		out.WriteString(helperSign)
	}
	if g.useB2F {
		out.WriteString(helperB2F)
	}
	if g.useWrap {
		out.WriteString(helperWrap)
	}
	out.WriteString(body.String())
	out.WriteString(stateFns)
	switch {
	case g.spec != nil && allProven:
		fmt.Fprintf(&out, mainScaffoldProvenState, TimeEnv, ElapsedPrefix)
	case g.spec != nil:
		fmt.Fprintf(&out, mainScaffoldState, ExitTrap, TimeEnv, ElapsedPrefix)
	case allProven:
		fmt.Fprintf(&out, mainScaffoldProven, TimeEnv, ElapsedPrefix)
	default:
		fmt.Fprintf(&out, mainScaffold, ExitTrap, TimeEnv, ElapsedPrefix)
	}
	return out.String(), nil
}

// stateFuncs renders za_load_state/za_dump_state (plus their shared
// failure helper) for the generator's StateSpec; with no spec it
// contributes nothing, keeping spec-less emission byte-identical to
// the historical output. Load and dump walk the spec in its declared
// order, so the file layout is fully determined by the caller.
func (g *gen) stateFuncs() (string, error) {
	if g.spec == nil {
		return "", nil
	}
	total := 0
	for _, n := range g.spec.Arrays {
		a := g.p.Source.Arrays[n]
		if a == nil {
			return "", fmt.Errorf("gogen: state spec names unknown array %s", n)
		}
		if a.Contracted {
			return "", fmt.Errorf("gogen: state spec names contracted array %s", n)
		}
		total += a.Alloc.Size()
	}
	for _, n := range g.spec.Scalars {
		if g.p.Source.Scalars[n] == nil {
			return "", fmt.Errorf("gogen: state spec names unknown scalar %s", n)
		}
		total++
	}
	g.useMath = true
	g.useBinary = true
	bytes := 8 * total

	var b strings.Builder
	fmt.Fprintf(&b, "func za_state_fail(msg string) {\n\tfmt.Fprintln(os.Stderr, \"za state error:\", msg)\n\tos.Exit(%d)\n}\n\n", ExitTrap)

	fmt.Fprintf(&b, "func za_load_state() {\n\tpath := os.Getenv(%q)\n\tif path == \"\" {\n\t\treturn\n\t}\n", StateInEnv)
	b.WriteString("\tdata, err := os.ReadFile(path)\n\tif err != nil {\n\t\tza_state_fail(err.Error())\n\t}\n")
	fmt.Fprintf(&b, "\tif len(data) != %d {\n\t\tza_state_fail(fmt.Sprintf(\"state file is %%d bytes, want %d\", len(data)))\n\t}\n", bytes, bytes)
	b.WriteString("\toff := 0\n")
	for _, n := range g.spec.Arrays {
		v := goName(n)
		fmt.Fprintf(&b, "\tfor i := range %s {\n\t\t%s[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))\n\t\toff += 8\n\t}\n", v, v)
	}
	for _, n := range g.spec.Scalars {
		fmt.Fprintf(&b, "\t%s = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))\n\toff += 8\n", goName(n))
	}
	b.WriteString("\t_ = off\n}\n\n")

	fmt.Fprintf(&b, "func za_dump_state() {\n\tpath := os.Getenv(%q)\n\tif path == \"\" {\n\t\treturn\n\t}\n", StateOutEnv)
	fmt.Fprintf(&b, "\tbuf := make([]byte, %d)\n\toff := 0\n", bytes)
	for _, n := range g.spec.Arrays {
		v := goName(n)
		fmt.Fprintf(&b, "\tfor i := range %s {\n\t\tbinary.LittleEndian.PutUint64(buf[off:], math.Float64bits(%s[i]))\n\t\toff += 8\n\t}\n", v, v)
	}
	for _, n := range g.spec.Scalars {
		fmt.Fprintf(&b, "\tbinary.LittleEndian.PutUint64(buf[off:], math.Float64bits(%s))\n\toff += 8\n", goName(n))
	}
	b.WriteString("\t_ = off\n\tif err := os.WriteFile(path, buf, 0o644); err != nil {\n\t\tza_state_fail(err.Error())\n\t}\n}\n\n")
	return b.String(), nil
}

type gen struct {
	p      *lir.Program
	b      *strings.Builder
	bounds *absint.Result
	spec   *StateSpec
	ind    int
	err    error

	// Import/helper usage, discovered during emission.
	useMath   bool
	useSign   bool
	useB2F    bool
	useUnsafe bool
	useWrap   bool
	useBinary bool

	// basePtrs are the arrays with at least one unchecked access; each
	// gets one package-level unsafe.Pointer to its backing store, so
	// the per-access cost is a single add — re-deriving the base from
	// the slice header at every access re-buys the check being removed.
	basePtrs map[string]bool
}

func (g *gen) line(format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) fail(format string, args ...interface{}) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

// goName sanitizes a mangled ZA name into a Go identifier.
func goName(n string) string {
	n = strings.ReplaceAll(n, ".", "_")
	n = strings.ReplaceAll(n, "$", "_")
	return "za_" + n
}

// baseName is the package-level unsafe base pointer of an array with
// unchecked accesses. The "zaP_" prefix cannot collide with goName's
// "za_" namespace.
func baseName(n string) string {
	n = strings.ReplaceAll(n, ".", "_")
	n = strings.ReplaceAll(n, "$", "_")
	return "zaP_" + n
}

// floatLit renders a float64 as a deterministic, valid Go expression.
// strconv's shortest round-trip form keeps the literal bit-exact; the
// non-finite values (which have no Go literal form) fall back to math
// calls.
func (g *gen) floatLit(v float64) string {
	switch {
	case math.IsInf(v, 1):
		g.useMath = true
		return "math.Inf(1)"
	case math.IsInf(v, -1):
		g.useMath = true
		return "math.Inf(-1)"
	case math.IsNaN(v):
		g.useMath = true
		return "math.NaN()"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// declarations emits array storage and scalar variables.
func (g *gen) declarations(out *strings.Builder) {
	names := make([]string, 0, len(g.p.Source.Arrays))
	for n := range g.p.Source.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := g.p.Source.Arrays[n]
		if a.Contracted {
			continue
		}
		size := a.Alloc.Size()
		fmt.Fprintf(out, "var %s = make([]float64, %d) // %s\n", goName(n), size, a.Alloc)
	}
	names = names[:0]
	for n := range g.p.Source.Scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := g.p.Source.Scalars[n]
		if s.Config {
			fmt.Fprintf(out, "var %s float64 = %s\n", goName(n), g.floatLit(s.Init))
		} else {
			fmt.Fprintf(out, "var %s float64\n", goName(n))
		}
	}
	// Contracted arrays become plain variables.
	names = names[:0]
	for n, a := range g.p.Source.Arrays {
		if a.Contracted {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(out, "var %s float64 // contracted array\n", goName(n))
	}
	// Hoisted base pointers for the unchecked accesses (declarations
	// render after the procs, so the set is complete here).
	names = names[:0]
	for n := range g.basePtrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(out, "var %s = unsafe.Pointer(&%s[0])\n", baseName(n), goName(n))
	}
	out.WriteString("\n")
}

const helperSign = `func za_sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

`

const helperB2F = `func za_b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

`

// helperWrap displaces a seeded-fault access into the storage (the
// -provefault self-test): a deterministic wrong element, never an
// out-of-range read. Mirrors the VM's faultPos.
const helperWrap = `func za_wrap(p, n int) int {
	if p < 0 {
		p += n
	} else if p >= n {
		p -= n
	}
	return p
}

`

// mainScaffold wraps za_main with runtime-fault propagation and the
// opt-in self-timing hook. Verbs: ExitTrap, TimeEnv, ElapsedPrefix.
const mainScaffold = `
func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "za runtime error:", r)
			os.Exit(%d)
		}
	}()
	t0 := time.Now()
	za_main()
	if os.Getenv(%q) != "" {
		fmt.Fprintf(os.Stderr, "%s%%d\n", time.Since(t0).Nanoseconds())
	}
}
`

// mainScaffoldProven is the scaffold for a fully proven program: every
// access is statically safe, so there is nothing to recover from and
// no trap path to ship. Verbs: TimeEnv, ElapsedPrefix.
const mainScaffoldProven = `
func main() {
	t0 := time.Now()
	za_main()
	if os.Getenv(%q) != "" {
		fmt.Fprintf(os.Stderr, "%s%%d\n", time.Since(t0).Nanoseconds())
	}
}
`

// mainScaffoldState adds the state protocol around the checked
// scaffold: load before the timed region, dump after it, so TimeEnv
// timings stay compute-only. A trap skips the dump — a faulted run
// leaves no state file for a caller to mistake for a result. Verbs:
// ExitTrap, TimeEnv, ElapsedPrefix.
const mainScaffoldState = `
func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "za runtime error:", r)
			os.Exit(%d)
		}
	}()
	za_load_state()
	t0 := time.Now()
	za_main()
	elapsed := time.Since(t0)
	za_dump_state()
	if os.Getenv(%q) != "" {
		fmt.Fprintf(os.Stderr, "%s%%d\n", elapsed.Nanoseconds())
	}
}
`

// mainScaffoldProvenState is the state-protocol scaffold for a fully
// proven program. Verbs: TimeEnv, ElapsedPrefix.
const mainScaffoldProvenState = `
func main() {
	za_load_state()
	t0 := time.Now()
	za_main()
	elapsed := time.Since(t0)
	za_dump_state()
	if os.Getenv(%q) != "" {
		fmt.Fprintf(os.Stderr, "%s%%d\n", elapsed.Nanoseconds())
	}
}
`

func (g *gen) proc(pr *lir.Proc) error {
	params := make([]string, len(pr.Params))
	for i, p := range pr.Params {
		params[i] = goName(p) + "_arg float64"
	}
	g.line("func %s(%s) {", goName(pr.Name), strings.Join(params, ", "))
	g.ind++
	for _, p := range pr.Params {
		g.line("%s = %s_arg", goName(p), goName(p))
	}
	g.nodes(pr.Body, pr)
	g.ind--
	g.line("}")
	g.line("")
	return g.err
}

func (g *gen) nodes(nodes []lir.Node, pr *lir.Proc) {
	for _, n := range nodes {
		g.node(n, pr)
	}
}

func (g *gen) node(n lir.Node, pr *lir.Proc) {
	switch x := n.(type) {
	case *lir.Nest:
		g.nest(x)
	case *lir.ScalarAssign:
		g.line("%s = %s", goName(x.LHS), g.expr(x.RHS, nil))
	case *lir.Loop:
		v := goName(x.Var)
		if x.Down {
			g.line("for %s = %s; %s >= %s; %s-- {", v, g.expr(x.Lo, nil), v, g.expr(x.Hi, nil), v)
		} else {
			g.line("for %s = %s; %s <= %s; %s++ {", v, g.expr(x.Lo, nil), v, g.expr(x.Hi, nil), v)
		}
		g.ind++
		g.nodes(x.Body, pr)
		g.ind--
		g.line("}")
	case *lir.While:
		g.line("for (%s) != 0 {", g.expr(x.Cond, nil))
		g.ind++
		g.nodes(x.Body, pr)
		g.ind--
		g.line("}")
	case *lir.If:
		g.line("if (%s) != 0 {", g.expr(x.Cond, nil))
		g.ind++
		g.nodes(x.Then, pr)
		g.ind--
		if len(x.Else) > 0 {
			g.line("} else {")
			g.ind++
			g.nodes(x.Else, pr)
			g.ind--
		}
		g.line("}")
	case *lir.PartialReduce:
		g.partialReduce(x)
	case *lir.Comm:
		g.line("// comm %s elided in sequential native code", goName(x.Array))
	case *lir.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = g.expr(a, nil)
		}
		g.line("%s(%s)", goName(x.Proc), strings.Join(args, ", "))
		if x.Target != "" {
			g.line("%s = %s", goName(x.Target), goName(x.Proc+".$result"))
		}
	case *lir.Return:
		if x.Value != nil {
			g.line("%s = %s", goName(pr.Name+".$result"), g.expr(x.Value, nil))
		}
		g.line("return")
	case *lir.Writeln:
		var fmts []string
		var args []string
		for _, a := range x.Args {
			if a.Expr != nil {
				fmts = append(fmts, "%g")
				args = append(args, g.expr(a.Expr, nil))
			} else {
				fmts = append(fmts, "%s")
				args = append(args, fmt.Sprintf("%q", a.Str))
			}
		}
		if len(args) == 0 {
			g.line("fmt.Println()")
		} else {
			g.line("fmt.Printf(%q, %s)", strings.Join(fmts, " ")+"\n", strings.Join(args, ", "))
		}
	default:
		g.fail("gogen: unknown node %T", n)
	}
}

// idxVar names the loop index for dimension k (0-based): i1, i2, ...
// for any rank the front end admits.
func idxVar(k int) string { return "i" + strconv.Itoa(k+1) }

// idxSlice builds the index-variable list for a rank-n nest.
func idxSlice(n int) []string {
	idx := make([]string, n)
	for k := range idx {
		idx[k] = idxVar(k)
	}
	return idx
}

// reduceStep emits one accumulation statement dst op= rhs.
func (g *gen) reduceStep(dst string, op air.ReduceOp, rhs string) {
	switch op {
	case air.ReduceSum:
		g.line("%s += %s", dst, rhs)
	case air.ReduceProd:
		g.line("%s *= %s", dst, rhs)
	case air.ReduceMax:
		g.useMath = true
		g.line("%s = math.Max(%s, %s)", dst, dst, rhs)
	case air.ReduceMin:
		g.useMath = true
		g.line("%s = math.Min(%s, %s)", dst, dst, rhs)
	default:
		g.fail("gogen: unknown reduce op %v", op)
	}
}

// partialReduce emits a dimensional reduction: identity-fill the
// destination slab, then sweep the source accumulating into the
// projected element.
func (g *gen) partialReduce(x *lir.PartialReduce) {
	rank := x.Region.Rank()
	idx := idxSlice(rank)
	// The destination element is both written and read by the
	// accumulation; the write site's evidence covers the union of both
	// hulls, so it licenses the whole op= access.
	var site *absint.Site
	if g.bounds != nil {
		site = g.bounds.ReduceStore(x)
	}
	// Identity fill.
	for k := 0; k < rank; k++ {
		v := idx[k]
		g.line("for %s := %d; %s <= %d; %s++ {", v, x.Dest.Lo[k], v, x.Dest.Hi[k], v)
		g.ind++
	}
	g.line("%s = %s", g.indexed(x.LHS, air.Zero(rank), idx, site), g.identity(x.Op))
	for k := 0; k < rank; k++ {
		g.ind--
		g.line("}")
	}
	// Accumulation sweep with projected destination index.
	proj := make([]string, rank)
	for k := 0; k < rank; k++ {
		if x.Dest.Extent(k) == 1 && x.Region.Extent(k) != 1 {
			proj[k] = fmt.Sprintf("%d", x.Dest.Lo[k])
		} else {
			proj[k] = idx[k]
		}
	}
	for k := 0; k < rank; k++ {
		v := idx[k]
		g.line("for %s := %d; %s <= %d; %s++ {", v, x.Region.Lo[k], v, x.Region.Hi[k], v)
		g.ind++
	}
	g.reduceStep(g.indexed(x.LHS, air.Zero(rank), proj, site), x.Op, g.expr(x.Body, idx))
	for k := 0; k < rank; k++ {
		g.ind--
		g.line("}")
	}
}

func (g *gen) nest(n *lir.Nest) {
	rank := n.Region.Rank()
	idx := idxSlice(rank)
	// Reduction initializations.
	for _, s := range n.Body {
		if s.IsReduce {
			g.line("%s = %s", goName(s.Target), g.identity(s.Op))
		}
	}
	for k := 0; k < rank; k++ {
		pi := n.Order[k]
		dim := pi
		if dim < 0 {
			dim = -dim
		}
		v := idx[dim-1]
		lo, hi := n.Region.Lo[dim-1], n.Region.Hi[dim-1]
		if pi > 0 {
			g.line("for %s := %d; %s <= %d; %s++ {", v, lo, v, hi, v)
		} else {
			g.line("for %s := %d; %s >= %d; %s-- {", v, hi, v, lo, v)
		}
		g.ind++
	}
	for i, pl := range n.Preloads {
		var site *absint.Site
		if g.bounds != nil {
			site = g.bounds.PreloadSite(n, i)
		}
		g.line("%s = %s", goName(pl.Var), g.indexed(pl.Array, pl.Off, idx, site))
	}
	for _, s := range n.Body {
		closeGuard := false
		if s.Guard != nil {
			var conds []string
			for d := 0; d < rank; d++ {
				if s.Guard.Lo[d] != n.Region.Lo[d] || s.Guard.Hi[d] != n.Region.Hi[d] {
					conds = append(conds, fmt.Sprintf("%d <= %s && %s <= %d",
						s.Guard.Lo[d], idx[d], idx[d], s.Guard.Hi[d]))
				}
			}
			if len(conds) > 0 {
				g.line("if %s {", strings.Join(conds, " && "))
				g.ind++
				closeGuard = true
			}
		}
		rhs := g.expr(s.RHS, idx)
		switch {
		case s.IsReduce:
			g.reduceStep(goName(s.Target), s.Op, rhs)
		case s.Contracted:
			g.line("%s = %s", goName(s.LHS), rhs)
		default:
			var site *absint.Site
			if g.bounds != nil {
				site = g.bounds.Store(s)
			}
			g.line("%s = %s", g.indexed(s.LHS, air.Zero(rank), idx, site), rhs)
		}
		if closeGuard {
			g.ind--
			g.line("}")
		}
	}
	for k := 0; k < rank; k++ {
		g.ind--
		g.line("}")
	}
}

func (g *gen) identity(op air.ReduceOp) string {
	switch op {
	case air.ReduceProd:
		return "1"
	case air.ReduceMax:
		g.useMath = true
		return "math.Inf(-1)"
	case air.ReduceMin:
		g.useMath = true
		return "math.Inf(1)"
	}
	return "0"
}

// indexed renders one array element access against alloc bounds. The
// checked form is A[flat offset expression] (Go's implicit slice
// check); a ProvenSafe site instead renders as raw pointer arithmetic
// with no check, and a Faulted site renders with its access displaced
// by the injected evidence shift (wrapped into the storage).
func (g *gen) indexed(name string, off air.Offset, idx []string, site *absint.Site) string {
	a := g.p.Source.Arrays[name]
	if a == nil {
		g.fail("gogen: unknown array %s", name)
		return "zaBAD"
	}
	rank := a.Alloc.Rank()
	size := a.Alloc.Size()
	strides := make([]int, rank)
	s := 1
	for k := rank - 1; k >= 0; k-- {
		strides[k] = s
		s *= a.Alloc.Extent(k)
	}
	var terms []string
	base := 0
	for k := 0; k < rank; k++ {
		d := off[k] - a.Alloc.Lo[k]
		base += d * strides[k]
		if strides[k] == 1 {
			terms = append(terms, idx[k])
		} else {
			terms = append(terms, fmt.Sprintf("%d*%s", strides[k], idx[k]))
		}
	}
	expr := strings.Join(terms, "+")
	if base != 0 {
		expr = fmt.Sprintf("%s%+d", expr, base)
	}
	if site != nil && site.Verdict == absint.ProvenSafe && size > 0 {
		if site.FaultShift != 0 {
			g.useWrap = true
			return fmt.Sprintf("%s[za_wrap(%s%+d, %d)]", goName(name), expr, site.FaultShift, size)
		}
		g.useUnsafe = true
		if g.basePtrs == nil {
			g.basePtrs = map[string]bool{}
		}
		g.basePtrs[name] = true
		return fmt.Sprintf("*(*float64)(unsafe.Add(%s, 8*(%s)))", baseName(name), expr)
	}
	return fmt.Sprintf("%s[%s]", goName(name), expr)
}

func (g *gen) expr(e air.Expr, idx []string) string {
	switch x := e.(type) {
	case *air.ConstExpr:
		if x.Val == float64(int64(x.Val)) {
			return fmt.Sprintf("float64(%d)", int64(x.Val))
		}
		return g.floatLit(x.Val)
	case *air.ScalarExpr:
		return goName(x.Name)
	case *air.IndexExpr:
		if idx == nil || x.Dim-1 >= len(idx) {
			g.fail("gogen: index%d outside a nest", x.Dim)
			return "0"
		}
		return "float64(" + idx[x.Dim-1] + ")"
	case *air.RefExpr:
		if info := g.p.Source.Arrays[x.Ref.Array]; info != nil && info.Contracted {
			return goName(x.Ref.Array)
		}
		var site *absint.Site
		if g.bounds != nil {
			site = g.bounds.Read(x)
		}
		return g.indexed(x.Ref.Array, x.Ref.Off, idx, site)
	case *air.BinExpr:
		a, b := g.expr(x.X, idx), g.expr(x.Y, idx)
		switch x.Op {
		case air.OpAdd:
			return "(" + a + " + " + b + ")"
		case air.OpSub:
			return "(" + a + " - " + b + ")"
		case air.OpMul:
			return "(" + a + " * " + b + ")"
		case air.OpDiv:
			return "(" + a + " / " + b + ")"
		case air.OpRem:
			g.useMath = true
			return "math.Mod(" + a + ", " + b + ")"
		case air.OpPow:
			g.useMath = true
			return "math.Pow(" + a + ", " + b + ")"
		case air.OpEq:
			return g.b2f(a + " == " + b)
		case air.OpNe:
			return g.b2f(a + " != " + b)
		case air.OpLt:
			return g.b2f(a + " < " + b)
		case air.OpLe:
			return g.b2f(a + " <= " + b)
		case air.OpGt:
			return g.b2f(a + " > " + b)
		case air.OpGe:
			return g.b2f(a + " >= " + b)
		case air.OpAnd:
			return g.b2f("(" + a + ") != 0 && (" + b + ") != 0")
		case air.OpOr:
			return g.b2f("(" + a + ") != 0 || (" + b + ") != 0")
		}
	case *air.UnExpr:
		a := g.expr(x.X, idx)
		if x.Op == air.OpNot {
			return g.b2f("(" + a + ") == 0")
		}
		return "(-" + a + ")"
	case *air.CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = g.expr(a, idx)
		}
		list := strings.Join(args, ", ")
		switch x.Name {
		case "sqrt", "exp", "log", "sin", "cos", "tan", "abs", "floor", "ceil", "min", "max", "pow", "mod", "atan2":
			fn := map[string]string{
				"sqrt": "Sqrt", "exp": "Exp", "log": "Log", "sin": "Sin",
				"cos": "Cos", "tan": "Tan", "abs": "Abs", "floor": "Floor",
				"ceil": "Ceil", "min": "Min", "max": "Max", "pow": "Pow",
				"mod": "Mod", "atan2": "Atan2",
			}[x.Name]
			g.useMath = true
			return "math." + fn + "(" + list + ")"
		case "sign":
			g.useSign = true
			return "za_sign(" + list + ")"
		}
		g.fail("gogen: unknown builtin %s", x.Name)
		return "0"
	}
	g.fail("gogen: unknown expression %T", e)
	return "0"
}

// b2f wraps a boolean condition into the 0/1 numeric model.
func (g *gen) b2f(cond string) string {
	g.useB2F = true
	return "za_b2f(" + cond + ")"
}
