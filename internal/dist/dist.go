// Package dist provides processor grids and block decompositions for
// distributed execution: every dimension of every array is block
// distributed over a near-square processor grid, the paper's standing
// assumption ("we have assumed that all dimensions of all arrays are
// distributed").
package dist

import (
	"fmt"

	"repro/internal/sema"
)

// Grid arranges P processors over rank dimensions, as square as the
// factorization allows (64 over rank 2 → 8×8; 8 → 4×2).
type Grid struct {
	P    int
	Dims []int // processors per dimension; product == P
}

// NewGrid factors p over rank dimensions. p must be positive; rank in
// [1, 4]. The factorization greedily assigns the largest factors to
// the earliest dimensions while keeping the grid as square as possible.
func NewGrid(p, rank int) (Grid, error) {
	if p <= 0 {
		return Grid{}, fmt.Errorf("dist: nonpositive processor count %d", p)
	}
	if rank < 1 || rank > 4 {
		return Grid{}, fmt.Errorf("dist: unsupported rank %d", rank)
	}
	return Grid{P: p, Dims: factorSquare(p, rank)}, nil
}

// factorSquare splits p into rank factors as evenly as possible.
func factorSquare(p, rank int) []int {
	dims := make([]int, rank)
	for i := range dims {
		dims[i] = 1
	}
	// Extract prime factors, largest first, multiply into the
	// smallest dimension.
	var primes []int
	rem := p
	for f := 2; f*f <= rem; f++ {
		for rem%f == 0 {
			primes = append(primes, f)
			rem /= f
		}
	}
	if rem > 1 {
		primes = append(primes, rem)
	}
	// Multiply from largest to smallest into the least-loaded dim.
	for i := len(primes) - 1; i >= 0; i-- {
		min := 0
		for d := 1; d < rank; d++ {
			if dims[d] < dims[min] {
				min = d
			}
		}
		dims[min] *= primes[i]
	}
	return dims
}

// Coord returns processor proc's grid coordinates (row-major rank).
func (g Grid) Coord(proc int) []int {
	c := make([]int, len(g.Dims))
	for d := len(g.Dims) - 1; d >= 0; d-- {
		c[d] = proc % g.Dims[d]
		proc /= g.Dims[d]
	}
	return c
}

// Proc returns the processor at the given coordinates, or -1 when a
// coordinate is out of the grid.
func (g Grid) Proc(coord []int) int {
	p := 0
	for d, c := range coord {
		if c < 0 || c >= g.Dims[d] {
			return -1
		}
		p = p*g.Dims[d] + c
	}
	return p
}

// BlockRange splits the inclusive range [lo, hi] into parts contiguous
// blocks and returns block idx's bounds. Remainder elements go to the
// leading blocks, so sizes differ by at most one. Empty blocks return
// lo > hi.
func BlockRange(lo, hi, parts, idx int) (int, int) {
	n := hi - lo + 1
	if n < 0 || parts <= 0 || idx < 0 || idx >= parts {
		return 0, -1
	}
	base := n / parts
	extra := n % parts
	start := lo + idx*base + min(idx, extra)
	size := base
	if idx < extra {
		size++
	}
	return start, start + size - 1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Decomp is a block decomposition of an anchor index space over a grid.
// Ownership of every index is defined by the anchor, so arrays and
// statement regions of the same rank partition consistently.
type Decomp struct {
	Grid   Grid
	Anchor *sema.Region
}

// NewDecomp builds a decomposition of anchor over p processors.
func NewDecomp(p int, anchor *sema.Region) (*Decomp, error) {
	g, err := NewGrid(p, anchor.Rank())
	if err != nil {
		return nil, err
	}
	return &Decomp{Grid: g, Anchor: anchor}, nil
}

// Block returns processor proc's owned sub-rectangle of the anchor.
// Some dimensions may be empty (lo > hi) when the grid outnumbers the
// extent.
func (d *Decomp) Block(proc int) *sema.Region {
	coord := d.Grid.Coord(proc)
	lo := make([]int, d.Anchor.Rank())
	hi := make([]int, d.Anchor.Rank())
	for k := 0; k < d.Anchor.Rank(); k++ {
		lo[k], hi[k] = BlockRange(d.Anchor.Lo[k], d.Anchor.Hi[k], d.Grid.Dims[k], coord[k])
	}
	return &sema.Region{Lo: lo, Hi: hi}
}

// Owner returns the processor owning index idx, or -1 when idx lies
// outside the anchor.
func (d *Decomp) Owner(idx []int) int {
	coord := make([]int, d.Anchor.Rank())
	for k := 0; k < d.Anchor.Rank(); k++ {
		if idx[k] < d.Anchor.Lo[k] || idx[k] > d.Anchor.Hi[k] {
			return -1
		}
		// Invert BlockRange: find the block containing idx[k].
		n := d.Anchor.Extent(k)
		parts := d.Grid.Dims[k]
		base := n / parts
		extra := n % parts
		off := idx[k] - d.Anchor.Lo[k]
		// The first `extra` blocks have size base+1.
		var b int
		if off < extra*(base+1) {
			if base+1 == 0 {
				return -1
			}
			b = off / (base + 1)
		} else {
			if base == 0 {
				return -1
			}
			b = extra + (off-extra*(base+1))/base
		}
		coord[k] = b
	}
	return d.Grid.Proc(coord)
}

// Intersect returns the intersection of two regions; empty dims yield
// lo > hi.
func Intersect(a, b *sema.Region) *sema.Region {
	lo := make([]int, a.Rank())
	hi := make([]int, a.Rank())
	for k := range lo {
		lo[k] = maxInt(a.Lo[k], b.Lo[k])
		hi[k] = minInt(a.Hi[k], b.Hi[k])
	}
	return &sema.Region{Lo: lo, Hi: hi}
}

// Empty reports whether the region has an empty dimension.
func Empty(r *sema.Region) bool {
	for k := range r.Lo {
		if r.Lo[k] > r.Hi[k] {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
