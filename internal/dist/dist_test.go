package dist

import (
	"testing"
	"testing/quick"

	"repro/internal/sema"
)

func TestGridFactorization(t *testing.T) {
	cases := []struct {
		p, rank int
		want    []int
	}{
		{1, 2, []int{1, 1}},
		{4, 2, []int{2, 2}},
		{16, 2, []int{4, 4}},
		{64, 2, []int{8, 8}},
		{8, 2, []int{4, 2}},
		{6, 2, []int{3, 2}},
		{5, 1, []int{5}},
		{12, 3, []int{3, 2, 2}},
	}
	for _, c := range cases {
		g, err := NewGrid(c.p, c.rank)
		if err != nil {
			t.Fatalf("NewGrid(%d,%d): %v", c.p, c.rank, err)
		}
		prod := 1
		for _, d := range g.Dims {
			prod *= d
		}
		if prod != c.p {
			t.Errorf("grid %v does not multiply to %d", g.Dims, c.p)
		}
		for i, d := range c.want {
			if g.Dims[i] != d {
				t.Errorf("NewGrid(%d,%d) = %v, want %v", c.p, c.rank, g.Dims, c.want)
				break
			}
		}
	}
	if _, err := NewGrid(0, 2); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestCoordProcRoundTrip(t *testing.T) {
	g, _ := NewGrid(12, 2)
	for p := 0; p < 12; p++ {
		if got := g.Proc(g.Coord(p)); got != p {
			t.Errorf("Proc(Coord(%d)) = %d", p, got)
		}
	}
	if g.Proc([]int{99, 0}) != -1 {
		t.Error("out-of-grid coord accepted")
	}
}

func TestBlockRangePartition(t *testing.T) {
	// Blocks must tile the range exactly with sizes differing by <= 1.
	lo, hi, parts := 1, 17, 4
	next := lo
	sizes := map[int]bool{}
	for i := 0; i < parts; i++ {
		a, b := BlockRange(lo, hi, parts, i)
		if a != next {
			t.Errorf("block %d starts at %d, want %d", i, a, next)
		}
		sizes[b-a+1] = true
		next = b + 1
	}
	if next != hi+1 {
		t.Errorf("blocks end at %d, want %d", next-1, hi)
	}
	if len(sizes) > 2 {
		t.Errorf("block sizes vary too much: %v", sizes)
	}
}

func TestDecompOwnership(t *testing.T) {
	anchor := &sema.Region{Lo: []int{1, 1}, Hi: []int{16, 16}}
	d, err := NewDecomp(4, anchor)
	if err != nil {
		t.Fatal(err)
	}
	// Every anchor index is owned by exactly the processor whose
	// block contains it.
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 16; j++ {
			owner := d.Owner([]int{i, j})
			if owner < 0 || owner >= 4 {
				t.Fatalf("Owner(%d,%d) = %d", i, j, owner)
			}
			blk := d.Block(owner)
			if i < blk.Lo[0] || i > blk.Hi[0] || j < blk.Lo[1] || j > blk.Hi[1] {
				t.Fatalf("index (%d,%d) not in owner %d's block %s", i, j, owner, blk)
			}
		}
	}
	if d.Owner([]int{0, 5}) != -1 || d.Owner([]int{5, 17}) != -1 {
		t.Error("outside indices must have no owner")
	}
}

// Property: blocks partition the anchor (disjoint union).
func TestQuickBlocksPartition(t *testing.T) {
	f := func(pRaw, nRaw uint8) bool {
		p := int(pRaw%16) + 1
		n := int(nRaw%20) + p // ensure extent >= grid
		anchor := &sema.Region{Lo: []int{1, 1}, Hi: []int{n, n}}
		d, err := NewDecomp(p, anchor)
		if err != nil {
			return false
		}
		count := 0
		for proc := 0; proc < p; proc++ {
			b := d.Block(proc)
			if Empty(b) {
				continue
			}
			count += b.Size()
			// Every element of the block reports proc as owner.
			if d.Owner([]int{b.Lo[0], b.Lo[1]}) != proc {
				return false
			}
			if d.Owner([]int{b.Hi[0], b.Hi[1]}) != proc {
				return false
			}
		}
		return count == anchor.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntersectAndEmpty(t *testing.T) {
	a := &sema.Region{Lo: []int{1, 1}, Hi: []int{8, 8}}
	b := &sema.Region{Lo: []int{5, 0}, Hi: []int{12, 3}}
	x := Intersect(a, b)
	if x.Lo[0] != 5 || x.Hi[0] != 8 || x.Lo[1] != 1 || x.Hi[1] != 3 {
		t.Errorf("Intersect = %s", x)
	}
	if Empty(x) {
		t.Error("nonempty intersection reported empty")
	}
	c := &sema.Region{Lo: []int{9, 1}, Hi: []int{12, 8}}
	if !Empty(Intersect(a, c)) {
		t.Error("disjoint intersection not empty")
	}
}

func TestRankOneDecomp(t *testing.T) {
	anchor := &sema.Region{Lo: []int{1}, Hi: []int{100}}
	d, err := NewDecomp(7, anchor)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 7; p++ {
		b := d.Block(p)
		total += b.Size()
	}
	if total != 100 {
		t.Errorf("blocks cover %d of 100", total)
	}
	if d.Owner([]int{1}) != 0 || d.Owner([]int{100}) != 6 {
		t.Errorf("edge ownership wrong: %d %d", d.Owner([]int{1}), d.Owner([]int{100}))
	}
}

func TestMoreProcsThanElements(t *testing.T) {
	anchor := &sema.Region{Lo: []int{1}, Hi: []int{3}}
	d, err := NewDecomp(5, anchor)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for p := 0; p < 5; p++ {
		if !Empty(d.Block(p)) {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Errorf("%d non-empty blocks for 3 elements", nonEmpty)
	}
}
