package tune

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/core"
	"repro/internal/dep"
)

// SearchOptions bounds the per-block plan search.
type SearchOptions struct {
	// Beam is the beam width of the fallback search (default 8).
	Beam int
	// ExhaustiveVertices is the largest fusible-vertex count for
	// which exhaustive set-partition enumeration is attempted
	// (default 12). Above it, beam search runs directly.
	ExhaustiveVertices int
	// MaxStates aborts exhaustive enumeration after this many
	// recursion states and falls back to beam search (default 200000),
	// bounding the Bell-number blowup.
	MaxStates int
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.Beam <= 0 {
		o.Beam = 8
	}
	if o.ExhaustiveVertices <= 0 {
		o.ExhaustiveVertices = 12
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 200000
	}
	return o
}

// BlockSearch is the outcome of searching one block.
type BlockSearch struct {
	Part       *core.Partition
	Contracted map[string]bool
	Score      float64
	// Proven is true when exhaustive enumeration completed: the
	// partition is optimal under the model over the entire legal
	// plan space of the block.
	Proven bool
	// States counts enumeration/beam states explored.
	States int
	// Method is "exhaustive" or "beam".
	Method string
}

// maximalContraction contracts every candidate the partition permits:
// for a fixed partition, contraction only removes memory traffic
// (models must honor this), so the maximal legal set is optimal.
func maximalContraction(p *core.Partition, candidates []string) map[string]bool {
	out := map[string]bool{}
	for _, x := range candidates {
		cs := p.ClustersReferencing(x)
		if len(cs) == 1 && core.ContractionOK(p, x, cs) {
			out[x] = true
		}
	}
	return out
}

// searchBlock finds the best legal plan for one block: exhaustive
// when the fusible-vertex count permits, beam search otherwise (or
// when the state budget aborts enumeration).
func searchBlock(ctx context.Context, prog *air.Program, g *asdg.Graph,
	candidates []string, model CostModel, opts SearchOptions) (*BlockSearch, error) {

	opts = opts.withDefaults()
	var fusible []int
	for v := 0; v < g.N(); v++ {
		if g.IsFusible(v) {
			fusible = append(fusible, v)
		}
	}
	if len(fusible) <= opts.ExhaustiveVertices {
		res, complete, err := exhaustive(ctx, prog, g, fusible, candidates, model, opts)
		if err != nil {
			return nil, err
		}
		if complete {
			return res, nil
		}
	}
	return beamSearch(ctx, prog, g, candidates, model, opts)
}

// clusterLegal re-proves the cluster-internal Definition 5 conditions
// for a vertex set: fusibility, conformable regions (Translates),
// shared communication segment, vector-labelled internal dependences
// with null flow (Theorem 2), and an existing loop structure
// (Theorem 1). These conditions are monotone — adding a vertex can
// only add constraints — which is what makes pruning partial
// enumeration states sound. Acyclicity of the condensation is NOT
// checked here; it is a whole-partition property checked at leaves.
func clusterLegal(g *asdg.Graph, members []int) bool {
	if len(members) < 2 {
		return true
	}
	reg0 := g.StmtRegion(members[0])
	if reg0 == nil {
		return false
	}
	in := map[int]bool{}
	for _, v := range members {
		if !g.IsFusible(v) {
			return false
		}
		r := g.StmtRegion(v)
		if r == nil || !core.Translates(reg0, r) {
			return false
		}
		if g.Seg != nil && g.Seg[v] != g.Seg[members[0]] {
			return false
		}
		in[v] = true
	}
	var vectors []air.Offset
	for _, e := range g.Edges {
		if !in[e.From] || !in[e.To] {
			continue
		}
		for _, it := range e.Items {
			if !it.Vector {
				return false
			}
			if it.Kind == dep.Flow && !it.U.IsZero() {
				return false
			}
			vectors = append(vectors, it.U)
		}
	}
	_, ok := core.FindLoopStructure(reg0.Rank(), vectors)
	return ok
}

// exhaustive enumerates every set partition of the block's fusible
// vertices in restricted-growth order, pruning a branch as soon as a
// group violates a monotone cluster-internal condition, and checking
// condensation acyclicity at each leaf. complete is false when the
// state budget ran out — the caller falls back to beam search.
func exhaustive(ctx context.Context, prog *air.Program, g *asdg.Graph,
	fusible []int, candidates []string, model CostModel,
	opts SearchOptions) (*BlockSearch, bool, error) {

	best := &BlockSearch{Score: -1, Proven: true, Method: "exhaustive"}
	states := 0
	var groups [][]int
	var ctxErr error

	var assign func(i int) bool // false = budget exhausted / cancelled
	assign = func(i int) bool {
		states++
		if states%1024 == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		if states > opts.MaxStates {
			return false
		}
		if i == len(fusible) {
			clusters := make([][]int, len(groups))
			for gi, ms := range groups {
				clusters[gi] = append([]int(nil), ms...)
			}
			p, err := core.FromClusters(g, clusters)
			if err != nil || !p.Acyclic() {
				return true
			}
			contracted := maximalContraction(p, candidates)
			score := model.BlockScore(prog, g, p, contracted)
			if best.Part == nil || score < best.Score {
				best.Part, best.Contracted, best.Score = p, contracted, score
			}
			return true
		}
		v := fusible[i]
		for gi := range groups {
			groups[gi] = append(groups[gi], v)
			if clusterLegal(g, groups[gi]) {
				if !assign(i + 1) {
					return false
				}
			}
			groups[gi] = groups[gi][:len(groups[gi])-1]
		}
		groups = append(groups, []int{v})
		ok := assign(i + 1)
		groups = groups[:len(groups)-1]
		return ok
	}
	complete := assign(0)
	best.States = states
	if ctxErr != nil {
		return nil, false, ctxErr
	}
	if !complete || best.Part == nil {
		return nil, false, nil
	}
	return best, true, nil
}

// partSig is a canonical signature of a partition for deduplication.
func partSig(p *core.Partition) string {
	n := p.G.N()
	sig := make([]byte, 0, n*3)
	for v := 0; v < n; v++ {
		sig = append(sig, byte(p.ClusterOf(v)), byte(p.ClusterOf(v)>>8), ',')
	}
	return string(sig)
}

// beamSearch explores merges from a seed population: the trivial
// partition plus every §5.4 ladder partition (so the tuned score can
// never exceed any heuristic's), expanding each beam state by every
// legal cluster-pair merge (closed under Grow), and keeping the
// best-scoring `Beam` distinct states per round. Merges strictly
// shrink the cluster count, so the search terminates in at most N
// rounds.
func beamSearch(ctx context.Context, prog *air.Program, g *asdg.Graph,
	candidates []string, model CostModel, opts SearchOptions) (*BlockSearch, error) {

	opts = opts.withDefaults()
	type state struct {
		p          *core.Partition
		contracted map[string]bool
		score      float64
	}
	mk := func(p *core.Partition) state {
		c := maximalContraction(p, candidates)
		return state{p: p, contracted: c, score: model.BlockScore(prog, g, p, c)}
	}

	seenSig := map[string]bool{}
	var beam []state
	admit := func(s state) bool {
		sig := partSig(s.p)
		if seenSig[sig] {
			return false
		}
		seenSig[sig] = true
		beam = append(beam, s)
		return true
	}
	admit(mk(core.Trivial(g)))
	for _, lvl := range core.AllLevels() {
		p, _ := core.LadderPartition(prog, g, lvl, candidates)
		admit(mk(p))
	}
	sort.SliceStable(beam, func(i, j int) bool { return beam[i].score < beam[j].score })
	if len(beam) > opts.Beam {
		beam = beam[:opts.Beam]
	}
	best := beam[0]
	states := len(beam)

	for round := 0; round < g.N()+1; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []state
		grew := false
		for _, s := range beam {
			cl := s.p.Clusters()
			for i := 0; i < len(cl); i++ {
				for j := i + 1; j < len(cl); j++ {
					cs := map[int]bool{cl[i]: true, cl[j]: true}
					for d := range s.p.Grow(cs) {
						cs[d] = true
					}
					if !core.FusionOK(s.p, cs) {
						continue
					}
					q := s.p.Clone()
					q.MergeSet(cs)
					sig := partSig(q)
					if seenSig[sig] {
						continue
					}
					seenSig[sig] = true
					ns := mk(q)
					states++
					next = append(next, ns)
					grew = true
					if ns.score < best.score {
						best = ns
					}
				}
			}
		}
		if !grew {
			break
		}
		pool := append(beam, next...)
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].score < pool[j].score })
		if len(pool) > opts.Beam {
			pool = pool[:opts.Beam]
		}
		beam = pool
	}
	return &BlockSearch{
		Part: best.p, Contracted: best.contracted, Score: best.score,
		States: states, Method: "beam",
	}, nil
}

// String renders the outcome for logs.
func (b *BlockSearch) String() string {
	return fmt.Sprintf("%s search: score %.0f, %d states, %d clusters",
		b.Method, b.Score, b.States, b.Part.NumClusters())
}
