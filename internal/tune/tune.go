package tune

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/backend"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/liveness"
	"repro/internal/lower"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/vm"
)

// CompileError marks a failure of the source itself (parse, sema,
// lower) as opposed to a failure of the search: the CLI and service
// map it to exit code 3 / HTTP 422.
type CompileError struct{ Err error }

func (e *CompileError) Error() string { return e.Err.Error() }
func (e *CompileError) Unwrap() error { return e.Err }

// Options configures one tuning run.
type Options struct {
	// Level is the ladder heuristic the search competes against
	// (the headline comparison); default C2F4, the strongest rung.
	Level core.Level
	// Model scores candidates; nil means the analytic cycle model on
	// the Cray T3E.
	Model CostModel
	// Configs overrides config constants (problem size).
	Configs map[string]int64
	// Comm, when non-nil with Procs > 1, tunes the distributed
	// compilation: communication is inserted before planning, exactly
	// as the driver would, and the FavorComm segment constraint is
	// enforced on every candidate.
	Comm *comm.Options
	// Search bounds the per-block search.
	Search SearchOptions
	// Measure additionally compiles and runs the top-K candidate
	// plans and picks the winner by wall clock (single-process only).
	Measure bool
	// Backend selects the measured-mode execution engine: the VM
	// (default) or the native backend (BackendGo), which builds each
	// candidate through the artifact store and times the binary — so
	// the measurement reflects the engine the user will actually run.
	Backend driver.Backend
	// TopK is the measured-mode candidate count (default 3; the
	// tuned plan and the comparison heuristic are always included).
	TopK int
}

func (o Options) model() CostModel {
	if o.Model != nil {
		return o.Model
	}
	return CycleModel{M: machine.T3E(), Procs: o.procs()}
}

func (o Options) procs() int {
	if o.Comm != nil && o.Comm.Procs > 1 {
		return o.Comm.Procs
	}
	return 1
}

// BlockStats reports one block's search outcome.
type BlockStats struct {
	Block          int     `json:"block"`
	Stmts          int     `json:"stmts"`
	Fusible        int     `json:"fusible"`
	States         int     `json:"states"`
	Method         string  `json:"method"` // exhaustive | beam
	Exhaustive     bool    `json:"exhaustive"`
	HeuristicScore float64 `json:"heuristic_score"`
	TunedScore     float64 `json:"tuned_score"`
}

// Measured is one measured-mode candidate execution.
type Measured struct {
	Name       string  `json:"name"` // "tuned" or a ladder level
	ModelScore float64 `json:"model_score"`
	WallMS     float64 `json:"wall_ms"`
	Steps      int64   `json:"steps"`
}

// Result is the outcome of one tuning run.
type Result struct {
	Spec           *core.PlanSpec     `json:"spec"`
	Model          string             `json:"model"`
	HeuristicLevel string             `json:"heuristic_level"`
	HeuristicScore float64            `json:"heuristic_score"`
	TunedScore     float64            `json:"tuned_score"`
	// Proven is true when every block was searched exhaustively: the
	// tuned plan is optimal under the model, so the heuristic's gap
	// to it is a gap to the true optimum.
	Proven         bool               `json:"proven"`
	ImprovementPct float64            `json:"improvement_pct"`
	Winner         string             `json:"winner"` // tuned | tie
	LevelScores    map[string]float64 `json:"level_scores"`
	Blocks         []BlockStats       `json:"blocks"`
	Measured       []Measured         `json:"measured,omitempty"`
	// MeasuredBackend names the engine the measured-mode wall clocks
	// timed ("vm" or "go"); empty without Measure.
	MeasuredBackend string `json:"measured_backend,omitempty"`
}

// frontEnd replicates the driver pipeline up to the planning phase:
// parse, sema (with config overrides), lower, and — for distributed
// tuning — communication insertion with the derived core.Config.
func frontEnd(src string, configs map[string]int64, commOpt *comm.Options) (*air.Program, core.Config, error) {
	var cfg core.Config
	var errs source.ErrorList
	prog := parser.Parse(src, &errs)
	if errs.HasErrors() {
		return nil, cfg, &CompileError{errs.Err()}
	}
	info := sema.Check(prog, configs, &errs)
	if errs.HasErrors() {
		return nil, cfg, &CompileError{errs.Err()}
	}
	airProg := lower.Lower(info, &errs)
	if errs.HasErrors() {
		return nil, cfg, &CompileError{errs.Err()}
	}
	if commOpt != nil && commOpt.Procs > 1 {
		comm.Insert(airProg, *commOpt)
		cfg.DisableRealign = true
		if commOpt.Strategy == comm.FavorComm {
			cfg.SegmentFn = comm.Segments
		}
	}
	return airProg, cfg, nil
}

// Tune searches for the best legal fusion/contraction plan of the
// program and compares it to the strategy ladder. The returned spec
// always scores no worse than the comparison heuristic: the beam
// search is seeded with every ladder partition, and exhaustive
// enumeration covers the whole legal space.
func Tune(ctx context.Context, src string, opt Options) (*Result, error) {
	model := opt.model()
	prog, cfg, err := frontEnd(src, opt.Configs, opt.Comm)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cands := liveness.Candidates(prog)
	realign := opt.Level.FusesUsers() && !cfg.DisableRealign

	res := &Result{
		Spec:           &core.PlanSpec{Version: core.SpecVersion, Realign: realign},
		Model:          model.Name(),
		HeuristicLevel: opt.Level.String(),
		Proven:         true,
		LevelScores:    map[string]float64{},
	}

	for bi, b := range prog.AllBlocks() {
		candidates := cands[b]
		if realign {
			core.RealignTemps(prog, b, candidates)
		}
		g := asdg.Build(b.Stmts)
		if cfg.SegmentFn != nil {
			g.Seg = cfg.SegmentFn(b.Stmts)
		}

		heurP, heurC := core.LadderPartition(prog, g, opt.Level, candidates)
		heurScore := model.BlockScore(prog, g, heurP, heurC)

		bs, err := searchBlock(ctx, prog, g, candidates, model, opt.Search)
		if err != nil {
			return nil, err
		}
		if bs.Score > heurScore {
			// Defensive: the search is seeded with the ladder, so this
			// cannot happen; if it ever did, fall back to the heuristic
			// partition with maximal contraction.
			bs.Part = heurP
			bs.Contracted = maximalContraction(heurP, candidates)
			bs.Score = model.BlockScore(prog, g, heurP, bs.Contracted)
			bs.Proven = false
		}

		bspec := core.BlockSpec{Block: bi}
		for _, c := range bs.Part.Clusters() {
			if ms := bs.Part.Members(c); len(ms) >= 2 {
				bspec.Clusters = append(bspec.Clusters, ms)
			}
		}
		for x := range bs.Contracted {
			bspec.Contract = append(bspec.Contract, x)
		}
		sort.Strings(bspec.Contract)
		res.Spec.Blocks = append(res.Spec.Blocks, bspec)

		fus := 0
		for v := 0; v < g.N(); v++ {
			if g.IsFusible(v) {
				fus++
			}
		}
		res.Blocks = append(res.Blocks, BlockStats{
			Block: bi, Stmts: g.N(), Fusible: fus,
			States: bs.States, Method: bs.Method, Exhaustive: bs.Proven,
			HeuristicScore: heurScore, TunedScore: bs.Score,
		})
		res.HeuristicScore += heurScore
		res.TunedScore += bs.Score
		res.Proven = res.Proven && bs.Proven
	}

	if res.HeuristicScore > 0 {
		res.ImprovementPct = (res.HeuristicScore - res.TunedScore) / res.HeuristicScore * 100
	}
	if res.TunedScore < res.HeuristicScore {
		res.Winner = "tuned"
	} else {
		res.Winner = "tie"
	}
	method := "beam"
	if res.Proven {
		method = "exhaustive"
	}
	res.Spec.Note = fmt.Sprintf("plan chosen by %s search, model %s, score %.0f vs %s %.0f (%+.1f%%)",
		method, model.Name(), res.TunedScore, res.HeuristicLevel,
		res.HeuristicScore, -res.ImprovementPct)

	// Score every ladder rung for the comparison table, each through
	// its own fresh front end (realignment mutates the AIR).
	for _, lvl := range core.AllLevels() {
		s, err := scoreLevel(src, opt, lvl, model)
		if err != nil {
			return nil, err
		}
		res.LevelScores[lvl.String()] = s
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	if opt.Measure {
		if err := measure(ctx, src, opt, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// scoreLevel compiles the program fresh at one ladder level and sums
// the model score over its blocks.
func scoreLevel(src string, opt Options, lvl core.Level, model CostModel) (float64, error) {
	prog, cfg, err := frontEnd(src, opt.Configs, opt.Comm)
	if err != nil {
		return 0, err
	}
	plan := core.ApplyEx(prog, lvl, cfg)
	total := 0.0
	for _, bp := range plan.Blocks {
		contracted := map[string]bool{}
		for _, x := range bp.Contracted {
			contracted[x] = true
		}
		total += model.BlockScore(prog, bp.Graph, bp.Part, contracted)
	}
	return total, nil
}

// measure runs the top-K candidates (the tuned plan plus the
// best-scoring ladder rungs) on the selected backend and records
// wall-clock times; the fastest becomes the winner. With the native
// backend each candidate is built through the artifact store first,
// so only execution — not the toolchain — is timed.
func measure(ctx context.Context, src string, opt Options, res *Result) error {
	if opt.procs() > 1 {
		return fmt.Errorf("measured mode requires a single process")
	}
	var store *backend.Store
	if opt.Backend.Native() {
		if !backend.Available() {
			return fmt.Errorf("measured mode on the native backend requires a go toolchain on PATH")
		}
		s, err := backend.Open("")
		if err != nil {
			return err
		}
		store = s
	}
	topK := opt.TopK
	if topK <= 0 {
		topK = 3
	}

	type cand struct {
		name  string
		score float64
		dopt  driver.Options
	}
	cands := []cand{{
		name: "tuned", score: res.TunedScore,
		dopt: driver.Options{Configs: opt.Configs, Plan: res.Spec},
	}, {
		name: res.HeuristicLevel, score: res.HeuristicScore,
		dopt: driver.Options{Configs: opt.Configs, Level: opt.Level},
	}}
	var rest []cand
	for _, lvl := range core.AllLevels() {
		if lvl == opt.Level {
			continue
		}
		rest = append(rest, cand{
			name: lvl.String(), score: res.LevelScores[lvl.String()],
			dopt: driver.Options{Configs: opt.Configs, Level: lvl},
		})
	}
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].score < rest[j].score })
	cands = append(cands, rest...)
	if len(cands) > topK {
		cands = cands[:topK]
	}

	res.MeasuredBackend = string(opt.Backend)
	if res.MeasuredBackend == "" {
		res.MeasuredBackend = string(driver.BackendVM)
	}
	bestMS := -1.0
	for _, c := range cands {
		c.dopt.Backend = opt.Backend
		comp, err := driver.CompileCtx(ctx, src, c.dopt)
		if err != nil {
			return fmt.Errorf("measured mode: compiling %s: %w", c.name, err)
		}
		var ms float64
		var steps int64
		if store != nil {
			art, _, err := store.BuildProgramBounds(ctx, comp.LIR, comp.Bounds)
			if err != nil {
				return fmt.Errorf("measured mode: building %s: %w", c.name, err)
			}
			start := time.Now()
			if _, err := art.Run(ctx, io.Discard); err != nil {
				return fmt.Errorf("measured mode: running %s: %w", c.name, err)
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
		} else {
			start := time.Now()
			_, r, err := comp.Run(vm.Options{Ctx: ctx})
			if err != nil {
				return fmt.Errorf("measured mode: running %s: %w", c.name, err)
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
			steps = r.Steps
		}
		res.Measured = append(res.Measured, Measured{
			Name: c.name, ModelScore: c.score, WallMS: ms, Steps: steps,
		})
		if bestMS < 0 || ms < bestMS {
			bestMS = ms
			res.Winner = c.name
		}
	}
	return nil
}
