package tune

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/machine"
	"repro/internal/programs"
	"repro/internal/vm"
)

func commOptions(p int) comm.Options { return comm.DefaultOptions(p) }

// smallConfigs shrinks each benchmark so VM runs stay fast.
func smallConfigs(b programs.Benchmark) map[string]int64 {
	size := int64(24)
	if b.Rank == 1 {
		size = 256
	}
	return map[string]int64{b.SizeConfig: size}
}

// TestTunedNeverWorseThanHeuristic is the core guarantee: across all
// six benchmarks and both cost models, the tuned score is never worse
// than the c2+f4 heuristic's, and the per-level comparison score for
// the heuristic agrees with the tuner's own front-end computation.
func TestTunedNeverWorseThanHeuristic(t *testing.T) {
	models := []CostModel{
		CycleModel{M: machine.T3E(), Procs: 1},
		CacheModel{M: machine.SP2(), Procs: 1, MaxCells: 128},
	}
	// The guarantee is bound-independent (the ladder seeds the beam),
	// so keep the search small across the 12-configuration matrix.
	bounds := SearchOptions{Beam: 4, ExhaustiveVertices: 6, MaxStates: 5000}
	for _, b := range programs.All() {
		for _, m := range models {
			res, err := Tune(context.Background(), b.Source, Options{
				Level:   core.C2F4,
				Model:   m,
				Configs: smallConfigs(b),
				Search:  bounds,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, m.Name(), err)
			}
			if res.TunedScore > res.HeuristicScore {
				t.Errorf("%s/%s: tuned %.0f > heuristic %.0f",
					b.Name, m.Name(), res.TunedScore, res.HeuristicScore)
			}
			if got := res.LevelScores["c2+f4"]; math.Abs(got-res.HeuristicScore) > 1e-6 {
				t.Errorf("%s/%s: LevelScores[c2+f4]=%.2f but heuristic front end scored %.2f",
					b.Name, m.Name(), got, res.HeuristicScore)
			}
			if len(res.Blocks) == 0 {
				t.Errorf("%s/%s: no block stats", b.Name, m.Name())
			}
		}
	}
}

// TestExhaustiveProvesSmallBenchmark pins that exhaustive enumeration
// terminates on a benchmark whose blocks are all small (frac), giving
// a proven-optimal plan.
func TestExhaustiveProvesSmallBenchmark(t *testing.T) {
	b, _ := programs.ByName("frac")
	res, err := Tune(context.Background(), b.Source, Options{
		Level: core.C2F4, Configs: smallConfigs(b),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Errorf("frac not proven optimal; blocks: %+v", res.Blocks)
	}
	for _, bs := range res.Blocks {
		if bs.Method != "exhaustive" {
			t.Errorf("block %d searched by %s, want exhaustive", bs.Block, bs.Method)
		}
	}
}

// TestLargeBlocksFallBackToBeam pins the fallback path: a benchmark
// with a large block (sp: 25 fusible statements) must use beam search
// there without erroring, still beating or matching the heuristic.
func TestLargeBlocksFallBackToBeam(t *testing.T) {
	b, _ := programs.ByName("sp")
	res, err := Tune(context.Background(), b.Source, Options{
		Level: core.C2F4, Configs: smallConfigs(b),
	})
	if err != nil {
		t.Fatal(err)
	}
	beam := false
	for _, bs := range res.Blocks {
		if bs.Method == "beam" {
			beam = true
		}
	}
	if !beam {
		t.Error("sp used no beam search — exhaustive threshold regressed?")
	}
	if res.Proven {
		t.Error("sp reported proven despite beam blocks")
	}
	if res.TunedScore > res.HeuristicScore {
		t.Errorf("tuned %.0f > heuristic %.0f", res.TunedScore, res.HeuristicScore)
	}
}

// runOutput compiles with the given options (static verifier on) and
// returns the VM's output bytes and checksum-bearing final state.
func runOutput(t *testing.T, src string, dopt driver.Options) []byte {
	t.Helper()
	dopt.Check = true
	comp, err := driver.Compile(src, dopt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out bytes.Buffer
	if _, _, err := comp.Run(vm.Options{Out: &out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.Bytes()
}

// TestTunedPlanBitIdentical is the differential satellite: for every
// benchmark, the tuned plan (a) passes the static verifier's fusion
// and contraction passes when applied through the driver, and (b)
// produces bit-identical VM output to the baseline (unoptimized)
// plan. Tuning must never change semantics.
func TestTunedPlanBitIdentical(t *testing.T) {
	for _, b := range programs.All() {
		cfgs := smallConfigs(b)
		res, err := Tune(context.Background(), b.Source, Options{
			Level: core.C2F4, Configs: cfgs,
		})
		if err != nil {
			t.Fatalf("%s: tune: %v", b.Name, err)
		}
		baseline := runOutput(t, b.Source, driver.Options{Configs: cfgs, Level: core.Baseline})
		tuned := runOutput(t, b.Source, driver.Options{Configs: cfgs, Plan: res.Spec})
		if !bytes.Equal(baseline, tuned) {
			t.Errorf("%s: tuned output differs from baseline:\nbaseline: %s\ntuned:    %s",
				b.Name, baseline, tuned)
		}
	}
}

// TestTunedPlanBitIdenticalDistributed repeats the differential test
// for a distributed compilation of one stencil benchmark, exercising
// the segment constraint and the DisableRealign path.
func TestTunedPlanBitIdenticalDistributed(t *testing.T) {
	b, _ := programs.ByName("simple")
	cfgs := smallConfigs(b)
	copt := commOptions(4)
	res, err := Tune(context.Background(), b.Source, Options{
		Level: core.C2F4, Configs: cfgs, Comm: &copt,
	})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	baseline := runOutput(t, b.Source, driver.Options{Configs: cfgs, Level: core.Baseline})
	tuned := runOutput(t, b.Source, driver.Options{Configs: cfgs, Plan: res.Spec, Comm: &copt})
	if !bytes.Equal(baseline, tuned) {
		t.Errorf("distributed tuned output differs:\nbaseline: %s\ntuned:    %s", baseline, tuned)
	}
	if res.Spec.Realign {
		t.Error("distributed spec requests realignment (must be disabled when distributed)")
	}
}

// TestMeasuredMode smoke-tests measured mode on the smallest
// benchmark: every candidate runs, times are recorded, and the
// winner names one of them.
func TestMeasuredMode(t *testing.T) {
	b, _ := programs.ByName("frac")
	res, err := Tune(context.Background(), b.Source, Options{
		Level: core.C2F4, Configs: smallConfigs(b), Measure: true, TopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != 3 {
		t.Fatalf("measured %d candidates, want 3", len(res.Measured))
	}
	names := map[string]bool{}
	for _, m := range res.Measured {
		if m.WallMS < 0 || m.Steps <= 0 {
			t.Errorf("candidate %s: wall %.3fms steps %d", m.Name, m.WallMS, m.Steps)
		}
		names[m.Name] = true
	}
	if !names["tuned"] || !names["c2+f4"] {
		t.Errorf("measured set %v missing tuned or c2+f4", names)
	}
	if !names[res.Winner] {
		t.Errorf("winner %q not among measured candidates", res.Winner)
	}
}

// TestTuneHonorsDeadline pins the timeout path: an already-expired
// context aborts the search with the context's error.
func TestTuneHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := programs.ByName("frac")
	if _, err := Tune(ctx, b.Source, Options{Level: core.C2F4, Configs: smallConfigs(b)}); err == nil {
		t.Error("cancelled tune returned no error")
	}
}

// TestCompileErrorTyped pins the error contract the CLIs map to exit
// code 3: source failures wrap as *CompileError.
func TestCompileErrorTyped(t *testing.T) {
	_, err := Tune(context.Background(), "this is not a program", Options{Level: core.C2F4})
	if err == nil {
		t.Fatal("garbage source tuned successfully")
	}
	if _, ok := err.(*CompileError); !ok {
		t.Errorf("error type %T, want *CompileError", err)
	}
}
