// Package tune is a plan-search engine over the ASDG: it explores the
// space of legal fusion partitions and contraction sets — exhaustively
// for small blocks, by beam search seeded with the §5.4 strategy
// ladder for large ones — and scores candidates with a pluggable cost
// model. Every candidate is proved legal by the same Theorem 1/2 and
// Definition 5/6 predicates the ladder uses; the search can therefore
// never propose a plan the verifier would reject.
//
// The motivation is the paper's open question of how far one-shot
// greedy fusion sits from optimal: Kennedy & McKinley showed weighted
// loop fusion is NP-hard, so the standard answer is bounded search
// plus cost models. When exhaustive enumeration completes on every
// block, the result is *proven* optimal under the model — "greedy is
// within X% of optimal" becomes a theorem about the model rather than
// an observation.
package tune

import (
	"sort"

	"repro/internal/air"
	"repro/internal/asdg"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/machine"
)

// CostModel scores one block's plan candidate: lower is better. A
// model must be deterministic and must never reward removing a legal
// contraction (contracted references may not cost more than memory
// references), so that maximal contraction is always optimal for a
// fixed partition.
type CostModel interface {
	Name() string
	BlockScore(prog *air.Program, g *asdg.Graph, p *core.Partition,
		contracted map[string]bool) float64
}

// registerCycles is the charge for a reference to a contracted array:
// the value lives in a scalar register carried around the fused loop.
const registerCycles = 1

// loopStartCycles approximates loop-nest setup/teardown; fusing two
// nests saves one of these plus the per-iteration control overhead.
const loopStartCycles = 40

// stmtCycles is the flat charge for scalar/IO/call statements, which
// no plan can change.
const stmtCycles = 16

// CycleModel is the analytic static model: machine cycles from the
// machine.Model charge table, with stream references paying the
// miss-rate-weighted cost of one line fill per LineBytes/8 elements,
// references to arrays already touched in the same fused cluster
// paying an L1 hit (temporal reuse inside one loop body), and
// contracted references paying a register access. Communication pays
// the α + β·bytes message cost; per-processor iteration counts divide
// by the processor count.
type CycleModel struct {
	M     machine.Model
	Procs int
}

// Name identifies the model in reports and cache keys.
func (c CycleModel) Name() string { return "cycle:" + c.M.Name }

func (c CycleModel) div() float64 {
	if c.Procs > 1 {
		return float64(c.Procs)
	}
	return 1
}

// streamCost is the per-element cost of a fresh streaming reference:
// most accesses hit the line loaded by the miss every LineBytes/8
// elements; the miss fills from L2 when the array fits there, else
// from memory.
func (c CycleModel) streamCost(bytes float64) float64 {
	l1 := c.M.Caches[0]
	missRate := 8.0 / float64(l1.LineBytes)
	fill := c.M.MemCycles
	if len(c.M.Caches) > 1 && bytes <= float64(c.M.Caches[1].SizeBytes) {
		fill = c.M.HitCycles[1]
	}
	return (1-missRate)*c.M.HitCycles[0] + missRate*fill
}

// BlockScore implements CostModel.
func (c CycleModel) BlockScore(prog *air.Program, g *asdg.Graph,
	p *core.Partition, contracted map[string]bool) float64 {

	cycles := 0.0
	for _, cl := range p.TopoClusters() {
		members := p.Members(cl)
		seen := map[string]bool{}
		iters := 0.0
		fusible := false

		charge := func(x string, n float64) {
			switch {
			case contracted[x]:
				cycles += n * registerCycles
			case seen[x]:
				cycles += n * c.M.HitCycles[0]
			default:
				cycles += n * c.streamCost(arrayBytes(prog, x))
				seen[x] = true
			}
		}

		for _, v := range members {
			switch s := g.Stmts[v].(type) {
			case *air.ArrayStmt:
				n := float64(s.Region.Size()) / c.div()
				if n > iters {
					iters = n
				}
				fusible = true
				cycles += n * float64(countFlops(s.RHS)) * c.M.FlopCycles
				for _, r := range s.Reads() {
					charge(r.Array, n)
				}
				charge(s.LHS, n)
			case *air.ReduceStmt:
				n := float64(s.Region.Size()) / c.div()
				cycles += n * float64(countFlops(s.Body)+1) * c.M.FlopCycles
				for _, r := range air.Refs(s.Body) {
					charge(r.Array, n)
				}
				cycles += loopStartCycles + n
				cycles += c.reduceCycles()
			case *air.PartialReduceStmt:
				n := float64(s.Region.Size()) / c.div()
				cycles += n * float64(countFlops(s.Body)+1) * c.M.FlopCycles
				for _, r := range air.Refs(s.Body) {
					charge(r.Array, n)
				}
				charge(s.LHS, float64(s.Dest.Size())/c.div())
				cycles += loopStartCycles + n
			case *air.CommStmt:
				cycles += c.commCycles(s)
			default:
				cycles += stmtCycles
			}
		}
		if fusible {
			// One loop nest per cluster: startup plus per-iteration
			// control. This is the term fusion shrinks.
			cycles += loopStartCycles + iters
		}
	}
	return cycles
}

// reduceCycles is the log-tree global combine of a full reduction.
func (c CycleModel) reduceCycles() float64 {
	if c.Procs <= 1 {
		return 0
	}
	rounds := 0
	for p := 1; p < c.Procs; p *= 2 {
		rounds++
	}
	return float64(rounds) * (c.M.CommAlpha + 8.0/1024*c.M.CommBetaPerKB)
}

// commCycles statically prices one communication primitive: the halo
// surface of the consuming region in the offset's direction, at
// α + β·bytes, with pipelined sends paying the posting overhead and
// receives credited half the message for overlap.
func (c CycleModel) commCycles(s *air.CommStmt) float64 {
	if c.Procs <= 1 {
		return 0
	}
	elems := 1.0
	for d := 0; d < s.Region.Rank() && d < len(s.Off); d++ {
		if s.Off[d] != 0 {
			w := s.Off[d]
			if w < 0 {
				w = -w
			}
			elems *= float64(w)
		} else {
			elems *= float64(s.Region.Extent(d))
		}
	}
	cost := elems * 8 / 1024 * c.M.CommBetaPerKB
	if !s.Piggyback {
		cost += c.M.CommAlpha
	}
	switch s.Phase {
	case air.CommSend:
		return c.M.CommAlpha * 0.25
	case air.CommRecv:
		return cost * 0.5 // half hidden behind the overlapped compute
	}
	return cost
}

// CacheModel replays a bounded sketch of each cluster's reference
// stream through a simulated cachesim.Hierarchy and extrapolates: the
// same interference and reuse effects the measured machines show, at
// a cost bounded by MaxCells simulated iterations per cluster.
// Contracted references skip the hierarchy (register). Flop and
// communication charges are shared with CycleModel.
type CacheModel struct {
	M     machine.Model
	Procs int
	// MaxCells bounds simulated iterations per cluster; 0 means the
	// default of 2048.
	MaxCells int
}

// Name identifies the model in reports and cache keys.
func (c CacheModel) Name() string { return "cache:" + c.M.Name }

// BlockScore implements CostModel.
func (c CacheModel) BlockScore(prog *air.Program, g *asdg.Graph,
	p *core.Partition, contracted map[string]bool) float64 {

	cap := c.MaxCells
	if cap <= 0 {
		cap = 2048
	}
	cyc := CycleModel{M: c.M, Procs: c.Procs}
	hier, err := cachesim.NewHierarchy(c.M.Caches...)
	if err != nil {
		return cyc.BlockScore(prog, g, p, contracted)
	}

	// Row-major base addresses in sorted-name order; contracted
	// arrays are registers and get no address.
	base := map[string]int64{}
	cells := map[string]int64{}
	var names []string
	for name := range prog.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	next := int64(0)
	for _, name := range names {
		n := int64(arrayBytes(prog, name) / 8)
		if n == 0 {
			n = 1
		}
		base[name] = next
		cells[name] = n
		next += n * 8
	}
	addr := func(x string, i int64, off air.Offset) int64 {
		lin := i
		for _, o := range off {
			lin += int64(o)
		}
		n := cells[x]
		lin %= n
		if lin < 0 {
			lin += n
		}
		return base[x] + lin*8
	}

	cycles := 0.0
	for _, cl := range p.TopoClusters() {
		members := p.Members(cl)
		iters := int64(0)
		for _, v := range members {
			if s, ok := g.Stmts[v].(*air.ArrayStmt); ok {
				if n := int64(s.Region.Size()); n > iters {
					iters = n
				}
			}
		}
		if c.Procs > 1 {
			iters /= int64(c.Procs)
			if iters == 0 {
				iters = 1
			}
		}

		// Memory cycles come from the sketch replay, extrapolated;
		// everything else is charged analytically.
		sim := iters
		if sim > int64(cap) {
			sim = int64(cap)
		}
		mem := 0.0
		access := func(x string, i int64, off air.Offset) {
			if contracted[x] {
				mem += registerCycles
				return
			}
			level := hier.Access(addr(x, i, off))
			if level < len(c.M.HitCycles) {
				mem += c.M.HitCycles[level]
			} else {
				mem += c.M.MemCycles
			}
		}
		for i := int64(0); i < sim; i++ {
			for _, v := range members {
				switch s := g.Stmts[v].(type) {
				case *air.ArrayStmt:
					if int64(s.Region.Size()) <= i {
						continue
					}
					for _, r := range s.Reads() {
						access(r.Array, i, r.Off)
					}
					access(s.LHS, i, nil)
				case *air.ReduceStmt:
					for _, r := range air.Refs(s.Body) {
						access(r.Array, i, r.Off)
					}
				case *air.PartialReduceStmt:
					for _, r := range air.Refs(s.Body) {
						access(r.Array, i, r.Off)
					}
				}
			}
		}
		if sim > 0 {
			mem *= float64(iters) / float64(sim)
		}
		cycles += mem

		fusible := false
		for _, v := range members {
			switch s := g.Stmts[v].(type) {
			case *air.ArrayStmt:
				n := float64(s.Region.Size()) / cyc.div()
				cycles += n * float64(countFlops(s.RHS)) * c.M.FlopCycles
				fusible = true
			case *air.ReduceStmt:
				n := float64(s.Region.Size()) / cyc.div()
				cycles += n*float64(countFlops(s.Body)+1)*c.M.FlopCycles + loopStartCycles + n
				cycles += cyc.reduceCycles()
			case *air.PartialReduceStmt:
				n := float64(s.Region.Size()) / cyc.div()
				cycles += n*float64(countFlops(s.Body)+1)*c.M.FlopCycles + loopStartCycles + n
			case *air.CommStmt:
				cycles += cyc.commCycles(s)
			default:
				cycles += stmtCycles
			}
		}
		if fusible {
			cycles += loopStartCycles + float64(iters)
		}
	}
	return cycles
}

// countFlops counts arithmetic operations in an expression.
func countFlops(e air.Expr) int {
	n := 0
	air.Walk(e, func(x air.Expr) {
		switch x.(type) {
		case *air.BinExpr, *air.UnExpr:
			n++
		case *air.CallExpr:
			n += 8 // intrinsic call: a few flops' worth
		}
	})
	return n
}

// arrayBytes returns the allocation footprint of an array in bytes.
func arrayBytes(prog *air.Program, x string) float64 {
	a := prog.Arrays[x]
	if a == nil {
		return 0
	}
	r := a.Alloc
	if r == nil {
		r = a.Declared
	}
	if r == nil {
		return 0
	}
	return float64(r.Size()) * 8
}
