package machine

import (
	"testing"

	"repro/internal/air"
)

func TestModelsConstruct(t *testing.T) {
	for _, m := range Models() {
		tr := NewCostTracer(m, 4)
		if tr == nil || len(tr.Hierarchy().Levels) != len(m.Caches) {
			t.Errorf("%s: tracer construction failed", m.Name)
		}
		if len(m.HitCycles) != len(m.Caches) {
			t.Errorf("%s: %d hit costs for %d cache levels", m.Name, len(m.HitCycles), len(m.Caches))
		}
	}
}

func TestAccessCosts(t *testing.T) {
	tr := NewCostTracer(T3E(), 1)
	tr.Access(0, false) // cold: memory
	cold := tr.Cycles
	if cold != T3E().MemCycles {
		t.Errorf("cold access cost %f, want %f", cold, T3E().MemCycles)
	}
	tr.Access(0, false) // hot: L1
	if got := tr.Cycles - cold; got != T3E().HitCycles[0] {
		t.Errorf("hot access cost %f, want %f", got, T3E().HitCycles[0])
	}
}

func TestFlopCosts(t *testing.T) {
	tr := NewCostTracer(Paragon(), 1)
	tr.Flops(100)
	if tr.Cycles != 100*Paragon().FlopCycles {
		t.Errorf("flop cost %f", tr.Cycles)
	}
	if tr.FlopCount != 100 {
		t.Errorf("flop count %d", tr.FlopCount)
	}
}

func TestCommDisabledUniprocessor(t *testing.T) {
	tr := NewCostTracer(SP2(), 1)
	tr.Comm("A", air.Offset{0, 1}, 1000, air.CommWhole, 0, false)
	tr.Reduce()
	if tr.Cycles != 0 {
		t.Errorf("p=1 charged %f comm cycles", tr.Cycles)
	}
}

func TestWholeMessageCost(t *testing.T) {
	m := SP2()
	tr := NewCostTracer(m, 4)
	tr.Comm("A", air.Offset{0, 1}, 128, air.CommWhole, 0, false)
	want := m.CommAlpha + 128*8.0/1024*m.CommBetaPerKB
	if tr.Cycles != want {
		t.Errorf("message cost %f, want %f", tr.Cycles, want)
	}
	if tr.CommCycles != want {
		t.Errorf("comm cycles %f, want %f", tr.CommCycles, want)
	}
}

func TestPiggybackSkipsAlpha(t *testing.T) {
	m := SP2()
	a := NewCostTracer(m, 4)
	a.Comm("A", air.Offset{0, 1}, 128, air.CommWhole, 0, false)
	b := NewCostTracer(m, 4)
	b.Comm("A", air.Offset{0, 1}, 128, air.CommWhole, 0, true)
	if a.Cycles-b.Cycles != m.CommAlpha {
		t.Errorf("piggyback saved %f, want alpha %f", a.Cycles-b.Cycles, m.CommAlpha)
	}
}

func TestPipelineOverlap(t *testing.T) {
	m := T3E()
	// Fully hidden: lots of computation between send and recv.
	hidden := NewCostTracer(m, 4)
	hidden.Comm("A", air.Offset{0, 1}, 128, air.CommSend, 7, false)
	hidden.Flops(10_000_000)
	before := hidden.Cycles
	hidden.Comm("A", air.Offset{0, 1}, 128, air.CommRecv, 7, false)
	if hidden.Cycles != before {
		t.Errorf("fully overlapped receive still cost %f cycles", hidden.Cycles-before)
	}

	// Not hidden: nothing between send and recv — the receive pays
	// the full message cost minus only the posting overhead that
	// already elapsed.
	exposed := NewCostTracer(m, 4)
	exposed.Comm("A", air.Offset{0, 1}, 128, air.CommSend, 7, false)
	post := exposed.Cycles
	exposed.Comm("A", air.Offset{0, 1}, 128, air.CommRecv, 7, false)
	full := m.CommAlpha + 128*8.0/1024*m.CommBetaPerKB
	if got := exposed.Cycles - post; got != full-m.CommAlpha*0.25 {
		t.Errorf("unoverlapped receive cost %f, want %f", got, full-m.CommAlpha*0.25)
	}

	// Pipelined-but-exposed must never exceed the whole-message cost
	// by more than the posting overhead.
	whole := NewCostTracer(m, 4)
	whole.Comm("A", air.Offset{0, 1}, 128, air.CommWhole, 0, false)
	if exposed.Cycles > whole.Cycles+m.CommAlpha*0.25 {
		t.Errorf("pipelined cost %f exceeds whole %f + overhead", exposed.Cycles, whole.Cycles)
	}
}

func TestReduceCombineScalesWithLogP(t *testing.T) {
	m := T3E()
	c4 := NewCostTracer(m, 4)
	c4.Reduce()
	c64 := NewCostTracer(m, 64)
	c64.Reduce()
	if !(c64.Cycles > c4.Cycles) {
		t.Errorf("reduce at p=64 (%f) not above p=4 (%f)", c64.Cycles, c4.Cycles)
	}
	// log2(64)=6 rounds vs log2(4)=2 rounds: exactly 3x.
	if c64.Cycles != 3*c4.Cycles {
		t.Errorf("reduce scaling %f vs %f, want 3x", c64.Cycles, c4.Cycles)
	}
}

func TestSecondsConversion(t *testing.T) {
	tr := NewCostTracer(T3E(), 1)
	tr.Flops(450_000_000) // one modeled second at 450 MHz, 1 cycle/flop
	if got := tr.Seconds(); got < 0.99 || got > 1.01 {
		t.Errorf("seconds = %f, want 1.0", got)
	}
}

// The machines must differ in their cache behavior: a working set that
// fits the SP-2's 128 KB cache but not the T3E's small L1 should show
// a lower miss penalty share on the SP-2.
func TestMachinePersonalities(t *testing.T) {
	t3e := NewCostTracer(T3E(), 1)
	sp2 := NewCostTracer(SP2(), 1)
	// Stream over 64 KB twice.
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < 64<<10; a += 8 {
			t3e.Access(a, false)
			sp2.Access(a, false)
		}
	}
	l1t3e := t3e.Hierarchy().Levels[0]
	l1sp2 := sp2.Hierarchy().Levels[0]
	if !(l1sp2.MissRate() < l1t3e.MissRate()) {
		t.Errorf("SP-2 miss rate %.3f not below T3E %.3f for a 64KB set",
			l1sp2.MissRate(), l1t3e.MissRate())
	}
}

func TestOriginModel(t *testing.T) {
	o := Origin()
	if o.CommAlpha >= T3E().CommAlpha {
		t.Error("Origin should have lower startup cost than the T3E")
	}
	tr := NewCostTracer(o, 4)
	tr.Access(0, false)
	if tr.Cycles == 0 {
		t.Error("Origin model charges nothing")
	}
	w := o.WithCommAlpha(42)
	if w.CommAlpha != 42 || o.CommAlpha == 42 {
		t.Error("WithCommAlpha must copy, not mutate")
	}
}
