// Package machine models the three evaluation platforms of §5 — the
// Cray T3E, IBM SP-2, and Intel Paragon — as deterministic cycle cost
// models driven by the VM's execution trace.
//
// The paper ran on real hardware that no longer exists; per the
// substitution rule, each machine becomes a cache hierarchy (with the
// published geometry) plus per-event cycle charges: floating-point
// operations, cache hits and misses at each level, and an α + β·bytes
// linear communication cost with overlap accounting for pipelined
// sends and receives. Absolute times are not comparable to the paper's
// — the *relative* behavior of the transformation ladder is what the
// model reproduces.
package machine

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/cachesim"
)

// Model is one machine configuration.
type Model struct {
	Name string
	MHz  float64

	// Cache hierarchy, L1 first.
	Caches []cachesim.Config

	// Cycle charges.
	FlopCycles    float64
	HitCycles     []float64 // per cache level
	MemCycles     float64   // access that misses every level
	CommAlpha     float64   // message startup, cycles
	CommBetaPerKB float64   // cycles per KB transferred
}

// T3E models a Cray T3E node: 450 MHz Alpha 21164, 8 KB direct-mapped
// L1 and 96 KB 3-way L2 data caches, fast proprietary interconnect.
func T3E() Model {
	return Model{
		Name: "Cray T3E",
		MHz:  450,
		Caches: []cachesim.Config{
			{Name: "L1", SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 1},
			{Name: "L2", SizeBytes: 96 * 1024, LineBytes: 64, Assoc: 3},
		},
		FlopCycles:    1,
		HitCycles:     []float64{1, 9},
		MemCycles:     60,
		CommAlpha:     1200, // low-latency E-register communication
		CommBetaPerKB: 1500,
	}
}

// SP2 models an IBM SP-2 node: 120 MHz POWER2 Super Chip with a single
// large 128 KB 4-way data cache and a relatively high-latency switch.
func SP2() Model {
	return Model{
		Name: "IBM SP-2",
		MHz:  120,
		Caches: []cachesim.Config{
			{Name: "L1", SizeBytes: 128 * 1024, LineBytes: 128, Assoc: 4},
		},
		FlopCycles:    0.5, // dual FPU
		HitCycles:     []float64{1},
		MemCycles:     22,
		CommAlpha:     4800, // ~40µs MPL latency at 120 MHz
		CommBetaPerKB: 3400,
	}
}

// Paragon models an Intel Paragon node: 75 MHz i860 XP with an 8 KB
// 2-way data cache and a mesh network with modest latency but low
// per-node compute.
func Paragon() Model {
	return Model{
		Name: "Intel Paragon",
		MHz:  75,
		Caches: []cachesim.Config{
			{Name: "L1", SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 2},
		},
		FlopCycles:    2,
		HitCycles:     []float64{1},
		MemCycles:     10, // slow clock: memory relatively close
		CommAlpha:     3000,
		CommBetaPerKB: 500, // high-bandwidth mesh relative to compute
	}
}

// Origin models an SGI Origin-class machine: the paper's conclusion
// speculates that hardware-supported low-cost synchronization makes
// the fusion/communication integration even more important. Relative
// to the T3E the communication startup is an order of magnitude
// cheaper; the memory system resembles a large unified cache.
func Origin() Model {
	return Model{
		Name: "SGI Origin",
		MHz:  250,
		Caches: []cachesim.Config{
			{Name: "L1", SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 2},
			{Name: "L2", SizeBytes: 4 * 1024 * 1024, LineBytes: 128, Assoc: 2},
		},
		FlopCycles:    1,
		HitCycles:     []float64{1, 10},
		MemCycles:     80,
		CommAlpha:     150, // hardware-assisted remote access
		CommBetaPerKB: 700,
	}
}

// ByName resolves a short machine name ("t3e", "sp2", "paragon",
// "origin") to its model; the second result reports whether the name
// is known.
func ByName(name string) (Model, bool) {
	switch name {
	case "t3e":
		return T3E(), true
	case "sp2":
		return SP2(), true
	case "paragon":
		return Paragon(), true
	case "origin":
		return Origin(), true
	}
	return Model{}, false
}

// Models returns the three paper machines in presentation order.
// (Origin is the conclusion's extrapolation target, exercised by the
// latency-sensitivity study, not part of the paper's tables.)
func Models() []Model {
	return []Model{T3E(), SP2(), Paragon()}
}

// WithCommAlpha returns a copy of the model with the message startup
// cost replaced — the knob of the latency-sensitivity study.
func (m Model) WithCommAlpha(alpha float64) Model {
	m.Name = fmt.Sprintf("%s (α=%g)", m.Name, alpha)
	m.CommAlpha = alpha
	return m
}

// CostTracer implements vm.Tracer, accumulating modeled cycles.
//
// Concurrency contract: a CostTracer is single-goroutine state — the
// cache hierarchy and the cycle accumulators are mutated on every
// callback with no internal locking. Drive each tracer from exactly
// one goroutine and read its results only after that goroutine is
// done. (The harness's concurrent fan-out honors this by giving every
// model its own tracer and its own replay goroutine.)
type CostTracer struct {
	Model Model
	Procs int // processor count; 1 disables communication cost

	hier *cachesim.Hierarchy

	Cycles      float64
	CommCycles  float64
	FlopCount   int64
	AccessCount int64

	// Pipelining: pending sends by message id, recording the cycle at
	// which the send was posted.
	pending map[int]float64
}

// NewCostTracer builds a tracer for the model with p processors.
func NewCostTracer(m Model, procs int) *CostTracer {
	h, err := cachesim.NewHierarchy(m.Caches...)
	if err != nil {
		panic(err)
	}
	return &CostTracer{Model: m, Procs: procs, hier: h, pending: map[int]float64{}}
}

// Hierarchy exposes the simulated caches for inspection.
func (t *CostTracer) Hierarchy() *cachesim.Hierarchy { return t.hier }

// Access charges one array element access through the cache hierarchy.
func (t *CostTracer) Access(addr int64, write bool) {
	t.AccessCount++
	level := t.hier.Access(addr)
	if level < len(t.Model.HitCycles) {
		t.Cycles += t.Model.HitCycles[level]
	} else {
		t.Cycles += t.Model.MemCycles
	}
}

// Flops charges n floating-point operations.
func (t *CostTracer) Flops(n int64) {
	t.FlopCount += n
	t.Cycles += float64(n) * t.Model.FlopCycles
}

// messageCost is the α + β·bytes cycle cost of one message carrying
// the given number of 8-byte elements; piggybacked messages skip α.
func (t *CostTracer) messageCost(elems int, piggyback bool) float64 {
	cost := float64(elems) * 8 / 1024 * t.Model.CommBetaPerKB
	if !piggyback {
		cost += t.Model.CommAlpha
	}
	return cost
}

// Comm charges one communication primitive. Whole messages cost their
// full latency; a pipelined send is free at post time, and its receive
// charges only the portion of the message cost not hidden by the
// computation executed since the send.
func (t *CostTracer) Comm(array string, off air.Offset, elems int, phase air.CommPhase, msgID int, piggyback bool) {
	if t.Procs <= 1 {
		return
	}
	switch phase {
	case air.CommWhole:
		c := t.messageCost(elems, piggyback)
		t.Cycles += c
		t.CommCycles += c
	case air.CommSend:
		// Post the message; overlap accounting happens at receive.
		t.pending[msgID] = t.Cycles
		// Posting overhead.
		t.Cycles += t.Model.CommAlpha * 0.25
		t.CommCycles += t.Model.CommAlpha * 0.25
	case air.CommRecv:
		cost := t.messageCost(elems, piggyback)
		if posted, ok := t.pending[msgID]; ok {
			elapsed := t.Cycles - posted
			delete(t.pending, msgID)
			if elapsed > cost {
				cost = 0 // fully hidden
			} else {
				cost -= elapsed
			}
		}
		t.Cycles += cost
		t.CommCycles += cost
	}
}

// Reduce charges the global combine of one full reduction: a binary
// combining tree of log2(p) message rounds.
func (t *CostTracer) Reduce() {
	if t.Procs <= 1 {
		return
	}
	rounds := 0
	for p := 1; p < t.Procs; p *= 2 {
		rounds++
	}
	c := float64(rounds) * (t.Model.CommAlpha + float64(8)/1024*t.Model.CommBetaPerKB)
	t.Cycles += c
	t.CommCycles += c
}

// Seconds converts accumulated cycles to modeled wall time.
func (t *CostTracer) Seconds() float64 { return t.Cycles / (t.Model.MHz * 1e6) }
