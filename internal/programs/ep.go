package programs

// EP is the NAS "embarrassingly parallel" kernel: generate pairs of
// uniform deviates, accept those inside the unit disk, transform them
// to Gaussian deviates, and tally counts and sums. The NAS
// linear-congruential generator is replaced by a deterministic
// index-hash (same code-path shape: element-wise transcendentals into
// fresh arrays). Every array is a per-batch temporary consumed by
// reductions in the same block, so full fusion contracts *all* of
// them — the paper's Fig. 7 shows exactly that for EP (22 → 0).
const EP = `
program ep;

config n : integer = 8192;        -- pairs per batch
config batches : integer = 4;

region R = [1..n];

var H1, H2, U1, U2 : [R] double;  -- uniform deviate pipeline
var X, Y, X2, Y2, T : [R] double; -- candidate points
var ACC, F, GX, GY : [R] double;  -- acceptance and transform
var AX, AY, MA : [R] double;      -- magnitudes
var B0, B1, B2, B3 : [R] double;  -- concentric ring tallies

var sx, sy, cnt : double;
var q0, q1, q2, q3 : double;
var chk : double;

proc main()
begin
  sx := 0.0;
  sy := 0.0;
  cnt := 0.0;
  q0 := 0.0;
  q1 := 0.0;
  q2 := 0.0;
  q3 := 0.0;
  for b := 1 to batches do
    -- Pseudo-random uniforms in (0,1) from an index hash.
    [R] H1 := sin(index1 * 12.9898 + b * 78.233) * 43758.5453;
    [R] U1 := H1 - floor(H1);
    [R] H2 := sin(index1 * 39.3468 + b * 11.135) * 24634.6345;
    [R] U2 := H2 - floor(H2);

    -- Candidate point in the square [-1,1)^2.
    [R] X := 2.0 * U1 - 1.0;
    [R] Y := 2.0 * U2 - 1.0;
    [R] X2 := X * X;
    [R] Y2 := Y * Y;
    [R] T := X2 + Y2;

    -- Acceptance mask (t < 1) and Box-Muller factor (clamped to the
    -- acceptance disk so rejected points cannot generate NaNs).
    [R] ACC := max(0.0, sign(1.0 - T));
    [R] F := sqrt(max(0.0, -2.0 * log(max(T, 1.0e-12)) / max(T, 1.0e-12)));
    [R] GX := X * F * ACC;
    [R] GY := Y * F * ACC;

    -- Ring tallies |max(|gx|,|gy|)| in [k, k+1).
    [R] AX := abs(GX);
    [R] AY := abs(GY);
    [R] MA := max(AX, AY);
    [R] B0 := ACC * max(0.0, sign(1.0 - MA));
    [R] B1 := ACC * max(0.0, sign(2.0 - MA)) - B0;
    [R] B2 := ACC * max(0.0, sign(3.0 - MA)) - B1 - B0;
    [R] B3 := ACC * max(0.0, sign(4.0 - MA)) - B2 - B1 - B0;

    cnt := cnt + +<< [R] ACC;
    sx := sx + +<< [R] GX;
    sy := sy + +<< [R] GY;
    q0 := q0 + +<< [R] B0;
    q1 := q1 + +<< [R] B1;
    q2 := q2 + +<< [R] B2;
    q3 := q3 + +<< [R] B3;
  end;
  chk := cnt + q0 + q1 + q2 + q3 + sx * 0.001 + sy * 0.001;
  writeln("ep", cnt, q0, q1, q2, q3, chk);
end;
`
