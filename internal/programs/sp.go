package programs

// SP is a scaled-down NAS SP: sets of uncoupled scalar pentadiagonal
// systems solved along each grid dimension, driven by a CFD-style
// right-hand-side computation over a five-component state vector.
//
// The structure keeps SP's signature properties from the paper:
//
//   - a large population of user arrays: five state components, five
//     right-hand sides, per-direction flux slabs consumed at neighbor
//     offsets (they survive), and elimination carriers in the sweep
//     loops (they survive);
//   - many arrays that could contract to *lower-dimensional* arrays
//     but not to scalars — the deficiency §5.2 discusses: SP is the
//     one benchmark where the compiled code keeps more arrays than the
//     hand-written scalar version;
//   - independent per-component statements that only arbitrary (f4)
//     fusion brings together, the reason SP alone benefits from c2+f4.
//
// The pentadiagonal coefficients, which NAS SP derives from state
// slices, are synthesized from index expressions with the same
// reference pattern (see DESIGN.md substitutions).
const SP = `
program sp;

config n : integer = 48;
config steps : integer = 2;
config dt : double = 0.002;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
region C = [1..n];

direction up = (-1, 0); down = (1, 0); left = (0, -1); right = (0, 1);

var U1, U2, U3, U4, U5 : [R] double;        -- state (live)
var RHS1, RHS2, RHS3, RHS4, RHS5 : [R] double; -- right-hand sides (live)
var PRS, VX, VY : [R] double;               -- pressure, velocities (live: offset reads)
var FX1, FX2, FX3, FX4, FX5 : [R] double;   -- x-direction fluxes (live: offset reads)
var FY1, FY2, FY3, FY4, FY5 : [R] double;   -- y-direction fluxes (live: offset reads)
var SQ, EKIN : [R] double;                  -- EOS temporaries (contract)

var XA, XB, XC : [C] double;                -- x-sweep coefficients (contract)
var XM : [C] double;                        -- x-sweep multiplier (contracts)
var XD1, XD2, XD3, XD4, XD5 : [C] double;   -- x-sweep carriers (live)
var XN1, XN2, XN3, XN4, XN5 : [C] double;   -- x-sweep updates (contract)

var YA, YB, YC : [C] double;                -- y-sweep coefficients (contract)
var YM : [C] double;                        -- y-sweep multiplier (contracts)
var YD1, YD2, YD3, YD4, YD5 : [C] double;   -- y-sweep carriers (live)
var YN1, YN2, YN3, YN4, YN5 : [C] double;   -- y-sweep updates (contract)

var rnorm, chk : double;

proc main()
begin
  [R] U1 := 1.0 + 0.02 * sin(0.1 * index1) * sin(0.1 * index2);
  [R] U2 := 0.10 * sin(0.05 * index2);
  [R] U3 := 0.10 * cos(0.05 * index1);
  [R] U4 := 0.01 * sin(0.02 * (index1 + index2));
  [R] U5 := 2.0 + 0.05 * cos(0.1 * index1);

  for s := 1 to steps do
    -- Equation of state and primitive variables.
    [I] SQ := U2 * U2 + U3 * U3 + U4 * U4;
    [I] EKIN := 0.5 * SQ / max(U1, 0.01);
    [I] PRS := 0.4 * (U5 - EKIN);
    [I] VX := U2 / max(U1, 0.01);
    [I] VY := U3 / max(U1, 0.01);

    -- Component fluxes (independent statements: only f4 fuses them).
    [I] FX1 := U2;
    [I] FX2 := U2 * VX + PRS;
    [I] FX3 := U3 * VX;
    [I] FX4 := U4 * VX;
    [I] FX5 := (U5 + PRS) * VX;
    [I] FY1 := U3;
    [I] FY2 := U2 * VY;
    [I] FY3 := U3 * VY + PRS;
    [I] FY4 := U4 * VY;
    [I] FY5 := (U5 + PRS) * VY;

    -- Right-hand sides from flux differences.
    [I] RHS1 := (FX1@left - FX1@right) * 0.5 + (FY1@up - FY1@down) * 0.5;
    [I] RHS2 := (FX2@left - FX2@right) * 0.5 + (FY2@up - FY2@down) * 0.5;
    [I] RHS3 := (FX3@left - FX3@right) * 0.5 + (FY3@up - FY3@down) * 0.5;
    [I] RHS4 := (FX4@left - FX4@right) * 0.5 + (FY4@up - FY4@down) * 0.5;
    [I] RHS5 := (FX5@left - FX5@right) * 0.5 + (FY5@up - FY5@down) * 0.5;

    -- x-sweep: forward elimination of the pentadiagonal systems,
    -- row by row (the Fig. 1 wavefront pattern).
    [C] XD1 := 0.001 * index1;
    [C] XD2 := 0.001 * index1 + 0.1;
    [C] XD3 := 0.001 * index1 + 0.2;
    [C] XD4 := 0.001 * index1 + 0.3;
    [C] XD5 := 0.001 * index1 + 0.4;
    for i := 2 to n-1 do
      [C] XA := -0.05 - 0.001 * sin(0.01 * i * index1);
      [C] XB := 1.0 + 0.004 * i + 0.0001 * index1;
      [C] XC := -0.05 - 0.002 * cos(0.01 * i);
      [C] XM := XA / XB;
      [C] XN1 := 0.01 * i - XM * XD1;
      [C] XN2 := 0.01 * i - XM * XD2 + XC * 0.001;
      [C] XN3 := 0.01 * i - XM * XD3;
      [C] XN4 := 0.01 * i - XM * XD4 + XC * 0.001;
      [C] XN5 := 0.01 * i - XM * XD5;
      [C] XD1 := XN1;
      [C] XD2 := XN2;
      [C] XD3 := XN3;
      [C] XD4 := XN4;
      [C] XD5 := XN5;
    end;

    -- y-sweep, structurally identical.
    [C] YD1 := 0.001 * index1;
    [C] YD2 := 0.001 * index1 + 0.1;
    [C] YD3 := 0.001 * index1 + 0.2;
    [C] YD4 := 0.001 * index1 + 0.3;
    [C] YD5 := 0.001 * index1 + 0.4;
    for j := 2 to n-1 do
      [C] YA := -0.05 - 0.001 * sin(0.01 * j * index1);
      [C] YB := 1.0 + 0.004 * j + 0.0001 * index1;
      [C] YC := -0.05 - 0.002 * cos(0.01 * j);
      [C] YM := YA / YB;
      [C] YN1 := 0.01 * j - YM * YD1;
      [C] YN2 := 0.01 * j - YM * YD2 + YC * 0.001;
      [C] YN3 := 0.01 * j - YM * YD3;
      [C] YN4 := 0.01 * j - YM * YD4 + YC * 0.001;
      [C] YN5 := 0.01 * j - YM * YD5;
      [C] YD1 := YN1;
      [C] YD2 := YN2;
      [C] YD3 := YN3;
      [C] YD4 := YN4;
      [C] YD5 := YN5;
    end;

    -- Advance the state.
    [I] U1 := U1 + dt * RHS1;
    [I] U2 := U2 + dt * RHS2;
    [I] U3 := U3 + dt * RHS3;
    [I] U4 := U4 + dt * RHS4;
    [I] U5 := U5 + dt * RHS5;

    rnorm := +<< [I] RHS1 * RHS1 + RHS2 * RHS2 + RHS3 * RHS3 + RHS4 * RHS4 + RHS5 * RHS5;
  end;

  chk := rnorm + +<< [I] U1 + U5;
  writeln("sp", rnorm, chk);
end;
`
