package programs

// Tomcatv is the SPEC CFP95 vectorized mesh-generation benchmark the
// paper uses as its running example (Fig. 1 shows its tridiagonal
// phase). The structure here mirrors the original's three phases:
//
//  1. residual computation: 2-D stencils of the mesh X, Y through a
//     pipeline of finite-difference temporaries (all contractible);
//  2. tridiagonal forward elimination: a sequential wavefront over
//     rows, expressed as 1-D array statements inside a scalar loop.
//     This is exactly Fig. 1: the multiplier row R is written and then
//     consumed at offset zero, so it contracts to a scalar, while the
//     previous-row carriers (D, RXP, RYP) stay live across iterations;
//  3. relaxation update of X and Y, whose self-referencing statements
//     make the compiler insert temporaries that later contract.
//
// The row coefficients, which the original derives from mesh slices
// (unavailable without dynamic regions), are synthesized from index
// expressions with the same reference pattern.
const Tomcatv = `
program tomcatv;

config n : integer = 64;
config iters : integer = 3;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
region C = [1..n];

direction up = (-1, 0); down = (1, 0); left = (0, -1); right = (0, 1);

var X, Y : [R] double;            -- the mesh (live)
var XX, YX, XY, YY : [R] double;  -- first differences (contract)
var A2, B2, C2 : [R] double;      -- metric coefficients (contract)
var PXX, QXX, SXX : [R] double;   -- second differences (contract)
var PYY, QYY, SYY : [R] double;
var RXA, RYA : [R] double;        -- residuals (live: used in phase 3)

var AAR, DDR, RROW : [C] double;  -- per-row coefficients (contract)
var RMUL, DCUR, RXN, RYN : [C] double; -- eliminations (RMUL is Fig. 1's R)
var DPRV, RXP, RYP : [C] double;  -- previous-row carriers (live)

var rxm, rym, relax : double;
var chk, chkm, chkr : double;

proc main()
begin
  relax := 0.05;
  [R] X := (index2 - 1) * 1.0 + 0.01 * index1;
  [R] Y := (index1 - 1) * 1.0 + 0.01 * index2;

  for it := 1 to iters do
    -- Phase 1: residuals over the interior.
    [I] XX := (X@right - X@left) * 0.5;
    [I] YX := (Y@right - Y@left) * 0.5;
    [I] XY := (X@down - X@up) * 0.5;
    [I] YY := (Y@down - Y@up) * 0.5;
    [I] A2 := XX * XX + YX * YX;
    [I] B2 := XX * XY + YX * YY;
    [I] C2 := XY * XY + YY * YY;
    [I] PXX := X@right - 2.0 * X + X@left;
    [I] QXX := X@down - 2.0 * X + X@up;
    [I] SXX := X@(1,1) - X@(1,-1) - X@(-1,1) + X@(-1,-1);
    [I] PYY := Y@right - 2.0 * Y + Y@left;
    [I] QYY := Y@down - 2.0 * Y + Y@up;
    [I] SYY := Y@(1,1) - Y@(1,-1) - Y@(-1,1) + Y@(-1,-1);
    [I] RXA := A2 * PXX + C2 * QXX - 0.5 * B2 * SXX;
    [I] RYA := A2 * PYY + C2 * QYY - 0.5 * B2 * SYY;
    rxm := max<< [I] abs(RXA);
    rym := max<< [I] abs(RYA);

    -- Phase 2: tridiagonal forward elimination, row by row (Fig. 1).
    [C] DPRV := 1.0 / (4.0 + 0.01 * index1);
    [C] RXP := 0.001 * index1;
    [C] RYP := 0.002 * index1;
    for i := 2 to n-1 do
      [C] AAR := -1.0 - 0.05 * sin(0.01 * i * index1);
      [C] DDR := 4.0 + 0.002 * i + 0.001 * index1;
      [C] RROW := 0.01 * i * sin(index1 * 0.1);
      [C] RMUL := AAR * DPRV;                -- R(i,:) = AA(i,:)*D(i-1,:)
      [C] DCUR := 1.0 / (DDR - AAR * RMUL);  -- D(i,:) = 1/(DD - AA*R)
      [C] RXN := RROW - RXP * RMUL;          -- Rx(i,:) = Rx - Rx(i-1,:)*R
      [C] RYN := RROW - RYP * RMUL;
      [C] DPRV := DCUR;
      [C] RXP := RXN;
      [C] RYP := RYN;
    end;

    -- Phase 3: relax the mesh toward the residuals.
    [I] X := X + relax * RXA;
    [I] Y := Y + relax * RYA;
  end;

  chkm := +<< [R] X * 0.001 + Y * 0.001;
  chkr := +<< [C] DPRV + RXP + RYP;
  chk := rxm + rym + chkm + chkr;
  writeln("tomcatv", rxm, rym, chk);
end;
`
