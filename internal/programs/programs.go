// Package programs holds the ZA sources of the six benchmarks the
// paper evaluates (§5): NAS EP, Frac, NAS SP, SPEC Tomcatv, Simple,
// and Fibro, plus the eight Fortran 90 fragments of Fig. 5.
//
// The original codes are unavailable (NAS/SPEC sources, ZPL-only
// Fibro), so each benchmark is re-expressed in ZA to preserve the
// property the evaluation depends on: its array-temporary structure —
// how many user and compiler temporaries arise, which of them are
// contractible, where wavefront dependences force row-by-row 1-D
// statements (the Fig. 1 tridiagonal pattern), and where reductions
// consume whole arrays. Data that the originals read from meshes or
// random-number generators is synthesized from index expressions, per
// the substitution rule in DESIGN.md. Absolute array counts are scaled
// down from the originals; the contraction *ratios* are the target.
package programs

// Benchmark bundles one program with its size parameters.
type Benchmark struct {
	Name   string
	Source string
	// SizeConfig is the config constant controlling the problem size
	// along one dimension.
	SizeConfig string
	// DefaultSize is a laptop-scale per-processor problem size.
	DefaultSize int64
	// Rank is the rank of the benchmark's main region.
	Rank int
	// Checksum is the name of the scalar whose final value tests
	// compare across optimization levels.
	Checksum string
}

// All returns the six benchmarks in the paper's presentation order.
func All() []Benchmark {
	return []Benchmark{
		{Name: "ep", Source: EP, SizeConfig: "n", DefaultSize: 8192, Rank: 1, Checksum: "chk"},
		{Name: "frac", Source: Frac, SizeConfig: "n", DefaultSize: 96, Rank: 2, Checksum: "chk"},
		{Name: "sp", Source: SP, SizeConfig: "n", DefaultSize: 48, Rank: 2, Checksum: "chk"},
		{Name: "tomcatv", Source: Tomcatv, SizeConfig: "n", DefaultSize: 64, Rank: 2, Checksum: "chk"},
		{Name: "simple", Source: Simple, SizeConfig: "n", DefaultSize: 64, Rank: 2, Checksum: "chk"},
		{Name: "fibro", Source: Fibro, SizeConfig: "n", DefaultSize: 64, Rank: 2, Checksum: "chk"},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
