package programs

// Simple is the Lawrence Livermore hydrodynamics + heat-conduction
// benchmark (Crowley et al., UCID-17715), a staple of the ZPL papers.
// Each time step computes artificial viscosity and an augmented
// pressure, accelerates the velocity field from the pressure gradient,
// advances energy with a flux-form heat-conduction term, and updates
// density from the velocity divergence.
//
// Contraction structure: divergence/viscosity/gradient temporaries are
// consumed at offset zero and contract; the augmented pressure PT,
// conductivity KAP, and the heat fluxes FLX/FLY are consumed at
// neighbor offsets, so they must stay in memory — which is why Simple,
// like the paper's version, keeps a substantial fraction of its arrays
// (85 → 32 in Fig. 7).
const Simple = `
program simple;

config n : integer = 64;
config steps : integer = 3;
config dt : double = 0.01;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];

direction up = (-1, 0); down = (1, 0); left = (0, -1); right = (0, 1);

var RHO, E, P, U, V : [R] double;   -- state (live)
var CS : [R] double;                -- sound speed (contracts)
var DUX, DVY, DIV : [R] double;     -- divergence pipeline (contract)
var QV : [R] double;                -- artificial viscosity (contracts)
var PT : [R] double;                -- augmented pressure (live: offset reads)
var GPX, GPY : [R] double;          -- pressure gradient (contract)
var WRK : [R] double;               -- pdV work (contracts)
var KAP : [R] double;               -- conductivity (live: offset reads)
var FLX, FLY : [R] double;          -- heat fluxes (live: offset reads)

var ek, ei, chk : double;

proc main()
begin
  [R] RHO := 1.0 + 0.1 * sin(0.2 * index1) * cos(0.2 * index2);
  [R] E := 2.0 + 0.5 * sin(0.1 * (index1 + index2));
  [R] P := 0.4 * RHO * E;
  [R] U := 0.01 * (index2 - n / 2);
  [R] V := 0.01 * (n / 2 - index1);

  for s := 1 to steps do
    -- Viscosity and augmented pressure.
    [I] CS := sqrt(1.4 * max(P, 0.001) / max(RHO, 0.001));
    [I] DUX := (U@right - U@left) * 0.5;
    [I] DVY := (V@down - V@up) * 0.5;
    [I] DIV := DUX + DVY;
    [I] QV := RHO * max(0.0, -DIV) * (0.1 * CS + 0.2 * abs(DIV));
    [I] PT := P + QV;

    -- Momentum from the pressure gradient.
    [I] GPX := (PT@right - PT@left) * 0.5;
    [I] GPY := (PT@down - PT@up) * 0.5;
    [I] U := U - dt * GPX;
    [I] V := V - dt * GPY;

    -- Energy: pdV work plus flux-form heat conduction.
    [I] WRK := PT * DIV;
    [I] KAP := 0.3 + 0.01 * E;
    [I] FLX := (KAP + KAP@right) * 0.5 * (E@right - E);
    [I] FLY := (KAP + KAP@down) * 0.5 * (E@down - E);
    [I] E := E - dt * WRK + dt * (FLX - FLX@left + FLY - FLY@up);

    -- Density and equation of state.
    [I] RHO := RHO * (1.0 - dt * DIV);
    [I] P := 0.4 * max(RHO, 0.001) * max(E, 0.0);

    ek := +<< [I] 0.5 * RHO * (U * U + V * V);
    ei := +<< [I] RHO * E;
  end;

  chk := ek + ei;
  writeln("simple", ek, ei, chk);
end;
`
