package programs

// Fibro models the dynamic structure of fibroblast populations
// (Dikaiakos, Lin, Manoussaki & Woodward, ICS'95) — a two-species
// reaction-diffusion system: fibroblast density F migrates up the
// gradient of a chemical C while both diffuse with variable,
// density-dependent coefficients.
//
// The original was written directly in ZPL, so no scalar-language
// comparison exists (the paper's Fig. 7 marks it "na"). Its array
// profile is all user arrays, no compiler temporaries, with roughly
// half contractible: variable diffusivities and flux slabs are read at
// neighbor offsets (they survive), while reaction and migration
// temporaries are consumed in place (they contract). Fig. 7: 49 → 27.
const Fibro = `
program fibro;

config n : integer = 64;
config steps : integer = 3;
config dt : double = 0.02;

region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];

direction up = (-1, 0); down = (1, 0); left = (0, -1); right = (0, 1);

var F, C : [R] double;              -- species (live)
var KF, KC : [R] double;            -- variable diffusivities (live: offset reads)
var FFX, FFY : [R] double;          -- fibroblast diffusive fluxes (live)
var FCX, FCY : [R] double;          -- chemical diffusive fluxes (live)
var DIFF, DIFC : [R] double;        -- flux divergences (contract)
var GRW, DEC : [R] double;          -- reaction terms (contract)
var CHX, CHY, MIG : [R] double;     -- chemotaxis pipeline (contract)
var FN, CN : [R] double;            -- next-step fields (contract)

var totf, totc, chk : double;

proc main()
begin
  [R] F := 0.5 + 0.25 * sin(0.3 * index1) * sin(0.3 * index2);
  [R] C := 0.2 + 0.1 * cos(0.2 * index1 + 0.1 * index2);

  for s := 1 to steps do
    -- Density-dependent diffusivities (read at offsets below).
    [I] KF := 0.20 + 0.05 * F;
    [I] KC := 0.50 + 0.02 * F;

    -- Flux-form diffusion.
    [I] FFX := (KF + KF@right) * 0.5 * (F@right - F);
    [I] FFY := (KF + KF@down) * 0.5 * (F@down - F);
    [I] FCX := (KC + KC@right) * 0.5 * (C@right - C);
    [I] FCY := (KC + KC@down) * 0.5 * (C@down - C);
    [I] DIFF := FFX - FFX@left + FFY - FFY@up;
    [I] DIFC := FCX - FCX@left + FCY - FCY@up;

    -- Reaction and chemotactic migration.
    [I] GRW := F * (1.0 - F) * (0.2 + 0.8 * C);
    [I] DEC := 0.1 * C * F;
    [I] CHX := (C@right - C@left) * 0.5;
    [I] CHY := (C@down - C@up) * 0.5;
    [I] MIG := CHX * CHX + CHY * CHY;

    -- Advance both species.
    [I] FN := F + dt * (DIFF + GRW - 0.5 * F * MIG);
    [I] CN := C + dt * (DIFC + 0.3 * F - DEC);
    [I] F := FN;
    [I] C := CN;

    totf := +<< [I] F;
    totc := +<< [I] C;
  end;

  chk := totf + totc;
  writeln("fibro", totf, totc, chk);
end;
`
