package programs

import "fmt"

// Fragment is one of the eight Fig. 5 code fragments used in §5.1 to
// probe commercial compilers. Each is wrapped in a tiny program: the
// inputs are initialized in a preceding block, the fragment body sits
// in its own block (a 1-trip loop), and the "live" outputs are
// consumed afterwards — so arrays B, T1, T2 are dead beyond the
// fragment, exactly as the paper specifies.
type Fragment struct {
	Num    int
	Title  string
	Source string
	// What "proper" handling means for this fragment (Fig. 6).
	Expect Expectation
}

// Expectation says which observation the Fig. 6 check mark rests on.
type Expectation struct {
	// FusePair, when both names are nonempty, requires the statements
	// defining these two arrays to share a loop nest.
	FusePair [2]string
	// ContractCompilerTemp requires every compiler temporary in the
	// fragment block to be contracted.
	ContractCompilerTemp bool
	// ContractUser lists user arrays that must be contracted.
	ContractUser []string
}

func fragmentProgram(num int, decls, body, live string) string {
	return fmt.Sprintf(`
program frag%d;
config n : integer = 32;
config m : integer = 32;
region R = [1..n, 1..m];
%s
var chk : double;
proc main()
begin
  [R] A := index1 * 0.1 + index2 * 0.01;
  for p := 1 to 1 do
%s
  end;
  chk := +<< [R] %s;
  writeln(chk);
end;
`, num, decls, body, live)
}

// Fragments returns the eight fragments of Fig. 5.
func Fragments() []Fragment {
	return []Fragment{
		{
			Num: 1, Title: "B=A+A; C=A*A (fusion for temporal locality)",
			Source: fragmentProgram(1,
				"var A, B, C : [R] double;",
				"    [R] B := A + A;\n    [R] C := A * A;",
				"C"),
			Expect: Expectation{FusePair: [2]string{"B", "C"}},
		},
		{
			Num: 2, Title: "B=A@(-1,0)+A@(-1,0); C=A*A (fusion with shifted reads)",
			Source: fragmentProgram(2,
				"var A, B, C : [R] double;",
				"    [R] B := A@(-1,0) + A@(-1,0);\n    [R] C := A * A;",
				"C"),
			Expect: Expectation{FusePair: [2]string{"B", "C"}},
		},
		{
			Num: 3, Title: "B=A@(-1,0)+C@(-1,0); C=A*A (fusion carrying an anti dependence)",
			Source: fragmentProgram(3,
				"var A, B, C : [R] double;",
				"    [R] B := A@(-1,0) + C@(-1,0);\n    [R] C := A * A;",
				"C"),
			Expect: Expectation{FusePair: [2]string{"B", "C"}},
		},
		{
			Num: 4, Title: "A=A+A (compiler temporary, null anti dependence)",
			Source: fragmentProgram(4,
				"var A : [R] double;",
				"    [R] A := A + A;",
				"A"),
			Expect: Expectation{ContractCompilerTemp: true},
		},
		{
			Num: 5, Title: "A=A@(-1,0)+A@(-1,0) (compiler temporary, carried anti dependence)",
			Source: fragmentProgram(5,
				"var A : [R] double;",
				"    [R] A := A@(-1,0) + A@(-1,0);",
				"A"),
			Expect: Expectation{ContractCompilerTemp: true},
		},
		{
			Num: 6, Title: "B=A+A; C=B (user temporary)",
			Source: fragmentProgram(6,
				"var A, B, C : [R] double;",
				"    [R] B := A + A;\n    [R] C := B;",
				"C"),
			Expect: Expectation{ContractUser: []string{"B"}},
		},
		{
			Num: 7, Title: "B=A+A+C@(-1,0); C=B (user temporary with anti dependence)",
			Source: fragmentProgram(7,
				"var A, B, C : [R] double;",
				"    [R] B := A + A + C@(-1,0);\n    [R] C := B;",
				"C"),
			Expect: Expectation{ContractUser: []string{"B"}},
		},
		{
			Num: 8, Title: "T1=B; T2=B; A=A@(1,0)+T1@(1,0)+T2@(1,0) (alignment trade-off)",
			// T1 and T2 are defined over the rows the final statement
			// actually consumes ([2..n+1]), the ZA rendering of the
			// F90 sections T1(2:n+1,1:m).
			Source: fragmentProgram(8,
				"var A, B : [R] double;\nvar T1, T2 : [2..n+1, 1..m] double;",
				"    [R] B := A * 0.5;\n    [2..n+1, 1..m] T1 := B;\n    [2..n+1, 1..m] T2 := B;\n    [R] A := A@(1,0) + T1@(1,0) + T2@(1,0);",
				"A + B"),
			Expect: Expectation{ContractUser: []string{"T1", "T2"}},
		},
	}
}
