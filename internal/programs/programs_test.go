package programs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/vm"
)

// smallConfigs shrinks each benchmark for test speed.
func smallConfigs(b Benchmark) map[string]int64 {
	size := int64(24)
	if b.Rank == 1 {
		size = 512
	}
	return map[string]int64{b.SizeConfig: size}
}

func runBench(t *testing.T, b Benchmark, lvl core.Level) (string, *driver.Compilation) {
	t.Helper()
	c, err := driver.Compile(b.Source, driver.Options{Level: lvl, Configs: smallConfigs(b)})
	if err != nil {
		t.Fatalf("%s at %v: %v", b.Name, lvl, err)
	}
	var out bytes.Buffer
	if _, _, err := c.Run(vm.Options{Out: &out}); err != nil {
		t.Fatalf("%s at %v: run: %v", b.Name, lvl, err)
	}
	return out.String(), c
}

// TestBenchmarksSoundAtAllLevels is the suite-wide transformation
// soundness check: every benchmark computes identical output at every
// optimization level.
func TestBenchmarksSoundAtAllLevels(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, _ := runBench(t, b, core.Baseline)
			if want == "" {
				t.Fatalf("%s produced no output", b.Name)
			}
			for _, lvl := range core.Levels()[1:] {
				got, _ := runBench(t, b, lvl)
				if got != want {
					t.Errorf("%s at %v: output %q != baseline %q", b.Name, lvl, got, want)
				}
			}
		})
	}
}

// TestContractionProfile checks the Fig. 7 shape: every benchmark
// contracts a substantial share of its arrays at c2; EP contracts all;
// every compiler temporary is eliminated.
func TestContractionProfile(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, c := runBench(t, b, core.C2F3)
			counts := core.CountStaticArrays(c.AIR, c.Plan)
			if counts.ContractedCompiler != counts.TotalCompiler {
				t.Errorf("%s: %d/%d compiler temps contracted",
					b.Name, counts.ContractedCompiler, counts.TotalCompiler)
			}
			before, after := counts.Before(), counts.After()
			t.Logf("%s: %d arrays (%d compiler/%d user) -> %d after contraction",
				b.Name, before, counts.TotalCompiler, counts.TotalUser, after)
			if b.Name == "ep" && after != 0 {
				t.Errorf("ep: %d arrays survive, want 0 (paper: all eliminated)", after)
			}
			if b.Name == "frac" && after > 2 {
				t.Errorf("frac: %d arrays survive, want <=2 (paper: 8 -> 1)", after)
			}
			if after >= before {
				t.Errorf("%s: no contraction at all (%d -> %d)", b.Name, before, after)
			}
		})
	}
}
