package programs

// Frac estimates the area of a Mandelbrot-style fractal: each grid
// point carries a complex parameter c derived from its coordinates,
// the quadratic map z -> z^2 + c is applied a fixed number of steps
// (expressed as a chain of fresh array temporaries, the array-language
// idiom for an unrolled iteration), and the escape magnitude M is
// stored. Only M is live beyond the block, so contraction removes
// every other array — the paper reports 8 of Frac's 9 arrays
// eliminated (Fig. 7 shows 8 static arrays falling to 1).
const Frac = `
program frac;

config n : integer = 96;
config passes : integer = 3;

region G = [1..n, 1..n];

var CR, CI : [G] double;                   -- complex parameter
var ZR1, ZI1, ZR2, ZI2, ZR3, ZI3 : [G] double;
var M : [G] double;                        -- escape magnitude (live)

var area, chk : double;

proc main()
begin
  for p := 1 to passes do
    -- The parameter plane, jittered a little per pass.
    [G] CR := -2.0 + 2.5 * (index2 - 1) / n + 0.001 * p;
    [G] CI := -1.25 + 2.5 * (index1 - 1) / n;

    -- Three unrolled steps of z := z^2 + c.
    [G] ZR1 := CR * CR - CI * CI + CR;
    [G] ZI1 := 2.0 * CR * CI + CI;
    [G] ZR2 := ZR1 * ZR1 - ZI1 * ZI1 + CR;
    [G] ZI2 := 2.0 * ZR1 * ZI1 + CI;
    [G] ZR3 := ZR2 * ZR2 - ZI2 * ZI2 + CR;
    [G] ZI3 := 2.0 * ZR2 * ZI2 + CI;

    [G] M := ZR3 * ZR3 + ZI3 * ZI3;
  end;

  -- Points still bounded approximate the fractal's area.
  area := +<< [G] max(0.0, sign(4.0 - M));
  chk := area;
  writeln("frac", area);
end;
`
