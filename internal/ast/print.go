package ast

import (
	"fmt"
	"strings"
)

// Format renders the program as canonical ZA source. The result parses
// back to an equivalent tree, which the parser round-trip tests rely on.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s;\n", p.Name)
	for _, d := range p.Decls {
		b.WriteString(formatDecl(d))
	}
	for _, pr := range p.Procs {
		b.WriteString(formatProc(pr))
	}
	return b.String()
}

func formatDecl(d Decl) string {
	switch x := d.(type) {
	case *ConfigDecl:
		return fmt.Sprintf("config %s : %s = %s;\n", x.Name, x.Type.Kind, ExprString(x.Default))
	case *RegionDecl:
		return fmt.Sprintf("region %s = %s;\n", x.Name, regionLitString(x.Lit))
	case *DirectionDecl:
		offs := make([]string, len(x.Offsets))
		for i, o := range x.Offsets {
			offs[i] = ExprString(o)
		}
		return fmt.Sprintf("direction %s = (%s);\n", x.Name, strings.Join(offs, ", "))
	case *VarDecl:
		return "var " + varDeclString(x) + ";\n"
	}
	return fmt.Sprintf("-- unknown decl %T\n", d)
}

func varDeclString(x *VarDecl) string {
	t := x.Type.Kind.String()
	if x.Region != nil {
		t = RegionString(x.Region) + " " + t
	}
	return fmt.Sprintf("%s : %s", strings.Join(x.Names, ", "), t)
}

func formatProc(p *ProcDecl) string {
	var b strings.Builder
	params := make([]string, len(p.Params))
	for i, pa := range p.Params {
		params[i] = fmt.Sprintf("%s : %s", pa.Name, pa.Type.Kind)
	}
	fmt.Fprintf(&b, "proc %s(%s)", p.Name, strings.Join(params, "; "))
	if p.Result.Kind != InvalidType {
		fmt.Fprintf(&b, " : %s", p.Result.Kind)
	}
	b.WriteString("\n")
	for _, l := range p.Locals {
		b.WriteString("var " + varDeclString(l) + ";\n")
	}
	b.WriteString("begin\n")
	writeStmts(&b, p.Body, 1)
	b.WriteString("end;\n")
	return b.String()
}

func writeStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *ArrayAssign:
			fmt.Fprintf(b, "%s%s %s := %s;\n", ind, RegionString(x.Region), x.LHS, ExprString(x.RHS))
		case *ScalarAssign:
			fmt.Fprintf(b, "%s%s := %s;\n", ind, x.LHS, ExprString(x.RHS))
		case *IfStmt:
			fmt.Fprintf(b, "%sif %s then\n", ind, ExprString(x.Cond))
			writeStmts(b, x.Then, depth+1)
			if x.Else != nil {
				fmt.Fprintf(b, "%selse\n", ind)
				writeStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%send;\n", ind)
		case *ForStmt:
			dir := "to"
			if x.Down {
				dir = "downto"
			}
			fmt.Fprintf(b, "%sfor %s := %s %s %s do\n", ind, x.Var, ExprString(x.Lo), dir, ExprString(x.Hi))
			writeStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%send;\n", ind)
		case *WhileStmt:
			fmt.Fprintf(b, "%swhile %s do\n", ind, ExprString(x.Cond))
			writeStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%send;\n", ind)
		case *CallStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, ExprString(x.Call))
		case *ReturnStmt:
			if x.Value != nil {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, ExprString(x.Value))
			} else {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			}
		case *WritelnStmt:
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = ExprString(a)
			}
			fmt.Fprintf(b, "%swriteln(%s);\n", ind, strings.Join(args, ", "))
		default:
			fmt.Fprintf(b, "%s-- unknown stmt %T\n", ind, s)
		}
	}
}

// RegionString renders a region expression.
func RegionString(r *RegionExpr) string {
	if r == nil {
		return "[?]"
	}
	if r.Name != "" {
		return "[" + r.Name + "]"
	}
	return regionLitString(r.Lit)
}

func regionLitString(l *RegionLit) string {
	if l == nil {
		return "[?]"
	}
	parts := make([]string, len(l.Ranges))
	for i, rg := range l.Ranges {
		parts[i] = ExprString(rg.Lo) + ".." + ExprString(rg.Hi)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parentPrec int) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *AtExpr:
		if x.DirName != "" {
			return x.Array + "@" + x.DirName
		}
		offs := make([]string, len(x.Offsets))
		for i, o := range x.Offsets {
			offs[i] = ExprString(o)
		}
		return x.Array + "@(" + strings.Join(offs, ", ") + ")"
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *FloatLit:
		if x.Text != "" {
			return x.Text
		}
		return fmt.Sprintf("%g", x.Value)
	case *BoolLit:
		if x.Value {
			return "true"
		}
		return "false"
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *BinaryExpr:
		prec := x.Op.Precedence()
		s := exprString(x.X, prec) + " " + x.Op.String() + " " + exprString(x.Y, prec+1)
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	case *UnaryExpr:
		s := x.Op.String() + exprString(x.X, 7)
		if parentPrec > 6 {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *ReduceExpr:
		return x.Op.String() + " " + RegionString(x.Region) + " " + exprString(x.Body, 7)
	case nil:
		return "<nil>"
	}
	return fmt.Sprintf("<%T>", e)
}
