package ast

import (
	"strings"
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func TestExprString(t *testing.T) {
	pos := source.Pos{Line: 1, Col: 1}
	cases := []struct {
		e    Expr
		want string
	}{
		{&Ident{ExprPos: pos, Name: "x"}, "x"},
		{&IntLit{ExprPos: pos, Value: 42}, "42"},
		{&FloatLit{ExprPos: pos, Value: 2.5, Text: "2.5"}, "2.5"},
		{&FloatLit{ExprPos: pos, Value: 2.5}, "2.5"},
		{&BoolLit{ExprPos: pos, Value: true}, "true"},
		{&StringLit{ExprPos: pos, Value: "hi"}, `"hi"`},
		{&AtExpr{ExprPos: pos, Array: "A", DirName: "north"}, "A@north"},
		{&AtExpr{ExprPos: pos, Array: "A", Offsets: []Expr{
			&IntLit{Value: -1}, &IntLit{Value: 0}}}, "A@(-1, 0)"},
		{&UnaryExpr{ExprPos: pos, Op: token.MINUS, X: &Ident{Name: "x"}}, "-x"},
		{&CallExpr{ExprPos: pos, Name: "max", Args: []Expr{
			&Ident{Name: "a"}, &Ident{Name: "b"}}}, "max(a, b)"},
		{&BinaryExpr{ExprPos: pos, Op: token.PLUS,
			X: &Ident{Name: "a"},
			Y: &BinaryExpr{Op: token.STAR, X: &Ident{Name: "b"}, Y: &Ident{Name: "c"}},
		}, "a + b * c"},
		{&BinaryExpr{ExprPos: pos, Op: token.STAR,
			X: &BinaryExpr{Op: token.PLUS, X: &Ident{Name: "a"}, Y: &Ident{Name: "b"}},
			Y: &Ident{Name: "c"},
		}, "(a + b) * c"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestWalkPruning(t *testing.T) {
	e := &BinaryExpr{
		Op: token.PLUS,
		X:  &CallExpr{Name: "f", Args: []Expr{&Ident{Name: "inner"}}},
		Y:  &Ident{Name: "y"},
	}
	var visited []string
	Walk(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Ident:
			visited = append(visited, n.Name)
		case *CallExpr:
			return false // prune: skip "inner"
		}
		return true
	})
	if len(visited) != 1 || visited[0] != "y" {
		t.Errorf("visited = %v, want [y]", visited)
	}
}

func TestFormatProgramParts(t *testing.T) {
	prog := &Program{
		Name: "demo",
		Decls: []Decl{
			&ConfigDecl{Name: "n", Type: TypeExpr{Kind: Integer}, Default: &IntLit{Value: 4}},
			&RegionDecl{Name: "R", Lit: &RegionLit{Ranges: []Range{
				{Lo: &IntLit{Value: 1}, Hi: &Ident{Name: "n"}},
			}}},
			&DirectionDecl{Name: "e", Offsets: []Expr{&IntLit{Value: 0}, &IntLit{Value: 1}}},
			&VarDecl{Names: []string{"A", "B"},
				Region: &RegionExpr{Name: "R"}, Type: TypeExpr{Kind: Double}},
		},
		Procs: []*ProcDecl{{
			Name:   "f",
			Params: []Param{{Name: "x", Type: TypeExpr{Kind: Double}}},
			Result: TypeExpr{Kind: Double},
			Body: []Stmt{
				&ReturnStmt{Value: &Ident{Name: "x"}},
			},
		}},
	}
	out := Format(prog)
	for _, want := range []string{
		"program demo;",
		"config n : integer = 4;",
		"region R = [1..n];",
		"direction e = (0, 1);",
		"var A, B : [R] double;",
		"proc f(x : double) : double",
		"return x;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestProcLookup(t *testing.T) {
	p := &Program{Procs: []*ProcDecl{{Name: "a"}, {Name: "b"}}}
	if p.Proc("b") == nil || p.Proc("zz") != nil {
		t.Error("Proc lookup broken")
	}
}

func TestTypeKindString(t *testing.T) {
	if Integer.String() != "integer" || Double.String() != "double" ||
		Boolean.String() != "boolean" || InvalidType.String() != "invalid" {
		t.Error("TypeKind names broken")
	}
}
