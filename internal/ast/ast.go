// Package ast defines the abstract syntax tree of the ZA array language.
//
// The tree is deliberately small: the language exists to express the
// array-statement programs studied by Lewis, Lin & Snyder (PLDI 1998),
// so it provides regions, directions, element-wise array statements,
// reductions, and enough scalar control flow to drive iterative solvers.
package ast

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Node is implemented by every syntax tree node.
type Node interface {
	Pos() source.Pos
}

// ---------------------------------------------------------------------------
// Program and declarations

// Program is a complete ZA compilation unit.
type Program struct {
	NamePos source.Pos
	Name    string
	Decls   []Decl
	Procs   []*ProcDecl
}

func (p *Program) Pos() source.Pos { return p.NamePos }

// Proc returns the procedure named name, or nil.
func (p *Program) Proc(name string) *ProcDecl {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// ConfigDecl declares a compile-time-bindable constant:
//
//	config n : integer = 256;
type ConfigDecl struct {
	DeclPos source.Pos
	Name    string
	Type    TypeExpr
	Default Expr
}

// RegionDecl names an index set:
//
//	region R = [1..n, 1..n];
type RegionDecl struct {
	DeclPos source.Pos
	Name    string
	Lit     *RegionLit
}

// DirectionDecl names a constant offset vector:
//
//	direction north = (-1, 0);
type DirectionDecl struct {
	DeclPos source.Pos
	Name    string
	Offsets []Expr
}

// VarDecl declares one or more variables of a common type:
//
//	var A, B : [R] double;   -- arrays over region R
//	var s : double;          -- scalar
type VarDecl struct {
	DeclPos source.Pos
	Names   []string
	Region  *RegionExpr // nil for scalars
	Type    TypeExpr
}

// ProcDecl declares a procedure. Parameters and results are scalar.
type ProcDecl struct {
	DeclPos source.Pos
	Name    string
	Params  []Param
	Result  TypeExpr // zero Kind if none
	Locals  []*VarDecl
	Body    []Stmt
}

// Param is a scalar formal parameter.
type Param struct {
	Name string
	Type TypeExpr
}

func (d *ConfigDecl) Pos() source.Pos    { return d.DeclPos }
func (d *RegionDecl) Pos() source.Pos    { return d.DeclPos }
func (d *DirectionDecl) Pos() source.Pos { return d.DeclPos }
func (d *VarDecl) Pos() source.Pos       { return d.DeclPos }
func (d *ProcDecl) Pos() source.Pos      { return d.DeclPos }

func (*ConfigDecl) declNode()    {}
func (*RegionDecl) declNode()    {}
func (*DirectionDecl) declNode() {}
func (*VarDecl) declNode()       {}
func (*ProcDecl) declNode()      {}

// ---------------------------------------------------------------------------
// Type syntax

// TypeKind enumerates the scalar element types.
type TypeKind int

const (
	InvalidType TypeKind = iota
	Integer
	Double
	Boolean
)

func (k TypeKind) String() string {
	switch k {
	case Integer:
		return "integer"
	case Double:
		return "double"
	case Boolean:
		return "boolean"
	}
	return "invalid"
}

// TypeExpr is the written form of a scalar type.
type TypeExpr struct {
	TypePos source.Pos
	Kind    TypeKind
}

// ---------------------------------------------------------------------------
// Regions

// RegionExpr is either a reference to a named region or an inline literal.
type RegionExpr struct {
	ExprPos source.Pos
	Name    string     // non-empty for named reference
	Lit     *RegionLit // non-nil for inline literal
}

func (r *RegionExpr) Pos() source.Pos { return r.ExprPos }

// RegionLit is an inline region literal [lo1..hi1, lo2..hi2, ...].
type RegionLit struct {
	LitPos source.Pos
	Ranges []Range
}

func (r *RegionLit) Pos() source.Pos { return r.LitPos }

// Range is one dimension's bounds, inclusive on both ends.
type Range struct {
	Lo, Hi Expr
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ArrayAssign is an array statement executed over a region:
//
//	[R] A := B@north + 2.0 * C;
type ArrayAssign struct {
	StmtPos source.Pos
	Region  *RegionExpr
	LHS     string // array being assigned (written at offset zero)
	RHS     Expr
}

// ScalarAssign assigns to a scalar variable. The RHS may be a
// ReduceExpr, which is how reductions enter scalar code.
type ScalarAssign struct {
	StmtPos source.Pos
	LHS     string
	RHS     Expr
}

// IfStmt is scalar control flow.
type IfStmt struct {
	StmtPos source.Pos
	Cond    Expr
	Then    []Stmt
	Else    []Stmt // may be nil
}

// ForStmt is a scalar counted loop: for i := lo to hi do ... end;
type ForStmt struct {
	StmtPos source.Pos
	Var     string
	Lo, Hi  Expr
	Down    bool // downto
	Body    []Stmt
}

// WhileStmt is a scalar while loop.
type WhileStmt struct {
	StmtPos source.Pos
	Cond    Expr
	Body    []Stmt
}

// CallStmt invokes a procedure for its effects.
type CallStmt struct {
	StmtPos source.Pos
	Call    *CallExpr
}

// ReturnStmt returns from a procedure, optionally with a scalar value.
type ReturnStmt struct {
	StmtPos source.Pos
	Value   Expr // may be nil
}

// WritelnStmt prints its scalar arguments (strings or scalar exprs).
type WritelnStmt struct {
	StmtPos source.Pos
	Args    []Expr
}

func (s *ArrayAssign) Pos() source.Pos  { return s.StmtPos }
func (s *ScalarAssign) Pos() source.Pos { return s.StmtPos }
func (s *IfStmt) Pos() source.Pos       { return s.StmtPos }
func (s *ForStmt) Pos() source.Pos      { return s.StmtPos }
func (s *WhileStmt) Pos() source.Pos    { return s.StmtPos }
func (s *CallStmt) Pos() source.Pos     { return s.StmtPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.StmtPos }
func (s *WritelnStmt) Pos() source.Pos  { return s.StmtPos }

func (*ArrayAssign) stmtNode()  {}
func (*ScalarAssign) stmtNode() {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*CallStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()   {}
func (*WritelnStmt) stmtNode()  {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident references a scalar variable, config constant, loop variable,
// or — inside an array statement — an array at offset zero.
type Ident struct {
	ExprPos source.Pos
	Name    string
}

// AtExpr references an array shifted by a direction: A@north or A@(0,1).
type AtExpr struct {
	ExprPos source.Pos
	Array   string
	DirName string // non-empty for a named direction
	Offsets []Expr // non-nil for a literal direction
}

// IntLit is an integer literal.
type IntLit struct {
	ExprPos source.Pos
	Value   int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	ExprPos source.Pos
	Value   float64
	Text    string
}

// BoolLit is true or false.
type BoolLit struct {
	ExprPos source.Pos
	Value   bool
}

// StringLit appears only as a writeln argument.
type StringLit struct {
	ExprPos source.Pos
	Value   string
}

// BinaryExpr applies a binary operator element-wise (in array context)
// or to scalars.
type BinaryExpr struct {
	ExprPos source.Pos
	Op      token.Kind
	X, Y    Expr
}

// UnaryExpr applies unary minus or logical not.
type UnaryExpr struct {
	ExprPos source.Pos
	Op      token.Kind
	X       Expr
}

// CallExpr invokes a builtin math function or a user procedure.
type CallExpr struct {
	ExprPos source.Pos
	Name    string
	Args    []Expr
}

// ReduceExpr is a full reduction over a region: +<< [R] expr.
type ReduceExpr struct {
	ExprPos source.Pos
	Op      token.Kind // REDPLUS, REDSTAR, REDMAX, REDMIN
	Region  *RegionExpr
	Body    Expr
}

func (e *Ident) Pos() source.Pos      { return e.ExprPos }
func (e *AtExpr) Pos() source.Pos     { return e.ExprPos }
func (e *IntLit) Pos() source.Pos     { return e.ExprPos }
func (e *FloatLit) Pos() source.Pos   { return e.ExprPos }
func (e *BoolLit) Pos() source.Pos    { return e.ExprPos }
func (e *StringLit) Pos() source.Pos  { return e.ExprPos }
func (e *BinaryExpr) Pos() source.Pos { return e.ExprPos }
func (e *UnaryExpr) Pos() source.Pos  { return e.ExprPos }
func (e *CallExpr) Pos() source.Pos   { return e.ExprPos }
func (e *ReduceExpr) Pos() source.Pos { return e.ExprPos }

func (*Ident) exprNode()      {}
func (*AtExpr) exprNode()     {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*ReduceExpr) exprNode() {}

// Walk calls fn for every node in the expression tree rooted at e,
// in pre-order. fn returning false prunes the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *ReduceExpr:
		Walk(x.Body, fn)
	}
}
