package driver

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distvm"
	"repro/internal/vm"
)

// partial exercises ZPL-style dimensional reductions: row sums, column
// maxima, and their consumption by later statements.
const partial = `
program partial;
config n : integer = 6;
region R = [1..n, 1..n];
region Rows = [1..n, 1..1];
region Cols = [1..1, 1..n];
var A : [R] double;
var RS : [Rows] double;
var CM : [Cols] double;
var s, t : double;
proc main()
begin
  [R] A := index1 * 10.0 + index2;
  [Rows] RS := +<< [R] A;
  [Cols] CM := max<< [R] A;
  s := +<< [Rows] RS;
  t := +<< [Cols] CM;
  writeln(s, t);
end;
`

func TestPartialReductionValues(t *testing.T) {
	m, out := run(t, partial, Options{Level: core.Baseline})
	// Row i sum: sum_j (10i + j) = 60i + 21. RS[i][1] checks.
	if v, ok := m.At("RS", 3, 1); !ok || v != 60*3+21 {
		t.Errorf("RS[3] = %v, want %d", v, 60*3+21)
	}
	// Column max: max_i (10i + j) = 60 + j.
	if v, ok := m.At("CM", 1, 4); !ok || v != 64 {
		t.Errorf("CM[4] = %v, want 64", v)
	}
	// s = sum_i (60i+21) = 60*21 + 126 = 1386; t = sum_j (60+j) = 381.
	if !strings.Contains(out, "1386 381") {
		t.Errorf("output %q, want totals 1386 381", out)
	}
}

func TestPartialReductionAllLevels(t *testing.T) {
	_, want := run(t, partial, Options{Level: core.Baseline})
	for _, lvl := range core.AllLevels()[1:] {
		_, got := run(t, partial, Options{Level: lvl})
		if !outputsClose(got, want) {
			t.Errorf("level %v: %q != %q", lvl, got, want)
		}
	}
}

func TestPartialReductionDistributed(t *testing.T) {
	want, err := runLevel(partial, core.C2F3)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 9} {
		co := comm.DefaultOptions(procs)
		c, err := Compile(partial, Options{Level: core.C2F3, Comm: &co})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		dm, err := distvm.Run(c.LIR, distvm.Options{Procs: procs, Out: &out})
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
		if !outputsClose(out.String(), want) {
			t.Errorf("p=%d: %q != %q", procs, out.String(), want)
		}
		if err := dm.ScalarsConsistent(); err != nil {
			t.Errorf("p=%d: %v", procs, err)
		}
	}
}

// The destination array stays live and the reduction never fuses — it
// is unnormalized like communication.
func TestPartialReductionStaysUnfused(t *testing.T) {
	c, err := Compile(partial, Options{Level: core.C2F4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan.Contracted["RS"] || c.Plan.Contracted["CM"] {
		t.Error("partial-reduction destination contracted")
	}
	// A feeds an unnormalized statement: it must stay in memory too.
	if c.Plan.Contracted["A"] {
		t.Error("partial-reduction source contracted")
	}
}

func TestPartialReductionOrdering(t *testing.T) {
	// A is rewritten after the reduction: the reduction must read the
	// OLD values (anti dependence ordering).
	src := `
program order;
region R = [1..4, 1..4];
region Rows = [1..4, 1..1];
var A : [R] double;
var RS : [Rows] double;
var s : double;
proc main()
begin
  [R] A := 1.0;
  [Rows] RS := +<< [R] A;
  [R] A := 100.0;
  s := +<< [Rows] RS;
  writeln(s);
end;
`
	for _, lvl := range []core.Level{core.Baseline, core.C2F4} {
		_, out := run(t, src, Options{Level: lvl})
		if strings.TrimSpace(out) != "16" {
			t.Errorf("level %v: RS summed %q, want 16 (old A values)", lvl, out)
		}
	}
}

func TestPartialReductionErrors(t *testing.T) {
	bad := `
program bad;
region R = [1..4, 1..4];
region Wrong = [1..3, 1..1];
var A : [R] double;
var RS : [Wrong] double;
proc main()
begin
  [Wrong] RS := +<< [R] A;
end;
`
	if _, err := Compile(bad, Options{}); err == nil {
		t.Error("mismatched partial-reduction shape accepted")
	}
}

func TestPartialReductionNative(t *testing.T) {
	// gogen must emit it; toolchain round-trip happens in gogen tests.
	c, err := Compile(partial, Options{Level: core.C2F3})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, _, err := vm.Run(c.LIR, vm.Options{Out: &out}); err != nil {
		t.Fatal(err)
	}
}
