package driver

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/vm"
)

// genProgram builds a random straight-line-plus-loop ZA program over a
// small pool of arrays: random element-wise statements with random
// neighbor offsets, interleaved reductions, all checksummed at the
// end. It is the input generator for the transformation-soundness
// property test.
func genProgram(r *rand.Rand) string {
	nArrays := 3 + r.Intn(4)
	var b strings.Builder
	b.WriteString("program quickgen;\nconfig n : integer = 8;\nregion R = [1..n, 1..n];\nregion I = [2..n-1, 2..n-1];\n")
	names := make([]string, nArrays)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	fmt.Fprintf(&b, "var %s : [R] double;\n", strings.Join(names, ", "))
	b.WriteString("var s, acc : double;\nproc main()\nbegin\n")
	for i, nm := range names {
		fmt.Fprintf(&b, "  [R] %s := index1 * 0.%d + index2 * 0.3;\n", nm, i+1)
	}
	b.WriteString("  acc := 0.0;\n")
	b.WriteString("  for it := 1 to 2 do\n")
	nStmts := 3 + r.Intn(6)
	regions := []string{"R", "I"}
	for i := 0; i < nStmts; i++ {
		target := names[r.Intn(nArrays)]
		reg := regions[r.Intn(2)]
		terms := make([]string, 1+r.Intn(3))
		for j := range terms {
			src := names[r.Intn(nArrays)]
			dx, dy := r.Intn(3)-1, r.Intn(3)-1
			if reg == "R" {
				// Keep offsets inside allocations trivially legal:
				// offsets allowed anywhere (halos are zero-filled),
				// but restrict to one-sided to vary dependences.
				dx, dy = r.Intn(2)-1, r.Intn(2)-1
			}
			if dx == 0 && dy == 0 {
				terms[j] = src
			} else {
				terms[j] = fmt.Sprintf("%s@(%d,%d)", src, dx, dy)
			}
		}
		fmt.Fprintf(&b, "    [%s] %s := (%s) * 0.4;\n", reg, target, strings.Join(terms, " + "))
		if r.Intn(4) == 0 {
			fmt.Fprintf(&b, "    s := +<< [I] %s;\n    acc := acc + s * 0.1;\n", names[r.Intn(nArrays)])
		}
	}
	b.WriteString("  end;\n")
	for _, nm := range names {
		fmt.Fprintf(&b, "  s := +<< [R] %s;\n  writeln(\"%s\", s);\n", nm, nm)
	}
	b.WriteString("  writeln(\"acc\", acc);\nend;\n")
	return b.String()
}

// outputsClose compares two writeln transcripts token-wise, allowing
// tiny relative differences on numeric tokens: fusing a reduction into
// a nest with a different loop structure reorders the accumulation,
// which is not bitwise-associative in floating point (the paper's
// compiler reassociates reductions the same way).
func outputsClose(a, b string) bool {
	ta, tb := strings.Fields(a), strings.Fields(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] == tb[i] {
			continue
		}
		fa, errA := strconv.ParseFloat(ta[i], 64)
		fb, errB := strconv.ParseFloat(tb[i], 64)
		if errA != nil || errB != nil {
			return false
		}
		diff := math.Abs(fa - fb)
		scale := math.Max(math.Abs(fa), math.Abs(fb))
		if diff > 1e-9*math.Max(scale, 1) {
			return false
		}
	}
	return true
}

func runLevel(src string, lvl core.Level) (string, error) {
	c, err := Compile(src, Options{Level: lvl})
	if err != nil {
		return "", err
	}
	var out bytes.Buffer
	if _, _, err := c.Run(vm.Options{Out: &out}); err != nil {
		return "", err
	}
	return out.String(), nil
}

// TestQuickTransformationSoundness: for random programs, every
// optimization level computes exactly the baseline's output.
func TestQuickTransformationSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		want, err := runLevel(src, core.Baseline)
		if err != nil {
			t.Logf("baseline failed (seed %d): %v\n%s", seed, err, src)
			return false
		}
		for _, lvl := range []core.Level{core.C1, core.C2, core.C2F3, core.C2F4} {
			got, err := runLevel(src, lvl)
			if err != nil {
				t.Logf("%v failed (seed %d): %v\n%s", lvl, seed, err, src)
				return false
			}
			if !outputsClose(got, want) {
				t.Logf("%v diverged (seed %d):\nwant %q\ngot  %q\n%s", lvl, seed, want, got, src)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionsValid: the fusion partitions produced for random
// programs always satisfy Definition 5 (re-checked independently by
// Partition.Validate).
func TestQuickPartitionsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		for _, lvl := range []core.Level{core.C1, core.C2, core.C2F3, core.C2F4} {
			c, err := Compile(src, Options{Level: lvl})
			if err != nil {
				t.Logf("compile failed (seed %d): %v", seed, err)
				return false
			}
			for _, bp := range c.Plan.Blocks {
				if bp.Part == nil {
					continue
				}
				if err := bp.Part.Validate(); err != nil {
					t.Logf("invalid partition (seed %d, %v): %v\n%s", seed, lvl, err, src)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDistributedSoundness: random programs with communication
// inserted still match the sequential baseline.
func TestQuickDistributedSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		want, err := runLevel(src, core.Baseline)
		if err != nil {
			return false
		}
		for _, procs := range []int{4, 16} {
			co := defaultComm(procs)
			c, err := Compile(src, Options{Level: core.C2F3, Comm: &co})
			if err != nil {
				t.Logf("distributed compile failed (seed %d): %v", seed, err)
				return false
			}
			var out bytes.Buffer
			if _, _, err := c.Run(vm.Options{Out: &out}); err != nil {
				t.Logf("distributed run failed (seed %d): %v", seed, err)
				return false
			}
			if !outputsClose(out.String(), want) {
				t.Logf("distributed diverged (seed %d, p=%d)\n%s", seed, procs, src)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func defaultComm(procs int) comm.Options { return comm.DefaultOptions(procs) }

// checkFailure reports the verification error for src under opt, or
// "" when the pipeline compiles and verifies clean. Used as the
// failure predicate for both the fuzz pass and the shrinker.
func checkFailure(src string, opt Options) string {
	opt.Check = true
	if _, err := Compile(src, opt); err != nil {
		return err.Error()
	}
	return ""
}

// shrinkProgram greedily deletes statement lines from a failing random
// program while the failure (a non-empty string from failing) persists,
// so the logged reproducer is close to minimal.
func shrinkProgram(src string, failing func(string) string) string {
	for {
		lines := strings.Split(src, "\n")
		shrunk := false
		for i, ln := range lines {
			trimmed := strings.TrimSpace(ln)
			// Only statement lines are candidates; structure lines
			// (program/region/var/for/end) must survive.
			if !strings.Contains(trimmed, ":=") && !strings.HasPrefix(trimmed, "writeln") {
				continue
			}
			cand := strings.Join(append(append([]string{}, lines[:i]...), lines[i+1:]...), "\n")
			if failing(cand) != "" {
				src = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return src
		}
	}
}

// TestQuickVerifierClean: every random program the generator can
// produce must verify clean under the full static verifier at every
// level, sequential and distributed. A failure is shrunk to a
// near-minimal reproducer before logging.
func TestQuickVerifierClean(t *testing.T) {
	sequential := []core.Level{core.Baseline, core.C1, core.C2, core.C2F3, core.C2F4}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		var opts []Options
		for _, lvl := range sequential {
			opts = append(opts, Options{Level: lvl})
		}
		co := defaultComm(4)
		opts = append(opts, Options{Level: core.C2F3, Comm: &co})
		for _, opt := range opts {
			if msg := checkFailure(src, opt); msg != "" {
				small := shrinkProgram(src, func(s string) string { return checkFailure(s, opt) })
				t.Logf("verifier failed (seed %d, level %v, dist %v): %s\nshrunk reproducer:\n%s",
					seed, opt.Level, opt.Comm != nil, msg, small)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
