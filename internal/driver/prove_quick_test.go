package driver

// Differential soundness fuzz for the bounds prover: on random
// programs across the optimization ladder, bounds-check elimination
// must be invisible — the unchecked run never traps and its output is
// bit-identical (not merely close) to the fully checked run of the
// same compilation, since both execute the same plan and the same
// floating-point schedule. Every program is also pushed through the
// check.Bounds cross-validator (Options.Check), so each fuzz input
// doubles as a re-derivation test of the prover's evidence.

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/vm"
)

// runProve compiles src once and runs it both checked (prover result
// withheld from the VM) and unchecked (verdicts applied).
func runProve(src string, lvl core.Level, fault int) (checked, unchecked string, proven, total int, err error) {
	c, err := Compile(src, Options{Level: lvl, Check: fault == 0, ProveFault: fault})
	if err != nil {
		return "", "", 0, 0, err
	}
	var chk bytes.Buffer
	if _, _, err := vm.Run(c.LIR, vm.Options{Out: &chk}); err != nil {
		return "", "", 0, 0, err
	}
	var unchk bytes.Buffer
	if _, _, err := c.Run(vm.Options{Out: &unchk}); err != nil {
		return "", "", 0, 0, err
	}
	return chk.String(), unchk.String(), c.Bounds.NumProven, len(c.Bounds.Sites), nil
}

// TestQuickProveSoundness: for random programs at every ladder level,
// the prover proves every site, the cross-validator agrees, and
// unchecked execution is bit-identical to checked execution.
func TestQuickProveSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		for _, lvl := range []core.Level{core.Baseline, core.C1, core.C2F4} {
			checked, unchecked, proven, total, err := runProve(src, lvl, 0)
			if err != nil {
				t.Logf("%v failed (seed %d): %v\n%s", lvl, seed, err, src)
				return false
			}
			if proven != total {
				t.Logf("%v (seed %d): only %d/%d sites proven\n%s", lvl, seed, proven, total, src)
				return false
			}
			if checked != unchecked {
				t.Logf("%v (seed %d): unchecked output diverged\nchecked   %q\nunchecked %q\n%s",
					lvl, seed, checked, unchecked, src)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProveFaultCaught: seeding a one-element evidence fault into
// a random program must be caught — statically by the bounds
// cross-check, and dynamically (for live sites) by the checked-vs-
// unchecked differential. A site whose faulted output still matches is
// legal (a dead store); what is never legal is the static check
// missing it.
func TestQuickProveFaultCaught(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)

		// Static catch: Check must reject the faulted compilation.
		if _, err := Compile(src, Options{Level: core.C2F4, Check: true, ProveFault: 1}); err == nil {
			t.Logf("seed %d: check.Bounds missed the injected fault\n%s", seed, src)
			return false
		}

		// Dynamic catch: at least one faulted site must change the
		// output (random programs keep their arrays live through the
		// final checksums, so dead sites are rare).
		base, _, _, total, err := runProve(src, core.C2F4, 0)
		if err != nil {
			t.Logf("seed %d: baseline failed: %v", seed, err)
			return false
		}
		if total == 0 {
			return true // fully contracted: no sites to fault
		}
		for site := 1; site <= total; site++ {
			_, faulted, _, _, err := runProve(src, core.C2F4, site)
			if err != nil || faulted != base {
				return true
			}
		}
		t.Logf("seed %d: no injected fault changed the output across %d sites\n%s", seed, total, src)
		return false
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
