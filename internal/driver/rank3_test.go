package driver

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/air"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distvm"
	"repro/internal/vm"
)

// rank3 is a 3-D stencil with a contractible temporary and a
// reduction — exercising FIND-LOOP-STRUCTURE, scalarization, the VM,
// and the distributed interpreter beyond the rank-2 benchmarks.
const rank3 = `
program cube;
config n : integer = 8;
region V = [1..n, 1..n, 1..n];
region I = [2..n-1, 2..n-1, 2..n-1];
direction up = (-1, 0, 0); north = (0, -1, 0); west = (0, 0, -1);
var F, G : [V] double;
var T : [V] double;
var s : double;
proc main()
begin
  [V] F := index1 * 1.0 + index2 * 0.1 + index3 * 0.01;
  [V] G := 0.0;
  for it := 1 to 2 do
    [I] T := (F@up + F@north + F@west) / 3.0;
    [I] G := T + F;
    [I] F := F@up + G * 0.125;
    s := +<< [I] G;
  end;
  writeln("cube", s);
end;
`

func TestRank3AllLevels(t *testing.T) {
	_, want := run(t, rank3, Options{Level: core.Baseline})
	if !strings.Contains(want, "cube") {
		t.Fatalf("no output: %q", want)
	}
	for _, lvl := range core.AllLevels()[1:] {
		_, got := run(t, rank3, Options{Level: lvl})
		// Fused reductions reorder the accumulation; compare with the
		// usual floating-point tolerance.
		if !outputsClose(got, want) {
			t.Errorf("level %v: %q != %q", lvl, got, want)
		}
	}
	// T must contract at c2.
	c, err := Compile(rank3, Options{Level: core.C2})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Plan.Contracted["T"] {
		t.Error("rank-3 temporary not contracted")
	}
}

func TestRank3Distributed(t *testing.T) {
	wantC, err := Compile(rank3, Options{Level: core.C2F3})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, _, err := vm.Run(wantC.LIR, vm.Options{Out: &want}); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{4, 8} {
		co := comm.DefaultOptions(procs)
		c, err := Compile(rank3, Options{Level: core.C2F3, Comm: &co})
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := distvm.Run(c.LIR, distvm.Options{Procs: procs, Out: &got}); err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
		if !outputsClose(got.String(), want.String()) {
			t.Errorf("p=%d: %q != %q", procs, got.String(), want.String())
		}
	}
}

// Rank-3 loop structure: a one-sided dependence in dimension 2 forces
// a reversal there while dims 1 and 3 stay forward.
func TestRank3LoopStructure(t *testing.T) {
	p, ok := core.FindLoopStructure(3, []air.Offset{{0, -1, 0}})
	if !ok {
		t.Fatal("no structure")
	}
	if p[0] != 1 || p[1] != -2 || p[2] != 3 {
		t.Errorf("structure = %v, want (1,-2,3)", p)
	}
}
