package driver

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lir"
	"repro/internal/vm"
)

// stencil exercises user temporaries (T contracts after fusion),
// compiler temporaries (X := X@north + Y needs one, contractible with
// a reversed loop), reductions, and iteration.
const stencil = `
program stencil;
config n : integer = 16;
config iters : integer = 4;
region R = [1..n, 1..n];
region I = [2..n-1, 2..n-1];
direction north = (-1, 0); west = (0, -1);
var X, Y : [R] double;
var T : [R] double;
var s : double;
proc main()
begin
  [R] X := 1.0;
  [R] Y := 0.0;
  for it := 1 to iters do
    [I] T := (X@north + X@west) * 0.5;
    [I] Y := T + X;
    [I] X := X@north + Y;
    s := +<< [I] Y;
  end;
  writeln("sum", s);
end;
`

func run(t *testing.T, src string, opt Options) (*vm.Machine, string) {
	t.Helper()
	c, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("compile at %v: %v", opt.Level, err)
	}
	var out bytes.Buffer
	m, _, err := c.Run(vm.Options{Out: &out})
	if err != nil {
		t.Fatalf("run at %v: %v\n%s", opt.Level, err, lir.EmitC(c.LIR))
	}
	return m, out.String()
}

// TestAllLevelsAgree is the transformation-soundness test: every
// optimization level computes the same results.
func TestAllLevelsAgree(t *testing.T) {
	_, want := run(t, stencil, Options{Level: core.Baseline})
	if !strings.Contains(want, "sum") {
		t.Fatalf("baseline output missing sum: %q", want)
	}
	for _, lvl := range core.Levels()[1:] {
		_, got := run(t, stencil, Options{Level: lvl})
		if got != want {
			t.Errorf("level %v output = %q, want %q", lvl, got, want)
		}
	}
}

// TestAllLevelsAgreeDistributed re-checks soundness with communication
// inserted, both strategies.
func TestAllLevelsAgreeDistributed(t *testing.T) {
	_, want := run(t, stencil, Options{Level: core.Baseline})
	for _, strat := range []comm.Strategy{comm.FavorFusion, comm.FavorComm} {
		for _, lvl := range core.Levels() {
			co := comm.DefaultOptions(4)
			co.Strategy = strat
			_, got := run(t, stencil, Options{Level: lvl, Comm: &co})
			if got != want {
				t.Errorf("level %v strategy %v output = %q, want %q", lvl, strat, got, want)
			}
		}
	}
}

func TestContractionReducesMemory(t *testing.T) {
	mBase, _ := run(t, stencil, Options{Level: core.Baseline})
	mC2, _ := run(t, stencil, Options{Level: core.C2})
	if mC2.MemoryFootprint() >= mBase.MemoryFootprint() {
		t.Errorf("c2 footprint %d not below baseline %d",
			mC2.MemoryFootprint(), mBase.MemoryFootprint())
	}
}

func TestContractionEliminatesTempAndCompilerArrays(t *testing.T) {
	c, err := Compile(stencil, Options{Level: core.C2})
	if err != nil {
		t.Fatal(err)
	}
	// T (user temp) and the compiler temp for [I] X := X*0.5+T*0.5
	// must both be contracted.
	if !c.Plan.Contracted["T"] {
		t.Errorf("user temporary T not contracted; contracted = %v", c.Plan.Contracted)
	}
	foundTemp := false
	for name, a := range c.AIR.Arrays {
		if a.Temp {
			foundTemp = true
			if !c.Plan.Contracted[name] {
				t.Errorf("compiler temp %s not contracted", name)
			}
		}
	}
	if !foundTemp {
		t.Error("no compiler temp was generated for the self-referencing statement")
	}
}

func TestC1ContractsOnlyCompilerArrays(t *testing.T) {
	c, err := Compile(stencil, Options{Level: core.C1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan.Contracted["T"] {
		t.Error("c1 contracted a user array")
	}
	any := false
	for name, a := range c.AIR.Arrays {
		if a.Temp && c.Plan.Contracted[name] {
			any = true
		}
	}
	if !any {
		t.Error("c1 contracted no compiler arrays")
	}
}

func TestFusionReducesNestCount(t *testing.T) {
	base, err := Compile(stencil, Options{Level: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(stencil, Options{Level: core.C2})
	if err != nil {
		t.Fatal(err)
	}
	if c2.LIR.CountNests() >= base.LIR.CountNests() {
		t.Errorf("c2 nests %d not below baseline %d", c2.LIR.CountNests(), base.LIR.CountNests())
	}
}

func TestNumericCorrectness(t *testing.T) {
	// A hand-checkable computation: X=1 everywhere, then
	// Y = X@north + 2, sum over interior of 4x4.
	src := `
program tiny;
region R = [1..4, 1..4];
region I = [2..3, 2..3];
direction north = (-1, 0);
var X, Y : [R] double;
var s : double;
proc main()
begin
  [R] X := 1.0;
  [I] Y := X@north + 2.0;
  s := +<< [I] Y;
  writeln(s);
end;
`
	for _, lvl := range core.Levels() {
		m, out := run(t, src, Options{Level: lvl})
		// Y = 3.0 over the 2x2 interior; sum = 12.
		if !strings.HasPrefix(strings.TrimSpace(out), "12") {
			t.Errorf("level %v: output %q, want 12", lvl, out)
		}
		if v, ok := m.At("X", 1, 1); !ok || v != 1.0 {
			t.Errorf("level %v: X[1,1] = %v, %v", lvl, v, ok)
		}
	}
}

func TestReversedLoopSemantics(t *testing.T) {
	// A := A@(-1,0)+A@(-1,0) via compiler temp: requires the fused
	// loop to run dimension 1 in reverse. Row i becomes 2*old(i-1).
	src := `
program rev;
region R = [1..4, 1..4];
direction north = (-1, 0);
var A : [R] double;
var s : double;
proc main()
begin
  [R] A := 3.0;
  [R] A := A@north + A@north;
  s := +<< [R] A;
  writeln(s);
end;
`
	for _, lvl := range core.Levels() {
		m, _ := run(t, src, Options{Level: lvl})
		// Row 1 reads the halo row 0 (zeros): A[1][*] = 0.
		// Rows 2..4 = 6.0 each.
		if v, ok := m.At("A", 1, 1); !ok || v != 0 {
			t.Errorf("level %v: A[1,1] = %v, want 0", lvl, v)
		}
		if v, ok := m.At("A", 3, 2); !ok || v != 6 {
			t.Errorf("level %v: A[3,2] = %v, want 6", lvl, v)
		}
	}
}

func TestProcedures(t *testing.T) {
	src := `
program procs;
var a, b : double;
proc square(x : double) : double
begin
  return x * x;
end;
proc main()
begin
  a := square(3.0);
  b := square(a) + square(2.0);
  writeln(a, b);
end;
`
	_, out := run(t, src, Options{Level: core.C2})
	want := "9 85"
	if strings.TrimSpace(out) != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestConfigOverrideChangesProblemSize(t *testing.T) {
	c, err := Compile(stencil, Options{Level: core.C2, Configs: map[string]int64{"n": 32}})
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Info.Regions["R"]; r.Size() != 1024 {
		t.Errorf("R size %d, want 1024", r.Size())
	}
}

func TestMaxReduction(t *testing.T) {
	src := `
program mx;
region R = [1..8];
var A : [R] double;
var m, mn : double;
proc main()
var i : double;
begin
  i := 0.0;
  [R] A := 5.0;
  m := max<< [R] A * 2.0;
  mn := min<< [R] A - 7.0;
  writeln(m, mn);
end;
`
	_, out := run(t, src, Options{Level: core.C2})
	if strings.TrimSpace(out) != "10 -2" {
		t.Errorf("output %q, want 10 -2", out)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("program broken;;", Options{}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Compile("program p; proc main() begin x := 1; end;", Options{}); err == nil {
		t.Error("expected sema error")
	}
	src := `
program rec;
proc a() begin b(); end;
proc b() begin a(); end;
proc main() begin a(); end;
`
	if _, err := Compile(src, Options{}); err == nil {
		t.Error("expected recursion error")
	}
}

func TestWhileAndIf(t *testing.T) {
	src := `
program ctrl;
var n, f : double;
proc main()
begin
  n := 5.0;
  f := 1.0;
  while n > 0.0 do
    f := f * n;
    n := n - 1.0;
  end;
  if f = 120.0 then
    writeln("ok", f);
  else
    writeln("bad", f);
  end;
end;
`
	_, out := run(t, src, Options{Level: core.C2})
	if strings.TrimSpace(out) != "ok 120" {
		t.Errorf("output %q", out)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m1, o1 := run(t, stencil, Options{Level: core.C2F4})
	m2, o2 := run(t, stencil, Options{Level: core.C2F4})
	if o1 != o2 {
		t.Errorf("outputs differ: %q vs %q", o1, o2)
	}
	s1, _ := m1.Scalar("s")
	s2, _ := m2.Scalar("s")
	if math.Abs(s1-s2) > 0 {
		t.Errorf("scalars differ: %v vs %v", s1, s2)
	}
}

func TestDriverErrorPaths(t *testing.T) {
	cases := map[string]string{
		"parse":    "program ;;;",
		"sema":     "program p; proc main() begin zz := 1; end;",
		"noMain":   "program p; proc other() begin end;",
		"badShape": "program p; region R = [5..1]; var A : [R] double; proc main() begin end;",
	}
	for name, src := range cases {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("%s: compile succeeded", name)
		}
	}
}

func TestCompilationIsolation(t *testing.T) {
	// Two compilations of the same source must not share mutable IR:
	// planning one at c2 cannot mark arrays contracted in the other.
	a, err := Compile(stencil, Options{Level: core.C2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(stencil, Options{Level: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	for name, info := range b.AIR.Arrays {
		if info.Contracted {
			t.Errorf("baseline compilation has contracted array %s", name)
		}
	}
	if len(a.Plan.Contracted) == 0 {
		t.Error("c2 compilation contracted nothing")
	}
}
