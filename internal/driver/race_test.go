package driver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mhp"
	"repro/internal/programs"
)

// TestRaceLadderClean: the acceptance sweep for the happens-before
// analyzer. Every compiler-produced schedule across the benchmark
// suite × the full optimization ladder × {2,4,8} processors must be
// ProvenOrdered with zero Unknown conflicting pairs and no deadlocks.
func TestRaceLadderClean(t *testing.T) {
	totalOrdered, totalSends := 0, 0
	for _, b := range programs.All() {
		for _, lv := range core.AllLevels() {
			for _, p := range []int{2, 4, 8} {
				co := defaultComm(p)
				c, err := Compile(b.Source, Options{
					Level: lv, Comm: &co,
					Configs: map[string]int64{b.SizeConfig: 32},
				})
				if err != nil {
					t.Fatalf("%s/%s/p%d: %v", b.Name, lv, p, err)
				}
				res := mhp.Analyze(mhp.BuildSchedule(c.LIR, p))
				if !res.Clean() {
					for _, pr := range res.Pairs {
						if pr.Verdict != mhp.ProvenOrdered {
							t.Logf("  %s", pr)
						}
					}
					for _, d := range res.Deadlocks {
						t.Logf("  deadlock: %s", d)
					}
					t.Errorf("%s/%s/p%d: ordered=%d race=%d unknown=%d deadlocks=%d",
						b.Name, lv, p, res.NumOrdered, res.NumRace, res.NumUnknown, len(res.Deadlocks))
				}
				totalOrdered += res.NumOrdered
				totalSends += res.Sends
			}
		}
	}
	// The sweep must exercise the analyzer, not vacuously pass on
	// schedules with no communication or no conflicting pairs.
	if totalOrdered == 0 || totalSends == 0 {
		t.Fatalf("sweep proved nothing: ordered=%d sends=%d", totalOrdered, totalSends)
	}
}

// TestRaceFaultsRejected: every seeded schedule fault, injected into a
// real compiler-produced schedule, must be rejected with a positioned
// diagnostic (a race or deadlock naming both events).
func TestRaceFaultsRejected(t *testing.T) {
	b, ok := programs.ByName("simple")
	if !ok {
		t.Fatal("benchmark simple not found")
	}
	co := defaultComm(4)
	c, err := Compile(b.Source, Options{
		Level: core.C2F3, Comm: &co,
		Configs: map[string]int64{b.SizeConfig: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := mhp.BuildSchedule(c.LIR, 4)
	if res := mhp.Analyze(base); !res.Clean() {
		t.Fatalf("baseline schedule not clean: %+v", res)
	}
	for _, kind := range mhp.FaultKinds() {
		bad, err := mhp.Inject(base, kind)
		if err != nil {
			t.Fatalf("%s: no injection site in a real stencil schedule: %v", kind, err)
		}
		res := mhp.Analyze(bad)
		if err := res.Err(); err == nil {
			t.Errorf("%s: seeded fault %v not rejected", kind, bad.Faults)
		} else {
			t.Logf("%s: rejected: %v", kind, err)
		}
	}
	// The original schedule must be untouched by the injections.
	if res := mhp.Analyze(base); !res.Clean() {
		t.Errorf("injection mutated the original schedule")
	}
}

// raceFailure is the fuzz failure predicate: a program whose compiled
// distributed schedule analyzes as anything but clean.
func raceFailure(src string, opt Options, procs int) string {
	c, err := Compile(src, opt)
	if err != nil {
		// Generator programs always compile; a failure here is its own
		// bug but not a race-analysis one.
		return ""
	}
	res := mhp.Analyze(mhp.BuildSchedule(c.LIR, procs))
	if res.Clean() {
		return ""
	}
	for _, p := range res.Pairs {
		if p.Verdict != mhp.ProvenOrdered {
			return p.String()
		}
	}
	return res.Deadlocks[0].String()
}

// TestQuickRaceClean: every random program the generator can produce
// yields a clean happens-before analysis at every distributed
// configuration — the fuzz companion to TestRaceLadderClean, sharing
// its shrinking harness with TestQuickVerifierClean.
func TestQuickRaceClean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		for _, lvl := range []core.Level{core.C2, core.C2F3, core.C2F4} {
			for _, procs := range []int{2, 4} {
				co := defaultComm(procs)
				opt := Options{Level: lvl, Comm: &co}
				if msg := raceFailure(src, opt, procs); msg != "" {
					small := shrinkProgram(src, func(s string) string { return raceFailure(s, opt, procs) })
					t.Logf("race analysis failed (seed %d, level %v, p=%d): %s\nshrunk reproducer:\n%s",
						seed, lvl, procs, msg, small)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
