// Package driver runs the end-to-end compilation pipeline:
//
//	source → parse → sema → lower (normalize) → [comm insertion]
//	       → fusion/contraction plan → scalarize → LIR
//
// and executes the result on the VM. Each Compile call lowers a fresh
// program instance, so strategies can be compared side by side without
// sharing mutable IR.
package driver

import (
	"context"
	"fmt"

	"repro/internal/absint"
	"repro/internal/air"
	"repro/internal/check"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lir"
	"repro/internal/lower"
	"repro/internal/mhp"
	"repro/internal/parser"
	"repro/internal/scalarize"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/vm"
)

// Hooks observes pipeline phase boundaries. The driver brackets each
// phase with PhaseStart(name)/PhaseEnd(name); the names it emits are
// "parse", "sema", "lower", "comm", "asdg", "fusion", "contraction",
// "scalarize", "prove", "race", and "check" (the optimizer's internal asdg/
// fusion/contraction phases are reported once per statement block). Either
// callback may be nil. A Hooks value belongs to a single Compile call:
// it is invoked sequentially, but two concurrent compilations must not
// share one stateful pair.
type Hooks struct {
	PhaseStart func(name string)
	PhaseEnd   func(name string)
}

func (h Hooks) begin(name string) {
	if h.PhaseStart != nil {
		h.PhaseStart(name)
	}
}

func (h Hooks) done(name string) {
	if h.PhaseEnd != nil {
		h.PhaseEnd(name)
	}
}

// Backend names an execution engine for the compiled program. The
// driver itself always produces the same IR; the backend choice is
// carried in Options because it shapes the *artifact* a cached
// compilation must hold (the native backend's entry includes a built
// binary), so it participates in the ccache fingerprint.
type Backend string

// The execution backends.
const (
	// BackendVM interprets the LIR on the bytecode VM (the default;
	// the empty string means BackendVM).
	BackendVM Backend = "vm"
	// BackendGo emits the LIR as Go, builds it with the host
	// toolchain, and executes the native binary (internal/backend).
	BackendGo Backend = "go"
)

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "vm":
		return BackendVM, nil
	case "go":
		return BackendGo, nil
	}
	return BackendVM, fmt.Errorf("unknown backend %q (want vm or go)", s)
}

// Native reports whether the backend executes host machine code.
func (b Backend) Native() bool { return b == BackendGo }

// Options selects problem size and optimization strategy.
type Options struct {
	// Configs overrides config constants by name (problem size).
	Configs map[string]int64
	// Level is the optimization strategy (§5.4 ladder).
	Level core.Level
	// Comm, when non-nil, inserts and optimizes communication for a
	// distributed execution with the given settings (§5.5).
	Comm *comm.Options
	// Plan, when non-nil, supplies the fusion/contraction plan
	// externally (core.ApplySpec) instead of running the Level ladder:
	// the path by which a zpltune-found plan reaches the backend. The
	// spec is re-proved legal during application; Level is ignored.
	Plan *core.PlanSpec
	// ScalarReplace additionally installs scalar replacement in the
	// generated loop nests (the §6 related-work technique; repeated
	// per-iteration reads load once into a register).
	ScalarReplace bool
	// Check runs the static verifier (package check) between pipeline
	// phases and fails the compilation on any report.
	Check bool
	// NoProve disables the abstract-interpretation bounds prover
	// (internal/absint). By default every compilation carries per-site
	// safety verdicts (Compilation.Bounds) that let the VM and the
	// native emitter drop bounds checks at ProvenSafe sites; NoProve
	// keeps every runtime check, which is the differential baseline the
	// prove harness compares against. The flag participates in the
	// ccache fingerprint: checked and unchecked artifacts never alias.
	NoProve bool
	// ProveFault, when > 0, makes the prover deliberately perturb the
	// evidence of the Nth ProvenSafe site (1-based) by one element — a
	// seeded miscompile for the soundness self-test. The bounds
	// verifier (check.Bounds, enabled with Check) and the differential
	// harness must both catch it.
	ProveFault int
	// NoRace disables the happens-before race & deadlock analyzer
	// (internal/mhp). By default every distributed compilation proves
	// its comm schedule race- and deadlock-free and carries the verdict
	// census (Compilation.Races); NoRace skips the proof, which is only
	// appropriate for tools that re-run the analyzer themselves. Like
	// NoProve it participates in the ccache fingerprint.
	NoRace bool
	// Backend selects the execution engine the artifact targets; the
	// zero value is BackendVM. The pipeline is backend-independent,
	// but the fingerprint is not: a native-backend artifact carries a
	// built binary a VM artifact does not (see ccache.Fingerprint).
	Backend Backend
	// Hooks observes phase boundaries (metrics, tracing). Not part of
	// a compilation's semantic identity: two Options differing only in
	// Hooks produce identical artifacts (see ccache.Fingerprint).
	Hooks Hooks
}

// Compilation is the result of one pipeline run.
type Compilation struct {
	Info *sema.Info
	AIR  *air.Program
	Plan *core.Plan
	LIR  *lir.Program
	Comm *comm.Result // nil when communication was not requested
	// Bounds carries the per-access-site safety verdicts of the
	// abstract-interpretation bounds prover; nil when Options.NoProve
	// disabled it. Backends consult it to elide proven checks.
	Bounds *absint.Result
	// Races carries the happens-before analysis of the distributed comm
	// schedule: every conflicting cross-processor pair with its verdict
	// plus the deadlock findings. nil for sequential compilations and
	// under Options.NoRace. A compilation only succeeds when the result
	// is free of races and deadlocks.
	Races *mhp.Result
}

// Compile runs the full pipeline on ZA source text.
func Compile(src string, opt Options) (*Compilation, error) {
	return CompileCtx(context.Background(), src, opt)
}

// CompileCtx is Compile with cancellation: the context is consulted
// between pipeline phases, so a cancelled or expired request stops
// compiling promptly and returns ctx.Err() (errors.Is-testable for
// context.DeadlineExceeded).
func CompileCtx(ctx context.Context, src string, opt Options) (*Compilation, error) {
	h := opt.Hooks
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var errs source.ErrorList
	h.begin("parse")
	prog := parser.Parse(src, &errs)
	h.done("parse")
	if errs.HasErrors() {
		return nil, errs.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	h.begin("sema")
	info := sema.Check(prog, opt.Configs, &errs)
	h.done("sema")
	if errs.HasErrors() {
		return nil, errs.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	h.begin("lower")
	airProg := lower.Lower(info, &errs)
	h.done("lower")
	if errs.HasErrors() {
		return nil, errs.Err()
	}
	return finishAIR(ctx, airProg, info, opt)
}

// CompileAIR runs the pipeline tail — verification, communication
// insertion, fusion/contraction planning, scalarization, and the
// bounds prover — on an already-built AIR program, the programmatic
// front door used by the lazy runtime (package zpl / internal/lazy).
// There is no source text and no sema.Info: Compilation.Info is nil,
// positions on diagnostics and remarks are the zero Pos (rendered
// "-"), and Options.Configs is ignored (a programmatic program has
// concrete regions already).
//
// The planner rewrites the program in place (temporary realignment,
// contraction marks), so CompileAIR takes ownership of prog: build a
// fresh instance per call and do not reuse it afterwards.
func CompileAIR(ctx context.Context, prog *air.Program, opt Options) (*Compilation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return finishAIR(ctx, prog, nil, opt)
}

// finishAIR is the shared pipeline tail following lowering (or a
// programmatic AIR build): check → comm → plan → scalarize → prove.
func finishAIR(ctx context.Context, airProg *air.Program, info *sema.Info, opt Options) (*Compilation, error) {
	h := opt.Hooks
	if opt.Check {
		h.begin("check")
		err := check.Err(check.AIRWellFormed(airProg))
		h.done("check")
		if err != nil {
			return nil, fmt.Errorf("driver: after lowering: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var commRes *comm.Result
	cfg := core.Config{PhaseStart: h.PhaseStart, PhaseEnd: h.PhaseEnd}
	if opt.Comm != nil && opt.Comm.Procs > 1 {
		h.begin("comm")
		commRes = comm.Insert(airProg, *opt.Comm)
		h.done("comm")
		// Distributed arrays cannot host realigned temporaries (the
		// shifted temp would itself need communication).
		cfg.DisableRealign = true
		if opt.Comm.Strategy == comm.FavorComm {
			cfg.SegmentFn = comm.Segments
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var plan *core.Plan
	if opt.Plan != nil {
		var err2 error
		plan, err2 = core.ApplySpec(airProg, opt.Plan, cfg)
		if err2 != nil {
			return nil, fmt.Errorf("driver: %w", err2)
		}
	} else {
		plan = core.ApplyEx(airProg, opt.Level, cfg)
	}
	if opt.Check {
		h.begin("check")
		var reps []check.Report
		// Re-verify well-formedness too: comm insertion and temporary
		// realignment both rewrote the AIR since the last look.
		reps = append(reps, check.AIRWellFormed(airProg)...)
		reps = append(reps, check.ASDGCrossCheck(airProg, plan)...)
		reps = append(reps, check.FusionLegality(airProg, plan)...)
		reps = append(reps, check.ContractionSafety(airProg, plan)...)
		err := check.Err(reps)
		h.done("check")
		if err != nil {
			return nil, fmt.Errorf("driver: after planning: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	h.begin("scalarize")
	lirProg, err := scalarize.Scalarize(airProg, plan)
	if err != nil {
		h.done("scalarize")
		return nil, fmt.Errorf("driver: %w", err)
	}
	if opt.ScalarReplace {
		scalarize.ScalarReplace(lirProg)
	}
	h.done("scalarize")
	if opt.Check {
		h.begin("check")
		err := check.Err(check.CommSchedule(airProg, lirProg, commRes != nil))
		h.done("check")
		if err != nil {
			return nil, fmt.Errorf("driver: after scalarization: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var bounds *absint.Result
	if !opt.NoProve {
		h.begin("prove")
		bounds = absint.AnalyzeOpts(lirProg, absint.Options{FaultSite: opt.ProveFault})
		h.done("prove")
		if err := bounds.Err(); err != nil {
			return nil, fmt.Errorf("driver: bounds: %w", err)
		}
		if opt.Check {
			h.begin("check")
			err := check.Err(check.Bounds(lirProg, bounds))
			h.done("check")
			if err != nil {
				return nil, fmt.Errorf("driver: after proving: %w", err)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	var races *mhp.Result
	if opt.Comm != nil && opt.Comm.Procs > 1 && !opt.NoRace {
		h.begin("race")
		races = mhp.Analyze(mhp.BuildSchedule(lirProg, opt.Comm.Procs))
		h.done("race")
		if err := races.Err(); err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return &Compilation{Info: info, AIR: airProg, Plan: plan, LIR: lirProg, Comm: commRes, Bounds: bounds, Races: races}, nil
}

// Run executes the compiled program on the VM. The prover's verdicts
// ride along automatically: ProvenSafe sites take the VM's unchecked
// dispatch unless the caller supplied its own Options.Bounds.
func (c *Compilation) Run(opt vm.Options) (*vm.Machine, *vm.Result, error) {
	if opt.Bounds == nil && c.Bounds != nil {
		opt.Bounds = c.Bounds
	}
	return vm.Run(c.LIR, opt)
}

// MustCompile panics on error; for tests and examples.
func MustCompile(src string, opt Options) *Compilation {
	c, err := Compile(src, opt)
	if err != nil {
		panic(err)
	}
	return c
}
