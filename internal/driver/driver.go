// Package driver runs the end-to-end compilation pipeline:
//
//	source → parse → sema → lower (normalize) → [comm insertion]
//	       → fusion/contraction plan → scalarize → LIR
//
// and executes the result on the VM. Each Compile call lowers a fresh
// program instance, so strategies can be compared side by side without
// sharing mutable IR.
package driver

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/check"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lir"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/scalarize"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/vm"
)

// Options selects problem size and optimization strategy.
type Options struct {
	// Configs overrides config constants by name (problem size).
	Configs map[string]int64
	// Level is the optimization strategy (§5.4 ladder).
	Level core.Level
	// Comm, when non-nil, inserts and optimizes communication for a
	// distributed execution with the given settings (§5.5).
	Comm *comm.Options
	// ScalarReplace additionally installs scalar replacement in the
	// generated loop nests (the §6 related-work technique; repeated
	// per-iteration reads load once into a register).
	ScalarReplace bool
	// Check runs the static verifier (package check) between pipeline
	// phases and fails the compilation on any report.
	Check bool
}

// Compilation is the result of one pipeline run.
type Compilation struct {
	Info *sema.Info
	AIR  *air.Program
	Plan *core.Plan
	LIR  *lir.Program
	Comm *comm.Result // nil when communication was not requested
}

// Compile runs the full pipeline on ZA source text.
func Compile(src string, opt Options) (*Compilation, error) {
	var errs source.ErrorList
	prog := parser.Parse(src, &errs)
	if errs.HasErrors() {
		return nil, errs.Err()
	}
	info := sema.Check(prog, opt.Configs, &errs)
	if errs.HasErrors() {
		return nil, errs.Err()
	}
	airProg := lower.Lower(info, &errs)
	if errs.HasErrors() {
		return nil, errs.Err()
	}
	if opt.Check {
		if err := check.Err(check.AIRWellFormed(airProg)); err != nil {
			return nil, fmt.Errorf("driver: after lowering: %w", err)
		}
	}

	var commRes *comm.Result
	cfg := core.Config{}
	if opt.Comm != nil && opt.Comm.Procs > 1 {
		commRes = comm.Insert(airProg, *opt.Comm)
		// Distributed arrays cannot host realigned temporaries (the
		// shifted temp would itself need communication).
		cfg.DisableRealign = true
		if opt.Comm.Strategy == comm.FavorComm {
			cfg.SegmentFn = comm.Segments
		}
	}

	plan := core.ApplyEx(airProg, opt.Level, cfg)
	if opt.Check {
		var reps []check.Report
		// Re-verify well-formedness too: comm insertion and temporary
		// realignment both rewrote the AIR since the last look.
		reps = append(reps, check.AIRWellFormed(airProg)...)
		reps = append(reps, check.ASDGCrossCheck(airProg, plan)...)
		reps = append(reps, check.FusionLegality(airProg, plan)...)
		reps = append(reps, check.ContractionSafety(airProg, plan)...)
		if err := check.Err(reps); err != nil {
			return nil, fmt.Errorf("driver: after planning: %w", err)
		}
	}

	lirProg, err := scalarize.Scalarize(airProg, plan)
	if err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	if opt.ScalarReplace {
		scalarize.ScalarReplace(lirProg)
	}
	if opt.Check {
		if err := check.Err(check.CommSchedule(airProg, lirProg, commRes != nil)); err != nil {
			return nil, fmt.Errorf("driver: after scalarization: %w", err)
		}
	}
	return &Compilation{Info: info, AIR: airProg, Plan: plan, LIR: lirProg, Comm: commRes}, nil
}

// Run executes the compiled program on the VM.
func (c *Compilation) Run(opt vm.Options) (*vm.Machine, *vm.Result, error) {
	return vm.Run(c.LIR, opt)
}

// MustCompile panics on error; for tests and examples.
func MustCompile(src string, opt Options) *Compilation {
	c, err := Compile(src, opt)
	if err != nil {
		panic(err)
	}
	return c
}
