// Package sema resolves names and types in a ZA program and evaluates
// all compile-time entities: config constants, regions, and directions.
//
// ZA specializes programs at compile time: config values (possibly
// overridden by the caller) are folded, so regions have concrete integer
// bounds by the end of analysis. This mirrors how the PLDI'98 experiments
// fix a problem size per compilation and lets every later phase reason
// about exact region volumes (reference weights, memory footprints).
package sema

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/source"
)

// MaxRank bounds array/region rank. The paper notes rank is "typically
// very small and effectively constant"; 4 covers all benchmarks.
const MaxRank = 4

// Region is a concrete index set [Lo[0]..Hi[0], ...], bounds inclusive.
type Region struct {
	Name string // empty for inline literals
	Lo   []int
	Hi   []int
}

// Rank returns the number of dimensions.
func (r *Region) Rank() int { return len(r.Lo) }

// Size returns the total number of index points.
func (r *Region) Size() int {
	n := 1
	for i := range r.Lo {
		n *= r.Extent(i)
	}
	return n
}

// Extent returns the number of indices along dimension i.
func (r *Region) Extent(i int) int { return r.Hi[i] - r.Lo[i] + 1 }

// Equal reports whether two regions denote the same index set.
func (r *Region) Equal(o *Region) bool {
	if r.Rank() != o.Rank() {
		return false
	}
	for i := range r.Lo {
		if r.Lo[i] != o.Lo[i] || r.Hi[i] != o.Hi[i] {
			return false
		}
	}
	return true
}

func (r *Region) String() string {
	s := "["
	for i := range r.Lo {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d..%d", r.Lo[i], r.Hi[i])
	}
	return s + "]"
}

// Direction is a named constant offset vector.
type Direction struct {
	Name    string
	Offsets []int
}

// Array describes a declared array variable.
type Array struct {
	Name   string
	Elem   ast.TypeKind
	Region *Region // declared region
	Proc   string  // owning procedure, or "" for globals
}

// Rank returns the array's rank.
func (a *Array) Rank() int { return a.Region.Rank() }

// Scalar describes a declared scalar variable or config constant.
type Scalar struct {
	Name     string
	Type     ast.TypeKind
	IsConfig bool
	Proc     string // owning procedure, or "" for globals
}

// Proc describes a procedure signature.
type Proc struct {
	Name   string
	Params []*Scalar
	Result ast.TypeKind // InvalidType if none
	Decl   *ast.ProcDecl
}

// Info is the result of semantic analysis.
type Info struct {
	Program *ast.Program

	ConfigInt   map[string]int64
	ConfigFloat map[string]float64

	Regions    map[string]*Region
	Directions map[string]*Direction
	Arrays     map[string]*Array  // key "proc.name" or ".name" for globals
	Scalars    map[string]*Scalar // same keying
	Procs      map[string]*Proc

	// StmtRegion maps each array statement and each reduce expression
	// to its resolved concrete region.
	StmtRegion   map[*ast.ArrayAssign]*Region
	ReduceRegion map[*ast.ReduceExpr]*Region

	// ExprType records the computed type of every expression. Array-valued
	// subexpressions (inside array statements) are tagged with the element
	// type plus IsArray.
	ExprType map[ast.Expr]Type
}

// Type is the checked type of an expression.
type Type struct {
	Kind    ast.TypeKind
	IsArray bool
}

func (t Type) String() string {
	if t.IsArray {
		return "array of " + t.Kind.String()
	}
	return t.Kind.String()
}

// LookupArray finds an array visible in proc (locals shadow globals).
func (in *Info) LookupArray(proc, name string) *Array {
	if a, ok := in.Arrays[proc+"."+name]; ok {
		return a
	}
	return in.Arrays["."+name]
}

// LookupScalar finds a scalar visible in proc.
func (in *Info) LookupScalar(proc, name string) *Scalar {
	if s, ok := in.Scalars[proc+"."+name]; ok {
		return s
	}
	return in.Scalars["."+name]
}

// Builtins maps math builtin names to their arity.
var Builtins = map[string]int{
	"sqrt": 1, "exp": 1, "log": 1, "sin": 1, "cos": 1, "tan": 1,
	"abs": 1, "floor": 1, "ceil": 1, "sign": 1,
	"min": 2, "max": 2, "pow": 2, "mod": 2, "atan2": 2,
}

// checker carries analysis state.
type checker struct {
	info *Info
	errs *source.ErrorList

	proc    string          // current procedure name
	loopVar map[string]bool // loop variables in scope (integers)
	rank    int             // rank of enclosing array context (0 = scalar)
}

// Check analyzes prog, folding configs with the given overrides
// (override values replace config defaults by name). It returns the
// analysis result; errors accumulate in errs.
func Check(prog *ast.Program, overrides map[string]int64, errs *source.ErrorList) *Info {
	info := &Info{
		Program:      prog,
		ConfigInt:    map[string]int64{},
		ConfigFloat:  map[string]float64{},
		Regions:      map[string]*Region{},
		Directions:   map[string]*Direction{},
		Arrays:       map[string]*Array{},
		Scalars:      map[string]*Scalar{},
		Procs:        map[string]*Proc{},
		StmtRegion:   map[*ast.ArrayAssign]*Region{},
		ReduceRegion: map[*ast.ReduceExpr]*Region{},
		ExprType:     map[ast.Expr]Type{},
	}
	c := &checker{info: info, errs: errs, loopVar: map[string]bool{}}

	// Pass 1: configs (in order; later configs may use earlier ones).
	for _, d := range prog.Decls {
		cd, ok := d.(*ast.ConfigDecl)
		if !ok {
			continue
		}
		c.declareConfig(cd, overrides)
	}
	// Pass 2: regions and directions (may reference configs).
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.RegionDecl:
			c.declareRegion(x)
		case *ast.DirectionDecl:
			c.declareDirection(x)
		}
	}
	// Pass 3: global variables.
	for _, d := range prog.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			c.declareVars(vd, "")
		}
	}
	// Pass 4: procedure signatures, then bodies.
	for _, p := range prog.Procs {
		c.declareProc(p)
	}
	if _, ok := info.Procs["main"]; !ok {
		errs.Errorf(prog.Pos(), "program has no main procedure")
	}
	for _, p := range prog.Procs {
		c.checkProcBody(p)
	}
	return info
}

func (c *checker) declareConfig(cd *ast.ConfigDecl, overrides map[string]int64) {
	name := cd.Name
	if _, dup := c.info.Scalars["."+name]; dup {
		c.errs.Errorf(cd.Pos(), "duplicate declaration of %s", name)
		return
	}
	c.info.Scalars["."+name] = &Scalar{Name: name, Type: cd.Type.Kind, IsConfig: true}
	if ov, ok := overrides[name]; ok {
		switch cd.Type.Kind {
		case ast.Integer:
			c.info.ConfigInt[name] = ov
		case ast.Double:
			c.info.ConfigFloat[name] = float64(ov)
		default:
			c.errs.Errorf(cd.Pos(), "config %s: cannot override %s config", name, cd.Type.Kind)
		}
		return
	}
	switch cd.Type.Kind {
	case ast.Integer:
		v, ok := c.constInt(cd.Default)
		if !ok {
			c.errs.Errorf(cd.Pos(), "config %s: default is not a compile-time integer", name)
			return
		}
		c.info.ConfigInt[name] = v
	case ast.Double:
		v, ok := c.constFloat(cd.Default)
		if !ok {
			c.errs.Errorf(cd.Pos(), "config %s: default is not a compile-time constant", name)
			return
		}
		c.info.ConfigFloat[name] = v
	default:
		c.errs.Errorf(cd.Pos(), "config %s: unsupported config type %s", name, cd.Type.Kind)
	}
}

func (c *checker) declareRegion(rd *ast.RegionDecl) {
	if _, dup := c.info.Regions[rd.Name]; dup {
		c.errs.Errorf(rd.Pos(), "duplicate region %s", rd.Name)
		return
	}
	r := c.evalRegionLit(rd.Lit, rd.Name)
	if r != nil {
		c.info.Regions[rd.Name] = r
	}
}

func (c *checker) evalRegionLit(lit *ast.RegionLit, name string) *Region {
	if lit == nil {
		return nil
	}
	if len(lit.Ranges) > MaxRank {
		c.errs.Errorf(lit.Pos(), "region rank %d exceeds maximum %d", len(lit.Ranges), MaxRank)
		return nil
	}
	r := &Region{Name: name}
	for _, rg := range lit.Ranges {
		lo, ok1 := c.constInt(rg.Lo)
		hi, ok2 := c.constInt(rg.Hi)
		if !ok1 || !ok2 {
			c.errs.Errorf(lit.Pos(), "region bounds must be compile-time integers")
			return nil
		}
		if lo > hi {
			c.errs.Errorf(lit.Pos(), "empty region dimension %d..%d", lo, hi)
			return nil
		}
		r.Lo = append(r.Lo, int(lo))
		r.Hi = append(r.Hi, int(hi))
	}
	return r
}

func (c *checker) declareDirection(dd *ast.DirectionDecl) {
	if _, dup := c.info.Directions[dd.Name]; dup {
		c.errs.Errorf(dd.Pos(), "duplicate direction %s", dd.Name)
		return
	}
	d := &Direction{Name: dd.Name}
	for _, o := range dd.Offsets {
		v, ok := c.constInt(o)
		if !ok {
			c.errs.Errorf(dd.Pos(), "direction %s: offsets must be compile-time integers", dd.Name)
			return
		}
		d.Offsets = append(d.Offsets, int(v))
	}
	c.info.Directions[dd.Name] = d
}

func (c *checker) declareVars(vd *ast.VarDecl, proc string) {
	for _, name := range vd.Names {
		key := proc + "." + name
		if _, dup := c.info.Arrays[key]; dup {
			c.errs.Errorf(vd.Pos(), "duplicate declaration of %s", name)
			continue
		}
		if _, dup := c.info.Scalars[key]; dup {
			c.errs.Errorf(vd.Pos(), "duplicate declaration of %s", name)
			continue
		}
		if vd.Region != nil {
			reg := c.resolveRegion(vd.Region)
			if reg == nil {
				continue
			}
			c.info.Arrays[key] = &Array{Name: name, Elem: vd.Type.Kind, Region: reg, Proc: proc}
		} else {
			c.info.Scalars[key] = &Scalar{Name: name, Type: vd.Type.Kind, Proc: proc}
		}
	}
}

func (c *checker) resolveRegion(re *ast.RegionExpr) *Region {
	if re == nil {
		return nil
	}
	if re.Name != "" {
		r, ok := c.info.Regions[re.Name]
		if !ok {
			c.errs.Errorf(re.Pos(), "undefined region %s", re.Name)
			return nil
		}
		return r
	}
	return c.evalRegionLit(re.Lit, "")
}

func (c *checker) declareProc(pd *ast.ProcDecl) {
	if _, dup := c.info.Procs[pd.Name]; dup {
		c.errs.Errorf(pd.Pos(), "duplicate procedure %s", pd.Name)
		return
	}
	p := &Proc{Name: pd.Name, Result: pd.Result.Kind, Decl: pd}
	for _, pa := range pd.Params {
		s := &Scalar{Name: pa.Name, Type: pa.Type.Kind, Proc: pd.Name}
		p.Params = append(p.Params, s)
		c.info.Scalars[pd.Name+"."+pa.Name] = s
	}
	c.info.Procs[pd.Name] = p
	if pd.Name == "main" && (len(pd.Params) > 0 || pd.Result.Kind != ast.InvalidType) {
		c.errs.Errorf(pd.Pos(), "main must take no parameters and return nothing")
	}
	for _, l := range pd.Locals {
		c.declareVars(l, pd.Name)
	}
}

func (c *checker) checkProcBody(pd *ast.ProcDecl) {
	c.proc = pd.Name
	c.loopVar = map[string]bool{}
	c.checkStmts(pd.Body)
}

func (c *checker) checkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ArrayAssign:
		c.checkArrayAssign(x)
	case *ast.ScalarAssign:
		c.checkScalarAssign(x)
	case *ast.IfStmt:
		t := c.checkExpr(x.Cond)
		if t.IsArray || t.Kind != ast.Boolean {
			c.errs.Errorf(x.Pos(), "if condition must be a scalar boolean, got %s", t)
		}
		c.checkStmts(x.Then)
		c.checkStmts(x.Else)
	case *ast.ForStmt:
		c.checkScalarIntExpr(x.Lo, "for bound")
		c.checkScalarIntExpr(x.Hi, "for bound")
		if c.info.LookupScalar(c.proc, x.Var) != nil {
			c.errs.Errorf(x.Pos(), "loop variable %s shadows a declared variable", x.Var)
		}
		outer := c.loopVar[x.Var]
		c.loopVar[x.Var] = true
		c.checkStmts(x.Body)
		c.loopVar[x.Var] = outer
	case *ast.WhileStmt:
		t := c.checkExpr(x.Cond)
		if t.IsArray || t.Kind != ast.Boolean {
			c.errs.Errorf(x.Pos(), "while condition must be a scalar boolean, got %s", t)
		}
		c.checkStmts(x.Body)
	case *ast.CallStmt:
		c.checkCall(x.Call, true)
	case *ast.ReturnStmt:
		p := c.info.Procs[c.proc]
		switch {
		case x.Value == nil && p.Result != ast.InvalidType:
			c.errs.Errorf(x.Pos(), "%s must return a %s value", c.proc, p.Result)
		case x.Value != nil && p.Result == ast.InvalidType:
			c.errs.Errorf(x.Pos(), "%s returns no value", c.proc)
		case x.Value != nil:
			t := c.checkExpr(x.Value)
			if t.IsArray || !assignable(p.Result, t.Kind) {
				c.errs.Errorf(x.Pos(), "cannot return %s from %s (want %s)", t, c.proc, p.Result)
			}
		}
	case *ast.WritelnStmt:
		for _, a := range x.Args {
			if _, ok := a.(*ast.StringLit); ok {
				continue
			}
			t := c.checkExpr(a)
			if t.IsArray {
				c.errs.Errorf(a.Pos(), "cannot writeln an array expression")
			}
		}
	}
}

func (c *checker) checkScalarIntExpr(e ast.Expr, what string) {
	t := c.checkExpr(e)
	if t.IsArray || t.Kind != ast.Integer {
		c.errs.Errorf(e.Pos(), "%s must be a scalar integer, got %s", what, t)
	}
}

func (c *checker) checkArrayAssign(x *ast.ArrayAssign) {
	reg := c.resolveRegion(x.Region)
	if reg == nil {
		return
	}
	c.info.StmtRegion[x] = reg
	lhs := c.info.LookupArray(c.proc, x.LHS)
	if lhs == nil {
		c.errs.Errorf(x.Pos(), "undefined array %s on left-hand side", x.LHS)
		return
	}
	if lhs.Rank() != reg.Rank() {
		c.errs.Errorf(x.Pos(), "array %s has rank %d but statement region has rank %d",
			x.LHS, lhs.Rank(), reg.Rank())
		return
	}
	// Partial reduction: the entire RHS is a reduction whose source
	// region collapses onto the statement region.
	if red, ok := x.RHS.(*ast.ReduceExpr); ok {
		src := c.resolveRegion(red.Region)
		if src == nil {
			return
		}
		c.info.ReduceRegion[red] = src
		if src.Rank() != reg.Rank() {
			c.errs.Errorf(x.Pos(), "partial reduction source rank %d does not match destination rank %d",
				src.Rank(), reg.Rank())
			return
		}
		for k := 0; k < reg.Rank(); k++ {
			if reg.Extent(k) != 1 && (reg.Lo[k] != src.Lo[k] || reg.Hi[k] != src.Hi[k]) {
				c.errs.Errorf(x.Pos(), "partial reduction: dimension %d of the destination must either collapse to extent 1 or equal the source range", k+1)
			}
		}
		c.rank = src.Rank()
		t := c.checkExpr(red.Body)
		c.rank = 0
		c.info.ExprType[x.RHS] = t
		if t.Kind == ast.Boolean {
			c.errs.Errorf(x.Pos(), "cannot reduce boolean values with %s", red.Op)
		}
		if !t.IsArray {
			c.errs.Errorf(x.Pos(), "reduction body must reference at least one array")
		}
		return
	}
	c.rank = reg.Rank()
	t := c.checkExpr(x.RHS)
	c.rank = 0
	if t.Kind == ast.Boolean && lhs.Elem != ast.Boolean {
		c.errs.Errorf(x.Pos(), "cannot assign boolean expression to %s array %s", lhs.Elem, x.LHS)
	}
	if t.Kind == ast.Double && lhs.Elem == ast.Integer {
		c.errs.Errorf(x.Pos(), "cannot assign double expression to integer array %s", x.LHS)
	}
}

func (c *checker) checkScalarAssign(x *ast.ScalarAssign) {
	if c.loopVar[x.LHS] {
		c.errs.Errorf(x.Pos(), "cannot assign to loop variable %s", x.LHS)
		return
	}
	lhs := c.info.LookupScalar(c.proc, x.LHS)
	if lhs == nil {
		if c.info.LookupArray(c.proc, x.LHS) != nil {
			c.errs.Errorf(x.Pos(), "array assignment to %s needs a region prefix, e.g. [R] %s := ...", x.LHS, x.LHS)
		} else {
			c.errs.Errorf(x.Pos(), "undefined variable %s", x.LHS)
		}
		return
	}
	if lhs.IsConfig {
		c.errs.Errorf(x.Pos(), "cannot assign to config constant %s", x.LHS)
		return
	}
	t := c.checkExpr(x.RHS)
	if t.IsArray {
		c.errs.Errorf(x.Pos(), "cannot assign array expression to scalar %s", x.LHS)
		return
	}
	if !assignable(lhs.Type, t.Kind) {
		c.errs.Errorf(x.Pos(), "cannot assign %s to %s variable %s", t, lhs.Type, x.LHS)
	}
}

// assignable reports whether a value of type from may be stored in to.
// Integers widen to doubles; nothing else converts implicitly.
func assignable(to, from ast.TypeKind) bool {
	if to == from {
		return true
	}
	return to == ast.Double && from == ast.Integer
}

// ---------------------------------------------------------------------------
// Expressions

func (c *checker) checkExpr(e ast.Expr) Type {
	t := c.exprType(e)
	c.info.ExprType[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return Type{Kind: ast.Integer}
	case *ast.FloatLit:
		return Type{Kind: ast.Double}
	case *ast.BoolLit:
		return Type{Kind: ast.Boolean}
	case *ast.StringLit:
		c.errs.Errorf(x.Pos(), "string literal not allowed here")
		return Type{Kind: ast.InvalidType}
	case *ast.Ident:
		return c.identType(x)
	case *ast.AtExpr:
		return c.atType(x)
	case *ast.UnaryExpr:
		t := c.checkExpr(x.X)
		switch x.Op.String() {
		case "-":
			if t.Kind == ast.Boolean {
				c.errs.Errorf(x.Pos(), "cannot negate a boolean")
			}
			return t
		case "!":
			if t.Kind != ast.Boolean {
				c.errs.Errorf(x.Pos(), "operator ! requires a boolean, got %s", t)
			}
			return t
		}
		return t
	case *ast.BinaryExpr:
		return c.binaryType(x)
	case *ast.CallExpr:
		return c.checkCall(x, false)
	case *ast.ReduceExpr:
		return c.reduceType(x)
	}
	return Type{Kind: ast.InvalidType}
}

// indexDim returns d for the virtual array identifier "index<d>"
// (ZPL's Index1..Index4), or 0 when the name is not one.
func indexDim(name string) int {
	switch name {
	case "index1":
		return 1
	case "index2":
		return 2
	case "index3":
		return 3
	case "index4":
		return 4
	}
	return 0
}

func (c *checker) identType(x *ast.Ident) Type {
	if d := indexDim(x.Name); d > 0 {
		if c.rank == 0 {
			c.errs.Errorf(x.Pos(), "%s used outside an array statement", x.Name)
			return Type{Kind: ast.Integer}
		}
		if d > c.rank {
			c.errs.Errorf(x.Pos(), "%s exceeds the statement region rank %d", x.Name, c.rank)
		}
		return Type{Kind: ast.Integer, IsArray: true}
	}
	if c.loopVar[x.Name] {
		return Type{Kind: ast.Integer}
	}
	if s := c.info.LookupScalar(c.proc, x.Name); s != nil {
		return Type{Kind: s.Type}
	}
	if a := c.info.LookupArray(c.proc, x.Name); a != nil {
		if c.rank == 0 {
			c.errs.Errorf(x.Pos(), "array %s used in scalar context", x.Name)
			return Type{Kind: a.Elem}
		}
		if a.Rank() != c.rank {
			c.errs.Errorf(x.Pos(), "array %s has rank %d, statement region has rank %d",
				x.Name, a.Rank(), c.rank)
		}
		return Type{Kind: a.Elem, IsArray: true}
	}
	c.errs.Errorf(x.Pos(), "undefined variable %s", x.Name)
	return Type{Kind: ast.InvalidType}
}

func (c *checker) atType(x *ast.AtExpr) Type {
	if c.rank == 0 {
		c.errs.Errorf(x.Pos(), "@-reference %s outside an array statement", x.Array)
	}
	a := c.info.LookupArray(c.proc, x.Array)
	if a == nil {
		c.errs.Errorf(x.Pos(), "undefined array %s", x.Array)
		return Type{Kind: ast.InvalidType, IsArray: true}
	}
	var rank int
	if x.DirName != "" {
		d, ok := c.info.Directions[x.DirName]
		if !ok {
			c.errs.Errorf(x.Pos(), "undefined direction %s", x.DirName)
			return Type{Kind: a.Elem, IsArray: true}
		}
		rank = len(d.Offsets)
	} else {
		rank = len(x.Offsets)
		for _, o := range x.Offsets {
			if _, ok := c.constInt(o); !ok {
				c.errs.Errorf(o.Pos(), "@-offsets must be compile-time integers")
			}
		}
	}
	if rank != a.Rank() {
		c.errs.Errorf(x.Pos(), "direction rank %d does not match array %s rank %d",
			rank, x.Array, a.Rank())
	}
	if c.rank != 0 && a.Rank() != c.rank {
		c.errs.Errorf(x.Pos(), "array %s has rank %d, statement region has rank %d",
			x.Array, a.Rank(), c.rank)
	}
	return Type{Kind: a.Elem, IsArray: true}
}

func (c *checker) binaryType(x *ast.BinaryExpr) Type {
	tx := c.checkExpr(x.X)
	ty := c.checkExpr(x.Y)
	isArr := tx.IsArray || ty.IsArray
	if isArr && c.rank == 0 {
		c.errs.Errorf(x.Pos(), "array operands outside an array statement")
	}
	switch x.Op.Precedence() {
	case 1, 2: // | &
		if tx.Kind != ast.Boolean || ty.Kind != ast.Boolean {
			c.errs.Errorf(x.Pos(), "operator %s requires booleans, got %s and %s", x.Op, tx, ty)
		}
		return Type{Kind: ast.Boolean, IsArray: isArr}
	case 3: // comparisons
		if tx.Kind == ast.Boolean != (ty.Kind == ast.Boolean) {
			c.errs.Errorf(x.Pos(), "cannot compare %s with %s", tx, ty)
		}
		return Type{Kind: ast.Boolean, IsArray: isArr}
	default: // arithmetic
		if tx.Kind == ast.Boolean || ty.Kind == ast.Boolean {
			c.errs.Errorf(x.Pos(), "operator %s requires numeric operands, got %s and %s", x.Op, tx, ty)
			return Type{Kind: ast.InvalidType, IsArray: isArr}
		}
		k := ast.Integer
		if tx.Kind == ast.Double || ty.Kind == ast.Double {
			k = ast.Double
		}
		return Type{Kind: k, IsArray: isArr}
	}
}

func (c *checker) checkCall(x *ast.CallExpr, asStmt bool) Type {
	if arity, ok := Builtins[x.Name]; ok {
		if len(x.Args) != arity {
			c.errs.Errorf(x.Pos(), "%s takes %d arguments, got %d", x.Name, arity, len(x.Args))
		}
		isArr := false
		for _, a := range x.Args {
			t := c.checkExpr(a)
			if t.Kind == ast.Boolean {
				c.errs.Errorf(a.Pos(), "%s requires numeric arguments", x.Name)
			}
			isArr = isArr || t.IsArray
		}
		k := ast.Double
		if x.Name == "mod" || x.Name == "sign" {
			k = ast.Integer
		}
		return Type{Kind: k, IsArray: isArr}
	}
	p, ok := c.info.Procs[x.Name]
	if !ok {
		c.errs.Errorf(x.Pos(), "undefined procedure or function %s", x.Name)
		return Type{Kind: ast.InvalidType}
	}
	if len(x.Args) != len(p.Params) {
		c.errs.Errorf(x.Pos(), "%s takes %d arguments, got %d", x.Name, len(p.Params), len(x.Args))
	}
	for i, a := range x.Args {
		t := c.checkExpr(a)
		if i < len(p.Params) {
			if t.IsArray || !assignable(p.Params[i].Type, t.Kind) {
				c.errs.Errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s",
					i+1, x.Name, t, p.Params[i].Type)
			}
		}
	}
	if !asStmt && p.Result == ast.InvalidType {
		c.errs.Errorf(x.Pos(), "%s returns no value", x.Name)
	}
	return Type{Kind: p.Result}
}

func (c *checker) reduceType(x *ast.ReduceExpr) Type {
	if c.rank != 0 {
		c.errs.Errorf(x.Pos(), "reductions cannot nest inside array statements")
	}
	reg := c.resolveRegion(x.Region)
	if reg == nil {
		return Type{Kind: ast.Double}
	}
	c.info.ReduceRegion[x] = reg
	c.rank = reg.Rank()
	t := c.checkExpr(x.Body)
	c.rank = 0
	if t.Kind == ast.Boolean {
		c.errs.Errorf(x.Pos(), "cannot reduce boolean values with %s", x.Op)
	}
	if !t.IsArray {
		c.errs.Errorf(x.Pos(), "reduction body must reference at least one array")
	}
	return Type{Kind: t.Kind}
}

// ---------------------------------------------------------------------------
// Compile-time constant evaluation (integers over configs and literals)

func (c *checker) constInt(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Ident:
		v, ok := c.info.ConfigInt[x.Name]
		return v, ok
	case *ast.UnaryExpr:
		if x.Op.String() == "-" {
			v, ok := c.constInt(x.X)
			return -v, ok
		}
	case *ast.BinaryExpr:
		a, ok1 := c.constInt(x.X)
		b, ok2 := c.constInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op.String() {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}
	}
	return 0, false
}

func (c *checker) constFloat(e ast.Expr) (float64, bool) {
	switch x := e.(type) {
	case *ast.FloatLit:
		return x.Value, true
	case *ast.IntLit:
		return float64(x.Value), true
	case *ast.Ident:
		if v, ok := c.info.ConfigFloat[x.Name]; ok {
			return v, true
		}
		if v, ok := c.info.ConfigInt[x.Name]; ok {
			return float64(v), true
		}
		return 0, false
	case *ast.UnaryExpr:
		if x.Op.String() == "-" {
			v, ok := c.constFloat(x.X)
			return -v, ok
		}
	case *ast.BinaryExpr:
		a, ok1 := c.constFloat(x.X)
		b, ok2 := c.constFloat(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op.String() {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return math.Inf(1), true
			}
			return a / b, true
		}
	}
	return 0, false
}

// ConstOffsets evaluates the offset vector of an @-expression against
// the analysis results: either the named direction or the literal
// offsets. It returns nil when the expression is malformed.
func (in *Info) ConstOffsets(x *ast.AtExpr) []int {
	if x.DirName != "" {
		if d, ok := in.Directions[x.DirName]; ok {
			return d.Offsets
		}
		return nil
	}
	c := &checker{info: in, errs: &source.ErrorList{}}
	offs := make([]int, 0, len(x.Offsets))
	for _, o := range x.Offsets {
		v, ok := c.constInt(o)
		if !ok {
			return nil
		}
		offs = append(offs, int(v))
	}
	return offs
}
