package sema

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
)

func check(t *testing.T, src string, overrides map[string]int64) (*Info, *source.ErrorList) {
	t.Helper()
	var errs source.ErrorList
	prog := parser.Parse(src, &errs)
	if errs.HasErrors() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	info := Check(prog, overrides, &errs)
	return info, &errs
}

func checkOK(t *testing.T, src string, overrides map[string]int64) *Info {
	t.Helper()
	info, errs := check(t, src, overrides)
	if errs.HasErrors() {
		t.Fatalf("unexpected sema errors:\n%s", errs.Error())
	}
	return info
}

const goodProgram = `
program good;
config n : integer = 8;
config eps : double = 1.0e-6;
region R = [1..n, 1..n];
region Interior = [2..n-1, 2..n-1];
direction north = (-1, 0); south = (1, 0);
var A, B : [R] double;
var mask : [R] boolean;
var s : double;
var count : integer;
proc main()
begin
  [R] A := 1.0;
  [R] B := A@north + A@south * 2.0;
  [Interior] A := B;
  [R] mask := A > B;
  s := +<< [R] A * B;
  count := 0;
  for i := 1 to n do
    count := count + i;
  end;
end;
`

func TestGoodProgram(t *testing.T) {
	info := checkOK(t, goodProgram, nil)
	if got := info.ConfigInt["n"]; got != 8 {
		t.Errorf("n = %d, want 8", got)
	}
	r := info.Regions["R"]
	if r == nil || r.Rank() != 2 || r.Size() != 64 {
		t.Errorf("region R = %v", r)
	}
	in := info.Regions["Interior"]
	if in == nil || in.Lo[0] != 2 || in.Hi[0] != 7 {
		t.Errorf("region Interior = %v", in)
	}
	if d := info.Directions["north"]; d == nil || d.Offsets[0] != -1 || d.Offsets[1] != 0 {
		t.Errorf("direction north = %v", d)
	}
	if a := info.LookupArray("main", "A"); a == nil || a.Elem != ast.Double {
		t.Errorf("array A = %v", a)
	}
}

func TestConfigOverride(t *testing.T) {
	info := checkOK(t, goodProgram, map[string]int64{"n": 100})
	if got := info.ConfigInt["n"]; got != 100 {
		t.Errorf("n = %d, want 100", got)
	}
	if r := info.Regions["R"]; r.Size() != 10000 {
		t.Errorf("R size = %d, want 10000", r.Size())
	}
}

func TestConfigArithmetic(t *testing.T) {
	src := `
program cfg;
config n : integer = 4;
config m : integer = 2*n + 1;
region R = [1..m];
var A : [R] double;
proc main()
begin
  [R] A := 0.0;
end;
`
	info := checkOK(t, src, nil)
	if got := info.ConfigInt["m"]; got != 9 {
		t.Errorf("m = %d, want 9", got)
	}
}

func TestRegionResolution(t *testing.T) {
	info := checkOK(t, goodProgram, nil)
	main := info.Program.Proc("main")
	aa := main.Body[2].(*ast.ArrayAssign) // [Interior] A := B;
	reg := info.StmtRegion[aa]
	if reg == nil || reg.Name != "Interior" {
		t.Errorf("stmt region = %v", reg)
	}
}

func TestExprTypes(t *testing.T) {
	info := checkOK(t, goodProgram, nil)
	main := info.Program.Proc("main")
	// [R] B := A@north + A@south * 2.0  — RHS is array of double.
	aa := main.Body[1].(*ast.ArrayAssign)
	typ := info.ExprType[aa.RHS]
	if !typ.IsArray || typ.Kind != ast.Double {
		t.Errorf("RHS type = %v, want array of double", typ)
	}
	// mask := A > B — array of boolean.
	mk := main.Body[3].(*ast.ArrayAssign)
	typ = info.ExprType[mk.RHS]
	if !typ.IsArray || typ.Kind != ast.Boolean {
		t.Errorf("mask RHS type = %v, want array of boolean", typ)
	}
}

func errorCases() map[string]string {
	return map[string]string{
		"undefined region":       `program p; var A : [R] double; proc main() begin end;`,
		"undefined array":        `program p; region R = [1..4]; proc main() begin [R] Z := 1.0; end;`,
		"undefined variable":     `program p; proc main() begin x := 1; end;`,
		"rank mismatch":          `program p; region R = [1..4]; region S = [1..4,1..4]; var A : [R] double; proc main() begin [S] A := 1.0; end;`,
		"direction rank":         `program p; region R = [1..4,1..4]; direction e = (1); var A : [R] double; proc main() begin [R] A := A@e; end;`,
		"array in scalar ctx":    `program p; region R = [1..4]; var A : [R] double; var s : double; proc main() begin s := A; end;`,
		"assign double to int":   `program p; var i : integer; proc main() begin i := 1.5; end;`,
		"assign to config":       `program p; config n : integer = 4; proc main() begin n := 5; end;`,
		"bool arithmetic":        `program p; var b : boolean; proc main() begin b := true + false; end;`,
		"no main":                `program p; proc helper() begin end;`,
		"empty region":           `program p; region R = [4..1]; var A : [R] double; proc main() begin end;`,
		"duplicate region":       `program p; region R = [1..2]; region R = [1..3]; proc main() begin end;`,
		"duplicate var":          `program p; var x, x : double; proc main() begin end;`,
		"assign to loop var":     `program p; proc main() begin for i := 1 to 3 do i := 5; end; end;`,
		"if on integer":          `program p; var x : integer; proc main() begin if x then end; end;`,
		"writeln array":          `program p; region R = [1..4]; var A : [R] double; proc main() begin writeln(A); end;`,
		"reduce without array":   `program p; region R = [1..4]; var s : double; proc main() begin s := +<< [R] 1.0; end;`,
		"bad builtin arity":      `program p; var s : double; proc main() begin s := sqrt(1.0, 2.0); end;`,
		"undefined proc":         `program p; proc main() begin frobnicate(); end;`,
		"void proc in expr":      `program p; var s : double; proc q() begin end; proc main() begin s := q(); end;`,
		"scalar assign to array": `program p; region R = [1..4]; var A : [R] double; proc main() begin A := 1.0; end;`,
		"nonconst region bound":  `program p; var k : integer; region R = [1..4]; proc main() var B : [1..k] double; begin end;`,
		"main with params":       `program p; proc main(x : integer) begin end;`,
		"return value from void": `program p; proc main() begin return 4; end;`,
		"bool array to double":   `program p; region R = [1..4]; var A : [R] double; proc main() begin [R] A := A > A; end;`,
	}
}

func TestSemaErrors(t *testing.T) {
	for name, src := range errorCases() {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			_, errs := check(t, src, nil)
			if !errs.HasErrors() {
				t.Errorf("no error reported for %s", name)
			}
		})
	}
}

func TestLoopVarScoping(t *testing.T) {
	src := `
program p;
var s : integer;
proc main()
begin
  for i := 1 to 3 do
    for j := 1 to 3 do
      s := s + i * j;
    end;
  end;
  s := s + 1;
end;
`
	checkOK(t, src, nil)

	// i must not be visible after the loop.
	bad := `
program p;
var s : integer;
proc main()
begin
  for i := 1 to 3 do
    s := s + i;
  end;
  s := i;
end;
`
	_, errs := check(t, bad, nil)
	if !errs.HasErrors() {
		t.Error("loop variable leaked out of loop scope")
	}
}

func TestLocalsShadowGlobals(t *testing.T) {
	src := `
program p;
region R = [1..4];
var x : double;
proc main()
var x : integer;
begin
  x := 3;
end;
`
	info := checkOK(t, src, nil)
	s := info.LookupScalar("main", "x")
	if s == nil || s.Type != ast.Integer {
		t.Errorf("local x = %v, want integer", s)
	}
}

func TestConstOffsets(t *testing.T) {
	info := checkOK(t, goodProgram, nil)
	main := info.Program.Proc("main")
	aa := main.Body[1].(*ast.ArrayAssign)
	bin := aa.RHS.(*ast.BinaryExpr)
	at := bin.X.(*ast.AtExpr)
	offs := info.ConstOffsets(at)
	if len(offs) != 2 || offs[0] != -1 || offs[1] != 0 {
		t.Errorf("ConstOffsets(A@north) = %v, want [-1 0]", offs)
	}
}

func TestIntWidensToDouble(t *testing.T) {
	src := `
program p;
var s : double;
proc main()
begin
  s := 1 + 2;
end;
`
	checkOK(t, src, nil)
}

func TestProcCallChecking(t *testing.T) {
	src := `
program p;
var s : double;
proc f(x : double) : double
begin
  return x * 2.0;
end;
proc main()
begin
  s := f(3.0);
end;
`
	info := checkOK(t, src, nil)
	if p := info.Procs["f"]; p == nil || p.Result != ast.Double {
		t.Errorf("proc f = %+v", p)
	}
}

func TestPartialReductionChecks(t *testing.T) {
	good := `
program pr;
config n : integer = 8;
region R = [1..n, 1..n];
region Rows = [1..n, 1..1];
var A : [R] double;
var RS : [Rows] double;
proc main()
begin
  [Rows] RS := +<< [R] A;
end;
`
	checkOK(t, good, nil)

	for name, src := range map[string]string{
		"rank mismatch": `
program pr;
region R = [1..8, 1..8];
region V = [1..8];
var A : [R] double;
var RS : [V] double;
proc main()
begin
  [V] RS := +<< [R] A;
end;
`,
		"uncollapsed dim differs": `
program pr;
region R = [1..8, 1..8];
region W = [1..4, 1..1];
var A : [R] double;
var RS : [W] double;
proc main()
begin
  [W] RS := +<< [R] A;
end;
`,
		"boolean reduce": `
program pr;
region R = [1..8, 1..8];
region Rows = [1..8, 1..1];
var A : [R] double;
var RS : [Rows] double;
proc main()
begin
  [Rows] RS := +<< [R] A > A;
end;
`,
	} {
		_, errs := check(t, src, nil)
		if !errs.HasErrors() {
			t.Errorf("%s: no error reported", name)
		}
	}
}

func TestIndexArrayChecks(t *testing.T) {
	// index2 in a rank-1 statement must be rejected.
	bad := `
program idx;
region V = [1..8];
var A : [V] double;
proc main()
begin
  [V] A := index2 * 1.0;
end;
`
	_, errs := check(t, bad, nil)
	if !errs.HasErrors() {
		t.Error("index2 accepted in rank-1 region")
	}
	// index1 outside array context must be rejected.
	bad2 := `
program idx;
var s : double;
proc main()
begin
  s := index1 * 1.0;
end;
`
	_, errs2 := check(t, bad2, nil)
	if !errs2.HasErrors() {
		t.Error("index1 accepted in scalar context")
	}
	// A declared scalar named index1 shadows the virtual array.
	shadow := `
program idx;
var index1 : double;
proc main()
begin
  index1 := 2.0;
end;
`
	checkOK(t, shadow, nil)
}
