package mhp

import (
	"fmt"
)

// The seeded schedule-fault kinds of the -racefault self-test. Each
// perturbs a copied schedule the way a comm-insertion or scalarization
// bug would, and the analyzer must reject the result with a positioned
// diagnostic naming both events.
const (
	// FaultBarrier drops a barrier that is the only synchronization
	// between a remote read and a later write of the same array.
	FaultBarrier = "barrier"
	// FaultMispair flips a send's direction so the receive waits for a
	// message the send never produces.
	FaultMispair = "mispair"
	// FaultStale moves a send before the write that produces its
	// values, so the receive delivers a stale capture.
	FaultStale = "stale"
)

// FaultKinds lists the supported kinds.
func FaultKinds() []string { return []string{FaultBarrier, FaultMispair, FaultStale} }

// Inject returns a copy of sched with one seeded fault of the given
// kind at the first structurally viable site, or an error when the
// schedule offers no site for that kind. The original is not modified.
func Inject(sched *Schedule, kind string) (*Schedule, error) {
	cp := cloneSchedule(sched)
	switch kind {
	case FaultBarrier:
		return injectBarrier(cp)
	case FaultMispair:
		return injectMispair(cp)
	case FaultStale:
		return injectStale(cp)
	}
	return nil, fmt.Errorf("unknown race fault kind %q (want %v)", kind, FaultKinds())
}

func cloneSchedule(s *Schedule) *Schedule {
	cp := &Schedule{Procs: s.Procs, Faults: append([]string(nil), s.Faults...)}
	for _, e := range s.Events {
		ec := *e
		ec.Accesses = append([]Access(nil), e.Accesses...)
		ec.Ctx = append([]ctxFrame(nil), e.Ctx...)
		ec.Off = e.Off.Clone()
		cp.Events = append(cp.Events, &ec)
	}
	cp.reindex()
	return cp
}

// injectBarrier drops the first barrier that is the sole
// synchronization between a remote read and a later overlapping write
// of the same array — the shape of a lost barrier edge.
func injectBarrier(s *Schedule) (*Schedule, error) {
	for _, re := range s.Events {
		if re.Kind != EvCompute {
			continue
		}
		for _, ra := range re.Accesses {
			if ra.Write || !ra.Remote() {
				continue
			}
			for _, we := range s.Events[re.Index+1:] {
				if we.Kind != EvCompute || !ctxCompatible(re, we) {
					continue
				}
				for _, wa := range we.Accesses {
					if !wa.Write || wa.Array != ra.Array {
						continue
					}
					if conflict, _, _ := overlap(wa, ra); !conflict {
						continue
					}
					var barriers []*Event
					for _, b := range s.Events[re.Index+1 : we.Index] {
						if b.Kind == EvBarrier && ctxCovered(b, re, we) {
							barriers = append(barriers, b)
						}
					}
					if len(barriers) != 1 {
						continue
					}
					b := barriers[0]
					s.Events = append(s.Events[:b.Index], s.Events[b.Index+1:]...)
					s.reindex()
					s.Faults = append(s.Faults, fmt.Sprintf(
						"dropped the %s separating the %s from the later %s", b.describe(), ra, wa))
					return s, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("no barrier separates a remote read from a later write of the same array")
}

// injectMispair negates the direction of the first pipelined or whole
// send, breaking its pairing with the receive.
func injectMispair(s *Schedule) (*Schedule, error) {
	for _, e := range s.Events {
		if e.Kind != EvSend {
			continue
		}
		was := e.Off.String()
		for i := range e.Off {
			e.Off[i] = -e.Off[i]
		}
		s.Faults = append(s.Faults, fmt.Sprintf(
			"mis-paired %s: direction flipped from %s", e.describe(), was))
		return s, nil
	}
	return nil, fmt.Errorf("schedule has no send to mis-pair")
}

// injectStale moves the first send that follows a write of its array
// to just before that write, so the write lands between send and recv
// — the shape of a send placed before its producing statement.
func injectStale(s *Schedule) (*Schedule, error) {
	for _, e := range s.Events {
		if e.Kind != EvSend {
			continue
		}
		// Find the last write to the sent array before the send.
		var we *Event
		for _, c := range s.Events[:e.Index] {
			if c.Kind != EvCompute {
				continue
			}
			for _, a := range c.Accesses {
				if a.Write && a.Array == e.Array {
					we = c
				}
			}
		}
		if we == nil {
			continue
		}
		// Reposition the send immediately before the producing write.
		moved := s.Events[e.Index]
		copy(s.Events[we.Index+1:e.Index+1], s.Events[we.Index:e.Index])
		s.Events[we.Index] = moved
		s.reindex()
		s.Faults = append(s.Faults, fmt.Sprintf(
			"moved %s before the producing write at %s (stale send-time capture)", moved.describe(), we.Pos))
		return s, nil
	}
	return nil, fmt.Errorf("no send follows a write of its array")
}
