package mhp

import (
	"strings"
	"testing"

	"repro/internal/air"
	"repro/internal/dep"
	"repro/internal/sema"
	"repro/internal/source"
)

// ---------------------------------------------------------------------------
// Hand-built schedule helpers

func reg(bounds ...int) *sema.Region {
	r := &sema.Region{}
	for i := 0; i < len(bounds); i += 2 {
		r.Lo = append(r.Lo, bounds[i])
		r.Hi = append(r.Hi, bounds[i+1])
	}
	return r
}

func at(line int) source.Pos { return source.Pos{Line: line, Col: 1} }

func wr(array string, r *sema.Region, line int) Access {
	return Access{Array: array, Region: r, Write: true, Pos: at(line)}
}

func rd(array string, off air.Offset, r *sema.Region, line int) Access {
	return Access{Array: array, Off: off, Region: r, Pos: at(line)}
}

func compute(line int, accs ...Access) *Event {
	return &Event{Kind: EvCompute, Pos: at(line), Accesses: accs}
}

func send(array string, off air.Offset, id, line int) *Event {
	return &Event{Kind: EvSend, Array: array, Off: off, MsgID: id, Pos: at(line)}
}

func recv(array string, off air.Offset, id, line int) *Event {
	return &Event{Kind: EvRecv, Array: array, Off: off, MsgID: id, Pos: at(line)}
}

func barrier(line int) *Event { return &Event{Kind: EvBarrier, Pos: at(line)} }

func sched(procs int, evs ...*Event) *Schedule {
	s := &Schedule{Procs: procs, Events: evs}
	s.reindex()
	return s
}

// ---------------------------------------------------------------------------
// Table-driven classification tests

func TestAnalyzeSchedules(t *testing.T) {
	whole := reg(1, 64)
	interior := reg(2, 63)
	east := air.Offset{1}
	west := air.Offset{-1}

	cases := []struct {
		name                    string
		sched                   *Schedule
		ordered, race, unknown  int
		deadlocks               int
		wantErr                 string // substring of Err(); "" = nil
	}{
		{
			name: "ordered stencil exchange",
			sched: sched(4,
				compute(1, wr("A", whole, 1)),
				barrier(1),
				send("A", east, 1, 2),
				recv("A", east, 1, 2),
				compute(3, rd("A", east, interior, 3), wr("B", interior, 3)),
				barrier(3),
			),
			ordered: 1,
		},
		{
			name: "racy missing barrier",
			sched: sched(4,
				compute(1, wr("A", whole, 1)),
				barrier(1),
				send("A", east, 1, 2),
				recv("A", east, 1, 2),
				compute(3, rd("A", east, interior, 3)),
				// No barrier after the reading event: the next write
				// may overtake the remote read.
				compute(4, wr("A", whole, 4)),
			),
			ordered: 1, race: 1,
			wantErr: "missing barrier edge",
		},
		{
			name: "deadlocked send cycle",
			sched: sched(4,
				recv("A", east, 1, 2),
				send("A", east, 1, 3),
			),
			deadlocks: 1,
			wantErr:   "happens-before cycle",
		},
		{
			name: "self-send",
			sched: sched(4,
				send("A", air.Offset{0}, 1, 2),
				recv("A", air.Offset{0}, 1, 2),
			),
			deadlocks: 1,
			wantErr:   "self-send",
		},
		{
			name: "mis-paired exchange",
			sched: sched(4,
				send("A", east, 1, 2),
				recv("A", west, 1, 3),
			),
			deadlocks: 1,
			wantErr:   "never produces",
		},
		{
			name: "unmatched receive",
			sched: sched(4,
				recv("A", east, 7, 3),
			),
			deadlocks: 1,
			wantErr:   "blocks its processor forever",
		},
		{
			name: "zero-processor degenerate",
			sched: sched(1,
				compute(1, wr("A", whole, 1)),
				compute(2, rd("A", east, interior, 2)),
			),
		},
		{
			name: "uncovered remote read races with writer",
			sched: sched(4,
				compute(1, wr("A", whole, 1)),
				barrier(1),
				compute(2, rd("A", east, interior, 2)),
			),
			race:    1,
			wantErr: "no send→recv edge",
		},
		{
			name: "stale send-time capture",
			sched: sched(4,
				compute(1, wr("A", whole, 1)),
				barrier(1),
				send("A", east, 1, 2),
				compute(3, wr("A", whole, 3)),
				barrier(3),
				recv("A", east, 1, 4),
				compute(5, rd("A", east, interior, 5)),
				barrier(5),
			),
			ordered: 1, race: 1,
			wantErr: "send-time capture violated",
		},
		{
			name: "disjoint regions do not conflict",
			sched: sched(4,
				compute(1, wr("A", reg(1, 10), 1)),
				barrier(1),
				send("A", east, 1, 2),
				recv("A", east, 1, 2),
				compute(3, rd("A", east, reg(40, 50), 3)),
				barrier(3),
			),
		},
		{
			name: "unknown without region bounds",
			sched: sched(4,
				compute(1, wr("A", nil, 1)),
				barrier(1),
				send("A", east, 1, 2),
				recv("A", east, 1, 2),
				compute(3, rd("A", east, nil, 3)),
				barrier(3),
			),
			unknown: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Analyze(tc.sched)
			if res.NumOrdered != tc.ordered || res.NumRace != tc.race || res.NumUnknown != tc.unknown {
				t.Errorf("census = %d ordered / %d race / %d unknown, want %d/%d/%d\npairs:\n%s",
					res.NumOrdered, res.NumRace, res.NumUnknown,
					tc.ordered, tc.race, tc.unknown, pairDump(res))
			}
			if len(res.Deadlocks) != tc.deadlocks {
				t.Errorf("deadlocks = %d, want %d: %v", len(res.Deadlocks), tc.deadlocks, res.Deadlocks)
			}
			err := res.Err()
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("Err() = %v, want nil", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Err() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func pairDump(res *Result) string {
	var b strings.Builder
	for _, p := range res.Pairs {
		b.WriteString("  " + p.String() + "\n")
	}
	return b.String()
}

// A race diagnostic must name both events with their positions.
func TestRaceNamesBothEvents(t *testing.T) {
	s := sched(4,
		compute(1, wr("A", reg(1, 64), 1)),
		barrier(1),
		send("A", air.Offset{1}, 1, 2),
		recv("A", air.Offset{1}, 1, 2),
		compute(3, rd("A", air.Offset{1}, reg(2, 63), 3)),
		compute(9, wr("A", reg(1, 64), 9)),
	)
	err := Analyze(s).Err()
	if err == nil {
		t.Fatal("want race")
	}
	for _, want := range []string{"3:1", "9:1", "write of A", "read of A@(1)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("race diagnostic %q missing %q", err, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Same-nest direction tests

func TestSameNestDirections(t *testing.T) {
	whole := reg(1, 64)
	interior := reg(2, 63)

	mk := func(off air.Offset) *Schedule {
		nest := compute(3, rd("A", off, interior, 3), wr("A", interior, 3))
		nest.Order = dep.LoopStructure{1}
		return sched(4,
			send("A", off, 1, 2),
			recv("A", off, 1, 2),
			nest,
			barrier(3),
		)
	}
	_ = whole

	// Anti direction (read the east neighbor, ascending order): the
	// pre-nest capture matches sequential semantics.
	res := Analyze(mk(air.Offset{1}))
	if res.NumOrdered != 1 || res.NumRace != 0 {
		t.Errorf("anti: census %d/%d/%d, want 1 ordered\n%s",
			res.NumOrdered, res.NumRace, res.NumUnknown, pairDump(res))
	}

	// Flow direction (read the west neighbor, ascending order): the
	// neighbor has not written yet; fusing these is a race.
	res = Analyze(mk(air.Offset{-1}))
	if res.NumRace != 1 {
		t.Errorf("flow: census %d/%d/%d, want 1 race\n%s",
			res.NumOrdered, res.NumRace, res.NumUnknown, pairDump(res))
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "flow direction") {
		t.Errorf("flow race diagnostic = %v", err)
	}
}

// ---------------------------------------------------------------------------
// Branch-context tests

func TestBranchContexts(t *testing.T) {
	whole := reg(1, 64)
	interior := reg(2, 63)
	east := air.Offset{1}

	// Write in the then-arm, remote read in the else-arm: never in one
	// dynamic execution, so no conflicting pair at all.
	w := compute(2, wr("A", whole, 2))
	w.Ctx = []ctxFrame{{ID: 1, Arm: 0}}
	r := compute(4, rd("A", east, interior, 4))
	r.Ctx = []ctxFrame{{ID: 1, Arm: 1}}
	res := Analyze(sched(4, w, &Event{Kind: EvReset}, r))
	if len(res.Pairs) != 0 {
		t.Errorf("sibling branches: %d pairs, want 0\n%s", len(res.Pairs), pairDump(res))
	}

	// A barrier inside one arm of an if does not order events outside
	// it: the read/write pair stays racy.
	rr := compute(2, rd("A", east, interior, 2))
	b := barrier(3)
	b.Ctx = []ctxFrame{{ID: 1, Arm: 0}}
	ww := compute(4, wr("A", whole, 4))
	res = Analyze(sched(4,
		send("A", east, 1, 1),
		recv("A", east, 1, 1),
		rr, b, ww,
	))
	if res.NumRace != 1 {
		t.Errorf("conditional barrier: census %d/%d/%d, want 1 race\n%s",
			res.NumOrdered, res.NumRace, res.NumUnknown, pairDump(res))
	}

	// The same barrier unconditioned orders the pair.
	rr2 := compute(2, rd("A", east, interior, 2))
	ww2 := compute(4, wr("A", whole, 4))
	res = Analyze(sched(4,
		send("A", east, 1, 1),
		recv("A", east, 1, 1),
		rr2, barrier(3), ww2,
	))
	if res.NumRace != 0 || res.NumOrdered == 0 {
		t.Errorf("unconditional barrier: census %d/%d/%d, want 0 races\n%s",
			res.NumOrdered, res.NumRace, res.NumUnknown, pairDump(res))
	}
}

// ---------------------------------------------------------------------------
// Write/write pairs (hand-built: compiler output never writes remotely)

func TestWriteWritePairs(t *testing.T) {
	whole := reg(1, 64)
	remote := Access{Array: "A", Off: air.Offset{1}, Region: whole, Write: true, Pos: at(5)}

	// Unsynchronized offsetted write against an owned write: race.
	res := Analyze(sched(4,
		compute(1, wr("A", whole, 1)),
		compute(5, remote),
	))
	if res.NumRace != 1 {
		t.Errorf("unsynchronized: census %d/%d/%d, want 1 race\n%s",
			res.NumOrdered, res.NumRace, res.NumUnknown, pairDump(res))
	}

	// With a barrier between them: ordered.
	res = Analyze(sched(4,
		compute(1, wr("A", whole, 1)),
		barrier(1),
		compute(5, remote),
	))
	if res.NumRace != 0 || res.NumOrdered != 1 {
		t.Errorf("barriered: census %d/%d/%d, want 1 ordered\n%s",
			res.NumOrdered, res.NumRace, res.NumUnknown, pairDump(res))
	}
}

// ---------------------------------------------------------------------------
// Fault injection

func cleanStencil() *Schedule {
	whole := reg(1, 64)
	interior := reg(2, 63)
	east := air.Offset{1}
	return sched(4,
		compute(1, wr("A", whole, 1)),
		barrier(1),
		send("A", east, 1, 2),
		recv("A", east, 1, 2),
		compute(3, rd("A", east, interior, 3), wr("B", interior, 3)),
		barrier(3),
		compute(4, wr("A", whole, 4)),
		barrier(4),
	)
}

func TestInjectFaultsDetected(t *testing.T) {
	for _, kind := range FaultKinds() {
		t.Run(kind, func(t *testing.T) {
			orig := cleanStencil()
			if res := Analyze(orig); !res.Clean() {
				t.Fatalf("baseline schedule not clean:\n%s%v", pairDump(res), res.Deadlocks)
			}
			faulted, err := Inject(cleanStencil(), kind)
			if err != nil {
				t.Fatalf("Inject(%s): %v", kind, err)
			}
			res := Analyze(faulted)
			if res.Clean() {
				t.Fatalf("seeded %s fault not detected (faults: %v)", kind, faulted.Faults)
			}
		})
	}
}

func TestInjectDoesNotMutateOriginal(t *testing.T) {
	orig := cleanStencil()
	n := len(orig.Events)
	for _, kind := range FaultKinds() {
		if _, err := Inject(orig, kind); err != nil {
			t.Fatalf("Inject(%s): %v", kind, err)
		}
	}
	if len(orig.Events) != n {
		t.Fatalf("original schedule mutated: %d events, want %d", len(orig.Events), n)
	}
	if !Analyze(orig).Clean() {
		t.Fatal("original schedule no longer clean after injections")
	}
}

func TestInjectNoSite(t *testing.T) {
	empty := sched(4, compute(1, wr("A", reg(1, 8), 1)), barrier(1))
	for _, kind := range FaultKinds() {
		if _, err := Inject(empty, kind); err == nil {
			t.Errorf("Inject(%s) on a comm-free schedule: want no-site error", kind)
		}
	}
	if _, err := Inject(cleanStencil(), "bogus"); err == nil || !strings.Contains(err.Error(), "unknown race fault kind") {
		t.Errorf("unknown kind: err = %v", err)
	}
}
