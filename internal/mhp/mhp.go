// Package mhp is a static may-happen-in-parallel / happens-before
// analyzer for the SPMD communication schedule of a distributed
// compilation. It models the scalarized program (internal/lir) as the
// event sequence every processor executes — replicated scalar control
// flow means one sequence describes them all — builds the
// happens-before relation from three edge kinds
//
//	program order            (events on one processor, in sequence)
//	send → recv              (one per matched message id)
//	barrier cross-products   (everything before a barrier on any
//	                          processor precedes everything after it
//	                          on every processor)
//
// and classifies every pair of conflicting accesses — a write on one
// processor against a ghost-region read (or offsetted write) of the
// same array on a neighbor, with region overlap decided by the
// absint interval domain — as ProvenOrdered (with the ordering chain
// as evidence), Race (a positioned defect naming both events and the
// missing edge), or Unknown. It additionally proves deadlock-freedom:
// the send/recv matching must be complete (exactly one send and one
// receive per message, agreeing on array and direction), acyclic
// (every receive strictly after its send in program order), and free
// of self-sends (null directions match no neighbor and would block).
//
// Soundness rests on two SPMD facts the distributed machine
// (internal/distvm) establishes: every loop nest and partial
// reduction ends in a global synchronization (barrier or all-combine
// — BuildSchedule synthesizes an EvBarrier after each), and block
// ownership means a processor only ever writes its own slice, so a
// cross-processor conflict requires a nonzero read offset. Two
// symbolic processors therefore suffice for any processor count:
// "the writer" and "a neighbor reading across the block boundary".
//
// The analyzer is deliberately split: BuildSchedule extracts the
// event sequence from the LIR, Analyze classifies a schedule. Seeded
// faults (Inject) perturb a copied schedule between the two — drop a
// barrier, mis-pair a send, capture a send after its producing write
// — which is how the -racefault self-test proves the analyzer would
// catch a scheduling bug without teaching the compiler to emit one.
package mhp

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/dep"
	"repro/internal/lir"
	"repro/internal/sema"
	"repro/internal/source"
)

// EventKind enumerates the schedule event kinds.
type EventKind int

// The event kinds. EvReset is an analysis-internal marker: the halo
// validity horizon at a control-flow boundary (facts proved inside a
// branch or loop body do not survive it). It synchronizes nothing.
const (
	EvCompute EventKind = iota
	EvSend
	EvRecv
	EvBarrier
	EvReset
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvBarrier:
		return "barrier"
	}
	return "reset"
}

// Access is one array access performed by a compute event. Writes
// always carry a zero offset in compiler-produced schedules (block
// ownership); hand-built schedules may declare offsetted writes, which
// the classifier treats as cross-processor write/write candidates.
type Access struct {
	Array  string
	Off    air.Offset   // nil/zero = the processor's own block
	Region *sema.Region // region of the accessing statement (nil = unknown)
	Write  bool
	Pos    source.Pos
}

// Remote reports whether the access touches a neighbor's elements.
func (a Access) Remote() bool { return len(a.Off) > 0 && !a.Off.IsZero() }

func (a Access) String() string {
	what := "read"
	if a.Write {
		what = "write"
	}
	s := fmt.Sprintf("%s of %s", what, a.Array)
	if a.Remote() {
		s += "@" + a.Off.String()
	}
	return fmt.Sprintf("%s at %s", s, a.Pos)
}

// ctxFrame records one control-flow choice an event executes under.
// If-frames with the same ID but different arms contradict (the two
// branches never execute in the same dynamic instance); loop-copy
// frames never contradict (copy 0 and copy 1 model an iteration and
// its successor).
type ctxFrame struct {
	ID   int
	Loop bool
	Arm  int
}

// Event is one entry of the per-processor event sequence.
type Event struct {
	Kind  EventKind
	Index int // position in Schedule.Events, set by BuildSchedule/Analyze
	Pos   source.Pos
	Ctx   []ctxFrame

	// Compute payload.
	Accesses []Access
	Order    dep.LoopStructure // iteration order, for same-nest direction tests

	// Send/recv payload: the exchanged array, the neighbor direction,
	// and the message id pairing the two halves. Whole (unpipelined)
	// exchanges are split into a send and a recv sharing a synthetic
	// negative id.
	Array string
	Off   air.Offset
	MsgID int
}

// describe renders an event for diagnostics.
func (e *Event) describe() string {
	switch e.Kind {
	case EvSend:
		return fmt.Sprintf("send of %s@%s (msg %d) at %s", e.Array, e.Off, e.MsgID, e.Pos)
	case EvRecv:
		return fmt.Sprintf("recv of %s@%s (msg %d) at %s", e.Array, e.Off, e.MsgID, e.Pos)
	case EvBarrier:
		return fmt.Sprintf("barrier at %s", e.Pos)
	}
	return fmt.Sprintf("compute at %s", e.Pos)
}

// Schedule is the per-processor event sequence of one compilation (or
// a hand-built model). Every processor executes Events in order; the
// analyzer decides what a pair of processors may interleave.
type Schedule struct {
	Procs  int
	Events []*Event
	// Faults lists the perturbations Inject applied, for diagnostics.
	Faults []string
}

// reindex renumbers Event.Index after construction or fault injection.
func (s *Schedule) reindex() {
	for i, e := range s.Events {
		e.Index = i
	}
}

// Counts reports the schedule's event census (computes, sends, recvs,
// barriers) for tables and metrics.
func (s *Schedule) Counts() (computes, sends, recvs, barriers int) {
	for _, e := range s.Events {
		switch e.Kind {
		case EvCompute:
			computes++
		case EvSend:
			sends++
		case EvRecv:
			recvs++
		case EvBarrier:
			barriers++
		}
	}
	return
}

// BuildSchedule extracts the SPMD event sequence from a scalarized
// program: procedure calls are inlined (the call graph is acyclic
// upstream), loop and while bodies are walked twice so cross-iteration
// pairs appear as copy-0/copy-1 event pairs, if branches carry
// contradiction-tracking context frames, and a barrier event is
// synthesized after every loop nest and partial reduction — the
// distributed machine ends each in a barrier or all-combine.
func BuildSchedule(lp *lir.Program, procs int) *Schedule {
	b := &builder{sched: &Schedule{Procs: procs}, visiting: map[string]bool{}, lp: lp}
	if lp != nil && lp.Main != nil {
		b.walk(lp.Main.Body)
	}
	b.sched.reindex()
	return b.sched
}

type builder struct {
	sched    *Schedule
	lp       *lir.Program
	ctx      []ctxFrame
	nextCtl  int
	visiting map[string]bool
	wholeID  int // synthetic ids for unpipelined exchanges, negative
}

func (b *builder) emit(e *Event) {
	e.Ctx = append([]ctxFrame(nil), b.ctx...)
	b.sched.Events = append(b.sched.Events, e)
}

func (b *builder) walk(nodes []lir.Node) {
	for _, nd := range nodes {
		switch x := nd.(type) {
		case *lir.Nest:
			b.nest(x)
		case *lir.PartialReduce:
			b.partialReduce(x)
		case *lir.Comm:
			b.comm(x)
		case *lir.Call:
			b.call(x)
		case *lir.Loop:
			b.loopBody(x.Body)
		case *lir.While:
			b.loopBody(x.Body)
		case *lir.If:
			id := b.ctlID()
			b.emit(&Event{Kind: EvReset})
			b.ctx = append(b.ctx, ctxFrame{ID: id, Arm: 0})
			b.walk(x.Then)
			b.ctx = b.ctx[:len(b.ctx)-1]
			b.emit(&Event{Kind: EvReset})
			b.ctx = append(b.ctx, ctxFrame{ID: id, Arm: 1})
			b.walk(x.Else)
			b.ctx = b.ctx[:len(b.ctx)-1]
			b.emit(&Event{Kind: EvReset})
		}
	}
}

func (b *builder) ctlID() int {
	b.nextCtl++
	return b.nextCtl
}

// loopBody walks a loop body twice under distinct loop-copy frames:
// copy 0 is "some iteration", copy 1 its successor, so a halo made
// valid late in one iteration correctly covers an early read of the
// next, and a cross-iteration write/read pair shows up as an ordinary
// event pair. Validity is reset at entry and exit — the loop may run
// zero times and trip counts are dynamic.
func (b *builder) loopBody(body []lir.Node) {
	id := b.ctlID()
	b.emit(&Event{Kind: EvReset})
	for copyN := 0; copyN < 2; copyN++ {
		b.ctx = append(b.ctx, ctxFrame{ID: id, Loop: true, Arm: copyN})
		b.walk(body)
		b.ctx = b.ctx[:len(b.ctx)-1]
	}
	b.emit(&Event{Kind: EvReset})
}

// call inlines the callee's events. On (upstream-illegal) recursion it
// degrades to a conservative write-only event over the callee's
// transitively written arrays.
func (b *builder) call(c *lir.Call) {
	p := b.lp.Procs[c.Proc]
	if p == nil {
		return
	}
	if b.visiting[c.Proc] {
		ev := &Event{Kind: EvCompute, Pos: c.Pos}
		for arr := range procWrites(b.lp)[c.Proc] {
			ev.Accesses = append(ev.Accesses, Access{Array: arr, Write: true, Pos: c.Pos})
		}
		b.emit(ev)
		return
	}
	b.visiting[c.Proc] = true
	b.walk(p.Body)
	b.visiting[c.Proc] = false
}

func (b *builder) nest(n *lir.Nest) {
	pos := source.Pos{}
	ev := &Event{Kind: EvCompute, Order: n.Order}
	for _, pl := range n.Preloads {
		ev.Accesses = append(ev.Accesses, Access{
			Array: pl.Array, Off: pl.Off.Clone(), Region: n.Region, Pos: pl.Pos,
		})
	}
	for _, s := range n.Body {
		if !pos.IsValid() {
			pos = s.Pos
		}
		reg := n.Region
		if s.Guard != nil {
			reg = s.Guard
		}
		for _, r := range air.Refs(s.RHS) {
			ev.Accesses = append(ev.Accesses, Access{
				Array: r.Array, Off: r.Off.Clone(), Region: reg, Pos: s.Pos,
			})
		}
		if !s.IsReduce && !s.Contracted {
			ev.Accesses = append(ev.Accesses, Access{
				Array: s.LHS, Region: reg, Write: true, Pos: s.Pos,
			})
		}
	}
	ev.Pos = pos
	b.emit(ev)
	b.emit(&Event{Kind: EvBarrier, Pos: pos})
}

func (b *builder) partialReduce(x *lir.PartialReduce) {
	ev := &Event{Kind: EvCompute, Pos: x.Pos}
	for _, r := range air.Refs(x.Body) {
		ev.Accesses = append(ev.Accesses, Access{
			Array: r.Array, Off: r.Off.Clone(), Region: x.Region, Pos: x.Pos,
		})
	}
	ev.Accesses = append(ev.Accesses, Access{
		Array: x.LHS, Region: x.Dest, Write: true, Pos: x.Pos,
	})
	b.emit(ev)
	b.emit(&Event{Kind: EvBarrier, Pos: x.Pos})
}

func (b *builder) comm(c *lir.Comm) {
	switch c.Phase {
	case air.CommSend:
		b.emit(&Event{Kind: EvSend, Pos: c.Pos, Array: c.Array, Off: c.Off.Clone(), MsgID: c.MsgID})
	case air.CommRecv:
		b.emit(&Event{Kind: EvRecv, Pos: c.Pos, Array: c.Array, Off: c.Off.Clone(), MsgID: c.MsgID})
	default:
		// A whole exchange is an adjacent send/recv pair under a
		// synthetic id that can never collide with pipelined ids (> 0).
		b.wholeID--
		b.emit(&Event{Kind: EvSend, Pos: c.Pos, Array: c.Array, Off: c.Off.Clone(), MsgID: b.wholeID})
		b.emit(&Event{Kind: EvRecv, Pos: c.Pos, Array: c.Array, Off: c.Off.Clone(), MsgID: b.wholeID})
	}
}

// procWrites re-derives, per procedure, the arrays its body writes to
// memory transitively through calls (mirrors check.procWrites; kept
// local so the packages stay independent witnesses).
func procWrites(lp *lir.Program) map[string]map[string]bool {
	memo := map[string]map[string]bool{}
	visiting := map[string]bool{}
	var of func(name string) map[string]bool
	var gather func(nodes []lir.Node, out map[string]bool)
	gather = func(nodes []lir.Node, out map[string]bool) {
		for _, nd := range nodes {
			switch x := nd.(type) {
			case *lir.Nest:
				for _, s := range x.Body {
					if !s.IsReduce && !s.Contracted {
						out[s.LHS] = true
					}
				}
			case *lir.PartialReduce:
				out[x.LHS] = true
			case *lir.Call:
				for arr := range of(x.Proc) {
					out[arr] = true
				}
			case *lir.Loop:
				gather(x.Body, out)
			case *lir.While:
				gather(x.Body, out)
			case *lir.If:
				gather(x.Then, out)
				gather(x.Else, out)
			}
		}
	}
	of = func(name string) map[string]bool {
		if m, ok := memo[name]; ok {
			return m
		}
		if visiting[name] {
			return map[string]bool{}
		}
		visiting[name] = true
		out := map[string]bool{}
		if p := lp.Procs[name]; p != nil {
			gather(p.Body, out)
		}
		visiting[name] = false
		memo[name] = out
		return out
	}
	for name := range lp.Procs {
		of(name)
	}
	return memo
}

// ctxCompatible reports whether two events can occur in one dynamic
// execution pair: no shared if-frame with opposite arms.
func ctxCompatible(a, b *Event) bool {
	for _, fa := range a.Ctx {
		if fa.Loop {
			continue
		}
		for _, fb := range b.Ctx {
			if !fb.Loop && fa.ID == fb.ID && fa.Arm != fb.Arm {
				return false
			}
		}
	}
	return true
}

// ctxCovered reports whether barrier b is guaranteed to execute
// whenever both e1 and e2 do: every control-flow choice the barrier
// depends on is implied by one of the two events. A loop frame is
// implied by any frame of the same loop (the events prove the body
// runs); an if frame needs the identical arm.
func ctxCovered(b, e1, e2 *Event) bool {
	for _, fb := range b.Ctx {
		ok := false
		for _, e := range []*Event{e1, e2} {
			for _, fe := range e.Ctx {
				if fe.ID != fb.ID {
					continue
				}
				if fb.Loop || fe.Arm == fb.Arm {
					ok = true
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
