package mhp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/absint"
	"repro/internal/air"
	"repro/internal/dep"
	"repro/internal/source"
)

// Verdict classifies one conflicting access pair. The zero value is
// Unknown: a pair the analyzer could not decide keeps the benefit of
// the doubt in the driver (tolerated, counted) but is surfaced by the
// check pass and the zpld census.
type Verdict int

// The three verdicts.
const (
	// Unknown: the regions could not be compared (hand-built schedule
	// without bounds) or the ordering depends on a broken exchange
	// already reported as a deadlock.
	Unknown Verdict = iota
	// ProvenOrdered: a happens-before chain orders the two accesses;
	// Evidence names it.
	ProvenOrdered
	// Race: the accesses may happen in parallel; Evidence names the
	// missing edge.
	Race
)

func (v Verdict) String() string {
	switch v {
	case ProvenOrdered:
		return "proven-ordered"
	case Race:
		return "race"
	}
	return "unknown"
}

// Pair is one classified conflicting access pair: a write on one
// processor against a ghost-region access of the same array on a
// neighbor whose regions overlap.
type Pair struct {
	Array string
	// First is the write; Second the conflicting remote access (a
	// ghost-region read, or a second write when WriteWrite). Their
	// events need not be in program order — an anti-direction pair has
	// the write after the read.
	First, Second Access
	// FirstEvent/SecondEvent index Schedule.Events.
	FirstEvent, SecondEvent int
	WriteWrite              bool
	Verdict                 Verdict
	// Evidence is the happens-before chain that orders the pair, or
	// the missing edge that fails to.
	Evidence string
	// Overlap is the per-dimension interval intersection that makes
	// the pair conflicting.
	Overlap string
}

func (p Pair) String() string {
	return fmt.Sprintf("%s vs %s: %s: %s", p.First, p.Second, p.Verdict, p.Evidence)
}

// Deadlock is one defect in the send/recv matching: an incomplete,
// mis-paired, cyclic, or self-directed exchange that would block the
// machine forever.
type Deadlock struct {
	Pos     source.Pos
	Message string
}

func (d Deadlock) String() string { return fmt.Sprintf("%s: %s", d.Pos, d.Message) }

// Result is the analysis of one schedule: every conflicting pair with
// its verdict, the deadlock findings, and the verdict census.
type Result struct {
	Pairs     []Pair
	Deadlocks []Deadlock

	NumOrdered int
	NumRace    int
	NumUnknown int

	// Schedule census, for tables and metrics.
	Computes, Sends, Recvs, Barriers int
}

// Races returns the pairs classified Race.
func (r *Result) Races() []Pair {
	var out []Pair
	for _, p := range r.Pairs {
		if p.Verdict == Race {
			out = append(out, p)
		}
	}
	return out
}

// Clean reports whether every conflicting pair is ProvenOrdered and
// the matching is deadlock-free — the acceptance bar for
// compiler-produced schedules.
func (r *Result) Clean() bool {
	return r.NumRace == 0 && r.NumUnknown == 0 && len(r.Deadlocks) == 0
}

// Err returns the first deadlock or race as a positioned compile
// error, or nil. Unknown pairs are tolerated here (the check pass and
// the census surface them); compiler-produced schedules have none.
func (r *Result) Err() error {
	if len(r.Deadlocks) > 0 {
		d := r.Deadlocks[0]
		return fmt.Errorf("%s: deadlock: %s", d.Pos, d.Message)
	}
	for _, p := range r.Pairs {
		if p.Verdict == Race {
			return fmt.Errorf("%s: data race: %s may happen in parallel with %s: %s",
				p.Second.Pos, p.First, p.Second, p.Evidence)
		}
	}
	return nil
}

// exchange is one matched (or broken) message: the send/recv halves
// plus the writes observed between them (send-time capture hazards).
type exchange struct {
	send, recv *Event
	stale      []*Event // compute events that wrote the array mid-flight
	broken     bool     // matching defect; reported as a deadlock
}

type writeRec struct {
	ev  *Event
	acc Access
}

// covEntry is the halo coverage of one neighbor direction of a remote
// read, snapshotted at the read.
type covEntry struct {
	dir air.Offset
	ex  *exchange // nil: no valid exchange covered the direction
}

type readRec struct {
	ev  *Event
	acc Access
	cov []covEntry
}

// Analyze classifies a schedule. With fewer than two processors every
// access is local and the result is trivially clean (the degenerate
// sequential case).
func Analyze(sched *Schedule) *Result {
	res := &Result{}
	res.Computes, res.Sends, res.Recvs, res.Barriers = sched.Counts()
	if sched.Procs < 2 || len(sched.Events) == 0 {
		return res
	}
	sched.reindex()

	exchanges := matchMessages(sched, res)
	reads, writes := walkCoverage(sched, exchanges)
	classify(sched, res, reads, writes)
	return res
}

// msgKey identifies one dynamic message instance: the static message
// id plus the control-flow context. Loop doubling replays each static
// send/recv once per copy, and the machine's FIFO channels pair the
// halves of one iteration with each other, so matching is per-context.
type msgKey struct {
	id  int
	ctx string
}

func ctxString(ctx []ctxFrame) string {
	var b strings.Builder
	for _, f := range ctx {
		fmt.Fprintf(&b, "%d/%v/%d;", f.ID, f.Loop, f.Arm)
	}
	return b.String()
}

// matchMessages proves the send/recv matching complete and acyclic,
// reporting every defect as a deadlock. Statically identical defects
// from different loop copies are reported once.
func matchMessages(sched *Schedule, res *Result) map[msgKey]*exchange {
	type halves struct{ sends, recvs []*Event }
	msgs := map[msgKey]*halves{}
	var keys []msgKey
	for _, e := range sched.Events {
		if e.Kind != EvSend && e.Kind != EvRecv {
			continue
		}
		k := msgKey{e.MsgID, ctxString(e.Ctx)}
		h := msgs[k]
		if h == nil {
			h = &halves{}
			msgs[k] = h
			keys = append(keys, k)
		}
		if e.Kind == EvSend {
			h.sends = append(h.sends, e)
		} else {
			h.recvs = append(h.recvs, e)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].ctx < keys[j].ctx
	})

	seenDead := map[string]bool{}
	report := func(pos source.Pos, msg string) {
		if seenDead[msg] {
			return
		}
		seenDead[msg] = true
		res.Deadlocks = append(res.Deadlocks, Deadlock{Pos: pos, Message: msg})
	}

	out := map[msgKey]*exchange{}
	for _, k := range keys {
		h := msgs[k]
		ex := &exchange{}
		out[k] = ex
		any := h.sends
		if len(any) == 0 {
			any = h.recvs
		}
		if len(h.sends) != 1 || len(h.recvs) != 1 {
			ex.broken = true
			report(any[0].Pos, fmt.Sprintf(
				"message %d of %s has %d send(s) and %d receive(s); an unmatched half blocks its processor forever",
				k.id, any[0].Array, len(h.sends), len(h.recvs)))
			continue
		}
		s, r := h.sends[0], h.recvs[0]
		ex.send, ex.recv = s, r
		switch {
		case s.Array != r.Array || !s.Off.Equal(r.Off):
			ex.broken = true
			res.Deadlocks = append(res.Deadlocks, Deadlock{
				Pos: r.Pos,
				Message: fmt.Sprintf("%s is paired with %s: the receive waits for a message the send never produces",
					s.describe(), r.describe()),
			})
		case s.Off.IsZero():
			ex.broken = true
			res.Deadlocks = append(res.Deadlocks, Deadlock{
				Pos: s.Pos,
				Message: fmt.Sprintf("%s has a null direction: a self-send matches no neighbor and blocks", s.describe()),
			})
		case r.Index <= s.Index:
			ex.broken = true
			res.Deadlocks = append(res.Deadlocks, Deadlock{
				Pos: r.Pos,
				Message: fmt.Sprintf("%s precedes its %s in program order: every processor blocks receiving before any sends (happens-before cycle)",
					r.describe(), s.describe()),
			})
		}
	}
	return out
}

// walkCoverage replays the schedule in program order, tracking which
// neighbor directions hold a valid halo (set by a receive, destroyed
// by a write to the array or a control-flow boundary) and which
// exchanges a write poisoned mid-flight, and snapshots the coverage of
// every remote read at its event.
func walkCoverage(sched *Schedule, exchanges map[msgKey]*exchange) ([]readRec, []writeRec) {
	type haloKey struct{ array, dir string }
	valid := map[haloKey]*exchange{}
	open := map[msgKey]*Event{} // send seen, recv pending
	var reads []readRec
	var writes []writeRec

	for _, e := range sched.Events {
		switch e.Kind {
		case EvReset:
			valid = map[haloKey]*exchange{}
		case EvSend:
			open[msgKey{e.MsgID, ctxString(e.Ctx)}] = e
		case EvRecv:
			delete(open, msgKey{e.MsgID, ctxString(e.Ctx)})
			valid[haloKey{e.Array, e.Off.String()}] = exchanges[msgKey{e.MsgID, ctxString(e.Ctx)}]
		case EvCompute:
			for _, a := range e.Accesses {
				if a.Write {
					writes = append(writes, writeRec{ev: e, acc: a})
					for k := range valid {
						if k.array == a.Array {
							delete(valid, k)
						}
					}
					for k, s := range open {
						if s.Array == a.Array {
							if ex := exchanges[k]; ex != nil {
								ex.stale = append(ex.stale, e)
							}
						}
					}
					continue
				}
				if !a.Remote() {
					continue
				}
				r := readRec{ev: e, acc: a}
				for _, dir := range neighborDirs(a.Off) {
					r.cov = append(r.cov, covEntry{dir: dir, ex: valid[haloKey{a.Array, dir.String()}]})
				}
				reads = append(reads, r)
			}
		}
	}
	return reads, writes
}

// classify enumerates and classifies every conflicting pair.
func classify(sched *Schedule, res *Result, reads []readRec, writes []writeRec) {
	type pairKey struct {
		fPos, sPos   source.Pos
		array, off   string
		ww, sameNest bool
	}
	seen := map[pairKey]int{} // key -> index into res.Pairs

	record := func(p Pair) {
		k := pairKey{p.First.Pos, p.Second.Pos, p.Array, p.Second.Off.String(),
			p.WriteWrite, p.FirstEvent == p.SecondEvent}
		if i, ok := seen[k]; ok {
			// Loop doubling visits a source pair up to four times; keep
			// the worst verdict so a racy copy is never masked.
			if worse(p.Verdict, res.Pairs[i].Verdict) {
				retally(res, res.Pairs[i].Verdict, -1)
				res.Pairs[i] = p
				retally(res, p.Verdict, 1)
			}
			return
		}
		seen[k] = len(res.Pairs)
		res.Pairs = append(res.Pairs, p)
		retally(res, p.Verdict, 1)
	}

	// Write/remote-read pairs.
	for _, r := range reads {
		for _, w := range writes {
			if w.acc.Array != r.acc.Array || !ctxCompatible(w.ev, r.ev) {
				continue
			}
			conflict, overlapEv, unknownOv := overlap(w.acc, r.acc)
			if !conflict && !unknownOv {
				continue
			}
			p := Pair{Array: r.acc.Array, Overlap: overlapEv,
				First: w.acc, Second: r.acc,
				FirstEvent: w.ev.Index, SecondEvent: r.ev.Index}
			switch {
			case unknownOv:
				p.Verdict, p.Evidence = Unknown, overlapEv
			case w.ev.Index == r.ev.Index:
				p.Verdict, p.Evidence = classifySameNest(w, r)
			case w.ev.Index < r.ev.Index:
				p.Verdict, p.Evidence = classifyFlow(w, r)
			default:
				p.Verdict, p.Evidence = classifyAnti(sched, r.ev, w.ev,
					fmt.Sprintf("the remote %s", r.acc), fmt.Sprintf("the later %s", w.acc))
			}
			record(p)
		}
	}

	// Write/write pairs: only possible when a write is offsetted
	// (never in compiler output under block ownership; hand-built
	// schedules can model them).
	for i, w1 := range writes {
		for _, w2 := range writes[i+1:] {
			if w1.acc.Array != w2.acc.Array || (!w1.acc.Remote() && !w2.acc.Remote()) {
				continue
			}
			if !ctxCompatible(w1.ev, w2.ev) {
				continue
			}
			conflict, overlapEv, unknownOv := overlap(w1.acc, w2.acc)
			if !conflict && !unknownOv {
				continue
			}
			p := Pair{Array: w1.acc.Array, Overlap: overlapEv, WriteWrite: true,
				First: w1.acc, Second: w2.acc,
				FirstEvent: w1.ev.Index, SecondEvent: w2.ev.Index}
			switch {
			case unknownOv:
				p.Verdict, p.Evidence = Unknown, overlapEv
			case w1.ev.Index == w2.ev.Index:
				p.Verdict = Race
				p.Evidence = fmt.Sprintf("%s and %s target overlapping elements in one nest with no intervening synchronization", w1.acc, w2.acc)
			default:
				p.Verdict, p.Evidence = classifyAnti(sched, w1.ev, w2.ev,
					w1.acc.String(), w2.acc.String())
			}
			record(p)
		}
	}
}

func worse(a, b Verdict) bool {
	rank := func(v Verdict) int {
		switch v {
		case Race:
			return 2
		case Unknown:
			return 1
		}
		return 0
	}
	return rank(a) > rank(b)
}

func retally(res *Result, v Verdict, d int) {
	switch v {
	case ProvenOrdered:
		res.NumOrdered += d
	case Race:
		res.NumRace += d
	default:
		res.NumUnknown += d
	}
}

// classifyFlow orders a write strictly before a remote read: every
// neighbor direction of the read must be covered by a valid exchange
// whose send follows the write, giving the chain
// write →po send →msg recv →po read.
func classifyFlow(w writeRec, r readRec) (Verdict, string) {
	var chains []string
	for _, c := range r.cov {
		if c.ex == nil || c.ex.send == nil {
			return Race, fmt.Sprintf(
				"no send→recv edge covers the %s halo of %s: %s on one processor may happen in parallel with %s on a neighbor",
				c.dir, r.acc.Array, w.acc, r.acc)
		}
		if c.ex.broken {
			return Unknown, fmt.Sprintf(
				"ordering depends on message %d, whose send/recv matching is broken (see deadlock report)", c.ex.send.MsgID)
		}
		for _, st := range c.ex.stale {
			if st.Index == w.ev.Index {
				return Race, fmt.Sprintf(
					"%s captured %s before %s: the receive at %s delivers stale values to %s (send-time capture violated)",
					c.ex.send.describe(), r.acc.Array, w.acc, c.ex.recv.Pos, r.acc)
			}
		}
		if w.ev.Index > c.ex.send.Index {
			// The write postdates the send but the halo stayed valid:
			// only possible mid-flight, which the stale list covers, or
			// through a model extension; be conservative.
			return Race, fmt.Sprintf(
				"%s happens after %s captured the array: no happens-before edge orders it before %s",
				w.acc, c.ex.send.describe(), r.acc)
		}
		chains = append(chains, fmt.Sprintf("%s →po %s →msg %s →po %s",
			w.acc, c.ex.send.describe(), c.ex.recv.describe(), r.acc))
	}
	return ProvenOrdered, strings.Join(chains, "; ")
}

// classifySameNest orders a write and a remote read fused into one
// nest: the halo is captured before the nest (coverage must hold) and
// the in-nest direction must be anti — the constrained distance of the
// read offset lexicographically nonnegative under the nest's loop
// structure — so the pre-capture matches sequential semantics.
func classifySameNest(w writeRec, r readRec) (Verdict, string) {
	for _, c := range r.cov {
		if c.ex == nil || c.ex.send == nil {
			return Race, fmt.Sprintf(
				"no valid exchange covers the %s halo of %s at the nest fusing %s with %s",
				c.dir, r.acc.Array, w.acc, r.acc)
		}
		if c.ex.broken {
			return Unknown, fmt.Sprintf(
				"ordering depends on message %d, whose send/recv matching is broken (see deadlock report)", c.ex.send.MsgID)
		}
	}
	ord := r.ev.Order
	if len(ord) != len(r.acc.Off) || !ord.Valid() {
		return Unknown, fmt.Sprintf("no loop structure to orient %s against %s within one nest", r.acc, w.acc)
	}
	d := dep.Constrain(r.acc.Off, ord)
	if !dep.LexNonNegative(d) {
		return Race, fmt.Sprintf(
			"%s and %s share a nest with a flow direction (constrained distance %s is lexicographically negative under order %s): the pre-nest halo capture delivers values the neighbor has not yet written",
			w.acc, r.acc, d, ord)
	}
	return ProvenOrdered, fmt.Sprintf(
		"pre-nest halo capture: the exchange precedes the nest and the in-nest direction is anti (constrained distance %s ≥ 0 under order %s), so the read's snapshot matches sequential semantics",
		d, ord)
}

// classifyAnti orders an earlier access before a later write on a
// different processor: a barrier (guaranteed to execute whenever both
// events do) must separate them, else the later write may overtake.
func classifyAnti(sched *Schedule, first, second *Event, firstDesc, secondDesc string) (Verdict, string) {
	for _, e := range sched.Events[first.Index+1 : second.Index] {
		if e.Kind == EvBarrier && ctxCovered(e, first, second) {
			return ProvenOrdered, fmt.Sprintf(
				"%s →po %s →sync %s: the barrier's cross-product edge orders every processor's earlier access before every later one",
				firstDesc, e.describe(), secondDesc)
		}
	}
	return Race, fmt.Sprintf(
		"no barrier separates %s from %s: the write may overtake the access on a neighboring processor (missing barrier edge)",
		firstDesc, secondDesc)
}

// overlap decides whether two accesses touch common elements: the
// per-dimension interval intersection of (region + offset) on each
// side, with the absint interval domain supplying the evidence.
func overlap(a, b Access) (conflict bool, evidence string, unknown bool) {
	if a.Region == nil || b.Region == nil {
		return false, fmt.Sprintf("cannot compare regions of %s and %s (no bounds)", a, b), true
	}
	if a.Region.Rank() != b.Region.Rank() {
		return false, "", false
	}
	rank := a.Region.Rank()
	offAt := func(off air.Offset, d int) int64 {
		if d < len(off) {
			return int64(off[d])
		}
		return 0
	}
	var dims []string
	for d := 0; d < rank; d++ {
		ia := absint.Range(int64(a.Region.Lo[d])+offAt(a.Off, d), int64(a.Region.Hi[d])+offAt(a.Off, d))
		ib := absint.Range(int64(b.Region.Lo[d])+offAt(b.Off, d), int64(b.Region.Hi[d])+offAt(b.Off, d))
		m := ia.Meet(ib)
		if m.IsEmpty() {
			return false, "", false
		}
		dims = append(dims, fmt.Sprintf("dim %d: %s ∩ %s = %s", d+1, ia, ib, m))
	}
	return true, strings.Join(dims, ", "), false
}

// neighborDirs decomposes a read offset into the per-neighbor
// direction sub-patterns the exchange machinery uses: every nonzero
// sign sub-pattern over the active dimensions.
func neighborDirs(off air.Offset) []air.Offset {
	var active []int
	for k, v := range off {
		if v != 0 {
			active = append(active, k)
		}
	}
	var out []air.Offset
	var build func(i int, cur air.Offset, any bool)
	build = func(i int, cur air.Offset, any bool) {
		if i == len(active) {
			if any {
				out = append(out, cur.Clone())
			}
			return
		}
		build(i+1, cur, any)
		cur[active[i]] = off[active[i]]
		build(i+1, cur, true)
		cur[active[i]] = 0
	}
	build(0, air.Zero(len(off)), false)
	return out
}
