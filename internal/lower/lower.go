// Package lower translates a checked AST into the Array IR, putting
// every array statement into the normal form of §2.1:
//
//   - the left-hand side is written at offset zero,
//   - every reference is a constant offset from the statement region,
//   - no array is both read and written.
//
// When the source violates the read/write restriction — e.g.
// [R] A := A@east + B — lowering always introduces a compiler
// temporary:
//
//	[R] _t1 := A@east + B;
//	[R] A   := _t1;
//
// matching the paper's strategy: "The technique we describe always
// inserts compiler arrays, and it treats compiler and user arrays
// together as candidates for contraction. If a single statement does
// not truly require a compiler array, our algorithm is guaranteed to
// contract it unless a more favorable contraction is performed."
package lower

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/token"
)

// Lower converts the checked program to AIR. Errors (e.g. recursion)
// accumulate in errs.
func Lower(info *sema.Info, errs *source.ErrorList) *air.Program {
	lw := &lowerer{
		info: info,
		errs: errs,
		prog: &air.Program{
			Name:    info.Program.Name,
			Arrays:  map[string]*air.ArrayInfo{},
			Scalars: map[string]*air.ScalarInfo{},
			Procs:   map[string]*air.Proc{},
		},
	}
	lw.declareVariables()
	lw.checkRecursion()
	for _, pd := range info.Program.Procs {
		lw.lowerProc(pd)
	}
	lw.prog.Main = lw.prog.Procs["main"]
	lw.computeAllocBounds()
	lw.computeEffects()
	return lw.prog
}

type lowerer struct {
	info *sema.Info
	errs *source.ErrorList
	prog *air.Program

	proc     string
	loopVars map[string]bool
	nextTemp int
	nextScal int
	nextBlk  int

	// current block under construction
	cur []air.Stmt
	// curPos is the source position of the statement being lowered;
	// every AIR statement it emits (including hoisted temporaries)
	// inherits it, so later diagnostics can point at the .za line.
	curPos source.Pos
}

// mangle maps a source-level name in the current procedure to its
// program-wide unique name.
func (lw *lowerer) mangle(name string) string {
	if lw.loopVars[name] {
		return lw.proc + "." + name
	}
	if _, ok := lw.info.Scalars[lw.proc+"."+name]; ok {
		return lw.proc + "." + name
	}
	if _, ok := lw.info.Arrays[lw.proc+"."+name]; ok {
		return lw.proc + "." + name
	}
	return name
}

func (lw *lowerer) declareVariables() {
	for key, a := range lw.info.Arrays {
		name := key
		if key[0] == '.' {
			name = key[1:]
		}
		lw.prog.Arrays[name] = &air.ArrayInfo{
			Name:     name,
			Elem:     a.Elem,
			Declared: a.Region,
			Alloc:    a.Region, // widened later
		}
	}
	for key, s := range lw.info.Scalars {
		name := key
		if key[0] == '.' {
			name = key[1:]
		}
		si := &air.ScalarInfo{Name: name, Type: s.Type, Config: s.IsConfig}
		if s.IsConfig {
			if v, ok := lw.info.ConfigInt[s.Name]; ok {
				si.Init = float64(v)
			} else if v, ok := lw.info.ConfigFloat[s.Name]; ok {
				si.Init = v
			}
		}
		lw.prog.Scalars[name] = si
	}
}

// checkRecursion rejects call cycles: AIR procedures share scalar
// storage for parameters, so recursion would be meaningless.
func (lw *lowerer) checkRecursion() {
	calls := map[string][]string{}
	for _, pd := range lw.info.Program.Procs {
		var collect func(stmts []ast.Stmt)
		var collectExpr func(e ast.Expr)
		collectExpr = func(e ast.Expr) {
			ast.Walk(e, func(x ast.Expr) bool {
				if c, ok := x.(*ast.CallExpr); ok {
					if _, isProc := lw.info.Procs[c.Name]; isProc {
						calls[pd.Name] = append(calls[pd.Name], c.Name)
					}
				}
				return true
			})
		}
		collect = func(stmts []ast.Stmt) {
			for _, s := range stmts {
				switch x := s.(type) {
				case *ast.ArrayAssign:
					collectExpr(x.RHS)
				case *ast.ScalarAssign:
					collectExpr(x.RHS)
				case *ast.IfStmt:
					collectExpr(x.Cond)
					collect(x.Then)
					collect(x.Else)
				case *ast.ForStmt:
					collectExpr(x.Lo)
					collectExpr(x.Hi)
					collect(x.Body)
				case *ast.WhileStmt:
					collectExpr(x.Cond)
					collect(x.Body)
				case *ast.CallStmt:
					collectExpr(x.Call)
				case *ast.ReturnStmt:
					collectExpr(x.Value)
				case *ast.WritelnStmt:
					for _, a := range x.Args {
						collectExpr(a)
					}
				}
			}
		}
		collect(pd.Body)
	}
	// DFS cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(p string) bool
	visit = func(p string) bool {
		color[p] = gray
		for _, q := range calls[p] {
			switch color[q] {
			case gray:
				return false
			case white:
				if !visit(q) {
					return false
				}
			}
		}
		color[p] = black
		return true
	}
	for _, pd := range lw.info.Program.Procs {
		if color[pd.Name] == white && !visit(pd.Name) {
			lw.errs.Errorf(pd.Pos(), "recursive procedures are not supported (cycle through %s)", pd.Name)
			return
		}
	}
}

func (lw *lowerer) lowerProc(pd *ast.ProcDecl) {
	lw.proc = pd.Name
	lw.loopVars = map[string]bool{}
	p := &air.Proc{Name: pd.Name, HasResult: pd.Result.Kind != ast.InvalidType}
	for _, pa := range pd.Params {
		p.Params = append(p.Params, pd.Name+"."+pa.Name)
	}
	if p.HasResult {
		// The result travels in a dedicated scalar.
		lw.prog.Scalars[pd.Name+".$result"] = &air.ScalarInfo{
			Name: pd.Name + ".$result", Type: pd.Result.Kind,
		}
	}
	p.Body = lw.lowerStmts(pd.Body)
	lw.prog.Procs[pd.Name] = p
}

// lowerStmts converts a statement list into nodes, accumulating
// consecutive simple statements into Blocks.
func (lw *lowerer) lowerStmts(stmts []ast.Stmt) []air.Node {
	var nodes []air.Node
	saved := lw.cur
	lw.cur = nil
	flush := func() {
		if len(lw.cur) > 0 {
			nodes = append(nodes, &air.Block{ID: lw.nextBlk, Stmts: lw.cur})
			lw.nextBlk++
			lw.cur = nil
		}
	}
	for _, s := range stmts {
		lw.curPos = s.Pos()
		switch x := s.(type) {
		case *ast.ArrayAssign:
			lw.lowerArrayAssign(x)
		case *ast.ScalarAssign:
			lw.lowerScalarAssign(x)
		case *ast.CallStmt:
			lw.lowerCallStmt(x)
		case *ast.WritelnStmt:
			lw.lowerWriteln(x)
		case *ast.ReturnStmt:
			var v air.Expr
			if x.Value != nil {
				v = lw.lowerScalarExpr(x.Value)
			}
			lw.cur = append(lw.cur, &air.ReturnStmt{Value: v, Pos: x.StmtPos})
		case *ast.IfStmt:
			cond := lw.lowerScalarExpr(x.Cond)
			flush()
			nodes = append(nodes, &air.If{
				Cond: cond,
				Then: lw.lowerStmts(x.Then),
				Else: lw.lowerStmts(x.Else),
			})
		case *ast.ForStmt:
			lo := lw.lowerScalarExpr(x.Lo)
			hi := lw.lowerScalarExpr(x.Hi)
			flush()
			outer := lw.loopVars[x.Var]
			lw.loopVars[x.Var] = true
			mangled := lw.proc + "." + x.Var
			if _, ok := lw.prog.Scalars[mangled]; !ok {
				lw.prog.Scalars[mangled] = &air.ScalarInfo{Name: mangled, Type: ast.Integer}
			}
			body := lw.lowerStmts(x.Body)
			lw.loopVars[x.Var] = outer
			nodes = append(nodes, &air.Loop{Var: mangled, Lo: lo, Hi: hi, Down: x.Down, Body: body})
		case *ast.WhileStmt:
			cond := lw.lowerScalarExpr(x.Cond)
			flush()
			nodes = append(nodes, &air.While{Cond: cond, Body: lw.lowerStmts(x.Body)})
		}
	}
	flush()
	lw.cur = saved
	return nodes
}

// lowerArrayAssign normalizes one array statement.
func (lw *lowerer) lowerArrayAssign(x *ast.ArrayAssign) {
	reg := lw.info.StmtRegion[x]
	if reg == nil {
		return
	}
	lhs := lw.mangle(x.LHS)

	// Partial reduction: unnormalized statement of its own kind.
	if red, ok := x.RHS.(*ast.ReduceExpr); ok {
		src := lw.info.ReduceRegion[red]
		if src == nil {
			return
		}
		body := lw.lowerElemExpr(red.Body, src.Rank())
		var op air.ReduceOp
		switch red.Op {
		case token.REDPLUS:
			op = air.ReduceSum
		case token.REDSTAR:
			op = air.ReduceProd
		case token.REDMAX:
			op = air.ReduceMax
		case token.REDMIN:
			op = air.ReduceMin
		}
		lw.cur = append(lw.cur, &air.PartialReduceStmt{
			LHS: lhs, Dest: reg, Op: op, Region: src, Body: body, Pos: x.StmtPos,
		})
		return
	}

	rhs := lw.lowerElemExpr(x.RHS, reg.Rank())

	// Normal form property (i): the assigned array may not be read.
	readsLHS := false
	for _, r := range air.Refs(rhs) {
		if r.Array == lhs {
			readsLHS = true
			break
		}
	}
	if readsLHS {
		elem := ast.Double
		if t, ok := lw.info.ExprType[x.RHS]; ok && t.Kind != ast.InvalidType {
			elem = t.Kind
		}
		tmp := lw.newTemp(elem, reg)
		lw.emitArrayStmt(reg, tmp, rhs)
		lw.emitArrayStmt(reg, lhs, &air.RefExpr{Ref: air.Ref{Array: tmp, Off: air.Zero(reg.Rank())}})
		return
	}
	lw.emitArrayStmt(reg, lhs, rhs)
}

func (lw *lowerer) newTemp(elem ast.TypeKind, reg *sema.Region) string {
	lw.nextTemp++
	name := fmt.Sprintf("_t%d", lw.nextTemp)
	lw.prog.Arrays[name] = &air.ArrayInfo{
		Name: name, Elem: elem, Declared: reg, Alloc: reg, Temp: true,
	}
	return name
}

func (lw *lowerer) emitArrayStmt(reg *sema.Region, lhs string, rhs air.Expr) {
	s := &air.ArrayStmt{ID: lw.prog.NumStmts, Region: reg, LHS: lhs, RHS: rhs, Pos: lw.curPos}
	lw.prog.NumStmts++
	lw.cur = append(lw.cur, s)
}

func (lw *lowerer) lowerScalarAssign(x *ast.ScalarAssign) {
	lhs := lw.mangle(x.LHS)
	// A bare `target := f(args)` call lowers directly to a CallStmt;
	// nested calls are hoisted into temps by lowerScalarExpr.
	if c, ok := x.RHS.(*ast.CallExpr); ok {
		if _, isBuiltin := sema.Builtins[c.Name]; !isBuiltin {
			args := make([]air.Expr, len(c.Args))
			for i, a := range c.Args {
				args[i] = lw.lowerScalarExpr(a)
			}
			lw.cur = append(lw.cur, &air.CallStmt{Target: lhs, Proc: c.Name, Args: args, Pos: x.StmtPos})
			return
		}
	}
	rhs := lw.lowerScalarExpr(x.RHS)
	lw.cur = append(lw.cur, &air.ScalarStmt{LHS: lhs, RHS: rhs, Pos: x.StmtPos})
}

func (lw *lowerer) lowerCallStmt(x *ast.CallStmt) {
	args := make([]air.Expr, len(x.Call.Args))
	for i, a := range x.Call.Args {
		args[i] = lw.lowerScalarExpr(a)
	}
	lw.cur = append(lw.cur, &air.CallStmt{Proc: x.Call.Name, Args: args, Pos: x.StmtPos})
}

func (lw *lowerer) lowerWriteln(x *ast.WritelnStmt) {
	var args []air.WriteArg
	for _, a := range x.Args {
		if s, ok := a.(*ast.StringLit); ok {
			args = append(args, air.WriteArg{Str: s.Value})
			continue
		}
		args = append(args, air.WriteArg{Expr: lw.lowerScalarExpr(a)})
	}
	lw.cur = append(lw.cur, &air.WritelnStmt{Args: args, Pos: x.StmtPos})
}

// lowerScalarExpr lowers an expression in scalar context. Reductions
// and user-procedure calls are hoisted into preceding statements with
// fresh scalar temporaries.
func (lw *lowerer) lowerScalarExpr(e ast.Expr) air.Expr {
	switch x := e.(type) {
	case *ast.ReduceExpr:
		reg := lw.info.ReduceRegion[x]
		if reg == nil {
			return &air.ConstExpr{}
		}
		body := lw.lowerElemExpr(x.Body, reg.Rank())
		tmp := lw.newScalarTemp()
		var op air.ReduceOp
		switch x.Op {
		case token.REDPLUS:
			op = air.ReduceSum
		case token.REDSTAR:
			op = air.ReduceProd
		case token.REDMAX:
			op = air.ReduceMax
		case token.REDMIN:
			op = air.ReduceMin
		}
		lw.cur = append(lw.cur, &air.ReduceStmt{Target: tmp, Op: op, Region: reg, Body: body, Pos: lw.curPos})
		return &air.ScalarExpr{Name: tmp}
	case *ast.CallExpr:
		if _, isBuiltin := sema.Builtins[x.Name]; isBuiltin {
			args := make([]air.Expr, len(x.Args))
			for i, a := range x.Args {
				args[i] = lw.lowerScalarExpr(a)
			}
			return &air.CallExpr{Name: x.Name, Args: args}
		}
		args := make([]air.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = lw.lowerScalarExpr(a)
		}
		tmp := lw.newScalarTemp()
		lw.cur = append(lw.cur, &air.CallStmt{Target: tmp, Proc: x.Name, Args: args, Pos: lw.curPos})
		return &air.ScalarExpr{Name: tmp}
	case *ast.BinaryExpr:
		l := lw.lowerScalarExpr(x.X)
		r := lw.lowerScalarExpr(x.Y)
		return &air.BinExpr{Op: binOp(x.Op), X: l, Y: r}
	case *ast.UnaryExpr:
		return &air.UnExpr{Op: unOp(x.Op), X: lw.lowerScalarExpr(x.X)}
	default:
		return lw.lowerLeaf(e, 0)
	}
}

func (lw *lowerer) newScalarTemp() string {
	lw.nextScal++
	name := fmt.Sprintf("_s%d", lw.nextScal)
	lw.prog.Scalars[name] = &air.ScalarInfo{Name: name, Type: ast.Double}
	return name
}

// lowerElemExpr lowers an expression in element-wise (array) context
// of the given rank.
func (lw *lowerer) lowerElemExpr(e ast.Expr, rank int) air.Expr {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		return &air.BinExpr{
			Op: binOp(x.Op),
			X:  lw.lowerElemExpr(x.X, rank),
			Y:  lw.lowerElemExpr(x.Y, rank),
		}
	case *ast.UnaryExpr:
		return &air.UnExpr{Op: unOp(x.Op), X: lw.lowerElemExpr(x.X, rank)}
	case *ast.CallExpr:
		args := make([]air.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = lw.lowerElemExpr(a, rank)
		}
		return &air.CallExpr{Name: x.Name, Args: args}
	default:
		return lw.lowerLeaf(e, rank)
	}
}

// lowerLeaf lowers identifiers, @-references, and literals. rank > 0
// means array context (bare array idents become zero-offset refs).
func (lw *lowerer) lowerLeaf(e ast.Expr, rank int) air.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Name {
		case "index1", "index2", "index3", "index4":
			if rank > 0 && lw.info.LookupScalar(lw.proc, x.Name) == nil && !lw.loopVars[x.Name] {
				return &air.IndexExpr{Dim: int(x.Name[5] - '0')}
			}
		}
		if !lw.loopVars[x.Name] {
			if a := lw.info.LookupArray(lw.proc, x.Name); a != nil {
				return &air.RefExpr{Ref: air.Ref{Array: lw.mangle(x.Name), Off: air.Zero(rank)}}
			}
		}
		return &air.ScalarExpr{Name: lw.mangle(x.Name)}
	case *ast.AtExpr:
		offs := lw.info.ConstOffsets(x)
		off := make(air.Offset, len(offs))
		copy(off, offs)
		return &air.RefExpr{Ref: air.Ref{Array: lw.mangle(x.Array), Off: off}}
	case *ast.IntLit:
		return &air.ConstExpr{Val: float64(x.Value)}
	case *ast.FloatLit:
		return &air.ConstExpr{Val: x.Value}
	case *ast.BoolLit:
		v := 0.0
		if x.Value {
			v = 1.0
		}
		return &air.ConstExpr{Val: v}
	}
	return &air.ConstExpr{}
}

func binOp(k token.Kind) air.Op {
	switch k {
	case token.PLUS:
		return air.OpAdd
	case token.MINUS:
		return air.OpSub
	case token.STAR:
		return air.OpMul
	case token.SLASH:
		return air.OpDiv
	case token.PERCENT:
		return air.OpRem
	case token.CARET:
		return air.OpPow
	case token.EQ:
		return air.OpEq
	case token.NEQ:
		return air.OpNe
	case token.LT:
		return air.OpLt
	case token.LE:
		return air.OpLe
	case token.GT:
		return air.OpGt
	case token.GE:
		return air.OpGe
	case token.AND:
		return air.OpAnd
	case token.OR:
		return air.OpOr
	}
	return air.OpAdd
}

func unOp(k token.Kind) air.Op {
	if k == token.NOT {
		return air.OpNot
	}
	return air.OpNeg
}

// computeAllocBounds widens each array's allocation to cover every
// reference in the program: writes cover the statement region; a read
// at offset d over region S covers S shifted by d. The difference
// between the declared and allocated bounds is the array's halo.
func (lw *lowerer) computeAllocBounds() {
	cover := func(name string, reg *sema.Region, off air.Offset) {
		a := lw.prog.Arrays[name]
		if a == nil || reg.Rank() != a.Declared.Rank() {
			return
		}
		lo := make([]int, reg.Rank())
		hi := make([]int, reg.Rank())
		copy(lo, a.Alloc.Lo)
		copy(hi, a.Alloc.Hi)
		for i := 0; i < reg.Rank(); i++ {
			d := 0
			if off != nil {
				d = off[i]
			}
			if reg.Lo[i]+d < lo[i] {
				lo[i] = reg.Lo[i] + d
			}
			if reg.Hi[i]+d > hi[i] {
				hi[i] = reg.Hi[i] + d
			}
		}
		a.Alloc = &sema.Region{Name: a.Alloc.Name, Lo: lo, Hi: hi}
	}
	for _, blk := range lw.prog.AllBlocks() {
		for _, s := range blk.Stmts {
			switch x := s.(type) {
			case *air.ArrayStmt:
				cover(x.LHS, x.Region, nil)
				for _, r := range x.Reads() {
					cover(r.Array, x.Region, r.Off)
				}
			case *air.ReduceStmt:
				for _, r := range air.Refs(x.Body) {
					cover(r.Array, x.Region, r.Off)
				}
			case *air.PartialReduceStmt:
				cover(x.LHS, x.Dest, nil)
				for _, r := range air.Refs(x.Body) {
					cover(r.Array, x.Region, r.Off)
				}
			}
		}
	}
}
